(* scnoise: command-line front end for the switched-capacitor noise
   library.

     scnoise list
     scnoise info    -c bandpass
     scnoise psd     -c lowpass --fmin 100 --fmax 16e3 -n 40
     scnoise psd     -c switched-rc --engine bruteforce --compare
     scnoise psd     examples/decks/switched_rc.scn
     scnoise variance -c integrator
     scnoise contrib -c bandpass -f 8e3
     scnoise check   examples/decks/sc_integrator.scn

   Anywhere a bundled circuit name is accepted, a path to a `.scn`
   netlist deck is accepted too (either as the positional argument or
   via -c); deck analysis directives (.psd, .contrib, ...) provide the
   defaults that explicit command-line flags override. *)

module Pwl = Scnoise_circuit.Pwl
module Compile = Scnoise_circuit.Compile
module Deck = Scnoise_lang.Deck
module Elab = Scnoise_lang.Elab
module Diag = Scnoise_lang.Diag
module Psd = Scnoise_core.Psd
module Covariance = Scnoise_core.Covariance
module Contrib = Scnoise_core.Contrib
module Esd = Scnoise_noise.Esd_transient
module Mc = Scnoise_noise.Monte_carlo
module Table = Scnoise_util.Table
module Grid = Scnoise_util.Grid
module Db = Scnoise_util.Db
module Cx = Scnoise_linalg.Cx
module SRC = Scnoise_circuits.Switched_rc
module LP = Scnoise_circuits.Sc_lowpass
module BP = Scnoise_circuits.Sc_bandpass
module INT = Scnoise_circuits.Sc_integrator
module LAD = Scnoise_circuits.Sc_ladder
module DS = Scnoise_circuits.Sc_delta_sigma
module A_src = Scnoise_analytic.Switched_rc
module Obs = Scnoise_obs.Obs
module Export = Scnoise_obs.Export
module Json = Scnoise_obs.Json
module Trace = Scnoise_obs.Trace
module Bench_diff = Scnoise_obs.Bench_diff
module Pool = Scnoise_par.Pool
module Check = Scnoise_check.Check
module Finding = Scnoise_check.Finding
module Canon = Scnoise_lang.Canon
module Sp = Scnoise_serve.Protocol
module Sx = Scnoise_serve.Exec
module Sv = Scnoise_serve.Server
module Scl = Scnoise_serve.Client

open Cmdliner

type picked = {
  label : string;
  sys : Pwl.t;
  output : Scnoise_linalg.Vec.t;
  closed_form : (float -> float) option;
  directives : Elab.analysis list;
      (* deck analysis directives; [] for registry circuits *)
}

let circuits_doc =
  "switched-rc | lowpass | lowpass-single-stage | bandpass | integrator | \
   ladder | delta-sigma | a path to a .scn netlist deck"

(* Load, elaborate and compile a `.scn` deck into the same [picked]
   shape as the registry circuits.  All front-end failures arrive as
   rendered file:line:col diagnostics. *)
(* ERC errors abort before any matrix is assembled; warnings stay quiet
   on the analysis path (run `scnoise check` to see them). *)
let erc_errors findings =
  List.filter (fun f -> f.Finding.severity = Finding.Error) findings

let pick_deck path =
  match Deck.load_file path with
  | Error msg -> Error msg
  | Ok loaded -> (
      let e = loaded.Deck.elab in
      match erc_errors (Check.check_elab e) with
      | _ :: _ as errs ->
          Error
            (String.concat "\n"
               (List.map (Finding.render ~source:loaded.Deck.source) errs))
      | [] -> (
      match
        Compile.compile ?temperature:e.Elab.temperature e.Elab.netlist
          e.Elab.clock
      with
      | exception Compile.Error msg -> Error (path ^ ": " ^ msg)
      | sys -> (
          match Pwl.observable sys e.Elab.output_node with
          | exception Not_found ->
              Error
                (Diag.render loaded.Deck.source e.Elab.output_loc
                   (Printf.sprintf
                      "output node %S is not an observable state (it is \
                       resistive or source-driven)"
                      e.Elab.output_node))
          | output ->
              Ok
                {
                  label = Printf.sprintf "deck %s" path;
                  sys;
                  output;
                  closed_form = None;
                  directives = List.map fst e.Elab.analyses;
                })))

(* Registry circuits run through the same errors-only ERC gate as
   decks; the builders keep them clean, so this only fires if a future
   circuit (or parameter set) regresses. *)
let guard ~netlist ~clock ~output_node picked =
  match erc_errors (Check.check ~output:output_node netlist clock) with
  | [] -> Ok picked
  | errs -> Error (String.concat "\n" (List.map Finding.to_string errs))

let pick_circuit name ~duty ~t_over_rc ~f0 ~q ~stages =
  if Deck.looks_like_path name then pick_deck name
  else match name with
  | "switched-rc" ->
      let b = SRC.build (SRC.with_ratio ~duty ~t_over_rc ()) in
      let p = b.SRC.params in
      let a =
        A_src.make ~r:p.SRC.r ~c:p.SRC.c ~period:p.SRC.period ~duty:p.SRC.duty
          ()
      in
      guard ~netlist:b.SRC.netlist ~clock:b.SRC.clock
        ~output_node:b.SRC.output_node
        {
          label = Printf.sprintf "switched-rc (T/RC=%g, d=%g)" t_over_rc duty;
          sys = b.SRC.sys;
          output = b.SRC.output;
          closed_form = Some (A_src.psd a);
          directives = [];
        }
  | "lowpass" ->
      let b = LP.build LP.default in
      guard ~netlist:b.LP.netlist ~clock:b.LP.clock
        ~output_node:b.LP.output_node
        {
          label = "sc_lowpass (integrator op-amp)";
          sys = b.LP.sys;
          output = b.LP.output;
          closed_form = None;
          directives = [];
        }
  | "lowpass-single-stage" ->
      let b = LP.build LP.single_stage_variant in
      guard ~netlist:b.LP.netlist ~clock:b.LP.clock
        ~output_node:b.LP.output_node
        {
          label = "sc_lowpass (single-stage op-amp)";
          sys = b.LP.sys;
          output = b.LP.output;
          closed_form = None;
          directives = [];
        }
  | "bandpass" -> (
      match BP.design ~clock_hz:128e3 ~f0 ~q () with
      | params ->
          let b = BP.build params in
          guard ~netlist:b.BP.netlist ~clock:b.BP.clock
            ~output_node:b.BP.output_node
            {
              label = Printf.sprintf "sc_bandpass (f0=%g, Q=%g)" f0 q;
              sys = b.BP.sys;
              output = b.BP.output;
              closed_form = None;
              directives = [];
            }
      | exception Invalid_argument msg -> Error msg)
  | "integrator" ->
      let b = INT.build INT.default in
      guard ~netlist:b.INT.netlist ~clock:b.INT.clock
        ~output_node:b.INT.output_node
        {
          label = "sc_integrator (damped)";
          sys = b.INT.sys;
          output = b.INT.output;
          closed_form = None;
          directives = [];
        }
  | "delta-sigma" ->
      let b = DS.build DS.default in
      guard ~netlist:b.DS.netlist ~clock:b.DS.clock
        ~output_node:b.DS.output_node
        {
          label = "sc_delta_sigma (2nd-order, linearised quantiser)";
          sys = b.DS.sys;
          output = b.DS.output;
          closed_form = None;
          directives = [];
        }
  | "ladder" -> (
      match LAD.build (LAD.with_stages stages) with
      | b ->
          guard ~netlist:b.LAD.netlist ~clock:b.LAD.clock
            ~output_node:b.LAD.output_node
            {
              label = Printf.sprintf "sc_ladder (%d stages)" stages;
              sys = b.LAD.sys;
              output = b.LAD.output;
              closed_form = None;
              directives = [];
            }
      | exception Invalid_argument msg -> Error msg)
  | other ->
      Error (Printf.sprintf "unknown circuit %S (choose: %s)" other circuits_doc)

(* ---- observability options ---- *)

(* Verbosity: -v (info) / -vv (debug) / --quiet, with SCNOISE_LOG as the
   environment default (debug|info|warning|error|quiet).  -q stays the
   band-pass quality factor, so quiet is long-form only.  Evaluates to ()
   after configuring the Logs reporter, level and the parallel job
   count. *)
let setup_term =
  let verbose_arg =
    let doc = "Increase log verbosity (repeatable: -v info, -vv debug)." in
    Arg.(value & flag_all & info [ "v"; "verbose" ] ~doc)
  in
  let quiet_arg =
    let doc = "Silence all log output; takes over $(b,-v) and SCNOISE_LOG." in
    Arg.(value & flag & info [ "quiet" ] ~doc)
  in
  let jobs_arg =
    let doc =
      "Worker domains for the parallel analysis loops (frequency sweeps, \
       Monte-Carlo paths, covariance discretisation).  Results are \
       bit-identical at any job count.  Defaults to $(b,SCNOISE_JOBS) when \
       set, else to the number of cores; $(b,--jobs 1) runs fully serial."
    in
    Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~doc ~docv:"N")
  in
  let batch_arg =
    let doc =
      "Block width for batched frequency sweeps: $(docv) frequencies \
       advance in lockstep through blocked multi-RHS kernels.  Results \
       are bit-identical at any width; $(b,--batch 1) disables blocking. \
       Defaults to $(b,SCNOISE_BATCH) when set, else to an automatic \
       width from the circuit size.  Must be at least 1."
    in
    let width_conv =
      let parse s =
        match int_of_string_opt s with
        | Some b when b >= 1 -> Ok b
        | Some _ -> Error (`Msg "batch width must be at least 1")
        | None -> Error (`Msg "expected an integer batch width")
      in
      Arg.conv ~docv:"B" (parse, Format.pp_print_int)
    in
    Arg.(value & opt (some width_conv) None & info [ "batch" ] ~doc ~docv:"B")
  in
  let cov_backend_arg =
    let doc =
      "Covariance engine: $(b,dense) materialises every covariance matrix, \
       $(b,lowrank) propagates a factored low-rank representation through \
       memoised and matrix-free Krylov interval operators (the same \
       answers to truncation tolerance, much faster past a few dozen \
       states), $(b,auto) picks by state count.  Defaults to \
       $(b,SCNOISE_COV_BACKEND) when set, else $(b,auto)."
    in
    let backend_conv =
      let parse s =
        match Covariance.backend_of_name (String.lowercase_ascii s) with
        | b -> Ok (`Named b)
        | exception Invalid_argument _ ->
            Error (`Msg "expected auto, dense or lowrank")
      in
      let pp ppf = function
        | `Named (Some b) ->
            Format.pp_print_string ppf (Covariance.backend_name b)
        | `Named None -> Format.pp_print_string ppf "auto"
      in
      Arg.conv ~docv:"BACKEND" (parse, pp)
    in
    Arg.(
      value
      & opt (some backend_conv) None
      & info [ "cov-backend" ] ~doc ~docv:"BACKEND")
  in
  let env_level () =
    match Option.map String.lowercase_ascii (Sys.getenv_opt "SCNOISE_LOG") with
    | Some "debug" -> Some Logs.Debug
    | Some "info" -> Some Logs.Info
    | Some "warning" -> Some Logs.Warning
    | Some "error" -> Some Logs.Error
    | Some "quiet" -> None
    | Some _ | None -> Some Logs.Warning
  in
  let setup quiet verbose jobs batch cov_backend =
    Fmt_tty.setup_std_outputs ();
    Logs.set_reporter (Logs_fmt.reporter ());
    let level =
      if quiet then None
      else
        match List.length verbose with
        | 0 -> env_level ()
        | 1 -> Some Logs.Info
        | _ -> Some Logs.Debug
    in
    Logs.set_level level;
    Option.iter Pool.set_default_jobs jobs;
    Option.iter Psd.set_default_batch batch;
    Option.iter
      (fun (`Named b) -> Covariance.set_default_backend b)
      cov_backend
  in
  Term.(
    const setup $ quiet_arg $ verbose_arg $ jobs_arg $ batch_arg
    $ cov_backend_arg)

let metrics_arg =
  let doc =
    "Record run metrics (counters, histograms and nested wall-time spans) \
     and write them as JSON to $(docv) ($(b,-) streams to stdout).  Files \
     are written atomically ($(docv).tmp + rename)."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~doc ~docv:"FILE")

let trace_arg =
  let doc =
    "Record a Chrome Trace Event timeline of the run and write it as JSON \
     to $(docv) ($(b,-) streams to stdout), loadable in ui.perfetto.dev or \
     about://tracing.  One track per worker domain of the parallel pool."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~doc ~docv:"FILE")

(* Run [f] with span recording enabled when a metrics or trace file was
   requested, then dump the registry snapshot.  The summary table also
   goes to stderr at info verbosity and above, so `-v --metrics out.json`
   shows where the time went without opening the file. *)
let with_obs metrics trace f =
  if metrics = None && trace = None then f ()
  else begin
    Obs.reset ();
    Obs.enable ();
    let code = f () in
    Obs.disable ();
    let snap = Obs.snapshot () in
    Option.iter
      (fun path ->
        Export.write_file path snap;
        if path <> "-" then Printf.printf "# metrics: wrote %s\n" path)
      metrics;
    Option.iter
      (fun path ->
        Trace.write_file path snap;
        if path <> "-" then Printf.printf "# trace: wrote %s\n" path)
      trace;
    if Logs.level () >= Some Logs.Info then Export.print_summary ~oc:stderr snap;
    code
  end

(* ---- common options ---- *)

let circuit_arg =
  let doc = "Circuit to analyse: " ^ circuits_doc ^ "." in
  Arg.(value & opt string "switched-rc" & info [ "c"; "circuit" ] ~doc)

let target_arg =
  let doc =
    "Bundled circuit name or path to a $(b,.scn) netlist deck (takes over \
     $(b,-c))."
  in
  Arg.(value & pos 0 (some string) None & info [] ~doc ~docv:"CIRCUIT|DECK")

(* an explicit CLI flag beats a deck directive beats the builtin default *)
let resolve cli directive default =
  match cli with Some v -> v | None -> Option.value directive ~default

let duty_arg =
  let doc = "Switch duty cycle (switched-rc)." in
  Arg.(value & opt float 0.5 & info [ "duty" ] ~doc)

let ratio_arg =
  let doc = "Clock period over RC time constant (switched-rc)." in
  Arg.(value & opt float 5.0 & info [ "t-over-rc" ] ~doc)

let f0_arg =
  let doc = "Centre frequency in Hz (bandpass)." in
  Arg.(value & opt float 8e3 & info [ "f0" ] ~doc)

let q_arg =
  let doc = "Quality factor (bandpass, <= 2.5)." in
  Arg.(value & opt float 2.0 & info [ "q" ] ~doc)

let spp_arg =
  let doc = "Integration samples per clock phase." in
  Arg.(value & opt int 96 & info [ "spp"; "samples-per-phase" ] ~doc)

let stages_arg =
  let doc = "Number of stages (ladder)." in
  Arg.(value & opt int 4 & info [ "stages" ] ~doc)

let with_circuit f name target duty t_over_rc f0 q stages =
  let name = match target with Some t -> t | None -> name in
  match pick_circuit name ~duty ~t_over_rc ~f0 ~q ~stages with
  | Error msg ->
      Printf.eprintf "scnoise: %s\n" msg;
      1
  | Ok picked ->
      (* post-hoc ERC010: surface factorisations whose condition estimate
         tripped while the analysis ran *)
      let baseline = Check.ill_conditioned_count () in
      let code = f picked in
      List.iter
        (fun fi -> Printf.eprintf "scnoise: %s\n" (Finding.to_string fi))
        (Check.ill_conditioned ~since:baseline);
      code

(* ---- list ---- *)

let list_cmd =
  let run metrics trace =
    with_obs metrics trace @@ fun () ->
    let t = Table.create [ "name"; "description" ] in
    Table.add_row t
      [ "switched-rc"; "periodically switched RC (closed form available)" ];
    Table.add_row t
      [ "lowpass"; "SC low-pass filter, Toth values, integrator op-amp" ];
    Table.add_row t
      [ "lowpass-single-stage"; "same filter with a single-stage op-amp" ];
    Table.add_row t [ "bandpass"; "two-integrator-loop SC band-pass biquad" ];
    Table.add_row t [ "integrator"; "parasitic-insensitive damped integrator" ];
    Table.add_row t
      [ "ladder"; "switched RC ladder (--stages N, scaling workload)" ];
    Table.add_row t
      [ "delta-sigma"; "2nd-order delta-sigma loop filter (linearised)" ];
    Table.print t;
    Printf.printf
      "\nEvery analysis also accepts a path to a .scn netlist deck instead \
       of a\nname (e.g. `scnoise psd examples/decks/switched_rc.scn`); see \
       `scnoise\ncheck DECK` to validate a deck.\n";
    0
  in
  let doc = "List the bundled evaluation circuits." in
  Cmd.v (Cmd.info "list" ~doc)
    Term.(
      const (fun () metrics trace -> run metrics trace)
      $ setup_term $ metrics_arg $ trace_arg)

(* ---- check ---- *)

let check_cmd =
  let run metrics trace strict json path =
    with_obs metrics trace (fun () ->
        match Deck.load_file path with
        | Error msg ->
            if json then
              print_endline
                (Json.to_string
                   (Json.Obj
                      [
                        ("schema", Json.Str "scnoise.check/1");
                        ("deck", Json.Str path);
                        ("error", Json.Str msg);
                      ]))
            else Printf.eprintf "scnoise: %s\n" msg;
            1
        | Ok loaded ->
            let e = loaded.Deck.elab in
            let findings = Check.check_elab e in
            let nerr = Finding.errors findings in
            let nwarn = Finding.warnings findings in
            if json then
              (* findings arrive sorted ({!Finding.compare}) and the
                 printer is deterministic, so the artifact is
                 byte-stable across runs — the scnoise.metrics/2
                 convention *)
              print_endline
                (Json.to_string
                   (Json.Obj
                      [
                        ("schema", Json.Str "scnoise.check/1");
                        ("deck", Json.Str path);
                        ( "findings",
                          Json.List (List.map Finding.to_json findings) );
                        ("errors", Json.Num (float_of_int nerr));
                        ("warnings", Json.Num (float_of_int nwarn));
                      ]))
            else begin
              List.iter
                (fun f ->
                  print_endline
                    (Finding.render ~source:loaded.Deck.source f))
                findings;
              if findings = [] then Printf.printf "%s: ok (no findings)\n" path
              else
                Printf.printf "%s: %d error(s), %d warning(s)\n" path nerr
                  nwarn
            end;
            (* the ERC is structural; also compile when it passed, so the
               few numeric/observability failures surface here too *)
            let compile_code =
              if nerr > 0 then 1
              else
                match
                  Compile.compile ?temperature:e.Elab.temperature
                    e.Elab.netlist e.Elab.clock
                with
                | exception Compile.Error msg ->
                    if not json then
                      Printf.eprintf "scnoise: %s: %s\n" path msg;
                    1
                | sys -> (
                    match Pwl.observable sys e.Elab.output_node with
                    | exception Not_found ->
                        if not json then
                          Printf.eprintf "%s\n"
                            (Diag.render loaded.Deck.source e.Elab.output_loc
                               (Printf.sprintf
                                  "output node %S is not an observable \
                                   state (it is resistive or source-driven)"
                                  e.Elab.output_node));
                        1
                    | _ -> 0)
            in
            if compile_code <> 0 then 1
            else if strict && nwarn > 0 then 1
            else 0)
  in
  let path_arg =
    let doc = "Netlist deck to check." in
    Arg.(required & pos 0 (some string) None & info [] ~doc ~docv:"DECK")
  in
  let strict_arg =
    let doc = "Exit non-zero on warnings, not just errors." in
    Arg.(value & flag & info [ "strict" ] ~doc)
  in
  let json_arg =
    let doc = "Emit the findings as JSON on stdout." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let doc =
    "Run the electrical-rule check (ERC) over a .scn deck: floating \
     nodes, capacitor islands, source shorts, degenerate switches, \
     out-of-range phases, noiseless circuits, unused parameters, \
     beyond-Nyquist sweeps, structurally singular per-phase MNA blocks, \
     dead noise sources, isolated outputs, dimension mismatches and \
     low-capture sweep bands, each as a located file:line:col finding."
  in
  Cmd.v
    (Cmd.info "check" ~doc)
    Term.(
      const (fun () metrics trace strict json path ->
          run metrics trace strict json path)
      $ setup_term $ metrics_arg $ trace_arg $ strict_arg $ json_arg
      $ path_arg)

(* ---- info ---- *)

let info_cmd =
  let run picked =
    Printf.printf "%s\n" picked.label;
    Printf.printf "states: %d\n" picked.sys.Pwl.nstates;
    Array.iteri
      (fun i n -> Printf.printf "  x%d = %s\n" i n)
      picked.sys.Pwl.state_names;
    Printf.printf "clock period: %g s, %d phase(s)\n" picked.sys.Pwl.period
      (Pwl.n_phases picked.sys);
    Array.iteri
      (fun i (ph : Pwl.phase) ->
        Printf.printf "  phase %d: tau = %g s, %d noise source(s)\n" i
          ph.Pwl.tau
          (Array.length ph.Pwl.noise_labels))
      picked.sys.Pwl.phases;
    Printf.printf "stable: %b; Floquet multipliers:\n"
      (Pwl.is_stable picked.sys);
    Array.iter
      (fun (m : Cx.t) ->
        Printf.printf "  %+.6g %+.6gi  (|mu| = %.6g)\n" m.Cx.re m.Cx.im
          (Cx.modulus m))
      (Pwl.floquet_multipliers picked.sys);
    0
  in
  let doc = "Show the compiled model: states, phases, stability." in
  Cmd.v
    (Cmd.info "info" ~doc)
    Term.(
      const (fun () metrics trace name target duty r f0 q stages ->
          with_obs metrics trace (fun () ->
              with_circuit run name target duty r f0 q stages))
      $ setup_term $ metrics_arg $ trace_arg $ circuit_arg $ target_arg
      $ duty_arg $ ratio_arg $ f0_arg $ q_arg $ stages_arg)

(* ---- psd ---- *)

let psd_cmd =
  let run engine fmin fmax points log compare spp seed csv plot picked =
    (* a .psd directive in the deck supplies the defaults *)
    let dfmin, dfmax, dpoints, dlog, dengine =
      match
        List.find_map
          (function
            | Elab.Psd { fmin; fmax; points; log; engine } ->
                Some (fmin, fmax, points, log, engine)
            | _ -> None)
          picked.directives
      with
      | Some d -> d
      | None -> (None, None, None, false, None)
    in
    let engine = resolve engine dengine "mft" in
    let fmin = resolve fmin dfmin 0.0 in
    let fmax = resolve fmax dfmax 16e3 in
    let points = resolve points dpoints 33 in
    let log = log || dlog in
    if not (Pwl.is_stable picked.sys) then begin
      Printf.eprintf "scnoise: circuit is not stable; no steady-state noise\n";
      2
    end
    else begin
      let freqs =
        if log then Grid.logspace (max fmin 1e-3) fmax points
        else Grid.linspace fmin fmax points
      in
      Printf.printf "# %s, engine = %s\n" picked.label engine;
      let values =
        match engine with
        | "mft" ->
            let eng =
              Psd.prepare ~samples_per_phase:spp picked.sys
                ~output:picked.output
            in
            Ok (Psd.sweep eng freqs)
        | "bruteforce" ->
            Ok
              (Esd.sweep ~samples_per_phase:spp ~tol_db:0.05 picked.sys
                 ~output:picked.output freqs)
        | "montecarlo" ->
            let est =
              Mc.estimate ~seed:(Int64.of_int seed) ~samples_per_phase:spp
                ~paths:8 ~segments_per_path:8 picked.sys ~output:picked.output
                ~freqs
            in
            Ok est.Mc.psd
        | other -> Error (Printf.sprintf "unknown engine %S" other)
      in
      match values with
      | Error msg ->
          Printf.eprintf "scnoise: %s\n" msg;
          1
      | Ok values ->
          let headers =
            [ "f_Hz"; "psd_V2_per_Hz"; "psd_dB" ]
            @ (if picked.closed_form <> None then [ "closed_form_dB" ] else [])
          in
          let t = Table.create headers in
          Array.iteri
            (fun i f ->
              let base = [ values.(i); Db.of_power values.(i) ] in
              let extra =
                match picked.closed_form with
                | Some cf -> [ Db.of_power (cf f) ]
                | None -> []
              in
              Table.add_float_row t ~precision:5
                (Printf.sprintf "%.5g" f)
                (base @ extra))
            freqs;
          Table.print t;
          (match csv with
          | Some path ->
              Table.save_csv t path;
              Printf.printf "# wrote %s\n" path
          | None -> ());
          if plot then begin
            let dbs = Array.map Db.of_power values in
            Scnoise_util.Ascii_plot.print ~x_log:log ~x_label:"f_Hz"
              ~y_label:"psd_dB" freqs dbs
          end;
          ignore compare;
          0
    end
  in
  let engine_arg =
    let doc =
      "PSD engine: mft (default), bruteforce, or montecarlo.  Unset options \
       fall back to the deck's .psd directive, when one is present."
    in
    Arg.(value & opt (some string) None & info [ "e"; "engine" ] ~doc)
  in
  let fmin_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "fmin" ] ~doc:"Lowest frequency, Hz (default 0).")
  in
  let fmax_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "fmax" ] ~doc:"Highest frequency, Hz (default 16e3).")
  in
  let points_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "n"; "points" ] ~doc:"Number of points (default 33).")
  in
  let log_arg =
    Arg.(value & flag & info [ "log" ] ~doc:"Logarithmic frequency grid.")
  in
  let compare_arg =
    Arg.(
      value & flag
      & info [ "compare" ]
          ~doc:"(kept for compatibility; closed form is always shown when \
                available)")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Monte-Carlo seed.")
  in
  let csv_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~doc:"Also write the sweep to a CSV file." ~docv:"FILE")
  in
  let plot_arg =
    Arg.(value & flag & info [ "plot" ] ~doc:"Draw an ASCII plot of the sweep.")
  in
  let doc = "Compute the output noise power spectral density." in
  Cmd.v
    (Cmd.info "psd" ~doc)
    Term.(
      const
        (fun () metrics trace engine fmin fmax points log compare spp seed csv
             plot name target duty r f0 q stages ->
          with_obs metrics trace (fun () ->
              with_circuit
                (fun picked ->
                  run engine fmin fmax points log compare spp seed csv plot
                    picked)
                name target duty r f0 q stages))
      $ setup_term $ metrics_arg $ trace_arg $ engine_arg $ fmin_arg
      $ fmax_arg $ points_arg $ log_arg $ compare_arg $ spp_arg $ seed_arg
      $ csv_arg $ plot_arg $ circuit_arg $ target_arg $ duty_arg $ ratio_arg
      $ f0_arg $ q_arg $ stages_arg)

(* ---- variance ---- *)

let variance_cmd =
  let run spp picked =
    if not (Pwl.is_stable picked.sys) then begin
      Printf.eprintf "scnoise: circuit is not stable\n";
      2
    end
    else begin
      let cov = Covariance.sample ~samples_per_phase:spp picked.sys in
      let vb = Covariance.variance_at_boundary cov picked.output in
      let va = Covariance.average_variance cov picked.output in
      Printf.printf "%s\n" picked.label;
      Printf.printf "variance at period boundary: %.6g V^2 (%.4g uV rms)\n" vb
        (1e6 *. sqrt vb);
      Printf.printf "time-averaged variance:      %.6g V^2 (%.4g uV rms)\n" va
        (1e6 *. sqrt va);
      Printf.printf "periodicity closure error:   %.3g\n"
        (Covariance.closure_error cov);
      0
    end
  in
  let doc = "Steady-state output noise variance." in
  Cmd.v
    (Cmd.info "variance" ~doc)
    Term.(
      const (fun () metrics trace spp name target duty r f0 q stages ->
          with_obs metrics trace (fun () ->
              with_circuit (fun picked -> run spp picked) name target duty r
                f0 q stages))
      $ setup_term $ metrics_arg $ trace_arg $ spp_arg $ circuit_arg
      $ target_arg $ duty_arg $ ratio_arg $ f0_arg $ q_arg $ stages_arg)

(* ---- contrib ---- *)

let contrib_cmd =
  let run f spp picked =
    let df =
      List.find_map
        (function Elab.Contrib { f } -> f | _ -> None)
        picked.directives
    in
    let f = resolve f df 1e3 in
    if not (Pwl.is_stable picked.sys) then begin
      Printf.eprintf "scnoise: circuit is not stable\n";
      2
    end
    else begin
      Printf.printf "%s, f = %g Hz\n" picked.label f;
      let parts =
        Contrib.per_source_psd ~samples_per_phase:spp picked.sys
          ~output:picked.output ~f
      in
      let total = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 parts in
      let t = Table.create [ "source"; "psd_V2_per_Hz"; "share_%" ] in
      List.iter
        (fun (label, s) ->
          Table.add_float_row t ~precision:4 label
            [ s; (if total > 0.0 then 100.0 *. s /. total else 0.0) ])
        (List.sort (fun (_, a) (_, b) -> compare b a) parts);
      Table.print t;
      Printf.printf "total: %.5g V^2/Hz (%.2f dB)\n" total (Db.of_power total);
      0
    end
  in
  let f_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "f"; "freq" ]
          ~doc:
            "Analysis frequency, Hz (default 1e3, or the deck's .contrib \
             directive).")
  in
  let doc = "Per-source decomposition of the output noise PSD." in
  Cmd.v
    (Cmd.info "contrib" ~doc)
    Term.(
      const (fun () metrics trace f spp name target duty r f0 q stages ->
          with_obs metrics trace (fun () ->
              with_circuit (fun picked -> run f spp picked) name target duty r
                f0 q stages))
      $ setup_term $ metrics_arg $ trace_arg $ f_arg $ spp_arg $ circuit_arg
      $ target_arg $ duty_arg $ ratio_arg $ f0_arg $ q_arg $ stages_arg)

(* ---- transfer ---- *)

let transfer_cmd =
  let run fmin fmax points spp k_range picked =
    let dfmin, dfmax, dpoints, dk =
      match
        List.find_map
          (function
            | Elab.Transfer { fmin; fmax; points; k } ->
                Some (fmin, fmax, points, k)
            | _ -> None)
          picked.directives
      with
      | Some d -> d
      | None -> (None, None, None, None)
    in
    let fmin = resolve fmin dfmin 1.0 in
    let fmax = resolve fmax dfmax 2e3 in
    let points = resolve points dpoints 21 in
    let k_range = resolve k_range dk 0 in
    if Array.length picked.sys.Pwl.inputs = 0 then begin
      Printf.eprintf "scnoise: circuit has no signal inputs\n";
      2
    end
    else begin
      let module Transfer = Scnoise_core.Transfer in
      let tr =
        Transfer.prepare ~samples_per_phase:spp picked.sys
          ~output:picked.output
      in
      Printf.printf "# %s, baseband LPTV transfer function H0(f)\n"
        picked.label;
      let freqs = Grid.linspace fmin fmax points in
      let headers =
        [ "f_Hz"; "mag"; "mag_dB"; "phase_deg" ]
        @ List.concat_map
            (fun k -> [ Printf.sprintf "|H%+d|" k ])
            (List.init k_range (fun i -> i + 1))
      in
      let t = Table.create headers in
      Array.iter
        (fun f ->
          let h = Transfer.harmonics tr ~input:0 ~f ~k_range in
          let h0 = h.(k_range) in
          let side =
            List.init k_range (fun i -> Cx.modulus h.(k_range + i + 1))
          in
          Table.add_float_row t ~precision:4
            (Printf.sprintf "%.5g" f)
            ([
               Cx.modulus h0;
               Db.of_amplitude (Cx.modulus h0);
               Cx.arg h0 *. 180.0 /. Float.pi;
             ]
            @ side))
        freqs;
      Table.print t;
      0
    end
  in
  let fmin_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "fmin" ] ~doc:"Lowest frequency, Hz (default 1).")
  in
  let fmax_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "fmax" ] ~doc:"Highest frequency, Hz (default 2e3).")
  in
  let points_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "n"; "points" ] ~doc:"Number of points (default 21).")
  in
  let krange_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "k" ] ~doc:"Also print magnitudes of the first $(docv) \
                           frequency-translation harmonics.")
  in
  let doc = "Baseband (and harmonic) LPTV signal transfer function." in
  Cmd.v
    (Cmd.info "transfer" ~doc)
    Term.(
      const
        (fun () metrics trace fmin fmax points spp k name target duty r f0 q
             stages ->
          with_obs metrics trace (fun () ->
              with_circuit
                (fun picked -> run fmin fmax points spp k picked)
                name target duty r f0 q stages))
      $ setup_term $ metrics_arg $ trace_arg $ fmin_arg $ fmax_arg
      $ points_arg $ spp_arg $ krange_arg $ circuit_arg $ target_arg
      $ duty_arg $ ratio_arg $ f0_arg $ q_arg $ stages_arg)

(* ---- report ---- *)

let report_cmd =
  let run spp fmin fmax picked =
    let module Report = Scnoise_core.Report in
    let band = if fmax > fmin && fmax > 0.0 then Some (fmin, fmax) else None in
    let r =
      Report.analyze ~samples_per_phase:spp ?band ~title:picked.label
        picked.sys ~output:picked.output
    in
    Report.print r;
    if r.Report.stable then 0 else 2
  in
  let fmin_arg =
    Arg.(value & opt float 0.0 & info [ "band-min" ] ~doc:"Band lower edge, Hz.")
  in
  let fmax_arg =
    Arg.(
      value & opt float 0.0
      & info [ "band-max" ] ~doc:"Band upper edge, Hz (0 disables band noise).")
  in
  let doc = "Full noise characterisation report (variance, spectrum, sources)." in
  Cmd.v
    (Cmd.info "report" ~doc)
    Term.(
      const (fun () metrics trace spp fmin fmax name target duty r f0 q
                 stages ->
          with_obs metrics trace (fun () ->
              with_circuit
                (fun picked -> run spp fmin fmax picked)
                name target duty r f0 q stages))
      $ setup_term $ metrics_arg $ trace_arg $ spp_arg $ fmin_arg $ fmax_arg
      $ circuit_arg $ target_arg $ duty_arg $ ratio_arg $ f0_arg $ q_arg
      $ stages_arg)

(* ---- bench: regression gate over metrics artifacts ---- *)

(* Reads either a full scnoise.metrics snapshot or a pruned
   scnoise.bench-metrics document, as the flattened metric list the
   gate actually compares. *)
let read_metrics path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | s -> (
      match Bench_diff.metrics_of_json_string s with
      | metrics -> Ok metrics
      | exception Json.Parse_error msg ->
          Error (Printf.sprintf "%s: %s" path msg))

let bench_diff_cmd =
  let run threshold all base_path cur_path =
    match (read_metrics base_path, read_metrics cur_path) with
    | Error msg, _ | _, Error msg ->
        Printf.eprintf "scnoise: %s\n" msg;
        2
    | Ok baseline, Ok current ->
        let report =
          Bench_diff.diff_metrics ~threshold_pct:threshold ~baseline ~current ()
        in
        Bench_diff.print ~all report;
        if report.Bench_diff.regressions > 0 then 1 else 0
  in
  let threshold_arg =
    let doc =
      "Relative regression threshold in percent; a metric only gates when \
       it also exceeds its absolute noise floor."
    in
    Arg.(value & opt float 25.0 & info [ "threshold" ] ~doc ~docv:"PCT")
  in
  let all_arg =
    let doc = "Print every shared metric, not just the changed ones." in
    Arg.(value & flag & info [ "all" ] ~doc)
  in
  let base_arg =
    let doc = "Baseline metrics JSON (scnoise.metrics/1 or /2)." in
    Arg.(required & pos 0 (some string) None & info [] ~doc ~docv:"BASELINE")
  in
  let cur_arg =
    let doc = "Current metrics JSON to compare against the baseline." in
    Arg.(required & pos 1 (some string) None & info [] ~doc ~docv:"CURRENT")
  in
  let doc =
    "Compare two metrics documents (--metrics / bench artifacts) and exit \
     non-zero when timers, histogram quantiles, span aggregates or \
     counters regressed beyond the threshold."
  in
  Cmd.v
    (Cmd.info "diff" ~doc)
    Term.(
      const (fun () threshold all base cur -> run threshold all base cur)
      $ setup_term $ threshold_arg $ all_arg $ base_arg $ cur_arg)

let bench_check_trace_cmd =
  let run paths =
    List.fold_left
      (fun code path ->
        match Trace.validate_file path with
        | Ok () ->
            Printf.printf "%s: ok\n" path;
            code
        | Error msg ->
            Printf.eprintf "scnoise: %s: %s\n" path msg;
            1)
      0 paths
  in
  let paths_arg =
    let doc = "Trace Event JSON files to validate." in
    Arg.(non_empty & pos_all string [] & info [] ~doc ~docv:"FILE")
  in
  let doc =
    "Validate Chrome Trace Event files emitted by --trace (used by CI to \
     schema-check uploaded artifacts)."
  in
  Cmd.v
    (Cmd.info "check-trace" ~doc)
    Term.(const (fun () paths -> run paths) $ setup_term $ paths_arg)

let bench_prune_cmd =
  let run in_path out_path =
    match read_metrics in_path with
    | Error msg ->
        Printf.eprintf "scnoise: %s\n" msg;
        2
    | Ok metrics ->
        Export.write_string_file out_path
          (Bench_diff.metrics_to_json_string metrics ^ "\n");
        if out_path <> "-" then
          Printf.printf "# pruned %s -> %s (%d metrics)\n" in_path out_path
            (List.length metrics);
        0
  in
  let in_arg =
    let doc = "Metrics JSON to prune (full snapshot or already pruned)." in
    Arg.(required & pos 0 (some string) None & info [] ~doc ~docv:"IN")
  in
  let out_arg =
    let doc = "Destination ($(b,-) streams to stdout; may equal IN)." in
    Arg.(required & pos 1 (some string) None & info [] ~doc ~docv:"OUT")
  in
  let doc =
    "Flatten a metrics snapshot down to the scalar metrics the $(b,bench \
     diff) gate reads (scnoise.bench-metrics/1) — what the committed \
     baselines store, two orders of magnitude smaller than raw snapshots."
  in
  Cmd.v
    (Cmd.info "prune" ~doc)
    Term.(const (fun () i o -> run i o) $ setup_term $ in_arg $ out_arg)

(* ---- bench serve: load generator against a forked daemon ---- *)

(* The default workload deck (the bundled switched-RC testbench,
   embedded so the bench runs from any directory). *)
let bench_serve_deck =
  ".param rs = 1k\n.param c  = 1n\n.param T  = {5 * rs * c}\n\n\
   S1 vout 0 {rs} closed=0\nC1 vout 0 {c}\n\n\
   .clock duty period={T} duty=0.5\n.output vout\n\
   .psd fmin=0 fmax=16k points=33\n.end\n"

let bench_serve_cmd =
  let run clients requests spp cache_entries deck_path json_path =
    let deck =
      match deck_path with
      | None -> bench_serve_deck
      | Some "-" -> In_channel.input_all In_channel.stdin
      | Some path -> In_channel.with_open_text path In_channel.input_all
    in
    (* two frequency ranges, exercised singly and as a batch envelope *)
    let ranges = [| (0.0, 16e3, 33); (100.0, 8e3, 25) |] in
    let psd_req ?id (fmin, fmax, points) =
      {
        Sp.rq_id = id;
        rq_deck = Some deck;
        rq_deck_name = "<bench>";
        rq_op =
          Sp.Psd
            {
              p_fmin = Some fmin;
              p_fmax = Some fmax;
              p_points = Some points;
              p_log = None;
              p_spp = Some spp;
              p_engine = None;
            };
      }
    in
    let sock =
      let f = Filename.temp_file "scnoise-serve" ".sock" in
      Sys.remove f;
      f
    in
    (* Fork the daemon BEFORE any pool domain exists in this process:
       fork only carries the calling thread into the child, so forking
       after Domain.spawn would leave dead domains' locks behind. *)
    match Unix.fork () with
    | 0 ->
        Logs.set_level None;
        (try
           Sv.run
             (Sv.create
                ~exec:(Sx.create ~cache_entries ())
                (Sv.config ~queue_limit:(max 64 (clients * 4))
                   (Sv.Unix_path sock)))
         with _ -> ());
        Stdlib.exit 0
    | daemon_pid -> (
        let fail fmt =
          Printf.ksprintf
            (fun msg ->
              (try Unix.kill daemon_pid Sys.sigterm with Unix.Unix_error _ -> ());
              ignore (Unix.waitpid [] daemon_pid);
              Printf.eprintf "scnoise: bench serve: %s\n" msg;
              1)
            fmt
        in
        (* cold baseline: everything a one-shot CLI run does (parse,
           elaborate, compile, prepare, sweep) on a fresh executor;
           median of three *)
        let cold_s =
          let one () =
            let t0 = Scnoise_obs.Clock.now () in
            let reply =
              Sx.handle (Sx.create ()) (Sp.Single (psd_req ranges.(0)))
            in
            if not (Sp.reply_ok reply) then
              failwith ("cold run failed: " ^ Json.to_string reply);
            Scnoise_obs.Clock.elapsed t0
          in
          let samples = List.sort compare [ one (); one (); one () ] in
          List.nth samples 1
        in
        (* direct sweeps at jobs 1 and 4 — the parity reference *)
        let direct =
          match Deck.load_string ~name:"<bench>" deck with
          | Error msg -> Error msg
          | Ok loaded -> (
              let e = loaded.Deck.elab in
              match
                Compile.compile ?temperature:e.Elab.temperature e.Elab.netlist
                  e.Elab.clock
              with
              | exception Compile.Error msg -> Error msg
              | sys -> (
                  match Pwl.observable sys e.Elab.output_node with
                  | exception Not_found -> Error "output not observable"
                  | output ->
                      Ok
                        (Array.map
                           (fun (fmin, fmax, points) ->
                             let freqs = Grid.linspace fmin fmax points in
                             Array.map
                               (fun jobs ->
                                 let pool = Pool.create ~jobs () in
                                 let eng =
                                   Psd.prepare ~samples_per_phase:spp ~pool
                                     sys ~output
                                 in
                                 let v = Psd.sweep ~pool eng freqs in
                                 Pool.shutdown pool;
                                 v)
                               [| 1; 4 |])
                           ranges)))
        in
        match direct with
        | Error msg -> fail "%s" msg
        | Ok direct -> (
            match Scl.connect (Sv.Unix_path sock) with
            | Error msg -> fail "cannot connect to daemon: %s" msg
            | Ok warm_conn -> (
                (* warm the cache: one pass over both ranges *)
                Array.iter
                  (fun r -> ignore (Scl.rpc warm_conn (Sp.request_to_json (psd_req r))))
                  ranges;
                (* concurrent load phase: [clients] domains, each issuing
                   [requests] single sweeps (alternating ranges) with a
                   batch envelope every 8th iteration *)
                let client_loop k () =
                  match Scl.connect (Sv.Unix_path sock) with
                  | Error msg -> Error msg
                  | Ok conn ->
                      let lats = ref [] in
                      let ok = ref true in
                      for i = 0 to requests - 1 do
                        let r = ranges.((k + i) mod Array.length ranges) in
                        let t0 = Scnoise_obs.Clock.now () in
                        let reply =
                          if i mod 8 = 7 then
                            Scl.rpc conn
                              (Sp.batch_to_json
                                 (Array.to_list
                                    (Array.map (fun r -> psd_req r) ranges)))
                          else Scl.rpc conn (Sp.request_to_json (psd_req r))
                        in
                        (match reply with
                        | Ok j when Sp.reply_ok j ->
                            lats := Scnoise_obs.Clock.elapsed t0 :: !lats
                        | Ok _ | Error _ -> ok := false)
                      done;
                      Scl.close conn;
                      if !ok then Ok !lats else Error "request failed"
                in
                let domains =
                  List.init clients (fun k -> Domain.spawn (client_loop k))
                in
                let results = List.map Domain.join domains in
                match
                  List.find_map
                    (function Error m -> Some m | Ok _ -> None)
                    results
                with
                | Some msg -> fail "client failed: %s" msg
                | None -> (
                    let lats =
                      List.concat_map
                        (function Ok l -> l | Error _ -> [])
                        results
                      |> Array.of_list
                    in
                    (* latency probe: one client, all warm. Under the
                       concurrent load phase a request's latency is
                       dominated by queue wait behind the other
                       clients (admission is serial by design), so the
                       p50/p99 that stand against the cold one-shot
                       are measured closed-loop from a single client
                       afterwards; the load-phase samples only feed
                       the aggregate throughput figure. *)
                    let probe_lats =
                      Array.init
                        (max 32 requests)
                        (fun i ->
                          let r = ranges.(i mod Array.length ranges) in
                          let t0 = Scnoise_obs.Clock.now () in
                          match
                            Scl.rpc warm_conn (Sp.request_to_json (psd_req r))
                          with
                          | Ok j when Sp.reply_ok j ->
                              Scnoise_obs.Clock.elapsed t0
                          | Ok _ | Error _ -> infinity)
                    in
                    Array.sort compare probe_lats;
                    let pct q =
                      probe_lats.(min
                                    (Array.length probe_lats - 1)
                                    (int_of_float
                                       (q
                                       *. float_of_int
                                            (Array.length probe_lats))))
                    in
                    (* parity: one served reply per range vs both direct
                       job counts, compared bit for bit *)
                    let parity_ok = ref true in
                    Array.iteri
                      (fun ri r ->
                        match Scl.rpc warm_conn (Sp.request_to_json (psd_req r)) with
                        | Error _ -> parity_ok := false
                        | Ok reply -> (
                            match
                              Option.bind (Sp.reply_result reply)
                                (fun res ->
                                  Sp.float_array_field res "psd_V2_per_Hz")
                            with
                            | None -> parity_ok := false
                            | Some served ->
                                Array.iter
                                  (fun dir ->
                                    if
                                      Array.length served <> Array.length dir
                                      || not
                                           (Array.for_all2
                                              (fun a b ->
                                                Int64.bits_of_float a
                                                = Int64.bits_of_float b)
                                              served dir)
                                    then parity_ok := false)
                                  direct.(ri)))
                      ranges;
                    (* daemon-side cache counters *)
                    let hits, misses =
                      match
                        Scl.rpc warm_conn
                          (Sp.request_to_json
                             {
                               Sp.rq_id = None;
                               rq_deck = None;
                               rq_deck_name = "<request>";
                               rq_op = Sp.Stats;
                             })
                      with
                      | Ok reply -> (
                          match Sp.reply_result reply with
                          | Some res -> (
                              match
                                Option.bind (Json.member "cache" res)
                                  (Json.member "results")
                              with
                              | Some rc ->
                                  let n k =
                                    match Json.member k rc with
                                    | Some (Json.Num x) -> int_of_float x
                                    | _ -> 0
                                  in
                                  (n "hits", n "misses")
                              | None -> (0, 0))
                          | None -> (0, 0))
                      | Error _ -> (0, 0)
                    in
                    (* graceful remote stop *)
                    ignore
                      (Scl.rpc warm_conn
                         (Sp.request_to_json
                            {
                              Sp.rq_id = None;
                              rq_deck = None;
                              rq_deck_name = "<request>";
                              rq_op = Sp.Shutdown;
                            }));
                    Scl.close warm_conn;
                    ignore (Unix.waitpid [] daemon_pid);
                    let total = Array.length lats in
                    let sum = Array.fold_left ( +. ) 0.0 lats in
                    let p50 = pct 0.50 and p99 = pct 0.99 in
                    let hit_ratio =
                      if hits + misses = 0 then 0.0
                      else float_of_int hits /. float_of_int (hits + misses)
                    in
                    let speedup = cold_s /. p50 in
                    (* EXP-S1: service-mode latency table *)
                    let t = Table.create [ "metric"; "value" ] in
                    List.iter
                      (fun (k, v) -> Table.add_row t [ k; v ])
                      [
                        ("clients", string_of_int clients);
                        ("requests (warm, per client)", string_of_int requests);
                        ( "warm p50 latency, ms (1-client probe)",
                          Printf.sprintf "%.3f" (1e3 *. p50) );
                        ( "warm p99 latency, ms (1-client probe)",
                          Printf.sprintf "%.3f" (1e3 *. p99) );
                        ( "warm sweeps/s (aggregate)",
                          Printf.sprintf "%.0f"
                            (float_of_int total /. (sum /. float_of_int clients)) );
                        ("cold one-shot, ms", Printf.sprintf "%.1f" (1e3 *. cold_s));
                        ("speedup cold/warm-p50", Printf.sprintf "%.1fx" speedup);
                        ("result-cache hit ratio", Printf.sprintf "%.2f" hit_ratio);
                        ("parity vs direct (jobs 1,4)",
                         if !parity_ok then "ok" else "MISMATCH");
                      ];
                    Printf.printf "# EXP-S1: serve latency, %d clients x %d requests\n"
                      clients requests;
                    Table.print t;
                    Printf.printf
                      "SERVE-SMOKE: clients=%d requests=%d warm_p50_ms=%.3f \
                       cold_ms=%.1f speedup=%.1f hit_ratio=%.2f parity=%s\n"
                      clients total (1e3 *. p50) (1e3 *. cold_s) speedup
                      hit_ratio
                      (if !parity_ok then "ok" else "mismatch");
                    (* machine-readable artifact next to the other bench
                       metrics (BENCH_METRICS_DIR) or wherever --json says *)
                    let artifact =
                      match json_path with
                      | Some p -> Some p
                      | None ->
                          Option.map
                            (fun d -> Filename.concat d "BENCH_serve.json")
                            (Sys.getenv_opt "BENCH_METRICS_DIR")
                    in
                    Option.iter
                      (fun path ->
                        let metrics =
                          Bench_diff.
                            [
                              { m_name = "serve:warm p50_s"; m_value = p50; m_floor = floor_s };
                              { m_name = "serve:warm p99_s"; m_value = p99; m_floor = floor_s };
                              { m_name = "serve:cold_s"; m_value = cold_s; m_floor = floor_s };
                            ]
                        in
                        Export.write_string_file path
                          (Bench_diff.metrics_to_json_string metrics ^ "\n");
                        Printf.printf "# wrote %s\n" path)
                      artifact;
                    if !parity_ok then 0 else 1))))
  in
  let clients_arg =
    let doc = "Concurrent client connections." in
    Arg.(value & opt int 4 & info [ "clients" ] ~doc)
  in
  let requests_arg =
    let doc = "Warm requests per client." in
    Arg.(value & opt int 32 & info [ "requests" ] ~doc)
  in
  let cache_arg =
    let doc = "Daemon result-cache capacity." in
    Arg.(value & opt int Sx.default_cache_entries & info [ "cache-entries" ] ~doc)
  in
  let deck_arg =
    let doc =
      "Workload deck ($(b,-) reads stdin; default: the bundled switched-RC \
       testbench)."
    in
    Arg.(value & opt (some string) None & info [ "deck" ] ~doc ~docv:"DECK")
  in
  let json_arg =
    let doc =
      "Write the latency metrics as a scnoise.bench-metrics document to \
       $(docv) (default: BENCH_serve.json under $(b,BENCH_METRICS_DIR) when \
       set)."
    in
    Arg.(value & opt (some string) None & info [ "json" ] ~doc ~docv:"FILE")
  in
  let doc =
    "Load-test a forked `scnoise serve` daemon: concurrent clients replay \
     PSD sweeps (singles and batch envelopes), reporting warm p50/p99 \
     latency, throughput, cache hit ratio, the cold/warm speedup and a \
     bit-level parity check against direct in-process sweeps at 1 and 4 \
     jobs (exit 1 on mismatch)."
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      const (fun () clients requests spp cache deck json ->
          run clients requests spp cache deck json)
      $ setup_term $ clients_arg $ requests_arg $ spp_arg $ cache_arg
      $ deck_arg $ json_arg)

let bench_cmd =
  let doc =
    "Performance telemetry utilities (regression diff, trace checks, \
     baseline pruning, daemon load generator)."
  in
  Cmd.group (Cmd.info "bench" ~doc)
    [ bench_diff_cmd; bench_check_trace_cmd; bench_prune_cmd; bench_serve_cmd ]

(* ---- deck utilities ---- *)

let deck_hash_cmd =
  let run canon path =
    match Deck.load_file path with
    | Error msg ->
        Printf.eprintf "scnoise: %s\n" msg;
        1
    | Ok loaded ->
        if canon then
          print_string (Canon.canonical loaded.Deck.elab loaded.Deck.ast)
        else print_endline (Canon.hash_loaded loaded);
        0
  in
  let path_arg =
    let doc = "Netlist deck ($(b,-) reads stdin)." in
    Arg.(required & pos 0 (some string) None & info [] ~doc ~docv:"DECK")
  in
  let canon_arg =
    let doc = "Print the canonical document being hashed instead of its hash." in
    Arg.(value & flag & info [ "canon" ] ~doc)
  in
  let doc =
    "Print the canonical content hash of a deck — the serve cache key.  \
     Comments, layout, parameter order and spelling of evaluated \
     expressions do not change the hash; any electrical change does.  \
     Analysis directives are excluded (they are request defaults, not \
     circuit content)."
  in
  Cmd.v
    (Cmd.info "hash" ~doc)
    Term.(const (fun () canon path -> run canon path)
          $ setup_term $ canon_arg $ path_arg)

let deck_cmd =
  let doc = "Netlist deck utilities (content hashing)." in
  Cmd.group (Cmd.info "deck" ~doc) [ deck_hash_cmd ]

(* ---- serve: the analysis daemon ---- *)

let serve_cmd =
  let run metrics trace socket port host cache_entries queue_limit timeout
      max_frame =
    with_obs metrics trace @@ fun () ->
    match (socket, port) with
    | None, None ->
        Printf.eprintf
          "scnoise: serve needs an address: --socket PATH or --port N\n";
        2
    | Some _, Some _ ->
        Printf.eprintf "scnoise: choose one of --socket / --port\n";
        2
    | _ -> (
        let addr =
          match socket with
          | Some path -> Sv.Unix_path path
          | None -> Sv.Tcp (host, Option.get port)
        in
        let cfg = Sv.config ~max_frame ~queue_limit ?timeout_s:timeout addr in
        match Sv.create ~exec:(Sx.create ~cache_entries ()) cfg with
        | exception Unix.Unix_error (e, _, _) ->
            Printf.eprintf "scnoise: cannot listen on %s: %s\n"
              (match addr with
              | Sv.Unix_path p -> p
              | Sv.Tcp (h, p) -> Printf.sprintf "%s:%d" h p)
              (Unix.error_message e);
            1
        | server ->
            Sv.run server;
            0)
  in
  let socket_arg =
    let doc = "Listen on a Unix-domain socket at $(docv)." in
    Arg.(value & opt (some string) None & info [ "socket" ] ~doc ~docv:"PATH")
  in
  let port_arg =
    let doc = "Listen on TCP port $(docv) instead of a Unix socket." in
    Arg.(value & opt (some int) None & info [ "port" ] ~doc ~docv:"PORT")
  in
  let host_arg =
    let doc = "Bind address for --port." in
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~doc ~docv:"HOST")
  in
  let cache_arg =
    let doc =
      "Result-cache capacity (the prepared-solver tier holds a quarter of \
       this)."
    in
    Arg.(value & opt int Sx.default_cache_entries
         & info [ "cache-entries" ] ~doc)
  in
  let queue_arg =
    let doc = "Admission queue bound; beyond it requests get an overload \
               error immediately." in
    Arg.(value & opt int 64 & info [ "queue-limit" ] ~doc)
  in
  let timeout_arg =
    let doc =
      "Maximum seconds a request may wait in the queue before being \
       answered with a timeout error."
    in
    Arg.(value & opt (some float) None & info [ "timeout" ] ~doc ~docv:"SECONDS")
  in
  let max_frame_arg =
    let doc = "Largest accepted request frame, bytes." in
    Arg.(value & opt int Sp.default_max_frame & info [ "max-frame" ] ~doc)
  in
  let doc =
    "Run the persistent noise-analysis daemon: length-prefixed JSON \
     requests (psd, variance, contrib, transfer, check, stats, batch \
     envelopes) over a Unix or TCP socket, with a content-addressed \
     result cache and a prepared-solver cache keyed by the canonical deck \
     hash (see $(b,scnoise deck hash)).  Served results are bit-identical \
     to direct CLI runs.  SIGINT/SIGTERM drain in-flight work, then exit."
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      const (fun () metrics trace socket port host cache queue timeout frame ->
          run metrics trace socket port host cache queue timeout frame)
      $ setup_term $ metrics_arg $ trace_arg $ socket_arg $ port_arg
      $ host_arg $ cache_arg $ queue_arg $ timeout_arg $ max_frame_arg)

(* ---- main ---- *)

let () =
  (* defaults for paths that bypass a subcommand (help, errors); each
     subcommand re-runs the setup with its parsed verbosity options *)
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.Warning);
  let doc =
    "Noise spectral density of switched-capacitor circuits via the \
     mixed-frequency-time technique"
  in
  let info = Cmd.info "scnoise" ~version:"1.0.0" ~doc in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval'
       (Cmd.group ~default info
          [
            list_cmd; check_cmd; info_cmd; psd_cmd; variance_cmd; contrib_cmd;
            transfer_cmd; report_cmd; bench_cmd; deck_cmd; serve_cmd;
          ]))
