(* Flat interleaved storage: entry i is (d.(2i), d.(2i+1)).  All the
   arithmetic below reproduces the [Cx] (= Stdlib.Complex) formulas
   term by term so results are bitwise identical to the former boxed
   representation. *)

type t = float array

let dim v = Array.length v / 2

let create n = Array.make (2 * n) 0.0

let init n f =
  let d = Array.make (2 * n) 0.0 in
  for i = 0 to n - 1 do
    let z = (f i : Cx.t) in
    d.(2 * i) <- z.Cx.re;
    d.((2 * i) + 1) <- z.Cx.im
  done;
  d

let of_real v =
  let n = Array.length v in
  let d = Array.make (2 * n) 0.0 in
  for i = 0 to n - 1 do
    d.(2 * i) <- v.(i)
  done;
  d

let of_array a =
  let n = Array.length a in
  let d = Array.make (2 * n) 0.0 in
  for i = 0 to n - 1 do
    d.(2 * i) <- a.(i).Cx.re;
    d.((2 * i) + 1) <- a.(i).Cx.im
  done;
  d

let to_array v = Array.init (dim v) (fun i -> Cx.make v.(2 * i) v.((2 * i) + 1))

let real v = Array.init (dim v) (fun i -> v.(2 * i))

let imag v = Array.init (dim v) (fun i -> v.((2 * i) + 1))

let copy = Array.copy

let check_index v i name =
  if i < 0 || i >= dim v then invalid_arg ("Cvec." ^ name ^ ": index out of bounds")

let get v i =
  check_index v i "get";
  Cx.make v.(2 * i) v.((2 * i) + 1)

let set v i (z : Cx.t) =
  check_index v i "set";
  v.(2 * i) <- z.Cx.re;
  v.((2 * i) + 1) <- z.Cx.im

let check_len a b name =
  if Array.length a <> Array.length b then
    invalid_arg ("Cvec." ^ name ^ ": length mismatch")

let add a b =
  check_len a b "add";
  Array.init (Array.length a) (fun k -> a.(k) +. b.(k))

let sub a b =
  check_len a b "sub";
  Array.init (Array.length a) (fun k -> a.(k) -. b.(k))

let scale (s : Cx.t) a =
  let n = dim a in
  let d = Array.make (2 * n) 0.0 in
  for i = 0 to n - 1 do
    let re = a.(2 * i) and im = a.((2 * i) + 1) in
    d.(2 * i) <- (s.Cx.re *. re) -. (s.Cx.im *. im);
    d.((2 * i) + 1) <- (s.Cx.re *. im) +. (s.Cx.im *. re)
  done;
  d

let scale_re s a = Array.map (fun x -> s *. x) a

let dot_conj a b =
  check_len a b "dot_conj";
  let re = ref 0.0 and im = ref 0.0 in
  for i = 0 to dim a - 1 do
    let ar = a.(2 * i) and ai = -.a.((2 * i) + 1) in
    let br = b.(2 * i) and bi = b.((2 * i) + 1) in
    re := !re +. ((ar *. br) -. (ai *. bi));
    im := !im +. ((ar *. bi) +. (ai *. br))
  done;
  Cx.make !re !im

let norm2 a =
  let acc = ref 0.0 in
  for i = 0 to dim a - 1 do
    let re = a.(2 * i) and im = a.((2 * i) + 1) in
    acc := !acc +. (re *. re) +. (im *. im)
  done;
  sqrt !acc

let norm_inf a =
  let m = ref 0.0 in
  for i = 0 to dim a - 1 do
    m := max !m (Cx.modulus_ri a.(2 * i) a.((2 * i) + 1))
  done;
  !m

let max_abs_diff a b =
  check_len a b "max_abs_diff";
  let m = ref 0.0 in
  for i = 0 to dim a - 1 do
    m :=
      max !m
        (Cx.modulus_ri (a.(2 * i) -. b.(2 * i)) (a.((2 * i) + 1) -. b.((2 * i) + 1)))
  done;
  !m

(* --- in-place kernels --- *)

let fill_zero v = Array.fill v 0 (Array.length v) 0.0

let copy_into v ~into =
  check_len v into "copy_into";
  Array.blit v 0 into 0 (Array.length v)

let add_into a b ~into =
  check_len a b "add_into";
  check_len a into "add_into";
  for k = 0 to Array.length a - 1 do
    into.(k) <- a.(k) +. b.(k)
  done

let sub_into a b ~into =
  check_len a b "sub_into";
  check_len a into "sub_into";
  for k = 0 to Array.length a - 1 do
    into.(k) <- a.(k) -. b.(k)
  done

let scale_into (s : Cx.t) a ~into =
  check_len a into "scale_into";
  for i = 0 to dim a - 1 do
    let re = a.(2 * i) and im = a.((2 * i) + 1) in
    into.(2 * i) <- (s.Cx.re *. re) -. (s.Cx.im *. im);
    into.((2 * i) + 1) <- (s.Cx.re *. im) +. (s.Cx.im *. re)
  done

let scale_re_into s a ~into =
  check_len a into "scale_re_into";
  for k = 0 to Array.length a - 1 do
    into.(k) <- s *. a.(k)
  done

let axpy_ri_into ~sre ~sim ~x ~into =
  check_len x into "axpy_into";
  for i = 0 to dim x - 1 do
    let re = x.(2 * i) and im = x.((2 * i) + 1) in
    into.(2 * i) <- ((sre *. re) -. (sim *. im)) +. into.(2 * i);
    into.((2 * i) + 1) <- ((sre *. im) +. (sim *. re)) +. into.((2 * i) + 1)
  done

let axpy_into ~s:(s : Cx.t) ~x ~into = axpy_ri_into ~sre:s.Cx.re ~sim:s.Cx.im ~x ~into

let data v = v

let of_data d =
  if Array.length d land 1 <> 0 then invalid_arg "Cvec.of_data: odd length";
  d

(* --- panels: blocked multi-RHS storage ---

   A panel packs [width] complex vectors column-major over the block:
   entry (state i, column b) lives at [2 * (i * width + b)] (re) and
   the following slot (im).  All [width] columns of one state are
   contiguous, so a kernel that walks states in its outer loop touches
   each factor/matrix element once per [width] right-hand sides and
   streams over [2 * width] adjacent floats in its inner loop. *)

type panel = float array

let panel_create ~dim ~width =
  if dim < 0 then invalid_arg "Cvec.panel_create: negative dimension";
  if width < 1 then invalid_arg "Cvec.panel_create: width < 1";
  Array.make (2 * dim * width) 0.0

let panel_dim p ~width =
  if width < 1 then invalid_arg "Cvec.panel_dim: width < 1";
  if Array.length p mod (2 * width) <> 0 then
    invalid_arg "Cvec.panel_dim: length is not a multiple of the width";
  Array.length p / (2 * width)

let panel_check v p ~width ~col name =
  if width < 1 then invalid_arg ("Cvec." ^ name ^ ": width < 1");
  if col < 0 || col >= width then
    invalid_arg ("Cvec." ^ name ^ ": column out of bounds");
  if Array.length p <> Array.length v * width then
    invalid_arg ("Cvec." ^ name ^ ": panel size mismatch")

let panel_set_col v p ~width ~col =
  panel_check v p ~width ~col "panel_set_col";
  for i = 0 to dim v - 1 do
    let k = 2 * ((i * width) + col) in
    p.(k) <- v.(2 * i);
    p.(k + 1) <- v.((2 * i) + 1)
  done

let panel_get_col p ~width ~col ~into =
  panel_check into p ~width ~col "panel_get_col";
  for i = 0 to dim into - 1 do
    let k = 2 * ((i * width) + col) in
    into.(2 * i) <- p.(k);
    into.((2 * i) + 1) <- p.(k + 1)
  done

let panel_fill_zero p = Array.fill p 0 (Array.length p) 0.0

(* Per-column complex axpy with one (sre, sim) scalar per column; the
   arithmetic per column is exactly {!axpy_ri_into}'s, so a panel
   column stays bitwise identical to the corresponding scalar call. *)
let axpy_block_into ~width ~sre ~sim ~x ~into =
  if width < 1 then invalid_arg "Cvec.axpy_block_into: width < 1";
  if Array.length sre < width || Array.length sim < width then
    invalid_arg "Cvec.axpy_block_into: scalar arrays shorter than width";
  if Array.length x <> Array.length into then
    invalid_arg "Cvec.axpy_block_into: panel size mismatch";
  (* entry checks pin all indices below; unsafe accesses only drop the
     bounds checks, the arithmetic and its order are unchanged *)
  let n = Array.length x / (2 * width) in
  for i = 0 to n - 1 do
    let base = 2 * i * width in
    for b = 0 to width - 1 do
      let k = base + (2 * b) in
      let re = Array.unsafe_get x k and im = Array.unsafe_get x (k + 1) in
      let sr = Array.unsafe_get sre b and si = Array.unsafe_get sim b in
      Array.unsafe_set into k
        (((sr *. re) -. (si *. im)) +. Array.unsafe_get into k);
      Array.unsafe_set into (k + 1)
        (((sr *. im) +. (si *. re)) +. Array.unsafe_get into (k + 1))
    done
  done
