(** Dense complex vectors.

    Stored as a flat [float array] with interleaved re/im parts
    ([re_0; im_0; re_1; im_1; ...]), which OCaml keeps unboxed — the
    hot kernels of the MFT sweep never allocate a [Complex.t] record
    per element.  The API still speaks {!Cx.t} through {!get}/{!set};
    {!data} exposes the raw buffer for kernels that want to stream
    over it. *)

type t

val dim : t -> int
(** Number of complex entries. *)

val create : int -> t
(** Zero vector. *)

val init : int -> (int -> Cx.t) -> t

val of_real : Vec.t -> t

val of_array : Cx.t array -> t

val to_array : t -> Cx.t array

val real : t -> Vec.t

val imag : t -> Vec.t

val copy : t -> t

val get : t -> int -> Cx.t

val set : t -> int -> Cx.t -> unit

val add : t -> t -> t

val sub : t -> t -> t

val scale : Cx.t -> t -> t

val scale_re : float -> t -> t

val dot_conj : t -> t -> Cx.t
(** [dot_conj a b] is [sum (conj a_i * b_i)]. *)

val norm2 : t -> float

val norm_inf : t -> float

val max_abs_diff : t -> t -> float

(** {1 In-place kernels}

    The [_into] variants write their result into a caller-provided
    vector and allocate nothing.  Unless stated otherwise the output
    may alias an input (every kernel below is element-wise). *)

val fill_zero : t -> unit

val copy_into : t -> into:t -> unit

val add_into : t -> t -> into:t -> unit

val sub_into : t -> t -> into:t -> unit

val scale_into : Cx.t -> t -> into:t -> unit

val scale_re_into : float -> t -> into:t -> unit

val axpy_into : s:Cx.t -> x:t -> into:t -> unit
(** [axpy_into ~s ~x ~into] accumulates [into += s * x]. *)

val axpy_ri_into : sre:float -> sim:float -> x:t -> into:t -> unit
(** {!axpy_into} with the scalar passed as two floats (no box). *)

(** {1 Panels — blocked multi-RHS storage}

    A panel is [width] complex vectors of a common dimension packed
    column-major over the block: entry (state [i], column [b]) lives at
    [2 * (i * width + b)] (re) / [2 * (i * width + b) + 1] (im).  All
    [width] columns of one state are adjacent, so blocked kernels
    ({!Lu.solve_block_into}, {!Cmat.mul_block_into}, ...) load each
    factor element once per [width] right-hand sides and stream over
    contiguous memory in their inner loops.  Each column of a blocked
    kernel's result is bitwise identical to the corresponding
    single-RHS call. *)

type panel = float array
(** Raw interleaved storage, length [2 * dim * width]. *)

val panel_create : dim:int -> width:int -> panel
(** Zero panel of [width] columns of dimension [dim]. *)

val panel_dim : panel -> width:int -> int
(** Number of complex entries per column. *)

val panel_set_col : t -> panel -> width:int -> col:int -> unit
(** Scatter a vector into column [col] of the panel. *)

val panel_get_col : panel -> width:int -> col:int -> into:t -> unit
(** Gather column [col] of the panel into a vector. *)

val panel_fill_zero : panel -> unit

val axpy_block_into :
  width:int -> sre:float array -> sim:float array -> x:panel -> into:panel ->
  unit
(** Per-column complex axpy: column [b] of [into] accumulates
    [(sre.(b) + i sim.(b)) * x_b], with {!axpy_ri_into}'s arithmetic
    per column.  [into] may alias [x] only if they are the same panel
    elementwise (the update is elementwise). *)

(** {1 Raw storage} *)

val data : t -> float array
(** The interleaved backing buffer itself (length [2 * dim], not a
    copy): entry [i] lives at [(data v).(2*i)] (re) and
    [(data v).(2*i + 1)] (im). *)

val of_data : float array -> t
(** Adopt an interleaved buffer (length must be even; not copied). *)
