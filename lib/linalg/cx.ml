type t = Complex.t = { re : float; im : float }

let zero = Complex.zero

let one = Complex.one

let i = Complex.i

let re x = { re = x; im = 0.0 }

let make re im = { re; im }

let ( +: ) = Complex.add

let ( -: ) = Complex.sub

let ( *: ) = Complex.mul

let ( /: ) = Complex.div

let neg = Complex.neg

let conj = Complex.conj

let scale s z = { re = s *. z.re; im = s *. z.im }

let modulus = Complex.norm

(* [Complex.norm] on unboxed parts (it is [Float.hypot] in this
   stdlib), so flat kernels rank magnitudes bitwise-identically to the
   boxed path. *)
external modulus_ri : float -> float -> float = "caml_hypot_float" "caml_hypot"
  [@@unboxed] [@@noalloc]

let arg = Complex.arg

let exp = Complex.exp

let cis theta = { re = cos theta; im = sin theta }

let is_finite z =
  match (classify_float z.re, classify_float z.im) with
  | (FP_infinite | FP_nan), _ | _, (FP_infinite | FP_nan) -> false
  | (FP_normal | FP_subnormal | FP_zero), (FP_normal | FP_subnormal | FP_zero)
    ->
      true

let approx_equal ?(tol = 1e-12) a b = Complex.norm (Complex.sub a b) <= tol
