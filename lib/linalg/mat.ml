type t = { nr : int; nc : int; d : float array }

let create nr nc =
  if nr < 0 || nc < 0 then invalid_arg "Mat.create: negative size";
  { nr; nc; d = Array.make (nr * nc) 0.0 }

let init nr nc f =
  if nr < 0 || nc < 0 then invalid_arg "Mat.init: negative size";
  let d = Array.make (nr * nc) 0.0 in
  for i = 0 to nr - 1 do
    for j = 0 to nc - 1 do
      d.((i * nc) + j) <- f i j
    done
  done;
  { nr; nc; d }

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let diag v =
  let n = Array.length v in
  init n n (fun i j -> if i = j then v.(i) else 0.0)

let of_arrays rows_arr =
  let nr = Array.length rows_arr in
  if nr = 0 then invalid_arg "Mat.of_arrays: empty";
  let nc = Array.length rows_arr.(0) in
  Array.iter
    (fun r ->
      if Array.length r <> nc then invalid_arg "Mat.of_arrays: ragged rows")
    rows_arr;
  init nr nc (fun i j -> rows_arr.(i).(j))

let rows m = m.nr

let cols m = m.nc

let to_arrays m =
  Array.init m.nr (fun i -> Array.init m.nc (fun j -> m.d.((i * m.nc) + j)))

let check_bounds m i j name =
  if i < 0 || i >= m.nr || j < 0 || j >= m.nc then
    invalid_arg ("Mat." ^ name ^ ": index out of bounds")

let get m i j =
  check_bounds m i j "get";
  m.d.((i * m.nc) + j)

let data m = m.d

let set m i j x =
  check_bounds m i j "set";
  m.d.((i * m.nc) + j) <- x

let update m i j f =
  check_bounds m i j "update";
  let k = (i * m.nc) + j in
  m.d.(k) <- f m.d.(k)

let copy m = { m with d = Array.copy m.d }

let transpose m = init m.nc m.nr (fun i j -> m.d.((j * m.nc) + i))

let same_dims a b name =
  if a.nr <> b.nr || a.nc <> b.nc then
    invalid_arg ("Mat." ^ name ^ ": dimension mismatch")

let add a b =
  same_dims a b "add";
  { a with d = Array.init (Array.length a.d) (fun k -> a.d.(k) +. b.d.(k)) }

let sub a b =
  same_dims a b "sub";
  { a with d = Array.init (Array.length a.d) (fun k -> a.d.(k) -. b.d.(k)) }

let scale s m = { m with d = Array.map (fun x -> s *. x) m.d }

let mul a b =
  if a.nc <> b.nr then invalid_arg "Mat.mul: inner dimension mismatch";
  let c = create a.nr b.nc in
  for i = 0 to a.nr - 1 do
    for k = 0 to a.nc - 1 do
      let aik = a.d.((i * a.nc) + k) in
      if aik <> 0.0 then begin
        let brow = k * b.nc in
        let crow = i * b.nc in
        for j = 0 to b.nc - 1 do
          c.d.(crow + j) <- c.d.(crow + j) +. (aik *. b.d.(brow + j))
        done
      end
    done
  done;
  c

let mul_vec m v =
  if m.nc <> Array.length v then invalid_arg "Mat.mul_vec: dimension mismatch";
  Array.init m.nr (fun i ->
      let acc = ref 0.0 in
      let base = i * m.nc in
      for j = 0 to m.nc - 1 do
        acc := !acc +. (m.d.(base + j) *. v.(j))
      done;
      !acc)

let mul_transpose_vec m v =
  if m.nr <> Array.length v then
    invalid_arg "Mat.mul_transpose_vec: dimension mismatch";
  let r = Array.make m.nc 0.0 in
  for i = 0 to m.nr - 1 do
    let vi = v.(i) in
    if vi <> 0.0 then begin
      let base = i * m.nc in
      for j = 0 to m.nc - 1 do
        r.(j) <- r.(j) +. (m.d.(base + j) *. vi)
      done
    end
  done;
  r

let row m i =
  if i < 0 || i >= m.nr then invalid_arg "Mat.row: out of bounds";
  Array.init m.nc (fun j -> m.d.((i * m.nc) + j))

let col m j =
  if j < 0 || j >= m.nc then invalid_arg "Mat.col: out of bounds";
  Array.init m.nr (fun i -> m.d.((i * m.nc) + j))

let map f m = { m with d = Array.map f m.d }

let norm_inf m =
  let best = ref 0.0 in
  for i = 0 to m.nr - 1 do
    let acc = ref 0.0 in
    for j = 0 to m.nc - 1 do
      acc := !acc +. abs_float m.d.((i * m.nc) + j)
    done;
    best := max !best !acc
  done;
  !best

let norm_fro m =
  sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 m.d)

let max_abs m = Array.fold_left (fun acc x -> max acc (abs_float x)) 0.0 m.d

let max_abs_diff a b =
  same_dims a b "max_abs_diff";
  let best = ref 0.0 in
  for k = 0 to Array.length a.d - 1 do
    best := max !best (abs_float (a.d.(k) -. b.d.(k)))
  done;
  !best

let is_square m = m.nr = m.nc

let symmetrize m =
  if not (is_square m) then invalid_arg "Mat.symmetrize: not square";
  init m.nr m.nc (fun i j ->
      0.5 *. (m.d.((i * m.nc) + j) +. m.d.((j * m.nc) + i)))

let submatrix m ~rows:ris ~cols:cjs =
  let ris = Array.of_list ris and cjs = Array.of_list cjs in
  Array.iter (fun i -> if i < 0 || i >= m.nr then invalid_arg "Mat.submatrix") ris;
  Array.iter (fun j -> if j < 0 || j >= m.nc then invalid_arg "Mat.submatrix") cjs;
  init (Array.length ris) (Array.length cjs) (fun i j ->
      m.d.((ris.(i) * m.nc) + cjs.(j)))

let hcat a b =
  if a.nr <> b.nr then invalid_arg "Mat.hcat: row mismatch";
  init a.nr (a.nc + b.nc) (fun i j ->
      if j < a.nc then a.d.((i * a.nc) + j) else b.d.((i * b.nc) + (j - a.nc)))

let vcat a b =
  if a.nc <> b.nc then invalid_arg "Mat.vcat: column mismatch";
  init (a.nr + b.nr) a.nc (fun i j ->
      if i < a.nr then a.d.((i * a.nc) + j) else b.d.(((i - a.nr) * b.nc) + j))

let equal ?(tol = 0.0) a b =
  a.nr = b.nr && a.nc = b.nc && max_abs_diff a b <= tol

let pp fmt m =
  Format.fprintf fmt "@[<v>";
  for i = 0 to m.nr - 1 do
    Format.fprintf fmt "[";
    for j = 0 to m.nc - 1 do
      if j > 0 then Format.fprintf fmt ", ";
      Format.fprintf fmt "%10.4g" m.d.((i * m.nc) + j)
    done;
    Format.fprintf fmt "]";
    if i < m.nr - 1 then Format.fprintf fmt "@,"
  done;
  Format.fprintf fmt "@]"
