(** Factored symmetric PSD matrices [K ≈ Z Zᵀ].

    The low-rank covariance backend stores and propagates the [n×r]
    factor [Z] instead of the dense [n×n] covariance.  Rank is
    controlled by {!compress}: a thin QR of the factor plus an
    rank-revealing pivoted Cholesky of the small core (of the [n×n]
    Gram matrix directly when the factor is wide), truncating
    directions whose pivot falls below [rtol] times the largest
    diagonal entry of [K].  [rtol] defaults to the [SCNOISE_LOWRANK_RTOL]
    environment variable (then [1e-14], which preserves dense-backend
    parity; loosen towards [1e-8] for engineering-accuracy runs on
    large circuits). *)

type t

val default_rtol : unit -> float

val zero : int -> t
(** The zero matrix on [n] states (an empty factor). *)

val of_factor : Mat.t -> t
(** Wrap an explicit [n×r] factor. *)

val of_dense : ?rtol:float -> Mat.t -> t
(** Factor a dense symmetric PSD matrix ([rtol] defaults to [1e-15] —
    a pure noise-floor clip, not the propagation tolerance). *)

val factor : t -> Mat.t

val nstates : t -> int

val rank : t -> int

val bytes : t -> int
(** Payload size of the factor in bytes. *)

val to_dense : t -> Mat.t
(** Materialise [Z Zᵀ] (exactly symmetric by construction). *)

val apply : t -> Vec.t -> Vec.t
(** [apply t v] is [K v = Z (Zᵀ v)] — [O(n r)]. *)

val quad : t -> Vec.t -> float
(** [quad t v] is [vᵀ K v = ‖Zᵀ v‖²] (non-negative by construction). *)

val max_diag : t -> float
(** Largest diagonal entry of [K] — also its largest-magnitude entry,
    [K] being PSD. *)

val append : t -> Mat.t -> t
(** Column-concatenate a factor: [K + F Fᵀ] without compression. *)

val propagate : Linop.t -> t -> t
(** Apply an operator to every factor column: [Z ← P Z], representing
    [P K Pᵀ].  The operator may be a dense transition matrix or a
    matrix-free Krylov propagator. *)

val propagate_mat : Mat.t -> t -> t
(** {!propagate} specialised to a dense transition matrix — a single
    matrix product, much faster than the column-at-a-time operator
    path. *)

val compress : ?rtol:float -> t -> t

val vanloan_step : ?rtol:float -> phi:Linop.t -> lq:Mat.t -> t -> t
(** One factored Van Loan covariance step
    [K ← Phi K Phiᵀ + Lq Lqᵀ]: propagate the factor through [phi],
    append the process-noise factor [lq], re-compress. *)

val vanloan_step_mat : ?rtol:float -> phi:Mat.t -> lq:Mat.t -> t -> t
(** {!vanloan_step} with a dense transition matrix
    ({!propagate_mat}). *)
