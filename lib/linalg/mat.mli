(** Dense real matrices, row-major.

    Sizes are validated on every operation; mismatches raise
    [Invalid_argument].  The representation is exposed read-only through
    accessors; construct with {!create}/{!init}/{!of_arrays}. *)

type t

val create : int -> int -> t
(** [create rows cols] is the zero matrix. *)

val init : int -> int -> (int -> int -> float) -> t

val identity : int -> t

val diag : float array -> t
(** Square matrix with the given diagonal. *)

val of_arrays : float array array -> t
(** Rows must be non-empty and of equal length. *)

val to_arrays : t -> float array array

val rows : t -> int

val cols : t -> int

val get : t -> int -> int -> float

(** {1 Raw storage} *)

val data : t -> float array
(** The backing row-major buffer (element [(i, j)] at [i * cols + j]).
    Read-only by convention: mutate only through {!set}/{!update}. *)

val set : t -> int -> int -> float -> unit

val update : t -> int -> int -> (float -> float) -> unit
(** [update m i j f] sets [m.(i).(j) <- f m.(i).(j)]; used by MNA
    stamping. *)

val copy : t -> t

val transpose : t -> t

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val mul : t -> t -> t
(** Matrix product. *)

val mul_vec : t -> Vec.t -> Vec.t

val mul_transpose_vec : t -> Vec.t -> Vec.t
(** [mul_transpose_vec m v] is [mᵀ v] without forming the transpose. *)

val row : t -> int -> Vec.t

val col : t -> int -> Vec.t

val map : (float -> float) -> t -> t

val norm_inf : t -> float
(** Maximum absolute row sum. *)

val norm_fro : t -> float

val max_abs : t -> float

val max_abs_diff : t -> t -> float

val is_square : t -> bool

val symmetrize : t -> t
(** [(m + mᵀ)/2]; used to keep covariance propagation symmetric against
    numerical drift. *)

val submatrix : t -> rows:int list -> cols:int list -> t
(** Extract the submatrix with the given row/column index lists (order is
    preserved, duplicates allowed). *)

val hcat : t -> t -> t

val vcat : t -> t -> t

val equal : ?tol:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
