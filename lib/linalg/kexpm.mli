(** Krylov (Arnoldi) approximation of the matrix-exponential action.

    Computes [w = e^{tau A} v] by projecting onto a Krylov subspace of
    the operator — never materialising [e^{tau A}] — with the subspace
    dimension grown adaptively until a generalised-residual estimate
    meets the tolerance, and the interval covered by sub-steps (basis
    restarts) when the dimension cap is hit first.  The per-call
    tolerance defaults to the [SCNOISE_KEXPM_TOL] environment variable
    (then [1e-12]).

    Telemetry: [kexpm.applies] / [kexpm.restarts] counters and
    [kexpm.subspace_dim] / [kexpm.substeps] count histograms. *)

type workspace
(** Reusable scratch (basis columns, Hessenberg block, iterate
    buffers).  Not thread-safe: use one workspace per domain. *)

val workspace : unit -> workspace

val default_tol : unit -> float
(** [SCNOISE_KEXPM_TOL] when set, [1e-12] otherwise. *)

val expmv : ?tol:float -> ?ws:workspace -> Linop.t -> tau:float -> Vec.t -> Vec.t
(** [expmv op ~tau v] is [e^{tau A} v].  The operator must be square;
    raises [Invalid_argument] otherwise. *)

val expmv_into :
  ?tol:float -> ?ws:workspace -> Linop.t -> tau:float -> Vec.t ->
  dst:float array -> unit
(** Allocation-light {!expmv} writing into a caller buffer ([dst] must
    not alias [v]). *)

val expm_block : ?tol:float -> ?ws:workspace -> Linop.t -> tau:float -> Mat.t -> Mat.t
(** [expm_block op ~tau z] applies [e^{tau A}] to every column of [z]
    (the low-rank propagation primitive), reusing one workspace across
    columns. *)

val gramian_factor :
  ?tol:float -> ?ws:workspace -> Linop.t -> b:Mat.t -> tau:float -> Mat.t
(** [gramian_factor op ~b ~tau] returns a factor [f] with
    [f fᵀ ≈ ∫₀^tau e^{As} b bᵀ e^{Aᵀs} ds] — the discrete process-noise
    covariance of one step, in factored form.  Columns are
    [sqrt(w_k) e^{A s_k} b_j] over a 10-point Gauss-Legendre rule; the
    rule is spectrally accurate for moderate [norm(A) * tau] (callers
    sub-step to keep it ≤ ~2 for full precision). *)
