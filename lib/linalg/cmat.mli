(** Dense complex matrices, row-major, stored as a flat [float array]
    with interleaved re/im parts (see {!Cvec} for the layout rationale). *)

type t

val create : int -> int -> t

val init : int -> int -> (int -> int -> Cx.t) -> t

val identity : int -> t

val of_real : Mat.t -> t

val real : t -> Mat.t

val imag : t -> Mat.t

val rows : t -> int

val cols : t -> int

val get : t -> int -> int -> Cx.t

val set : t -> int -> int -> Cx.t -> unit

val copy : t -> t

val add : t -> t -> t

val sub : t -> t -> t

val scale : Cx.t -> t -> t

val mul : t -> t -> t

val mul_vec : t -> Cvec.t -> Cvec.t

val mul_vec_into : t -> Cvec.t -> into:Cvec.t -> unit
(** Allocation-free {!mul_vec}.  [into] must not alias the input
    vector (the product is accumulated row by row). *)

val mul_block_into :
  t -> width:int -> x:Cvec.panel -> into:Cvec.panel -> unit
(** Blocked multi-RHS {!mul_vec_into} over column-major panels
    ({!Cvec.panel}): [into_b = m x_b] for every column [b], each
    matrix element loaded once per [width] columns.  Column [b] of the
    result is bitwise identical to {!mul_vec_into} applied to column
    [b] alone.  [into] must not alias [x]; allocation-free. *)

val transpose : t -> t

val adjoint : t -> t
(** Conjugate transpose. *)

val max_abs : t -> float

val max_abs_diff : t -> t -> float

val is_hermitian : ?tol:float -> t -> bool

val data : t -> float array
(** The interleaved row-major backing buffer (length
    [2 * rows * cols], not a copy); entry (i,j) lives at index
    [2 * (i * cols + j)]. *)
