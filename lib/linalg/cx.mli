(** Complex scalar helpers on top of [Stdlib.Complex]. *)

type t = Complex.t = { re : float; im : float }

val zero : t

val one : t

val i : t

val re : float -> t
(** Real number as a complex. *)

val make : float -> float -> t

val ( +: ) : t -> t -> t

val ( -: ) : t -> t -> t

val ( *: ) : t -> t -> t

val ( /: ) : t -> t -> t

val neg : t -> t

val conj : t -> t

val scale : float -> t -> t

val modulus : t -> float

external modulus_ri : float -> float -> float = "caml_hypot_float" "caml_hypot"
  [@@unboxed] [@@noalloc]
(** [modulus_ri re im] is [modulus {re; im}] without boxing the
    argument or the result (same overflow-safe algorithm,
    bit-for-bit: [Complex.norm] is [Float.hypot] in this stdlib). *)

val arg : t -> float

val exp : t -> t

val cis : float -> t
(** [cis theta] is [exp (i theta)]. *)

val is_finite : t -> bool

val approx_equal : ?tol:float -> t -> t -> bool
