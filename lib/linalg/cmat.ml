(* Row-major flat storage with interleaved re/im: entry (i,j) lives at
   d.(2*(i*nc + j)) / d.(2*(i*nc + j) + 1).  The arithmetic mirrors the
   [Cx] formulas exactly (see cvec.ml). *)

type t = { nr : int; nc : int; d : float array }

let create nr nc =
  if nr < 0 || nc < 0 then invalid_arg "Cmat.create: negative size";
  { nr; nc; d = Array.make (2 * nr * nc) 0.0 }

let init nr nc f =
  let m = create nr nc in
  for i = 0 to nr - 1 do
    for j = 0 to nc - 1 do
      let z = (f i j : Cx.t) in
      let k = 2 * ((i * nc) + j) in
      m.d.(k) <- z.Cx.re;
      m.d.(k + 1) <- z.Cx.im
    done
  done;
  m

let identity n = init n n (fun i j -> if i = j then Cx.one else Cx.zero)

let of_real m =
  let nr = Mat.rows m and nc = Mat.cols m in
  let c = create nr nc in
  for i = 0 to nr - 1 do
    for j = 0 to nc - 1 do
      c.d.(2 * ((i * nc) + j)) <- Mat.get m i j
    done
  done;
  c

let real m = Mat.init m.nr m.nc (fun i j -> m.d.(2 * ((i * m.nc) + j)))

let imag m = Mat.init m.nr m.nc (fun i j -> m.d.((2 * ((i * m.nc) + j)) + 1))

let rows m = m.nr

let cols m = m.nc

let check_bounds m i j name =
  if i < 0 || i >= m.nr || j < 0 || j >= m.nc then
    invalid_arg ("Cmat." ^ name ^ ": index out of bounds")

let get m i j =
  check_bounds m i j "get";
  let k = 2 * ((i * m.nc) + j) in
  Cx.make m.d.(k) m.d.(k + 1)

let set m i j (z : Cx.t) =
  check_bounds m i j "set";
  let k = 2 * ((i * m.nc) + j) in
  m.d.(k) <- z.Cx.re;
  m.d.(k + 1) <- z.Cx.im

let copy m = { m with d = Array.copy m.d }

let same_dims a b name =
  if a.nr <> b.nr || a.nc <> b.nc then
    invalid_arg ("Cmat." ^ name ^ ": dimension mismatch")

let add a b =
  same_dims a b "add";
  { a with d = Array.init (Array.length a.d) (fun k -> a.d.(k) +. b.d.(k)) }

let sub a b =
  same_dims a b "sub";
  { a with d = Array.init (Array.length a.d) (fun k -> a.d.(k) -. b.d.(k)) }

let scale (s : Cx.t) m =
  let out = { m with d = Array.make (Array.length m.d) 0.0 } in
  for k = 0 to (Array.length m.d / 2) - 1 do
    let re = m.d.(2 * k) and im = m.d.((2 * k) + 1) in
    out.d.(2 * k) <- (s.Cx.re *. re) -. (s.Cx.im *. im);
    out.d.((2 * k) + 1) <- (s.Cx.re *. im) +. (s.Cx.im *. re)
  done;
  out

let mul a b =
  if a.nc <> b.nr then invalid_arg "Cmat.mul: inner dimension mismatch";
  let c = create a.nr b.nc in
  for i = 0 to a.nr - 1 do
    for k = 0 to a.nc - 1 do
      let ka = 2 * ((i * a.nc) + k) in
      let ar = a.d.(ka) and ai = a.d.(ka + 1) in
      if ar <> 0.0 || ai <> 0.0 then begin
        let brow = 2 * k * b.nc in
        let crow = 2 * i * b.nc in
        for j = 0 to b.nc - 1 do
          let br = b.d.(brow + (2 * j)) and bi = b.d.(brow + (2 * j) + 1) in
          c.d.(crow + (2 * j)) <-
            c.d.(crow + (2 * j)) +. ((ar *. br) -. (ai *. bi));
          c.d.(crow + (2 * j) + 1) <-
            c.d.(crow + (2 * j) + 1) +. ((ar *. bi) +. (ai *. br))
        done
      end
    done
  done;
  c

let mul_vec_into m v ~into =
  if m.nc <> Cvec.dim v then invalid_arg "Cmat.mul_vec: dimension mismatch";
  if m.nr <> Cvec.dim into then
    invalid_arg "Cmat.mul_vec_into: output dimension mismatch";
  let vd = Cvec.data v and od = Cvec.data into in
  if vd == od && m.nr > 0 && m.nc > 0 then
    invalid_arg "Cmat.mul_vec_into: output must not alias the input";
  for i = 0 to m.nr - 1 do
    let base = 2 * i * m.nc in
    let re = ref 0.0 and im = ref 0.0 in
    for j = 0 to m.nc - 1 do
      let ar = m.d.(base + (2 * j)) and ai = m.d.(base + (2 * j) + 1) in
      let br = vd.(2 * j) and bi = vd.((2 * j) + 1) in
      re := !re +. ((ar *. br) -. (ai *. bi));
      im := !im +. ((ar *. bi) +. (ai *. br))
    done;
    od.(2 * i) <- !re;
    od.((2 * i) + 1) <- !im
  done

let mul_vec m v =
  let out = Cvec.create m.nr in
  mul_vec_into m v ~into:out;
  out

(* Blocked multi-RHS matvec over a column-major panel (see Cvec's panel
   layout): each matrix element is loaded once per [width] columns and
   the inner loop streams over the [2 * width] adjacent floats of one
   state.  The per-column accumulation order is exactly
   [mul_vec_into]'s (zero, then add the j-terms in order), so column b
   of the result is bitwise identical to [mul_vec_into] on column b. *)
let mul_block_into m ~width ~x ~into =
  if width < 1 then invalid_arg "Cmat.mul_block_into: width < 1";
  if Array.length x <> 2 * m.nc * width then
    invalid_arg "Cmat.mul_block_into: dimension mismatch";
  if Array.length into <> 2 * m.nr * width then
    invalid_arg "Cmat.mul_block_into: output dimension mismatch";
  if x == into && m.nr > 0 && m.nc > 0 then
    invalid_arg "Cmat.mul_block_into: output must not alias the input";
  (* entry checks pin all indices below; unsafe accesses only drop the
     bounds checks, the arithmetic and its order are unchanged *)
  let d = m.d in
  for i = 0 to m.nr - 1 do
    let obase = 2 * i * width in
    Array.fill into obase (2 * width) 0.0;
    let mbase = 2 * i * m.nc in
    for j = 0 to m.nc - 1 do
      let ar = Array.unsafe_get d (mbase + (2 * j))
      and ai = Array.unsafe_get d (mbase + (2 * j) + 1) in
      let xbase = 2 * j * width in
      for b = 0 to width - 1 do
        let xk = xbase + (2 * b) and ok = obase + (2 * b) in
        let br = Array.unsafe_get x xk and bi = Array.unsafe_get x (xk + 1) in
        Array.unsafe_set into ok
          (Array.unsafe_get into ok +. ((ar *. br) -. (ai *. bi)));
        Array.unsafe_set into (ok + 1)
          (Array.unsafe_get into (ok + 1) +. ((ar *. bi) +. (ai *. br)))
      done
    done
  done

let transpose m = init m.nc m.nr (fun i j -> get m j i)

let adjoint m = init m.nc m.nr (fun i j -> Cx.conj (get m j i))

let max_abs m =
  let best = ref 0.0 in
  for k = 0 to (Array.length m.d / 2) - 1 do
    best := max !best (Cx.modulus_ri m.d.(2 * k) m.d.((2 * k) + 1))
  done;
  !best

let max_abs_diff a b =
  same_dims a b "max_abs_diff";
  let best = ref 0.0 in
  for k = 0 to (Array.length a.d / 2) - 1 do
    best :=
      max !best
        (Cx.modulus_ri
           (a.d.(2 * k) -. b.d.(2 * k))
           (a.d.((2 * k) + 1) -. b.d.((2 * k) + 1)))
  done;
  !best

let is_hermitian ?(tol = 1e-12) m =
  m.nr = m.nc && max_abs_diff m (adjoint m) <= tol

let data m = m.d
