(** Abstract linear operators for matrix-free kernels.

    The Krylov propagators ({!Kexpm}) and the low-rank covariance
    engine consume an operator's action rather than a materialised
    {!Mat.t}: a [rows × cols] map with an allocation-free
    [apply_into], an optional transpose action, and an optional
    infinity-norm estimate used for step-size selection. *)

type t

val rows : t -> int

val cols : t -> int

val norm_est : t -> float option
(** An (upper) estimate of the operator's infinity norm when one is
    known; adapters built from matrices always carry it. *)

val of_fun :
  ?applyt:(src:float array -> dst:float array -> unit) ->
  ?norm_est:float ->
  rows:int ->
  cols:int ->
  (src:float array -> dst:float array -> unit) ->
  t
(** Wrap a bare action.  [applyt] is the transpose action when the
    caller has one. *)

val of_mat : Mat.t -> t
(** Dense adapter over the matrix's row-major buffer; carries the
    exact [Mat.norm_inf] and a transpose action. *)

val of_sparse : ?drop_tol:float -> Mat.t -> t
(** Compressed-sparse-row adapter.  Entries with magnitude at or below
    [drop_tol] (default [0.0], i.e. only structural zeros) are dropped
    at construction; on the kept pattern the action is bitwise the
    dense matvec. *)

val auto : Mat.t -> t
(** {!of_sparse} when the matrix is large and mostly zeros (fill
    ≤ 25% at n ≥ 32), {!of_mat} otherwise. *)

val apply_into : t -> src:float array -> dst:float array -> unit
(** [dst <- A src]; [dst] must not alias [src]. *)

val apply : t -> Vec.t -> Vec.t

val has_transpose : t -> bool

val applyt_into : t -> src:float array -> dst:float array -> unit
(** [dst <- Aᵀ src]; raises [Invalid_argument] when the operator
    carries no transpose. *)

val applyt : t -> Vec.t -> Vec.t
