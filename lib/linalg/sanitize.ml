(* The gate is a plain [bool ref] read once per checked operation; the
   scans themselves only run when the gate is open, so the default cost
   is one load + branch per call — negligible next to the O(n^3) work
   the checks guard. *)

exception Nonfinite of string

let gate =
  ref
    (match Sys.getenv_opt "SCNOISE_SANITIZE" with
    | None | Some ("" | "0" | "false" | "no") -> false
    | Some _ -> true)

let enabled () = !gate

let set_enabled b = gate := b

let c_trips = Scnoise_obs.Obs.counter "sanitize.nonfinite"

let fail op detail =
  Scnoise_obs.Obs.incr c_trips;
  raise (Nonfinite (Printf.sprintf "%s: %s" op detail))

let check_float op x =
  if !gate && not (Float.is_finite x) then
    fail op (Printf.sprintf "non-finite value %h" x)

let check_vec op (v : Vec.t) =
  if !gate then
    Array.iteri
      (fun i x ->
        if not (Float.is_finite x) then
          fail op (Printf.sprintf "non-finite entry %h at index %d" x i))
      v

let check_mat op m =
  if !gate then
    for i = 0 to Mat.rows m - 1 do
      for j = 0 to Mat.cols m - 1 do
        let x = Mat.get m i j in
        if not (Float.is_finite x) then
          fail op (Printf.sprintf "non-finite entry %h at (%d,%d)" x i j)
      done
    done

(* The complex containers are flat interleaved float buffers; scan the
   raw storage and recover the (entry / coordinate) position only when
   reporting. *)
let check_cvec op (v : Cvec.t) =
  if !gate then begin
    let d = Cvec.data v in
    for k = 0 to Array.length d - 1 do
      if not (Float.is_finite d.(k)) then
        let i = k / 2 in
        let z = Cvec.get v i in
        fail op
          (Printf.sprintf "non-finite entry %h%+hi at index %d" z.Cx.re
             z.Cx.im i)
    done
  end

(* Panels are raw buffers with no dimension of their own; report the
   (state, column) coordinates for the given width. *)
let check_panel op ~width (p : Cvec.panel) =
  if !gate then
    for k = 0 to Array.length p - 1 do
      if not (Float.is_finite p.(k)) then
        let e = k / 2 in
        fail op
          (Printf.sprintf "non-finite value %h at (state %d, column %d)" p.(k)
             (e / width) (e mod width))
    done

let check_cmat op m =
  if !gate then begin
    let d = Cmat.data m in
    let nc = Cmat.cols m in
    for k = 0 to Array.length d - 1 do
      if not (Float.is_finite d.(k)) then
        let e = k / 2 in
        let i = e / nc and j = e mod nc in
        let z = Cmat.get m i j in
        fail op
          (Printf.sprintf "non-finite entry %h%+hi at (%d,%d)" z.Cx.re
             z.Cx.im i j)
    done
  end
