(* Krylov approximation of the matrix-exponential action: w = e^{tau A} v
   from an Arnoldi basis of K_m(A, v), without materialising e^{tau A}.

   The classic projection: build an orthonormal basis V_m of the Krylov
   space with Hessenberg coefficients H_m, then
   w ≈ beta V_m e^{tau H_m} e_1 with beta = ||v||.  The subspace is
   grown adaptively until the generalised-residual estimate
   beta * h_{m+1,m} * |(e^{tau H_m} e_1)_m| drops under the tolerance;
   when the cap is hit first, the time step is halved and the interval
   is covered by sub-steps (each sub-step restarts the basis from the
   current iterate), so stiff operators cost more steps instead of
   failing.  The small e^{tau H_m} goes through the dense Padé
   {!Expm} — H_m is at most [m_max]², far off the n³ scale this module
   avoids.

   Scratch (basis columns, Hessenberg, small-expm inputs) lives in a
   caller-reusable {!workspace}, so sweeps over many vectors allocate
   only on growth, in the style of the demod steppers. *)

let c_applies = Scnoise_obs.Obs.counter "kexpm.applies"

let c_restarts = Scnoise_obs.Obs.counter "kexpm.restarts"

let h_dim =
  Scnoise_obs.Obs.histogram ~mode:Scnoise_obs.Hist.Counts "kexpm.subspace_dim"

let h_substeps =
  Scnoise_obs.Obs.histogram ~mode:Scnoise_obs.Hist.Counts "kexpm.substeps"

let env_tol =
  lazy
    (match Sys.getenv_opt "SCNOISE_KEXPM_TOL" with
    | None | Some "" -> 1e-12
    | Some s -> (
        match float_of_string_opt s with
        | Some t when t > 0.0 -> t
        | _ -> invalid_arg "SCNOISE_KEXPM_TOL: expected a positive float"))

let default_tol () = Lazy.force env_tol

(* Hard cap on the Arnoldi dimension per sub-step; past this the basis
   stops paying for itself and halving the step converges faster. *)
let m_max_cap = 36

type workspace = {
  mutable n : int;
  mutable vs : float array array; (* m_max+1 basis vectors, length n *)
  mutable p : float array; (* candidate vector *)
  mutable w : float array; (* running iterate *)
  hess : float array; (* (m_max+1) x m_max, column-major in m_max+1 *)
}

let workspace () =
  { n = -1; vs = [||]; p = [||]; w = [||]; hess = Array.make ((m_max_cap + 1) * m_max_cap) 0.0 }

let ensure ws n =
  if ws.n <> n then begin
    ws.n <- n;
    ws.vs <- Array.init (m_max_cap + 1) (fun _ -> Array.make n 0.0);
    ws.p <- Array.make n 0.0;
    ws.w <- Array.make n 0.0
  end

let norm2 v =
  let s = ref 0.0 in
  for i = 0 to Array.length v - 1 do
    s := !s +. (v.(i) *. v.(i))
  done;
  sqrt !s

(* e^{tau H_m} e_1 for the leading m x m Hessenberg block. *)
let small_expm_col ws ~tau ~m =
  let hm =
    Mat.init m m (fun i j -> tau *. ws.hess.((j * (m_max_cap + 1)) + i))
  in
  let f = Expm.expm hm in
  Array.init m (fun i -> Mat.get f i 0)

let expmv_into ?tol ?(ws = workspace ()) op ~tau v ~dst =
  let n = Linop.rows op in
  if Linop.cols op <> n then invalid_arg "Kexpm.expmv_into: not square";
  if Array.length v <> n || Array.length dst <> n then
    invalid_arg "Kexpm.expmv_into: length mismatch";
  Sanitize.check_vec "Kexpm.expmv" v;
  Scnoise_obs.Obs.incr c_applies;
  let tol = match tol with Some t -> t | None -> default_tol () in
  ensure ws n;
  let beta0 = norm2 v in
  if tau = 0.0 || beta0 = 0.0 then Array.blit v 0 dst 0 n
  else begin
    let norm = match Linop.norm_est op with Some x -> x | None -> 1.0 in
    let m_max = min n m_max_cap in
    Array.blit v 0 ws.w 0 n;
    (* initial sub-step from the norm estimate; the error control below
       halves further whenever the basis cap cannot reach the tolerance *)
    let theta = 4.0 in
    let t_total = abs_float tau in
    let dir = if tau >= 0.0 then 1.0 else -1.0 in
    let h0 =
      if norm *. t_total <= theta then t_total
      else t_total /. ceil (norm *. t_total /. theta)
    in
    let h = ref h0 in
    let t_done = ref 0.0 in
    let steps = ref 0 in
    while !t_done < t_total *. (1.0 -. 1e-15) do
      let hstep = Float.min !h (t_total -. !t_done) in
      let beta = norm2 ws.w in
      if beta = 0.0 then t_done := t_total
      else begin
        let v1 = ws.vs.(0) in
        for i = 0 to n - 1 do
          v1.(i) <- ws.w.(i) /. beta
        done;
        (* Arnoldi with modified Gram-Schmidt and one
           re-orthogonalisation pass *)
        let accepted = ref 0 in
        let j = ref 0 in
        while !accepted = 0 && !j < m_max do
          let jj = !j in
          Linop.apply_into op ~src:ws.vs.(jj) ~dst:ws.p;
          let col = jj * (m_max_cap + 1) in
          for i = 0 to jj do
            ws.hess.(col + i) <- 0.0
          done;
          for pass = 0 to 1 do
            ignore pass;
            for i = 0 to jj do
              let vi = ws.vs.(i) in
              let d = ref 0.0 in
              for k = 0 to n - 1 do
                d := !d +. (vi.(k) *. ws.p.(k))
              done;
              let d = !d in
              ws.hess.(col + i) <- ws.hess.(col + i) +. d;
              for k = 0 to n - 1 do
                ws.p.(k) <- ws.p.(k) -. (d *. vi.(k))
              done
            done
          done;
          let hnext = norm2 ws.p in
          ws.hess.(col + jj + 1) <- hnext;
          let m = jj + 1 in
          if hnext <= 1e-14 *. Float.max 1.0 norm then
            (* happy breakdown: the Krylov space is invariant and the
               projected exponential is exact *)
            accepted := m
          else begin
            let y = small_expm_col ws ~tau:(dir *. hstep) ~m in
            let err = beta *. hnext *. abs_float y.(m - 1) in
            if err <= tol *. Float.max beta0 beta then accepted := m
            else begin
              let vnext = ws.vs.(m) in
              for k = 0 to n - 1 do
                vnext.(k) <- ws.p.(k) /. hnext
              done;
              incr j
            end
          end
        done;
        if !accepted = 0 then begin
          (* cap hit: halve the sub-step and rebuild the basis *)
          Scnoise_obs.Obs.incr c_restarts;
          h := hstep /. 2.0;
          if !h < t_total *. 1e-12 then
            failwith "Kexpm.expmv: step underflow (operator not finite?)"
        end
        else begin
          let m = !accepted in
          let y = small_expm_col ws ~tau:(dir *. hstep) ~m in
          for k = 0 to n - 1 do
            ws.p.(k) <- 0.0
          done;
          for i = 0 to m - 1 do
            let c = beta *. y.(i) in
            let vi = ws.vs.(i) in
            for k = 0 to n - 1 do
              ws.p.(k) <- ws.p.(k) +. (c *. vi.(k))
            done
          done;
          Array.blit ws.p 0 ws.w 0 n;
          t_done := !t_done +. hstep;
          incr steps;
          Scnoise_obs.Obs.hist_record_int h_dim m
        end
      end
    done;
    Scnoise_obs.Obs.hist_record_int h_substeps !steps;
    Array.blit ws.w 0 dst 0 n
  end;
  Sanitize.check_vec "Kexpm.expmv (result)" dst

let expmv ?tol ?ws op ~tau v =
  let dst = Array.make (Linop.rows op) 0.0 in
  expmv_into ?tol ?ws op ~tau v ~dst;
  dst

let expm_block ?tol ?ws op ~tau z =
  let n = Linop.rows op in
  if Mat.rows z <> n then invalid_arg "Kexpm.expm_block: row mismatch";
  let ws = match ws with Some w -> w | None -> workspace () in
  let k = Mat.cols z in
  let out = Mat.create n k in
  let src = Array.make n 0.0 and dst = Array.make n 0.0 in
  for j = 0 to k - 1 do
    for i = 0 to n - 1 do
      src.(i) <- Mat.get z i j
    done;
    expmv_into ?tol ~ws op ~tau src ~dst;
    for i = 0 to n - 1 do
      Mat.set out i j dst.(i)
    done
  done;
  out

(* --- Krylov process-noise quadrature ---

   A factor F with F Fᵀ ≈ ∫₀^tau e^{As} B Bᵀ e^{Aᵀs} ds, built from
   Gauss-Legendre nodes: F's columns are sqrt(w_k) e^{A s_k} b_j.  The
   integrand is entire, so the quadrature converges super-algebraically;
   with 10 nodes the error is below double rounding as long as
   norm(A) tau stays moderate (the covariance engine sub-steps to keep
   it ≤ ~2).  Nodes come from the Golub-Welsch eigenproblem of the
   Jacobi matrix, via {!Symeig} — no hard-coded tables. *)

let gauss_points = 10

let gauss_rule =
  lazy
    (let q = gauss_points in
     let j =
       Mat.init q q (fun i k ->
           if abs (i - k) <> 1 then 0.0
           else
             let m = float_of_int (min i k + 1) in
             m /. sqrt ((4.0 *. m *. m) -. 1.0))
     in
     let d, v = Symeig.decompose j in
     Array.init q (fun k -> (d.(k), 2.0 *. Mat.get v 0 k *. Mat.get v 0 k)))

let gramian_factor ?tol ?ws op ~b ~tau =
  let n = Linop.rows op in
  if Mat.rows b <> n then invalid_arg "Kexpm.gramian_factor: row mismatch";
  if tau < 0.0 then invalid_arg "Kexpm.gramian_factor: tau < 0";
  let ws = match ws with Some w -> w | None -> workspace () in
  let m = Mat.cols b in
  let rule = Lazy.force gauss_rule in
  let q = Array.length rule in
  let out = Mat.create n (q * m) in
  let src = Array.make n 0.0 and dst = Array.make n 0.0 in
  for k = 0 to q - 1 do
    let x, w = rule.(k) in
    let s = tau *. (x +. 1.0) /. 2.0 in
    let coeff = sqrt (w *. tau /. 2.0) in
    for j = 0 to m - 1 do
      for i = 0 to n - 1 do
        src.(i) <- Mat.get b i j
      done;
      expmv_into ?tol ~ws op ~tau:s src ~dst;
      for i = 0 to n - 1 do
        Mat.set out i ((k * m) + j) (coeff *. dst.(i))
      done
    done
  done;
  out
