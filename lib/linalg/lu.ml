module Obs = Scnoise_obs.Obs

type t = {
  n : int;
  lu : float array; (* row-major, L below diagonal (unit), U on/above *)
  piv : int array; (* row permutation *)
  sign : float; (* parity of the permutation *)
}

exception Singular of int

let c_factorizations = Obs.counter "lu_factorizations"

let c_solves = Obs.counter "lu_solves"

(* Factorisations whose reciprocal-condition estimate fell below 1e-12
   (condition number above 1e12); surfaced post-hoc as an ERC warning. *)
let c_ill_conditioned = Obs.counter "lu_ill_conditioned"

let ill_conditioned_rcond = 1e-12

(* Distribution of the cheap rcond estimate min|U_ii| / max|U_ii|; the
   log buckets make slow conditioning drift visible long before the
   1e-12 counter trips.  Always-on (one atomic add per factorisation). *)
let h_rcond = Obs.histogram "lu.rcond"

let factor m =
  if not (Mat.is_square m) then invalid_arg "Lu.factor: not square";
  Sanitize.check_mat "Lu.factor" m;
  Obs.incr c_factorizations;
  let n = Mat.rows m in
  let lu = Array.make (n * n) 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      lu.((i * n) + j) <- Mat.get m i j
    done
  done;
  let piv = Array.init n (fun i -> i) in
  let sign = ref 1.0 in
  for k = 0 to n - 1 do
    (* Partial pivoting: find the largest magnitude in column k. *)
    let pmax = ref (abs_float lu.((k * n) + k)) in
    let prow = ref k in
    for i = k + 1 to n - 1 do
      let v = abs_float lu.((i * n) + k) in
      if v > !pmax then begin
        pmax := v;
        prow := i
      end
    done;
    if !pmax = 0.0 then raise (Singular k);
    if !prow <> k then begin
      for j = 0 to n - 1 do
        let t = lu.((k * n) + j) in
        lu.((k * n) + j) <- lu.((!prow * n) + j);
        lu.((!prow * n) + j) <- t
      done;
      let t = piv.(k) in
      piv.(k) <- piv.(!prow);
      piv.(!prow) <- t;
      sign := -. !sign
    end;
    let pivot = lu.((k * n) + k) in
    for i = k + 1 to n - 1 do
      let f = lu.((i * n) + k) /. pivot in
      lu.((i * n) + k) <- f;
      if f <> 0.0 then
        for j = k + 1 to n - 1 do
          lu.((i * n) + j) <- lu.((i * n) + j) -. (f *. lu.((k * n) + j))
        done
    done
  done;
  let t = { n; lu; piv; sign = !sign } in
  (let mn = ref infinity and mx = ref 0.0 in
   for i = 0 to n - 1 do
     let u = abs_float lu.((i * n) + i) in
     mn := min !mn u;
     mx := max !mx u
   done;
   if n > 0 then begin
     Obs.hist_record h_rcond (if !mx > 0.0 then !mn /. !mx else 0.0);
     if !mn < ill_conditioned_rcond *. !mx then Obs.incr c_ill_conditioned
   end);
  t

let solve_in_place t x =
  let n = t.n in
  (* forward substitution with unit L *)
  for i = 1 to n - 1 do
    let acc = ref x.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (t.lu.((i * n) + j) *. x.(j))
    done;
    x.(i) <- !acc
  done;
  (* back substitution with U *)
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (t.lu.((i * n) + j) *. x.(j))
    done;
    x.(i) <- !acc /. t.lu.((i * n) + i)
  done

let solve t b =
  if Array.length b <> t.n then invalid_arg "Lu.solve: dimension mismatch";
  Sanitize.check_vec "Lu.solve" b;
  Obs.incr c_solves;
  let x = Array.init t.n (fun i -> b.(t.piv.(i))) in
  solve_in_place t x;
  Sanitize.check_vec "Lu.solve (result)" x;
  x

let solve_into t ~b ~into =
  if Array.length b <> t.n then invalid_arg "Lu.solve_into: dimension mismatch";
  if Array.length into <> t.n then
    invalid_arg "Lu.solve_into: output dimension mismatch";
  if b == into then invalid_arg "Lu.solve_into: output must not alias b";
  Sanitize.check_vec "Lu.solve" b;
  Obs.incr c_solves;
  for i = 0 to t.n - 1 do
    into.(i) <- b.(t.piv.(i))
  done;
  solve_in_place t into;
  Sanitize.check_vec "Lu.solve (result)" into

(* Complex right-hand side against the real factorisation: the real
   multipliers act on the re/im parts independently, so one pass over
   the interleaved buffer solves both at once.  Allocation-free; [b]
   must not alias [into] (the permuted gather writes [into] first). *)
let solve_complex_into t ~b ~into =
  let n = t.n in
  if Cvec.dim b <> n then
    invalid_arg "Lu.solve_complex_into: dimension mismatch";
  if Cvec.dim into <> n then
    invalid_arg "Lu.solve_complex_into: output dimension mismatch";
  let bd = Cvec.data b and x = Cvec.data into in
  if bd == x then invalid_arg "Lu.solve_complex_into: output must not alias b";
  Sanitize.check_cvec "Lu.solve_complex" b;
  Obs.incr c_solves;
  for i = 0 to n - 1 do
    let p = t.piv.(i) in
    x.(2 * i) <- bd.(2 * p);
    x.((2 * i) + 1) <- bd.((2 * p) + 1)
  done;
  for i = 1 to n - 1 do
    let ar = ref x.(2 * i) and ai = ref x.((2 * i) + 1) in
    for j = 0 to i - 1 do
      let l = t.lu.((i * n) + j) in
      ar := !ar -. (l *. x.(2 * j));
      ai := !ai -. (l *. x.((2 * j) + 1))
    done;
    x.(2 * i) <- !ar;
    x.((2 * i) + 1) <- !ai
  done;
  for i = n - 1 downto 0 do
    let ar = ref x.(2 * i) and ai = ref x.((2 * i) + 1) in
    for j = i + 1 to n - 1 do
      let u = t.lu.((i * n) + j) in
      ar := !ar -. (u *. x.(2 * j));
      ai := !ai -. (u *. x.((2 * j) + 1))
    done;
    let d = t.lu.((i * n) + i) in
    x.(2 * i) <- !ar /. d;
    x.((2 * i) + 1) <- !ai /. d
  done;
  Sanitize.check_cvec "Lu.solve_complex (result)" into

let c_block_solves = Obs.counter "lu_block_solves"

(* Blocked multi-RHS variant of [solve_complex_into] over a
   column-major panel (see Cvec): each factor element is loaded once
   per [width] right-hand sides and the inner loops stream over the
   [2 * width] adjacent floats of one state.  Per column the operation
   sequence — permuted gather, forward elimination, back substitution
   with a final real division — is exactly [solve_complex_into]'s, so
   every column of the result is bitwise identical to the single-RHS
   solve of that column. *)
let solve_block_into t ~width ~b ~into =
  let n = t.n in
  if width < 1 then invalid_arg "Lu.solve_block_into: width < 1";
  if Array.length b <> 2 * n * width then
    invalid_arg "Lu.solve_block_into: dimension mismatch";
  if Array.length into <> 2 * n * width then
    invalid_arg "Lu.solve_block_into: output dimension mismatch";
  if b == into then invalid_arg "Lu.solve_block_into: output must not alias b";
  Sanitize.check_panel "Lu.solve_block" ~width b;
  Obs.add c_solves width;
  Obs.incr c_block_solves;
  (* The dimension checks above pin every index below inside the
     buffers, so the inner loops use unsafe accesses: bounds checks are
     a measurable fraction of these 2-flop iterations.  The arithmetic
     is unchanged — same values, same order. *)
  let x = into in
  let lu = t.lu in
  let w2 = 2 * width in
  for i = 0 to n - 1 do
    Array.blit b (t.piv.(i) * w2) x (i * w2) w2
  done;
  for i = 1 to n - 1 do
    let irow = i * w2 in
    for j = 0 to i - 1 do
      let l = Array.unsafe_get lu ((i * n) + j) in
      let jrow = j * w2 in
      for k = 0 to w2 - 1 do
        Array.unsafe_set x (irow + k)
          (Array.unsafe_get x (irow + k)
          -. (l *. Array.unsafe_get x (jrow + k)))
      done
    done
  done;
  for i = n - 1 downto 0 do
    let irow = i * w2 in
    for j = i + 1 to n - 1 do
      let u = Array.unsafe_get lu ((i * n) + j) in
      let jrow = j * w2 in
      for k = 0 to w2 - 1 do
        Array.unsafe_set x (irow + k)
          (Array.unsafe_get x (irow + k)
          -. (u *. Array.unsafe_get x (jrow + k)))
      done
    done;
    let d = Array.unsafe_get lu ((i * n) + i) in
    for k = 0 to w2 - 1 do
      Array.unsafe_set x (irow + k) (Array.unsafe_get x (irow + k) /. d)
    done
  done;
  Sanitize.check_panel "Lu.solve_block (result)" ~width into

let solve_mat t b =
  if Mat.rows b <> t.n then invalid_arg "Lu.solve_mat: dimension mismatch";
  let nc = Mat.cols b in
  let out = Mat.create t.n nc in
  for j = 0 to nc - 1 do
    let x = solve t (Mat.col b j) in
    for i = 0 to t.n - 1 do
      Mat.set out i j x.(i)
    done
  done;
  out

let det t =
  let acc = ref t.sign in
  for i = 0 to t.n - 1 do
    acc := !acc *. t.lu.((i * t.n) + i)
  done;
  !acc

let inverse t = solve_mat t (Mat.identity t.n)

let rcond_estimate t =
  let mn = ref infinity and mx = ref 0.0 in
  for i = 0 to t.n - 1 do
    let u = abs_float t.lu.((i * t.n) + i) in
    mn := min !mn u;
    mx := max !mx u
  done;
  if !mx = 0.0 then 0.0 else !mn /. !mx

let solve_dense m b = solve (factor m) b
