(* Abstract linear operators: what the Krylov propagators and the
   low-rank covariance engine consume instead of a materialised
   [Mat.t].  An operator is its action [y <- A x] (written into a
   caller-owned buffer so hot loops stay allocation-free), plus enough
   metadata — dimensions, an optional transpose action, an optional
   norm estimate — for the propagators to pick step sizes. *)

type t = {
  rows : int;
  cols : int;
  apply_into : src:float array -> dst:float array -> unit;
  applyt_into : (src:float array -> dst:float array -> unit) option;
  norm_est : float option;
}

let rows t = t.rows

let cols t = t.cols

let norm_est t = t.norm_est

let check_dims name t ~src ~dst =
  if Array.length src <> t.cols then
    invalid_arg (name ^ ": source length mismatch");
  if Array.length dst <> t.rows then
    invalid_arg (name ^ ": destination length mismatch")

let apply_into t ~src ~dst =
  check_dims "Linop.apply_into" t ~src ~dst;
  t.apply_into ~src ~dst

let apply t v =
  let dst = Array.make t.rows 0.0 in
  apply_into t ~src:v ~dst;
  dst

let has_transpose t = t.applyt_into <> None

let applyt_into t ~src ~dst =
  match t.applyt_into with
  | None -> invalid_arg "Linop.applyt_into: operator has no transpose"
  | Some f ->
      if Array.length src <> t.rows then
        invalid_arg "Linop.applyt_into: source length mismatch";
      if Array.length dst <> t.cols then
        invalid_arg "Linop.applyt_into: destination length mismatch";
      f ~src ~dst

let applyt t v =
  let dst = Array.make t.cols 0.0 in
  applyt_into t ~src:v ~dst;
  dst

let of_fun ?applyt ?norm_est ~rows ~cols apply =
  if rows < 0 || cols < 0 then invalid_arg "Linop.of_fun: negative size";
  {
    rows;
    cols;
    apply_into = apply;
    applyt_into = applyt;
    norm_est;
  }

(* Dense adapter: straight row-major matvec over [Mat.data]. *)
let of_mat m =
  let nr = Mat.rows m and nc = Mat.cols m in
  let d = Mat.data m in
  let apply ~src ~dst =
    for i = 0 to nr - 1 do
      let base = i * nc in
      let s = ref 0.0 in
      for j = 0 to nc - 1 do
        s := !s +. (d.(base + j) *. src.(j))
      done;
      dst.(i) <- !s
    done
  in
  let applyt ~src ~dst =
    Array.fill dst 0 nc 0.0;
    for i = 0 to nr - 1 do
      let base = i * nc in
      let si = src.(i) in
      if si <> 0.0 then
        for j = 0 to nc - 1 do
          dst.(j) <- dst.(j) +. (d.(base + j) *. si)
        done
    done
  in
  {
    rows = nr;
    cols = nc;
    apply_into = apply;
    applyt_into = Some applyt;
    norm_est = Some (Mat.norm_inf m);
  }

(* Sparse adapter: compressed-sparse-row built from a dense matrix by
   dropping entries at or below [drop_tol] in magnitude (default 0.0 —
   only structural zeros go, so the action is bitwise that of the dense
   matvec on the kept pattern).  Circuit state matrices are stamped and
   stay mostly zeros off the element graph, so this is the natural
   operator form for ladder-style systems. *)
type csr = {
  row_ptr : int array;
  col_idx : int array;
  vals : float array;
}

let csr_of_mat ~drop_tol m =
  let nr = Mat.rows m and nc = Mat.cols m in
  let d = Mat.data m in
  let nnz = ref 0 in
  for i = 0 to (nr * nc) - 1 do
    if abs_float d.(i) > drop_tol then incr nnz
  done;
  let row_ptr = Array.make (nr + 1) 0 in
  let col_idx = Array.make !nnz 0 in
  let vals = Array.make !nnz 0.0 in
  let k = ref 0 in
  for i = 0 to nr - 1 do
    row_ptr.(i) <- !k;
    for j = 0 to nc - 1 do
      let v = d.((i * nc) + j) in
      if abs_float v > drop_tol then begin
        col_idx.(!k) <- j;
        vals.(!k) <- v;
        incr k
      end
    done
  done;
  row_ptr.(nr) <- !k;
  { row_ptr; col_idx; vals }

let of_sparse ?(drop_tol = 0.0) m =
  let nr = Mat.rows m and nc = Mat.cols m in
  let { row_ptr; col_idx; vals } = csr_of_mat ~drop_tol m in
  let apply ~src ~dst =
    for i = 0 to nr - 1 do
      let s = ref 0.0 in
      for k = row_ptr.(i) to row_ptr.(i + 1) - 1 do
        s := !s +. (vals.(k) *. src.(col_idx.(k)))
      done;
      dst.(i) <- !s
    done
  in
  let applyt ~src ~dst =
    Array.fill dst 0 nc 0.0;
    for i = 0 to nr - 1 do
      let si = src.(i) in
      if si <> 0.0 then
        for k = row_ptr.(i) to row_ptr.(i + 1) - 1 do
          dst.(col_idx.(k)) <- dst.(col_idx.(k)) +. (vals.(k) *. si)
        done
    done
  in
  (* infinity norm of the kept pattern, computed once from CSR *)
  let norm =
    let best = ref 0.0 in
    for i = 0 to nr - 1 do
      let s = ref 0.0 in
      for k = row_ptr.(i) to row_ptr.(i + 1) - 1 do
        s := !s +. abs_float vals.(k)
      done;
      if !s > !best then best := !s
    done;
    !best
  in
  {
    rows = nr;
    cols = nc;
    apply_into = apply;
    applyt_into = Some applyt;
    norm_est = Some norm;
  }

(* Pick the adapter by fill: stamped circuit matrices are sparse in the
   element graph, dense blocks (compression cores, monodromies) are
   not.  The threshold is conservative — CSR only wins once most of
   the row is zeros and indices stop fitting alongside the values. *)
let auto m =
  let nr = Mat.rows m and nc = Mat.cols m in
  if nr * nc = 0 then of_mat m
  else begin
    let d = Mat.data m in
    let nnz = ref 0 in
    for i = 0 to (nr * nc) - 1 do
      if d.(i) <> 0.0 then incr nnz
    done;
    if nr >= 32 && float_of_int !nnz <= 0.25 *. float_of_int (nr * nc) then
      of_sparse m
    else of_mat m
  end
