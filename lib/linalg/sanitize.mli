(** Debug-gated numeric sanitizer for the linear-algebra and ODE hot
    paths.

    When enabled (environment variable [SCNOISE_SANITIZE=1], or
    {!set_enabled} from code), the checked operations ({!Lu.factor},
    {!Lu.solve}, {!Clu.factor}, {!Clu.solve}, {!Expm.expm} and the
    [Ctrapezoid] stepper) verify that their inputs and outputs are
    finite and raise {!Nonfinite} — naming the offending operation and
    entry — the moment a NaN or infinity enters the data flow, instead
    of letting it propagate silently into a garbage PSD.

    Disabled (the default), every check is a single branch on a [bool
    ref], so production throughput is unaffected. *)

exception Nonfinite of string
(** ["Lu.factor: non-finite entry nan at (2,3)"] — the operation name
    always leads the message. *)

val enabled : unit -> bool

val set_enabled : bool -> unit
(** Programmatic override of the [SCNOISE_SANITIZE] environment gate
    (used by tests to exercise both behaviours in one process). *)

val check_float : string -> float -> unit
(** [check_float op x] raises {!Nonfinite} when the sanitizer is active
    and [x] is NaN or infinite. *)

val check_vec : string -> Vec.t -> unit

val check_mat : string -> Mat.t -> unit

val check_cvec : string -> Cvec.t -> unit

val check_cmat : string -> Cmat.t -> unit

val check_panel : string -> width:int -> Cvec.panel -> unit
(** Scan a blocked multi-RHS panel ({!Cvec.panel}); the report names
    the (state, column) coordinates under the given width. *)
