(* Factored symmetric PSD matrices K ≈ Z Zᵀ, the representation the
   low-rank covariance backend propagates instead of dense K.

   Everything expensive reduces to operations on the n×r factor: the
   Van Loan phase-step update becomes "propagate the columns of Z
   through e^{A h}, append a factor of the discrete process noise,
   re-compress".  Compression ends in a diagonally-pivoted Cholesky
   factorisation — rank-revealing for PSD matrices, and O(n² r)
   against the O(n³)-with-a-large-constant eigendecomposition, which
   matters because compression runs once per grid interval.  A wide
   factor (k ≳ n/2, the usual state once the covariance has warmed to
   full numerical rank) goes through its n×n Gram matrix directly; a
   thin one through a thin QR and the small k×k core, so the cost
   never exceeds O(n k · min(n, k)).

   Truncation drops directions whose remaining pivot falls below
   [rtol] times the largest diagonal entry of K.  The dropped mass in
   K is bounded by n * rtol * max_diag, so the default rtol = 1e-14
   keeps the factored pipeline within dense-backend parity while still
   shedding the numerically void directions that would otherwise
   accumulate every step. *)

type t = { n : int; z : Mat.t }

let env_rtol =
  lazy
    (match Sys.getenv_opt "SCNOISE_LOWRANK_RTOL" with
    | None | Some "" -> 1e-14
    | Some s -> (
        match float_of_string_opt s with
        | Some t when t > 0.0 && t < 1.0 -> t
        | _ ->
            invalid_arg "SCNOISE_LOWRANK_RTOL: expected a float in (0, 1)"))

let default_rtol () = Lazy.force env_rtol

let zero n =
  if n < 0 then invalid_arg "Lowrank.zero: negative size";
  { n; z = Mat.create n 0 }

let of_factor z = { n = Mat.rows z; z }

let factor t = t.z

let nstates t = t.n

let rank t = Mat.cols t.z

let bytes t = 8 * t.n * Mat.cols t.z

let to_dense t =
  let r = Mat.cols t.z in
  let d = Mat.data t.z in
  Mat.init t.n t.n (fun i j ->
      let s = ref 0.0 in
      for l = 0 to r - 1 do
        s := !s +. (d.((i * r) + l) *. d.((j * r) + l))
      done;
      !s)

let of_dense ?(rtol = 1e-15) m =
  if not (Mat.is_square m) then invalid_arg "Lowrank.of_dense: not square";
  { n = Mat.rows m; z = Symeig.psd_factor ~rtol m }

let apply t v =
  if Array.length v <> t.n then invalid_arg "Lowrank.apply: length mismatch";
  let r = Mat.cols t.z in
  let d = Mat.data t.z in
  let w = Array.make r 0.0 in
  for i = 0 to t.n - 1 do
    let vi = v.(i) in
    if vi <> 0.0 then
      for l = 0 to r - 1 do
        w.(l) <- w.(l) +. (d.((i * r) + l) *. vi)
      done
  done;
  let out = Array.make t.n 0.0 in
  for i = 0 to t.n - 1 do
    let s = ref 0.0 in
    for l = 0 to r - 1 do
      s := !s +. (d.((i * r) + l) *. w.(l))
    done;
    out.(i) <- !s
  done;
  out

let quad t v =
  if Array.length v <> t.n then invalid_arg "Lowrank.quad: length mismatch";
  let r = Mat.cols t.z in
  let d = Mat.data t.z in
  let s = ref 0.0 in
  for l = 0 to r - 1 do
    let w = ref 0.0 in
    for i = 0 to t.n - 1 do
      w := !w +. (d.((i * r) + l) *. v.(i))
    done;
    s := !s +. (!w *. !w)
  done;
  !s

let max_diag t =
  let r = Mat.cols t.z in
  let d = Mat.data t.z in
  let best = ref 0.0 in
  for i = 0 to t.n - 1 do
    let s = ref 0.0 in
    for l = 0 to r - 1 do
      s := !s +. (d.((i * r) + l) *. d.((i * r) + l))
    done;
    if !s > !best then best := !s
  done;
  !best

let append t f =
  if Mat.rows f <> t.n then invalid_arg "Lowrank.append: row mismatch";
  if Mat.cols f = 0 then t
  else if Mat.cols t.z = 0 then { t with z = f }
  else { t with z = Mat.hcat t.z f }

let propagate_mat p t =
  if Mat.rows p <> t.n || Mat.cols p <> t.n then
    invalid_arg "Lowrank.propagate_mat: dimension mismatch";
  { t with z = Mat.mul p t.z }

let propagate op t =
  if Linop.rows op <> Linop.cols op || Linop.rows op <> t.n then
    invalid_arg "Lowrank.propagate: dimension mismatch";
  let r = Mat.cols t.z in
  let out = Mat.create t.n r in
  let src = Array.make t.n 0.0 and dst = Array.make t.n 0.0 in
  for j = 0 to r - 1 do
    for i = 0 to t.n - 1 do
      src.(i) <- Mat.get t.z i j
    done;
    Linop.apply_into op ~src ~dst;
    for i = 0 to t.n - 1 do
      Mat.set out i j dst.(i)
    done
  done;
  { t with z = out }

(* Thin Householder QR of a tall n×k factor (n >= k): returns the
   explicit orthonormal q (n×k) and upper-triangular r (k×k). *)
let qr_thin a =
  let n = Mat.rows a and k = Mat.cols a in
  assert (n >= k);
  let w = Array.make (n * k) 0.0 in
  Array.blit (Mat.data a) 0 w 0 (n * k);
  let vs = Array.init k (fun _ -> Array.make n 0.0) in
  let betas = Array.make k 0.0 in
  for j = 0 to k - 1 do
    let alpha2 = ref 0.0 in
    for i = j to n - 1 do
      alpha2 := !alpha2 +. (w.((i * k) + j) *. w.((i * k) + j))
    done;
    let alpha = sqrt !alpha2 in
    if alpha > 0.0 then begin
      let ajj = w.((j * k) + j) in
      let alpha = if ajj > 0.0 then -.alpha else alpha in
      let v = vs.(j) in
      v.(j) <- ajj -. alpha;
      for i = j + 1 to n - 1 do
        v.(i) <- w.((i * k) + j)
      done;
      let vn2 = ref 0.0 in
      for i = j to n - 1 do
        vn2 := !vn2 +. (v.(i) *. v.(i))
      done;
      if !vn2 > 0.0 then begin
        let beta = 2.0 /. !vn2 in
        betas.(j) <- beta;
        for c = j to k - 1 do
          let s = ref 0.0 in
          for i = j to n - 1 do
            s := !s +. (v.(i) *. w.((i * k) + c))
          done;
          let s = beta *. !s in
          for i = j to n - 1 do
            w.((i * k) + c) <- w.((i * k) + c) -. (s *. v.(i))
          done
        done
      end
    end
  done;
  let r = Mat.init k k (fun i j -> if j >= i then w.((i * k) + j) else 0.0) in
  (* q = H_0 ... H_{k-1} [I_k; 0] *)
  let q = Array.make (n * k) 0.0 in
  for j = 0 to k - 1 do
    q.((j * k) + j) <- 1.0
  done;
  for j = k - 1 downto 0 do
    if betas.(j) > 0.0 then begin
      let v = vs.(j) and beta = betas.(j) in
      for c = 0 to k - 1 do
        let s = ref 0.0 in
        for i = j to n - 1 do
          s := !s +. (v.(i) *. q.((i * k) + c))
        done;
        let s = beta *. !s in
        for i = j to n - 1 do
          q.((i * k) + c) <- q.((i * k) + c) -. (s *. v.(i))
        done
      done
    end
  done;
  (Mat.init n k (fun i j -> q.((i * k) + j)), r)

(* Diagonally-pivoted Cholesky of a symmetric PSD matrix given as a
   flat m×m array: returns the m×r factor L (row order unpermuted)
   with L Lᵀ ≈ G, stopping once the largest remaining pivot drops to
   [tol] (absolute, on the diagonal of G). *)
let pchol gd m tol =
  let piv = Array.init m (fun i -> i) in
  let ld = Array.make (m * m) 0.0 in
  let d = Array.init m (fun i -> gd.((i * m) + i)) in
  let rank = ref 0 in
  (try
     for k = 0 to m - 1 do
       let q = ref k in
       for i = k + 1 to m - 1 do
         if d.(piv.(i)) > d.(piv.(!q)) then q := i
       done;
       if d.(piv.(!q)) <= tol then raise Exit;
       let tmp = piv.(k) in
       piv.(k) <- piv.(!q);
       piv.(!q) <- tmp;
       let pk = piv.(k) in
       let akk = sqrt d.(pk) in
       ld.((pk * m) + k) <- akk;
       for i = k + 1 to m - 1 do
         let pi = piv.(i) in
         let s = ref gd.((pi * m) + pk) in
         for j = 0 to k - 1 do
           s := !s -. (ld.((pi * m) + j) *. ld.((pk * m) + j))
         done;
         let v = !s /. akk in
         ld.((pi * m) + k) <- v;
         d.(pi) <- d.(pi) -. (v *. v)
       done;
       incr rank
     done
   with Exit -> ());
  let rank = !rank in
  Mat.init m rank (fun i j -> ld.((i * m) + j))

let compress ?rtol t =
  let rtol = match rtol with Some r -> r | None -> default_rtol () in
  let k = Mat.cols t.z in
  if k = 0 then t
  else if 2 * k >= t.n then begin
    (* wide factor: pivoted Cholesky of the n×n Gram matrix Z Zᵀ *)
    let n = t.n in
    let zd = Mat.data t.z in
    let g = Array.make (n * n) 0.0 in
    let maxd = ref 0.0 in
    for i = 0 to n - 1 do
      for j = i to n - 1 do
        let s = ref 0.0 in
        for l = 0 to k - 1 do
          s := !s +. (zd.((i * k) + l) *. zd.((j * k) + l))
        done;
        g.((i * n) + j) <- !s;
        g.((j * n) + i) <- !s
      done;
      if g.((i * n) + i) > !maxd then maxd := g.((i * n) + i)
    done;
    if !maxd <= 0.0 then { t with z = Mat.create n 0 }
    else { t with z = pchol g n (rtol *. !maxd) }
  end
  else begin
    (* thin factor: QR, then pivoted Cholesky of the k×k core R Rᵀ *)
    let q, r = qr_thin t.z in
    let rd = Mat.data r in
    let core = Array.make (k * k) 0.0 in
    let maxd = ref 0.0 in
    for i = 0 to k - 1 do
      for j = i to k - 1 do
        let s = ref 0.0 in
        for l = max i j to k - 1 do
          s := !s +. (rd.((i * k) + l) *. rd.((j * k) + l))
        done;
        core.((i * k) + j) <- !s;
        core.((j * k) + i) <- !s
      done;
      if core.((i * k) + i) > !maxd then maxd := core.((i * k) + i)
    done;
    if !maxd <= 0.0 then { t with z = Mat.create t.n 0 }
    else
      let lc = pchol core k (rtol *. !maxd) in
      { t with z = Mat.mul q lc }
  end

let vanloan_step ?rtol ~phi ~lq t =
  compress ?rtol (append (propagate phi t) lq)

let vanloan_step_mat ?rtol ~phi ~lq t =
  compress ?rtol (append (propagate_mat phi t) lq)
