(* Higham's scaling-and-squaring with the order-13 Padé approximant.  We
   always use the order-13 approximant (skipping the lower-order fast
   paths); the matrices here are small, so simplicity wins. *)

let pade13_coeffs =
  [| 64764752532480000.0; 32382376266240000.0; 7771770303897600.0;
     1187353796428800.0; 129060195264000.0; 10559470521600.0; 670442572800.0;
     33522128640.0; 1323241920.0; 40840800.0; 960960.0; 16380.0; 182.0; 1.0 |]

let theta13 = 5.371920351148152

let c_calls = Scnoise_obs.Obs.counter "expm_calls"

let expm a =
  if not (Mat.is_square a) then invalid_arg "Expm.expm: not square";
  Sanitize.check_mat "Expm.expm" a;
  Scnoise_obs.Obs.incr c_calls;
  let n = Mat.rows a in
  if n = 0 then Mat.create 0 0
  else begin
    let norm = Mat.norm_inf a in
    let s =
      if norm <= theta13 then 0
      else int_of_float (ceil (log (norm /. theta13) /. log 2.0))
    in
    let s = max s 0 in
    let a = Mat.scale (1.0 /. (2.0 ** float_of_int s)) a in
    let b = pade13_coeffs in
    let ident = Mat.identity n in
    let a2 = Mat.mul a a in
    let a4 = Mat.mul a2 a2 in
    let a6 = Mat.mul a2 a4 in
    let u_inner =
      Mat.add
        (Mat.mul a6
           (Mat.add
              (Mat.add (Mat.scale b.(13) a6) (Mat.scale b.(11) a4))
              (Mat.scale b.(9) a2)))
        (Mat.add
           (Mat.add (Mat.scale b.(7) a6) (Mat.scale b.(5) a4))
           (Mat.add (Mat.scale b.(3) a2) (Mat.scale b.(1) ident)))
    in
    let u = Mat.mul a u_inner in
    let v =
      Mat.add
        (Mat.mul a6
           (Mat.add
              (Mat.add (Mat.scale b.(12) a6) (Mat.scale b.(10) a4))
              (Mat.scale b.(8) a2)))
        (Mat.add
           (Mat.add (Mat.scale b.(6) a6) (Mat.scale b.(4) a4))
           (Mat.add (Mat.scale b.(2) a2) (Mat.scale b.(0) ident)))
    in
    (* r = (V - U)^{-1} (V + U) *)
    let lhs = Mat.sub v u in
    let rhs = Mat.add v u in
    let lu = Lu.factor lhs in
    let r = ref (Lu.solve_mat lu rhs) in
    for _ = 1 to s do
      r := Mat.mul !r !r
    done;
    Sanitize.check_mat "Expm.expm (result)" !r;
    !r
  end

let expm_scaled a t = expm (Mat.scale t a)
