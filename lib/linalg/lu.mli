(** LU factorisation with partial pivoting for real square matrices. *)

type t
(** A factorisation [P A = L U]. *)

exception Singular of int
(** Raised (with the offending pivot column) when a pivot is exactly
    zero.  Near-singular systems are not detected; callers that care
    should inspect {!rcond_estimate}. *)

val factor : Mat.t -> t
(** Factor a square matrix.  Raises [Invalid_argument] if not square and
    {!Singular} if structurally singular. *)

val solve : t -> Vec.t -> Vec.t
(** Solve [A x = b] for one right-hand side. *)

val solve_into : t -> b:Vec.t -> into:Vec.t -> unit
(** Allocation-free {!solve}; [into] must not alias [b]. *)

val solve_complex_into : t -> b:Cvec.t -> into:Cvec.t -> unit
(** Solve [A x = b] for a complex right-hand side against the real
    factorisation (the re/im parts are solved in one interleaved
    pass).  Allocation-free; [into] must not alias [b].  This is the
    inner primitive of the demodulated trapezoid stepper, where the
    frequency-independent LHS is factored once and reused across the
    whole sweep. *)

val solve_block_into :
  t -> width:int -> b:Cvec.panel -> into:Cvec.panel -> unit
(** Blocked multi-RHS {!solve_complex_into} over column-major panels
    ({!Cvec.panel}): solves [A x_b = b_b] for all [width] complex
    columns in one traversal of the real factors — each factor element
    is loaded once per block and the inner loops stream over the
    [2 * width] adjacent floats of one state, which is what makes a
    batched frequency sweep cache- and SIMD-friendly.  Column [b] of
    the result is bitwise identical to {!solve_complex_into} on that
    column alone.  Allocation-free; [into] must not alias [b]. *)

val solve_mat : t -> Mat.t -> Mat.t
(** Solve [A X = B] column-wise. *)

val det : t -> float
(** Determinant of the factored matrix. *)

val inverse : t -> Mat.t

val rcond_estimate : t -> float
(** Crude reciprocal-condition estimate: [min |u_ii| / max |u_ii|]. *)

val solve_dense : Mat.t -> Vec.t -> Vec.t
(** One-shot factor-and-solve. *)
