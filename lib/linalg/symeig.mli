(** Symmetric eigendecomposition (tred2 + tql2) with eigenvectors.

    {!Eig} reports eigenvalues only; the low-rank covariance engine
    needs eigenvectors of symmetric Gram blocks to truncate factored
    covariances, and the Krylov quadrature needs Gauss nodes from a
    Jacobi matrix. *)

exception No_convergence of int
(** Raised with the stuck eigenvalue index when the QL iteration fails
    to deflate within 50 sweeps (does not happen for finite input). *)

val decompose : Mat.t -> float array * Mat.t
(** [decompose m] returns [(lambda, v)] with eigenvalues in descending
    order and the matching orthonormal eigenvectors as the columns of
    [v], so [m = v diag(lambda) vᵀ].  The input is symmetrised
    ([(m + mᵀ)/2]) before reduction. *)

val psd_factor : ?rtol:float -> Mat.t -> Mat.t
(** [psd_factor m] is an [n×r] factor [f] with [f fᵀ ≈ m] for a
    positive semi-definite [m]: eigenpairs with [lambda <= rtol *
    lambda_max] (and any negative rounding residue) are dropped,
    [rtol] defaulting to [1e-15].  Columns are ordered by descending
    eigenvalue, making the factor deterministic. *)
