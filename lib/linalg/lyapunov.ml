exception Not_stable of string

let c_doubling_steps = Scnoise_obs.Obs.counter "lyapunov.doubling_steps"

let solve_continuous a q =
  if not (Mat.is_square a && Mat.is_square q) then
    invalid_arg "Lyapunov.solve_continuous: not square";
  if Mat.rows a <> Mat.rows q then
    invalid_arg "Lyapunov.solve_continuous: size mismatch";
  let n = Mat.rows a in
  let ident = Mat.identity n in
  (* (I ⊗ A + A ⊗ I) vec X = -vec Q, using column-major vec. *)
  let lhs = Mat.add (Kron.kron ident a) (Kron.kron a ident) in
  let rhs = Array.map (fun x -> -.x) (Kron.vec q) in
  let x = Lu.solve_dense lhs rhs in
  Mat.symmetrize (Kron.unvec n n x)

let solve_discrete_kron phi q =
  if not (Mat.is_square phi && Mat.is_square q) then
    invalid_arg "Lyapunov.solve_discrete_kron: not square";
  if Mat.rows phi <> Mat.rows q then
    invalid_arg "Lyapunov.solve_discrete_kron: size mismatch";
  let n = Mat.rows phi in
  (* (I - Φ ⊗ Φ) vec X = vec Q. *)
  let lhs = Mat.sub (Mat.identity (n * n)) (Kron.kron phi phi) in
  let x = Lu.solve_dense lhs (Kron.vec q) in
  Mat.symmetrize (Kron.unvec n n x)

let solve_discrete_doubling ?(tol = 1e-14) ?(max_iter = 200) phi q =
  if not (Mat.is_square phi && Mat.is_square q) then
    invalid_arg "Lyapunov.solve_discrete_doubling: not square";
  if Mat.rows phi <> Mat.rows q then
    invalid_arg "Lyapunov.solve_discrete_doubling: size mismatch";
  let x = ref q and p = ref phi in
  let guard = max 1.0 (Mat.max_abs q) in
  let rec loop k =
    if k > max_iter then
      raise (Not_stable "doubling iteration did not converge")
    else begin
      Scnoise_obs.Obs.incr c_doubling_steps;
      let incr = Mat.mul !p (Mat.mul !x (Mat.transpose !p)) in
      let delta = Mat.max_abs incr in
      x := Mat.add !x incr;
      if Mat.max_abs !p > 1e154 then
        raise (Not_stable "monodromy powers diverge: spectral radius >= 1");
      if delta > guard *. 1e8 then
        raise (Not_stable "doubling iteration diverges: spectral radius >= 1");
      (* convergence is relative to the running solution: covariances
         live at the kT/C scale, so an absolute floor would stop orders
         of magnitude early *)
      if delta <= tol *. Mat.max_abs !x then Mat.symmetrize !x
      else begin
        p := Mat.mul !p !p;
        loop (k + 1)
      end
    end
  in
  loop 0

let solve_discrete ?(prefer_doubling = true) phi q =
  if prefer_doubling then
    try solve_discrete_doubling phi q with Not_stable _ ->
      solve_discrete_kron phi q
  else solve_discrete_kron phi q

let residual_discrete phi q x =
  let rhs = Mat.add (Mat.mul phi (Mat.mul x (Mat.transpose phi))) q in
  Mat.max_abs_diff x rhs
