(* Full symmetric eigendecomposition: Householder tridiagonalisation
   (tred2) followed by implicit-shift QL with eigenvector accumulation
   (tql2), the classic EISPACK pair.  [Eig] only reports eigenvalues of
   general matrices; the low-rank covariance engine additionally needs
   eigenvectors of small symmetric Gram blocks to truncate factors, so
   the symmetric pair lives here.

   Cost is O(n³) with a small constant; the matrices that reach this
   module are either r×r compression cores (r = current covariance
   rank) or n×n process-noise blocks. *)

exception No_convergence of int

(* Householder reduction of the symmetric matrix held row-major in [z]
   (n×n) to tridiagonal form; diagonal to [d], sub-diagonal to
   [e.(1..n-1)], accumulated orthogonal transform left in [z]. *)
let tred2 n (z : float array) (d : float array) (e : float array) =
  for i = n - 1 downto 1 do
    let l = i - 1 in
    let h = ref 0.0 in
    if l > 0 then begin
      let scale = ref 0.0 in
      for k = 0 to l do
        scale := !scale +. abs_float z.((i * n) + k)
      done;
      if !scale = 0.0 then e.(i) <- z.((i * n) + l)
      else begin
        for k = 0 to l do
          z.((i * n) + k) <- z.((i * n) + k) /. !scale;
          h := !h +. (z.((i * n) + k) *. z.((i * n) + k))
        done;
        let f = z.((i * n) + l) in
        let g = if f >= 0.0 then -.sqrt !h else sqrt !h in
        e.(i) <- !scale *. g;
        h := !h -. (f *. g);
        z.((i * n) + l) <- f -. g;
        let fsum = ref 0.0 in
        for j = 0 to l do
          z.((j * n) + i) <- z.((i * n) + j) /. !h;
          let g = ref 0.0 in
          for k = 0 to j do
            g := !g +. (z.((j * n) + k) *. z.((i * n) + k))
          done;
          for k = j + 1 to l do
            g := !g +. (z.((k * n) + j) *. z.((i * n) + k))
          done;
          e.(j) <- !g /. !h;
          fsum := !fsum +. (e.(j) *. z.((i * n) + j))
        done;
        let hh = !fsum /. (!h +. !h) in
        for j = 0 to l do
          let f = z.((i * n) + j) in
          let g = e.(j) -. (hh *. f) in
          e.(j) <- g;
          for k = 0 to j do
            z.((j * n) + k) <-
              z.((j * n) + k) -. ((f *. e.(k)) +. (g *. z.((i * n) + k)))
          done
        done
      end
    end
    else e.(i) <- z.((i * n) + l);
    d.(i) <- !h
  done;
  d.(0) <- 0.0;
  e.(0) <- 0.0;
  for i = 0 to n - 1 do
    let l = i - 1 in
    if d.(i) <> 0.0 then
      for j = 0 to l do
        let g = ref 0.0 in
        for k = 0 to l do
          g := !g +. (z.((i * n) + k) *. z.((k * n) + j))
        done;
        for k = 0 to l do
          z.((k * n) + j) <- z.((k * n) + j) -. (!g *. z.((k * n) + i))
        done
      done;
    d.(i) <- z.((i * n) + i);
    z.((i * n) + i) <- 1.0;
    for j = 0 to l do
      z.((j * n) + i) <- 0.0;
      z.((i * n) + j) <- 0.0
    done
  done

(* Implicit-shift QL on the tridiagonal (d, e), rotating the columns of
   [z] along so they end up as eigenvectors of the original matrix. *)
let tql2 n (z : float array) (d : float array) (e : float array) =
  for i = 1 to n - 1 do
    e.(i - 1) <- e.(i)
  done;
  e.(n - 1) <- 0.0;
  for l = 0 to n - 1 do
    let iter = ref 0 in
    let continue_l = ref true in
    while !continue_l do
      (* find the first negligible sub-diagonal at or after [l] *)
      let m = ref l in
      let found = ref false in
      while (not !found) && !m < n - 1 do
        let dd = abs_float d.(!m) +. abs_float d.(!m + 1) in
        if abs_float e.(!m) <= epsilon_float *. dd then found := true
        else incr m
      done;
      if !m = l then continue_l := false
      else begin
        incr iter;
        if !iter > 50 then raise (No_convergence l);
        let m = !m in
        let g0 = (d.(l + 1) -. d.(l)) /. (2.0 *. e.(l)) in
        let r0 = Float.hypot g0 1.0 in
        let g =
          ref
            (d.(m) -. d.(l)
            +. (e.(l) /. (g0 +. if g0 >= 0.0 then r0 else -.r0)))
        in
        let s = ref 1.0 and c = ref 1.0 and p = ref 0.0 in
        (try
           for i = m - 1 downto l do
             let f = !s *. e.(i) in
             let b = !c *. e.(i) in
             let r = Float.hypot f !g in
             e.(i + 1) <- r;
             if r = 0.0 then begin
               d.(i + 1) <- d.(i + 1) -. !p;
               e.(m) <- 0.0;
               raise Exit
             end;
             s := f /. r;
             c := !g /. r;
             let gg = d.(i + 1) -. !p in
             let rr = ((d.(i) -. gg) *. !s) +. (2.0 *. !c *. b) in
             p := !s *. rr;
             d.(i + 1) <- gg +. !p;
             g := (!c *. rr) -. b;
             for k = 0 to n - 1 do
               let f = z.((k * n) + i + 1) in
               z.((k * n) + i + 1) <- (!s *. z.((k * n) + i)) +. (!c *. f);
               z.((k * n) + i) <- (!c *. z.((k * n) + i)) -. (!s *. f)
             done
           done;
           d.(l) <- d.(l) -. !p;
           e.(l) <- !g;
           e.(m) <- 0.0
         with Exit -> ())
      end
    done
  done

(* Deterministic descending sort by eigenvalue, swapping eigenvector
   columns along (selection sort: n is small here and stability of the
   order matters more than asymptotics). *)
let sort_desc n (z : float array) (d : float array) =
  for i = 0 to n - 2 do
    let kmax = ref i in
    for j = i + 1 to n - 1 do
      if d.(j) > d.(!kmax) then kmax := j
    done;
    if !kmax <> i then begin
      let t = d.(i) in
      d.(i) <- d.(!kmax);
      d.(!kmax) <- t;
      for k = 0 to n - 1 do
        let t = z.((k * n) + i) in
        z.((k * n) + i) <- z.((k * n) + !kmax);
        z.((k * n) + !kmax) <- t
      done
    end
  done

let decompose m =
  if not (Mat.is_square m) then invalid_arg "Symeig.decompose: not square";
  Sanitize.check_mat "Symeig.decompose" m;
  let n = Mat.rows m in
  if n = 0 then ([||], Mat.create 0 0)
  else begin
    (* symmetrise defensively: callers pass Gram/covariance blocks that
       are symmetric up to rounding *)
    let z = Array.make (n * n) 0.0 in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        z.((i * n) + j) <- 0.5 *. (Mat.get m i j +. Mat.get m j i)
      done
    done;
    let d = Array.make n 0.0 and e = Array.make n 0.0 in
    if n = 1 then d.(0) <- z.(0)
    else begin
      tred2 n z d e;
      tql2 n z d e
    end;
    if n = 1 then z.(0) <- 1.0;
    sort_desc n z d;
    let v = Mat.init n n (fun i j -> z.((i * n) + j)) in
    Sanitize.check_mat "Symeig.decompose (result)" v;
    (d, v)
  end

let psd_factor ?(rtol = 1e-15) m =
  let d, v = decompose m in
  let n = Mat.rows m in
  let cutoff =
    match Array.length d with
    | 0 -> 0.0
    | _ -> rtol *. Float.max 0.0 d.(0)
  in
  let r = ref 0 in
  for i = 0 to n - 1 do
    if d.(i) > cutoff && d.(i) > 0.0 then incr r
  done;
  let r = !r in
  Mat.init n r (fun i j -> Mat.get v i j *. sqrt d.(j))
