(** LU factorisation with partial pivoting for complex square matrices.

    Used by the MFT engine for the per-frequency periodic boundary solve
    [(I - e^{-jwT} Phi) P0 = r].  The factors live in a flat interleaved
    [float array]; {!create}/{!factor_into}/{!solve_into} let hot loops
    refactor and solve without allocating. *)

type t

exception Singular of int

val create : int -> t
(** An unfactored workspace of the given dimension, to be filled by
    {!factor_into}.  Solving with it before a factorisation is
    meaningless (the identity permutation and a zero matrix). *)

val factor : Cmat.t -> t

val factor_into : t -> Cmat.t -> unit
(** Factor into an existing workspace of matching dimension —
    allocation-free. *)

val solve : t -> Cvec.t -> Cvec.t

val solve_into : t -> work:float array -> b:Cvec.t -> into:Cvec.t -> unit
(** Allocation-free {!solve}.  [work] needs at least [2 n] floats;
    [into] may alias [b] (the permuted gather goes through [work]). *)

val solve_block_into :
  t -> width:int -> b:Cvec.panel -> into:Cvec.panel -> unit
(** Blocked multi-RHS {!solve_into} over column-major panels
    ({!Cvec.panel}): one traversal of the factors solves all [width]
    columns, each factor element loaded once per block.  Column [b] of
    the result is bitwise identical to {!solve_into} on that column
    alone.  Allocation-free; [into] must not alias [b]. *)

val det : t -> Cx.t

val inverse : t -> Cmat.t

val solve_dense : Cmat.t -> Cvec.t -> Cvec.t
