module Obs = Scnoise_obs.Obs

(* [lu] is flat row-major with interleaved re/im (2 n^2 floats), L unit
   lower / U upper as usual.  The complex divisions below spell out
   [Complex.div]'s scaled algorithm on the unboxed parts so pivoting
   and elimination are bitwise identical to the former boxed code. *)
type t = { n : int; lu : float array; piv : int array; mutable sign : float }

exception Singular of int

let c_factorizations = Obs.counter "clu_factorizations"

let c_solves = Obs.counter "clu_solves"

let c_ill_conditioned = Obs.counter "clu_ill_conditioned"

(* rcond-estimate distribution (min|U_ii| / max|U_ii|), mirroring
   [Lu.h_rcond] for the complex factorisations driving the BVP solves. *)
let h_rcond = Obs.histogram "clu.rcond"

let create n =
  if n < 0 then invalid_arg "Clu.create: negative size";
  { n; lu = Array.make (2 * n * n) 0.0; piv = Array.init n (fun i -> i); sign = 1.0 }

let factor_into t m =
  if Cmat.rows m <> Cmat.cols m then invalid_arg "Clu.factor: not square";
  if Cmat.rows m <> t.n then invalid_arg "Clu.factor_into: dimension mismatch";
  Sanitize.check_cmat "Clu.factor" m;
  Obs.incr c_factorizations;
  let n = t.n in
  let lu = t.lu in
  let piv = t.piv in
  Array.blit (Cmat.data m) 0 lu 0 (2 * n * n);
  for i = 0 to n - 1 do
    piv.(i) <- i
  done;
  t.sign <- 1.0;
  for k = 0 to n - 1 do
    let pmax = ref (Cx.modulus_ri lu.(2 * ((k * n) + k)) lu.((2 * ((k * n) + k)) + 1)) in
    let prow = ref k in
    for i = k + 1 to n - 1 do
      let v = Cx.modulus_ri lu.(2 * ((i * n) + k)) lu.((2 * ((i * n) + k)) + 1) in
      if v > !pmax then begin
        pmax := v;
        prow := i
      end
    done;
    if !pmax = 0.0 then raise (Singular k);
    if !prow <> k then begin
      let rk = 2 * k * n and rp = 2 * !prow * n in
      for j = 0 to (2 * n) - 1 do
        let tmp = lu.(rk + j) in
        lu.(rk + j) <- lu.(rp + j);
        lu.(rp + j) <- tmp
      done;
      let tmp = piv.(k) in
      piv.(k) <- piv.(!prow);
      piv.(!prow) <- tmp;
      t.sign <- -.t.sign
    end;
    let pr = lu.(2 * ((k * n) + k)) and pi = lu.((2 * ((k * n) + k)) + 1) in
    for i = k + 1 to n - 1 do
      let xr = lu.(2 * ((i * n) + k)) and xi = lu.((2 * ((i * n) + k)) + 1) in
      (* f = x / pivot, Complex.div's branch-on-magnitude algorithm *)
      let fr, fi =
        if abs_float pr >= abs_float pi then begin
          let r = pi /. pr in
          let d = pr +. (r *. pi) in
          ((xr +. (r *. xi)) /. d, (xi -. (r *. xr)) /. d)
        end
        else begin
          let r = pr /. pi in
          let d = pi +. (r *. pr) in
          (((r *. xr) +. xi) /. d, ((r *. xi) -. xr) /. d)
        end
      in
      lu.(2 * ((i * n) + k)) <- fr;
      lu.((2 * ((i * n) + k)) + 1) <- fi;
      if fr <> 0.0 || fi <> 0.0 then
        for j = k + 1 to n - 1 do
          let ur = lu.(2 * ((k * n) + j)) and ui = lu.((2 * ((k * n) + j)) + 1) in
          lu.(2 * ((i * n) + j)) <-
            lu.(2 * ((i * n) + j)) -. ((fr *. ur) -. (fi *. ui));
          lu.((2 * ((i * n) + j)) + 1) <-
            lu.((2 * ((i * n) + j)) + 1) -. ((fr *. ui) +. (fi *. ur))
        done
    done
  done;
  let mn = ref infinity and mx = ref 0.0 in
  for i = 0 to n - 1 do
    let u = Cx.modulus_ri lu.(2 * ((i * n) + i)) lu.((2 * ((i * n) + i)) + 1) in
    mn := min !mn u;
    mx := max !mx u
  done;
  if n > 0 then begin
    Obs.hist_record h_rcond (if !mx > 0.0 then !mn /. !mx else 0.0);
    if !mn < 1e-12 *. !mx then Obs.incr c_ill_conditioned
  end

let factor m =
  let t = create (Cmat.rows m) in
  factor_into t m;
  t

(* Substitution over the permuted right-hand side already sitting in
   [x] (interleaved, length 2n). *)
let substitute_in_place t x =
  let n = t.n in
  let lu = t.lu in
  for i = 1 to n - 1 do
    let ar = ref x.(2 * i) and ai = ref x.((2 * i) + 1) in
    for j = 0 to i - 1 do
      let lr = lu.(2 * ((i * n) + j)) and li = lu.((2 * ((i * n) + j)) + 1) in
      let xr = x.(2 * j) and xi = x.((2 * j) + 1) in
      ar := !ar -. ((lr *. xr) -. (li *. xi));
      ai := !ai -. ((lr *. xi) +. (li *. xr))
    done;
    x.(2 * i) <- !ar;
    x.((2 * i) + 1) <- !ai
  done;
  for i = n - 1 downto 0 do
    let ar = ref x.(2 * i) and ai = ref x.((2 * i) + 1) in
    for j = i + 1 to n - 1 do
      let ur = lu.(2 * ((i * n) + j)) and ui = lu.((2 * ((i * n) + j)) + 1) in
      let xr = x.(2 * j) and xi = x.((2 * j) + 1) in
      ar := !ar -. ((ur *. xr) -. (ui *. xi));
      ai := !ai -. ((ur *. xi) +. (ui *. xr))
    done;
    let dr = lu.(2 * ((i * n) + i)) and di = lu.((2 * ((i * n) + i)) + 1) in
    let xr, xi =
      if abs_float dr >= abs_float di then begin
        let r = di /. dr in
        let d = dr +. (r *. di) in
        ((!ar +. (r *. !ai)) /. d, (!ai -. (r *. !ar)) /. d)
      end
      else begin
        let r = dr /. di in
        let d = di +. (r *. dr) in
        (((r *. !ar) +. !ai) /. d, ((r *. !ai) -. !ar) /. d)
      end
    in
    x.(2 * i) <- xr;
    x.((2 * i) + 1) <- xi
  done

let check_rhs t b name =
  if Cvec.dim b <> t.n then invalid_arg ("Clu." ^ name ^ ": dimension mismatch")

let solve_into t ~work ~b ~into =
  check_rhs t b "solve_into";
  check_rhs t into "solve_into";
  if Array.length work < 2 * t.n then
    invalid_arg "Clu.solve_into: workspace too small";
  Sanitize.check_cvec "Clu.solve" b;
  Obs.incr c_solves;
  let bd = Cvec.data b and od = Cvec.data into in
  (* gather the permuted rhs into [work] so [into] may alias [b] *)
  for i = 0 to t.n - 1 do
    let p = t.piv.(i) in
    work.(2 * i) <- bd.(2 * p);
    work.((2 * i) + 1) <- bd.((2 * p) + 1)
  done;
  substitute_in_place t work;
  Array.blit work 0 od 0 (2 * t.n);
  Sanitize.check_cvec "Clu.solve (result)" into

let solve t b =
  check_rhs t b "solve";
  Sanitize.check_cvec "Clu.solve" b;
  Obs.incr c_solves;
  let bd = Cvec.data b in
  let x = Array.make (2 * t.n) 0.0 in
  for i = 0 to t.n - 1 do
    let p = t.piv.(i) in
    x.(2 * i) <- bd.(2 * p);
    x.((2 * i) + 1) <- bd.((2 * p) + 1)
  done;
  substitute_in_place t x;
  let out = Cvec.of_data x in
  Sanitize.check_cvec "Clu.solve (result)" out;
  out

let c_block_solves = Obs.counter "clu_block_solves"

(* Blocked multi-RHS solve over a column-major panel (see Cvec): one
   traversal of the complex factors serves all [width] right-hand
   sides, with the inner loops streaming over the adjacent columns of
   one state.  Per column the arithmetic — permuted gather, forward
   elimination, back substitution with the scaled complex division —
   is exactly [substitute_in_place]'s, so every column is bitwise
   identical to [solve_into] on that column alone (the division branch
   depends only on the factor diagonal, shared by all columns). *)
let solve_block_into t ~width ~b ~into =
  let n = t.n in
  if width < 1 then invalid_arg "Clu.solve_block_into: width < 1";
  if Array.length b <> 2 * n * width then
    invalid_arg "Clu.solve_block_into: dimension mismatch";
  if Array.length into <> 2 * n * width then
    invalid_arg "Clu.solve_block_into: output dimension mismatch";
  if b == into then
    invalid_arg "Clu.solve_block_into: output must not alias b";
  Sanitize.check_panel "Clu.solve_block" ~width b;
  Obs.add c_solves width;
  Obs.incr c_block_solves;
  let lu = t.lu in
  let x = into in
  let w2 = 2 * width in
  for i = 0 to n - 1 do
    Array.blit b (t.piv.(i) * w2) x (i * w2) w2
  done;
  for i = 1 to n - 1 do
    let irow = i * w2 in
    for j = 0 to i - 1 do
      let lr = lu.(2 * ((i * n) + j)) and li = lu.((2 * ((i * n) + j)) + 1) in
      let jrow = j * w2 in
      for bcol = 0 to width - 1 do
        let ik = irow + (2 * bcol) and jk = jrow + (2 * bcol) in
        let xr = x.(jk) and xi = x.(jk + 1) in
        x.(ik) <- x.(ik) -. ((lr *. xr) -. (li *. xi));
        x.(ik + 1) <- x.(ik + 1) -. ((lr *. xi) +. (li *. xr))
      done
    done
  done;
  for i = n - 1 downto 0 do
    let irow = i * w2 in
    for j = i + 1 to n - 1 do
      let ur = lu.(2 * ((i * n) + j)) and ui = lu.((2 * ((i * n) + j)) + 1) in
      let jrow = j * w2 in
      for bcol = 0 to width - 1 do
        let ik = irow + (2 * bcol) and jk = jrow + (2 * bcol) in
        let xr = x.(jk) and xi = x.(jk + 1) in
        x.(ik) <- x.(ik) -. ((ur *. xr) -. (ui *. xi));
        x.(ik + 1) <- x.(ik + 1) -. ((ur *. xi) +. (ui *. xr))
      done
    done;
    let dr = lu.(2 * ((i * n) + i)) and di = lu.((2 * ((i * n) + i)) + 1) in
    if abs_float dr >= abs_float di then begin
      let r = di /. dr in
      let d = dr +. (r *. di) in
      for bcol = 0 to width - 1 do
        let ik = irow + (2 * bcol) in
        let ar = x.(ik) and ai = x.(ik + 1) in
        x.(ik) <- (ar +. (r *. ai)) /. d;
        x.(ik + 1) <- (ai -. (r *. ar)) /. d
      done
    end
    else begin
      let r = dr /. di in
      let d = di +. (r *. dr) in
      for bcol = 0 to width - 1 do
        let ik = irow + (2 * bcol) in
        let ar = x.(ik) and ai = x.(ik + 1) in
        x.(ik) <- ((r *. ar) +. ai) /. d;
        x.(ik + 1) <- ((r *. ai) -. ar) /. d
      done
    end
  done;
  Sanitize.check_panel "Clu.solve_block (result)" ~width into

let det t =
  let acc = ref (Cx.re t.sign) in
  for i = 0 to t.n - 1 do
    let d = Cx.make t.lu.(2 * ((i * t.n) + i)) t.lu.((2 * ((i * t.n) + i)) + 1) in
    acc := Cx.( *: ) !acc d
  done;
  !acc

let inverse t =
  let out = Cmat.create t.n t.n in
  for j = 0 to t.n - 1 do
    let e = Cvec.create t.n in
    Cvec.set e j Cx.one;
    let x = solve t e in
    for i = 0 to t.n - 1 do
      Cmat.set out i j (Cvec.get x i)
    done
  done;
  out

let solve_dense m b = solve (factor m) b
