module Obs = Scnoise_obs.Obs

type t = { n : int; lu : Cx.t array; piv : int array; sign : float }

exception Singular of int

let c_factorizations = Obs.counter "clu_factorizations"

let c_solves = Obs.counter "clu_solves"

let c_ill_conditioned = Obs.counter "clu_ill_conditioned"

let factor m =
  if Cmat.rows m <> Cmat.cols m then invalid_arg "Clu.factor: not square";
  Sanitize.check_cmat "Clu.factor" m;
  Obs.incr c_factorizations;
  let n = Cmat.rows m in
  let lu = Array.make (n * n) Cx.zero in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      lu.((i * n) + j) <- Cmat.get m i j
    done
  done;
  let piv = Array.init n (fun i -> i) in
  let sign = ref 1.0 in
  for k = 0 to n - 1 do
    let pmax = ref (Cx.modulus lu.((k * n) + k)) in
    let prow = ref k in
    for i = k + 1 to n - 1 do
      let v = Cx.modulus lu.((i * n) + k) in
      if v > !pmax then begin
        pmax := v;
        prow := i
      end
    done;
    if !pmax = 0.0 then raise (Singular k);
    if !prow <> k then begin
      for j = 0 to n - 1 do
        let t = lu.((k * n) + j) in
        lu.((k * n) + j) <- lu.((!prow * n) + j);
        lu.((!prow * n) + j) <- t
      done;
      let t = piv.(k) in
      piv.(k) <- piv.(!prow);
      piv.(!prow) <- t;
      sign := -. !sign
    end;
    let pivot = lu.((k * n) + k) in
    for i = k + 1 to n - 1 do
      let f = Cx.( /: ) lu.((i * n) + k) pivot in
      lu.((i * n) + k) <- f;
      if f <> Cx.zero then
        for j = k + 1 to n - 1 do
          lu.((i * n) + j) <-
            Cx.( -: ) lu.((i * n) + j) (Cx.( *: ) f lu.((k * n) + j))
        done
    done
  done;
  (let mn = ref infinity and mx = ref 0.0 in
   for i = 0 to n - 1 do
     let u = Cx.modulus lu.((i * n) + i) in
     mn := min !mn u;
     mx := max !mx u
   done;
   if n > 0 && !mn < 1e-12 *. !mx then Obs.incr c_ill_conditioned);
  { n; lu; piv; sign = !sign }

let solve t b =
  if Array.length b <> t.n then invalid_arg "Clu.solve: dimension mismatch";
  Sanitize.check_cvec "Clu.solve" b;
  Obs.incr c_solves;
  let n = t.n in
  let x = Array.init n (fun i -> b.(t.piv.(i))) in
  for i = 1 to n - 1 do
    let acc = ref x.(i) in
    for j = 0 to i - 1 do
      acc := Cx.( -: ) !acc (Cx.( *: ) t.lu.((i * n) + j) x.(j))
    done;
    x.(i) <- !acc
  done;
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := Cx.( -: ) !acc (Cx.( *: ) t.lu.((i * n) + j) x.(j))
    done;
    x.(i) <- Cx.( /: ) !acc t.lu.((i * n) + i)
  done;
  Sanitize.check_cvec "Clu.solve (result)" x;
  x

let det t =
  let acc = ref (Cx.re t.sign) in
  for i = 0 to t.n - 1 do
    acc := Cx.( *: ) !acc t.lu.((i * t.n) + i)
  done;
  !acc

let inverse t =
  let out = Cmat.create t.n t.n in
  for j = 0 to t.n - 1 do
    let e = Cvec.create t.n in
    e.(j) <- Cx.one;
    let x = solve t e in
    for i = 0 to t.n - 1 do
      Cmat.set out i j x.(i)
    done
  done;
  out

let solve_dense m b = solve (factor m) b
