module Mat = Scnoise_linalg.Mat
module Vec = Scnoise_linalg.Vec
module Cx = Scnoise_linalg.Cx
module Cvec = Scnoise_linalg.Cvec
module Pwl = Scnoise_circuit.Pwl
module Grid = Scnoise_util.Grid
module Obs = Scnoise_obs.Obs

let c_points = Obs.counter "psd_points"

type engine = {
  cov : Covariance.sampled;
  bvp : Periodic_bvp.t;
  out_row : Vec.t;
  forcing : Cvec.t array; (* k(t_i) = K(t_i) c, as complex vectors *)
}

let of_sampled cov ~output =
  if Array.length output <> cov.Covariance.sys.Pwl.nstates then
    invalid_arg "Psd.of_sampled: output row has wrong length";
  let forcing =
    Array.map
      (fun k -> Cvec.of_real (Mat.mul_vec k output))
      cov.Covariance.ks
  in
  { cov; bvp = Periodic_bvp.of_sampled cov; out_row = output; forcing }

let prepare ?solver ?samples_per_phase ?grid sys ~output =
  Obs.with_span "psd.prepare" (fun () ->
      let cov = Covariance.sample ?solver ?samples_per_phase ?grid sys in
      of_sampled cov ~output)

let output e = Vec.copy e.out_row

let covariance e = e.cov

let envelope e ~f =
  let omega = 2.0 *. Float.pi *. f in
  Periodic_bvp.solve e.bvp ~omega ~forcing:(fun i -> e.forcing.(i))

let instantaneous e ~f =
  (* S_v(t, f) = d(ESD)/dt = 2 Re (cᵀ P(t)): the instantaneous spectral
     density over one clock period in steady state *)
  let env = envelope e ~f in
  let values =
    Array.map
      (fun p ->
        let s = ref 0.0 in
        Array.iteri (fun i c -> s := !s +. (c *. p.(i).Cx.re)) e.out_row;
        2.0 *. !s)
      env
  in
  (Periodic_bvp.times e.bvp, values)

let psd e ~f =
  Obs.incr c_points;
  let period = e.cov.Covariance.sys.Pwl.period in
  let times, values = instantaneous e ~f in
  Grid.trapezoid times values /. period

let psd_db e ~f = Scnoise_util.Db.of_power (psd e ~f)

let sweep e freqs =
  Obs.with_span "psd.sweep" (fun () -> Array.map (fun f -> psd e ~f) freqs)

let sweep_db e freqs =
  Obs.with_span "psd.sweep" (fun () -> Array.map (fun f -> psd_db e ~f) freqs)

let average_variance e = Covariance.average_variance e.cov e.out_row

let integrated_noise ?(points = 400) e ~fmin ~fmax =
  if fmax <= fmin then invalid_arg "Psd.integrated_noise: fmax <= fmin";
  if points < 2 then invalid_arg "Psd.integrated_noise: points < 2";
  let freqs = Grid.linspace fmin fmax points in
  let s = sweep e freqs in
  (* double-sided PSD: a [fmin, fmax] band with fmin >= 0 also collects
     the mirrored negative-frequency band *)
  2.0 *. Grid.trapezoid freqs s
