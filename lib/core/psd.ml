module Mat = Scnoise_linalg.Mat
module Vec = Scnoise_linalg.Vec
module Cvec = Scnoise_linalg.Cvec
module Pwl = Scnoise_circuit.Pwl
module Grid = Scnoise_util.Grid
module Obs = Scnoise_obs.Obs
module Pool = Scnoise_par.Pool

let c_points = Obs.counter "psd_points"

(* Wall time of one frequency point.  Recording is a single atomic add,
   but the two extra clock reads are only worth paying when telemetry
   has been asked for, so the hot path gates on [Obs.is_enabled]. *)
let h_point = Obs.histogram "psd.point_s"

module Clock = Scnoise_obs.Clock

type engine = {
  cov : Covariance.sampled;
  bvp : Periodic_bvp.t;
  out_row : Vec.t;
  forcing : Cvec.t array; (* k(t_i) = K(t_i) c, as complex vectors *)
}

let of_sampled cov ~output =
  if Array.length output <> cov.Covariance.sys.Pwl.nstates then
    invalid_arg "Psd.of_sampled: output row has wrong length";
  let forcing =
    Array.map
      (fun k -> Cvec.of_real (Mat.mul_vec k output))
      cov.Covariance.ks
  in
  { cov; bvp = Periodic_bvp.of_sampled cov; out_row = output; forcing }

let prepare ?solver ?samples_per_phase ?grid ?pool sys ~output =
  Obs.with_span "psd.prepare" (fun () ->
      let cov = Covariance.sample ?solver ?samples_per_phase ?grid ?pool sys in
      of_sampled cov ~output)

let output e = Vec.copy e.out_row

let covariance e = e.cov

let envelope e ~f =
  let omega = 2.0 *. Float.pi *. f in
  Periodic_bvp.solve e.bvp ~omega ~forcing:(fun i -> e.forcing.(i))

(* S_v(t_i, f) = 2 Re (cᵀ P(t_i)) from one envelope sample.  A plain
   counted loop: closing over the accumulator would force it onto the
   heap (non-flambda builds only unbox refs that stay local). *)
let instantaneous_value e p =
  let d = Cvec.data p in
  let c = e.out_row in
  let s = ref 0.0 in
  for i = 0 to Array.length c - 1 do
    s := !s +. (c.(i) *. d.(2 * i))
  done;
  2.0 *. !s

let instantaneous e ~f =
  (* S_v(t, f) = d(ESD)/dt = 2 Re (cᵀ P(t)): the instantaneous spectral
     density over one clock period in steady state *)
  let env = envelope e ~f in
  (Periodic_bvp.times e.bvp, Array.map (instantaneous_value e) env)

(* Per-domain scratch for the instantaneous samples of one frequency
   point, so a parallel sweep allocates no temporary per point (each
   pool worker keeps its own buffer). *)
let scratch_key = Domain.DLS.new_key (fun () -> ref [||])

let scratch n =
  let cell = Domain.DLS.get scratch_key in
  if Array.length !cell < n then cell := Array.make n 0.0;
  !cell

(* Likewise per-domain: the envelope trajectory of the current
   frequency point.  [Periodic_bvp.solve_into] overwrites it wholesale
   (the closing correction included), so reuse across points is safe
   and the per-point minor-heap traffic collapses to bookkeeping. *)
let traj_key : (Cvec.t array ref) Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [||])

let traj_scratch bvp =
  let cell = Domain.DLS.get traj_key in
  let npts = Periodic_bvp.n_points bvp in
  let n = Periodic_bvp.n_states bvp in
  if
    Array.length !cell <> npts
    || (npts > 0 && Cvec.dim (!cell).(0) <> n)
  then cell := Periodic_bvp.alloc_traj bvp;
  !cell

let psd_point e ~f =
  Obs.incr c_points;
  let period = e.cov.Covariance.sys.Pwl.period in
  let times = e.cov.Covariance.times in
  let omega = 2.0 *. Float.pi *. f in
  let env = traj_scratch e.bvp in
  Periodic_bvp.solve_into e.bvp ~omega
    ~forcing:(fun i -> e.forcing.(i))
    env;
  let npts = Array.length env in
  let values = scratch npts in
  (* the dot product of [instantaneous_value], inlined: a float
     returned across a function boundary is boxed per grid point on
     non-flambda builds *)
  let c = e.out_row in
  let nst = Array.length c in
  for i = 0 to npts - 1 do
    let d = Cvec.data env.(i) in
    let s = ref 0.0 in
    for j = 0 to nst - 1 do
      s := !s +. (c.(j) *. d.(2 * j))
    done;
    values.(i) <- 2.0 *. !s
  done;
  (* trapezoid over the (possibly longer) scratch buffer, same
     accumulation order as [Grid.trapezoid] *)
  let acc = ref 0.0 in
  for i = 0 to npts - 2 do
    acc :=
      !acc +. (0.5 *. (values.(i) +. values.(i + 1)) *. (times.(i + 1) -. times.(i)))
  done;
  !acc /. period

let psd e ~f =
  if Obs.is_enabled () then begin
    let t0 = Clock.now () in
    let r = psd_point e ~f in
    Obs.hist_record h_point (Clock.elapsed t0);
    r
  end
  else psd_point e ~f

let psd_db e ~f = Scnoise_util.Db.of_power (psd e ~f)

(* Each point of a sweep is an independent read-only BVP solve over the
   prepared engine, so fanning points out across the pool is safe and —
   because [Pool.map] places results by index — bit-identical to the
   serial sweep at any job count. *)
let sweep ?pool e freqs =
  let pool = match pool with Some p -> p | None -> Pool.global () in
  Obs.with_span "psd.sweep" (fun () ->
      Pool.map pool (fun _ f -> psd e ~f) freqs)

let sweep_db ?pool e freqs =
  let pool = match pool with Some p -> p | None -> Pool.global () in
  Obs.with_span "psd.sweep" (fun () ->
      Pool.map pool (fun _ f -> psd_db e ~f) freqs)

let average_variance e = Covariance.average_variance e.cov e.out_row

let integrated_noise ?(points = 400) ?pool e ~fmin ~fmax =
  if fmax <= fmin then invalid_arg "Psd.integrated_noise: fmax <= fmin";
  if points < 2 then invalid_arg "Psd.integrated_noise: points < 2";
  let freqs = Grid.linspace fmin fmax points in
  let s = sweep ?pool e freqs in
  (* double-sided PSD: a [fmin, fmax] band with fmin >= 0 also collects
     the mirrored negative-frequency band *)
  2.0 *. Grid.trapezoid freqs s
