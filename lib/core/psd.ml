module Vec = Scnoise_linalg.Vec
module Cvec = Scnoise_linalg.Cvec
module Pwl = Scnoise_circuit.Pwl
module Grid = Scnoise_util.Grid
module Obs = Scnoise_obs.Obs
module Pool = Scnoise_par.Pool

let c_points = Obs.counter "psd_points"

(* Sweep points a batched tile had to hand back to the scalar path
   because some frequency in the tile needs the complex-LU fallback;
   makes a silently-unbatched sweep visible next to psd.batch_width. *)
let c_unbatched_points = Obs.counter "psd.unbatched_points"

(* Wall time of one frequency point.  Recording is a single atomic add,
   but the two extra clock reads are only worth paying when telemetry
   has been asked for, so the hot path gates on [Obs.is_enabled]. *)
let h_point = Obs.histogram "psd.point_s"

module Clock = Scnoise_obs.Clock

type engine = {
  cov : Covariance.sampled;
  bvp : Periodic_bvp.t;
  out_row : Vec.t;
  forcing : Cvec.t array; (* k(t_i) = K(t_i) c, as complex vectors *)
}

let of_sampled cov ~output =
  if Array.length output <> cov.Covariance.sys.Pwl.nstates then
    invalid_arg "Psd.of_sampled: output row has wrong length";
  let forcing =
    Array.map
      (fun k -> Cvec.of_real (Covariance.k_apply k output))
      cov.Covariance.ks
  in
  { cov; bvp = Periodic_bvp.of_sampled cov; out_row = output; forcing }

let prepare ?solver ?cov_backend ?samples_per_phase ?grid ?pool sys ~output =
  Obs.with_span "psd.prepare" (fun () ->
      let cov =
        Covariance.sample ?solver ?backend:cov_backend ?samples_per_phase
          ?grid ?pool sys
      in
      of_sampled cov ~output)

let output e = Vec.copy e.out_row

let covariance e = e.cov

let envelope e ~f =
  let omega = 2.0 *. Float.pi *. f in
  Periodic_bvp.solve e.bvp ~omega ~forcing:(fun i -> e.forcing.(i))

(* S_v(t_i, f) = 2 Re (cᵀ P(t_i)) from one envelope sample.  A plain
   counted loop: closing over the accumulator would force it onto the
   heap (non-flambda builds only unbox refs that stay local). *)
let instantaneous_value e p =
  let d = Cvec.data p in
  let c = e.out_row in
  let s = ref 0.0 in
  for i = 0 to Array.length c - 1 do
    s := !s +. (c.(i) *. d.(2 * i))
  done;
  2.0 *. !s

let instantaneous e ~f =
  (* S_v(t, f) = d(ESD)/dt = 2 Re (cᵀ P(t)): the instantaneous spectral
     density over one clock period in steady state *)
  let env = envelope e ~f in
  (Periodic_bvp.times e.bvp, Array.map (instantaneous_value e) env)

(* Per-domain scratch for the instantaneous samples of one frequency
   point, so a parallel sweep allocates no temporary per point (each
   pool worker keeps its own buffer). *)
let scratch_key = Domain.DLS.new_key (fun () -> ref [||])

let scratch n =
  let cell = Domain.DLS.get scratch_key in
  if Array.length !cell < n then cell := Array.make n 0.0;
  !cell

(* Likewise per-domain: the envelope trajectory of the current
   frequency point.  [Periodic_bvp.solve_into] overwrites it wholesale
   (the closing correction included), so reuse across points is safe
   and the per-point minor-heap traffic collapses to bookkeeping. *)
let traj_key : (Cvec.t array ref) Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [||])

let traj_scratch bvp =
  let cell = Domain.DLS.get traj_key in
  let npts = Periodic_bvp.n_points bvp in
  let n = Periodic_bvp.n_states bvp in
  if
    Array.length !cell <> npts
    || (npts > 0 && Cvec.dim (!cell).(0) <> n)
  then cell := Periodic_bvp.alloc_traj bvp;
  !cell

let psd_point e ~f =
  Obs.incr c_points;
  let period = e.cov.Covariance.sys.Pwl.period in
  let times = e.cov.Covariance.times in
  let omega = 2.0 *. Float.pi *. f in
  let env = traj_scratch e.bvp in
  Periodic_bvp.solve_into e.bvp ~omega
    ~forcing:(fun i -> e.forcing.(i))
    env;
  let npts = Array.length env in
  let values = scratch npts in
  (* the dot product of [instantaneous_value], inlined: a float
     returned across a function boundary is boxed per grid point on
     non-flambda builds *)
  let c = e.out_row in
  let nst = Array.length c in
  for i = 0 to npts - 1 do
    let d = Cvec.data env.(i) in
    let s = ref 0.0 in
    for j = 0 to nst - 1 do
      s := !s +. (c.(j) *. d.(2 * j))
    done;
    values.(i) <- 2.0 *. !s
  done;
  (* trapezoid over the (possibly longer) scratch buffer, same
     accumulation order as [Grid.trapezoid] *)
  let acc = ref 0.0 in
  for i = 0 to npts - 2 do
    acc :=
      !acc +. (0.5 *. (values.(i) +. values.(i + 1)) *. (times.(i + 1) -. times.(i)))
  done;
  !acc /. period

let psd e ~f =
  if Obs.is_enabled () then begin
    let t0 = Clock.now () in
    let r = psd_point e ~f in
    Obs.hist_record h_point (Clock.elapsed t0);
    r
  end
  else psd_point e ~f

let psd_db e ~f = Scnoise_util.Db.of_power (psd e ~f)

(* --- batch-width selection ---

   The blocked path tiles a sweep into width-B frequency blocks, each
   advanced in lockstep through the phase grid by panel kernels
   ([Periodic_bvp.solve_block_into]).  [B = 1] is exactly the scalar
   path; larger widths amortise each factor traversal over B
   right-hand sides.  Resolution order: explicit [?batch] argument,
   then [set_default_batch], then [SCNOISE_BATCH], then an auto width
   from the state count and a cache budget. *)

let batch_override = ref 0 (* 0 = unset *)

let set_default_batch b =
  if b < 1 then invalid_arg "Psd.set_default_batch: batch < 1";
  batch_override := b

let env_batch =
  lazy
    (match Sys.getenv_opt "SCNOISE_BATCH" with
    | None | Some "" -> 0
    | Some s -> (
        match int_of_string_opt s with
        | Some b when b >= 1 -> b
        | _ -> invalid_arg "SCNOISE_BATCH: expected a positive integer"))

(* Keep the blocked working set — three stepper panels plus the two
   trajectory panels touched per interval, ~80 n bytes per column —
   inside a conservative 128 KiB slice of L2 next to the real factors
   and the demod rhs (16 n^2 bytes), capped at 16 columns: panel rows
   past that stop fitting in cache lines' worth of registers anyway. *)
let auto_batch ~nstates =
  if nstates < 1 then 1
  else
    let budget = (131072 - (16 * nstates * nstates)) / (80 * nstates) in
    max 1 (min 16 budget)

(* The process-wide width when one was pinned ([set_default_batch] or
   SCNOISE_BATCH); [None] means sweeps auto-tune per engine. *)
let configured_batch () =
  if !batch_override > 0 then Some !batch_override
  else
    let envb = Lazy.force env_batch in
    if envb > 0 then Some envb else None

let resolve_batch ?batch e ~npoints =
  let b =
    match batch with
    | Some b ->
        if b < 1 then invalid_arg "Psd.sweep: batch < 1";
        b
    | None ->
        if !batch_override > 0 then !batch_override
        else
          let envb = Lazy.force env_batch in
          if envb > 0 then envb
          else
            auto_batch ~nstates:(Array.length e.out_row)
  in
  max 1 (min b npoints)

let batch_width ?batch e ~npoints =
  if npoints < 2 then 1 else resolve_batch ?batch e ~npoints

(* Per-domain panel trajectories for the blocked path, most recent
   first, keyed by shape (same lifecycle as [traj_scratch]); each is
   overwritten wholesale by every block solve.  A few shapes are kept
   because one sweep legitimately uses two widths — the tail tile is
   narrower whenever the block width doesn't divide the point count —
   and a single-shape cell would reallocate the whole trajectory on
   every alternation. *)
let block_traj_key : (int * int * Cvec.panel array) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let block_traj_max_cached = 4

let block_traj_scratch bvp ~width =
  let cell = Domain.DLS.get block_traj_key in
  let npts = Periodic_bvp.n_points bvp in
  let len = 2 * Periodic_bvp.n_states bvp * width in
  let fits (w, l, tr) =
    w = width && l = len && Array.length tr = npts
    && (npts = 0 || Array.length tr.(0) = len)
  in
  match List.find_opt fits !cell with
  | Some ((_, _, tr) as hit) ->
      (* move-to-front so the cap evicts the least recent shape *)
      cell := hit :: List.filter (fun e -> e != hit) !cell;
      tr
  | None ->
      let tr = Periodic_bvp.alloc_block_traj bvp ~width in
      cell :=
        (width, len, tr)
        :: List.filteri (fun i _ -> i < block_traj_max_cached - 1) !cell;
      tr

(* One blocked sweep tile: solve the BVP for all frequencies of the
   block in lockstep, then reduce each panel column with the exact
   per-point arithmetic of [psd_point] (the column contents are
   bitwise the scalar envelopes, so the reduced values are too).
   Blocks the blocked backend cannot take — reference gate, or some
   frequency needing the complex-LU fallback — drop to the scalar
   path wholesale, which keeps parity trivially. *)
let psd_block e ~omegas ~freqs ~start len =
  if len = 1 then [| psd e ~f:freqs.(start) |]
  else if not (Periodic_bvp.can_batch e.bvp ~omegas) then begin
    Obs.add c_unbatched_points len;
    Array.init len (fun i -> psd e ~f:freqs.(start + i))
  end
  else begin
    Obs.add c_points len;
    let period = e.cov.Covariance.sys.Pwl.period in
    let times = e.cov.Covariance.times in
    let traj = block_traj_scratch e.bvp ~width:len in
    Periodic_bvp.solve_block_into e.bvp ~omegas
      ~forcing:(fun i -> e.forcing.(i))
      traj;
    let npts = Array.length traj in
    let values = scratch npts in
    let c = e.out_row in
    let nst = Array.length c in
    let out = Array.make len 0.0 in
    for b = 0 to len - 1 do
      for i = 0 to npts - 1 do
        let d = traj.(i) in
        let s = ref 0.0 in
        for j = 0 to nst - 1 do
          s := !s +. (c.(j) *. d.(2 * ((j * len) + b)))
        done;
        values.(i) <- 2.0 *. !s
      done;
      let acc = ref 0.0 in
      for i = 0 to npts - 2 do
        acc :=
          !acc
          +. (0.5 *. (values.(i) +. values.(i + 1))
             *. (times.(i + 1) -. times.(i)))
      done;
      out.(b) <- !acc /. period
    done;
    out
  end

(* Each block of a sweep is an independent read-only BVP solve over the
   prepared engine, so fanning blocks out across the pool is safe and —
   because [Pool.map] places results by index — bit-identical to the
   serial sweep at any job count.  Edge cases stay off the heavy
   machinery: an empty sweep returns immediately without touching the
   pool, and a single point runs the scalar path with no panel. *)
let sweep ?pool ?batch e freqs =
  let nf = Array.length freqs in
  if nf = 0 then [||]
  else if nf = 1 then
    Obs.with_span "psd.sweep" (fun () -> [| psd e ~f:freqs.(0) |])
  else begin
    let pool = match pool with Some p -> p | None -> Pool.global () in
    let width = resolve_batch ?batch e ~npoints:nf in
    Obs.with_span "psd.sweep" (fun () ->
        if width <= 1 then Pool.map pool (fun _ f -> psd e ~f) freqs
        else begin
          let nblocks = (nf + width - 1) / width in
          let starts = Array.init nblocks (fun k -> k * width) in
          let chunks =
            Pool.map pool
              (fun _ start ->
                let len = min width (nf - start) in
                let omegas =
                  Array.init len (fun i ->
                      2.0 *. Float.pi *. freqs.(start + i))
                in
                psd_block e ~omegas ~freqs ~start len)
              starts
          in
          let out = Array.make nf 0.0 in
          Array.iteri
            (fun k vals ->
              Array.blit vals 0 out starts.(k) (Array.length vals))
            chunks;
          out
        end)
  end

let sweep_db ?pool ?batch e freqs =
  Array.map Scnoise_util.Db.of_power (sweep ?pool ?batch e freqs)

let average_variance e = Covariance.average_variance e.cov e.out_row

let integrated_noise ?(points = 400) ?pool ?batch e ~fmin ~fmax =
  if fmax <= fmin then invalid_arg "Psd.integrated_noise: fmax <= fmin";
  if points < 2 then invalid_arg "Psd.integrated_noise: points < 2";
  let freqs = Grid.linspace fmin fmax points in
  let s = sweep ?pool ?batch e freqs in
  (* double-sided PSD: a [fmin, fmax] band with fmin >= 0 also collects
     the mirrored negative-frequency band *)
  2.0 *. Grid.trapezoid freqs s
