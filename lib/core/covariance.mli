(** Periodic steady state of the noise covariance of a switched linear
    circuit.

    The covariance obeys the periodic Lyapunov ODE
    [dK/dt = A(t) K + K A(t)ᵀ + B(t) B(t)ᵀ].  Over one clock period the
    map [K(0) -> K(T)] is affine, [K(T) = Phi K(0) Phiᵀ + Q], with
    [(Phi, Q)] assembled exactly from per-substep Van Loan
    discretisations.  The periodic steady state is the fixed point of
    that map — a discrete Lyapunov equation solved directly, which is the
    covariance half of the mixed-frequency-time method.

    Two engines compute the same quantities:

    - the {e dense} backend materialises every [K(t_i)] as an [n×n]
      matrix (the historical path, exact reference);
    - the {e low-rank} backend propagates a factored [K ≈ Z Zᵀ]
      ({!Scnoise_linalg.Lowrank}), memoises one interval operator per
      distinct (phase, step) pair of the stretched grid, uses
      matrix-free Krylov propagators for phases with few noise columns,
      and solves the steady state by a factored doubling iteration —
      the same answers to truncation tolerance, at a fraction of the
      dense cost for hundred-state circuits. *)

module Mat = Scnoise_linalg.Mat
module Vec = Scnoise_linalg.Vec
module Pwl = Scnoise_circuit.Pwl

type solver = [ `Auto | `Kron | `Doubling | `Iterate of int ]
(** [`Auto]: Kron for small systems, doubling (with a Kron fallback on
    marginal monodromies) above {!auto_solver_threshold} states.
    [`Kron]: exact vectorised solve ([O(n^6)]).  [`Doubling]: doubling
    iteration (requires stability, [O(n^3 log)]).  [`Iterate n]:
    propagate the affine map from [K = 0] for [n] periods (the naive
    baseline, for ablation). *)

type grid_kind = [ `Stretched | `Uniform ]

type backend = Dense | Lowrank

type krep = Kdense of Mat.t | Kfact of Scnoise_linalg.Lowrank.t
(** A covariance matrix in whichever representation the backend that
    produced it uses.  Use the [k_*] accessors rather than matching
    where possible. *)

type sampled = {
  sys : Pwl.t;
  times : float array;  (** grid over one period, [0 .. T], length N+1 *)
  interval_phase : int array;  (** phase index of each of the N intervals *)
  ks : krep array;  (** K at each grid time *)
  phis : Mat.t array;  (** state-transition Phi(t_i, 0) at each grid time *)
  k0 : krep;  (** periodic steady-state covariance at t = 0 *)
  phi_period : Mat.t;  (** monodromy Phi(T, 0) *)
  q_period : Mat.t;  (** accumulated process noise over one period *)
  backend : backend;  (** engine that produced this trace *)
  peak_rank : int;  (** largest factor rank seen (dense: [n]) *)
}

(** {2 Covariance representation accessors} *)

val k_mat : krep -> Mat.t
(** Materialise as a dense matrix (identity for [Kdense]). *)

val k_apply : krep -> Vec.t -> Vec.t
(** [K v] without densifying a factored representation. *)

val k_quad : krep -> Vec.t -> float
(** [vᵀ K v]. *)

val k_rank : krep -> int

val k_bytes : krep -> int
(** Payload bytes of the stored representation. *)

val ks_bytes : sampled -> int
(** Total bytes held by the [ks] trace (the dominant storage term). *)

(** {2 Backend selection} *)

val auto_state_threshold : int
(** State count at and above which the auto policy picks [Lowrank]. *)

val auto_solver_threshold : int
(** State count above which [`Auto] switches from Kron to doubling. *)

val set_default_backend : backend option -> unit
(** Process-wide default (the [--cov-backend] flag); [None] restores
    auto resolution. *)

val configured_backend : unit -> backend option
(** The configured default: [set_default_backend] if set, else the
    [SCNOISE_COV_BACKEND] environment variable ([auto|dense|lowrank]),
    else [None] (auto by state count). *)

val resolve_backend : ?backend:backend -> nstates:int -> unit -> backend
(** Full resolution: explicit argument, then {!configured_backend},
    then auto by state count. *)

val backend_name : backend -> string

val backend_of_name : string -> backend option
(** ["auto"] maps to [None]; raises [Invalid_argument] on anything
    other than [auto|dense|lowrank]. *)

val cache_tag : unit -> string
(** Component for result-cache keys: [""] while the configured backend
    cannot change results beyond numeric tolerance (so dense and
    low-rank runs share cache entries), a discriminating tag once
    [SCNOISE_LOWRANK_RTOL] is loosened past [1e-12]. *)

type discretized_grid = {
  g_times : float array;  (** grid over one period, [0 .. T] *)
  g_phase : int array;  (** phase owning each interval *)
  g_disc : Scnoise_linalg.Vanloan.t array;  (** per-interval (Phi, Qd) *)
}

val discretized_grid :
  ?samples_per_phase:int -> ?grid:grid_kind -> ?pool:Scnoise_par.Pool.t ->
  Pwl.t -> discretized_grid
(** The per-substep Van Loan discretisation of one clock period; shared
    with the brute-force and Monte-Carlo baseline engines.  The
    per-interval discretisations are independent and run across [pool]
    (default: the shared pool) with bit-identical results at any job
    count. *)

val period_map :
  ?samples_per_phase:int -> ?grid:grid_kind -> ?pool:Scnoise_par.Pool.t ->
  Pwl.t -> Mat.t * Mat.t
(** [(Phi, Q)] of the one-period affine covariance map (the grid options
    only affect substep placement; the result is exact up to rounding
    regardless, they are exposed for the ablation benches). *)

val periodic_initial :
  ?solver:solver -> ?samples_per_phase:int -> ?pool:Scnoise_par.Pool.t ->
  Pwl.t -> Mat.t
(** Steady-state covariance at the period boundary. *)

val sample :
  ?solver:solver -> ?backend:backend -> ?rtol:float ->
  ?samples_per_phase:int -> ?grid:grid_kind ->
  ?pool:Scnoise_par.Pool.t -> Pwl.t -> sampled
(** Full sampled trace of the periodic covariance over one period,
    together with the transition matrices needed by the PSD engine.
    [backend] overrides the resolution chain; [rtol] is the low-rank
    truncation tolerance (default {!Scnoise_linalg.Lowrank.default_rtol},
    ignored by the dense backend). *)

val variance_trace : sampled -> Vec.t -> float array
(** [variance_trace s c] is [cᵀ K(t_i) c] on the grid. *)

val variance_at_boundary : sampled -> Vec.t -> float

val average_variance : sampled -> Vec.t -> float
(** Time average of the variance over one period. *)

val closure_error : sampled -> float
(** [max_abs (K(T) - K(0))] — a periodicity self-check (small for a
    converged steady state). *)
