(** Periodic steady state of the noise covariance of a switched linear
    circuit.

    The covariance obeys the periodic Lyapunov ODE
    [dK/dt = A(t) K + K A(t)ᵀ + B(t) B(t)ᵀ].  Over one clock period the
    map [K(0) -> K(T)] is affine, [K(T) = Phi K(0) Phiᵀ + Q], with
    [(Phi, Q)] assembled exactly from per-substep Van Loan
    discretisations.  The periodic steady state is the fixed point of
    that map — a discrete Lyapunov equation solved directly, which is the
    covariance half of the mixed-frequency-time method. *)

module Mat = Scnoise_linalg.Mat
module Vec = Scnoise_linalg.Vec
module Pwl = Scnoise_circuit.Pwl

type solver = [ `Kron | `Doubling | `Iterate of int ]
(** [`Kron]: exact vectorised solve.  [`Doubling]: doubling iteration
    (requires stability).  [`Iterate n]: propagate the affine map from
    [K = 0] for [n] periods (the naive baseline, for ablation). *)

type grid_kind = [ `Stretched | `Uniform ]

type sampled = {
  sys : Pwl.t;
  times : float array;  (** grid over one period, [0 .. T], length N+1 *)
  interval_phase : int array;  (** phase index of each of the N intervals *)
  ks : Mat.t array;  (** K at each grid time *)
  phis : Mat.t array;  (** state-transition Phi(t_i, 0) at each grid time *)
  k0 : Mat.t;  (** periodic steady-state covariance at t = 0 *)
  phi_period : Mat.t;  (** monodromy Phi(T, 0) *)
  q_period : Mat.t;  (** accumulated process noise over one period *)
}

type discretized_grid = {
  g_times : float array;  (** grid over one period, [0 .. T] *)
  g_phase : int array;  (** phase owning each interval *)
  g_disc : Scnoise_linalg.Vanloan.t array;  (** per-interval (Phi, Qd) *)
}

val discretized_grid :
  ?samples_per_phase:int -> ?grid:grid_kind -> ?pool:Scnoise_par.Pool.t ->
  Pwl.t -> discretized_grid
(** The per-substep Van Loan discretisation of one clock period; shared
    with the brute-force and Monte-Carlo baseline engines.  The
    per-interval discretisations are independent and run across [pool]
    (default: the shared pool) with bit-identical results at any job
    count. *)

val period_map :
  ?samples_per_phase:int -> ?grid:grid_kind -> ?pool:Scnoise_par.Pool.t ->
  Pwl.t -> Mat.t * Mat.t
(** [(Phi, Q)] of the one-period affine covariance map (the grid options
    only affect substep placement; the result is exact up to rounding
    regardless, they are exposed for the ablation benches). *)

val periodic_initial :
  ?solver:solver -> ?samples_per_phase:int -> ?pool:Scnoise_par.Pool.t ->
  Pwl.t -> Mat.t
(** Steady-state covariance at the period boundary. *)

val sample :
  ?solver:solver -> ?samples_per_phase:int -> ?grid:grid_kind ->
  ?pool:Scnoise_par.Pool.t -> Pwl.t -> sampled
(** Full sampled trace of the periodic covariance over one period,
    together with the transition matrices needed by the PSD engine. *)

val variance_trace : sampled -> Vec.t -> float array
(** [variance_trace s c] is [cᵀ K(t_i) c] on the grid. *)

val variance_at_boundary : sampled -> Vec.t -> float

val average_variance : sampled -> Vec.t -> float
(** Time average of the variance over one period. *)

val closure_error : sampled -> float
(** [max_abs (K(T) - K(0))] — a periodicity self-check (small for a
    converged steady state). *)
