(** Shared periodic boundary-value solver of the mixed-frequency-time
    method.

    Solves, over one clock period and for an arbitrary periodic forcing,

    [dP/dt = (A(t) - j w I) P + k(t),   P(0) = P(T)]

    by one forced trapezoidal transient (particular solution), a complex
    boundary solve against the frequency-rotated real monodromy
    [(I - e^{-jwT} Phi) P(0) = P_part(T)], and superposition.  The PSD
    engine uses it with [k = K(t) c]; the LPTV transfer-function engine
    with deterministic input columns.

    Two stepper backends drive the transient.  The default demodulated
    backend factors one *real* LU per distinct (phase, h) when the
    solver is prepared and reuses it at every frequency, refining each
    step to the exact shifted-trapezoid update (falling back to a
    per-frequency complex LU for steppers whose refinement would not
    converge fast enough).  Setting [SCNOISE_REFERENCE_BVP=1] (or
    {!set_reference}) selects the reference backend, which factors the
    complex LHS per (phase, h) at every frequency point.  Both backends
    compute the same discretisation; the golden-parity tests assert
    agreement to well below 1e-9 dB. *)

module Cvec = Scnoise_linalg.Cvec

type t
(** Prepared solver: grids, phase matrices, transition matrices and
    frequency-independent stepper factorisations are shared across
    frequencies and forcings (the per-domain solve workspace is
    domain-local, so a prepared solver may be used from a pool). *)

val of_sampled : Covariance.sampled -> t
(** Build from a sampled periodic covariance (which already carries the
    grid and the transition matrices). *)

val times : t -> float array
(** The grid over one period ([0 .. T]). *)

val n_points : t -> int

val n_states : t -> int

val set_reference : bool -> unit
(** Programmatic override of the [SCNOISE_REFERENCE_BVP] environment
    gate (used by tests and benchmarks to exercise both backends in
    one process). *)

val reference_enabled : unit -> bool

val solve : t -> omega:float -> forcing:(int -> Cvec.t) -> Cvec.t array
(** [solve t ~omega ~forcing] returns the periodic steady state
    [P(t_i)] on the grid; [forcing i] is [k(t_i)].  The forcing must be
    periodic ([forcing 0 = forcing (n_points - 1)] in intent; only grid
    samples are consulted).  Raises [Clu.Singular] only if the circuit
    has a Floquet multiplier of unit modulus. *)

val solve_into :
  t -> omega:float -> forcing:(int -> Cvec.t) -> Cvec.t array -> unit
(** {!solve} into a caller-provided trajectory ([n_points] vectors of
    dimension [n_states], each a distinct buffer — see {!alloc_traj}).
    Beyond that buffer the solve allocates only transient bookkeeping
    (and, on the reference backend, its per-frequency steppers). *)

val alloc_traj : t -> Cvec.t array
(** Fresh zero trajectory of the right shape for {!solve_into}. *)

val particular : t -> omega:float -> forcing:(int -> Cvec.t) -> Cvec.t array
(** The zero-initial-condition forced response alone (used by the
    brute-force engine's tests and diagnostics). *)

val solve_piecewise :
  t -> omega:float -> forcing:(int -> Cvec.t * Cvec.t) -> Cvec.t array
(** Like {!solve} but for forcings that jump at phase boundaries:
    [forcing i] gives the values at the left and right endpoints of
    interval [i] (for [i] in [0 .. n_points - 2]), both evaluated inside
    that interval's phase.  Used by the LPTV transfer engine whose input
    matrices switch with the clock. *)

val interval_phase : t -> int array
(** Phase index owning each grid interval. *)

(** {1 Blocked multi-frequency solve}

    The batched sweep path: [width] frequencies advance in lockstep
    through the shared phase grid as {!Cvec.panel} steps, so the
    demodulated backend's real factors are traversed once per block
    instead of once per frequency.  Column [b] of every panel is
    bitwise identical to {!solve_into} at [omegas.(b)]. *)

val can_batch : t -> omegas:float array -> bool
(** Whether the blocked path can take this frequency block: the
    demodulated backend must be active (not the reference gate) and
    every (phase, h) stepper must be refinable at every frequency of
    the block — a block with any fallback frequency belongs on the
    scalar path wholesale. *)

val alloc_block_traj : t -> width:int -> Cvec.panel array
(** Fresh zero panel trajectory ([n_points] panels sized
    [(n_states, width)]) for {!solve_block_into}. *)

val solve_block_into :
  t -> omegas:float array -> forcing:(int -> Cvec.t) -> Cvec.panel array ->
  unit
(** Solve the periodic BVP at every frequency of the block into the
    panel trajectory; [forcing i] is [k(t_i)], shared by all columns
    (the MFT forcing is frequency-independent).  Raises
    [Invalid_argument] when the block is empty, when the reference
    backend is active, or when some frequency is not refinable —
    callers gate on {!can_batch} first. *)
