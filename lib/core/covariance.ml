module Mat = Scnoise_linalg.Mat
module Vec = Scnoise_linalg.Vec
module Vanloan = Scnoise_linalg.Vanloan
module Lyapunov = Scnoise_linalg.Lyapunov
module Pwl = Scnoise_circuit.Pwl
module Obs = Scnoise_obs.Obs
module Pool = Scnoise_par.Pool

let src = Logs.Src.create "scnoise.covariance" ~doc:"periodic covariance solver"

module Log = (val Logs.src_log src : Logs.LOG)

let c_samples = Obs.counter "covariance_samples"

type solver = [ `Kron | `Doubling | `Iterate of int ]

type grid_kind = [ `Stretched | `Uniform ]

type sampled = {
  sys : Pwl.t;
  times : float array;
  interval_phase : int array;
  ks : Mat.t array;
  phis : Mat.t array;
  k0 : Mat.t;
  phi_period : Mat.t;
  q_period : Mat.t;
}

(* Flattened grid over one period: absolute times, the phase owning each
   interval, and the per-interval Van Loan discretisations. *)
type discretized_grid = {
  g_times : float array;
  g_phase : int array;
  g_disc : Vanloan.t array;
}

let discretized_grid ?(samples_per_phase = 96) ?(grid = `Stretched) ?pool
    (sys : Pwl.t) =
  (* Grid layout is cheap and stays serial; the per-interval Van Loan
     discretisations (a matrix exponential each) are independent, so
     they fan out across the pool — each interval's result depends only
     on its own (phase, step) pair, making the parallel grid
     bit-identical to the serial one. *)
  let pool = match pool with Some p -> p | None -> Pool.global () in
  let times = ref [ 0.0 ] in
  let phases = ref [] in
  let steps = ref [] in
  let offset = ref 0.0 in
  Array.iteri
    (fun p (ph : Pwl.phase) ->
      let local =
        match grid with
        | `Stretched -> Phase_grid.make ~a:ph.Pwl.a ~tau:ph.Pwl.tau ~n:samples_per_phase
        | `Uniform -> Phase_grid.uniform ~tau:ph.Pwl.tau ~n:samples_per_phase
      in
      for j = 1 to Array.length local - 1 do
        let h = local.(j) -. local.(j - 1) in
        times := (!offset +. local.(j)) :: !times;
        phases := p :: !phases;
        steps := h :: !steps
      done;
      offset := !offset +. ph.Pwl.tau)
    sys.Pwl.phases;
  let g_phase = Array.of_list (List.rev !phases) in
  let g_steps = Array.of_list (List.rev !steps) in
  let g_disc =
    Pool.map pool
      (fun i h ->
        let ph = sys.Pwl.phases.(g_phase.(i)) in
        Vanloan.discretize ~a:ph.Pwl.a ~q:ph.Pwl.q ~tau:h)
      g_steps
  in
  { g_times = Array.of_list (List.rev !times); g_phase; g_disc }

let map_of_grid n g =
  let phi = ref (Mat.identity n) and q = ref (Mat.create n n) in
  Array.iter
    (fun (d : Vanloan.t) ->
      phi := Mat.mul d.Vanloan.phi !phi;
      q := Vanloan.propagate d !q)
    g.g_disc;
  (!phi, !q)

let period_map ?samples_per_phase ?grid ?pool sys =
  let g = discretized_grid ?samples_per_phase ?grid ?pool sys in
  map_of_grid sys.Pwl.nstates g

let solve_steady solver phi q =
  match solver with
  | `Kron -> Lyapunov.solve_discrete_kron phi q
  | `Doubling -> Lyapunov.solve_discrete_doubling phi q
  | `Iterate n ->
      let k = ref (Mat.create (Mat.rows q) (Mat.cols q)) in
      for _ = 1 to n do
        k := Mat.symmetrize (Mat.add (Mat.mul phi (Mat.mul !k (Mat.transpose phi))) q)
      done;
      !k

let periodic_initial ?(solver = `Kron) ?samples_per_phase ?pool sys =
  let phi, q = period_map ?samples_per_phase ?pool sys in
  solve_steady solver phi q

let sample ?(solver = `Kron) ?samples_per_phase ?grid ?pool sys =
  Obs.with_span ~src "covariance.sample" (fun () ->
      Obs.incr c_samples;
      let g = discretized_grid ?samples_per_phase ?grid ?pool sys in
      let n = sys.Pwl.nstates in
      let phi_period, q_period = map_of_grid n g in
      let k0 = solve_steady solver phi_period q_period in
      let npts = Array.length g.g_times in
      let ks = Array.make npts k0 in
      let phis = Array.make npts (Mat.identity n) in
      let k = ref k0 and phi = ref (Mat.identity n) in
      for i = 1 to npts - 1 do
        let d = g.g_disc.(i - 1) in
        k := Vanloan.propagate d !k;
        phi := Mat.mul d.Vanloan.phi !phi;
        ks.(i) <- !k;
        phis.(i) <- !phi
      done;
      Log.debug (fun m ->
          m "sampling done: %d states, %d grid points over one period" n npts);
      {
        sys;
        times = g.g_times;
        interval_phase = g.g_phase;
        ks;
        phis;
        k0;
        phi_period;
        q_period;
      })

let variance_trace s c =
  Array.map (fun k -> Vec.dot c (Mat.mul_vec k c)) s.ks

let variance_at_boundary s c = Vec.dot c (Mat.mul_vec s.k0 c)

let average_variance s c =
  let tr = variance_trace s c in
  let period = s.times.(Array.length s.times - 1) in
  Scnoise_util.Grid.trapezoid s.times tr /. period

let closure_error s = Mat.max_abs_diff s.ks.(Array.length s.ks - 1) s.k0
