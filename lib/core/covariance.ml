module Mat = Scnoise_linalg.Mat
module Vec = Scnoise_linalg.Vec
module Vanloan = Scnoise_linalg.Vanloan
module Lyapunov = Scnoise_linalg.Lyapunov
module Expm = Scnoise_linalg.Expm
module Linop = Scnoise_linalg.Linop
module Kexpm = Scnoise_linalg.Kexpm
module Lowrank = Scnoise_linalg.Lowrank
module Symeig = Scnoise_linalg.Symeig
module Pwl = Scnoise_circuit.Pwl
module Obs = Scnoise_obs.Obs
module Pool = Scnoise_par.Pool

let src = Logs.Src.create "scnoise.covariance" ~doc:"periodic covariance solver"

module Log = (val Logs.src_log src : Logs.LOG)

let c_samples = Obs.counter "covariance_samples"

let c_lowrank_samples = Obs.counter "covariance.lowrank_samples"

(* Doubling iterations of the factored steady-state solve share the
   dense solver's counter, so [lyapunov.doubling_steps] reports the
   total across backends. *)
let c_doubling_steps = Obs.counter "lyapunov.doubling_steps"

let h_peak_rank =
  Obs.histogram ~mode:Scnoise_obs.Hist.Counts "lowrank.peak_rank"

let t_build = Obs.timer "cov.lowrank.build_ops"

let t_scan = Obs.timer "cov.lowrank.scan"

let t_steady = Obs.timer "cov.lowrank.steady"

let t_sweep = Obs.timer "cov.lowrank.sweep"

let timed t f =
  let t0 = Scnoise_obs.Clock.now () in
  let r = f () in
  Obs.timer_record t (Scnoise_obs.Clock.elapsed t0);
  r

type solver = [ `Auto | `Kron | `Doubling | `Iterate of int ]

type grid_kind = [ `Stretched | `Uniform ]

type backend = Dense | Lowrank

type krep = Kdense of Mat.t | Kfact of Lowrank.t

type sampled = {
  sys : Pwl.t;
  times : float array;
  interval_phase : int array;
  ks : krep array;
  phis : Mat.t array;
  k0 : krep;
  phi_period : Mat.t;
  q_period : Mat.t;
  backend : backend;
  peak_rank : int;
}

(* --- covariance representation accessors --- *)

let k_mat = function Kdense m -> m | Kfact z -> Lowrank.to_dense z

let k_apply k v =
  match k with Kdense m -> Mat.mul_vec m v | Kfact z -> Lowrank.apply z v

let k_quad k v =
  match k with
  | Kdense m -> Vec.dot v (Mat.mul_vec m v)
  | Kfact z -> Lowrank.quad z v

let k_rank = function Kdense m -> Mat.rows m | Kfact z -> Lowrank.rank z

let k_bytes = function
  | Kdense m -> 8 * Mat.rows m * Mat.cols m
  | Kfact z -> Lowrank.bytes z

let ks_bytes s = Array.fold_left (fun acc k -> acc + k_bytes k) 0 s.ks

(* --- backend selection ---

   Resolution order mirrors the sweep batch width: explicit [?backend]
   argument, then [set_default_backend] (the [--cov-backend] flag),
   then [SCNOISE_COV_BACKEND], then auto by state count.  The auto
   crossover is where the factored engine's memoised discretisations
   reliably beat the dense per-interval Van Loan (see the [cov] bench
   scaling table). *)

let auto_state_threshold = 48

let backend_override : backend option ref = ref None

let set_default_backend b = backend_override := b

let env_backend =
  lazy
    (match Sys.getenv_opt "SCNOISE_COV_BACKEND" with
    | None | Some "" | Some "auto" -> None
    | Some "dense" -> Some Dense
    | Some "lowrank" -> Some Lowrank
    | Some s ->
        invalid_arg
          (Printf.sprintf
             "SCNOISE_COV_BACKEND: expected auto|dense|lowrank, got %S" s))

let configured_backend () =
  match !backend_override with
  | Some _ as b -> b
  | None -> Lazy.force env_backend

let resolve_backend ?backend ~nstates () =
  match backend with
  | Some b -> b
  | None -> (
      match configured_backend () with
      | Some b -> b
      | None -> if nstates >= auto_state_threshold then Lowrank else Dense)

let backend_name = function Dense -> "dense" | Lowrank -> "lowrank"

let backend_of_name = function
  | "dense" -> Some Dense
  | "lowrank" -> Some Lowrank
  | "auto" -> None
  | s ->
      invalid_arg
        (Printf.sprintf "covariance backend: expected auto|dense|lowrank, got %S" s)

(* Cache-key component for result caches (the serve tier): empty while
   the configuration cannot change results beyond numeric tolerance —
   at the default truncation tolerance both backends agree to well
   under any reported digit — and a discriminating tag once the user
   loosens SCNOISE_LOWRANK_RTOL enough that factored results may
   legitimately drift from dense ones. *)
let cache_tag () =
  let rtol = Lowrank.default_rtol () in
  if rtol <= 1e-12 then ""
  else
    match configured_backend () with
    | Some Dense -> ""
    | Some Lowrank -> Printf.sprintf "lowrank:%g" rtol
    | None -> Printf.sprintf "auto-lowrank:%g" rtol

(* --- grid layout ---

   Absolute times, owning phase and step size of every interval of one
   period; shared verbatim between the dense and factored engines so
   both discretise the identical grid. *)
type layout = {
  l_times : float array;
  l_phase : int array;
  l_steps : float array;
}

let grid_layout ?(samples_per_phase = 96) ?(grid = `Stretched) (sys : Pwl.t) =
  let times = ref [ 0.0 ] in
  let phases = ref [] in
  let steps = ref [] in
  let offset = ref 0.0 in
  Array.iteri
    (fun p (ph : Pwl.phase) ->
      let local =
        match grid with
        | `Stretched ->
            Phase_grid.make ~a:ph.Pwl.a ~tau:ph.Pwl.tau ~n:samples_per_phase
        | `Uniform -> Phase_grid.uniform ~tau:ph.Pwl.tau ~n:samples_per_phase
      in
      for j = 1 to Array.length local - 1 do
        let h = local.(j) -. local.(j - 1) in
        times := (!offset +. local.(j)) :: !times;
        phases := p :: !phases;
        steps := h :: !steps
      done;
      offset := !offset +. ph.Pwl.tau)
    sys.Pwl.phases;
  {
    l_times = Array.of_list (List.rev !times);
    l_phase = Array.of_list (List.rev !phases);
    l_steps = Array.of_list (List.rev !steps);
  }

(* Flattened grid over one period: absolute times, the phase owning each
   interval, and the per-interval Van Loan discretisations. *)
type discretized_grid = {
  g_times : float array;
  g_phase : int array;
  g_disc : Vanloan.t array;
}

let discretized_grid ?samples_per_phase ?(grid = `Stretched) ?pool
    (sys : Pwl.t) =
  (* Grid layout is cheap and stays serial; the per-interval Van Loan
     discretisations (a matrix exponential each) are independent, so
     they fan out across the pool — each interval's result depends only
     on its own (phase, step) pair, making the parallel grid
     bit-identical to the serial one. *)
  let pool = match pool with Some p -> p | None -> Pool.global () in
  let l = grid_layout ?samples_per_phase ~grid sys in
  let g_disc =
    Pool.map pool
      (fun i h ->
        let ph = sys.Pwl.phases.(l.l_phase.(i)) in
        Vanloan.discretize ~a:ph.Pwl.a ~q:ph.Pwl.q ~tau:h)
      l.l_steps
  in
  { g_times = l.l_times; g_phase = l.l_phase; g_disc }

let map_of_grid n g =
  let phi = ref (Mat.identity n) and q = ref (Mat.create n n) in
  Array.iter
    (fun (d : Vanloan.t) ->
      phi := Mat.mul d.Vanloan.phi !phi;
      q := Vanloan.propagate d !q)
    g.g_disc;
  (!phi, !q)

let period_map ?samples_per_phase ?grid ?pool sys =
  let g = discretized_grid ?samples_per_phase ?grid ?pool sys in
  map_of_grid sys.Pwl.nstates g

(* State count below which the O(n^6) Kron solve is still instant and
   serves as the exact reference; above it the O(n^3 log) doubling
   iteration is the default, with Kron kept as a fallback for marginal
   monodromies while it stays affordable. *)
let auto_solver_threshold = 12

let kron_fallback_cap = 64

let solve_steady solver phi q =
  match solver with
  | `Auto ->
      let n = Mat.rows q in
      if n > auto_solver_threshold then (
        try Lyapunov.solve_discrete_doubling phi q
        with Lyapunov.Not_stable _ when n <= kron_fallback_cap ->
          Lyapunov.solve_discrete_kron phi q)
      else Lyapunov.solve_discrete_kron phi q
  | `Kron -> Lyapunov.solve_discrete_kron phi q
  | `Doubling -> Lyapunov.solve_discrete_doubling phi q
  | `Iterate n ->
      let k = ref (Mat.create (Mat.rows q) (Mat.cols q)) in
      for _ = 1 to n do
        k := Mat.symmetrize (Mat.add (Mat.mul phi (Mat.mul !k (Mat.transpose phi))) q)
      done;
      !k

let periodic_initial ?(solver = `Auto) ?samples_per_phase ?pool sys =
  let phi, q = period_map ?samples_per_phase ?pool sys in
  solve_steady solver phi q

(* --- dense backend --- *)

let sample_dense ~solver ?samples_per_phase ?grid ~pool sys =
  let g = discretized_grid ?samples_per_phase ?grid ~pool sys in
  let n = sys.Pwl.nstates in
  let phi_period, q_period = map_of_grid n g in
  let k0 = solve_steady solver phi_period q_period in
  let npts = Array.length g.g_times in
  let ks = Array.make npts (Kdense k0) in
  let phis = Array.make npts (Mat.identity n) in
  let k = ref k0 and phi = ref (Mat.identity n) in
  for i = 1 to npts - 1 do
    let d = g.g_disc.(i - 1) in
    k := Vanloan.propagate d !k;
    phi := Mat.mul d.Vanloan.phi !phi;
    ks.(i) <- Kdense !k;
    phis.(i) <- !phi
  done;
  Log.debug (fun m ->
      m "sampling done: %d states, %d grid points over one period" n npts);
  {
    sys;
    times = g.g_times;
    interval_phase = g.g_phase;
    ks;
    phis;
    k0 = Kdense k0;
    phi_period;
    q_period;
    backend = Dense;
    peak_rank = n;
  }

(* --- low-rank backend ---

   Same grid, same per-interval map semantics, different economics:

   - per DISTINCT (phase, step) pair — the stretched grid repeats a
     handful of step sizes across ~2x96 intervals — one interval
     operator is built and memoised, instead of one dense 2n x 2n
     augmented exponential per interval (that exponential dominates the
     dense backend at a hundred states);
   - the covariance traverses the grid as a factored K = Z Zᵀ
     ({!Lowrank.vanloan_step}) while its numerical rank r stays low,
     so each interval costs O(n² r) against the dense backend's O(n³);
   - the representation is rank-adaptive: once r saturates towards n
     (thermal equilibrium excites every state), the factored update's
     Gram + pivoted-Cholesky recompression costs more than the two
     dense products of {!Vanloan.propagate}, so the accumulator drops
     to the dense representation — against memoised operators that is
     still a small fraction of the dense backend's per-interval cost;
   - phases whose noise intensity has few columns skip the dense Van
     Loan entirely: the process-noise factor comes from the Krylov
     Gauss quadrature ({!Kexpm.gramian_factor}) and the factor columns
     are pushed through e^{A delta} by the matrix-free Arnoldi
     propagator, sub-stepping to keep norm(A) delta ≤ 2 — these
     intervals never materialise a transition, and their covariance
     stays factored;
   - the periodic steady state is solved by the doubling iteration —
     in factored form when the accumulated process noise is, never
     materialising the n² x n² Kron system. *)

type step_op = {
  s_phi : Mat.t; (* full-interval transition, for the phis trace *)
  s_advance : Lowrank.t -> Lowrank.t;
  s_dense : Vanloan.t option;
      (* the materialised discretisation, absent on matrix-free
         intervals; enables the dense Van Loan update and run
         compression *)
}

let mf_nsub_cap = 32

let build_step (ph : Pwl.phase) h ~n ~rtol =
  let stiffness = Mat.norm_inf ph.Pwl.a *. h in
  let m = Mat.cols ph.Pwl.b in
  let nsub = max 1 (int_of_float (ceil (stiffness /. 2.0))) in
  let matrix_free = nsub <= mf_nsub_cap && 10 * m <= max 8 n in
  if matrix_free then begin
    let aop = Linop.auto ph.Pwl.a in
    let delta = h /. float_of_int nsub in
    let ws = Kexpm.workspace () in
    let lq = Kexpm.gramian_factor ~ws aop ~b:ph.Pwl.b ~tau:delta in
    let phi_step =
      Linop.of_fun ~rows:n ~cols:n (fun ~src ~dst ->
          Kexpm.expmv_into ~ws aop ~tau:delta src ~dst)
    in
    let advance z =
      let z = ref z in
      for _ = 1 to nsub do
        z := Lowrank.vanloan_step ~rtol ~phi:phi_step ~lq !z
      done;
      !z
    in
    { s_phi = Expm.expm_scaled ph.Pwl.a h; s_advance = advance; s_dense = None }
  end
  else begin
    let d = Vanloan.discretize ~a:ph.Pwl.a ~q:ph.Pwl.q ~tau:h in
    let lq = lazy (Symeig.psd_factor ~rtol:1e-15 d.Vanloan.qd) in
    {
      s_phi = d.Vanloan.phi;
      s_advance =
        (fun z ->
          Lowrank.vanloan_step_mat ~rtol ~phi:d.Vanloan.phi ~lq:(Lazy.force lq)
            z);
      s_dense = Some d;
    }
  end

(* Rank-adaptive covariance accumulator.  Factored updates win while
   the rank r is well below n; past [sat_rank] the per-interval Gram +
   pivoted Cholesky of recompression exceeds the two dense n³ products,
   so the accumulator switches to the dense representation (exact — no
   truncation is involved in the conversion). *)

let sat_rank n = 3 * n / 4

type acc = Afact of Lowrank.t | Adense of Mat.t

let acc_step op acc =
  match acc with
  | Adense k -> (
      match op.s_dense with
      | Some d -> Adense (Vanloan.propagate d k)
      | None ->
          (* matrix-free interval: no materialised transition — return
             to the factored form for this step *)
          Afact (op.s_advance (Lowrank.of_dense k)))
  | Afact z ->
      let z = op.s_advance z in
      if op.s_dense <> None && Lowrank.rank z > sat_rank (Lowrank.nstates z)
      then Adense (Lowrank.to_dense z)
      else Afact z

let acc_dense = function Adense k -> k | Afact z -> Lowrank.to_dense z

let acc_krep = function Adense k -> Kdense k | Afact z -> Kfact z

let acc_rank n = function Adense _ -> n | Afact z -> Lowrank.rank z

(* The scan only needs the process noise accumulated over the whole
   period, not at every grid point, so a run of [len] consecutive
   intervals sharing one operator collapses to O(log len) work: the
   affine map X ↦ Phi X Phiᵀ + Qd composes with itself by binary
   doubling exactly like the steady-state solver's iteration. *)
let run_map (d : Vanloan.t) len =
  let square (p, q) = (Mat.mul p p, Mat.symmetrize (Mat.add (Mat.mul p (Mat.mul q (Mat.transpose p))) q)) in
  let compose (p2, q2) (p1, q1) =
    (Mat.mul p2 p1, Mat.symmetrize (Mat.add (Mat.mul p2 (Mat.mul q1 (Mat.transpose p2))) q2))
  in
  let n = Mat.rows d.Vanloan.phi in
  let acc = ref None in
  let base = ref (d.Vanloan.phi, d.Vanloan.qd) in
  let len = ref len in
  while !len > 0 do
    if !len land 1 = 1 then
      acc := Some (match !acc with None -> !base | Some a -> compose !base a);
    len := !len asr 1;
    if !len > 0 then base := square !base
  done;
  match !acc with None -> (Mat.identity n, Mat.create n n) | Some a -> a

let steady_lowrank ~solver ~rtol ~phi_period ~zq ~q_period n =
  match solver with
  | `Kron ->
      Lowrank.of_dense (Lyapunov.solve_discrete_kron phi_period q_period)
  | `Iterate iters ->
      let zqf = Lowrank.factor zq in
      let z = ref (Lowrank.zero n) in
      for _ = 1 to iters do
        z :=
          Lowrank.compress ~rtol
            (Lowrank.append (Lowrank.propagate_mat phi_period !z) zqf)
      done;
      !z
  | `Auto | `Doubling ->
      (* Doubling in factored form: X_{k+1} = X_k + P_k X_k P_kᵀ with
         P_{k+1} = P_k², converging to the fixed point of the period
         map.  The P X Pᵀ increment appends as factor columns; the
         convergence and divergence tests mirror the dense solver
         (largest increment entry against the running solution — for a
         PSD increment that largest entry sits on the diagonal). *)
      let tol = 1e-14 and max_iter = 200 in
      let guard = Float.max 1.0 (Mat.max_abs q_period) in
      let x = ref zq and p = ref (Mat.copy phi_period) in
      let finished = ref false in
      let iter = ref 0 in
      while not !finished do
        incr iter;
        if !iter > max_iter then
          raise (Lyapunov.Not_stable "doubling iteration did not converge");
        Obs.incr c_doubling_steps;
        let f = Mat.mul !p (Lowrank.factor !x) in
        let delta =
          let fd = Mat.data f in
          let r = Mat.cols f in
          let best = ref 0.0 in
          for i = 0 to n - 1 do
            let s = ref 0.0 in
            for l = 0 to r - 1 do
              s := !s +. (fd.((i * r) + l) *. fd.((i * r) + l))
            done;
            if !s > !best then best := !s
          done;
          !best
        in
        x := Lowrank.compress ~rtol (Lowrank.append !x f);
        if Mat.max_abs !p > 1e154 then
          raise
            (Lyapunov.Not_stable "monodromy powers diverge: spectral radius >= 1");
        if delta > guard *. 1e8 then
          raise
            (Lyapunov.Not_stable "doubling iteration diverges: spectral radius >= 1");
        if delta <= tol *. Lowrank.max_diag !x then finished := true
        else p := Mat.mul !p !p
      done;
      !x

let sample_lowrank ~solver ~rtol ?samples_per_phase ?grid ~pool sys =
  Obs.incr c_lowrank_samples;
  let n = sys.Pwl.nstates in
  let l = grid_layout ?samples_per_phase ?grid sys in
  let nint = Array.length l.l_steps in
  (* memoise interval operators per distinct (phase, step) pair, in
     first-occurrence order so the build is deterministic.  Consecutive
     differences of the grid's uniform section jitter in the last few
     mantissa bits, so the key quantises the step to ~1e-12 relative
     (rounding the low 12 mantissa bits away) — steps that close share
     the first-seen step's operator.  The transition's sensitivity to a
     step perturbation scales with norm(A)·h, so the merge only applies
     to non-stiff intervals, keeping the induced error orders of
     magnitude below the backend parity tolerance; stiff intervals use
     exact step bits. *)
  let quantize h =
    Int64.logand
      (Int64.add (Int64.bits_of_float h) 0x800L)
      (Int64.lognot 0xFFFL)
  in
  let merge_stiffness_cap = 16.0 in
  let phase_norms =
    Array.map (fun (ph : Pwl.phase) -> Mat.norm_inf ph.Pwl.a) sys.Pwl.phases
  in
  let tbl = Hashtbl.create 32 in
  let rev_distinct = ref [] in
  let count = ref 0 in
  let idx_of = Array.make nint 0 in
  for i = 0 to nint - 1 do
    let h = l.l_steps.(i) in
    let key_bits =
      if phase_norms.(l.l_phase.(i)) *. h <= merge_stiffness_cap then
        quantize h
      else Int64.bits_of_float h
    in
    let key = (l.l_phase.(i), key_bits) in
    match Hashtbl.find_opt tbl key with
    | Some d -> idx_of.(i) <- d
    | None ->
        Hashtbl.add tbl key !count;
        idx_of.(i) <- !count;
        rev_distinct := (l.l_phase.(i), l.l_steps.(i)) :: !rev_distinct;
        incr count
  done;
  let distinct = Array.of_list (List.rev !rev_distinct) in
  Log.debug (fun m ->
      m "lowrank backend: %d intervals share %d distinct step operators"
        nint (Array.length distinct));
  let ops =
    timed t_build (fun () ->
        Pool.map pool
          (fun _ (p, h) -> build_step sys.Pwl.phases.(p) h ~n ~rtol)
          distinct)
  in
  (* scan: one period from K = 0 accumulates the process noise of the
     whole period (rank-adaptively), and the transitions compose
     densely into Phi(t_i, 0) *)
  let npts = nint + 1 in
  let peak = ref 0 in
  let phis = Array.make npts (Mat.identity n) in
  let zq = ref (Afact (Lowrank.zero n)) and phi = ref (Mat.identity n) in
  timed t_scan (fun () ->
      (* transition chain — consumed pointwise by the PSD engine *)
      for i = 0 to nint - 1 do
        phi := Mat.mul (ops.(idx_of.(i))).s_phi !phi;
        phis.(i + 1) <- !phi
      done;
      (* period process noise, one maximal operator run at a time;
         once the accumulator is dense a run collapses to O(log len)
         via {!run_map} *)
      let i = ref 0 in
      while !i < nint do
        let j = idx_of.(!i) in
        let len = ref 1 in
        while !i + !len < nint && idx_of.(!i + !len) = j do
          incr len
        done;
        let op = ops.(j) in
        let remaining = ref !len in
        let collapsed () =
          match (!zq, op.s_dense) with
          | Adense q, Some d when !remaining >= 5 ->
              let p, qr = run_map d !remaining in
              zq :=
                Adense
                  (Mat.symmetrize
                     (Mat.add (Mat.mul p (Mat.mul q (Mat.transpose p))) qr));
              remaining := 0;
              true
          | _ -> false
        in
        while !remaining > 0 do
          if not (collapsed ()) then begin
            zq := acc_step op !zq;
            peak := max !peak (acc_rank n !zq);
            decr remaining
          end
        done;
        i := !i + !len
      done);
  let phi_period = phis.(nint) in
  let q_period = acc_dense !zq in
  let k0 =
    timed t_steady (fun () ->
        match !zq with
        | Adense q -> Adense (solve_steady solver phi_period q)
        | Afact z ->
            Afact (steady_lowrank ~solver ~rtol ~phi_period ~zq:z ~q_period n))
  in
  (* sweep: unroll K(t_{i+1}) = Phi_i K(t_i) Phi_iᵀ + Qd_i from the
     steady state — the same recurrence as the dense backend, but over
     the memoised operators and in whichever representation is cheapest
     at the current rank *)
  let ks = Array.make npts (acc_krep k0) in
  peak := max !peak (acc_rank n k0);
  let k = ref k0 in
  timed t_sweep (fun () ->
      for i = 0 to nint - 1 do
        k := acc_step ops.(idx_of.(i)) !k;
        peak := max !peak (acc_rank n !k);
        ks.(i + 1) <- acc_krep !k
      done);
  let peak = !peak in
  Obs.hist_record_int h_peak_rank peak;
  Log.debug (fun m ->
      m "lowrank sampling done: %d states, %d grid points, peak rank %d" n
        npts peak);
  {
    sys;
    times = l.l_times;
    interval_phase = l.l_phase;
    ks;
    phis;
    k0 = acc_krep k0;
    phi_period;
    q_period;
    backend = Lowrank;
    peak_rank = peak;
  }

let sample ?(solver = `Auto) ?backend ?rtol ?samples_per_phase ?grid ?pool sys =
  Obs.with_span ~src "covariance.sample" (fun () ->
      Obs.incr c_samples;
      let pool = match pool with Some p -> p | None -> Pool.global () in
      match resolve_backend ?backend ~nstates:sys.Pwl.nstates () with
      | Dense -> sample_dense ~solver ?samples_per_phase ?grid ~pool sys
      | Lowrank ->
          let rtol =
            match rtol with Some r -> r | None -> Lowrank.default_rtol ()
          in
          sample_lowrank ~solver ~rtol ?samples_per_phase ?grid ~pool sys)

let variance_trace s c = Array.map (fun k -> k_quad k c) s.ks

let variance_at_boundary s c = k_quad s.k0 c

let average_variance s c =
  let tr = variance_trace s c in
  let period = s.times.(Array.length s.times - 1) in
  Scnoise_util.Grid.trapezoid s.times tr /. period

let closure_error s =
  Mat.max_abs_diff (k_mat s.ks.(Array.length s.ks - 1)) (k_mat s.k0)
