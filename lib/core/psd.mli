(** Mixed-frequency-time computation of the output noise power spectral
    density of a switched linear circuit — the core algorithm of this
    library.

    The cross-spectral density [K'(t) = E{x_n(t) X(t,w)*}] obeys
    [dK'/dt = A(t) K' + K(t) c e^{jwt}] and its steady state is
    quasi-periodic with the clock rate and the analysis frequency.
    Writing [K'(t) = e^{jwt} P(t)] with [P] clock-periodic reduces the
    computation to one periodic boundary-value problem per frequency:

    - [dP/dt = (A(t) - jw I) P + K(t) c] over a single clock period,
    - [P(0) = (I - e^{-jwT} Phi)^{-1} P_part(T)] with the real monodromy
      [Phi] shared by all frequencies,
    - [S(w) = (2/T) Int_0^T Re (cᵀ P(t)) dt].

    The expected energy-spectral-density accumulator of the underlying
    formulation grows at exactly this rate in steady state, so the value
    agrees with the brute-force time-domain engine in the noise library
    (within discretisation error) while costing one clock period of
    integration per frequency instead of tens or hundreds. *)

module Vec = Scnoise_linalg.Vec
module Cvec = Scnoise_linalg.Cvec
module Pwl = Scnoise_circuit.Pwl

type engine

val of_sampled : Covariance.sampled -> output:Vec.t -> engine
(** Build an engine from an already-sampled periodic covariance (allows
    sharing the covariance across several outputs). *)

val prepare :
  ?solver:Covariance.solver -> ?cov_backend:Covariance.backend ->
  ?samples_per_phase:int -> ?grid:Covariance.grid_kind ->
  ?pool:Scnoise_par.Pool.t -> Pwl.t -> output:Vec.t -> engine
(** One-stop preparation: periodic covariance + grids + monodromy.
    [cov_backend] overrides the covariance engine selection
    ({!Covariance.resolve_backend}). *)

val output : engine -> Vec.t

val covariance : engine -> Covariance.sampled

val psd : engine -> f:float -> float
(** Double-sided output PSD (V^2/Hz) at frequency [f] (Hz).  [f] may be
    0 or negative (the PSD is even in [f]). *)

val psd_db : engine -> f:float -> float
(** [10 log10 (psd)] as plotted in the papers. *)

val sweep :
  ?pool:Scnoise_par.Pool.t -> ?batch:int -> engine -> float array ->
  float array
(** Frequency sweep, batched by default: frequencies are tiled into
    width-[batch] blocks, each advanced in lockstep through the phase
    grid by the blocked demodulated kernels
    ({!Periodic_bvp.solve_block_into}), and the blocks are fanned out
    across [pool] (default: the shared pool).  Every block column is
    bitwise identical to the scalar per-frequency solve, solves are
    read-only over the prepared engine, and results are placed by
    index, so the sweep is bit-identical to serial and to [batch:1] at
    any job count.  Blocks the blocked backend cannot take (reference
    gate, complex-LU fallback frequencies) run the scalar path.

    [batch] resolves as: explicit argument, else {!set_default_batch},
    else the [SCNOISE_BATCH] environment variable, else an auto width
    from the state count; the result is clamped to the sweep length.
    Raises [Invalid_argument] on [batch < 1].  An empty sweep returns
    [[||]] without touching the pool; a single-point sweep never
    allocates a panel. *)

val sweep_db :
  ?pool:Scnoise_par.Pool.t -> ?batch:int -> engine -> float array ->
  float array

val set_default_batch : int -> unit
(** Process-wide default block width for {!sweep} (what [--batch]
    sets).  Raises [Invalid_argument] on values below 1. *)

val configured_batch : unit -> int option
(** The pinned process-wide block width ({!set_default_batch} or
    [SCNOISE_BATCH]), or [None] when sweeps auto-tune per engine. *)

val batch_width : ?batch:int -> engine -> npoints:int -> int
(** The block width {!sweep} would use for a sweep of [npoints] over
    this engine, after resolution and clamping — exposed for status
    reporting and benchmarks. *)

val envelope : engine -> f:float -> Cvec.t array
(** The periodic envelope [P(t_i)] on the covariance grid — exposed for
    diagnostics and tests. *)

val instantaneous : engine -> f:float -> float array * float array
(** [(times, s)] — the instantaneous power spectral density
    [S_v(t, f) = 2 Re (cᵀ P(t))] over one clock period in steady state
    (the time-varying spectrum of the underlying non-stationary
    formulation); its period average is {!psd}. *)

val average_variance : engine -> float
(** Time-averaged output variance (from the covariance trace). *)

val integrated_noise :
  ?points:int -> ?pool:Scnoise_par.Pool.t -> ?batch:int -> engine ->
  fmin:float -> fmax:float -> float
(** Output noise power (V^2) in the band [[fmin, fmax]] (plus the
    mirrored negative band — the PSD is double-sided), by trapezoidal
    quadrature over [points] frequencies. *)
