module Mat = Scnoise_linalg.Mat
module Cx = Scnoise_linalg.Cx
module Cvec = Scnoise_linalg.Cvec
module Cmat = Scnoise_linalg.Cmat
module Clu = Scnoise_linalg.Clu
module Ctrapezoid = Scnoise_ode.Ctrapezoid
module Pwl = Scnoise_circuit.Pwl
module Obs = Scnoise_obs.Obs

let src = Logs.Src.create "scnoise.bvp" ~doc:"periodic boundary-value solver"

module Log = (val Logs.src_log src : Logs.LOG)

let c_cache_hits = Obs.counter "stepper_cache_hits"

let c_cache_misses = Obs.counter "stepper_cache_misses"

let c_solves = Obs.counter "bvp_solves"

type t = {
  sys : Pwl.t;
  times : float array;
  interval_phase : int array;
  phis : Mat.t array; (* transition Phi(t_i, 0) *)
  cphis : Cmat.t array; (* the same transitions, complexified once *)
  phi_period : Mat.t;
}

(* The homogeneous correction in [close_periodic] needs the transitions
   as complex matrices; materialising them here, once per prepared
   solver, keeps the per-frequency path free of the O(N n^2)
   re-complexification it used to pay on every point. *)
let of_sampled (cov : Covariance.sampled) =
  {
    sys = cov.Covariance.sys;
    times = cov.Covariance.times;
    interval_phase = cov.Covariance.interval_phase;
    phis = cov.Covariance.phis;
    cphis = Array.map Cmat.of_real cov.Covariance.phis;
    phi_period = cov.Covariance.phi_period;
  }

let times t = Array.copy t.times

let n_points t = Array.length t.times

let interval_phase t = Array.copy t.interval_phase

let make_stepper_cache t omega =
  let shift = Cx.make 0.0 omega in
  let cache : (int * float, Ctrapezoid.stepper) Hashtbl.t =
    Hashtbl.create 64
  in
  fun p h ->
    match Hashtbl.find_opt cache (p, h) with
    | Some st ->
        Obs.incr c_cache_hits;
        st
    | None ->
        Obs.incr c_cache_misses;
        let st = Ctrapezoid.make ~a:t.sys.Pwl.phases.(p).Pwl.a ~shift ~h in
        Hashtbl.add cache (p, h) st;
        st

let particular_piecewise t ~omega ~forcing =
  let n = t.sys.Pwl.nstates in
  let npts = Array.length t.times in
  let stepper = make_stepper_cache t omega in
  let traj = Array.make npts (Cvec.create n) in
  let p_cur = ref (Cvec.create n) in
  for i = 1 to npts - 1 do
    let h = t.times.(i) -. t.times.(i - 1) in
    let p = t.interval_phase.(i - 1) in
    let k0, k1 = forcing (i - 1) in
    p_cur := Ctrapezoid.step (stepper p h) ~p:!p_cur ~k0 ~k1;
    traj.(i) <- !p_cur
  done;
  traj

let close_periodic t ~omega part =
  let n = t.sys.Pwl.nstates in
  let period = t.sys.Pwl.period in
  let npts = Array.length part in
  let rot_t = Cx.cis (-.omega *. period) in
  let lhs =
    Cmat.init n n (fun i j ->
        let p = Cx.scale (Mat.get t.phi_period i j) rot_t in
        if i = j then Cx.( -: ) Cx.one p else Cx.neg p)
  in
  let p0 = Clu.solve_dense lhs part.(npts - 1) in
  Log.debug (fun m ->
      m "BVP closed: %d points, omega = %g rad/s" npts omega);
  Array.init npts (fun i ->
      let rot = Cx.cis (-.omega *. t.times.(i)) in
      let hom = Cmat.mul_vec t.cphis.(i) p0 in
      Cvec.add (Cvec.scale rot hom) part.(i))

let solve_piecewise t ~omega ~forcing =
  Obs.with_span ~src "periodic_bvp.solve" (fun () ->
      Obs.incr c_solves;
      close_periodic t ~omega (particular_piecewise t ~omega ~forcing))

let particular t ~omega ~forcing =
  particular_piecewise t ~omega ~forcing:(fun i ->
      (forcing i, forcing (i + 1)))

let solve t ~omega ~forcing =
  Obs.with_span ~src "periodic_bvp.solve" (fun () ->
      Obs.incr c_solves;
      close_periodic t ~omega (particular t ~omega ~forcing))
