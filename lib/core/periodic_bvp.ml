module Mat = Scnoise_linalg.Mat
module Cx = Scnoise_linalg.Cx
module Cvec = Scnoise_linalg.Cvec
module Cmat = Scnoise_linalg.Cmat
module Clu = Scnoise_linalg.Clu
module Ctrapezoid = Scnoise_ode.Ctrapezoid
module Pwl = Scnoise_circuit.Pwl
module Obs = Scnoise_obs.Obs

let src = Logs.Src.create "scnoise.bvp" ~doc:"periodic boundary-value solver"

module Log = (val Logs.src_log src : Logs.LOG)

let c_cache_hits = Obs.counter "stepper_cache_hits"

let c_cache_misses = Obs.counter "stepper_cache_misses"

let c_solves = Obs.counter "bvp_solves"

(* Wall time of one periodic-BVP solve; recorded only while telemetry
   is enabled (same gate as the enclosing span). *)
let h_solve = Obs.histogram "periodic_bvp.solve_s"

module Clock = Scnoise_obs.Clock

let timed_hist h f =
  if Obs.is_enabled () then begin
    let t0 = Clock.now () in
    let r = f () in
    Obs.hist_record h (Clock.elapsed t0);
    r
  end
  else f ()

let c_fallback_steps = Obs.counter "bvp_fallback_steps"

(* SCNOISE_REFERENCE_BVP=1 keeps the per-frequency complex-LU stepper
   path as the reference implementation; the default is the
   demodulated path, which reuses one real LU per (phase, h) across
   every frequency of a sweep.  Both compute the same shifted
   trapezoid discretisation (the demodulated solve is refined to below
   1e-13 relative), which the golden-parity tests pin down. *)
let reference_gate =
  ref
    (match Sys.getenv_opt "SCNOISE_REFERENCE_BVP" with
    | None | Some ("" | "0" | "false" | "no") -> false
    | Some _ -> true)

let reference_enabled () = !reference_gate

let set_reference b = reference_gate := b

type t = {
  id : int; (* unique per prepared solver; keys domain-local caches *)
  sys : Pwl.t;
  nstates : int;
  times : float array;
  interval_phase : int array;
  phis : Mat.t array; (* transition Phi(t_i, 0) *)
  cphis : Cmat.t array; (* the same transitions, complexified once *)
  phi_period : Mat.t;
  demods : Ctrapezoid.demod array; (* one per distinct (phase, h) *)
  interval_demod : int array; (* interval i -> index into [demods] *)
  demod_key : (int * float) array; (* demod index -> (phase, h) *)
}

let next_id = Atomic.make 0

(* The homogeneous correction in [close_periodic] needs the transitions
   as complex matrices; materialising them here, once per prepared
   solver, keeps the per-frequency path free of the O(N n^2)
   re-complexification it used to pay on every point.  The demodulated
   steppers (one real LU per distinct (phase, h)) are likewise hoisted:
   they are frequency-independent, so a whole sweep reuses them. *)
let of_sampled (cov : Covariance.sampled) =
  let sys = cov.Covariance.sys in
  let times = cov.Covariance.times in
  let interval_phase = cov.Covariance.interval_phase in
  let nintervals = Array.length times - 1 in
  let table : (int * float, int) Hashtbl.t = Hashtbl.create 32 in
  let demods = ref [] in
  let keys = ref [] in
  let count = ref 0 in
  let interval_demod =
    Array.init nintervals (fun i ->
        let p = interval_phase.(i) in
        let h = times.(i + 1) -. times.(i) in
        match Hashtbl.find_opt table (p, h) with
        | Some idx -> idx
        | None ->
            let st = Ctrapezoid.make_demod ~a:sys.Pwl.phases.(p).Pwl.a ~h in
            let idx = !count in
            incr count;
            demods := st :: !demods;
            keys := (p, h) :: !keys;
            Hashtbl.add table (p, h) idx;
            idx)
  in
  {
    id = Atomic.fetch_and_add next_id 1;
    sys;
    nstates = sys.Pwl.nstates;
    times;
    interval_phase;
    phis = cov.Covariance.phis;
    cphis = Array.map Cmat.of_real cov.Covariance.phis;
    phi_period = cov.Covariance.phi_period;
    demods = Array.of_list (List.rev !demods);
    interval_demod;
    demod_key = Array.of_list (List.rev !keys);
  }

let times t = Array.copy t.times

let n_points t = Array.length t.times

let n_states t = t.nstates

let interval_phase t = Array.copy t.interval_phase

let make_stepper_cache t omega =
  let shift = Cx.make 0.0 omega in
  let cache : (int * float, Ctrapezoid.stepper) Hashtbl.t =
    Hashtbl.create 64
  in
  fun p h ->
    match Hashtbl.find_opt cache (p, h) with
    | Some st ->
        Obs.incr c_cache_hits;
        st
    | None ->
        Obs.incr c_cache_misses;
        let st = Ctrapezoid.make ~a:t.sys.Pwl.phases.(p).Pwl.a ~shift ~h in
        Hashtbl.add cache (p, h) st;
        st

(* --- per-domain workspace ---

   Everything the hot path needs beyond the returned trajectory lives
   in one domain-local record (same pattern as [Psd.scratch]): pooled
   sweeps get one workspace per worker, so shared engines stay
   read-only. *)
type block_scratch = {
  bs_width : int;
  bs_dim : int;
  bs_work : Ctrapezoid.block_work;
  mutable bs_iters : int array array; (* per demod stepper, per column *)
  bs_p0 : Cvec.panel; (* boundary values P_b(0), one column per frequency *)
  bs_hom : Cvec.panel; (* homogeneous-correction scratch *)
  bs_cr : float array; (* per-column cos(-w_b t_i) *)
  bs_ci : float array; (* per-column sin(-w_b t_i) *)
}

type ws = {
  mutable w_dim : int; (* dimension the buffers are sized for *)
  mutable w_dw : Ctrapezoid.demod_work;
  mutable w_iters : int array; (* per demod stepper, current omega *)
  mutable w_lhs : Cmat.t; (* boundary matrix I - e^{-jwT} Phi *)
  mutable w_lu : Clu.t;
  mutable w_solve : float array; (* Clu.solve_into workspace, 2n *)
  mutable w_p0 : Cvec.t;
  mutable w_hom : Cvec.t;
  mutable w_block : block_scratch option; (* blocked-path panels, lazy *)
  w_fb : (int, Ctrapezoid.reusable) Hashtbl.t;
      (* fallback steppers, keyed by (solver id, demod index); they
         retune in place when the frequency moves, so a whole sweep
         reuses their buffers *)
}

let ws_key =
  Domain.DLS.new_key (fun () ->
      {
        w_dim = -1;
        w_dw = Ctrapezoid.demod_work 0;
        w_iters = [||];
        w_lhs = Cmat.create 0 0;
        w_lu = Clu.create 0;
        w_solve = [||];
        w_p0 = Cvec.create 0;
        w_hom = Cvec.create 0;
        w_block = None;
        w_fb = Hashtbl.create 16;
      })

let workspace t =
  let ws = Domain.DLS.get ws_key in
  if ws.w_dim <> t.nstates then begin
    let n = t.nstates in
    ws.w_dim <- n;
    ws.w_dw <- Ctrapezoid.demod_work n;
    ws.w_lhs <- Cmat.create n n;
    ws.w_lu <- Clu.create n;
    ws.w_solve <- Array.make (2 * n) 0.0;
    ws.w_p0 <- Cvec.create n;
    ws.w_hom <- Cvec.create n
  end;
  if Array.length ws.w_iters < Array.length t.demods then
    ws.w_iters <- Array.make (Array.length t.demods) 0;
  ws

(* Blocked-path scratch, sized for the current (dimension, width) pair;
   recreated only when either changes, so a tiled sweep reuses one set
   of panels per domain.  The per-stepper iteration table grows with
   the richest solver seen on this domain. *)
let block_scratch t ~width =
  let ws = workspace t in
  let n = t.nstates in
  let fresh () =
    {
      bs_width = width;
      bs_dim = n;
      bs_work = Ctrapezoid.block_work ~dim:n ~width;
      bs_iters =
        Array.init (Array.length t.demods) (fun _ -> Array.make width 0);
      bs_p0 = Cvec.panel_create ~dim:n ~width;
      bs_hom = Cvec.panel_create ~dim:n ~width;
      bs_cr = Array.make width 0.0;
      bs_ci = Array.make width 0.0;
    }
  in
  let bs =
    match ws.w_block with
    | Some bs when bs.bs_width = width && bs.bs_dim = n -> bs
    | _ ->
        let bs = fresh () in
        ws.w_block <- Some bs;
        bs
  in
  if Array.length bs.bs_iters < Array.length t.demods then
    bs.bs_iters <-
      Array.init (Array.length t.demods) (fun _ -> Array.make width 0);
  bs

let check_traj t traj =
  let npts = Array.length t.times in
  if Array.length traj <> npts then
    invalid_arg "Periodic_bvp: trajectory buffer has wrong length";
  for i = 0 to npts - 1 do
    if Cvec.dim traj.(i) <> t.nstates then
      invalid_arg "Periodic_bvp: trajectory buffer has wrong dimension"
  done

let alloc_traj t =
  Array.init (Array.length t.times) (fun _ -> Cvec.create t.nstates)

(* Forced transient from a zero initial condition, written over [traj]
   in place ([traj.(0)] is zeroed; each entry must be a distinct
   buffer).  [kl i]/[kr i] give the forcing at the left and right
   endpoints of interval [i]. *)
let particular_into t ~omega ~kl ~kr traj =
  let npts = Array.length t.times in
  Cvec.fill_zero traj.(0);
  if !reference_gate then begin
    let stepper = make_stepper_cache t omega in
    for i = 1 to npts - 1 do
      let h = t.times.(i) -. t.times.(i - 1) in
      let p = t.interval_phase.(i - 1) in
      Ctrapezoid.step_into (stepper p h) ~p:traj.(i - 1) ~k0:(kl (i - 1))
        ~k1:(kr (i - 1)) ~into:traj.(i)
    done
  end
  else begin
    let ws = workspace t in
    let iters = ws.w_iters in
    for s = 0 to Array.length t.demods - 1 do
      iters.(s) <- Ctrapezoid.demod_iters t.demods.(s) ~omega
    done;
    (* Complex-LU fallback for (phase, h) pairs whose contraction is
       too slow at this frequency.  The steppers live in the
       domain-local workspace and retune (refactor in place) only when
       the frequency moves, so even fallback-heavy sweeps allocate
       nothing per point after warm-up. *)
    for i = 1 to npts - 1 do
      let si = t.interval_demod.(i - 1) in
      let m = iters.(si) in
      if m >= 0 then
        Ctrapezoid.step_demod_into t.demods.(si) ~work:ws.w_dw ~omega ~iters:m
          ~p:traj.(i - 1) ~k0:(kl (i - 1)) ~k1:(kr (i - 1)) ~into:traj.(i)
      else begin
        Obs.incr c_fallback_steps;
        let key = (t.id lsl 20) lor si in
        let st =
          match Hashtbl.find ws.w_fb key with
          | st ->
              Obs.incr c_cache_hits;
              st
          | exception Not_found ->
              Obs.incr c_cache_misses;
              let p, h = t.demod_key.(si) in
              let st =
                Ctrapezoid.make_reusable ~a:t.sys.Pwl.phases.(p).Pwl.a ~h
              in
              Hashtbl.add ws.w_fb key st;
              st
        in
        Ctrapezoid.retune st ~omega;
        Ctrapezoid.step_reusable_into st ~p:traj.(i - 1) ~k0:(kl (i - 1))
          ~k1:(kr (i - 1)) ~into:traj.(i)
      end
    done
  end

(* Close the periodic boundary in place: solve for P(0) against the
   rotated monodromy, then add the homogeneous correction to every
   grid point.  Only workspace buffers are touched besides [traj]. *)
let close_periodic_into t ~omega traj =
  let n = t.nstates in
  let period = t.sys.Pwl.period in
  let npts = Array.length traj in
  let ws = workspace t in
  let rot_t = Cx.cis (-.omega *. period) in
  let ld = Cmat.data ws.w_lhs in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let phi = Mat.get t.phi_period i j in
      let pre = phi *. rot_t.Cx.re and pim = phi *. rot_t.Cx.im in
      let k = 2 * ((i * n) + j) in
      if i = j then begin
        ld.(k) <- 1.0 -. pre;
        ld.(k + 1) <- 0.0 -. pim
      end
      else begin
        ld.(k) <- -.pre;
        ld.(k + 1) <- -.pim
      end
    done
  done;
  Clu.factor_into ws.w_lu ws.w_lhs;
  Clu.solve_into ws.w_lu ~work:ws.w_solve ~b:traj.(npts - 1) ~into:ws.w_p0;
  Log.debug (fun m ->
      m "BVP closed: %d points, omega = %g rad/s" npts omega);
  (* traj.(i) += e^{-jwt_i} Phi(t_i) P(0).  The rotation is applied
     inline over the flat buffers ([Cvec.axpy_ri_into]'s arithmetic):
     float arguments would be boxed at every call on non-flambda
     builds, and this loop runs once per grid point per frequency. *)
  for i = 0 to npts - 1 do
    let theta = -.omega *. t.times.(i) in
    Cmat.mul_vec_into t.cphis.(i) ws.w_p0 ~into:ws.w_hom;
    let sre = cos theta and sim = sin theta in
    let xd = Cvec.data ws.w_hom and td = Cvec.data traj.(i) in
    for k = 0 to n - 1 do
      let re = xd.(2 * k) and im = xd.((2 * k) + 1) in
      td.(2 * k) <- ((sre *. re) -. (sim *. im)) +. td.(2 * k);
      td.((2 * k) + 1) <- ((sre *. im) +. (sim *. re)) +. td.((2 * k) + 1)
    done
  done

let solve_into t ~omega ~forcing traj =
  check_traj t traj;
  Obs.with_span ~src "periodic_bvp.solve" (fun () ->
      timed_hist h_solve (fun () ->
          Obs.incr c_solves;
          particular_into t ~omega ~kl:forcing ~kr:(fun i -> forcing (i + 1))
            traj;
          close_periodic_into t ~omega traj))

let solve t ~omega ~forcing =
  let traj = alloc_traj t in
  solve_into t ~omega ~forcing traj;
  traj

let solve_piecewise t ~omega ~forcing =
  Obs.with_span ~src "periodic_bvp.solve" (fun () ->
      Obs.incr c_solves;
      let traj = alloc_traj t in
      let npts = Array.length t.times in
      let left = Array.make (max 0 (npts - 1)) (Cvec.create 0) in
      let right = Array.make (max 0 (npts - 1)) (Cvec.create 0) in
      for i = 0 to npts - 2 do
        let k0, k1 = forcing i in
        left.(i) <- k0;
        right.(i) <- k1
      done;
      particular_into t ~omega ~kl:(Array.get left) ~kr:(Array.get right) traj;
      close_periodic_into t ~omega traj;
      traj)

let particular t ~omega ~forcing =
  let traj = alloc_traj t in
  particular_into t ~omega ~kl:forcing ~kr:(fun i -> forcing (i + 1)) traj;
  traj

(* --- blocked multi-frequency solve ---

   [solve_block_into] advances [width] frequencies' envelopes in
   lockstep through the shared phase grid: every interval is one
   {!Ctrapezoid.step_block_into} panel step, so the real LU factors are
   traversed once per block instead of once per frequency.  Column [b]
   of every panel is bitwise identical to the scalar {!solve_into} at
   [omegas.(b)] — the blocked kernels replicate the scalar operation
   sequences per column, and the boundary close below runs the exact
   scalar factor/solve per frequency (the rotated monodromy genuinely
   differs per frequency) before applying the homogeneous correction
   panel-wide. *)

let c_block_solves = Obs.counter "bvp_block_solves"

let can_batch t ~omegas =
  (not !reference_gate)
  && Array.length omegas > 0
  && Array.for_all
       (fun omega ->
         Array.for_all
           (fun d -> Ctrapezoid.demod_refinable d ~omega)
           t.demods)
       omegas

let alloc_block_traj t ~width =
  Array.init (Array.length t.times) (fun _ ->
      Cvec.panel_create ~dim:t.nstates ~width)

let check_block_traj t ~width traj =
  let npts = Array.length t.times in
  if Array.length traj <> npts then
    invalid_arg "Periodic_bvp: block trajectory has wrong length";
  let len = 2 * t.nstates * width in
  for i = 0 to npts - 1 do
    if Array.length traj.(i) <> len then
      invalid_arg "Periodic_bvp: block trajectory has wrong panel size"
  done

let particular_block_into t ~omegas ~forcing traj =
  let width = Array.length omegas in
  let bs = block_scratch t ~width in
  (* Per-(stepper, frequency) refinement counts, recorded through the
     same telemetry as the scalar path.  A negative count means the
     caller skipped [can_batch]. *)
  for s = 0 to Array.length t.demods - 1 do
    let row = bs.bs_iters.(s) in
    for b = 0 to width - 1 do
      let m = Ctrapezoid.demod_iters t.demods.(s) ~omega:omegas.(b) in
      if m < 0 then
        invalid_arg "Periodic_bvp.solve_block_into: unbatchable frequency";
      row.(b) <- m
    done
  done;
  let npts = Array.length t.times in
  Cvec.panel_fill_zero traj.(0);
  for i = 1 to npts - 1 do
    let si = t.interval_demod.(i - 1) in
    Ctrapezoid.step_block_into t.demods.(si) ~work:bs.bs_work ~omegas
      ~iters:bs.bs_iters.(si) ~p:traj.(i - 1) ~k0:(forcing (i - 1))
      ~k1:(forcing i) ~into:traj.(i)
  done

let close_block_into t ~omegas traj =
  let n = t.nstates in
  let width = Array.length omegas in
  let period = t.sys.Pwl.period in
  let npts = Array.length traj in
  let ws = workspace t in
  let bs = block_scratch t ~width in
  (* The rotated monodromy I - e^{-jwT} Phi differs per frequency, so
     the factor/solve here stays per-column — same fill, factorisation
     and solve as the scalar close, against the gathered last column. *)
  for b = 0 to width - 1 do
    let rot_t = Cx.cis (-.omegas.(b) *. period) in
    let ld = Cmat.data ws.w_lhs in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let phi = Mat.get t.phi_period i j in
        let pre = phi *. rot_t.Cx.re and pim = phi *. rot_t.Cx.im in
        let k = 2 * ((i * n) + j) in
        if i = j then begin
          ld.(k) <- 1.0 -. pre;
          ld.(k + 1) <- 0.0 -. pim
        end
        else begin
          ld.(k) <- -.pre;
          ld.(k + 1) <- -.pim
        end
      done
    done;
    Clu.factor_into ws.w_lu ws.w_lhs;
    Cvec.panel_get_col traj.(npts - 1) ~width ~col:b ~into:ws.w_hom;
    Clu.solve_into ws.w_lu ~work:ws.w_solve ~b:ws.w_hom ~into:ws.w_p0;
    Cvec.panel_set_col ws.w_p0 bs.bs_p0 ~width ~col:b
  done;
  Log.debug (fun m ->
      m "BVP block closed: %d points, %d frequencies" npts width);
  (* traj.(i) += e^{-jwt_i} Phi(t_i) P_b(0), panel-wide: one blocked
     matvec per grid point, then a per-column rotation axpy whose
     arithmetic matches the scalar close exactly. *)
  for i = 0 to npts - 1 do
    for b = 0 to width - 1 do
      let theta = -.omegas.(b) *. t.times.(i) in
      bs.bs_cr.(b) <- cos theta;
      bs.bs_ci.(b) <- sin theta
    done;
    Cmat.mul_block_into t.cphis.(i) ~width ~x:bs.bs_p0 ~into:bs.bs_hom;
    Cvec.axpy_block_into ~width ~sre:bs.bs_cr ~sim:bs.bs_ci ~x:bs.bs_hom
      ~into:traj.(i)
  done

let solve_block_into t ~omegas ~forcing traj =
  let width = Array.length omegas in
  if width < 1 then invalid_arg "Periodic_bvp.solve_block_into: empty block";
  if !reference_gate then
    invalid_arg
      "Periodic_bvp.solve_block_into: reference backend is per-frequency";
  check_block_traj t ~width traj;
  Obs.with_span ~src "periodic_bvp.solve_block" (fun () ->
      timed_hist h_solve (fun () ->
          Obs.add c_solves width;
          Obs.incr c_block_solves;
          particular_block_into t ~omegas ~forcing traj;
          close_block_into t ~omegas traj))
