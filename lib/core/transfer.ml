module Mat = Scnoise_linalg.Mat
module Vec = Scnoise_linalg.Vec
module Cx = Scnoise_linalg.Cx
module Cvec = Scnoise_linalg.Cvec
module Pwl = Scnoise_circuit.Pwl
module Grid = Scnoise_util.Grid

type engine = {
  sys : Pwl.t;
  bvp : Periodic_bvp.t;
  out_row : Vec.t;
  times : float array;
  interval_phase : int array;
}

let of_sampled cov ~output =
  let sys = cov.Covariance.sys in
  if Array.length output <> sys.Pwl.nstates then
    invalid_arg "Transfer.of_sampled: output row has wrong length";
  let bvp = Periodic_bvp.of_sampled cov in
  {
    sys;
    bvp;
    out_row = output;
    times = Periodic_bvp.times bvp;
    interval_phase = Periodic_bvp.interval_phase bvp;
  }

let prepare ?solver ?samples_per_phase ?grid sys ~output =
  let cov = Covariance.sample ?solver ?samples_per_phase ?grid sys in
  of_sampled cov ~output

let n_inputs e = Array.length e.sys.Pwl.inputs

(* The steady state for input e^{jwt} with per-phase forcing column b_p is
   x(t) = e^{jwt} P(t) with dP/dt = (A - jw) P + b_{phase(t)}; the output
   envelope cᵀP(t) is T-periodic and its Fourier coefficients are the
   harmonic transfer functions. *)
let response e ~forcing ~f ~k_range =
  if k_range < 0 then invalid_arg "Transfer.response: k_range < 0";
  let omega = 2.0 *. Float.pi *. f in
  let cols = Array.map forcing (Array.init (Pwl.n_phases e.sys) (fun p -> p)) in
  let forcing_interval i =
    let col = cols.(e.interval_phase.(i)) in
    (col, col)
  in
  let env = Periodic_bvp.solve_piecewise e.bvp ~omega ~forcing:forcing_interval in
  let y =
    Array.map
      (fun p ->
        let acc = ref Cx.zero in
        Array.iteri
          (fun i c -> acc := Cx.( +: ) !acc (Cx.scale c (Cvec.get p i)))
          e.out_row;
        !acc)
      env
  in
  let period = e.sys.Pwl.period in
  let wc = 2.0 *. Float.pi /. period in
  Array.init
    ((2 * k_range) + 1)
    (fun idx ->
      let k = idx - k_range in
      (* (1/T) ∫ y(t) e^{-j k wc t} dt over the (non-uniform) grid *)
      let re =
        Grid.trapezoid e.times
          (Array.mapi
             (fun i (z : Cx.t) ->
               let ph = -.float_of_int k *. wc *. e.times.(i) in
               (z.Cx.re *. cos ph) -. (z.Cx.im *. sin ph))
             y)
      in
      let im =
        Grid.trapezoid e.times
          (Array.mapi
             (fun i (z : Cx.t) ->
               let ph = -.float_of_int k *. wc *. e.times.(i) in
               (z.Cx.re *. sin ph) +. (z.Cx.im *. cos ph))
             y)
      in
      Cx.make (re /. period) (im /. period))

let harmonics e ~input ~f ~k_range =
  if input < 0 || input >= n_inputs e then
    invalid_arg "Transfer.harmonics: input index out of range";
  let omega = 2.0 *. Float.pi *. f in
  (* u = e^{jwt}: the forcing is E u + Edot du/dt = (E + jw Edot) e^{jwt} *)
  let forcing p =
    let e_col = Mat.col e.sys.Pwl.phases.(p).Pwl.e input in
    let edot_col = Mat.col e.sys.Pwl.phases.(p).Pwl.e_dot input in
    Cvec.init (Array.length e_col) (fun i ->
        Cx.make e_col.(i) (omega *. edot_col.(i)))
  in
  response e ~forcing ~f ~k_range

let gain e ~input ~f =
  (harmonics e ~input ~f ~k_range:0).(0)

let gain_db e ~input ~f = Scnoise_util.Db.of_amplitude (Cx.modulus (gain e ~input ~f))
