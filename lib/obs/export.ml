(* Exporters for [Obs] snapshots: a machine-readable JSON document (for
   `scnoise ... --metrics FILE` and bench trajectory records) and
   human-readable summary tables built on [Scnoise_util.Table].

   Artifacts are meant to be long-lived and diffable: counters, timers
   and histograms are sorted by name, sibling spans are sorted by name
   in the JSON (parallel re-homing order is scheduling-dependent), and
   files are written atomically (FILE.tmp + rename) so a killed run
   never leaves a truncated document behind. *)

module Table = Scnoise_util.Table

let schema = "scnoise.metrics/2"

(* Still-parsable older documents (pre-histogram, pre-GC-accounting). *)
let schema_v1 = "scnoise.metrics/1"

(* ---- JSON ---- *)

let sort_by_name l = List.sort (fun (a, _) (b, _) -> compare a b) l

let rec span_to_json (sp : Obs.span) =
  Json.Obj
    ([
       ("name", Json.Str sp.Obs.sp_name);
       ("start_s", Json.Num sp.Obs.sp_start);
       ("duration_s", Json.Num sp.Obs.sp_duration);
       ("domain", Json.Num (float_of_int sp.Obs.sp_domain));
       ("minor_words", Json.Num sp.Obs.sp_minor_words);
       ("promoted_words", Json.Num sp.Obs.sp_promoted_words);
     ]
    @ (match sp.Obs.sp_args with
      | [] -> []
      | args ->
          [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) args)) ])
    @ [
        ( "children",
          Json.List (List.map span_to_json (sort_spans sp.Obs.sp_children)) );
      ])

(* Stable sibling order for golden files; equal names keep completion
   order (the sort is stable). *)
and sort_spans spans =
  List.stable_sort
    (fun (a : Obs.span) b -> compare a.Obs.sp_name b.Obs.sp_name)
    spans

let hist_to_json (h : Hist.snapshot) =
  Json.Obj
    [
      ("mode", Json.Str (Hist.mode_to_string h.Hist.s_mode));
      ( "buckets",
        Json.List
          (List.map
             (fun (i, c) ->
               Json.List
                 [ Json.Num (float_of_int i); Json.Num (float_of_int c) ])
             (Hist.nonzero h)) );
    ]

let to_json (snap : Obs.snapshot) =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ( "counters",
        Json.Obj
          (List.map
             (fun (name, v) -> (name, Json.Num (float_of_int v)))
             (sort_by_name snap.Obs.snap_counters)) );
      ( "timers",
        Json.Obj
          (List.map
             (fun (name, (t : Obs.timer_stat)) ->
               ( name,
                 Json.Obj
                   [
                     ("total_s", Json.Num t.Obs.tm_total);
                     ("count", Json.Num (float_of_int t.Obs.tm_count));
                     ("minor_words", Json.Num t.Obs.tm_minor_words);
                     ("promoted_words", Json.Num t.Obs.tm_promoted_words);
                   ] ))
             (sort_by_name snap.Obs.snap_timers)) );
      ( "histograms",
        Json.Obj
          (List.map
             (fun (name, h) -> (name, hist_to_json h))
             (sort_by_name snap.Obs.snap_hists)) );
      ("spans", Json.List (List.map span_to_json (sort_spans snap.Obs.snap_spans)));
    ]

let to_json_string snap = Json.to_string (to_json snap)

let field name j =
  match Json.member name j with
  | Some v -> v
  | None -> raise (Json.Parse_error (Printf.sprintf "missing field %S" name))

let to_int_exn j = int_of_float (Json.to_float_exn j)

let rec span_of_json j =
  {
    Obs.sp_name = Json.to_string_exn (field "name" j);
    sp_start = Json.to_float_exn (field "start_s" j);
    sp_duration = Json.to_float_exn (field "duration_s" j);
    sp_domain =
      (match Json.member "domain" j with Some v -> to_int_exn v | None -> 0);
    sp_minor_words =
      (match Json.member "minor_words" j with
      | Some v -> Json.to_float_exn v
      | None -> 0.0);
    sp_promoted_words =
      (match Json.member "promoted_words" j with
      | Some v -> Json.to_float_exn v
      | None -> 0.0);
    sp_args =
      (match Json.member "args" j with
      | Some (Json.Obj fields) ->
          List.map (fun (k, v) -> (k, Json.to_float_exn v)) fields
      | Some _ -> raise (Json.Parse_error "span args must be an object")
      | None -> []);
    sp_children = List.map span_of_json (Json.to_list_exn (field "children" j));
  }

let hist_of_json j =
  let mode =
    match Hist.mode_of_string (Json.to_string_exn (field "mode" j)) with
    | Some m -> m
    | None -> raise (Json.Parse_error "unknown histogram mode")
  in
  let pairs =
    List.map
      (fun p ->
        match Json.to_list_exn p with
        | [ i; c ] -> (to_int_exn i, to_int_exn c)
        | _ -> raise (Json.Parse_error "histogram bucket must be [index, count]"))
      (Json.to_list_exn (field "buckets" j))
  in
  try Hist.of_nonzero mode pairs
  with Invalid_argument msg -> raise (Json.Parse_error msg)

let timer_of_json v =
  {
    Obs.tm_total = Json.to_float_exn (field "total_s" v);
    tm_count = to_int_exn (field "count" v);
    tm_minor_words =
      (match Json.member "minor_words" v with
      | Some x -> Json.to_float_exn x
      | None -> 0.0);
    tm_promoted_words =
      (match Json.member "promoted_words" v with
      | Some x -> Json.to_float_exn x
      | None -> 0.0);
  }

(* Inverse of [to_json]; raises [Json.Parse_error] on schema mismatch.
   Round-tripping is exercised by the test suite and is what makes the
   emitted documents trustworthy as long-lived bench records.  v1
   documents (no histograms, no GC fields) still parse, so `bench diff`
   can compare against baselines recorded before this schema. *)
let of_json j =
  (match Json.member "schema" j with
  | Some (Json.Str s) when s = schema || s = schema_v1 -> ()
  | _ -> raise (Json.Parse_error "not a scnoise.metrics/1-or-2 document"));
  {
    Obs.snap_counters =
      List.map
        (fun (name, v) -> (name, to_int_exn v))
        (Json.to_obj_exn (field "counters" j));
    snap_timers =
      List.map
        (fun (name, v) -> (name, timer_of_json v))
        (Json.to_obj_exn (field "timers" j));
    snap_hists =
      (match Json.member "histograms" j with
      | None -> []
      | Some h ->
          List.map (fun (name, v) -> (name, hist_of_json v)) (Json.to_obj_exn h));
    snap_spans = List.map span_of_json (Json.to_list_exn (field "spans" j));
  }

let of_json_string s = of_json (Json.of_string s)

(* ---- atomic file writes ----

   "-" streams to stdout.  Everything else goes through FILE.tmp +
   rename, so readers (and `bench diff` baselines) only ever observe
   complete documents, even if the producing run is killed mid-write. *)

let write_string_file path s =
  if path = "-" then begin
    output_string stdout s;
    flush stdout
  end
  else begin
    let tmp = path ^ ".tmp" in
    let oc = open_out tmp in
    (try
       output_string oc s;
       close_out oc
     with exn ->
       close_out_noerr oc;
       (try Sys.remove tmp with Sys_error _ -> ());
       raise exn);
    Sys.rename tmp path
  end

let write_file path snap = write_string_file path (to_json_string snap ^ "\n")

(* ---- human-readable summaries ---- *)

let counter_table (snap : Obs.snapshot) =
  let t = Table.create [ "counter"; "value" ] in
  List.iter
    (fun (name, v) ->
      if v <> 0 then Table.add_row t [ name; string_of_int v ])
    snap.Obs.snap_counters;
  t

let hist_table (snap : Obs.snapshot) =
  let t =
    Table.create [ "histogram"; "count"; "p50"; "p90"; "p99"; "max"; "mean" ]
  in
  let cell v = if Float.is_nan v then "-" else Printf.sprintf "%.3g" v in
  List.iter
    (fun (name, h) ->
      let n = Hist.total h in
      if n > 0 then
        Table.add_row t
          [
            name;
            string_of_int n;
            cell (Hist.quantile h 0.5);
            cell (Hist.quantile h 0.9);
            cell (Hist.quantile h 0.99);
            cell (Hist.max_value h);
            cell (Hist.mean h);
          ])
    snap.Obs.snap_hists;
  t

(* Aggregate the span forest by name: call count, inclusive total and
   mean wall time, exact p50/p99 over the recorded durations, and
   minor-heap bytes per call (GC accounting).  Sorted by name so the
   rendering is stable under parallel scheduling. *)
type span_agg = {
  mutable a_total : float;
  mutable a_count : int;
  mutable a_minor : float;
  mutable a_durs : float list;
}

let span_aggregates (snap : Obs.snapshot) =
  let totals : (string, span_agg) Hashtbl.t = Hashtbl.create 16 in
  ignore
    (Obs.fold_spans
       (fun () (sp : Obs.span) ->
         let agg =
           match Hashtbl.find_opt totals sp.Obs.sp_name with
           | Some a -> a
           | None ->
               let a =
                 { a_total = 0.0; a_count = 0; a_minor = 0.0; a_durs = [] }
               in
               Hashtbl.add totals sp.Obs.sp_name a;
               a
         in
         agg.a_total <- agg.a_total +. sp.Obs.sp_duration;
         agg.a_count <- agg.a_count + 1;
         agg.a_minor <- agg.a_minor +. sp.Obs.sp_minor_words;
         agg.a_durs <- sp.Obs.sp_duration :: agg.a_durs)
       () snap);
  Hashtbl.fold (fun name a acc -> (name, a) :: acc) totals []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Exact quantile over a recorded duration list (nearest-rank). *)
let exact_quantile durs q =
  match List.sort compare durs with
  | [] -> Float.nan
  | sorted ->
      let n = List.length sorted in
      let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int n))) in
      List.nth sorted (min (n - 1) (rank - 1))

let span_table (snap : Obs.snapshot) =
  let t =
    Table.create
      [
        "span"; "calls"; "total_ms"; "mean_ms"; "p50_ms"; "p99_ms"; "kB/call";
      ]
  in
  List.iter
    (fun (name, a) ->
      let calls = float_of_int a.a_count in
      Table.add_row t
        [
          name;
          string_of_int a.a_count;
          Printf.sprintf "%.3f" (1000.0 *. a.a_total);
          Printf.sprintf "%.3f" (1000.0 *. a.a_total /. calls);
          Printf.sprintf "%.3f" (1000.0 *. exact_quantile a.a_durs 0.5);
          Printf.sprintf "%.3f" (1000.0 *. exact_quantile a.a_durs 0.99);
          Printf.sprintf "%.1f" (8.0 *. a.a_minor /. calls /. 1000.0);
        ])
    (span_aggregates snap);
  t

let print_summary ?(oc = stdout) snap =
  let has_counters =
    List.exists (fun (_, v) -> v <> 0) snap.Obs.snap_counters
  in
  if has_counters then begin
    output_string oc "-- counters --\n";
    output_string oc (Table.render (counter_table snap));
    output_char oc '\n'
  end;
  if List.exists (fun (_, h) -> Hist.total h > 0) snap.Obs.snap_hists then begin
    output_string oc "-- histograms --\n";
    output_string oc (Table.render (hist_table snap));
    output_char oc '\n'
  end;
  if snap.Obs.snap_spans <> [] then begin
    output_string oc "-- spans --\n";
    output_string oc (Table.render (span_table snap));
    output_char oc '\n'
  end;
  flush oc
