(* Exporters for [Obs] snapshots: a machine-readable JSON document (for
   `scnoise ... --metrics FILE` and bench trajectory records) and
   human-readable summary tables built on [Scnoise_util.Table]. *)

module Table = Scnoise_util.Table

let schema = "scnoise.metrics/1"

(* ---- JSON ---- *)

let rec span_to_json (sp : Obs.span) =
  Json.Obj
    [
      ("name", Json.Str sp.Obs.sp_name);
      ("start_s", Json.Num sp.Obs.sp_start);
      ("duration_s", Json.Num sp.Obs.sp_duration);
      ("children", Json.List (List.map span_to_json sp.Obs.sp_children));
    ]

let to_json (snap : Obs.snapshot) =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ( "counters",
        Json.Obj
          (List.map
             (fun (name, v) -> (name, Json.Num (float_of_int v)))
             snap.Obs.snap_counters) );
      ( "timers",
        Json.Obj
          (List.map
             (fun (name, total, count) ->
               ( name,
                 Json.Obj
                   [
                     ("total_s", Json.Num total);
                     ("count", Json.Num (float_of_int count));
                   ] ))
             snap.Obs.snap_timers) );
      ("spans", Json.List (List.map span_to_json snap.Obs.snap_spans));
    ]

let to_json_string snap = Json.to_string (to_json snap)

let field name j =
  match Json.member name j with
  | Some v -> v
  | None -> raise (Json.Parse_error (Printf.sprintf "missing field %S" name))

let rec span_of_json j =
  {
    Obs.sp_name = Json.to_string_exn (field "name" j);
    sp_start = Json.to_float_exn (field "start_s" j);
    sp_duration = Json.to_float_exn (field "duration_s" j);
    sp_children = List.map span_of_json (Json.to_list_exn (field "children" j));
  }

(* Inverse of [to_json]; raises [Json.Parse_error] on schema mismatch.
   Round-tripping is exercised by the test suite and is what makes the
   emitted documents trustworthy as long-lived bench records. *)
let of_json j =
  (match Json.member "schema" j with
  | Some (Json.Str s) when s = schema -> ()
  | _ -> raise (Json.Parse_error "not a scnoise.metrics/1 document"));
  {
    Obs.snap_counters =
      List.map
        (fun (name, v) -> (name, int_of_float (Json.to_float_exn v)))
        (Json.to_obj_exn (field "counters" j));
    snap_timers =
      List.map
        (fun (name, v) ->
          ( name,
            Json.to_float_exn (field "total_s" v),
            int_of_float (Json.to_float_exn (field "count" v)) ))
        (Json.to_obj_exn (field "timers" j));
    snap_spans = List.map span_of_json (Json.to_list_exn (field "spans" j));
  }

let of_json_string s = of_json (Json.of_string s)

let write_file path snap =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_json_string snap);
      output_char oc '\n')

(* ---- human-readable summaries ---- *)

let counter_table (snap : Obs.snapshot) =
  let t = Table.create [ "counter"; "value" ] in
  List.iter
    (fun (name, v) ->
      if v <> 0 then Table.add_row t [ name; string_of_int v ])
    snap.Obs.snap_counters;
  t

(* Aggregate the span forest by name: call count, inclusive total and
   mean wall time.  Insertion-ordered so outer phases list first. *)
let span_table (snap : Obs.snapshot) =
  let totals : (string, float ref * int ref) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  ignore
    (Obs.fold_spans
       (fun () (sp : Obs.span) ->
         let total, count =
           match Hashtbl.find_opt totals sp.Obs.sp_name with
           | Some cell -> cell
           | None ->
               let cell = (ref 0.0, ref 0) in
               Hashtbl.add totals sp.Obs.sp_name cell;
               order := sp.Obs.sp_name :: !order;
               cell
         in
         total := !total +. sp.Obs.sp_duration;
         Stdlib.incr count)
       () snap);
  let t = Table.create [ "span"; "calls"; "total_ms"; "mean_ms" ] in
  List.iter
    (fun name ->
      let total, count = Hashtbl.find totals name in
      Table.add_row t
        [
          name;
          string_of_int !count;
          Printf.sprintf "%.3f" (1000.0 *. !total);
          Printf.sprintf "%.3f" (1000.0 *. !total /. float_of_int !count);
        ])
    (List.rev !order);
  t

let print_summary ?(oc = stdout) snap =
  let has_counters =
    List.exists (fun (_, v) -> v <> 0) snap.Obs.snap_counters
  in
  if has_counters then begin
    output_string oc "-- counters --\n";
    output_string oc (Table.render (counter_table snap));
    output_char oc '\n'
  end;
  if snap.Obs.snap_spans <> [] then begin
    output_string oc "-- spans --\n";
    output_string oc (Table.render (span_table snap));
    output_char oc '\n'
  end;
  flush oc
