(* Lock-free log-bucketed histograms.

   A histogram is a fixed array of [int Atomic.t] buckets: recording a
   value is one bucket-index computation plus one atomic fetch-and-add,
   with no allocation and no lock, so histograms can stay always-on in
   the numeric hot paths and be hammered concurrently from every domain
   of the worker pool.  The price is resolution: [Log] mode has two
   buckets per decade, so a reported quantile is the geometric midpoint
   of its bucket and can be off by up to a factor of 10^0.25 (~1.78x).
   That is exactly the granularity the bench gate needs — it flags
   order-of-magnitude drifts, not nanosecond jitter — and [Counts] mode
   (small non-negative integers, e.g. refinement iteration counts) is
   exact.

   [Log] covers [1e-10, 1e4): seconds from well under a nanosecond up
   to hours, and equally well dimensionless ratios such as LU rcond
   estimates.  Values below the range (including 0, negatives and NaN)
   land in the underflow bucket; values at or above 1e4 in the overflow
   bucket.  Merging is per-bucket addition, so snapshots taken on
   different domains — or parsed back from two JSON artifacts — combine
   without any cross-domain coordination. *)

type mode = Log | Counts

(* --- Log layout: 2 buckets/decade over [1e-10, 1e4) --- *)

let log_lo_exp = -10.0

let log_decades = 14

let n_log = 2 * log_decades (* 28 regular buckets *)

(* --- Counts layout: exact buckets 0..counts_max-1, then overflow --- *)

let counts_max = 64

let n_buckets = function
  | Log -> n_log + 2 (* + underflow + overflow *)
  | Counts -> counts_max + 1 (* + overflow *)

let index_log v =
  (* [not (v >= min)] also routes NaN to the underflow bucket *)
  if not (v >= 1e-10) then 0
  else if v >= 1e4 then n_log + 1
  else
    let k = int_of_float (2.0 *. (Float.log10 v -. log_lo_exp)) in
    1 + max 0 (min (n_log - 1) k)

let index_counts i = if i < 0 then 0 else if i >= counts_max then counts_max else i

(* Representative value reported for bucket [i]: the geometric midpoint
   in [Log] mode, the exact integer in [Counts] mode.  Underflow and
   overflow report their range edge. *)
let representative mode i =
  match mode with
  | Counts -> float_of_int (min i counts_max)
  | Log ->
      if i = 0 then 1e-10
      else if i > n_log then 1e4
      else Float.exp (Float.log 10.0 *. (log_lo_exp +. ((float_of_int (i - 1) +. 0.5) /. 2.0)))

type t = { h_name : string; h_mode : mode; h_counts : int Atomic.t array }

let create ?(mode = Log) name =
  { h_name = name; h_mode = mode; h_counts = Array.init (n_buckets mode) (fun _ -> Atomic.make 0) }

let name h = h.h_name

let mode h = h.h_mode

let record h v =
  let i = match h.h_mode with Log -> index_log v | Counts -> index_counts (int_of_float v) in
  ignore (Atomic.fetch_and_add h.h_counts.(i) 1)

(* Allocation-free entry point for the integer-valued hot paths (no
   float argument to box on a non-flambda build). *)
let record_int h i =
  let i = match h.h_mode with Counts -> index_counts i | Log -> index_log (float_of_int i) in
  ignore (Atomic.fetch_and_add h.h_counts.(i) 1)

let clear h = Array.iter (fun c -> Atomic.set c 0) h.h_counts

(* --- immutable snapshots: quantiles, merge, (de)serialisable --- *)

type snapshot = { s_mode : mode; s_counts : int array }

let snapshot h = { s_mode = h.h_mode; s_counts = Array.map Atomic.get h.h_counts }

let empty mode = { s_mode = mode; s_counts = Array.make (n_buckets mode) 0 }

let of_counts mode counts =
  if Array.length counts <> n_buckets mode then
    invalid_arg "Hist.of_counts: bucket count mismatch";
  if Array.exists (fun c -> c < 0) counts then
    invalid_arg "Hist.of_counts: negative bucket";
  { s_mode = mode; s_counts = Array.copy counts }

let total s = Array.fold_left ( + ) 0 s.s_counts

(* The q-quantile (q in [0, 1]) as the representative value of the
   smallest bucket whose cumulative count reaches rank ceil(q * total);
   nan on an empty histogram.  q = 1 lands in the highest non-empty
   bucket, so [quantile s 1.0] doubles as the recorded maximum (to
   bucket resolution). *)
let quantile s q =
  if not (q >= 0.0 && q <= 1.0) then invalid_arg "Hist.quantile: q outside [0, 1]";
  let n = total s in
  if n = 0 then Float.nan
  else begin
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int n))) in
    let cum = ref 0 and found = ref (Array.length s.s_counts - 1) in
    (try
       Array.iteri
         (fun i c ->
           cum := !cum + c;
           if !cum >= rank then begin
             found := i;
             raise Exit
           end)
         s.s_counts
     with Exit -> ());
    representative s.s_mode !found
  end

let max_value s = quantile s 1.0

let min_value s =
  if total s = 0 then Float.nan
  else begin
    let found = ref 0 in
    (try
       Array.iteri
         (fun i c ->
           if c > 0 then begin
             found := i;
             raise Exit
           end)
         s.s_counts
     with Exit -> ());
    representative s.s_mode !found
  end

(* Bucket-resolution mean: sum of representative * count. *)
let mean s =
  let n = total s in
  if n = 0 then Float.nan
  else begin
    let acc = ref 0.0 in
    Array.iteri
      (fun i c ->
        if c > 0 then acc := !acc +. (float_of_int c *. representative s.s_mode i))
      s.s_counts;
    !acc /. float_of_int n
  end

(* Per-bucket addition; the domain-safe way to combine histograms
   recorded independently (per worker, per run, per JSON artifact). *)
let merge a b =
  if a.s_mode <> b.s_mode then invalid_arg "Hist.merge: mode mismatch";
  { s_mode = a.s_mode; s_counts = Array.map2 ( + ) a.s_counts b.s_counts }

(* Sparse (index, count) pairs of the non-empty buckets, ascending:
   the JSON wire format (histograms are mostly zeros). *)
let nonzero s =
  let acc = ref [] in
  for i = Array.length s.s_counts - 1 downto 0 do
    if s.s_counts.(i) <> 0 then acc := (i, s.s_counts.(i)) :: !acc
  done;
  !acc

let of_nonzero mode pairs =
  let counts = Array.make (n_buckets mode) 0 in
  List.iter
    (fun (i, c) ->
      if i < 0 || i >= Array.length counts then
        invalid_arg "Hist.of_nonzero: bucket index out of range";
      if c < 0 then invalid_arg "Hist.of_nonzero: negative bucket";
      counts.(i) <- counts.(i) + c)
    pairs;
  { s_mode = mode; s_counts = counts }

let mode_to_string = function Log -> "log" | Counts -> "counts"

let mode_of_string = function
  | "log" -> Some Log
  | "counts" -> Some Counts
  | _ -> None
