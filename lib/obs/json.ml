(* Minimal JSON tree, printer and parser — just enough for the metrics
   exporter and its round-trip tests, so the library stays free of
   external dependencies.  Numbers are floats (ints print without a
   fractional part); non-finite floats print as null, which keeps every
   emitted document standard-compliant. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ---- printing ---- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_string x =
  if Float.is_integer x && abs_float x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.17g" x

let rec emit buf indent v =
  let pad n = String.make n ' ' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num x ->
      if Float.is_nan x || x = infinity || x = neg_infinity then
        Buffer.add_string buf "null"
      else Buffer.add_string buf (number_string x)
  | Str s -> escape_string buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 2));
          emit buf (indent + 2) item)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 2));
          escape_string buf k;
          Buffer.add_string buf ": ";
          emit buf (indent + 2) item)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  emit buf 0 v;
  Buffer.contents buf

(* ---- parsing ---- *)

type cursor = { src : string; mutable pos : int }

let fail cur msg =
  raise (Parse_error (Printf.sprintf "at offset %d: %s" cur.pos msg))

let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let rec skip_ws cur =
  match peek cur with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance cur;
      skip_ws cur
  | _ -> ()

let expect cur c =
  match peek cur with
  | Some got when got = c -> advance cur
  | Some got -> fail cur (Printf.sprintf "expected %c, got %c" c got)
  | None -> fail cur (Printf.sprintf "expected %c, got end of input" c)

let literal cur word value =
  let n = String.length word in
  if
    cur.pos + n <= String.length cur.src
    && String.sub cur.src cur.pos n = word
  then begin
    cur.pos <- cur.pos + n;
    value
  end
  else fail cur (Printf.sprintf "expected %s" word)

(* Exactly four hex digits; [int_of_string "0x.."] alone would also
   accept OCaml underscores. *)
let parse_hex4 cur =
  if cur.pos + 4 > String.length cur.src then fail cur "truncated \\u escape";
  let hex = String.sub cur.src cur.pos 4 in
  String.iter
    (function
      | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
      | _ -> fail cur (Printf.sprintf "bad \\u escape %S" hex))
    hex;
  cur.pos <- cur.pos + 4;
  int_of_string ("0x" ^ hex)

(* UTF-8 encode a code point (already surrogate-combined). *)
let add_utf8 buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string_body cur =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' -> (
        advance cur;
        match peek cur with
        | None -> fail cur "unterminated escape"
        | Some c ->
            advance cur;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                let code = parse_hex4 cur in
                (* Surrogate pairs combine into one supplementary code
                   point; unpaired surrogates are malformed JSON. *)
                let code =
                  if code >= 0xD800 && code <= 0xDBFF then begin
                    if
                      cur.pos + 2 > String.length cur.src
                      || cur.src.[cur.pos] <> '\\'
                      || cur.src.[cur.pos + 1] <> 'u'
                    then fail cur "unpaired high surrogate";
                    cur.pos <- cur.pos + 2;
                    let low = parse_hex4 cur in
                    if low < 0xDC00 || low > 0xDFFF then
                      fail cur "unpaired high surrogate";
                    0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00)
                  end
                  else if code >= 0xDC00 && code <= 0xDFFF then
                    fail cur "unpaired low surrogate"
                  else code
                in
                add_utf8 buf code
            | c -> fail cur (Printf.sprintf "bad escape \\%c" c));
            go ())
    | Some c ->
        advance cur;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek cur with
    | Some c when is_num_char c ->
        advance cur;
        go ()
    | _ -> ()
  in
  go ();
  let s = String.sub cur.src start (cur.pos - start) in
  match float_of_string_opt s with
  | Some x when Float.is_finite x -> Num x
  | Some _ ->
      (* e.g. "1e999": grammatical JSON whose value overflows; a metrics
         document carrying it is corrupt, so refuse rather than read
         back infinity *)
      fail cur (Printf.sprintf "number out of range %S" s)
  | None -> fail cur (Printf.sprintf "bad number %S" s)

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some '"' ->
      advance cur;
      Str (parse_string_body cur)
  | Some '{' -> parse_obj cur
  | Some '[' -> parse_list cur
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some 'n' -> literal cur "null" Null
  | Some ('-' | '0' .. '9') -> parse_number cur
  | Some c -> fail cur (Printf.sprintf "unexpected character %c" c)

and parse_obj cur =
  expect cur '{';
  skip_ws cur;
  if peek cur = Some '}' then begin
    advance cur;
    Obj []
  end
  else begin
    let fields = ref [] in
    let rec field () =
      skip_ws cur;
      expect cur '"';
      let k = parse_string_body cur in
      skip_ws cur;
      expect cur ':';
      let v = parse_value cur in
      fields := (k, v) :: !fields;
      skip_ws cur;
      match peek cur with
      | Some ',' ->
          advance cur;
          field ()
      | Some '}' -> advance cur
      | _ -> fail cur "expected , or } in object"
    in
    field ();
    Obj (List.rev !fields)
  end

and parse_list cur =
  expect cur '[';
  skip_ws cur;
  if peek cur = Some ']' then begin
    advance cur;
    List []
  end
  else begin
    let items = ref [] in
    let rec item () =
      let v = parse_value cur in
      items := v :: !items;
      skip_ws cur;
      match peek cur with
      | Some ',' ->
          advance cur;
          item ()
      | Some ']' -> advance cur
      | _ -> fail cur "expected , or ] in array"
    in
    item ();
    List (List.rev !items)
  end

let of_string s =
  let cur = { src = s; pos = 0 } in
  let v = parse_value cur in
  skip_ws cur;
  if cur.pos <> String.length s then fail cur "trailing garbage";
  v

(* ---- accessors (used by the importer) ---- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float_exn = function
  | Num x -> x
  | _ -> raise (Parse_error "expected number")

let to_string_exn = function
  | Str s -> s
  | _ -> raise (Parse_error "expected string")

let to_list_exn = function
  | List items -> items
  | _ -> raise (Parse_error "expected array")

let to_obj_exn = function
  | Obj fields -> fields
  | _ -> raise (Parse_error "expected object")
