(* Process-wide instrumentation registry: named counters, accumulating
   timers and nested wall-time spans.

   The registry is domain-safe so the numeric hot paths can run inside
   the [Scnoise_par] worker pool.  Counters are [Atomic.t int]s behind a
   handle — incrementing one is a single atomic fetch-and-add, cheap
   enough to leave permanently enabled in the numeric hot paths (LU
   factorisations, ODE steps, cache probes).  Registration and timer
   accumulation take a global mutex (both are far off the hot path).
   Spans carry real cost (two clock reads plus an allocation per region)
   and therefore no-op unless [enable] has been called, so the default
   build pays one branch per instrumented region.  Span trees are kept
   in domain-local storage: each domain records its own forest, and the
   pool grafts a worker's completed roots back into the submitting
   domain's open frame via {!drain_domain_spans} / {!absorb_spans}.
   Nothing here touches the floating-point data flow: instrumented
   results are bit-identical to uninstrumented ones. *)

let obs_src = Logs.Src.create "scnoise.obs" ~doc:"instrumentation spans"

module Log = (val Logs.src_log obs_src : Logs.LOG)

(* Guards registry tables and timer cells; never held while running user
   code. *)
let registry_mutex = Mutex.create ()

let locked f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

(* ---- counters ---- *)

type counter = { c_name : string; c_value : int Atomic.t }

let counters : (string, counter) Hashtbl.t = Hashtbl.create 32

let counter name =
  locked (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
          let c = { c_name = name; c_value = Atomic.make 0 } in
          Hashtbl.add counters name c;
          c)

let incr c = Atomic.incr c.c_value

let add c n = ignore (Atomic.fetch_and_add c.c_value n)

let value c = Atomic.get c.c_value

let counter_name c = c.c_name

(* Look a counter's current value up by name; 0 when never registered. *)
let counter_value name =
  match locked (fun () -> Hashtbl.find_opt counters name) with
  | Some c -> Atomic.get c.c_value
  | None -> 0

(* ---- accumulating timers ---- *)

type timer = { t_name : string; t_total : float ref; t_count : int ref }

let timers : (string, timer) Hashtbl.t = Hashtbl.create 16

let timer name =
  locked (fun () ->
      match Hashtbl.find_opt timers name with
      | Some t -> t
      | None ->
          let t = { t_name = name; t_total = ref 0.0; t_count = ref 0 } in
          Hashtbl.add timers name t;
          t)

let time t f =
  let t0 = Clock.now () in
  Fun.protect
    ~finally:(fun () ->
      let dt = Clock.elapsed t0 in
      locked (fun () ->
          t.t_total := !(t.t_total) +. dt;
          Stdlib.incr t.t_count))
    f

let timer_total t = locked (fun () -> !(t.t_total))

let timer_count t = locked (fun () -> !(t.t_count))

(* Record an externally measured duration (seconds) directly. *)
let timer_record t dt =
  locked (fun () ->
      t.t_total := !(t.t_total) +. dt;
      Stdlib.incr t.t_count)

(* ---- spans ---- *)

type span = {
  sp_name : string;
  sp_start : float; (* seconds, relative to [reset] *)
  sp_duration : float; (* seconds *)
  sp_children : span list; (* in completion order *)
}

type frame = {
  f_name : string;
  f_start : float;
  mutable f_children : span list; (* reversed *)
}

let enabled = Atomic.make false

let epoch = Atomic.make 0.0

(* Each domain owns a private span context: an open-frame stack and the
   completed roots recorded on that domain.  Worker domains start empty;
   the pool drains them after every parallel region. *)
type span_ctx = { mutable stack : frame list; mutable roots : span list }

let span_ctx_key =
  Domain.DLS.new_key (fun () -> { stack = []; roots = [] })

let ctx () = Domain.DLS.get span_ctx_key

let enable () =
  if not (Atomic.get enabled) then Atomic.set epoch (Clock.now ());
  Atomic.set enabled true

let disable () = Atomic.set enabled false

let is_enabled () = Atomic.get enabled

let with_span ?(src = obs_src) name f =
  if not (Atomic.get enabled) then f ()
  else begin
    let cx = ctx () in
    let fr =
      {
        f_name = name;
        f_start = Clock.now () -. Atomic.get epoch;
        f_children = [];
      }
    in
    cx.stack <- fr :: cx.stack;
    Fun.protect
      ~finally:(fun () ->
        let stop = Clock.now () -. Atomic.get epoch in
        match cx.stack with
        | top :: rest when top == fr ->
            cx.stack <- rest;
            let sp =
              {
                sp_name = name;
                sp_start = fr.f_start;
                sp_duration = stop -. fr.f_start;
                sp_children = List.rev fr.f_children;
              }
            in
            (match rest with
            | parent :: _ -> parent.f_children <- sp :: parent.f_children
            | [] -> cx.roots <- sp :: cx.roots);
            let module L = (val Logs.src_log src : Logs.LOG) in
            L.debug (fun m ->
                m "span %s: %.3f ms" name (1000.0 *. sp.sp_duration))
        | _ ->
            (* unbalanced (an enclosing span escaped via exception and
               already popped us); drop the record rather than corrupt
               the tree *)
            ())
      f
  end

(* Completed root spans recorded on the calling domain, oldest first;
   clears them.  The pool calls this on each worker after a parallel
   region so worker spans can be re-homed. *)
let drain_domain_spans () =
  let cx = ctx () in
  let spans = List.rev cx.roots in
  cx.roots <- [];
  spans

(* Graft externally recorded spans into the calling domain's currently
   open frame (or, with no frame open, as additional roots).  Used by
   the pool to attach worker spans under the span enclosing the parallel
   region, preserving submission order. *)
let absorb_spans spans =
  if spans <> [] then begin
    let cx = ctx () in
    match cx.stack with
    | parent :: _ ->
        parent.f_children <- List.rev_append spans parent.f_children
    | [] -> cx.roots <- List.rev_append spans cx.roots
  end

(* ---- reset / snapshot ---- *)

let reset () =
  locked (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.c_value 0) counters;
      Hashtbl.iter
        (fun _ t ->
          t.t_total := 0.0;
          t.t_count := 0)
        timers);
  let cx = ctx () in
  cx.stack <- [];
  cx.roots <- [];
  Atomic.set epoch (Clock.now ())

type snapshot = {
  snap_counters : (string * int) list; (* sorted by name *)
  snap_timers : (string * float * int) list; (* name, total s, count *)
  snap_spans : span list; (* completed root spans, in order *)
}

let snapshot () =
  let cs, ts =
    locked (fun () ->
        ( Hashtbl.fold
            (fun name c acc -> (name, Atomic.get c.c_value) :: acc)
            counters []
          |> List.sort compare,
          Hashtbl.fold
            (fun name t acc -> (name, !(t.t_total), !(t.t_count)) :: acc)
            timers []
          |> List.sort compare ))
  in
  {
    snap_counters = cs;
    snap_timers = ts;
    snap_spans = List.rev (ctx ()).roots;
  }

(* Fold [f] over every span in the forest, parents before children. *)
let rec fold_span f acc sp =
  let acc = f acc sp in
  List.fold_left (fold_span f) acc sp.sp_children

let fold_spans f acc snap = List.fold_left (fold_span f) acc snap.snap_spans
