(* Process-wide instrumentation registry: named counters, accumulating
   timers and nested wall-time spans.

   Counters are plain [int ref]s behind a handle — incrementing one is a
   single memory write, cheap enough to leave permanently enabled in the
   numeric hot paths (LU factorisations, ODE steps, cache probes).
   Spans carry real cost (two clock reads plus an allocation per region)
   and therefore no-op unless [enable] has been called, so the default
   build pays one branch per instrumented region.  Nothing here touches
   the floating-point data flow: instrumented results are bit-identical
   to uninstrumented ones. *)

let obs_src = Logs.Src.create "scnoise.obs" ~doc:"instrumentation spans"

module Log = (val Logs.src_log obs_src : Logs.LOG)

(* ---- counters ---- *)

type counter = { c_name : string; c_value : int ref }

let counters : (string, counter) Hashtbl.t = Hashtbl.create 32

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
      let c = { c_name = name; c_value = ref 0 } in
      Hashtbl.add counters name c;
      c

let incr c = Stdlib.incr c.c_value

let add c n = c.c_value := !(c.c_value) + n

let value c = !(c.c_value)

let counter_name c = c.c_name

(* Look a counter's current value up by name; 0 when never registered. *)
let counter_value name =
  match Hashtbl.find_opt counters name with
  | Some c -> !(c.c_value)
  | None -> 0

(* ---- accumulating timers ---- *)

type timer = { t_name : string; t_total : float ref; t_count : int ref }

let timers : (string, timer) Hashtbl.t = Hashtbl.create 16

let timer name =
  match Hashtbl.find_opt timers name with
  | Some t -> t
  | None ->
      let t = { t_name = name; t_total = ref 0.0; t_count = ref 0 } in
      Hashtbl.add timers name t;
      t

let time t f =
  let t0 = Clock.now () in
  Fun.protect
    ~finally:(fun () ->
      t.t_total := !(t.t_total) +. Clock.elapsed t0;
      Stdlib.incr t.t_count)
    f

let timer_total t = !(t.t_total)

let timer_count t = !(t.t_count)

(* ---- spans ---- *)

type span = {
  sp_name : string;
  sp_start : float; (* seconds, relative to [reset] *)
  sp_duration : float; (* seconds *)
  sp_children : span list; (* in completion order *)
}

type frame = {
  f_name : string;
  f_start : float;
  mutable f_children : span list; (* reversed *)
}

let enabled = ref false

let epoch = ref 0.0

let stack : frame list ref = ref []

let roots : span list ref = ref [] (* reversed *)

let enable () =
  if not !enabled then epoch := Clock.now ();
  enabled := true

let disable () = enabled := false

let is_enabled () = !enabled

let with_span ?(src = obs_src) name f =
  if not !enabled then f ()
  else begin
    let fr =
      { f_name = name; f_start = Clock.now () -. !epoch; f_children = [] }
    in
    stack := fr :: !stack;
    Fun.protect
      ~finally:(fun () ->
        let stop = Clock.now () -. !epoch in
        match !stack with
        | top :: rest when top == fr ->
            stack := rest;
            let sp =
              {
                sp_name = name;
                sp_start = fr.f_start;
                sp_duration = stop -. fr.f_start;
                sp_children = List.rev fr.f_children;
              }
            in
            (match rest with
            | parent :: _ -> parent.f_children <- sp :: parent.f_children
            | [] -> roots := sp :: !roots);
            let module L = (val Logs.src_log src : Logs.LOG) in
            L.debug (fun m ->
                m "span %s: %.3f ms" name (1000.0 *. sp.sp_duration))
        | _ ->
            (* unbalanced (an enclosing span escaped via exception and
               already popped us); drop the record rather than corrupt
               the tree *)
            ())
      f
  end

(* ---- reset / snapshot ---- *)

let reset () =
  Hashtbl.iter (fun _ c -> c.c_value := 0) counters;
  Hashtbl.iter
    (fun _ t ->
      t.t_total := 0.0;
      t.t_count := 0)
    timers;
  stack := [];
  roots := [];
  epoch := Clock.now ()

type snapshot = {
  snap_counters : (string * int) list; (* sorted by name *)
  snap_timers : (string * float * int) list; (* name, total s, count *)
  snap_spans : span list; (* completed root spans, in order *)
}

let snapshot () =
  let cs =
    Hashtbl.fold (fun name c acc -> (name, !(c.c_value)) :: acc) counters []
    |> List.sort compare
  in
  let ts =
    Hashtbl.fold
      (fun name t acc -> (name, !(t.t_total), !(t.t_count)) :: acc)
      timers []
    |> List.sort compare
  in
  { snap_counters = cs; snap_timers = ts; snap_spans = List.rev !roots }

(* Fold [f] over every span in the forest, parents before children. *)
let rec fold_span f acc sp =
  let acc = f acc sp in
  List.fold_left (fold_span f) acc sp.sp_children

let fold_spans f acc snap = List.fold_left (fold_span f) acc snap.snap_spans
