(* Process-wide instrumentation registry: named counters, accumulating
   timers and nested wall-time spans.

   The registry is domain-safe so the numeric hot paths can run inside
   the [Scnoise_par] worker pool.  Counters are [Atomic.t int]s behind a
   handle — incrementing one is a single atomic fetch-and-add, cheap
   enough to leave permanently enabled in the numeric hot paths (LU
   factorisations, ODE steps, cache probes).  Registration and timer
   accumulation take a global mutex (both are far off the hot path).
   Spans carry real cost (two clock reads plus an allocation per region)
   and therefore no-op unless [enable] has been called, so the default
   build pays one branch per instrumented region.  Span trees are kept
   in domain-local storage: each domain records its own forest, and the
   pool grafts a worker's completed roots back into the submitting
   domain's open frame via {!drain_domain_spans} / {!absorb_spans}.
   Nothing here touches the floating-point data flow: instrumented
   results are bit-identical to uninstrumented ones. *)

let obs_src = Logs.Src.create "scnoise.obs" ~doc:"instrumentation spans"

module Log = (val Logs.src_log obs_src : Logs.LOG)

(* Guards registry tables and timer cells; never held while running user
   code. *)
let registry_mutex = Mutex.create ()

let locked f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

(* ---- counters ---- *)

type counter = { c_name : string; c_value : int Atomic.t }

let counters : (string, counter) Hashtbl.t = Hashtbl.create 32

let counter name =
  locked (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
          let c = { c_name = name; c_value = Atomic.make 0 } in
          Hashtbl.add counters name c;
          c)

let incr c = Atomic.incr c.c_value

let add c n = ignore (Atomic.fetch_and_add c.c_value n)

let value c = Atomic.get c.c_value

let counter_name c = c.c_name

(* Look a counter's current value up by name; 0 when never registered. *)
let counter_value name =
  match locked (fun () -> Hashtbl.find_opt counters name) with
  | Some c -> Atomic.get c.c_value
  | None -> 0

(* ---- histograms ---- *)

(* Latency/value distributions; see {!Hist} for the bucket scheme.
   Like counters they are always-on (recording is one atomic add), so
   numeric-health histograms — rcond estimates, refinement iteration
   counts — accumulate even without [enable]. *)
let hists : (string, Hist.t) Hashtbl.t = Hashtbl.create 16

let histogram ?(mode = Hist.Log) name =
  locked (fun () ->
      match Hashtbl.find_opt hists name with
      | Some h ->
          if Hist.mode h <> mode then
            invalid_arg
              (Printf.sprintf "Obs.histogram: %S already registered with a \
                               different mode" name);
          h
      | None ->
          let h = Hist.create ~mode name in
          Hashtbl.add hists name h;
          h)

let hist_record = Hist.record

let hist_record_int = Hist.record_int

(* ---- GC accounting ----

   When on (the default), spans and [time]d timers capture the calling
   domain's [Gc.minor_words] / promoted-words deltas, turning
   bytes-per-call into always-available telemetry.  The deltas are
   inclusive (children counted in their parents) and include the
   instrumentation's own small bookkeeping allocations. *)

let gc_stats = Atomic.make true

(* (minor_words, promoted_words) of the calling domain, without the
   [Gc.quick_stat] record allocation.  [Gc.minor_words] is used for the
   minor count because on OCaml 5.1 [Gc.counters] omits allocations in
   the current minor-heap chunk; promoted words only advance at minor
   collections, so [Gc.counters] is exact for those. *)
let gc_counters () =
  let _minor, promoted, _major = Gc.counters () in
  (Gc.minor_words (), promoted)

let set_gc_stats b = Atomic.set gc_stats b

let gc_stats_enabled () = Atomic.get gc_stats

(* ---- accumulating timers ---- *)

type timer = {
  t_name : string;
  t_total : float ref;
  t_count : int ref;
  t_minor : float ref; (* minor words allocated inside [time] bodies *)
  t_promoted : float ref;
}

let timers : (string, timer) Hashtbl.t = Hashtbl.create 16

let timer name =
  locked (fun () ->
      match Hashtbl.find_opt timers name with
      | Some t -> t
      | None ->
          let t =
            {
              t_name = name;
              t_total = ref 0.0;
              t_count = ref 0;
              t_minor = ref 0.0;
              t_promoted = ref 0.0;
            }
          in
          Hashtbl.add timers name t;
          t)

let time t f =
  let gc = Atomic.get gc_stats in
  let m0, p0 = if gc then gc_counters () else (0.0, 0.0) in
  let t0 = Clock.now () in
  Fun.protect
    ~finally:(fun () ->
      let dt = Clock.elapsed t0 in
      let dm, dp =
        if gc then
          let m1, p1 = gc_counters () in
          (m1 -. m0, p1 -. p0)
        else (0.0, 0.0)
      in
      locked (fun () ->
          t.t_total := !(t.t_total) +. dt;
          t.t_minor := !(t.t_minor) +. dm;
          t.t_promoted := !(t.t_promoted) +. dp;
          Stdlib.incr t.t_count))
    f

let timer_total t = locked (fun () -> !(t.t_total))

let timer_count t = locked (fun () -> !(t.t_count))

let timer_minor_words t = locked (fun () -> !(t.t_minor))

(* Record an externally measured duration (seconds) directly. *)
let timer_record t dt =
  locked (fun () ->
      t.t_total := !(t.t_total) +. dt;
      Stdlib.incr t.t_count)

(* ---- spans ---- *)

type span = {
  sp_name : string;
  sp_start : float; (* seconds, relative to [reset] *)
  sp_duration : float; (* seconds *)
  sp_domain : int; (* [Domain.self] that recorded the span *)
  sp_minor_words : float; (* inclusive GC deltas; 0 with gc_stats off *)
  sp_promoted_words : float;
  sp_args : (string * float) list; (* free-form labels, e.g. pool job index *)
  sp_children : span list; (* in completion order *)
}

type frame = {
  f_name : string;
  f_start : float;
  f_minor0 : float;
  f_promoted0 : float;
  f_args : (string * float) list;
  mutable f_children : span list; (* reversed *)
}

let enabled = Atomic.make false

let epoch = Atomic.make 0.0

(* Each domain owns a private span context: an open-frame stack and the
   completed roots recorded on that domain.  Worker domains start empty;
   the pool drains them after every parallel region. *)
type span_ctx = { mutable stack : frame list; mutable roots : span list }

let span_ctx_key =
  Domain.DLS.new_key (fun () -> { stack = []; roots = [] })

let ctx () = Domain.DLS.get span_ctx_key

let enable () =
  if not (Atomic.get enabled) then Atomic.set epoch (Clock.now ());
  Atomic.set enabled true

let disable () = Atomic.set enabled false

let is_enabled () = Atomic.get enabled

let with_span ?(src = obs_src) ?(args = []) name f =
  if not (Atomic.get enabled) then f ()
  else begin
    let cx = ctx () in
    let gc = Atomic.get gc_stats in
    let m0, p0 = if gc then gc_counters () else (0.0, 0.0) in
    let fr =
      {
        f_name = name;
        f_start = Clock.now () -. Atomic.get epoch;
        f_minor0 = m0;
        f_promoted0 = p0;
        f_args = args;
        f_children = [];
      }
    in
    cx.stack <- fr :: cx.stack;
    Fun.protect
      ~finally:(fun () ->
        let stop = Clock.now () -. Atomic.get epoch in
        match cx.stack with
        | top :: rest when top == fr ->
            cx.stack <- rest;
            let dm, dp =
              if gc then
                let m1, p1 = gc_counters () in
                (m1 -. fr.f_minor0, p1 -. fr.f_promoted0)
              else (0.0, 0.0)
            in
            let sp =
              {
                sp_name = name;
                sp_start = fr.f_start;
                sp_duration = stop -. fr.f_start;
                sp_domain = (Domain.self () :> int);
                sp_minor_words = dm;
                sp_promoted_words = dp;
                sp_args = fr.f_args;
                sp_children = List.rev fr.f_children;
              }
            in
            (match rest with
            | parent :: _ -> parent.f_children <- sp :: parent.f_children
            | [] -> cx.roots <- sp :: cx.roots);
            let module L = (val Logs.src_log src : Logs.LOG) in
            L.debug (fun m ->
                m "span %s: %.3f ms" name (1000.0 *. sp.sp_duration))
        | _ ->
            (* unbalanced (an enclosing span escaped via exception and
               already popped us); drop the record rather than corrupt
               the tree *)
            ())
      f
  end

(* Completed root spans recorded on the calling domain, oldest first;
   clears them.  The pool calls this on each worker after a parallel
   region so worker spans can be re-homed. *)
let drain_domain_spans () =
  let cx = ctx () in
  let spans = List.rev cx.roots in
  cx.roots <- [];
  spans

(* Graft externally recorded spans into the calling domain's currently
   open frame (or, with no frame open, as additional roots).  Used by
   the pool to attach worker spans under the span enclosing the parallel
   region, preserving submission order. *)
let absorb_spans spans =
  if spans <> [] then begin
    let cx = ctx () in
    match cx.stack with
    | parent :: _ ->
        parent.f_children <- List.rev_append spans parent.f_children
    | [] -> cx.roots <- List.rev_append spans cx.roots
  end

(* ---- reset / snapshot ---- *)

let reset () =
  locked (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.c_value 0) counters;
      Hashtbl.iter (fun _ h -> Hist.clear h) hists;
      Hashtbl.iter
        (fun _ t ->
          t.t_total := 0.0;
          t.t_count := 0;
          t.t_minor := 0.0;
          t.t_promoted := 0.0)
        timers);
  let cx = ctx () in
  cx.stack <- [];
  cx.roots <- [];
  Atomic.set epoch (Clock.now ())

type timer_stat = {
  tm_total : float; (* seconds *)
  tm_count : int;
  tm_minor_words : float;
  tm_promoted_words : float;
}

type snapshot = {
  snap_counters : (string * int) list; (* sorted by name *)
  snap_timers : (string * timer_stat) list; (* sorted by name *)
  snap_hists : (string * Hist.snapshot) list; (* sorted by name *)
  snap_spans : span list; (* completed root spans, in order *)
}

let snapshot () =
  let cs, ts, hs =
    locked (fun () ->
        ( Hashtbl.fold
            (fun name c acc -> (name, Atomic.get c.c_value) :: acc)
            counters []
          |> List.sort compare,
          Hashtbl.fold
            (fun name t acc ->
              ( name,
                {
                  tm_total = !(t.t_total);
                  tm_count = !(t.t_count);
                  tm_minor_words = !(t.t_minor);
                  tm_promoted_words = !(t.t_promoted);
                } )
              :: acc)
            timers []
          |> List.sort compare,
          Hashtbl.fold
            (fun name h acc -> (name, Hist.snapshot h) :: acc)
            hists []
          |> List.sort compare ))
  in
  {
    snap_counters = cs;
    snap_timers = ts;
    snap_hists = hs;
    snap_spans = List.rev (ctx ()).roots;
  }

(* Fold [f] over every span in the forest, parents before children. *)
let rec fold_span f acc sp =
  let acc = f acc sp in
  List.fold_left (fold_span f) acc sp.sp_children

let fold_spans f acc snap = List.fold_left (fold_span f) acc snap.snap_spans
