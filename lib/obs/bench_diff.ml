(* Bench regression gate: compare two metrics documents (Export
   snapshots) and flag metrics that got worse beyond a threshold.

   Every comparable quantity is flattened into a named scalar metric
   where *higher is worse*:

     timer:<n> mean_s      — accumulated timer total / count
     timer:<n> kB/call     — minor-heap bytes per [Obs.time] call
     hist:<n> p50 / p99    — histogram quantiles (bucket resolution)
     span:<n> mean_ms      — span-forest aggregate mean wall time
     span:<n> kB/call      — span-forest aggregate allocation per call
     counter:<n>           — raw counter value (workload shifts: extra
                             factorizations, fallback steps, cache
                             misses all surface here)

   A metric regresses when the current value exceeds the baseline by
   more than [threshold] percent AND by more than the metric's absolute
   noise floor — wall-clock metrics under a fraction of a millisecond
   are scheduling noise, not signal.  Metrics present on only one side
   are reported but never gate (new instrumentation must not fail the
   build that introduces it). *)

type metric = { m_name : string; m_value : float; m_floor : float }

let floor_s = 5e-4 (* seconds-valued metrics: ignore sub-half-ms deltas *)

let floor_ms = 0.5

let floor_kb = 0.5

let floor_count = 8.0

let of_snapshot (snap : Obs.snapshot) =
  let timers =
    List.concat_map
      (fun (name, (t : Obs.timer_stat)) ->
        if t.Obs.tm_count = 0 then []
        else
          let calls = float_of_int t.Obs.tm_count in
          {
            m_name = Printf.sprintf "timer:%s mean_s" name;
            m_value = t.Obs.tm_total /. calls;
            m_floor = floor_s;
          }
          ::
          (if t.Obs.tm_minor_words > 0.0 then
             [
               {
                 m_name = Printf.sprintf "timer:%s kB/call" name;
                 m_value = 8.0 *. t.Obs.tm_minor_words /. calls /. 1000.0;
                 m_floor = floor_kb;
               };
             ]
           else []))
      snap.Obs.snap_timers
  in
  let hists =
    List.concat_map
      (fun (name, h) ->
        if Hist.total h = 0 then []
        else
          let is_time = h.Hist.s_mode = Hist.Log in
          let floor = if is_time then floor_s else 1.0 in
          [
            {
              m_name = Printf.sprintf "hist:%s p50" name;
              m_value = Hist.quantile h 0.5;
              m_floor = floor;
            };
            {
              m_name = Printf.sprintf "hist:%s p99" name;
              m_value = Hist.quantile h 0.99;
              m_floor = floor;
            };
          ])
      snap.Obs.snap_hists
  in
  let spans =
    List.concat_map
      (fun ((name : string), (a : Export.span_agg)) ->
        let calls = float_of_int a.Export.a_count in
        {
          m_name = Printf.sprintf "span:%s mean_ms" name;
          m_value = 1000.0 *. a.Export.a_total /. calls;
          m_floor = floor_ms;
        }
        ::
        (if a.Export.a_minor > 0.0 then
           [
             {
               m_name = Printf.sprintf "span:%s kB/call" name;
               m_value = 8.0 *. a.Export.a_minor /. calls /. 1000.0;
               m_floor = floor_kb;
             };
           ]
         else []))
      (Export.span_aggregates snap)
  in
  let counters =
    List.filter_map
      (fun (name, v) ->
        if v = 0 then None
        else
          Some
            {
              m_name = Printf.sprintf "counter:%s" name;
              m_value = float_of_int v;
              m_floor = floor_count;
            })
      snap.Obs.snap_counters
  in
  timers @ hists @ spans @ counters

(* ---- pruned baseline documents ----

   A full Export snapshot carries every histogram bucket and span tree
   — tens of thousands of lines of which the gate reads a few dozen
   flattened metrics.  The pruned document stores exactly the flattened
   metric list (`scnoise bench prune` converts committed baselines), so
   a baseline diff reads the same numbers from a file two orders of
   magnitude smaller.  Readers accept both formats. *)

let schema = "scnoise.bench-metrics/1"

let metrics_to_json metrics =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ( "metrics",
        Json.List
          (List.map
             (fun m ->
               Json.Obj
                 [
                   ("name", Json.Str m.m_name);
                   ("value", Json.Num m.m_value);
                   ("floor", Json.Num m.m_floor);
                 ])
             metrics) );
    ]

let metrics_to_json_string metrics = Json.to_string (metrics_to_json metrics)

let metric_of_json j =
  match
    (Json.member "name" j, Json.member "value" j, Json.member "floor" j)
  with
  | Some (Json.Str name), Some (Json.Num value), Some (Json.Num floor) ->
      { m_name = name; m_value = value; m_floor = floor }
  | _ -> raise (Json.Parse_error "bench metric needs name/value/floor fields")

(* Accepts a pruned scnoise.bench-metrics/1 document or any full
   scnoise.metrics snapshot (flattened on the fly). *)
let metrics_of_json j =
  match Json.member "schema" j with
  | Some (Json.Str s) when s = schema -> (
      match Json.member "metrics" j with
      | Some (Json.List items) -> List.map metric_of_json items
      | _ -> raise (Json.Parse_error "bench metrics document has no metrics"))
  | _ -> of_snapshot (Export.of_json j)

let metrics_of_json_string s = metrics_of_json (Json.of_string s)

type verdict = Unchanged | Regression | Improvement

type row = {
  r_name : string;
  r_base : float;
  r_cur : float;
  r_delta_pct : float;
  r_verdict : verdict;
}

type report = {
  rows : row list; (* metrics present on both sides, sorted by name *)
  only_base : string list; (* metrics that disappeared *)
  only_cur : string list; (* metrics new in the current run *)
  regressions : int;
  threshold_pct : float;
}

let judge ~threshold_pct base cur floor =
  let delta = cur -. base in
  let rel = if base > 0.0 then 100.0 *. delta /. base else 0.0 in
  let verdict =
    if delta > floor && rel > threshold_pct then Regression
    else if -.delta > floor && -.rel > threshold_pct then Improvement
    else Unchanged
  in
  (rel, verdict)

let diff_metrics ?(threshold_pct = 25.0) ~baseline:base ~current:cur () =
  let base_tbl = Hashtbl.create 64 in
  List.iter (fun m -> Hashtbl.replace base_tbl m.m_name m) base;
  let rows = ref [] and only_cur = ref [] in
  List.iter
    (fun m ->
      match Hashtbl.find_opt base_tbl m.m_name with
      | None -> only_cur := m.m_name :: !only_cur
      | Some b ->
          Hashtbl.remove base_tbl m.m_name;
          let rel, verdict =
            judge ~threshold_pct b.m_value m.m_value
              (Float.max b.m_floor m.m_floor)
          in
          rows :=
            {
              r_name = m.m_name;
              r_base = b.m_value;
              r_cur = m.m_value;
              r_delta_pct = rel;
              r_verdict = verdict;
            }
            :: !rows)
    cur;
  let only_base =
    Hashtbl.fold (fun name _ acc -> name :: acc) base_tbl []
    |> List.sort compare
  in
  let rows =
    List.sort (fun a b -> compare a.r_name b.r_name) !rows
  in
  {
    rows;
    only_base;
    only_cur = List.sort compare !only_cur;
    regressions =
      List.length (List.filter (fun r -> r.r_verdict = Regression) rows);
    threshold_pct;
  }

let diff ?threshold_pct ~baseline ~current () =
  diff_metrics ?threshold_pct ~baseline:(of_snapshot baseline)
    ~current:(of_snapshot current) ()

(* ---- rendering ---- *)

let verdict_string = function
  | Unchanged -> "ok"
  | Regression -> "REGRESSION"
  | Improvement -> "improved"

let to_table ?(all = false) report =
  let t =
    Scnoise_util.Table.create
      [ "metric"; "baseline"; "current"; "delta_%"; "verdict" ]
  in
  List.iter
    (fun r ->
      if all || r.r_verdict <> Unchanged then
        Scnoise_util.Table.add_row t
          [
            r.r_name;
            Printf.sprintf "%.4g" r.r_base;
            Printf.sprintf "%.4g" r.r_cur;
            Printf.sprintf "%+.1f" r.r_delta_pct;
            verdict_string r.r_verdict;
          ])
    report.rows;
  t

let print ?(oc = stdout) ?(all = false) report =
  let flagged =
    List.exists (fun r -> r.r_verdict <> Unchanged) report.rows
  in
  if all || flagged then begin
    output_string oc (Scnoise_util.Table.render (to_table ~all report));
    output_char oc '\n'
  end
  else
    Printf.fprintf oc
      "all %d shared metrics within %.0f%% of baseline\n"
      (List.length report.rows) report.threshold_pct;
  if report.only_base <> [] then
    Printf.fprintf oc "missing from current run: %s\n"
      (String.concat ", " report.only_base);
  if report.only_cur <> [] then
    Printf.fprintf oc "new in current run (not gated): %s\n"
      (String.concat ", " report.only_cur);
  Printf.fprintf oc
    "bench diff: %d regression(s) beyond %+.0f%% over %d shared metric(s)\n"
    report.regressions report.threshold_pct (List.length report.rows);
  flush oc
