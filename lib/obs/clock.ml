(* Wall-clock time source for all instrumentation.  [Unix.gettimeofday]
   is not guaranteed monotonic (NTP slews, clock steps), so clamp it to
   be non-decreasing: span durations and bench deltas must never come
   out negative.  Resolution is ~1 us, plenty for the >= ms-scale
   regions we time. *)

let last = ref neg_infinity

let now () =
  let t = Unix.gettimeofday () in
  if t > !last then last := t;
  !last

(* Seconds elapsed since [t0] (a value previously returned by [now]). *)
let elapsed t0 = now () -. t0
