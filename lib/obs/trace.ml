(* Chrome Trace Event Format emitter for [Obs] span forests.

   The output is the JSON-object flavour of the format —
   {"traceEvents": [...], "displayTimeUnit": "ms"} — loadable in
   about://tracing and https://ui.perfetto.dev.  Every span becomes a
   complete ("X") event with microsecond timestamps relative to the
   [Obs.reset] epoch.  The thread id is the OCaml domain that recorded
   the span, so a pooled sweep renders as one track per worker domain:
   pool utilisation, chunk scheduling and serial stragglers are visible
   at a glance even though the span *tree* re-homes worker spans under
   the submitting domain's span.  GC accounting and span args (e.g. the
   pool chunk's first item index) are carried in the event's "args". *)

let cat = "scnoise"

let us s = 1e6 *. s

(* Collect every span in the forest along with the set of domains. *)
let rec flatten acc (sp : Obs.span) =
  List.fold_left flatten (sp :: acc) sp.Obs.sp_children

let span_event (sp : Obs.span) =
  let args =
    List.map (fun (k, v) -> (k, Json.Num v)) sp.Obs.sp_args
    @
    if sp.Obs.sp_minor_words <> 0.0 || sp.Obs.sp_promoted_words <> 0.0 then
      [
        ("minor_kb", Json.Num (8.0 *. sp.Obs.sp_minor_words /. 1000.0));
        ("promoted_kb", Json.Num (8.0 *. sp.Obs.sp_promoted_words /. 1000.0));
      ]
    else []
  in
  Json.Obj
    ([
       ("name", Json.Str sp.Obs.sp_name);
       ("cat", Json.Str cat);
       ("ph", Json.Str "X");
       ("ts", Json.Num (us sp.Obs.sp_start));
       ("dur", Json.Num (us sp.Obs.sp_duration));
       ("pid", Json.Num 1.0);
       ("tid", Json.Num (float_of_int sp.Obs.sp_domain));
     ]
    @ match args with [] -> [] | a -> [ ("args", Json.Obj a) ])

let thread_meta tid name =
  Json.Obj
    [
      ("name", Json.Str "thread_name");
      ("ph", Json.Str "M");
      ("pid", Json.Num 1.0);
      ("tid", Json.Num (float_of_int tid));
      ("args", Json.Obj [ ("name", Json.Str name) ]);
    ]

let to_json (snap : Obs.snapshot) =
  let spans =
    List.rev (List.fold_left flatten [] snap.Obs.snap_spans)
  in
  let tids =
    List.sort_uniq compare (List.map (fun sp -> sp.Obs.sp_domain) spans)
  in
  let metas =
    Json.Obj
      [
        ("name", Json.Str "process_name");
        ("ph", Json.Str "M");
        ("pid", Json.Num 1.0);
        ("args", Json.Obj [ ("name", Json.Str "scnoise") ]);
      ]
    :: List.map
         (fun tid -> thread_meta tid (Printf.sprintf "domain %d" tid))
         tids
  in
  Json.Obj
    [
      ("traceEvents", Json.List (metas @ List.map span_event spans));
      ("displayTimeUnit", Json.Str "ms");
    ]

let to_string snap = Json.to_string (to_json snap)

(* Atomic, like the metrics exporter ("-" streams to stdout). *)
let write_file path snap = Export.write_string_file path (to_string snap ^ "\n")

(* The number of distinct span tracks (domains) in a snapshot — what a
   trace viewer will render as separate rows. *)
let n_tracks snap =
  List.length
    (List.sort_uniq compare
       (List.map
          (fun sp -> sp.Obs.sp_domain)
          (List.fold_left flatten [] snap.Obs.snap_spans)))

(* ---- minimal Trace-Event schema check ----

   Accepts what about://tracing / Perfetto require of the object
   format: a "traceEvents" array whose entries carry a string "ph", a
   string "name", and — for "X" events — finite numeric ts/dur plus
   pid/tid.  Used by the test suite and by `scnoise bench check-trace`
   so CI can validate emitted artifacts. *)

let validate_event i ev =
  let fail msg = Error (Printf.sprintf "event %d: %s" i msg) in
  match ev with
  | Json.Obj _ -> (
      let str name =
        match Json.member name ev with
        | Some (Json.Str s) -> Some s
        | _ -> None
      in
      let num name =
        match Json.member name ev with
        | Some (Json.Num x) when Float.is_finite x -> Some x
        | _ -> None
      in
      match (str "ph", str "name") with
      | None, _ -> fail "missing string \"ph\""
      | _, None -> fail "missing string \"name\""
      | Some "X", _ ->
          let required = [ "ts"; "dur"; "pid"; "tid" ] in
          let missing =
            List.filter (fun f -> num f = None) required
          in
          if missing <> [] then
            fail
              (Printf.sprintf "complete event lacks finite numeric %s"
                 (String.concat ", " missing))
          else if Option.get (num "dur") < 0.0 then fail "negative duration"
          else Ok ()
      | Some "M", _ -> Ok ()
      | Some ph, _ ->
          if String.length ph = 1 then Ok ()
          else fail (Printf.sprintf "unknown phase %S" ph))
  | _ -> fail "not an object"

let validate j =
  match Json.member "traceEvents" j with
  | None -> Error "missing \"traceEvents\""
  | Some (Json.List events) ->
      let rec go i = function
        | [] -> Ok ()
        | ev :: rest -> (
            match validate_event i ev with
            | Ok () -> go (i + 1) rest
            | Error _ as e -> e)
      in
      if events = [] then Error "empty trace (no events)" else go 0 events
  | Some _ -> Error "\"traceEvents\" is not an array"

let validate_string s =
  match Json.of_string s with
  | exception Json.Parse_error msg -> Error ("not JSON: " ^ msg)
  | j -> validate j

let validate_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | s -> validate_string s
