(** Monte-Carlo noise simulation: the method-independent sanity baseline.

    Sample paths of [dx = A(t) x dt + B(t) dW] are generated with the
    exact discrete-time map of each substep —
    [x <- Phi x + L xi], [L Lᵀ = Qd], [xi ~ N(0, I)] — so the path
    statistics are exact for any step size.  The output PSD is estimated
    with Welch-averaged Hann-windowed periodograms evaluated directly at
    the requested frequencies, and the variance from the sample second
    moment. *)

module Pwl = Scnoise_circuit.Pwl
module Vec = Scnoise_linalg.Vec

type estimate = {
  freqs : float array;
  psd : float array;  (** double-sided PSD estimates, V^2/Hz *)
  variance : float;  (** time-averaged output variance *)
  segments : int;  (** periodogram segments averaged *)
}

val estimate :
  ?seed:int64 -> ?samples_per_phase:int -> ?paths:int -> ?warmup_periods:int ->
  ?periods_per_segment:int -> ?segments_per_path:int ->
  ?pool:Scnoise_par.Pool.t -> Pwl.t -> output:Vec.t -> freqs:float array ->
  estimate
(** Defaults: [seed 1], [samples_per_phase 64], [paths 8],
    [warmup_periods 32], [periods_per_segment 16],
    [segments_per_path 8].

    Paths run across [pool] (default: the shared pool).  Each path owns
    a pre-jumped Xoshiro substream and private accumulators, and the
    per-path partial sums are merged in path order, so for a given
    [seed] the estimate is bit-identical at any job count. *)

val full_spectrum :
  ?seed:int64 -> ?samples_per_phase:int -> ?paths:int -> ?warmup_periods:int ->
  ?record_periods:int -> ?segment_periods:int -> ?pool:Scnoise_par.Pool.t ->
  Pwl.t -> output:Vec.t -> float array * float array
(** FFT-based Welch estimate of the whole spectrum on the DFT grid:
    [(freqs, psd)].  Requires all clock phases to have equal duration
    (uniform sampling); raises [Invalid_argument] otherwise.  Defaults:
    [record_periods 256] per path, [segment_periods 32] per Welch
    segment (both rounded to powers of two in samples). *)
