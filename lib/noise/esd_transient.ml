module Mat = Scnoise_linalg.Mat
module Vec = Scnoise_linalg.Vec
module Cx = Scnoise_linalg.Cx
module Cvec = Scnoise_linalg.Cvec
module Vanloan = Scnoise_linalg.Vanloan
module Ctrapezoid = Scnoise_ode.Ctrapezoid
module Covariance = Scnoise_core.Covariance
module Pwl = Scnoise_circuit.Pwl
module Db = Scnoise_util.Db
module Obs = Scnoise_obs.Obs

type result = {
  psd : float;
  periods : int;
  history : (float * float) array;
}

let c_cache_hits = Obs.counter "stepper_cache_hits"

let c_cache_misses = Obs.counter "stepper_cache_misses"

let c_periods = Obs.counter "esd_periods"

let psd ?samples_per_phase ?grid ?(tol_db = 0.1) ?(window_periods = 3)
    ?(min_periods = 4) ?(max_periods = 20_000) ?(init = `Zero) (sys : Pwl.t)
    ~output ~f =
  Obs.with_span "esd_transient.psd" @@ fun () ->
  let n = sys.Pwl.nstates in
  if Array.length output <> n then
    invalid_arg "Esd_transient.psd: output row length";
  let g = Covariance.discretized_grid ?samples_per_phase ?grid sys in
  let times = g.Covariance.g_times in
  let npts = Array.length times in
  let omega = 2.0 *. Float.pi *. f in
  (* steppers for K' (unshifted), cached per (phase, h) *)
  let cache : (int * float, Ctrapezoid.stepper) Hashtbl.t = Hashtbl.create 64 in
  let stepper p h =
    match Hashtbl.find_opt cache (p, h) with
    | Some st ->
        Obs.incr c_cache_hits;
        st
    | None ->
        Obs.incr c_cache_misses;
        let st = Ctrapezoid.make ~a:sys.Pwl.phases.(p).Pwl.a ~shift:Cx.zero ~h in
        Hashtbl.add cache (p, h) st;
        st
  in
  let k =
    ref
      (match init with
      | `Zero -> Mat.create n n
      | `Periodic -> Covariance.periodic_initial ?samples_per_phase sys)
  in
  let k' = ref (Cvec.create n) in
  let k'' = ref 0.0 in
  let history = ref [] in
  let forcing_at kmat t =
    let base = Mat.mul_vec kmat output in
    let rot = Cx.cis (omega *. t) in
    Cvec.init n (fun i -> Cx.( *: ) rot (Cx.re base.(i)))
  in
  let integrand kvec t =
    (* 2 Re (e^{-jwt} cᵀ K') *)
    let rot = Cx.cis (-.omega *. t) in
    let s = ref Cx.zero in
    Array.iteri
      (fun i c -> s := Cx.( +: ) !s (Cx.scale c (Cvec.get kvec i)))
      output;
    2.0 *. (Cx.( *: ) rot !s).Cx.re
  in
  let rec run period =
    if period > max_periods then
      failwith "Esd_transient.psd: max_periods exceeded without convergence";
    Obs.incr c_periods;
    let t_base = float_of_int (period - 1) *. sys.Pwl.period in
    let fprev = ref (forcing_at !k (t_base +. times.(0))) in
    let gprev = ref (integrand !k' (t_base +. times.(0))) in
    for i = 1 to npts - 1 do
      let t_abs = t_base +. times.(i) in
      let h = times.(i) -. times.(i - 1) in
      let p = g.Covariance.g_phase.(i - 1) in
      (* exact covariance substep *)
      k := Vanloan.propagate g.Covariance.g_disc.(i - 1) !k;
      (* cross-spectral density trapezoidal substep *)
      let fnext = forcing_at !k t_abs in
      k' := Ctrapezoid.step (stepper p h) ~p:!k' ~k0:!fprev ~k1:fnext;
      fprev := fnext;
      (* ESD accumulation *)
      let gnext = integrand !k' t_abs in
      k'' := !k'' +. (0.5 *. h *. (!gprev +. gnext));
      gprev := gnext
    done;
    let t_now = float_of_int period *. sys.Pwl.period in
    let est = !k'' /. t_now in
    history := (t_now, est) :: !history;
    let converged =
      period >= min_periods + window_periods
      &&
      let recent =
        List.filteri (fun i _ -> i <= window_periods) !history
      in
      match recent with
      | [] -> false
      | (_, latest) :: older ->
          List.for_all
            (fun (_, e) -> abs_float (Db.of_power latest -. Db.of_power e) < tol_db)
            older
    in
    if converged then begin
      let est = !k'' /. t_now in
      { psd = est; periods = period; history = Array.of_list (List.rev !history) }
    end
    else run (period + 1)
  in
  run 1

let sweep ?samples_per_phase ?grid ?tol_db ?window_periods ?min_periods
    ?max_periods ?init sys ~output freqs =
  Array.map
    (fun f ->
      (psd ?samples_per_phase ?grid ?tol_db ?window_periods ?min_periods
         ?max_periods ?init sys ~output ~f)
        .psd)
    freqs
