module Mat = Scnoise_linalg.Mat
module Vec = Scnoise_linalg.Vec
module Chol = Scnoise_linalg.Chol
module Covariance = Scnoise_core.Covariance
module Pwl = Scnoise_circuit.Pwl
module Gaussian = Scnoise_prng.Gaussian
module Xoshiro = Scnoise_prng.Xoshiro

module Welch = Scnoise_spectral.Welch
module Fft = Scnoise_spectral.Fft
module Obs = Scnoise_obs.Obs

let src = Logs.Src.create "scnoise.mc" ~doc:"Monte-Carlo noise engine"

module Log = (val Logs.src_log src : Logs.LOG)

let c_trajectories = Obs.counter "mc_trajectories"

type estimate = {
  freqs : float array;
  psd : float array;
  variance : float;
  segments : int;
}

let estimate ?(seed = 1L) ?(samples_per_phase = 64) ?(paths = 8)
    ?(warmup_periods = 32) ?(periods_per_segment = 16) ?(segments_per_path = 8)
    (sys : Pwl.t) ~output ~freqs =
  Obs.with_span ~src "mc.estimate" @@ fun () ->
  let n = sys.Pwl.nstates in
  if Array.length output <> n then
    invalid_arg "Monte_carlo.estimate: output row length";
  (* uniform per-phase grids so segments sample evenly in time *)
  let g =
    Covariance.discretized_grid ~samples_per_phase ~grid:`Uniform sys
  in
  let times = g.Covariance.g_times in
  let nsub = Array.length g.Covariance.g_disc in
  let chols =
    Array.map (fun (d : _) -> Chol.factor d.Scnoise_linalg.Vanloan.qd)
      g.Covariance.g_disc
  in
  let seg_samples = periods_per_segment * nsub in
  let seg_duration = float_of_int periods_per_segment *. sys.Pwl.period in
  (* Hann window and its energy *)
  let window =
    Array.init seg_samples (fun i ->
        let x = float_of_int i /. float_of_int (seg_samples - 1) in
        0.5 *. (1.0 -. cos (2.0 *. Float.pi *. x)))
  in
  let nf = Array.length freqs in
  let psd_acc = Array.make nf 0.0 in
  let var_acc = ref 0.0 and var_count = ref 0 in
  let total_segments = ref 0 in
  let master = Xoshiro.create seed in
  for path = 1 to paths do
    Obs.incr c_trajectories;
    let stream = Xoshiro.copy master in
    Xoshiro.jump master;
    let gauss = Gaussian.of_xoshiro stream in
    let xi = Array.make n 0.0 in
    let x = ref (Vec.create n) in
    let advance_substep i =
      let d = g.Covariance.g_disc.(i) in
      let drift = Mat.mul_vec d.Scnoise_linalg.Vanloan.phi !x in
      Gaussian.fill gauss xi;
      let noise = Mat.mul_vec chols.(i) xi in
      x := Vec.add drift noise
    in
    (* warm up to (approximate) stationarity *)
    for _ = 1 to warmup_periods do
      for i = 0 to nsub - 1 do
        advance_substep i
      done
    done;
    (* collect segments; substep durations vary within a period, use the
       actual sample times for the Fourier sums *)
    let samples = Array.make seg_samples 0.0 in
    let sample_times = Array.make seg_samples 0.0 in
    for _seg = 1 to segments_per_path do
      let idx = ref 0 in
      for p = 0 to periods_per_segment - 1 do
        for i = 0 to nsub - 1 do
          advance_substep i;
          samples.(!idx) <- Vec.dot output !x;
          sample_times.(!idx) <-
            (float_of_int p *. sys.Pwl.period) +. times.(i + 1);
          incr idx
        done
      done;
      (* accumulate variance from raw samples *)
      Array.iter
        (fun v ->
          var_acc := !var_acc +. (v *. v);
          incr var_count)
        samples;
      (* windowed DFT at each requested frequency *)
      let dt = seg_duration /. float_of_int seg_samples in
      let wsum2 =
        Array.fold_left (fun acc w -> acc +. (w *. w)) 0.0 window *. dt
      in
      for fi = 0 to nf - 1 do
        let omega = 2.0 *. Float.pi *. freqs.(fi) in
        let re = ref 0.0 and im = ref 0.0 in
        for i = 0 to seg_samples - 1 do
          let ph = -.omega *. sample_times.(i) in
          let wv = window.(i) *. samples.(i) *. dt in
          re := !re +. (wv *. cos ph);
          im := !im +. (wv *. sin ph)
        done;
        psd_acc.(fi) <-
          psd_acc.(fi) +. (((!re *. !re) +. (!im *. !im)) /. wsum2)
      done;
      incr total_segments
    done;
    Log.debug (fun m ->
        m "trajectory batch done: path %d/%d, %d segments so far" path paths
          !total_segments)
  done;
  let segs = float_of_int !total_segments in
  {
    freqs = Array.copy freqs;
    psd = Array.map (fun s -> s /. segs) psd_acc;
    variance = !var_acc /. float_of_int !var_count;
    segments = !total_segments;
  }

let full_spectrum ?(seed = 1L) ?(samples_per_phase = 64) ?(paths = 8)
    ?(warmup_periods = 32) ?(record_periods = 256) ?(segment_periods = 32)
    (sys : Pwl.t) ~output =
  Obs.with_span ~src "mc.full_spectrum" @@ fun () ->
  let n = sys.Pwl.nstates in
  if Array.length output <> n then
    invalid_arg "Monte_carlo.full_spectrum: output row length";
  (* uniform sampling requires equal phase durations *)
  let taus = Array.map (fun (p : Pwl.phase) -> p.Pwl.tau) sys.Pwl.phases in
  Array.iter
    (fun tau ->
      if abs_float (tau -. taus.(0)) > 1e-12 *. taus.(0) then
        invalid_arg
          "Monte_carlo.full_spectrum: phases of unequal duration (use \
           [estimate] instead)")
    taus;
  let g = Covariance.discretized_grid ~samples_per_phase ~grid:`Uniform sys in
  let nsub = Array.length g.Covariance.g_disc in
  let chols =
    Array.map (fun (d : _) -> Chol.factor d.Scnoise_linalg.Vanloan.qd)
      g.Covariance.g_disc
  in
  let dt = sys.Pwl.period /. float_of_int nsub in
  let record_len = Fft.next_pow2 (record_periods * nsub) in
  let segment = min record_len (Fft.next_pow2 (segment_periods * nsub)) in
  let master = Xoshiro.create seed in
  let acc = ref None in
  for _path = 1 to paths do
    Obs.incr c_trajectories;
    let stream = Xoshiro.copy master in
    Xoshiro.jump master;
    let gauss = Gaussian.of_xoshiro stream in
    let xi = Array.make n 0.0 in
    let x = ref (Vec.create n) in
    let advance i =
      let d = g.Covariance.g_disc.(i) in
      let drift = Mat.mul_vec d.Scnoise_linalg.Vanloan.phi !x in
      Gaussian.fill gauss xi;
      x := Vec.add drift (Mat.mul_vec chols.(i) xi)
    in
    for _ = 1 to warmup_periods do
      for i = 0 to nsub - 1 do
        advance i
      done
    done;
    let record = Array.make record_len 0.0 in
    for k = 0 to record_len - 1 do
      advance (k mod nsub);
      record.(k) <- Vec.dot output !x
    done;
    let freqs, psd = Welch.estimate ~dt ~segment record in
    (match !acc with
    | None -> acc := Some (freqs, psd)
    | Some (_, total) ->
        Array.iteri (fun i v -> total.(i) <- total.(i) +. v) psd)
  done;
  match !acc with
  | None -> invalid_arg "Monte_carlo.full_spectrum: paths = 0"
  | Some (freqs, total) ->
      (freqs, Array.map (fun v -> v /. float_of_int paths) total)
