module Mat = Scnoise_linalg.Mat
module Vec = Scnoise_linalg.Vec
module Chol = Scnoise_linalg.Chol
module Covariance = Scnoise_core.Covariance
module Pwl = Scnoise_circuit.Pwl
module Gaussian = Scnoise_prng.Gaussian
module Xoshiro = Scnoise_prng.Xoshiro

module Welch = Scnoise_spectral.Welch
module Fft = Scnoise_spectral.Fft
module Obs = Scnoise_obs.Obs
module Pool = Scnoise_par.Pool

let src = Logs.Src.create "scnoise.mc" ~doc:"Monte-Carlo noise engine"

module Log = (val Logs.src_log src : Logs.LOG)

let c_trajectories = Obs.counter "mc_trajectories"

(* Wall time of one Monte-Carlo path (warmup + all segments); recorded
   per pool job, so the histogram captures the straggler spread that a
   single accumulated timer hides.  Gated on [Obs.is_enabled]. *)
let h_path = Obs.histogram "mc.path_s"

module Clock = Scnoise_obs.Clock

let timed_path f =
  if Obs.is_enabled () then begin
    let t0 = Clock.now () in
    let r = f () in
    Obs.hist_record h_path (Clock.elapsed t0);
    r
  end
  else f ()

type estimate = {
  freqs : float array;
  psd : float array;
  variance : float;
  segments : int;
}

(* Hann windows recur with the same length across segments, paths and
   repeated calls; memoise them (the cache holds a handful of sizes). *)
let hann_mutex = Mutex.create ()

let hann_cache : (int, float array) Hashtbl.t = Hashtbl.create 4

let hann_window n =
  Mutex.lock hann_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock hann_mutex)
    (fun () ->
      match Hashtbl.find_opt hann_cache n with
      | Some w -> w
      | None ->
          let w =
            Array.init n (fun i ->
                let x = float_of_int i /. float_of_int (n - 1) in
                0.5 *. (1.0 -. cos (2.0 *. Float.pi *. x)))
          in
          Hashtbl.add hann_cache n w;
          w)

(* Derive one independent substream per path up front: stream [p] is the
   master state after [p] jumps, exactly the sequence the serial loop
   consumed.  Each path then owns its generator outright, which is what
   makes the parallel fan-out reproducible. *)
let path_streams master paths =
  Array.init paths (fun _ ->
      let s = Xoshiro.copy master in
      Xoshiro.jump master;
      s)

let estimate ?(seed = 1L) ?(samples_per_phase = 64) ?(paths = 8)
    ?(warmup_periods = 32) ?(periods_per_segment = 16) ?(segments_per_path = 8)
    ?pool (sys : Pwl.t) ~output ~freqs =
  Obs.with_span ~src "mc.estimate" @@ fun () ->
  let pool = match pool with Some p -> p | None -> Pool.global () in
  let n = sys.Pwl.nstates in
  if Array.length output <> n then
    invalid_arg "Monte_carlo.estimate: output row length";
  (* uniform per-phase grids so segments sample evenly in time *)
  let g =
    Covariance.discretized_grid ~samples_per_phase ~grid:`Uniform ~pool sys
  in
  let times = g.Covariance.g_times in
  let nsub = Array.length g.Covariance.g_disc in
  let chols =
    Array.map (fun (d : _) -> Chol.factor d.Scnoise_linalg.Vanloan.qd)
      g.Covariance.g_disc
  in
  let seg_samples = periods_per_segment * nsub in
  let seg_duration = float_of_int periods_per_segment *. sys.Pwl.period in
  let window = hann_window seg_samples in
  let nf = Array.length freqs in
  (* segment-invariant pieces of the windowed DFT, hoisted out of the
     per-segment (and per-path) loops *)
  let dt = seg_duration /. float_of_int seg_samples in
  let wsum2 =
    Array.fold_left (fun acc w -> acc +. (w *. w)) 0.0 window *. dt
  in
  (* One path = one independent trajectory with private accumulators;
     everything it touches is local, so paths fan out across the pool. *)
  let run_path stream =
    Obs.incr c_trajectories;
    let psd_acc = Array.make nf 0.0 in
    let var_acc = ref 0.0 and var_count = ref 0 in
    let gauss = Gaussian.of_xoshiro stream in
    let xi = Array.make n 0.0 in
    let x = ref (Vec.create n) in
    let advance_substep i =
      let d = g.Covariance.g_disc.(i) in
      let drift = Mat.mul_vec d.Scnoise_linalg.Vanloan.phi !x in
      Gaussian.fill gauss xi;
      let noise = Mat.mul_vec chols.(i) xi in
      x := Vec.add drift noise
    in
    (* warm up to (approximate) stationarity *)
    for _ = 1 to warmup_periods do
      for i = 0 to nsub - 1 do
        advance_substep i
      done
    done;
    (* collect segments; substep durations vary within a period, use the
       actual sample times for the Fourier sums *)
    let samples = Array.make seg_samples 0.0 in
    let sample_times = Array.make seg_samples 0.0 in
    for _seg = 1 to segments_per_path do
      let idx = ref 0 in
      for p = 0 to periods_per_segment - 1 do
        for i = 0 to nsub - 1 do
          advance_substep i;
          samples.(!idx) <- Vec.dot output !x;
          sample_times.(!idx) <-
            (float_of_int p *. sys.Pwl.period) +. times.(i + 1);
          incr idx
        done
      done;
      (* accumulate variance from raw samples *)
      Array.iter
        (fun v ->
          var_acc := !var_acc +. (v *. v);
          incr var_count)
        samples;
      (* windowed DFT at each requested frequency *)
      for fi = 0 to nf - 1 do
        let omega = 2.0 *. Float.pi *. freqs.(fi) in
        let re = ref 0.0 and im = ref 0.0 in
        for i = 0 to seg_samples - 1 do
          let ph = -.omega *. sample_times.(i) in
          let wv = window.(i) *. samples.(i) *. dt in
          re := !re +. (wv *. cos ph);
          im := !im +. (wv *. sin ph)
        done;
        psd_acc.(fi) <-
          psd_acc.(fi) +. (((!re *. !re) +. (!im *. !im)) /. wsum2)
      done
    done;
    (psd_acc, !var_acc, !var_count)
  in
  let streams = path_streams (Xoshiro.create seed) paths in
  (* fixed-order reduce: partial sums merge in path order, so the result
     is bit-identical for a given seed at any job count *)
  let psd_acc = Array.make nf 0.0 in
  let var_acc, var_count =
    Pool.map_reduce pool ~n:paths
      ~map:(fun p -> timed_path (fun () -> run_path streams.(p)))
      ~init:(0.0, 0)
      ~merge:(fun (va, vc) (p_psd, p_va, p_vc) ->
        Array.iteri (fun fi v -> psd_acc.(fi) <- psd_acc.(fi) +. v) p_psd;
        (va +. p_va, vc + p_vc))
  in
  let total_segments = paths * segments_per_path in
  Log.debug (fun m ->
      m "trajectories done: %d paths, %d segments" paths total_segments);
  let segs = float_of_int total_segments in
  {
    freqs = Array.copy freqs;
    psd = Array.map (fun s -> s /. segs) psd_acc;
    variance = var_acc /. float_of_int var_count;
    segments = total_segments;
  }

let full_spectrum ?(seed = 1L) ?(samples_per_phase = 64) ?(paths = 8)
    ?(warmup_periods = 32) ?(record_periods = 256) ?(segment_periods = 32)
    ?pool (sys : Pwl.t) ~output =
  Obs.with_span ~src "mc.full_spectrum" @@ fun () ->
  let pool = match pool with Some p -> p | None -> Pool.global () in
  let n = sys.Pwl.nstates in
  if Array.length output <> n then
    invalid_arg "Monte_carlo.full_spectrum: output row length";
  if paths <= 0 then invalid_arg "Monte_carlo.full_spectrum: paths = 0";
  (* uniform sampling requires equal phase durations *)
  let taus = Array.map (fun (p : Pwl.phase) -> p.Pwl.tau) sys.Pwl.phases in
  Array.iter
    (fun tau ->
      if abs_float (tau -. taus.(0)) > 1e-12 *. taus.(0) then
        invalid_arg
          "Monte_carlo.full_spectrum: phases of unequal duration (use \
           [estimate] instead)")
    taus;
  let g =
    Covariance.discretized_grid ~samples_per_phase ~grid:`Uniform ~pool sys
  in
  let nsub = Array.length g.Covariance.g_disc in
  let chols =
    Array.map (fun (d : _) -> Chol.factor d.Scnoise_linalg.Vanloan.qd)
      g.Covariance.g_disc
  in
  let dt = sys.Pwl.period /. float_of_int nsub in
  let record_len = Fft.next_pow2 (record_periods * nsub) in
  let segment = min record_len (Fft.next_pow2 (segment_periods * nsub)) in
  let run_path stream =
    Obs.incr c_trajectories;
    let gauss = Gaussian.of_xoshiro stream in
    let xi = Array.make n 0.0 in
    let x = ref (Vec.create n) in
    let advance i =
      let d = g.Covariance.g_disc.(i) in
      let drift = Mat.mul_vec d.Scnoise_linalg.Vanloan.phi !x in
      Gaussian.fill gauss xi;
      x := Vec.add drift (Mat.mul_vec chols.(i) xi)
    in
    for _ = 1 to warmup_periods do
      for i = 0 to nsub - 1 do
        advance i
      done
    done;
    let record = Array.make record_len 0.0 in
    for k = 0 to record_len - 1 do
      advance (k mod nsub);
      record.(k) <- Vec.dot output !x
    done;
    Welch.estimate ~dt ~segment record
  in
  let streams = path_streams (Xoshiro.create seed) paths in
  let acc =
    Pool.map_reduce pool ~n:paths
      ~map:(fun p -> timed_path (fun () -> run_path streams.(p)))
      ~init:None
      ~merge:(fun acc (freqs, psd) ->
        match acc with
        | None -> Some (freqs, psd)
        | Some (_, total) ->
            Array.iteri (fun i v -> total.(i) <- total.(i) +. v) psd;
            acc)
  in
  match acc with
  | None -> invalid_arg "Monte_carlo.full_spectrum: paths = 0"
  | Some (freqs, total) ->
      (freqs, Array.map (fun v -> v /. float_of_int paths) total)
