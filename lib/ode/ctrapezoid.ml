module Cvec = Scnoise_linalg.Cvec
module Cmat = Scnoise_linalg.Cmat
module Clu = Scnoise_linalg.Clu
module Lu = Scnoise_linalg.Lu
module Mat = Scnoise_linalg.Mat
module Cx = Scnoise_linalg.Cx

module Obs = Scnoise_obs.Obs

type stepper = {
  h : float;
  n : int;
  lhs : Clu.t; (* I - h/2 (A - sI) *)
  rhs : Cmat.t; (* I + h/2 (A - sI) *)
  sb : Cvec.t; (* per-stepper rhs scratch *)
  sw : float array; (* per-stepper solve workspace *)
}

let c_steps = Obs.counter "ode_steps"

let c_demod_steps = Obs.counter "ode_demod_steps"

let c_demod_refines = Obs.counter "ode_demod_refines"

let shifted_half a shift h =
  (* h/2 (A - shift I) as a complex matrix *)
  let n = Mat.rows a in
  Cmat.init n n (fun i j ->
      let re = 0.5 *. h *. Mat.get a i j in
      if i = j then Cx.( -: ) (Cx.re re) (Cx.scale (0.5 *. h) shift)
      else Cx.re re)

let make ~a ~shift ~h =
  if not (Mat.is_square a) then invalid_arg "Ctrapezoid.make: not square";
  if h <= 0.0 then invalid_arg "Ctrapezoid.make: h <= 0";
  Scnoise_linalg.Sanitize.check_mat "Ctrapezoid.make" a;
  let n = Mat.rows a in
  let ident = Cmat.identity n in
  let half = shifted_half a shift h in
  {
    h;
    n;
    lhs = Clu.factor (Cmat.sub ident half);
    rhs = Cmat.add ident half;
    sb = Cvec.create n;
    sw = Array.make (2 * n) 0.0;
  }

(* Steppers carry their own scratch, so one stepper must not be driven
   from two domains at once; the BVP layer keeps its caches
   per-solve (hence per-domain). *)
let step_into st ~p ~k0 ~k1 ~into =
  Obs.incr c_steps;
  Cmat.mul_vec_into st.rhs p ~into:st.sb;
  let w = 0.5 *. st.h in
  let bd = Cvec.data st.sb
  and k0d = Cvec.data k0
  and k1d = Cvec.data k1 in
  for k = 0 to (2 * st.n) - 1 do
    bd.(k) <- bd.(k) +. (w *. (k0d.(k) +. k1d.(k)))
  done;
  Clu.solve_into st.lhs ~work:st.sw ~b:st.sb ~into;
  Scnoise_linalg.Sanitize.check_cvec "Ctrapezoid.step" into

let step st ~p ~k0 ~k1 =
  let out = Cvec.create st.n in
  step_into st ~p ~k0 ~k1 ~into:out;
  out

let step_homogeneous st p =
  Obs.incr c_steps;
  Clu.solve st.lhs (Cmat.mul_vec st.rhs p)

let trajectory ~a ~shift ~forcing ~h ~steps p0 =
  if steps < 1 then invalid_arg "Ctrapezoid.trajectory: steps < 1";
  let st = make ~a ~shift ~h in
  let out = Array.make (steps + 1) p0 in
  let p = ref p0 in
  let k = ref (forcing 0) in
  for i = 1 to steps do
    let k_next = forcing i in
    p := step st ~p:!p ~k0:!k ~k1:k_next;
    k := k_next;
    out.(i) <- !p
  done;
  out

(* --- reusable shifted stepper ---

   The demodulated fallback needs a classic shifted stepper per
   (phase, h) at frequencies where the refinement contraction is too
   slow.  Building one with [make] per frequency point allocates the
   LHS/RHS matrices and a fresh factorisation each time; this variant
   keeps all buffers and refactors in place only when the shift
   actually changes.  The matrix fill replicates [make]'s arithmetic
   term by term ([shifted_half] followed by [Cmat.sub]/[Cmat.add]
   against the identity), so a retuned stepper is bit-identical to a
   freshly made one. *)

type reusable = {
  xh : float;
  xn : int;
  xa : Mat.t; (* kept for refactorisation *)
  xmat : Cmat.t; (* LHS build scratch *)
  xlhs : Clu.t;
  xrhs : Cmat.t;
  mutable xomega : float; (* shift currently factored, s = j omega *)
  mutable xfresh : bool;
  xsb : Cvec.t;
  xsw : float array;
}

let c_retunes = Obs.counter "ode_stepper_retunes"

let make_reusable ~a ~h =
  if not (Mat.is_square a) then
    invalid_arg "Ctrapezoid.make_reusable: not square";
  if h <= 0.0 then invalid_arg "Ctrapezoid.make_reusable: h <= 0";
  Scnoise_linalg.Sanitize.check_mat "Ctrapezoid.make_reusable" a;
  let n = Mat.rows a in
  {
    xh = h;
    xn = n;
    xa = a;
    xmat = Cmat.create n n;
    xlhs = Clu.create n;
    xrhs = Cmat.create n n;
    xomega = 0.0;
    xfresh = false;
    xsb = Cvec.create n;
    xsw = Array.make (2 * n) 0.0;
  }

let retune st ~omega =
  if not (st.xfresh && st.xomega = omega) then begin
    Obs.incr c_retunes;
    let n = st.xn in
    let w = 0.5 *. st.xh in
    let swo = w *. omega in
    let ld = Cmat.data st.xmat and rd = Cmat.data st.xrhs in
    let ad = Mat.data st.xa in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let re = w *. ad.((i * n) + j) in
        let k = 2 * ((i * n) + j) in
        if i = j then begin
          (* half = (re, 0) - w * (0, omega) elementwise *)
          ld.(k) <- 1.0 -. (re -. 0.0);
          ld.(k + 1) <- 0.0 -. (0.0 -. swo);
          rd.(k) <- 1.0 +. (re -. 0.0);
          rd.(k + 1) <- 0.0 +. (0.0 -. swo)
        end
        else begin
          ld.(k) <- 0.0 -. re;
          ld.(k + 1) <- 0.0 -. 0.0;
          rd.(k) <- 0.0 +. re;
          rd.(k + 1) <- 0.0 +. 0.0
        end
      done
    done;
    Clu.factor_into st.xlhs st.xmat;
    st.xomega <- omega;
    st.xfresh <- true
  end

let step_reusable_into st ~p ~k0 ~k1 ~into =
  if not st.xfresh then invalid_arg "Ctrapezoid.step_reusable_into: not tuned";
  Obs.incr c_steps;
  Cmat.mul_vec_into st.xrhs p ~into:st.xsb;
  let w = 0.5 *. st.xh in
  let bd = Cvec.data st.xsb
  and k0d = Cvec.data k0
  and k1d = Cvec.data k1 in
  for k = 0 to (2 * st.xn) - 1 do
    bd.(k) <- bd.(k) +. (w *. (k0d.(k) +. k1d.(k)))
  done;
  Clu.solve_into st.xlhs ~work:st.xsw ~b:st.xsb ~into;
  Scnoise_linalg.Sanitize.check_cvec "Ctrapezoid.step" into

(* --- demodulated stepper ---

   For the shifted system dP/dt = (A - jw I) P + k the trapezoid LHS is
   (I - h/2 A) + j (wh/2) I = C + j beta I with C real and frequency
   independent.  We factor C once (real LU) and recover the *exact*
   shifted-trapezoid update by the contraction

     x_{m+1} = C^{-1} b - j beta C^{-1} x_m,

   whose fixed point solves (C + j beta I) x = b and whose error decays
   by rho = |beta| ||C^{-1}|| per iteration.  [demod_iters] turns rho
   into a deterministic iteration count (frequency only — no
   data-dependent convergence test, keeping sweeps bit-reproducible at
   any job count), or rejects the frequency when the contraction is too
   slow to beat a complex refactorisation. *)

type demod = {
  dh : float;
  dn : int;
  dlhs : Lu.t; (* C = I - h/2 A, real *)
  drhs : float array; (* D = I + h/2 A, row-major n^2 *)
  dinv_norm1 : float; (* ||C^{-1}||_1, exact *)
}

type demod_work = { wb : Cvec.t; wy : Cvec.t; wz : Cvec.t }

let demod_work n = { wb = Cvec.create n; wy = Cvec.create n; wz = Cvec.create n }

let demod_dim st = st.dn

let make_demod ~a ~h =
  if not (Mat.is_square a) then invalid_arg "Ctrapezoid.make_demod: not square";
  if h <= 0.0 then invalid_arg "Ctrapezoid.make_demod: h <= 0";
  Scnoise_linalg.Sanitize.check_mat "Ctrapezoid.make_demod" a;
  let n = Mat.rows a in
  let w = 0.5 *. h in
  let c =
    Mat.init n n (fun i j ->
        let d = if i = j then 1.0 else 0.0 in
        d -. (w *. Mat.get a i j))
  in
  let drhs = Array.make (n * n) 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let d = if i = j then 1.0 else 0.0 in
      drhs.((i * n) + j) <- d +. (w *. Mat.get a i j)
    done
  done;
  let dlhs = Lu.factor c in
  (* exact ||C^{-1}||_1 = max over columns of sum |C^{-1} e_j| *)
  let e = Array.make n 0.0 and x = Array.make n 0.0 in
  let best = ref 0.0 in
  for j = 0 to n - 1 do
    e.(j) <- 1.0;
    Lu.solve_into dlhs ~b:e ~into:x;
    let s = ref 0.0 in
    for i = 0 to n - 1 do
      s := !s +. abs_float x.(i)
    done;
    if !s > !best then best := !s;
    e.(j) <- 0.0
  done;
  { dh = h; dn = n; dlhs; drhs; dinv_norm1 = !best }

(* Per-iteration contraction rho^m must push the refinement error below
   [demod_tol] relative; past [demod_max_iters] iterations the refined
   solve is no cheaper than a complex refactorisation amortised over a
   cached stepper, so the caller should fall back. *)
let demod_tol = 1e-13

let demod_max_iters = 12

(* Distribution of refinement iteration counts chosen per frequency
   point (exact integer buckets); a fallback rejection records as the
   overflow bucket's predecessor via [demod_max_iters + 1].  Always-on
   numeric-health telemetry, one atomic add per query. *)
let h_demod_iters = Obs.histogram ~mode:Scnoise_obs.Hist.Counts "ode.demod_iters"

let demod_iters_quiet st ~omega =
  let beta = 0.5 *. st.dh *. abs_float omega in
  let rho = beta *. st.dinv_norm1 in
  if rho = 0.0 then 0
  else if rho >= 0.25 then -1
  else
    let m = max 1 (int_of_float (ceil (log demod_tol /. log rho))) in
    if m > demod_max_iters then -1 else m

let demod_iters st ~omega =
  let m = demod_iters_quiet st ~omega in
  Obs.hist_record_int h_demod_iters (if m < 0 then demod_max_iters + 1 else m);
  m

let demod_refinable st ~omega = demod_iters_quiet st ~omega >= 0

(* --- blocked demodulated stepper ---

   One panel solve advances [width] frequencies' envelopes through the
   same interval: the real factors of C are traversed once per block
   instead of once per frequency, which is where the batched sweep's
   memory-bandwidth win comes from.  Column [b] replicates
   [step_demod_into]'s operation sequence exactly — same rhs
   accumulation order, same anchor/refinement updates — so each column
   is bitwise identical to the scalar step at its frequency.  Columns
   whose deterministic iteration count is exhausted are masked out of
   the refinement updates (their entries stay fixed while the panel
   keeps solving), never recomputed. *)

type block_work = {
  bw_width : int;
  bw_b : Cvec.panel; (* rhs panel *)
  bw_y : Cvec.panel; (* anchor C^{-1} b *)
  bw_z : Cvec.panel; (* refinement scratch *)
  bw_beta : float array; (* per-column beta = h/2 omega_b *)
}

let block_work ~dim ~width =
  if width < 1 then invalid_arg "Ctrapezoid.block_work: width < 1";
  {
    bw_width = width;
    bw_b = Cvec.panel_create ~dim ~width;
    bw_y = Cvec.panel_create ~dim ~width;
    bw_z = Cvec.panel_create ~dim ~width;
    bw_beta = Array.make width 0.0;
  }

let block_width w = w.bw_width

let c_block_steps = Obs.counter "ode_block_steps"

(* Panel solves issued by the blocked stepper (anchor + refinement
   passes); together with [lu_block_solves] this exposes how much of a
   sweep ran through the batched path. *)
let c_block_solves = Obs.counter "ode.block_solves"

(* Active columns per panel solve (exact integer buckets): the anchor
   solve records the full block width, each refinement pass the number
   of columns still refining — early-converged frequencies show up as
   sub-width entries.  Shared with the Psd layer by name. *)
let h_batch_width = Obs.histogram ~mode:Scnoise_obs.Hist.Counts "psd.batch_width"

let step_block_into st ~work ~omegas ~iters ~p ~k0 ~k1 ~into =
  let n = st.dn in
  let width = work.bw_width in
  if Array.length omegas <> width || Array.length iters <> width then
    invalid_arg "Ctrapezoid.step_block_into: width mismatch";
  if Array.length p <> 2 * n * width || Array.length into <> 2 * n * width
  then invalid_arg "Ctrapezoid.step_block_into: panel dimension mismatch";
  if Cvec.dim k0 <> n || Cvec.dim k1 <> n then
    invalid_arg "Ctrapezoid.step_block_into: forcing dimension mismatch";
  if p == into then
    invalid_arg "Ctrapezoid.step_block_into: output must not alias p";
  Obs.add c_steps width;
  Obs.add c_demod_steps width;
  Obs.incr c_block_steps;
  let max_m = ref 0 in
  let min_m = ref max_int in
  let refines = ref 0 in
  for b = 0 to width - 1 do
    let m = iters.(b) in
    if m < 0 then
      invalid_arg "Ctrapezoid.step_block_into: unrefinable column";
    if m > !max_m then max_m := m;
    if m < !min_m then min_m := m;
    refines := !refines + m;
    work.bw_beta.(b) <- 0.5 *. st.dh *. omegas.(b)
  done;
  if !refines > 0 then Obs.add c_demod_refines !refines;
  let w = 0.5 *. st.dh in
  let betas = work.bw_beta in
  let bb = work.bw_b
  and k0d = Cvec.data k0
  and k1d = Cvec.data k1 in
  let w2 = 2 * width in
  (* b = (D - j beta_b I) p + h/2 (k0 + k1) per column, with real D:
     each column accumulates its row sum in registers over j and closes
     with the same three-term sums as [step_demod_into], term for term
     and in the same order.  (D is tiny and L1-resident, so reloading
     it per column costs nothing; keeping the partial sums out of
     memory is what matters.)  The entry checks pin every index, so the
     inner loops use unsafe accesses (same values, same order — only
     the bounds checks go). *)
  let drhs = st.drhs in
  for i = 0 to n - 1 do
    let base = i * n in
    let irow = i * w2 in
    let fre = w *. (k0d.(2 * i) +. k1d.(2 * i)) in
    let fim = w *. (k0d.((2 * i) + 1) +. k1d.((2 * i) + 1)) in
    for b = 0 to width - 1 do
      let k = irow + (2 * b) in
      let b2 = 2 * b in
      let re = ref 0.0 and im = ref 0.0 in
      for j = 0 to n - 1 do
        let a = Array.unsafe_get drhs (base + j) in
        let pk = (j * w2) + b2 in
        re := !re +. (a *. Array.unsafe_get p pk);
        im := !im +. (a *. Array.unsafe_get p (pk + 1))
      done;
      let beta = Array.unsafe_get betas b in
      Array.unsafe_set bb k
        (!re +. (beta *. Array.unsafe_get p (k + 1)) +. fre);
      Array.unsafe_set bb (k + 1)
        (!im -. (beta *. Array.unsafe_get p k) +. fim)
    done
  done;
  (* y = C^{-1} b: anchor and first iterate for every column *)
  Obs.incr c_block_solves;
  Obs.hist_record_int h_batch_width width;
  Lu.solve_block_into st.dlhs ~width ~b:work.bw_b ~into:work.bw_y;
  Array.blit work.bw_y 0 into 0 (2 * n * width);
  let yd = work.bw_y and zd = work.bw_z in
  for m = 1 to !max_m do
    Obs.incr c_block_solves;
    (let active = ref 0 in
     for b = 0 to width - 1 do
       if iters.(b) >= m then incr active
     done;
     Obs.hist_record_int h_batch_width !active);
    Lu.solve_block_into st.dlhs ~width ~b:into ~into:work.bw_z;
    if m <= !min_m then
      (* every column is still refining: the mask below would pass
         everywhere, so skip the per-column test (same updates, same
         order) *)
      for i = 0 to n - 1 do
        let irow = i * w2 in
        for b = 0 to width - 1 do
          let k = irow + (2 * b) in
          let beta = Array.unsafe_get betas b in
          Array.unsafe_set into k
            (Array.unsafe_get yd k +. (beta *. Array.unsafe_get zd (k + 1)));
          Array.unsafe_set into (k + 1)
            (Array.unsafe_get yd (k + 1) -. (beta *. Array.unsafe_get zd k))
        done
      done
    else
      for i = 0 to n - 1 do
        let irow = i * w2 in
        for b = 0 to width - 1 do
          if Array.unsafe_get iters b >= m then begin
            let k = irow + (2 * b) in
            let beta = Array.unsafe_get betas b in
            Array.unsafe_set into k
              (Array.unsafe_get yd k +. (beta *. Array.unsafe_get zd (k + 1)));
            Array.unsafe_set into (k + 1)
              (Array.unsafe_get yd (k + 1) -. (beta *. Array.unsafe_get zd k))
          end
        done
      done
  done;
  Scnoise_linalg.Sanitize.check_panel "Ctrapezoid.step_block" ~width into

let step_demod_into st ~work ~omega ~iters ~p ~k0 ~k1 ~into =
  Obs.incr c_steps;
  Obs.incr c_demod_steps;
  if iters > 0 then Obs.add c_demod_refines iters;
  let n = st.dn in
  if Cvec.dim p <> n || Cvec.dim k0 <> n || Cvec.dim k1 <> n || Cvec.dim into <> n
  then invalid_arg "Ctrapezoid.step_demod_into: dimension mismatch";
  let beta = 0.5 *. st.dh *. omega in
  let w = 0.5 *. st.dh in
  let pd = Cvec.data p
  and k0d = Cvec.data k0
  and k1d = Cvec.data k1
  and bd = Cvec.data work.wb in
  (* b = (D - j beta I) p + h/2 (k0 + k1), with real D *)
  for i = 0 to n - 1 do
    let base = i * n in
    let re = ref 0.0 and im = ref 0.0 in
    for j = 0 to n - 1 do
      let a = st.drhs.(base + j) in
      re := !re +. (a *. pd.(2 * j));
      im := !im +. (a *. pd.((2 * j) + 1))
    done;
    bd.(2 * i) <-
      !re +. (beta *. pd.((2 * i) + 1))
      +. (w *. (k0d.(2 * i) +. k1d.(2 * i)));
    bd.((2 * i) + 1) <-
      !im -. (beta *. pd.(2 * i))
      +. (w *. (k0d.((2 * i) + 1) +. k1d.((2 * i) + 1)))
  done;
  (* y = C^{-1} b is both the first iterate and the refinement anchor *)
  Lu.solve_complex_into st.dlhs ~b:work.wb ~into:work.wy;
  Cvec.copy_into work.wy ~into;
  let yd = Cvec.data work.wy
  and zd = Cvec.data work.wz
  and od = Cvec.data into in
  for _ = 1 to iters do
    Lu.solve_complex_into st.dlhs ~b:into ~into:work.wz;
    for i = 0 to n - 1 do
      od.(2 * i) <- yd.(2 * i) +. (beta *. zd.((2 * i) + 1));
      od.((2 * i) + 1) <- yd.((2 * i) + 1) -. (beta *. zd.(2 * i))
    done
  done;
  Scnoise_linalg.Sanitize.check_cvec "Ctrapezoid.step_demod" into
