module Cvec = Scnoise_linalg.Cvec
module Cmat = Scnoise_linalg.Cmat
module Clu = Scnoise_linalg.Clu
module Mat = Scnoise_linalg.Mat
module Cx = Scnoise_linalg.Cx

module Obs = Scnoise_obs.Obs

type stepper = {
  h : float;
  lhs : Clu.t; (* I - h/2 (A - sI) *)
  rhs : Cmat.t; (* I + h/2 (A - sI) *)
}

let c_steps = Obs.counter "ode_steps"

let shifted_half a shift h =
  (* h/2 (A - shift I) as a complex matrix *)
  let n = Mat.rows a in
  Cmat.init n n (fun i j ->
      let re = 0.5 *. h *. Mat.get a i j in
      if i = j then Cx.( -: ) (Cx.re re) (Cx.scale (0.5 *. h) shift)
      else Cx.re re)

let make ~a ~shift ~h =
  if not (Mat.is_square a) then invalid_arg "Ctrapezoid.make: not square";
  if h <= 0.0 then invalid_arg "Ctrapezoid.make: h <= 0";
  Scnoise_linalg.Sanitize.check_mat "Ctrapezoid.make" a;
  let n = Mat.rows a in
  let ident = Cmat.identity n in
  let half = shifted_half a shift h in
  { h; lhs = Clu.factor (Cmat.sub ident half); rhs = Cmat.add ident half }

let step st ~p ~k0 ~k1 =
  Obs.incr c_steps;
  let b = Cmat.mul_vec st.rhs p in
  let w = Cx.re (0.5 *. st.h) in
  let b =
    Array.mapi
      (fun i bi -> Cx.( +: ) bi (Cx.( *: ) w (Cx.( +: ) k0.(i) k1.(i))))
      b
  in
  let x = Clu.solve st.lhs b in
  Scnoise_linalg.Sanitize.check_cvec "Ctrapezoid.step" x;
  x

let step_homogeneous st p =
  Obs.incr c_steps;
  Clu.solve st.lhs (Cmat.mul_vec st.rhs p)

let trajectory ~a ~shift ~forcing ~h ~steps p0 =
  if steps < 1 then invalid_arg "Ctrapezoid.trajectory: steps < 1";
  let st = make ~a ~shift ~h in
  let out = Array.make (steps + 1) p0 in
  let p = ref p0 in
  let k = ref (forcing 0) in
  for i = 1 to steps do
    let k_next = forcing i in
    p := step st ~p:!p ~k0:!k ~k1:k_next;
    k := k_next;
    out.(i) <- !p
  done;
  out
