module Cvec = Scnoise_linalg.Cvec
module Cmat = Scnoise_linalg.Cmat
module Clu = Scnoise_linalg.Clu
module Lu = Scnoise_linalg.Lu
module Mat = Scnoise_linalg.Mat
module Cx = Scnoise_linalg.Cx

module Obs = Scnoise_obs.Obs

type stepper = {
  h : float;
  n : int;
  lhs : Clu.t; (* I - h/2 (A - sI) *)
  rhs : Cmat.t; (* I + h/2 (A - sI) *)
  sb : Cvec.t; (* per-stepper rhs scratch *)
  sw : float array; (* per-stepper solve workspace *)
}

let c_steps = Obs.counter "ode_steps"

let c_demod_steps = Obs.counter "ode_demod_steps"

let c_demod_refines = Obs.counter "ode_demod_refines"

let shifted_half a shift h =
  (* h/2 (A - shift I) as a complex matrix *)
  let n = Mat.rows a in
  Cmat.init n n (fun i j ->
      let re = 0.5 *. h *. Mat.get a i j in
      if i = j then Cx.( -: ) (Cx.re re) (Cx.scale (0.5 *. h) shift)
      else Cx.re re)

let make ~a ~shift ~h =
  if not (Mat.is_square a) then invalid_arg "Ctrapezoid.make: not square";
  if h <= 0.0 then invalid_arg "Ctrapezoid.make: h <= 0";
  Scnoise_linalg.Sanitize.check_mat "Ctrapezoid.make" a;
  let n = Mat.rows a in
  let ident = Cmat.identity n in
  let half = shifted_half a shift h in
  {
    h;
    n;
    lhs = Clu.factor (Cmat.sub ident half);
    rhs = Cmat.add ident half;
    sb = Cvec.create n;
    sw = Array.make (2 * n) 0.0;
  }

(* Steppers carry their own scratch, so one stepper must not be driven
   from two domains at once; the BVP layer keeps its caches
   per-solve (hence per-domain). *)
let step_into st ~p ~k0 ~k1 ~into =
  Obs.incr c_steps;
  Cmat.mul_vec_into st.rhs p ~into:st.sb;
  let w = 0.5 *. st.h in
  let bd = Cvec.data st.sb
  and k0d = Cvec.data k0
  and k1d = Cvec.data k1 in
  for k = 0 to (2 * st.n) - 1 do
    bd.(k) <- bd.(k) +. (w *. (k0d.(k) +. k1d.(k)))
  done;
  Clu.solve_into st.lhs ~work:st.sw ~b:st.sb ~into;
  Scnoise_linalg.Sanitize.check_cvec "Ctrapezoid.step" into

let step st ~p ~k0 ~k1 =
  let out = Cvec.create st.n in
  step_into st ~p ~k0 ~k1 ~into:out;
  out

let step_homogeneous st p =
  Obs.incr c_steps;
  Clu.solve st.lhs (Cmat.mul_vec st.rhs p)

let trajectory ~a ~shift ~forcing ~h ~steps p0 =
  if steps < 1 then invalid_arg "Ctrapezoid.trajectory: steps < 1";
  let st = make ~a ~shift ~h in
  let out = Array.make (steps + 1) p0 in
  let p = ref p0 in
  let k = ref (forcing 0) in
  for i = 1 to steps do
    let k_next = forcing i in
    p := step st ~p:!p ~k0:!k ~k1:k_next;
    k := k_next;
    out.(i) <- !p
  done;
  out

(* --- reusable shifted stepper ---

   The demodulated fallback needs a classic shifted stepper per
   (phase, h) at frequencies where the refinement contraction is too
   slow.  Building one with [make] per frequency point allocates the
   LHS/RHS matrices and a fresh factorisation each time; this variant
   keeps all buffers and refactors in place only when the shift
   actually changes.  The matrix fill replicates [make]'s arithmetic
   term by term ([shifted_half] followed by [Cmat.sub]/[Cmat.add]
   against the identity), so a retuned stepper is bit-identical to a
   freshly made one. *)

type reusable = {
  xh : float;
  xn : int;
  xa : Mat.t; (* kept for refactorisation *)
  xmat : Cmat.t; (* LHS build scratch *)
  xlhs : Clu.t;
  xrhs : Cmat.t;
  mutable xomega : float; (* shift currently factored, s = j omega *)
  mutable xfresh : bool;
  xsb : Cvec.t;
  xsw : float array;
}

let c_retunes = Obs.counter "ode_stepper_retunes"

let make_reusable ~a ~h =
  if not (Mat.is_square a) then
    invalid_arg "Ctrapezoid.make_reusable: not square";
  if h <= 0.0 then invalid_arg "Ctrapezoid.make_reusable: h <= 0";
  Scnoise_linalg.Sanitize.check_mat "Ctrapezoid.make_reusable" a;
  let n = Mat.rows a in
  {
    xh = h;
    xn = n;
    xa = a;
    xmat = Cmat.create n n;
    xlhs = Clu.create n;
    xrhs = Cmat.create n n;
    xomega = 0.0;
    xfresh = false;
    xsb = Cvec.create n;
    xsw = Array.make (2 * n) 0.0;
  }

let retune st ~omega =
  if not (st.xfresh && st.xomega = omega) then begin
    Obs.incr c_retunes;
    let n = st.xn in
    let w = 0.5 *. st.xh in
    let swo = w *. omega in
    let ld = Cmat.data st.xmat and rd = Cmat.data st.xrhs in
    let ad = Mat.data st.xa in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let re = w *. ad.((i * n) + j) in
        let k = 2 * ((i * n) + j) in
        if i = j then begin
          (* half = (re, 0) - w * (0, omega) elementwise *)
          ld.(k) <- 1.0 -. (re -. 0.0);
          ld.(k + 1) <- 0.0 -. (0.0 -. swo);
          rd.(k) <- 1.0 +. (re -. 0.0);
          rd.(k + 1) <- 0.0 +. (0.0 -. swo)
        end
        else begin
          ld.(k) <- 0.0 -. re;
          ld.(k + 1) <- 0.0 -. 0.0;
          rd.(k) <- 0.0 +. re;
          rd.(k + 1) <- 0.0 +. 0.0
        end
      done
    done;
    Clu.factor_into st.xlhs st.xmat;
    st.xomega <- omega;
    st.xfresh <- true
  end

let step_reusable_into st ~p ~k0 ~k1 ~into =
  if not st.xfresh then invalid_arg "Ctrapezoid.step_reusable_into: not tuned";
  Obs.incr c_steps;
  Cmat.mul_vec_into st.xrhs p ~into:st.xsb;
  let w = 0.5 *. st.xh in
  let bd = Cvec.data st.xsb
  and k0d = Cvec.data k0
  and k1d = Cvec.data k1 in
  for k = 0 to (2 * st.xn) - 1 do
    bd.(k) <- bd.(k) +. (w *. (k0d.(k) +. k1d.(k)))
  done;
  Clu.solve_into st.xlhs ~work:st.xsw ~b:st.xsb ~into;
  Scnoise_linalg.Sanitize.check_cvec "Ctrapezoid.step" into

(* --- demodulated stepper ---

   For the shifted system dP/dt = (A - jw I) P + k the trapezoid LHS is
   (I - h/2 A) + j (wh/2) I = C + j beta I with C real and frequency
   independent.  We factor C once (real LU) and recover the *exact*
   shifted-trapezoid update by the contraction

     x_{m+1} = C^{-1} b - j beta C^{-1} x_m,

   whose fixed point solves (C + j beta I) x = b and whose error decays
   by rho = |beta| ||C^{-1}|| per iteration.  [demod_iters] turns rho
   into a deterministic iteration count (frequency only — no
   data-dependent convergence test, keeping sweeps bit-reproducible at
   any job count), or rejects the frequency when the contraction is too
   slow to beat a complex refactorisation. *)

type demod = {
  dh : float;
  dn : int;
  dlhs : Lu.t; (* C = I - h/2 A, real *)
  drhs : float array; (* D = I + h/2 A, row-major n^2 *)
  dinv_norm1 : float; (* ||C^{-1}||_1, exact *)
}

type demod_work = { wb : Cvec.t; wy : Cvec.t; wz : Cvec.t }

let demod_work n = { wb = Cvec.create n; wy = Cvec.create n; wz = Cvec.create n }

let demod_dim st = st.dn

let make_demod ~a ~h =
  if not (Mat.is_square a) then invalid_arg "Ctrapezoid.make_demod: not square";
  if h <= 0.0 then invalid_arg "Ctrapezoid.make_demod: h <= 0";
  Scnoise_linalg.Sanitize.check_mat "Ctrapezoid.make_demod" a;
  let n = Mat.rows a in
  let w = 0.5 *. h in
  let c =
    Mat.init n n (fun i j ->
        let d = if i = j then 1.0 else 0.0 in
        d -. (w *. Mat.get a i j))
  in
  let drhs = Array.make (n * n) 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let d = if i = j then 1.0 else 0.0 in
      drhs.((i * n) + j) <- d +. (w *. Mat.get a i j)
    done
  done;
  let dlhs = Lu.factor c in
  (* exact ||C^{-1}||_1 = max over columns of sum |C^{-1} e_j| *)
  let e = Array.make n 0.0 and x = Array.make n 0.0 in
  let best = ref 0.0 in
  for j = 0 to n - 1 do
    e.(j) <- 1.0;
    Lu.solve_into dlhs ~b:e ~into:x;
    let s = ref 0.0 in
    for i = 0 to n - 1 do
      s := !s +. abs_float x.(i)
    done;
    if !s > !best then best := !s;
    e.(j) <- 0.0
  done;
  { dh = h; dn = n; dlhs; drhs; dinv_norm1 = !best }

(* Per-iteration contraction rho^m must push the refinement error below
   [demod_tol] relative; past [demod_max_iters] iterations the refined
   solve is no cheaper than a complex refactorisation amortised over a
   cached stepper, so the caller should fall back. *)
let demod_tol = 1e-13

let demod_max_iters = 12

(* Distribution of refinement iteration counts chosen per frequency
   point (exact integer buckets); a fallback rejection records as the
   overflow bucket's predecessor via [demod_max_iters + 1].  Always-on
   numeric-health telemetry, one atomic add per query. *)
let h_demod_iters = Obs.histogram ~mode:Scnoise_obs.Hist.Counts "ode.demod_iters"

let demod_iters st ~omega =
  let beta = 0.5 *. st.dh *. abs_float omega in
  let rho = beta *. st.dinv_norm1 in
  let m =
    if rho = 0.0 then 0
    else if rho >= 0.25 then -1
    else
      let m = max 1 (int_of_float (ceil (log demod_tol /. log rho))) in
      if m > demod_max_iters then -1 else m
  in
  Obs.hist_record_int h_demod_iters (if m < 0 then demod_max_iters + 1 else m);
  m

let step_demod_into st ~work ~omega ~iters ~p ~k0 ~k1 ~into =
  Obs.incr c_steps;
  Obs.incr c_demod_steps;
  if iters > 0 then Obs.add c_demod_refines iters;
  let n = st.dn in
  if Cvec.dim p <> n || Cvec.dim k0 <> n || Cvec.dim k1 <> n || Cvec.dim into <> n
  then invalid_arg "Ctrapezoid.step_demod_into: dimension mismatch";
  let beta = 0.5 *. st.dh *. omega in
  let w = 0.5 *. st.dh in
  let pd = Cvec.data p
  and k0d = Cvec.data k0
  and k1d = Cvec.data k1
  and bd = Cvec.data work.wb in
  (* b = (D - j beta I) p + h/2 (k0 + k1), with real D *)
  for i = 0 to n - 1 do
    let base = i * n in
    let re = ref 0.0 and im = ref 0.0 in
    for j = 0 to n - 1 do
      let a = st.drhs.(base + j) in
      re := !re +. (a *. pd.(2 * j));
      im := !im +. (a *. pd.((2 * j) + 1))
    done;
    bd.(2 * i) <-
      !re +. (beta *. pd.((2 * i) + 1))
      +. (w *. (k0d.(2 * i) +. k1d.(2 * i)));
    bd.((2 * i) + 1) <-
      !im -. (beta *. pd.(2 * i))
      +. (w *. (k0d.((2 * i) + 1) +. k1d.((2 * i) + 1)))
  done;
  (* y = C^{-1} b is both the first iterate and the refinement anchor *)
  Lu.solve_complex_into st.dlhs ~b:work.wb ~into:work.wy;
  Cvec.copy_into work.wy ~into;
  let yd = Cvec.data work.wy
  and zd = Cvec.data work.wz
  and od = Cvec.data into in
  for _ = 1 to iters do
    Lu.solve_complex_into st.dlhs ~b:into ~into:work.wz;
    for i = 0 to n - 1 do
      od.(2 * i) <- yd.(2 * i) +. (beta *. zd.((2 * i) + 1));
      od.((2 * i) + 1) <- yd.((2 * i) + 1) -. (beta *. zd.(2 * i))
    done
  done;
  Scnoise_linalg.Sanitize.check_cvec "Ctrapezoid.step_demod" into
