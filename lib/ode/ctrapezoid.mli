(** Trapezoidal integration for complex shifted linear systems
    [dP/dt = (A - s I) P + k(t)] with real [A] and complex shift [s].

    This is the equation obeyed by the periodic envelope of the
    cross-spectral density in the mixed-frequency-time method, where
    [s = j w] for analysis frequency [w].

    Two stepper families are provided: the classic {!stepper} factors
    the complex LHS [I - h/2 (A - sI)] per (shift, h), while the
    {!demod} stepper factors only the *real*, frequency-independent
    part [I - h/2 A] once and recovers the exact shifted update by a
    fixed number of refinement iterations — the LU can then be shared
    by every frequency of a sweep. *)

module Cvec = Scnoise_linalg.Cvec
module Mat = Scnoise_linalg.Mat
module Cx = Scnoise_linalg.Cx

type stepper

val make : a:Mat.t -> shift:Cx.t -> h:float -> stepper
(** Prepare a stepper for [dP/dt = (A - shift·I) P + k]. *)

val step : stepper -> p:Cvec.t -> k0:Cvec.t -> k1:Cvec.t -> Cvec.t

val step_into :
  stepper -> p:Cvec.t -> k0:Cvec.t -> k1:Cvec.t -> into:Cvec.t -> unit
(** Allocation-free {!step} using the stepper's own scratch; [into]
    may alias [p].  Because of that scratch a single stepper must not
    be shared across domains. *)

val step_homogeneous : stepper -> Cvec.t -> Cvec.t

val trajectory :
  a:Mat.t -> shift:Cx.t -> forcing:(int -> Cvec.t) -> h:float -> steps:int ->
  Cvec.t -> Cvec.t array
(** [trajectory ~a ~shift ~forcing ~h ~steps p0] integrates from sample 0
    to sample [steps] with the forcing given by its grid samples
    ([forcing i] is [k] at [t = i h]); returns all [steps + 1] states. *)

(** {1 Reusable shifted stepper}

    A classic shifted stepper whose buffers and factorisation are
    reused across frequencies: {!retune} refills and refactors in
    place only when the shift changes, producing results bit-identical
    to a stepper freshly built with {!make} at the same shift.  Used
    as the allocation-free fallback of the demodulated backend.  Like
    {!stepper} it carries scratch and must not be shared across
    domains. *)

type reusable

val make_reusable : a:Mat.t -> h:float -> reusable

val retune : reusable -> omega:float -> unit
(** Factor the LHS for shift [s = j omega] (no-op when already tuned
    to this [omega]). *)

val step_reusable_into :
  reusable -> p:Cvec.t -> k0:Cvec.t -> k1:Cvec.t -> into:Cvec.t -> unit
(** As {!step_into}; raises [Invalid_argument] before the first
    {!retune}. *)

(** {1 Demodulated stepper}

    The shifted trapezoid LHS splits as [(I - h/2 A) + j (wh/2) I =
    C + j beta I] with [C] real and frequency-independent.  [C] is
    factored once; each step then solves the exact shifted system by
    the contraction [x <- C^{-1} b - j beta C^{-1} x], which converges
    at rate [rho = |beta| ||C^{-1}||_1] per iteration.  The iteration
    count is a deterministic function of the frequency alone
    ({!demod_iters}), so parallel sweeps stay bit-reproducible. *)

type demod

type demod_work
(** Three n-vectors of scratch for {!step_demod_into}.  Owned by the
    caller (one per domain in pooled sweeps): demod steppers are
    immutable and may be shared freely. *)

val make_demod : a:Mat.t -> h:float -> demod
(** Factor [C = I - h/2 A] (real LU) and compute the exact
    [||C^{-1}||_1] that prices the refinement. *)

val demod_work : int -> demod_work

val demod_dim : demod -> int

val demod_iters : demod -> omega:float -> int
(** Refinement iterations needed at this frequency: [0] at [omega =
    0], a positive count when the contraction reaches 1e-13 within the
    iteration budget, and [-1] when it cannot — the caller should use
    a classic shifted {!stepper} instead. *)

val demod_refinable : demod -> omega:float -> bool
(** Whether {!demod_iters} would be non-negative at this frequency,
    without recording telemetry — the batching predicate of the sweep
    layer, which probes every stepper before committing a block to the
    blocked path. *)

val step_demod_into :
  demod -> work:demod_work -> omega:float -> iters:int -> p:Cvec.t ->
  k0:Cvec.t -> k1:Cvec.t -> into:Cvec.t -> unit
(** One exact shifted-trapezoid step at [omega] using [iters]
    refinement iterations (from {!demod_iters} at the same [omega]).
    [into] may alias [p] but not the scratch vectors. *)

(** {1 Blocked demodulated stepper}

    Advances [width] frequencies' envelopes through the same interval
    with panel solves ({!Cvec.panel} layout): the real factors of [C]
    are traversed once per block instead of once per frequency.  Each
    column is bitwise identical to {!step_demod_into} at its
    frequency; columns whose refinement count is exhausted are masked
    out of later update passes, never recomputed. *)

type block_work
(** Panel scratch for {!step_block_into}, sized for a fixed
    (dimension, width) pair.  Owned by the caller, one per domain. *)

val block_work : dim:int -> width:int -> block_work
(** Raises [Invalid_argument] when [width < 1]. *)

val block_width : block_work -> int

val step_block_into :
  demod -> work:block_work -> omegas:float array -> iters:int array ->
  p:Cvec.panel -> k0:Cvec.t -> k1:Cvec.t -> into:Cvec.panel -> unit
(** One blocked step: column [b] advances the envelope at
    [omegas.(b)] with [iters.(b)] refinement iterations (each from
    {!demod_iters} at that frequency; all must be non-negative —
    unbatchable frequencies belong on the scalar path).  [omegas] and
    [iters] must have length [block_width work], and the panels must
    be sized for (demod dimension, that width).  [into] must not alias
    [p] or the scratch panels.  The forcing [k0]/[k1] is shared by all
    columns (it is frequency-independent in the MFT formulation). *)
