(* Domain pool built on Domain + Mutex/Condition only (no domainslib).

   One parallel region at a time: the submitter publishes a job (an
   atomic item cursor over [0, n)), wakes the workers, claims chunks
   itself, and then waits until every worker has acknowledged the job.
   Work distribution is dynamic (whoever is free grabs the next chunk)
   but all result placement is by item index, so scheduling never
   affects results.  A second region submitted while one is in flight —
   including from inside a worker — runs inline serially instead of
   queueing, which keeps nested uses (e.g. a parallel sweep whose body
   reaches another parallelised entry point) deadlock-free. *)

module Obs = Scnoise_obs.Obs

let c_regions = Obs.counter "pool.regions"

let c_serial_regions = Obs.counter "pool.serial_regions"

let c_chunks = Obs.counter "pool.chunks"

let c_worker_chunks = Obs.counter "pool.worker_chunks"

let c_items = Obs.counter "pool.items"

type job = {
  n : int;
  chunk : int;
  next : int Atomic.t; (* item cursor *)
  body : int -> unit;
  poisoned : bool Atomic.t; (* stop claiming: an item raised *)
  mutable failure : (int * exn * Printexc.raw_backtrace) option;
      (* lowest-indexed failing item wins, for deterministic re-raise *)
  mutable worker_spans : Obs.span list; (* drained off worker domains *)
}

type t = {
  jobs : int;
  mutex : Mutex.t;
  work_cond : Condition.t; (* workers wait here between jobs *)
  done_cond : Condition.t; (* submitter waits here for acks *)
  mutable job : job option;
  mutable generation : int;
  mutable pending_acks : int;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
  busy : bool Atomic.t; (* region in flight (reentrancy guard) *)
}

let clamp_jobs j = max 1 (min 64 j)

let jobs t = t.jobs

let run_serially t = t.jobs = 1 || t.workers = []

(* ---- chunk execution (shared by submitter and workers) ---- *)

let record_failure t job i exn bt =
  Mutex.lock t.mutex;
  (match job.failure with
  | Some (j, _, _) when j <= i -> ()
  | Some _ | None -> job.failure <- Some (i, exn, bt));
  Mutex.unlock t.mutex;
  Atomic.set job.poisoned true

let run_chunks t job ~is_worker =
  let rec claim () =
    if not (Atomic.get job.poisoned) then begin
      let start = Atomic.fetch_and_add job.next job.chunk in
      if start < job.n then begin
        let stop = min job.n (start + job.chunk) in
        Obs.incr c_chunks;
        if is_worker then Obs.incr c_worker_chunks;
        Obs.add c_items (stop - start);
        let run_items () =
          try
            for i = start to stop - 1 do
              job.body i
            done
          with exn ->
            let bt = Printexc.get_raw_backtrace () in
            record_failure t job start exn bt
        in
        (* Each claimed chunk becomes a trace span carrying the item
           range, so a timeline shows exactly how the dynamic scheduler
           carved the region across domains. *)
        if Obs.is_enabled () then
          Obs.with_span "pool.chunk"
            ~args:
              [
                ("first_item", float_of_int start);
                ("items", float_of_int (stop - start));
              ]
            run_items
        else run_items ();
        claim ()
      end
    end
  in
  claim ()

(* ---- workers ---- *)

let worker_loop t =
  let rec wait_for_job seen_gen =
    Mutex.lock t.mutex;
    while (not t.stopping) && t.generation = seen_gen do
      Condition.wait t.work_cond t.mutex
    done;
    if t.stopping then Mutex.unlock t.mutex
    else begin
      let gen = t.generation in
      let job = t.job in
      Mutex.unlock t.mutex;
      (match job with
      | Some job ->
          run_chunks t job ~is_worker:true;
          (* Re-home any spans this worker recorded so the submitter can
             graft them under the region's enclosing span; drain even
             when recording is off so stale frames never accumulate. *)
          let spans = Obs.drain_domain_spans () in
          Mutex.lock t.mutex;
          if spans <> [] then job.worker_spans <- job.worker_spans @ spans;
          t.pending_acks <- t.pending_acks - 1;
          if t.pending_acks = 0 then Condition.broadcast t.done_cond;
          Mutex.unlock t.mutex
      | None -> ());
      wait_for_job gen
    end
  in
  wait_for_job 0

(* ---- lifecycle ---- *)

let requested_default = ref None

let env_jobs () =
  match Sys.getenv_opt "SCNOISE_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> Some (clamp_jobs j)
      | Some _ | None -> None)

let default_jobs () =
  match !requested_default with
  | Some j -> j
  | None -> (
      match env_jobs () with
      | Some j -> j
      | None -> clamp_jobs (Domain.recommended_domain_count ()))

let create ?jobs () =
  let jobs =
    clamp_jobs (match jobs with Some j -> j | None -> default_jobs ())
  in
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work_cond = Condition.create ();
      done_cond = Condition.create ();
      job = None;
      generation = 0;
      pending_acks = 0;
      stopping = false;
      workers = [];
      busy = Atomic.make false;
    }
  in
  if jobs > 1 then
    t.workers <-
      List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  let workers =
    if t.workers = [] then []
    else begin
      Mutex.lock t.mutex;
      let ws = t.workers in
      t.workers <- [];
      t.stopping <- true;
      Condition.broadcast t.work_cond;
      Mutex.unlock t.mutex;
      ws
    end
  in
  List.iter Domain.join workers

(* ---- regions ---- *)

let serial_region n body =
  Obs.incr c_serial_regions;
  for i = 0 to n - 1 do
    body i
  done

let parallel_for t ~n body =
  if n <= 0 then ()
  else if run_serially t || n = 1 then serial_region n body
  else if not (Atomic.compare_and_set t.busy false true) then
    (* nested or concurrent region: run inline, never queue *)
    serial_region n body
  else
    Fun.protect
      ~finally:(fun () -> Atomic.set t.busy false)
      (fun () ->
        Obs.incr c_regions;
        (* a few chunks per domain for load balance without contention *)
        let chunk = max 1 (n / (t.jobs * 4)) in
        let job =
          {
            n;
            chunk;
            next = Atomic.make 0;
            body;
            poisoned = Atomic.make false;
            failure = None;
            worker_spans = [];
          }
        in
        Mutex.lock t.mutex;
        t.job <- Some job;
        t.generation <- t.generation + 1;
        t.pending_acks <- List.length t.workers;
        Condition.broadcast t.work_cond;
        Mutex.unlock t.mutex;
        run_chunks t job ~is_worker:false;
        Mutex.lock t.mutex;
        while t.pending_acks > 0 do
          Condition.wait t.done_cond t.mutex
        done;
        t.job <- None;
        Mutex.unlock t.mutex;
        Obs.absorb_spans job.worker_spans;
        match job.failure with
        | Some (_, exn, bt) -> Printexc.raise_with_backtrace exn bt
        | None -> ())

let map t f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    parallel_for t ~n (fun i -> results.(i) <- Some (f i arr.(i)));
    Array.map
      (function Some v -> v | None -> invalid_arg "Pool.map: item skipped")
      results
  end

let map_reduce t ~n ~map:f ~init ~merge =
  if n <= 0 then init
  else begin
    let results = Array.make n None in
    parallel_for t ~n (fun i -> results.(i) <- Some (f i));
    Array.fold_left
      (fun acc r ->
        match r with
        | Some v -> merge acc v
        | None -> invalid_arg "Pool.map_reduce: item skipped")
      init results
  end

(* ---- shared default pool ---- *)

let global_pool = ref None

let global_mutex = Mutex.create ()

let () =
  at_exit (fun () ->
      Mutex.lock global_mutex;
      let p = !global_pool in
      global_pool := None;
      Mutex.unlock global_mutex;
      Option.iter shutdown p)

let global () =
  Mutex.lock global_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock global_mutex)
    (fun () ->
      let want = default_jobs () in
      match !global_pool with
      | Some p when p.jobs = want -> p
      | prev ->
          (* workers never touch [global_mutex], so joining them while
             holding it cannot deadlock *)
          Option.iter shutdown prev;
          let p = create ~jobs:want () in
          global_pool := Some p;
          p)

let set_default_jobs j = requested_default := Some (clamp_jobs j)
