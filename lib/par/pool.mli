(** A dependency-free OCaml 5 domain pool for the embarrassingly
    parallel loops of the MFT pipeline (per-frequency periodic BVP
    solves, Monte-Carlo paths, per-interval Van Loan discretisations).

    Design constraints, in order:

    - {b Determinism.}  [map] and [map_reduce] return (and fold) results
      in item order no matter which domain computed what, so any
      parallelised computation whose items are independent produces
      bit-identical results at every job count.
    - {b Serial bypass.}  A pool created with [jobs = 1] spawns no
      domains and runs every region inline on the caller; single-job
      behaviour is byte-for-byte the code path of a plain loop.
    - {b Reentrancy.}  A region submitted while another region is in
      flight (including from inside a worker) falls back to inline
      serial execution instead of deadlocking.
    - {b Exceptions cross the join.}  If any item raises (e.g. a
      [Sanitize.Nonfinite] from a worker domain), the remaining work is
      cancelled, all workers quiesce, and the exception of the
      lowest-indexed failing item is re-raised on the submitting domain
      with its original backtrace.  The pool stays usable afterwards.

    Observability: regions/chunks/items flow into the [pool.*] counter
    group, and spans recorded on worker domains are re-homed under the
    submitting domain's open span, so instrumented parallel sweeps keep
    a coherent span tree. *)

type t

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains (the submitting
    domain participates in every region).  [jobs] defaults to
    {!default_jobs}; values are clamped to [1 .. 64]. *)

val jobs : t -> int

val shutdown : t -> unit
(** Join the worker domains.  Idempotent; the pool afterwards runs
    every region serially. *)

val parallel_for : t -> n:int -> (int -> unit) -> unit
(** [parallel_for t ~n f] runs [f 0 .. f (n-1)] across the pool in
    chunks.  [f] must only write state private to item [i]. *)

val map : t -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** Deterministic parallel [Array.mapi]: result index [i] holds
    [f i a.(i)] regardless of scheduling. *)

val map_reduce :
  t -> n:int -> map:(int -> 'a) -> init:'acc -> merge:('acc -> 'a -> 'acc) ->
  'acc
(** Compute [map i] for [i = 0 .. n-1] in parallel, then fold the
    results with [merge] strictly in index order on the calling domain —
    the deterministic reduce used to keep Monte-Carlo accumulation
    bit-identical at every job count. *)

val run_serially : t -> bool
(** True when the pool bypasses domains entirely ([jobs = 1] or after
    {!shutdown}) — lets callers keep allocation-free serial paths. *)

(** {2 Process-wide default pool}

    Analysis entry points default to a lazily created shared pool so
    that the CLI / benches configure parallelism once.  Sizing: an
    explicit {!set_default_jobs} (the [--jobs] flag) beats the
    [SCNOISE_JOBS] environment variable beats
    [Domain.recommended_domain_count ()]. *)

val default_jobs : unit -> int

val set_default_jobs : int -> unit
(** Override the default job count (clamped to [1 .. 64]).  Takes
    effect on the next {!global} call; an existing global pool of a
    different size is shut down and replaced. *)

val global : unit -> t
(** The shared pool, created on first use and resized on demand; shut
    down automatically at exit. *)
