module Loc = Scnoise_lang.Loc
module Source = Scnoise_lang.Source
module Diag = Scnoise_lang.Diag
module Json = Scnoise_obs.Json
module Obs = Scnoise_obs.Obs

type severity = Error | Warning | Info

let severity_label = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

type t = {
  rule : string;
  severity : severity;
  subject : string;
  message : string;
  loc : Loc.t option;
}

let make ?loc ~rule ~severity ~subject message =
  { rule; severity; subject; message; loc }

let compare a b =
  let c = Stdlib.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.rule b.rule in
    if c <> 0 then c else String.compare a.subject b.subject

let sort fs = List.stable_sort compare fs

let to_string f =
  Printf.sprintf "%s[%s] %s" (severity_label f.severity) f.rule f.message

let render ?source f =
  match (f.loc, source) with
  | Some loc, Some src ->
      Diag.render src loc
        (Printf.sprintf "%s[%s] %s" (severity_label f.severity) f.rule
           f.message)
  | _ -> to_string f

let to_json f =
  Json.Obj
    [
      ("rule", Json.Str f.rule);
      ("severity", Json.Str (severity_label f.severity));
      ("subject", Json.Str f.subject);
      ("message", Json.Str f.message);
      ( "loc",
        match f.loc with
        | Some l -> Json.Str (Loc.to_string l)
        | None -> Json.Null );
    ]

let errors fs = List.length (List.filter (fun f -> f.severity = Error) fs)

let warnings fs = List.length (List.filter (fun f -> f.severity = Warning) fs)

let c_errors = Obs.counter "check.findings.error"

let c_warnings = Obs.counter "check.findings.warning"

let record fs =
  Obs.add c_errors (errors fs);
  Obs.add c_warnings (warnings fs)
