module Loc = Scnoise_lang.Loc
module Source = Scnoise_lang.Source
module Diag = Scnoise_lang.Diag
module Json = Scnoise_obs.Json
module Obs = Scnoise_obs.Obs

type severity = Error | Warning | Info

let severity_label = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

type t = {
  rule : string;
  severity : severity;
  subject : string;
  message : string;
  loc : Loc.t option;
  anchor : string option;
}

let make ?loc ?anchor ~rule ~severity ~subject message =
  { rule; severity; subject; message; loc; anchor }

let compare a b =
  let c = Stdlib.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.rule b.rule in
    if c <> 0 then c
    else
      let c = String.compare a.subject b.subject in
      if c <> 0 then c else String.compare a.message b.message

let sort fs = List.stable_sort compare fs

let to_string f =
  Printf.sprintf "%s[%s] %s" (severity_label f.severity) f.rule f.message

let render ?source f =
  match (f.loc, source) with
  | Some loc, Some src ->
      Diag.render src loc
        (Printf.sprintf "%s[%s] %s" (severity_label f.severity) f.rule
           f.message)
  | _ -> to_string f

let json_fields f =
  [
    ("rule", Json.Str f.rule);
    ("severity", Json.Str (severity_label f.severity));
    ("subject", Json.Str f.subject);
    ("message", Json.Str f.message);
  ]

let anchor_field f =
  [
    ( "anchor",
      match f.anchor with Some a -> Json.Str a | None -> Json.Null );
  ]

let to_json f =
  Json.Obj
    (json_fields f
    @ [
        ( "loc",
          match f.loc with
          | Some l -> Json.Str (Loc.to_string l)
          | None -> Json.Null );
      ]
    @ anchor_field f)

let to_json_positionless f = Json.Obj (json_fields f @ anchor_field f)

let of_json j =
  match j with
  | Json.Obj fields ->
      let str k =
        match List.assoc_opt k fields with
        | Some (Json.Str s) -> Some s
        | _ -> None
      in
      let severity_of_label = function
        | "error" -> Some Error
        | "warning" -> Some Warning
        | "info" -> Some Info
        | _ -> None
      in
      Option.bind (str "rule") (fun rule ->
          Option.bind (str "severity") (fun sl ->
              Option.bind (severity_of_label sl) (fun severity ->
                  Option.bind (str "subject") (fun subject ->
                      Option.map
                        (fun message ->
                          make ?anchor:(str "anchor") ~rule ~severity ~subject
                            message)
                        (str "message")))))
  | _ -> None

let errors fs = List.length (List.filter (fun f -> f.severity = Error) fs)

let warnings fs = List.length (List.filter (fun f -> f.severity = Warning) fs)

let c_errors = Obs.counter "check.findings.error"

let c_warnings = Obs.counter "check.findings.warning"

(* rule ids all start "ERCnnn-"; the per-rule counter keys on that
   stable prefix so renaming a rule's slug never splits its series *)
let rule_key rule =
  match String.index_opt rule '-' with
  | Some i -> String.sub rule 0 i
  | None -> rule

let record fs =
  Obs.add c_errors (errors fs);
  Obs.add c_warnings (warnings fs);
  List.iter
    (fun f -> Obs.incr (Obs.counter ("check.rule." ^ rule_key f.rule)))
    fs
