module Sparsity = Scnoise_circuit.Sparsity

let default_rtol = 1e-12

let rtol () =
  match Sys.getenv_opt "SCNOISE_ERC011_RTOL" with
  | Some s -> (
      match float_of_string_opt s with
      | Some v when v > 0.0 && v < 1.0 -> v
      | _ -> default_rtol)
  | None -> default_rtol

let rule = "ERC011-structural-singular"

(* ---- maximum bipartite matching (Kuhn's algorithm) ----

   [adj.(r)] lists the column indices row [r] may be matched to.
   Returns the matching as [match_of_col] (col → row or -1) plus the
   list of unmatched rows. *)
let kuhn n_rows n_cols adj =
  let match_of_col = Array.make n_cols (-1) in
  let visited = Array.make n_cols false in
  let rec try_row r =
    List.exists
      (fun c ->
        if visited.(c) then false
        else begin
          visited.(c) <- true;
          if match_of_col.(c) = -1 || try_row match_of_col.(c) then begin
            match_of_col.(c) <- r;
            true
          end
          else false
        end)
      adj.(r)
  in
  let unmatched = ref [] in
  for r = n_rows - 1 downto 0 do
    Array.fill visited 0 n_cols false;
    if not (try_row r) then unmatched := r :: !unmatched
  done;
  (match_of_col, !unmatched)

(* Hall violator: rows reachable from the unmatched rows by alternating
   paths (row → adjacent col → that col's matched row).  Its
   neighbourhood is strictly smaller than itself — the minimal
   structurally deficient row set of the DM decomposition. *)
let hall_violator n_rows adj match_of_col unmatched =
  let in_z = Array.make n_rows false in
  let rec grow r =
    if not in_z.(r) then begin
      in_z.(r) <- true;
      List.iter
        (fun c -> if match_of_col.(c) >= 0 then grow match_of_col.(c))
        adj.(r)
    end
  in
  List.iter grow unmatched;
  List.filter (fun r -> in_z.(r)) (List.init n_rows Fun.id)

(* [floating.(p).(i)] is ERC001's per-phase floating set: those defects
   are already reported exactly, so every analysis below skips them. *)
let check ~node_name ~locate_node ~floating (sp : Sparsity.t) =
  let tol = rtol () in
  let n = sp.Sparsity.n_nodes + 1 in
  let nph = sp.Sparsity.n_phases in
  let classes = sp.Sparsity.classes in
  let held i =
    match classes.(i) with
    | Sparsity.Ground | Sparsity.Driven_vsource | Sparsity.Driven_opamp -> true
    | Sparsity.Dynamic | Sparsity.Resistive -> false
  in
  let findings = ref [] in
  let reported : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let set_names nodes = List.map node_name (List.sort compare nodes) in
  let emit ~phase nodes message =
    let names = set_names nodes in
    let key =
      String.concat "," names
      ^ "@"
      ^ match phase with Some p -> string_of_int p | None -> "*"
    in
    if not (Hashtbl.mem reported key) then begin
      Hashtbl.add reported key ();
      let subject = List.hd names in
      findings :=
        Finding.make
          ?loc:(locate_node subject)
          ~anchor:("node:" ^ subject) ~rule ~severity:Finding.Error ~subject
          message
        :: !findings
    end
  in
  let braces names = "{" ^ String.concat ", " names ^ "}" in

  (* ---- Laplacian-block grounding strength ----

     A block of the form [L + g_gnd] with internal couplings ~S and
     total reference coupling g is a Laplacian pinned by g: its
     condition number is ~S/g however full its pattern is.  Flag blocks
     with 0 < g < tol*S; g = 0 exactly is ERC002 (capacitors) or ERC001
     (resistive nodes cut off entirely). *)
  let lap_block ~phase ~members ~internal_edges ~ground_strength ~what ~unit =
    let g = Graph.create n in
    List.iter (fun (a, b, _) -> Graph.union g a b) internal_edges;
    let comps : (int, int list ref) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun i ->
        let r = Graph.find g i in
        match Hashtbl.find_opt comps r with
        | Some l -> l := i :: !l
        | None -> Hashtbl.add comps r (ref [ i ]))
      members;
    let scale : (int, float) Hashtbl.t = Hashtbl.create 8 in
    let bump root v =
      let cur = Option.value ~default:0.0 (Hashtbl.find_opt scale root) in
      if v > cur then Hashtbl.replace scale root v
    in
    List.iter
      (fun (a, _, v) -> bump (Graph.find g a) v)
      internal_edges;
    let ground : (int, float) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun (i, v) ->
        let r = Graph.find g i in
        bump r v;
        Hashtbl.replace ground r
          (v +. Option.value ~default:0.0 (Hashtbl.find_opt ground r)))
      ground_strength;
    Hashtbl.iter
      (fun root members ->
        let members = !members in
        let gnd = Option.value ~default:0.0 (Hashtbl.find_opt ground root) in
        let s = Option.value ~default:0.0 (Hashtbl.find_opt scale root) in
        if gnd > 0.0 && s > 0.0 && gnd < tol *. s then
          let phase_s =
            match phase with
            | Some p -> Printf.sprintf "in phase %d" p
            | None -> "in every phase"
          in
          emit ~phase members
            (Printf.sprintf
               "%s %s is tied to its reference only through %g %s against an \
                internal scale of %g %s (ratio %.1e, below the %g structural \
                tolerance): its MNA block is structurally singular %s; \
                strengthen the parasitic path or merge the nodes"
               what
               (braces (set_names members))
               gnd unit s unit (gnd /. s) tol phase_s))
      comps
  in

  (* capacitor blocks: C_dd is phase independent *)
  let dyn_members =
    List.filter (fun i -> classes.(i) = Sparsity.Dynamic)
      (List.init (n - 1) (fun k -> k + 1))
  in
  let cap_internal =
    List.filter_map
      (fun (e : Sparsity.cap_edge) ->
        let a = e.Sparsity.c_n1 and b = e.Sparsity.c_n2 in
        if a > 0 && b > 0 && (not (held a)) && not (held b) then
          Some (a, b, e.Sparsity.c)
        else None)
      sp.Sparsity.cap_edges
  in
  let cap_ground =
    List.concat_map
      (fun (e : Sparsity.cap_edge) ->
        let a = e.Sparsity.c_n1 and b = e.Sparsity.c_n2 in
        let ha = a = 0 || held a and hb = b = 0 || held b in
        if ha && not hb then [ (b, e.Sparsity.c) ]
        else if hb && not ha then [ (a, e.Sparsity.c) ]
        else [])
      sp.Sparsity.cap_edges
  in
  lap_block ~phase:None ~members:dyn_members ~internal_edges:cap_internal
    ~ground_strength:cap_ground ~what:"capacitor block" ~unit:"F";

  (* resistive blocks: one G_rr per phase *)
  let res_members =
    List.filter (fun i -> classes.(i) = Sparsity.Resistive)
      (List.init (n - 1) (fun k -> k + 1))
  in
  for p = 0 to nph - 1 do
    let members = List.filter (fun i -> not floating.(p).(i)) res_members in
    let internal =
      List.filter_map
        (fun (e : Sparsity.cond_edge) ->
          let a = e.Sparsity.g_n1 and b = e.Sparsity.g_n2 in
          if
            a > 0 && b > 0
            && classes.(a) = Sparsity.Resistive
            && classes.(b) = Sparsity.Resistive
          then Some (a, b, e.Sparsity.g)
          else None)
        sp.Sparsity.cond_edges.(p)
    in
    let ground_strength =
      List.concat_map
        (fun (e : Sparsity.cond_edge) ->
          let a = e.Sparsity.g_n1 and b = e.Sparsity.g_n2 in
          let res i = i > 0 && classes.(i) = Sparsity.Resistive in
          if res a && not (res b) then [ (a, e.Sparsity.g) ]
          else if res b && not (res a) then [ (b, e.Sparsity.g) ]
          else [])
        sp.Sparsity.cond_edges.(p)
    in
    lap_block ~phase:(Some p) ~members ~internal_edges:internal
      ~ground_strength ~what:"resistive node set" ~unit:"S"
  done;

  (* ---- matching-based structural rank ----

     Entries below tol * (block scale) are structural zeros; a row whose
     every coefficient is negligible relative to the block it is
     factored with makes the block numerically rank-deficient even
     though connectivity is fine.  The bipartite matching names the
     minimal deficient node set (Hall violator). *)
  let matching_pass ~phase rows entries what =
    match rows with
    | [] -> ()
    | _ ->
        let idx : (int, int) Hashtbl.t = Hashtbl.create 16 in
        List.iteri (fun k i -> Hashtbl.add idx i k) rows;
        let nr = List.length rows in
        let mags : (int * int, float) Hashtbl.t = Hashtbl.create 32 in
        let addm i j v =
          match (Hashtbl.find_opt idx i, Hashtbl.find_opt idx j) with
          | Some r, Some c ->
              let k = (r, c) in
              Hashtbl.replace mags k
                (v +. Option.value ~default:0.0 (Hashtbl.find_opt mags k))
          | _ -> ()
        in
        List.iter (fun (i, j, v) -> addm i j v) entries;
        let scale = Hashtbl.fold (fun _ v acc -> Float.max v acc) mags 0.0 in
        if scale > 0.0 then begin
          let adj = Array.make nr [] in
          Hashtbl.iter
            (fun (r, c) v -> if v >= tol *. scale then adj.(r) <- c :: adj.(r))
            mags;
          let match_of_col, unmatched = kuhn nr nr adj in
          if unmatched <> [] then begin
            let viol = hall_violator nr adj match_of_col unmatched in
            let row_arr = Array.of_list rows in
            let nodes = List.map (fun r -> row_arr.(r)) viol in
            let phase_s =
              match phase with
              | Some p -> Printf.sprintf "in phase %d" p
              | None -> "in every phase"
            in
            emit ~phase nodes
              (Printf.sprintf
                 "%s %s fails structural rank %s: after dropping coefficients \
                  below %g of the block scale (%g), %d of its %d equations \
                  cannot be matched to independent unknowns"
                 what
                 (braces (set_names nodes))
                 phase_s tol scale (List.length unmatched) nr)
          end
        end
  in

  (* C_dd pattern: diagonal gets every incident stamp, off-diagonals the
     couplings between two dynamic nodes; skip ERC002 islands (no held
     coupling at all — reported exactly there) *)
  let grounded_dyn =
    let g = Graph.create n in
    List.iter (fun (a, b, _) -> Graph.union g a b) cap_internal;
    let gnd_roots = Hashtbl.create 8 in
    List.iter (fun (i, _) -> Hashtbl.replace gnd_roots (Graph.find g i) ()) cap_ground;
    List.filter (fun i -> Hashtbl.mem gnd_roots (Graph.find g i)) dyn_members
  in
  let cap_entries =
    List.concat_map
      (fun (e : Sparsity.cap_edge) ->
        let a = e.Sparsity.c_n1 and b = e.Sparsity.c_n2 in
        let c = e.Sparsity.c in
        let diag i = if i > 0 then [ (i, i, c) ] else [] in
        diag a @ diag b
        @ if a > 0 && b > 0 then [ (a, b, c); (b, a, c) ] else [])
      sp.Sparsity.cap_edges
  in
  matching_pass ~phase:None grounded_dyn cap_entries "capacitor block";

  (* G_rr pattern per phase, including one-sided gm stamps landing in
     resistive rows *)
  for p = 0 to nph - 1 do
    let rows = List.filter (fun i -> not floating.(p).(i)) res_members in
    let cond_entries =
      List.concat_map
        (fun (e : Sparsity.cond_edge) ->
          let a = e.Sparsity.g_n1 and b = e.Sparsity.g_n2 in
          let g = e.Sparsity.g in
          let diag i = if i > 0 then [ (i, i, g) ] else [] in
          diag a @ diag b
          @ if a > 0 && b > 0 then [ (a, b, g); (b, a, g) ] else [])
        sp.Sparsity.cond_edges.(p)
    in
    let gm_entries =
      List.concat_map
        (fun (s : Sparsity.sense) ->
          if s.Sparsity.s_integrator then []
          else
            let out = s.Sparsity.s_out and gm = s.Sparsity.s_gain in
            List.filter_map
              (fun i -> if i > 0 then Some (out, i, gm) else None)
              [ s.Sparsity.s_plus; s.Sparsity.s_minus ])
        sp.Sparsity.senses
    in
    matching_pass ~phase:(Some p) rows (cond_entries @ gm_entries)
      "resistive node set"
  done;

  List.rev !findings
