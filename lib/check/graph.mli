(** Union-find over dense integer node ids, used by the ERC rules to
    compute per-phase connectivity components of the element graph. *)

type t

val create : int -> t
(** [create n] makes [n] singleton components with ids [0 .. n-1]. *)

val find : t -> int -> int
(** Canonical representative (with path compression). *)

val union : t -> int -> int -> unit

val same : t -> int -> int -> bool
