module Netlist = Scnoise_circuit.Netlist
module Clock = Scnoise_circuit.Clock
module Sparsity = Scnoise_circuit.Sparsity
module Elab = Scnoise_lang.Elab
module Loc = Scnoise_lang.Loc
module Obs = Scnoise_obs.Obs

(* Node ids are dense: 0 is ground, 1 .. n_nodes the named nodes. *)

(* per-pass wall-time health histograms: check.pass_s.classic /
   .structural / .reach / .units *)
let time_pass name f =
  let h = Obs.histogram ("check.pass_s." ^ name) in
  let t0 = Scnoise_obs.Clock.now () in
  let r = f () in
  Obs.hist_record h (Scnoise_obs.Clock.now () -. t0);
  r

let phase_list = function
  | [ p ] -> Printf.sprintf "phase %d" p
  | ps ->
      Printf.sprintf "phases %s"
        (String.concat ", " (List.map string_of_int ps))

let plural n = if n = 1 then "" else "s"

let check ?output ?(locate_element = fun _ -> None)
    ?(locate_node = fun _ -> None) nl clock =
  let t_classic = Scnoise_obs.Clock.now () in
  let n = Netlist.n_nodes nl + 1 in
  let els = Netlist.elements nl in
  let nph = Clock.n_phases clock in
  let node_name id =
    if id = 0 then "0" else Netlist.node_name nl (Netlist.node_of_id nl id)
  in
  let valid_phases ps =
    List.sort_uniq compare (List.filter (fun p -> p >= 0 && p < nph) ps)
  in
  let driven = Array.make n false in
  List.iter
    (function
      | Netlist.Vsource { n = nd; _ } -> driven.(nd) <- true
      | Netlist.Opamp_integrator { out; _ } -> driven.(out) <- true
      | _ -> ())
    els;
  let held id = id = 0 || driven.(id) in
  let node_finding ~rule ~severity id message =
    let subject = node_name id in
    Finding.make ?loc:(locate_node subject) ~anchor:("node:" ^ subject) ~rule
      ~severity ~subject message
  in
  let element_finding ~rule ~severity name message =
    Finding.make ?loc:(locate_element name) ~anchor:("element:" ^ name) ~rule
      ~severity ~subject:name message
  in

  (* ERC001: per-phase connectivity to the reference (ground + driven
     nodes), counting both conductive and capacitive edges.  A node cut
     off in phase p has a singular MNA row in that phase. *)
  let floating_phases : (int, int list ref) Hashtbl.t = Hashtbl.create 8 in
  for p = 0 to nph - 1 do
    let g = Graph.create n in
    List.iter
      (function
        | Netlist.Resistor { n1; n2; _ } | Netlist.Capacitor { n1; n2; _ } ->
            Graph.union g n1 n2
        | Netlist.Switch { n1; n2; closed_in; _ }
          when List.mem p closed_in ->
            Graph.union g n1 n2
        | Netlist.Opamp_single_stage { out; _ } -> Graph.union g out 0
        | _ -> ())
      els;
    for i = 1 to n - 1 do
      if driven.(i) then Graph.union g 0 i
    done;
    for i = 1 to n - 1 do
      if not (Graph.same g 0 i) then
        match Hashtbl.find_opt floating_phases i with
        | Some l -> l := p :: !l
        | None -> Hashtbl.add floating_phases i (ref [ p ])
    done
  done;
  let erc001 =
    List.init (n - 1) (fun k -> k + 1)
    |> List.filter_map (fun id ->
           match Hashtbl.find_opt floating_phases id with
           | None -> None
           | Some ps ->
               let ps = List.rev !ps in
               let when_ =
                 if List.length ps = nph then "in every phase"
                 else "in " ^ phase_list ps
               in
               Some
                 (node_finding ~rule:"ERC001-floating-node"
                    ~severity:Finding.Error id
                    (Printf.sprintf
                       "node %S is floating %s: no conductive or capacitive \
                        path to ground or a driven node"
                       (node_name id) when_)))
  in

  (* ERC002: components of the capacitor graph with no ground/driven
     member.  Their total charge is undefined at phase boundaries, so
     the compiler's C_dd is singular — even if the island is
     conductively tied to ground through resistors.  Islands whose
     every node is already floating (ERC001) are not re-reported. *)
  let erc002 =
    let g = Graph.create n in
    let capnode = Array.make n false in
    List.iter
      (function
        | Netlist.Capacitor { n1; n2; _ } ->
            capnode.(n1) <- true;
            capnode.(n2) <- true;
            Graph.union g n1 n2
        | Netlist.Opamp_single_stage { out; _ } ->
            capnode.(out) <- true;
            Graph.union g out 0
        | _ -> ())
      els;
    let comps : (int, int list ref) Hashtbl.t = Hashtbl.create 8 in
    for i = n - 1 downto 1 do
      if capnode.(i) then
        let r = Graph.find g i in
        match Hashtbl.find_opt comps r with
        | Some l -> l := i :: !l
        | None -> Hashtbl.add comps r (ref [ i ])
    done;
    let ground_root = Graph.find g 0 in
    Hashtbl.fold
      (fun root members acc ->
        let members = !members in
        if
          root <> ground_root
          && (not (List.exists (fun i -> driven.(i)) members))
          && not
               (List.for_all
                  (fun i -> Hashtbl.mem floating_phases i)
                  members)
        then
          node_finding ~rule:"ERC002-cap-island" ~severity:Finding.Error
            (List.hd members)
            (Printf.sprintf
               "capacitor-only island {%s} has no capacitive path to ground \
                or a driven node: its charge is undefined at phase \
                boundaries (singular capacitance matrix); add a (parasitic) \
                capacitor to ground"
               (String.concat ", " (List.map node_name members)))
          :: acc
        else acc)
      comps []
  in

  (* ERC003 / ERC004 / ERC005: per-switch rules. *)
  let switch_rules =
    List.concat_map
      (function
        | Netlist.Switch { name; n1; n2; closed_in; _ } ->
            let vp = valid_phases closed_in in
            let bad = List.filter (fun p -> p < 0 || p >= nph) closed_in in
            let short =
              if vp <> [] && held n1 && held n2 && (driven.(n1) || driven.(n2))
              then
                [
                  element_finding ~rule:"ERC003-source-short"
                    ~severity:Finding.Error name
                    (Printf.sprintf
                       "switch %S connects %S and %S, which are both held \
                        (ground or voltage-driven); closing it in %s shorts \
                        a source"
                       name (node_name n1) (node_name n2) (phase_list vp));
                ]
              else []
            in
            let degenerate =
              if closed_in = [] then
                [
                  element_finding ~rule:"ERC004-degenerate-switch"
                    ~severity:Finding.Warning name
                    (Printf.sprintf "switch %S is never closed" name);
                ]
              else if bad = [] && List.length vp = nph then
                [
                  element_finding ~rule:"ERC004-degenerate-switch"
                    ~severity:Finding.Warning name
                    (Printf.sprintf
                       "switch %S is closed in every clock phase; it never \
                        opens and behaves as a plain resistor"
                       name);
                ]
              else []
            in
            let range =
              match bad with
              | [] -> []
              | p :: _ ->
                  [
                    element_finding ~rule:"ERC005-phase-out-of-range"
                      ~severity:Finding.Error name
                      (Printf.sprintf
                         "switch %S: phase index %d out of range (clock has \
                          %d phase%s)"
                         name p nph (plural nph));
                  ]
            in
            short @ degenerate @ range
        | _ -> [])
      els
  in

  (* ERC006: is any noise-producing element connected (through any
     element, including op-amp input→output coupling and current
     sources) to the output node's component?  Ground belongs to almost
     every component, so an element counts only through a non-ground
     terminal. *)
  let erc006 =
    match output with
    | None -> []
    | Some out_name -> (
        match Netlist.find_node nl out_name with
        | None -> []
        | Some onode ->
            let oid = Netlist.node_id onode in
            let g = Graph.create n in
            List.iter
              (function
                | Netlist.Resistor { n1; n2; _ }
                | Netlist.Capacitor { n1; n2; _ }
                | Netlist.Isource { n1; n2; _ }
                | Netlist.Noise_isource { n1; n2; _ }
                | Netlist.Flicker_isource { n1; n2; _ } ->
                    Graph.union g n1 n2
                | Netlist.Switch { n1; n2; closed_in; _ }
                  when valid_phases closed_in <> [] ->
                    Graph.union g n1 n2
                | Netlist.Opamp_integrator { plus; minus; out; _ } ->
                    Graph.union g plus out;
                    Graph.union g minus out
                | Netlist.Opamp_single_stage { plus; minus; out; _ } ->
                    Graph.union g plus out;
                    Graph.union g minus out;
                    Graph.union g out 0
                | Netlist.Switch _ | Netlist.Vsource _ -> ())
              els;
            let reaches id = id <> 0 && Graph.same g id oid in
            let noisy_connected =
              List.exists
                (function
                  | Netlist.Resistor { noisy = true; n1; n2; _ } ->
                      reaches n1 || reaches n2
                  | Netlist.Switch { noisy = true; n1; n2; closed_in; _ } ->
                      valid_phases closed_in <> [] && (reaches n1 || reaches n2)
                  | Netlist.Noise_isource { n1; n2; psd; _ } ->
                      psd > 0.0 && (reaches n1 || reaches n2)
                  | Netlist.Flicker_isource { n1; n2; psd_1hz; _ } ->
                      psd_1hz > 0.0 && (reaches n1 || reaches n2)
                  | Netlist.Opamp_integrator
                      { input_noise_psd; plus; minus; out; _ }
                  | Netlist.Opamp_single_stage
                      { input_noise_psd; plus; minus; out; _ } ->
                      input_noise_psd > 0.0
                      && (reaches plus || reaches minus || reaches out)
                  | _ -> false)
                els
            in
            if noisy_connected then []
            else
              [
                node_finding ~rule:"ERC006-noiseless"
                  ~severity:Finding.Warning oid
                  (Printf.sprintf
                     "no noise-producing element is connected to output \
                      node %S; every computed spectrum will be identically \
                      zero"
                     out_name);
              ])
  in

  (* ERC008: a non-ground node referenced by exactly one element
     terminal — usually a typo.  The output node is exempt (the
     [.output] directive is its second use). *)
  let erc008 =
    let refs : string list array = Array.make n [] in
    let touch id name = if id <> 0 then refs.(id) <- name :: refs.(id) in
    List.iter
      (function
        | Netlist.Resistor { name; n1; n2; _ }
        | Netlist.Capacitor { name; n1; n2; _ }
        | Netlist.Switch { name; n1; n2; _ }
        | Netlist.Isource { name; n1; n2; _ }
        | Netlist.Noise_isource { name; n1; n2; _ }
        | Netlist.Flicker_isource { name; n1; n2; _ } ->
            touch n1 name;
            touch n2 name
        | Netlist.Vsource { name; n = nd; _ } -> touch nd name
        | Netlist.Opamp_integrator { name; plus; minus; out; _ }
        | Netlist.Opamp_single_stage { name; plus; minus; out; _ } ->
            touch plus name;
            touch minus name;
            touch out name)
      els;
    List.init (n - 1) (fun k -> k + 1)
    |> List.filter_map (fun id ->
           match refs.(id) with
           | [ only ] when output <> Some (node_name id) ->
               Some
                 (node_finding ~rule:"ERC008-dangling-node"
                    ~severity:Finding.Warning id
                    (Printf.sprintf
                       "node %S is referenced by a single element terminal \
                        (%s); possibly a typo"
                       (node_name id) only))
           | _ -> None)
  in

  Obs.hist_record
    (Obs.histogram "check.pass_s.classic")
    (Scnoise_obs.Clock.now () -. t_classic);

  (* ERC011–ERC013: structural-rank prediction and phase-sequenced
     noise-path reachability over the sparsity digest (no matrices) *)
  let sp = Sparsity.of_netlist nl clock in
  let floating = Array.init nph (fun _ -> Array.make n false) in
  Hashtbl.iter
    (fun i ps -> List.iter (fun p -> floating.(p).(i) <- true) !ps)
    floating_phases;
  let erc011 =
    time_pass "structural" (fun () ->
        Structural.check ~node_name ~locate_node ~floating sp)
  in
  let reach =
    time_pass "reach" (fun () ->
        let out_id =
          match output with
          | None -> None
          | Some o -> Option.map Netlist.node_id (Netlist.find_node nl o)
        in
        Reach.check ~node_name ~locate_element ~locate_node ~floating
          ~output:out_id sp)
  in
  (* ERC006 already reports a fully noiseless output; the phase-aware
     rules would only restate it per source *)
  let reach = if erc006 <> [] then [] else reach in

  let findings =
    Finding.sort
      (erc001 @ erc002 @ switch_rules @ erc006 @ erc008 @ erc011 @ reach)
  in
  Finding.record findings;
  findings

let check_elab (e : Elab.t) =
  let locate_element name = List.assoc_opt name e.Elab.element_locs in
  let locate_node name = List.assoc_opt name e.Elab.node_locs in
  let structural =
    check ~output:e.Elab.output_node ~locate_element ~locate_node
      e.Elab.netlist e.Elab.clock
  in
  let erc007 =
    List.map
      (fun (pname, loc) ->
        Finding.make ~loc ~anchor:("param:" ^ pname)
          ~rule:"ERC007-unused-param" ~severity:Finding.Warning ~subject:pname
          (Printf.sprintf "parameter %S is never used" pname))
      e.Elab.unused_params
  in
  let erc009 =
    let nyquist = 0.5 /. Clock.period e.Elab.clock in
    let over ~anchor what f loc =
      if f > nyquist then
        Some
          (Finding.make ~loc ~anchor ~rule:"ERC009-nyquist"
             ~severity:Finding.Warning ~subject:what
             (Printf.sprintf
                "%s fmax %g Hz is beyond the clock Nyquist frequency %g Hz; \
                 the spectrum there aliases the baseband"
                what f nyquist))
      else None
    in
    List.mapi
      (fun i (a, loc) ->
        let anchor = "analysis:" ^ string_of_int i in
        match a with
        | Elab.Psd { fmax = Some f; _ } -> over ~anchor ".psd" f loc
        | Elab.Transfer { fmax = Some f; _ } -> over ~anchor ".transfer" f loc
        | _ -> None)
      e.Elab.analyses
    |> List.filter_map Fun.id
  in
  let units =
    time_pass "units" (fun () ->
        let erc014 = Units.check_dims e in
        let erc015 =
          Units.check_bandwidth
            (Sparsity.of_netlist e.Elab.netlist e.Elab.clock)
            e
        in
        erc014 @ erc015)
  in
  let deck_only = erc007 @ erc009 @ units in
  Finding.record deck_only;
  Finding.sort (structural @ deck_only)

(* Re-derive a finding's location from its position-free anchor against
   any elaboration with the same canonical hash: the serve tier caches
   verdicts without positions and calls this per request, so a warm hit
   from a differently-laid-out deck still gets correct carets. *)
let resolve_anchor (e : Elab.t) anchor =
  match String.index_opt anchor ':' with
  | None -> None
  | Some i -> (
      let kind = String.sub anchor 0 i in
      let arg = String.sub anchor (i + 1) (String.length anchor - i - 1) in
      let nth_opt l n = if n < 0 then None else List.nth_opt l n in
      match kind with
      | "element" -> List.assoc_opt arg e.Elab.element_locs
      | "node" -> List.assoc_opt arg e.Elab.node_locs
      | "param" -> (
          match List.assoc_opt arg e.Elab.param_exprs with
          | Some x -> Some x.Scnoise_lang.Ast.eloc
          | None -> List.assoc_opt arg e.Elab.unused_params)
      | "slot" ->
          Option.bind (int_of_string_opt arg) (nth_opt e.Elab.value_slots)
          |> Option.map (fun (s : Elab.slot) ->
                 s.Elab.slot_expr.Scnoise_lang.Ast.eloc)
      | "analysis" ->
          Option.bind (int_of_string_opt arg) (nth_opt e.Elab.analyses)
          |> Option.map snd
      | _ -> None)

let ill_conditioned_count () =
  Obs.counter_value "lu_ill_conditioned"
  + Obs.counter_value "clu_ill_conditioned"

let ill_conditioned ~since =
  let now = ill_conditioned_count () in
  if now > since then
    [
      Finding.make ~rule:"ERC010-ill-conditioned" ~severity:Finding.Warning
        ~subject:"lu"
        (Printf.sprintf
           "%d LU factorisation%s had an estimated condition number worse \
            than 1e12; results may have lost most of their precision"
           (now - since)
           (plural (now - since)));
    ]
  else []
