(** ERC011: matching-based structural-singularity prediction.

    Operates on the {!Scnoise_circuit.Sparsity} digest — never on a
    compiled system — and predicts, before any LU factorisation runs,
    the two ways a deck's per-phase MNA blocks go (near-)singular:

    - a Laplacian block whose coupling to its reference is orders of
      magnitude below its internal scale (a capacitor block grounded
      only through a vanishing parasitic; a resistive block leaking to
      the rest of the circuit through a vanishing conductance in some
      phase), which a pure pattern analysis cannot see because the
      pattern is full;
    - a block whose pattern, after dropping entries below a relative
      tolerance of the block scale, fails maximum-bipartite-matching
      structural rank (Dulmage–Mendelsohn-style); the finding names the
      minimal deficient node set, the Hall violator of the matching.

    The relative tolerance defaults to [1e-12] (the sanitizer's
    ill-conditioning threshold) and can be overridden with
    [SCNOISE_ERC011_RTOL].  Defects already diagnosed exactly by
    ERC001/ERC002 (floating nodes, ungrounded capacitor islands) are
    not re-reported. *)

val rtol : unit -> float

val check :
  node_name:(int -> string) ->
  locate_node:(string -> Scnoise_lang.Loc.t option) ->
  floating:bool array array ->
  Scnoise_circuit.Sparsity.t ->
  Finding.t list
(** [floating.(p).(i)] must be ERC001's verdict for node [i] in phase
    [p]; already-floating nodes are excluded from every sub-analysis. *)
