(** ERC014 / ERC015: SI-dimension inference and sweep-bandwidth checks.

    ERC014 runs structural dimension inference over [.param] expression
    trees and element-card values.  Only annotated literals ([2.5pF],
    [10kohm], [1Hz]) introduce constraints — a bare number is
    unconstrained — so decks that never spell units are never flagged.
    Dimensions are tracked as half-integer exponents over (V, A, s, K),
    which keeps [sqrt] exact; [ohm] is V/A, [F] is A·s/V, [Hz] is 1/s.
    Each element-card slot has an expected dimension fixed by its
    syntactic position ({!Scnoise_lang.Elab.t}[.value_slots]); an
    annotated value that disagrees — or an internal sum/comparison of
    incompatible dimensions, or a dimensioned argument to [exp]/[log] —
    is an error with a caret at the offending expression.

    ERC015 warns when a [.psd] sweep's bandwidth captures less than a
    configurable fraction (default 0.1, [SCNOISE_ERC015_MIN_CAPTURE]) of
    the static kT/C noise total: sampled kT/C power is spread nearly
    uniformly over [0, f_clock/2], so a sweep to [fmax] sees only about
    [min(1, 2 fmax / f_clock)] of it. *)

val min_capture : unit -> float

val check_dims : Scnoise_lang.Elab.t -> Finding.t list
(** ERC014 over [param_exprs] and [value_slots]. *)

val check_bandwidth :
  Scnoise_circuit.Sparsity.t -> Scnoise_lang.Elab.t -> Finding.t list
(** ERC015 over the deck's [.psd] directives; silent when the circuit
    has no capacitors or no noise sources. *)
