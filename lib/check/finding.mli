(** A located, severity-ranked ERC finding.

    Rule ids are stable strings of the form ["ERC001-floating-node"];
    tooling (CI greps, editor integrations) may rely on them, so they
    are never renumbered.  Findings from a [.scn] deck carry the
    {!Scnoise_lang.Loc.t} of the offending card or directive and render
    as [file:line:col] caret diagnostics; findings from programmatic
    netlists have no location and render on one line. *)

module Loc = Scnoise_lang.Loc
module Source = Scnoise_lang.Source

type severity = Error | Warning | Info

val severity_label : severity -> string
(** ["error"], ["warning"], ["info"]. *)

type t = {
  rule : string;  (** stable id, e.g. ["ERC001-floating-node"] *)
  severity : severity;
  subject : string;  (** the offending node, element or directive *)
  message : string;  (** self-contained, includes the subject *)
  loc : Loc.t option;  (** deck location when elaborated from a deck *)
  anchor : string option;  (** position-free re-location key
      (["element:R1"], ["node:a"], ["param:c"], ["slot:3"],
      ["analysis:0"]): lets a cached, layout-independent finding get its
      [loc] re-resolved against any deck with the same canonical hash *)
}

val make :
  ?loc:Loc.t -> ?anchor:string -> rule:string -> severity:severity ->
  subject:string -> string -> t

val compare : t -> t -> int
(** Errors first, then warnings, then infos; ties broken by rule id,
    then subject, then message — a deterministic report order. *)

val sort : t list -> t list

val to_string : t -> string
(** One line: [severity[rule] message]. *)

val render : ?source:Source.t -> t -> string
(** Like {!to_string} but, when the finding has a location and [source]
    is supplied, a [file:line:col] header with the offending line quoted
    under a caret (same shape as {!Scnoise_lang.Diag.render}). *)

val to_json : t -> Scnoise_obs.Json.t
(** Full record, [loc] as a ["file:line:col"] string (or [null]). *)

val to_json_positionless : t -> Scnoise_obs.Json.t
(** {!to_json} without the [loc] field: the layout-independent shape the
    serve tier caches under the canonical deck hash.  Locations are
    re-derived per request from [anchor] (see
    {!Check.resolve_anchor}). *)

val of_json : Scnoise_obs.Json.t -> t option
(** Inverse of {!to_json_positionless} ([loc] is ignored if present);
    [None] when the object is missing a required field. *)

val errors : t list -> int

val warnings : t list -> int

val record : t list -> unit
(** Bump the [check.findings.error] / [check.findings.warning]
    {!Scnoise_obs.Obs} counters, plus one [check.rule.ERCnnn] counter
    per finding. *)
