(** ERC012 / ERC013: phase-sequenced noise-path reachability.

    Builds a layered digraph over (node, phase) pairs: conductive and
    capacitive couplings propagate signal within a phase (into nodes
    that are not held by a source), op-amp inputs propagate to their
    outputs, and state-carrying nodes (capacitor nodes and integrator
    outputs) carry their value across each phase boundary — the
    charge-transfer edges that make switched-capacitor paths visible
    even when no single phase connects source to output.

    A noise source none of whose injection points reaches the output in
    any phase sequence is dead: deleting it changes every computed
    spectrum by exactly zero (the compiled system is block-diagonal
    across the cut).  ERC012 flags each such source; when {e every}
    source is dead, a single ERC013 on the output node replaces the
    per-source findings.  Both are warnings — the deck still computes,
    the result just ignores those sources. *)

val check :
  node_name:(int -> string) ->
  locate_element:(string -> Scnoise_lang.Loc.t option) ->
  locate_node:(string -> Scnoise_lang.Loc.t option) ->
  floating:bool array array ->
  output:int option ->
  Scnoise_circuit.Sparsity.t ->
  Finding.t list
(** [floating.(p).(i)] must be ERC001's verdict for node [i] in phase
    [p]: sources whose every entry point is already reported floating
    (and switches that never close, ERC004/ERC005) are not re-reported
    here.  [output] is the output node's id. *)
