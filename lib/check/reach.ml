module Sparsity = Scnoise_circuit.Sparsity

(* Vertex (node, phase) is indexed [(node - 1) * n_phases + phase];
   ground never appears (it neither carries nor emits noise signal). *)

let check ~node_name ~locate_element ~locate_node ~floating ~output
    (sp : Sparsity.t) =
  match output with
  | None -> []
  | Some out when out <= 0 -> []
  | Some out ->
      let n = sp.Sparsity.n_nodes in
      let nph = sp.Sparsity.n_phases in
      let classes = sp.Sparsity.classes in
      (* a node can carry noise signal (its voltage is not deterministic) *)
      let emitter i =
        i > 0
        &&
        match classes.(i) with
        | Sparsity.Dynamic | Sparsity.Resistive | Sparsity.Driven_opamp -> true
        | Sparsity.Ground | Sparsity.Driven_vsource -> false
      in
      (* a node accepts injected current (it is not held by a source);
         op-amp outputs only accept through their sense edge *)
      let receiver i =
        i > 0
        &&
        match classes.(i) with
        | Sparsity.Dynamic | Sparsity.Resistive -> true
        | Sparsity.Ground | Sparsity.Driven_vsource | Sparsity.Driven_opamp ->
            false
      in
      let state i =
        i > 0
        &&
        match classes.(i) with
        | Sparsity.Dynamic | Sparsity.Driven_opamp -> true
        | Sparsity.Ground | Sparsity.Driven_vsource | Sparsity.Resistive ->
            false
      in
      let nv = n * nph in
      let v node p = ((node - 1) * nph) + p in
      (* reversed adjacency: we BFS backwards from the output layer *)
      let radj = Array.make nv [] in
      let add_edge a b p = radj.(v b p) <- v a p :: radj.(v b p) in
      let couple a b =
        for p = 0 to nph - 1 do
          if emitter a && receiver b then add_edge a b p;
          if emitter b && receiver a then add_edge b a p
        done
      in
      List.iter
        (fun (e : Sparsity.cap_edge) ->
          if e.Sparsity.c_n1 > 0 && e.Sparsity.c_n2 > 0 then
            couple e.Sparsity.c_n1 e.Sparsity.c_n2)
        sp.Sparsity.cap_edges;
      Array.iteri
        (fun p edges ->
          List.iter
            (fun (e : Sparsity.cond_edge) ->
              let a = e.Sparsity.g_n1 and b = e.Sparsity.g_n2 in
              if a > 0 && b > 0 then begin
                if emitter a && receiver b then add_edge a b p;
                if emitter b && receiver a then add_edge b a p
              end)
            edges)
        sp.Sparsity.cond_edges;
      List.iter
        (fun (s : Sparsity.sense) ->
          let out_n = s.Sparsity.s_out in
          if out_n > 0 then
            List.iter
              (fun t ->
                if emitter t then
                  for p = 0 to nph - 1 do
                    add_edge t out_n p
                  done)
              [ s.Sparsity.s_plus; s.Sparsity.s_minus ])
        sp.Sparsity.senses;
      (* charge transfer across the phase boundary: state nodes keep
         their value into the next phase (cyclically) *)
      for node = 1 to n do
        if state node then
          for p = 0 to nph - 1 do
            radj.(v node ((p + 1) mod nph)) <- v node p :: radj.(v node ((p + 1) mod nph))
          done
      done;
      (* reverse BFS from the output in every phase *)
      let reaches_output = Array.make nv false in
      let queue = Queue.create () in
      for p = 0 to nph - 1 do
        reaches_output.(v out p) <- true;
        Queue.add (v out p) queue
      done;
      while not (Queue.is_empty queue) do
        let x = Queue.pop queue in
        List.iter
          (fun y ->
            if not reaches_output.(y) then begin
              reaches_output.(y) <- true;
              Queue.add y queue
            end)
          radj.(x)
      done;
      let phases_of = function
        | None -> List.init nph Fun.id
        | Some ps -> ps
      in
      (* the (node, phase) vertices where the source actually enters the
         system: injecting into a held node is absorbed by the source *)
      let starts (inj : Sparsity.injection) =
        List.concat_map
          (fun node ->
            if inj.Sparsity.i_direct || receiver node then
              List.map (fun p -> (node, p)) (phases_of inj.Sparsity.i_phases)
            else [])
          inj.Sparsity.i_nodes
      in
      (* suppress sources whose defect a more specific rule already
         names: a never-closed switch (ERC004/ERC005), a source all of
         whose terminals are held so its current is absorbed by the
         ideal sources (ERC003 territory when it matters), and a source
         whose every entry point is an ERC001-floating node *)
      let considered =
        List.filter
          (fun (inj : Sparsity.injection) ->
            inj.Sparsity.i_phases <> Some []
            &&
            let ss = starts inj in
            ss <> [] && List.exists (fun (n, p) -> not floating.(p).(n)) ss)
          sp.Sparsity.injections
      in
      let alive inj =
        List.exists (fun (n, p) -> reaches_output.(v n p)) (starts inj)
      in
      let elem_of_label l =
        match Filename.chop_suffix_opt ~suffix:".vn" l with
        | Some e -> e
        | None -> l
      in
      let dead = List.filter (fun i -> not (alive i)) considered in
      let n_inj = List.length considered in
      if n_inj > 0 && List.length dead = n_inj then
        [
          Finding.make
            ?loc:(locate_node (node_name out))
            ~anchor:("node:" ^ node_name out)
            ~rule:"ERC013-output-isolated" ~severity:Finding.Warning
            ~subject:(node_name out)
            (Printf.sprintf
               "output node %S is unreachable from all %d noise source%s in \
                every phase sequence: every computed spectrum will be \
                identically zero"
               (node_name out) n_inj
               (if n_inj = 1 then "" else "s"));
        ]
      else
        List.map
          (fun (inj : Sparsity.injection) ->
            let elem = elem_of_label inj.Sparsity.i_label in
            Finding.make
              ?loc:(locate_element elem)
              ~anchor:("element:" ^ elem) ~rule:"ERC012-dead-source"
              ~severity:Finding.Warning ~subject:inj.Sparsity.i_label
              (Printf.sprintf
                 "noise source %S can never reach output %S: no conductive \
                  path within a phase or capacitive charge transfer across \
                  phase boundaries connects them; it contributes exactly \
                  zero to every spectrum"
                 inj.Sparsity.i_label (node_name out)))
          dead
