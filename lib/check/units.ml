module Ast = Scnoise_lang.Ast
module Elab = Scnoise_lang.Elab
module Sparsity = Scnoise_circuit.Sparsity
module Clock = Scnoise_circuit.Clock

(* Dimensions as doubled-integer exponents over (V, A, s, K): storing
   2x the exponent keeps sqrt exact (sqrt(ohm) = V^1/2 A^-1/2 is
   (1, -1, 0, 0) doubled).  [None] is "unconstrained": bare literals
   impose nothing, so only decks that spell units ever get flagged. *)
type dim = { dv : int; da : int; ds : int; dk : int }

let dimless = { dv = 0; da = 0; ds = 0; dk = 0 }

let d2 dv da ds dk = { dv = 2 * dv; da = 2 * da; ds = 2 * ds; dk = 2 * dk }

(* the canonical unit annotations the lexer produces *)
let dim_of_unit = function
  | "ohm" -> d2 1 (-1) 0 0
  | "F" -> d2 (-1) 1 1 0
  | "Hz" -> d2 0 0 (-1) 0
  | "V" -> d2 1 0 0 0
  | "A" -> d2 0 1 0 0
  | "s" -> d2 0 0 1 0
  | "K" -> d2 0 0 0 1
  | u -> invalid_arg ("Units.dim_of_unit: " ^ u)

(* the slot-dimension grammar Elab uses *)
let dim_of_spec = function
  | "1" -> dimless
  | "A/V" -> d2 (-1) 1 0 0
  | "A2/Hz" -> d2 0 2 1 0
  | "V2/Hz" -> d2 2 0 1 0
  | spec -> dim_of_unit spec

let named =
  [
    ("ohm", dim_of_spec "ohm");
    ("F", dim_of_spec "F");
    ("Hz", dim_of_spec "Hz");
    ("V", dim_of_spec "V");
    ("A", dim_of_spec "A");
    ("s", dim_of_spec "s");
    ("K", dim_of_spec "K");
    ("A/V", dim_of_spec "A/V");
    ("A2/Hz", dim_of_spec "A2/Hz");
    ("V2/Hz", dim_of_spec "V2/Hz");
  ]

let to_string d =
  if d = dimless then "dimensionless"
  else
    match List.find_opt (fun (_, nd) -> nd = d) named with
    | Some (name, _) -> name
    | None ->
        let part label e =
          if e = 0 then []
          else if e mod 2 = 0 then
            [ (if e = 2 then label else Printf.sprintf "%s^%d" label (e / 2)) ]
          else [ Printf.sprintf "%s^%g" label (float_of_int e /. 2.0) ]
        in
        String.concat " "
          (part "V" d.dv @ part "A" d.da @ part "s" d.ds @ part "K" d.dk)

let dadd a b =
  { dv = a.dv + b.dv; da = a.da + b.da; ds = a.ds + b.ds; dk = a.dk + b.dk }

let dsub a b =
  { dv = a.dv - b.dv; da = a.da - b.da; ds = a.ds - b.ds; dk = a.dk - b.dk }

let dscale d e =
  let one x =
    let v = float_of_int x *. e in
    let r = Float.round v in
    if Float.abs (v -. r) < 1e-9 then Some (int_of_float r) else None
  in
  match (one d.dv, one d.da, one d.ds, one d.dk) with
  | Some dv, Some da, Some ds, Some dk -> Some { dv; da; ds; dk }
  | _ -> None

let rule = "ERC014-dimension-mismatch"

(* Dimension inference over one expression.  [penv] maps parameter
   names to their (possibly unconstrained) inferred dimension; [params]
   carries the evaluated values so constant exponents of [^]/[pow] can
   be resolved.  Internal conflicts (a sum or min/max of incompatible
   dimensions, a dimensioned argument to exp/log) are appended to
   [errs] at the offending subexpression and inference continues. *)
let infer ~penv ~params ~anchor errs (x : Ast.expr) =
  let mismatch loc fmt =
    Printf.ksprintf
      (fun message ->
        errs :=
          Finding.make ~loc ~anchor ~rule ~severity:Finding.Error
            ~subject:"units" message
          :: !errs)
      fmt
  in
  let const_of e = try Some (Elab.eval_const ~params e) with _ -> None in
  let rec go (x : Ast.expr) =
    match x.Ast.e with
    | Ast.Num (_, "") -> None
    | Ast.Num (_, u) -> Some (dim_of_unit u)
    | Ast.Ref name -> (
        match List.assoc_opt name penv with
        | Some d -> d
        | None ->
            (* built-in constants (pi) are dimensionless *)
            Some dimless)
    | Ast.Neg a -> go a
    | Ast.Bin ((Ast.Add | Ast.Sub), a, b) -> same x.Ast.eloc "sum" a b
    | Ast.Bin (Ast.Mul, a, b) -> (
        match (go a, go b) with
        | Some da, Some db -> Some (dadd da db)
        | _ -> None)
    | Ast.Bin (Ast.Div, a, b) -> (
        match (go a, go b) with
        | Some da, Some db -> Some (dsub da db)
        | _ -> None)
    | Ast.Bin (Ast.Pow, a, b) -> pow x.Ast.eloc a b
    | Ast.Call ("sqrt", [ a ]) -> (
        match go a with None -> None | Some d -> dscale d 0.5)
    | Ast.Call (("exp" | "log" | "log10") as f, [ a ]) ->
        (match go a with
        | Some d when d <> dimless ->
            mismatch a.Ast.eloc
              "argument of %s() has dimension %s; it must be dimensionless" f
              (to_string d)
        | _ -> ());
        None
    | Ast.Call (("min" | "max"), [ a; b ]) -> same x.Ast.eloc "comparison" a b
    | Ast.Call ("abs", [ a ]) -> go a
    | Ast.Call ("pow", [ a; b ]) -> pow x.Ast.eloc a b
    | Ast.Call _ -> None
  and same loc what a b =
    match (go a, go b) with
    | Some da, Some db ->
        if da <> db then
          mismatch loc "%s of incompatible dimensions: %s vs %s" what
            (to_string da) (to_string db);
        Some da
    | Some d, None | None, Some d -> Some d
    | None, None -> None
  and pow loc a b =
    (match go b with
    | Some db when db <> dimless ->
        mismatch b.Ast.eloc "exponent has dimension %s; it must be \
                             dimensionless" (to_string db)
    | _ -> ());
    match go a with
    | None -> None
    | Some da when da = dimless -> Some dimless
    | Some da -> (
        match const_of b with
        | Some e -> (
            match dscale da e with
            | Some d -> Some d
            | None ->
                mismatch loc
                  "%s^%g is not representable as a physical dimension"
                  (to_string da) e;
                None)
        | None -> None)
  in
  go x

let check_dims (e : Elab.t) =
  let params = e.Elab.params in
  let errs = ref [] in
  (* parameter dimensions, inferred in deck order so later params can
     reference earlier ones *)
  let penv =
    List.fold_left
      (fun penv (pname, expr) ->
        let d =
          infer ~penv ~params ~anchor:("param:" ^ pname) errs expr
        in
        (pname, d) :: penv)
      [] e.Elab.param_exprs
  in
  List.iteri
    (fun i (s : Elab.slot) ->
      let anchor = "slot:" ^ string_of_int i in
      let expected = dim_of_spec s.Elab.slot_dim in
      match infer ~penv ~params ~anchor errs s.Elab.slot_expr with
      | Some d when d <> expected ->
          errs :=
            Finding.make ~loc:s.Elab.slot_expr.Ast.eloc ~anchor ~rule
              ~severity:Finding.Error ~subject:s.Elab.slot_what
              (Printf.sprintf
                 "%s has dimension %s, expected %s"
                 s.Elab.slot_what (to_string d)
                 (to_string expected))
            :: !errs
      | _ -> ())
    e.Elab.value_slots;
  List.rev !errs

(* ---- ERC015: sweep-bandwidth capture ---- *)

let default_min_capture = 0.1

let min_capture () =
  match Sys.getenv_opt "SCNOISE_ERC015_MIN_CAPTURE" with
  | Some s -> (
      match float_of_string_opt s with
      | Some v when v >= 0.0 && v <= 1.0 -> v
      | _ -> default_min_capture)
  | None -> default_min_capture

let check_bandwidth (sp : Sparsity.t) (e : Elab.t) =
  let threshold = min_capture () in
  let has_ktc =
    sp.Sparsity.cap_edges <> [] && sp.Sparsity.injections <> []
  in
  if not has_ktc then []
  else begin
    let fs = 1.0 /. Clock.period e.Elab.clock in
    List.concat
      (List.mapi
         (fun i (a, loc) ->
           match a with
           | Elab.Psd { fmax = Some f; _ } ->
               let captured = Float.min 1.0 (2.0 *. f /. fs) in
               if captured < threshold then
                 [
                   Finding.make ~loc
                     ~anchor:("analysis:" ^ string_of_int i)
                     ~rule:"ERC015-band-capture" ~severity:Finding.Warning
                     ~subject:".psd"
                     (Printf.sprintf
                        "the .psd sweep to fmax %g Hz captures only ~%.1f%% \
                         of the sampled kT/C noise power, which is spread \
                         over 0..%g Hz (half the %g Hz clock); raise fmax or \
                         lower SCNOISE_ERC015_MIN_CAPTURE (currently %g)"
                        f (100.0 *. captured) (0.5 *. fs) fs threshold);
                 ]
               else []
           | _ -> [])
         e.Elab.analyses)
  end
