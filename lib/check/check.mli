(** Electrical-rule check (ERC): a static analysis pass over an
    elaborated netlist + clock, run between elaboration and compilation.

    Every rule is computed structurally — per-phase connectivity of the
    element graph, never a matrix factorisation — so the pass is cheap
    and its findings carry circuit-level language ("floating node",
    "capacitor-only island") rather than numeric symptoms ("singular
    matrix at pivot 3").  Errors predict conditions under which
    {!Scnoise_circuit.Compile} would fail or silently patch the system;
    warnings flag degenerate or almost-certainly-unintended structure.

    {2 Rule catalogue}

    - [ERC001-floating-node] (error): a node with no path — conductive
      {e or} capacitive — to ground or a voltage-driven node during some
      clock phase.  Its MNA row is singular in that phase.  Capacitive
      edges count: an op-amp virtual ground reached only through
      capacitors is fine.
    - [ERC002-cap-island] (error): a connected component of the
      capacitor graph that contains no ground or driven node.  The
      charge on the island is undefined at phase boundaries — exactly
      the "singular capacitance matrix" failure the compiler raises —
      even when the island is conductively grounded.
    - [ERC003-source-short] (error): a switch whose two terminals are
      both held (ground or voltage-driven, at least one driven); closing
      it shorts a source.
    - [ERC004-degenerate-switch] (warning): a switch closed in every
      clock phase (a resistor in disguise) or never closed at all.
    - [ERC005-phase-out-of-range] (error): a switch [closed=] phase
      index outside the clock schedule.
    - [ERC006-noiseless] (warning): no noise-producing element is
      connected to the output node's component; every computed spectrum
      will be identically zero.
    - [ERC007-unused-param] (warning, decks only): a [.param] never
      referenced by a later expression.
    - [ERC008-dangling-node] (warning): a non-ground, non-output node
      referenced by exactly one element terminal — usually a typo.
    - [ERC009-nyquist] (warning, decks only): a [.psd] / [.transfer]
      [fmax] beyond the clock Nyquist frequency [1/(2T)].
    - [ERC010-ill-conditioned] (warning, post-hoc): an LU factorisation
      during a subsequent analysis had a diagonal-ratio condition
      estimate worse than 1e12 (reported from the
      [lu_ill_conditioned] / [clu_ill_conditioned] observability
      counters, see {!ill_conditioned}).
    - [ERC011-structural-singular] (error): a per-phase MNA block fails
      magnitude-aware structural rank.  Entries below
      [SCNOISE_ERC011_RTOL] times the block's magnitude scale are
      dropped and maximum bipartite matching is run on the surviving
      pattern; a deficient matching names the minimal (Hall-violator)
      node set whose rows the eventual LU would pivot to near-zero on.
      Predicts [ERC010] before any factorisation happens
      ({!Structural}).
    - [ERC012-dead-source] (warning): a noise source with no
      phase-sequenced path — conductive within a phase, capacitive
      charge transfer across phase boundaries — to the output.  Deleting
      it changes the PSD by exactly zero ({!Reach}).
    - [ERC013-output-isolated] (warning): no noise source at all reaches
      the output through the phase-sequenced reachability graph; the
      path-aware strengthening of [ERC006] ({!Reach}).
    - [ERC014-dimension-mismatch] (error, decks only): SI-dimension
      inference over [.param] expression trees and card values
      contradicts a slot's expected dimension — e.g. a farad-valued
      param used as a resistance ({!Units}).
    - [ERC015-band-capture] (warning, decks only): the [.psd] sweep band
      captures less than [SCNOISE_ERC015_MIN_CAPTURE] (default 0.1) of
      the static kT/C noise power spread over the clock rate
      ({!Units}). *)

module Netlist = Scnoise_circuit.Netlist
module Clock = Scnoise_circuit.Clock
module Elab = Scnoise_lang.Elab
module Loc = Scnoise_lang.Loc

val check :
  ?output:string ->
  ?locate_element:(string -> Loc.t option) ->
  ?locate_node:(string -> Loc.t option) ->
  Netlist.t ->
  Clock.t ->
  Finding.t list
(** Structural rules (ERC001–ERC006, ERC008) and the phase-aware
    passes (ERC011–ERC013) over any netlist, programmatic or
    elaborated.  [output] enables ERC006/ERC012/ERC013 and exempts the
    output node from ERC008; the locate functions attach deck locations
    to findings when available.  The result is sorted
    ({!Finding.compare}) and recorded ({!Finding.record}). *)

val check_elab : Elab.t -> Finding.t list
(** {!check} plus the deck-only rules (ERC007, ERC009, ERC014, ERC015)
    and the phase-aware structural passes (ERC011–ERC013), with
    locations from the elaborator's maps. *)

val resolve_anchor : Elab.t -> string -> Loc.t option
(** Map a finding's position-free [anchor] (["element:R1"], ["node:a"],
    ["param:c"], ["slot:3"], ["analysis:0"]) back to a deck location in
    [e]'s maps.  Total: unknown kinds or names yield [None].  The serve
    tier uses this to re-attach carets to verdicts cached under the
    canonical (layout-erasing) deck hash. *)

val ill_conditioned_count : unit -> int
(** Current sum of the [lu_ill_conditioned] and [clu_ill_conditioned]
    observability counters. *)

val ill_conditioned : since:int -> Finding.t list
(** Post-hoc ERC010: the factorisations whose condition estimate
    tripped since the [since] baseline (a prior
    {!ill_conditioned_count}).  Empty when none did. *)
