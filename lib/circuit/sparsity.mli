(** Structural digest of a netlist + clock: the per-phase MNA sparsity
    pattern the compiler would assemble, without building or factoring
    any matrix.

    {!Compile} classifies nodes, stamps per-phase Laplacians, and LU-
    factors two blocks: the phase-independent dynamic capacitance block
    [C_dd] and each phase's resistive conductance block [G_rr].  The
    static-analysis passes in [Scnoise_check] need exactly the patterns
    and magnitudes of those stamps — singularity of a Laplacian block is
    a graph property — so this module exposes them as labelled edge
    lists, cheap enough to run at admission time on every request. *)

module Netlist := Netlist
module Clock := Clock

type node_class =
  | Ground
  | Dynamic  (** touches a capacitor (or single-stage output): a state *)
  | Resistive  (** purely algebraic; Schur-eliminated by the compiler *)
  | Driven_vsource  (** held by a voltage source *)
  | Driven_opamp  (** integrator op-amp output: held within a phase,
      but its state crosses phase boundaries *)

type cond_edge = {
  g_n1 : int;
  g_n2 : int;  (** node ids; [0] is ground *)
  g : float;  (** conductance magnitude of the stamp, siemens *)
  g_elem : string;  (** stamping element's name *)
}

type cap_edge = {
  c_n1 : int;
  c_n2 : int;
  c : float;  (** capacitance magnitude of the stamp, farads *)
  c_elem : string;
}

type sense = {
  s_plus : int;
  s_minus : int;
  s_out : int;
  s_gain : float;  (** ugf (integrator, 1/s) or gm (single-stage, A/V) *)
  s_elem : string;
  s_integrator : bool;  (** true: output is a {!Driven_opamp} state;
      false: transconductance into a {!Dynamic} output node *)
}

type injection = {
  i_label : string;  (** matches the compiler's noise-source label *)
  i_nodes : int list;  (** non-ground terminals where the source injects
      current (for op-amp input noise: the output node, where the
      equivalent source acts) *)
  i_phases : int list option;  (** [None]: active in every phase;
      [Some ps]: only in phases [ps] (noisy switches) *)
  i_direct : bool;  (** true for op-amp input-referred noise: it forces
      the output state directly rather than injecting a current, so it
      is effective even though the node is held *)
}

type t = {
  n_nodes : int;  (** named (non-ground) nodes; ids are 1..n_nodes *)
  n_phases : int;
  classes : node_class array;  (** length [n_nodes + 1], index 0 ground *)
  cap_edges : cap_edge list;  (** phase-independent capacitive stamps *)
  cond_edges : cond_edge list array;  (** per-phase conductive stamps:
      resistors, closed switches, single-stage output conductances *)
  senses : sense list;  (** op-amp controlled sources (phase-independent) *)
  injections : injection list;  (** every noise source the compiler
      would stamp, in element order *)
}

val of_netlist : Netlist.t -> Clock.t -> t
(** Pure pattern extraction: never raises on structurally defective
    decks (switch phases outside the clock schedule are ignored, exactly
    as an open switch), so it can run before any ERC rule has vetted the
    deck. *)
