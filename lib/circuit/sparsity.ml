type node_class =
  | Ground
  | Dynamic
  | Resistive
  | Driven_vsource
  | Driven_opamp

type cond_edge = { g_n1 : int; g_n2 : int; g : float; g_elem : string }

type cap_edge = { c_n1 : int; c_n2 : int; c : float; c_elem : string }

type sense = {
  s_plus : int;
  s_minus : int;
  s_out : int;
  s_gain : float;
  s_elem : string;
  s_integrator : bool;
}

type injection = {
  i_label : string;
  i_nodes : int list;
  i_phases : int list option;
  i_direct : bool;
}

type t = {
  n_nodes : int;
  n_phases : int;
  classes : node_class array;
  cap_edges : cap_edge list;
  cond_edges : cond_edge list array;
  senses : sense list;
  injections : injection list;
}

let of_netlist nl clock =
  let els = Netlist.elements nl in
  let n_all = Netlist.n_nodes nl in
  let n_phases = Clock.n_phases clock in
  (* classification mirrors Compile: driven wins over dynamic wins over
     resistive *)
  let driven_v = Array.make (n_all + 1) false in
  let driven_o = Array.make (n_all + 1) false in
  let has_cap = Array.make (n_all + 1) false in
  List.iter
    (function
      | Netlist.Vsource { n; _ } -> driven_v.(n) <- true
      | Netlist.Opamp_integrator { out; _ } -> driven_o.(out) <- true
      | Netlist.Capacitor { n1; n2; _ } ->
          if n1 > 0 then has_cap.(n1) <- true;
          if n2 > 0 then has_cap.(n2) <- true
      | Netlist.Opamp_single_stage { out; _ } -> has_cap.(out) <- true
      | Netlist.Resistor _ | Netlist.Switch _ | Netlist.Isource _
      | Netlist.Noise_isource _ | Netlist.Flicker_isource _ ->
          ())
    els;
  let classes =
    Array.init (n_all + 1) (fun i ->
        if i = 0 then Ground
        else if driven_v.(i) then Driven_vsource
        else if driven_o.(i) then Driven_opamp
        else if has_cap.(i) then Dynamic
        else Resistive)
  in
  let cap_edges =
    List.filter_map
      (function
        | Netlist.Capacitor { name; n1; n2; c } ->
            Some { c_n1 = n1; c_n2 = n2; c; c_elem = name }
        | Netlist.Opamp_single_stage { name; out; cout; _ } ->
            Some { c_n1 = out; c_n2 = 0; c = cout; c_elem = name }
        | _ -> None)
      els
  in
  let cond_edges =
    Array.init n_phases (fun p ->
        List.filter_map
          (function
            | Netlist.Resistor { name; n1; n2; r; _ } ->
                Some { g_n1 = n1; g_n2 = n2; g = 1.0 /. r; g_elem = name }
            | Netlist.Switch { name; n1; n2; r_on; closed_in; _ }
              when List.mem p closed_in ->
                Some { g_n1 = n1; g_n2 = n2; g = 1.0 /. r_on; g_elem = name }
            | Netlist.Opamp_single_stage { name; out; rout; _ } ->
                Some { g_n1 = out; g_n2 = 0; g = 1.0 /. rout; g_elem = name }
            | _ -> None)
          els)
  in
  let senses =
    List.filter_map
      (function
        | Netlist.Opamp_integrator { name; plus; minus; out; ugf; _ } ->
            Some
              {
                s_plus = plus;
                s_minus = minus;
                s_out = out;
                s_gain = ugf;
                s_elem = name;
                s_integrator = true;
              }
        | Netlist.Opamp_single_stage { name; plus; minus; out; gm; _ } ->
            Some
              {
                s_plus = plus;
                s_minus = minus;
                s_out = out;
                s_gain = gm;
                s_elem = name;
                s_integrator = false;
              }
        | _ -> None)
      els
  in
  let valid_phases ps =
    List.sort_uniq compare (List.filter (fun p -> p >= 0 && p < n_phases) ps)
  in
  let terminals ids = List.sort_uniq compare (List.filter (fun i -> i > 0) ids) in
  let injections =
    List.filter_map
      (function
        | Netlist.Resistor { name; n1; n2; noisy = true; _ } ->
            Some
              {
                i_label = name;
                i_nodes = terminals [ n1; n2 ];
                i_phases = None;
                i_direct = false;
              }
        | Netlist.Switch { name; n1; n2; noisy = true; closed_in; _ } ->
            Some
              {
                i_label = name;
                i_nodes = terminals [ n1; n2 ];
                i_phases = Some (valid_phases closed_in);
                i_direct = false;
              }
        | Netlist.Noise_isource { name; n1; n2; psd } when psd > 0.0 ->
            Some
              {
                i_label = name;
                i_nodes = terminals [ n1; n2 ];
                i_phases = None;
                i_direct = false;
              }
        | Netlist.Flicker_isource { name; n1; n2; psd_1hz; _ }
          when psd_1hz > 0.0 ->
            Some
              {
                i_label = name;
                i_nodes = terminals [ n1; n2 ];
                i_phases = None;
                i_direct = false;
              }
        | Netlist.Opamp_integrator { name; out; input_noise_psd; _ }
          when input_noise_psd > 0.0 ->
            Some
              {
                i_label = name ^ ".vn";
                i_nodes = terminals [ out ];
                i_phases = None;
                i_direct = true;
              }
        | Netlist.Opamp_single_stage { name; out; input_noise_psd; _ }
          when input_noise_psd > 0.0 ->
            Some
              {
                i_label = name ^ ".vn";
                i_nodes = terminals [ out ];
                i_phases = None;
                i_direct = true;
              }
        | _ -> None)
      els
  in
  {
    n_nodes = n_all;
    n_phases;
    classes;
    cap_edges;
    cond_edges;
    senses;
    injections;
  }
