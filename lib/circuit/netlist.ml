type node = int

type element =
  | Resistor of { name : string; n1 : int; n2 : int; r : float; noisy : bool }
  | Capacitor of { name : string; n1 : int; n2 : int; c : float }
  | Switch of {
      name : string;
      n1 : int;
      n2 : int;
      r_on : float;
      noisy : bool;
      closed_in : int list;
    }
  | Vsource of { name : string; n : int; waveform : float -> float }
  | Isource of { name : string; n1 : int; n2 : int; waveform : float -> float }
  | Noise_isource of { name : string; n1 : int; n2 : int; psd : float }
  | Flicker_isource of {
      name : string;
      n1 : int;
      n2 : int;
      psd_1hz : float;
      fmin : float;
      fmax : float;
      sections_per_decade : int;
    }
  | Opamp_integrator of {
      name : string;
      plus : int;
      minus : int;
      out : int;
      ugf : float;
      input_noise_psd : float;
    }
  | Opamp_single_stage of {
      name : string;
      plus : int;
      minus : int;
      out : int;
      gm : float;
      rout : float;
      cout : float;
      input_noise_psd : float;
    }

type t = {
  mutable names : string list; (* reversed; index 1 = first created *)
  mutable n_nodes : int;
  by_name : (string, int) Hashtbl.t;
  mutable elements : element list; (* reversed *)
  mutable n_elements : int;
  mutable driven : (int * string) list; (* node id, driver name *)
}

let create () =
  {
    names = [];
    n_nodes = 0;
    by_name = Hashtbl.create 16;
    elements = [];
    n_elements = 0;
    driven = [];
  }

let ground = 0

let node t name =
  match Hashtbl.find_opt t.by_name name with
  | Some id -> id
  | None ->
      t.n_nodes <- t.n_nodes + 1;
      t.names <- name :: t.names;
      Hashtbl.add t.by_name name t.n_nodes;
      t.n_nodes

let find_node t name =
  if name = "0" then Some 0 else Hashtbl.find_opt t.by_name name

let node_name t n =
  if n = 0 then "0"
  else if n < 0 || n > t.n_nodes then invalid_arg "Netlist.node_name: bad node"
  else List.nth t.names (t.n_nodes - n)

let n_nodes t = t.n_nodes

let node_id n = n

let node_of_id t id =
  if id < 0 || id > t.n_nodes then invalid_arg "Netlist.node_of_id: bad id";
  id

(* Every validation message names the element (e.g.
   [Netlist.resistor "R3": r <= 0]) so both programmatic use and the
   deck front end can identify the offender; default names are resolved
   before validation for the same reason. *)
let invalid what name msg =
  invalid_arg (Printf.sprintf "Netlist.%s %S: %s" what name msg)

let check_node t n what name =
  if n < 0 || n > t.n_nodes then invalid what name "unknown node"

let check_distinct n1 n2 what name =
  if n1 = n2 then invalid what name "both terminals on the same node"

let fresh_name t prefix =
  Printf.sprintf "%s%d" prefix (t.n_elements + 1)

let push t e =
  t.elements <- e :: t.elements;
  t.n_elements <- t.n_elements + 1

let mark_driven t n what name =
  if n = ground then invalid what name "cannot drive ground";
  match List.assoc_opt n t.driven with
  | Some other ->
      invalid what name
        (Printf.sprintf "node %s already driven by %s" (node_name t n) other)
  | None -> t.driven <- (n, name) :: t.driven

let resistor ?name ?(noisy = true) t n1 n2 r =
  let name = match name with Some s -> s | None -> fresh_name t "R" in
  check_node t n1 "resistor" name;
  check_node t n2 "resistor" name;
  check_distinct n1 n2 "resistor" name;
  if r <= 0.0 then invalid "resistor" name "r <= 0";
  push t (Resistor { name; n1; n2; r; noisy })

let capacitor ?name t n1 n2 c =
  let name = match name with Some s -> s | None -> fresh_name t "C" in
  check_node t n1 "capacitor" name;
  check_node t n2 "capacitor" name;
  check_distinct n1 n2 "capacitor" name;
  if c <= 0.0 then invalid "capacitor" name "c <= 0";
  push t (Capacitor { name; n1; n2; c })

let switch ?name ?(noisy = true) ~closed_in t n1 n2 r_on =
  let name = match name with Some s -> s | None -> fresh_name t "S" in
  check_node t n1 "switch" name;
  check_node t n2 "switch" name;
  check_distinct n1 n2 "switch" name;
  if r_on <= 0.0 then invalid "switch" name "r_on <= 0";
  if closed_in = [] then invalid "switch" name "never closed";
  List.iter
    (fun p -> if p < 0 then invalid "switch" name "negative phase index")
    closed_in;
  push t (Switch { name; n1; n2; r_on; noisy; closed_in })

let vsource ?name t n waveform =
  let name = match name with Some s -> s | None -> fresh_name t "V" in
  check_node t n "vsource" name;
  mark_driven t n "vsource" name;
  push t (Vsource { name; n; waveform })

let vsource_dc ?name t n v = vsource ?name t n (fun _ -> v)

let isource ?name t n1 n2 waveform =
  let name = match name with Some s -> s | None -> fresh_name t "I" in
  check_node t n1 "isource" name;
  check_node t n2 "isource" name;
  check_distinct n1 n2 "isource" name;
  push t (Isource { name; n1; n2; waveform })

let noise_isource ?name t n1 n2 ~psd =
  let name = match name with Some s -> s | None -> fresh_name t "IN" in
  check_node t n1 "noise_isource" name;
  check_node t n2 "noise_isource" name;
  check_distinct n1 n2 "noise_isource" name;
  if psd < 0.0 then invalid "noise_isource" name "psd < 0";
  push t (Noise_isource { name; n1; n2; psd })

let flicker_isource ?name ?(sections_per_decade = 2) t n1 n2 ~psd_1hz ~fmin
    ~fmax =
  let name = match name with Some s -> s | None -> fresh_name t "IF" in
  check_node t n1 "flicker_isource" name;
  check_node t n2 "flicker_isource" name;
  check_distinct n1 n2 "flicker_isource" name;
  if psd_1hz <= 0.0 then invalid "flicker_isource" name "psd_1hz <= 0";
  if fmin <= 0.0 || fmax <= fmin then
    invalid "flicker_isource" name "need 0 < fmin < fmax";
  if sections_per_decade < 1 then
    invalid "flicker_isource" name "sections_per_decade < 1";
  push t
    (Flicker_isource { name; n1; n2; psd_1hz; fmin; fmax; sections_per_decade })

let opamp_integrator ?name ?(input_noise_psd = 0.0) t ~plus ~minus ~out ~ugf =
  let name = match name with Some s -> s | None -> fresh_name t "OA" in
  check_node t plus "opamp_integrator" name;
  check_node t minus "opamp_integrator" name;
  check_node t out "opamp_integrator" name;
  if ugf <= 0.0 then invalid "opamp_integrator" name "ugf <= 0";
  if input_noise_psd < 0.0 then
    invalid "opamp_integrator" name "input_noise_psd < 0";
  mark_driven t out "opamp_integrator" name;
  push t (Opamp_integrator { name; plus; minus; out; ugf; input_noise_psd })

let opamp_single_stage ?name ?(input_noise_psd = 0.0) t ~plus ~minus ~out ~gm
    ~rout ~cout =
  let name = match name with Some s -> s | None -> fresh_name t "OA" in
  check_node t plus "opamp_single_stage" name;
  check_node t minus "opamp_single_stage" name;
  check_node t out "opamp_single_stage" name;
  if out = ground then invalid "opamp_single_stage" name "out is ground";
  if gm <= 0.0 then invalid "opamp_single_stage" name "gm <= 0";
  if rout <= 0.0 then invalid "opamp_single_stage" name "rout <= 0";
  if cout <= 0.0 then invalid "opamp_single_stage" name "cout <= 0";
  if input_noise_psd < 0.0 then
    invalid "opamp_single_stage" name "input_noise_psd < 0";
  push t
    (Opamp_single_stage
       { name; plus; minus; out; gm; rout; cout; input_noise_psd })

let elements t = List.rev t.elements

let max_phase_index t =
  List.fold_left
    (fun acc e ->
      match e with
      | Switch { closed_in; _ } -> List.fold_left max acc closed_in
      | Resistor _ | Capacitor _ | Vsource _ | Isource _ | Noise_isource _
      | Flicker_isource _ | Opamp_integrator _ | Opamp_single_stage _ ->
          acc)
    (-1) t.elements

let pp fmt t =
  Format.fprintf fmt "@[<v>netlist: %d nodes, %d elements@," t.n_nodes
    t.n_elements;
  List.iter
    (fun e ->
      let nn = node_name t in
      match e with
      | Resistor { name; n1; n2; r; noisy } ->
          Format.fprintf fmt "R %s %s %s %g%s@," name (nn n1) (nn n2) r
            (if noisy then "" else " noiseless")
      | Capacitor { name; n1; n2; c } ->
          Format.fprintf fmt "C %s %s %s %g@," name (nn n1) (nn n2) c
      | Switch { name; n1; n2; r_on; closed_in; _ } ->
          Format.fprintf fmt "S %s %s %s %g phases=%s@," name (nn n1) (nn n2)
            r_on
            (String.concat "," (List.map string_of_int closed_in))
      | Vsource { name; n; _ } -> Format.fprintf fmt "V %s %s@," name (nn n)
      | Isource { name; n1; n2; _ } ->
          Format.fprintf fmt "I %s %s %s@," name (nn n1) (nn n2)
      | Noise_isource { name; n1; n2; psd } ->
          Format.fprintf fmt "IN %s %s %s psd=%g@," name (nn n1) (nn n2) psd
      | Flicker_isource { name; n1; n2; psd_1hz; fmin; fmax; _ } ->
          Format.fprintf fmt "IF %s %s %s psd@1Hz=%g band=[%g,%g]@," name
            (nn n1) (nn n2) psd_1hz fmin fmax
      | Opamp_integrator { name; plus; minus; out; ugf; _ } ->
          Format.fprintf fmt "OA %s +%s -%s out=%s ugf=%g@," name (nn plus)
            (nn minus) (nn out) ugf
      | Opamp_single_stage { name; plus; minus; out; gm; rout; cout; _ } ->
          Format.fprintf fmt "OA1 %s +%s -%s out=%s gm=%g rout=%g cout=%g@,"
            name (nn plus) (nn minus) (nn out) gm rout cout)
    (elements t);
  Format.fprintf fmt "@]"
