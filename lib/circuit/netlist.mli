(** Netlist builder for periodically switched linear circuits.

    The element set matches the macromodelling level of the source
    papers: noisy resistors, capacitors, phase-controlled switches
    (on-resistance + thermal noise when closed), ideal voltage / current
    sources, explicit white-noise current sources, and two operational
    amplifier macromodels:

    - {!opamp_integrator}: a single-pole integrator
      [dx/dt = w_u (v+ - v- + vn)] whose output node is an ideal voltage
      source driven by the state [x] ("source-follower output" in the
      papers).  An essentially ideal op-amp is modelled by a [w_u] much
      larger than every other rate in the circuit.
    - {!opamp_single_stage}: a transconductance [gm] into an output node
      loaded by [rout || cout] (folded-cascode-like single stage); its
      unity-gain frequency is [gm / cout].

    Both accept an input-referred white voltage-noise PSD (double-sided,
    V^2/Hz). *)

type t

type node
(** A circuit node handle.  {!ground} is the reference. *)

val create : unit -> t

val ground : node

val node : t -> string -> node
(** [node t name] creates (or retrieves, by name) a node. *)

val find_node : t -> string -> node option
(** Lookup without creation; ["0"] is {!ground}. *)

val node_name : t -> node -> string

val n_nodes : t -> int
(** Number of nodes created so far, excluding ground. *)

(** {1 Elements}

    Optional [name]s default to a generated label.  Two-terminal elements
    reject identical terminals. *)

val resistor : ?name:string -> ?noisy:bool -> t -> node -> node -> float -> unit
(** [resistor t n1 n2 r] with [r > 0] ohms; [noisy] defaults to
    [true] (thermal current noise [2kT/r]). *)

val capacitor : ?name:string -> t -> node -> node -> float -> unit
(** [capacitor t n1 n2 c] with [c > 0] farads. *)

val switch :
  ?name:string -> ?noisy:bool -> closed_in:int list -> t -> node -> node ->
  float -> unit
(** [switch ~closed_in t n1 n2 r_on]: conducts with resistance [r_on]
    (plus thermal noise unless [noisy:false]) during the listed clock
    phases, open otherwise. *)

val vsource : ?name:string -> t -> node -> (float -> float) -> unit
(** Ideal voltage source from [node] to ground; the node becomes
    driven.  The waveform is used by large-signal simulation only (noise
    analysis treats inputs as quiet). *)

val vsource_dc : ?name:string -> t -> node -> float -> unit

val isource : ?name:string -> t -> node -> node -> (float -> float) -> unit
(** Current source injecting into the first node and out of the
    second. *)

val noise_isource : ?name:string -> t -> node -> node -> psd:float -> unit
(** Stationary white current-noise source with double-sided PSD [psd]
    (A^2/Hz) between two nodes. *)

val flicker_isource :
  ?name:string -> ?sections_per_decade:int -> t -> node -> node ->
  psd_1hz:float -> fmin:float -> fmax:float -> unit
(** 1/f (flicker) current-noise source between two nodes, realised as a
    bank of first-order shaping filters (one extra state per section,
    [sections_per_decade] per decade, default 2) whose summed Lorentzian
    spectra approximate [psd_1hz / f] (A^2/Hz, double-sided) between
    [fmin] and [fmax].  This is the "appropriate filtering network"
    route to 1/f noise discussed in the source papers.  Requires
    [0 < fmin < fmax]. *)

val opamp_integrator :
  ?name:string -> ?input_noise_psd:float -> t -> plus:node -> minus:node ->
  out:node -> ugf:float -> unit
(** Single-pole integrator op-amp macromodel; [ugf] is the unity-gain
    frequency in rad/s ([> 0]).  The output node becomes driven. *)

val opamp_single_stage :
  ?name:string -> ?input_noise_psd:float -> t -> plus:node -> minus:node ->
  out:node -> gm:float -> rout:float -> cout:float -> unit
(** Single-stage transconductance op-amp macromodel; the output node
    becomes dynamic (it carries [cout]). *)

(** {1 Introspection (used by the compiler)} *)

type element =
  | Resistor of { name : string; n1 : int; n2 : int; r : float; noisy : bool }
  | Capacitor of { name : string; n1 : int; n2 : int; c : float }
  | Switch of {
      name : string;
      n1 : int;
      n2 : int;
      r_on : float;
      noisy : bool;
      closed_in : int list;
    }
  | Vsource of { name : string; n : int; waveform : float -> float }
  | Isource of { name : string; n1 : int; n2 : int; waveform : float -> float }
  | Noise_isource of { name : string; n1 : int; n2 : int; psd : float }
  | Flicker_isource of {
      name : string;
      n1 : int;
      n2 : int;
      psd_1hz : float;
      fmin : float;
      fmax : float;
      sections_per_decade : int;
    }
  | Opamp_integrator of {
      name : string;
      plus : int;
      minus : int;
      out : int;
      ugf : float;
      input_noise_psd : float;
    }
  | Opamp_single_stage of {
      name : string;
      plus : int;
      minus : int;
      out : int;
      gm : float;
      rout : float;
      cout : float;
      input_noise_psd : float;
    }

val elements : t -> element list
(** Elements in insertion order. *)

val node_id : node -> int
(** Raw integer id (ground = 0). *)

val node_of_id : t -> int -> node
(** Inverse of {!node_id}; raises [Invalid_argument] on an unknown id. *)

val max_phase_index : t -> int
(** Largest phase index referenced by any switch, or -1 if none. *)

val pp : Format.formatter -> t -> unit
