open Ast

let c_cards = Scnoise_obs.Obs.counter "lang_cards"

type state = { toks : Lexer.located array; mutable pos : int }

let peek st = st.toks.(st.pos)

let next st =
  let t = st.toks.(st.pos) in
  if t.Lexer.tok <> Lexer.EOF then st.pos <- st.pos + 1;
  t

let syntax_error (t : Lexer.located) expected =
  Diag.error t.Lexer.loc "expected %s, found %s" expected
    (Lexer.describe t.Lexer.tok)

let expect_eol st =
  match (peek st).Lexer.tok with
  | Lexer.EOL -> ignore (next st)
  | Lexer.EOF -> ()
  | _ -> syntax_error (peek st) "end of line"

(* ---- expressions (inside braces and .param right-hand sides) ---- *)

(* primary := NUMBER | IDENT | IDENT '(' expr,* ')' | '(' expr ')'
   with '-NUMBER' folded into the literal so printing round-trips *)
let rec parse_primary st =
  let t = next st in
  let loc = t.Lexer.loc in
  match t.Lexer.tok with
  | Lexer.NUMBER (v, u) -> { e = Num (v, u); eloc = loc }
  | Lexer.MINUS -> (
      match (peek st).Lexer.tok with
      | Lexer.NUMBER (v, u) ->
          ignore (next st);
          { e = Num (-.v, u); eloc = loc }
      | _ -> { e = Neg (parse_primary st); eloc = loc })
  | Lexer.IDENT name -> (
      match (peek st).Lexer.tok with
      | Lexer.LPAREN ->
          ignore (next st);
          let rec args acc =
            let a = parse_expr st in
            match (next st).Lexer.tok with
            | Lexer.COMMA -> args (a :: acc)
            | Lexer.RPAREN -> List.rev (a :: acc)
            | _ -> syntax_error st.toks.(st.pos - 1) "',' or ')'"
          in
          { e = Call (String.lowercase_ascii name, args []); eloc = loc }
      | _ -> { e = Ref name; eloc = loc })
  | Lexer.LPAREN -> (
      let e = parse_expr st in
      match (next st).Lexer.tok with
      | Lexer.RPAREN -> e
      | _ -> syntax_error st.toks.(st.pos - 1) "')'")
  | _ -> syntax_error t "an expression"

and parse_power st =
  let base = parse_primary st in
  match (peek st).Lexer.tok with
  | Lexer.CARET ->
      let t = next st in
      let expo = parse_power st in
      { e = Bin (Pow, base, expo); eloc = t.Lexer.loc }
  | _ -> base

and parse_term st =
  let rec loop lhs =
    match (peek st).Lexer.tok with
    | Lexer.STAR | Lexer.SLASH ->
        let t = next st in
        let op = if t.Lexer.tok = Lexer.STAR then Mul else Div in
        let rhs = parse_power st in
        loop { e = Bin (op, lhs, rhs); eloc = t.Lexer.loc }
    | _ -> lhs
  in
  loop (parse_power st)

and parse_expr st =
  let rec loop lhs =
    match (peek st).Lexer.tok with
    | Lexer.PLUS | Lexer.MINUS ->
        let t = next st in
        let op = if t.Lexer.tok = Lexer.PLUS then Add else Sub in
        let rhs = parse_term st in
        loop { e = Bin (op, lhs, rhs); eloc = t.Lexer.loc }
    | _ -> lhs
  in
  loop (parse_term st)

(* card value: a literal (possibly negated) or a braced expression *)
let parse_value st =
  let t = peek st in
  match t.Lexer.tok with
  | Lexer.NUMBER (v, u) ->
      ignore (next st);
      { e = Num (v, u); eloc = t.Lexer.loc }
  | Lexer.MINUS -> (
      ignore (next st);
      match (peek st).Lexer.tok with
      | Lexer.NUMBER (v, u) ->
          ignore (next st);
          { e = Num (-.v, u); eloc = t.Lexer.loc }
      | _ -> syntax_error (peek st) "a number after '-'")
  | Lexer.LBRACE -> (
      ignore (next st);
      let e = parse_expr st in
      match (next st).Lexer.tok with
      | Lexer.RBRACE -> e
      | _ -> syntax_error st.toks.(st.pos - 1) "'}'")
  | _ -> syntax_error t "a value (number or {expression})"

let starts_value st =
  match (peek st).Lexer.tok with
  | Lexer.NUMBER _ | Lexer.MINUS | Lexer.LBRACE -> true
  | _ -> false

let parse_node st =
  let t = next st in
  match t.Lexer.tok with
  | Lexer.IDENT name -> { nname = name; nloc = t.Lexer.loc }
  | Lexer.NUMBER (v, u) ->
      let i = int_of_float v in
      if float_of_int i <> v || i < 0 || u <> "" then
        Diag.error t.Lexer.loc "node names must be identifiers or nonnegative integers";
      { nname = string_of_int i; nloc = t.Lexer.loc }
  | _ -> syntax_error t "a node name"

(* ---- key=value / flag tails ---- *)

type tail_item =
  | Key of string * Loc.t * expr
  | Int_list of string * Loc.t * int list
  | Name of string * Loc.t * string  (* key=bareword, e.g. engine=mft *)
  | Flag of string * Loc.t

let parse_int_list st =
  let one () =
    let t = next st in
    match t.Lexer.tok with
    | Lexer.NUMBER (v, u) ->
        let i = int_of_float v in
        if float_of_int i <> v || i < 0 || u <> "" then
          Diag.error t.Lexer.loc "expected a nonnegative integer";
        i
    | _ -> syntax_error t "an integer"
  in
  let rec more acc =
    match (peek st).Lexer.tok with
    | Lexer.COMMA ->
        ignore (next st);
        more (one () :: acc)
    | _ -> List.rev acc
  in
  more [ one () ]

let item_key = function
  | Key (k, _, _) | Int_list (k, _, _) | Name (k, _, _) | Flag (k, _) -> k

let item_loc = function
  | Key (_, l, _) | Int_list (_, l, _) | Name (_, l, _) | Flag (_, l) -> l

(* [int_keys] values are comma-separated integer lists; [name_keys] take a
   bare identifier. *)
let parse_tail ?(int_keys = []) ?(name_keys = []) st =
  let rec loop acc =
    match (peek st).Lexer.tok with
    | Lexer.IDENT key ->
        let t = next st in
        let loc = t.Lexer.loc in
        let k = String.lowercase_ascii key in
        let item =
          match (peek st).Lexer.tok with
          | Lexer.EQUALS ->
              ignore (next st);
              if List.mem k int_keys then Int_list (k, loc, parse_int_list st)
              else if List.mem k name_keys then (
                match (next st).Lexer.tok with
                | Lexer.IDENT v -> Name (k, loc, String.lowercase_ascii v)
                | _ -> syntax_error st.toks.(st.pos - 1) "a name")
              else Key (k, loc, parse_value st)
          | _ -> Flag (k, loc)
        in
        if List.exists (fun i -> item_key i = k) acc then
          Diag.error loc "duplicate %S" k;
        loop (item :: acc)
    | _ -> List.rev acc
  in
  loop []

let find_key loc_of tail card k =
  match
    List.find_map (function Key (k', _, e) when k' = k -> Some e | _ -> None) tail
  with
  | Some e -> e
  | None -> Diag.error loc_of "%s: missing %s=<value>" card k

let find_key_opt tail k =
  List.find_map (function Key (k', _, e) when k' = k -> Some e | _ -> None) tail

let find_flag tail k =
  List.exists (function Flag (k', _) -> k' = k | _ -> false) tail

let find_name_opt tail k =
  List.find_map (function Name (k', _, v) when k' = k -> Some v | _ -> None) tail

let check_tail _loc card tail ~keys ~int_keys ~flags ~name_keys =
  List.iter
    (fun item ->
      let k = item_key item in
      let known =
        match item with
        | Key _ -> keys
        | Int_list _ -> int_keys
        | Name _ -> name_keys
        | Flag _ -> flags
      in
      if not (List.mem k known) then
        Diag.error (item_loc item) "%s: unknown option %S (expected %s)" card k
          (String.concat ", " (keys @ int_keys @ name_keys @ flags)))
    tail

(* ---- waveforms ---- *)

let parse_wave st =
  if starts_value st then Dc (parse_value st)
  else
    let t = next st in
    match t.Lexer.tok with
    | Lexer.IDENT kw -> (
        match String.lowercase_ascii kw with
        | "dc" -> Dc (parse_value st)
        | "sin" ->
            let offset = parse_value st in
            let amp = parse_value st in
            let freq = parse_value st in
            let phase_deg = if starts_value st then Some (parse_value st) else None in
            Sin { offset; amp; freq; phase_deg }
        | "pwl" ->
            let rec pts acc =
              if starts_value st then begin
                let tm = parse_value st in
                if not (starts_value st) then
                  syntax_error (peek st) "a value (pwl points come in time/value pairs)";
                let v = parse_value st in
                pts ((tm, v) :: acc)
              end
              else List.rev acc
            in
            let l = pts [] in
            if l = [] then syntax_error (peek st) "at least one pwl time/value pair";
            Pwl l
        | _ -> Diag.error t.Lexer.loc "unknown waveform %S (expected dc, sin or pwl)" kw)
    | _ -> syntax_error t "a waveform (dc/sin/pwl or a value)"

(* ---- element cards ---- *)

let has_prefix p s =
  String.length s >= String.length p
  && String.uppercase_ascii (String.sub s 0 (String.length p)) = p

let parse_card st name loc =
  Scnoise_obs.Obs.incr c_cards;
  if has_prefix "OPI" name then begin
    let plus = parse_node st and minus = parse_node st and out = parse_node st in
    let tail = parse_tail st in
    check_tail loc name tail ~keys:[ "ugf"; "noise" ] ~int_keys:[] ~flags:[]
      ~name_keys:[];
    Opamp_integrator
      {
        name;
        plus;
        minus;
        out;
        ugf = find_key loc tail name "ugf";
        noise = find_key_opt tail "noise";
      }
  end
  else if has_prefix "OP1" name then begin
    let plus = parse_node st and minus = parse_node st and out = parse_node st in
    let tail = parse_tail st in
    check_tail loc name tail ~keys:[ "gm"; "rout"; "cout"; "noise" ] ~int_keys:[]
      ~flags:[] ~name_keys:[];
    Opamp_single_stage
      {
        name;
        plus;
        minus;
        out;
        gm = find_key loc tail name "gm";
        rout = find_key loc tail name "rout";
        cout = find_key loc tail name "cout";
        noise = find_key_opt tail "noise";
      }
  end
  else
    match Char.uppercase_ascii name.[0] with
    | 'R' ->
        let n1 = parse_node st and n2 = parse_node st in
        let r = parse_value st in
        let tail = parse_tail st in
        check_tail loc name tail ~keys:[] ~int_keys:[] ~flags:[ "noiseless" ]
          ~name_keys:[];
        Resistor { name; n1; n2; r; noisy = not (find_flag tail "noiseless") }
    | 'C' ->
        let n1 = parse_node st and n2 = parse_node st in
        let c = parse_value st in
        Capacitor { name; n1; n2; c }
    | 'S' ->
        let n1 = parse_node st and n2 = parse_node st in
        let r_on = parse_value st in
        let tail = parse_tail ~int_keys:[ "closed" ] st in
        check_tail loc name tail ~keys:[] ~int_keys:[ "closed" ]
          ~flags:[ "noiseless" ] ~name_keys:[];
        let closed_in =
          match
            List.find_map
              (function Int_list ("closed", _, l) -> Some l | _ -> None)
              tail
          with
          | Some l -> l
          | None -> Diag.error loc "%s: missing closed=<phase list>" name
        in
        Switch
          { name; n1; n2; r_on; closed_in; noisy = not (find_flag tail "noiseless") }
    | 'V' ->
        let n = parse_node st in
        Vsource { name; n; wave = parse_wave st }
    | 'I' ->
        let n1 = parse_node st and n2 = parse_node st in
        Isource { name; n1; n2; wave = parse_wave st }
    | 'N' -> (
        let n1 = parse_node st and n2 = parse_node st in
        match (peek st).Lexer.tok with
        | Lexer.IDENT kw when String.lowercase_ascii kw = "flicker" ->
            ignore (next st);
            let tail = parse_tail st in
            check_tail loc name tail ~keys:[ "psd1hz"; "fmin"; "fmax"; "spd" ]
              ~int_keys:[] ~flags:[] ~name_keys:[];
            Noise
              {
                name;
                n1;
                n2;
                kind =
                  Flicker
                    {
                      psd_1hz = find_key loc tail name "psd1hz";
                      fmin = find_key loc tail name "fmin";
                      fmax = find_key loc tail name "fmax";
                      sections_per_decade = find_key_opt tail "spd";
                    };
              }
        | _ ->
            let tail = parse_tail st in
            check_tail loc name tail ~keys:[ "psd" ] ~int_keys:[] ~flags:[]
              ~name_keys:[];
            Noise { name; n1; n2; kind = White { psd = find_key loc tail name "psd" } })
    | _ ->
        Diag.error loc
          "unknown element card %S (expected an R/C/S/V/I/N/OPI/OP1 prefix)" name

(* ---- directives ---- *)

let parse_directive st d loc =
  match d with
  | "param" ->
      let t = next st in
      let pname =
        match t.Lexer.tok with
        | Lexer.IDENT n -> n
        | _ -> syntax_error t "a parameter name"
      in
      (match (peek st).Lexer.tok with
      | Lexer.EQUALS -> ignore (next st)
      | _ -> ());
      let value =
        match (peek st).Lexer.tok with
        | Lexer.LBRACE -> parse_value st
        | _ -> parse_expr st
      in
      Param { pname; value }
  | "clock" -> (
      let t = next st in
      match t.Lexer.tok with
      | Lexer.IDENT kind -> (
          match String.lowercase_ascii kind with
          | "duty" ->
              let tail = parse_tail st in
              check_tail loc ".clock duty" tail ~keys:[ "period"; "duty" ]
                ~int_keys:[] ~flags:[] ~name_keys:[];
              Clock
                (Clock_duty
                   {
                     period = find_key loc tail ".clock duty" "period";
                     duty = find_key loc tail ".clock duty" "duty";
                   })
          | "two_phase" ->
              let tail = parse_tail st in
              check_tail loc ".clock two_phase" tail ~keys:[ "period"; "gap" ]
                ~int_keys:[] ~flags:[] ~name_keys:[];
              Clock
                (Clock_two_phase
                   {
                     period = find_key loc tail ".clock two_phase" "period";
                     gap = find_key_opt tail "gap";
                   })
          | "phases" ->
              let rec vals acc =
                if starts_value st then vals (parse_value st :: acc)
                else List.rev acc
              in
              let ds = vals [] in
              if ds = [] then syntax_error (peek st) "at least one phase duration";
              Clock (Clock_phases ds)
          | other ->
              Diag.error t.Lexer.loc
                "unknown clock form %S (expected duty, two_phase or phases)" other)
      | _ -> syntax_error t "a clock form (duty, two_phase or phases)")
  | "output" -> Output (parse_node st)
  | "temp" -> Temp (parse_value st)
  | "psd" ->
      let tail = parse_tail ~name_keys:[ "engine" ] st in
      check_tail loc ".psd" tail ~keys:[ "fmin"; "fmax"; "points" ] ~int_keys:[]
        ~flags:[ "log" ] ~name_keys:[ "engine" ];
      Analysis
        (Psd
           {
             fmin = find_key_opt tail "fmin";
             fmax = find_key_opt tail "fmax";
             points = find_key_opt tail "points";
             log = find_flag tail "log";
             engine = find_name_opt tail "engine";
           })
  | "variance" -> Analysis Variance
  | "contrib" ->
      let tail = parse_tail st in
      check_tail loc ".contrib" tail ~keys:[ "f" ] ~int_keys:[] ~flags:[]
        ~name_keys:[];
      Analysis (Contrib { f = find_key_opt tail "f" })
  | "transfer" ->
      let tail = parse_tail st in
      check_tail loc ".transfer" tail ~keys:[ "fmin"; "fmax"; "points"; "k" ]
        ~int_keys:[] ~flags:[] ~name_keys:[];
      Analysis
        (Transfer
           {
             fmin = find_key_opt tail "fmin";
             fmax = find_key_opt tail "fmax";
             points = find_key_opt tail "points";
             k = find_key_opt tail "k";
           })
  | "end" -> End
  | other -> Diag.error loc "unknown directive .%s" other

(* ---- driver ---- *)

let parse_tokens source toks =
  ignore source;
  let st = { toks = Array.of_list toks; pos = 0 } in
  let rec loop acc =
    match (peek st).Lexer.tok with
    | Lexer.EOL ->
        ignore (next st);
        loop acc
    | Lexer.EOF -> List.rev acc
    | Lexer.DIRECTIVE d ->
        let t = next st in
        let s = parse_directive st d t.Lexer.loc in
        expect_eol st;
        let acc = { s; sloc = t.Lexer.loc } :: acc in
        if s = End then List.rev acc else loop acc
    | Lexer.IDENT name ->
        let t = next st in
        let s = Card (parse_card st name t.Lexer.loc) in
        expect_eol st;
        loop ({ s; sloc = t.Lexer.loc } :: acc)
    | _ -> syntax_error (peek st) "an element card or a directive"
  in
  let stmts = loop [] in
  let eof = st.toks.(Array.length st.toks - 1).Lexer.loc in
  { stmts; eof }

let parse source = parse_tokens source (Lexer.tokenize source)
