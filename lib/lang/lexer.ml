type token =
  | IDENT of string
  | NUMBER of float * string
      (** value and canonical unit annotation ([""] when the literal
          carried none): ["ohm"], ["F"], ["Hz"], ["V"], ["A"], ["s"] or
          ["K"] *)
  | DIRECTIVE of string
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | CARET
  | EQUALS
  | COMMA
  | EOL
  | EOF

type located = { tok : token; loc : Loc.t }

let c_tokens = Scnoise_obs.Obs.counter "lang_tokens"

let is_letter c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c = is_letter c || c = '_'

let is_ident_char c = is_letter c || is_digit c || c = '_'

(* Unit tails after the SI scale ("2.5pF", "10kohm") canonicalise to a
   dimension annotation the checker's units-inference pass consumes.
   Unrecognised tails stay silently ignored (SPICE convention), so
   decks that never spell units behave exactly as before. *)
let unit_of_tail s =
  match s with
  | "ohm" | "ohms" -> Some "ohm"
  | "f" | "farad" | "farads" -> Some "F"
  | "hz" | "hertz" -> Some "Hz"
  | "v" | "volt" | "volts" -> Some "V"
  | "a" | "amp" | "amps" | "ampere" | "amperes" -> Some "A"
  | "s" | "sec" | "second" | "seconds" -> Some "s"
  | "kelvin" -> Some "K"
  | _ -> None

(* SI suffix table, as a decimal exponent so the suffix can be spliced
   into the literal and the value stays correctly rounded (10u lexes to
   exactly 1e-5, not 10.0 *. 1e-6).  "meg" must be tried before the
   single-letter "m".  A whole-word unit name binds before a scale
   letter ("1farad" is one farad, not femto-junk) — but the bare "f"
   keeps its SPICE meaning, femto.  Returns (decimal exponent,
   canonical unit annotation or ""). *)
let suffix_parse loc letters =
  let s = String.lowercase_ascii letters in
  let starts p = String.length s >= String.length p && String.sub s 0 (String.length p) = p in
  if s = "" then (0, "")
  else
    match unit_of_tail s with
    | Some u when String.length s > 1 -> (0, u)
    | _ ->
        let scale, tail =
          if starts "meg" then (Some 6, String.sub s 3 (String.length s - 3))
          else
            let se =
              match s.[0] with
              | 't' -> Some 12
              | 'g' -> Some 9
              | 'k' -> Some 3
              | 'm' -> Some (-3)
              | 'u' -> Some (-6)
              | 'n' -> Some (-9)
              | 'p' -> Some (-12)
              | 'f' -> Some (-15)
              | _ -> None
            in
            (se, String.sub s 1 (String.length s - 1))
        in
        (match (scale, unit_of_tail s) with
        | Some se, _ ->
            (se, match unit_of_tail tail with Some u -> u | None -> "")
        | None, Some u -> (0, u) (* single-letter unit: "s", "v", "a" *)
        | None, None -> Diag.error loc "unknown SI suffix %S on number" letters)

(* Lex the payload of one physical line (the continuation '+', if any,
   already consumed) into [acc]. *)
let lex_line ~file ~lineno ~start line acc =
  let n = String.length line in
  let acc = ref acc in
  let pos = ref start in
  let loc_at p = Loc.make ~file ~line:lineno ~col:(p + 1) in
  let emit tok p = acc := { tok; loc = loc_at p } :: !acc in
  let number p0 =
    let p = ref p0 in
    while !p < n && is_digit line.[!p] do incr p done;
    if !p < n && line.[!p] = '.' then begin
      incr p;
      while !p < n && is_digit line.[!p] do incr p done
    end;
    (* exponent only when 'e'/'E' is followed by a (signed) digit;
       otherwise the letters form an SI/unit tail *)
    (if !p + 1 < n && (line.[!p] = 'e' || line.[!p] = 'E') then
       let q = if line.[!p + 1] = '+' || line.[!p + 1] = '-' then !p + 2 else !p + 1 in
       if q < n && is_digit line.[q] then begin
         p := q;
         while !p < n && is_digit line.[!p] do incr p done
       end);
    let mantissa = String.sub line p0 (!p - p0) in
    let s0 = !p in
    while !p < n && is_letter line.[!p] do incr p done;
    let letters = String.sub line s0 (!p - s0) in
    let v =
      match float_of_string_opt mantissa with
      | Some v -> v
      | None -> Diag.error (loc_at p0) "malformed number %S" mantissa
    in
    let se, unit = suffix_parse (loc_at s0) letters in
    let v =
      match se with
      | 0 -> v
      | se ->
          let base, ex =
            match
              ( String.index_opt mantissa 'e',
                String.index_opt mantissa 'E' )
            with
            | Some i, _ | None, Some i ->
                ( String.sub mantissa 0 i,
                  int_of_string
                    (String.sub mantissa (i + 1)
                       (String.length mantissa - i - 1)) )
            | None, None -> (mantissa, 0)
          in
          float_of_string (Printf.sprintf "%se%d" base (ex + se))
    in
    emit (NUMBER (v, unit)) p0;
    pos := !p
  in
  while !pos < n do
    let c = line.[!pos] in
    if c = ' ' || c = '\t' then incr pos
    else if c = ';' then pos := n (* inline comment *)
    else if is_ident_start c then begin
      let p0 = !pos in
      while !pos < n && is_ident_char line.[!pos] do incr pos done;
      emit (IDENT (String.sub line p0 (!pos - p0))) p0
    end
    else if is_digit c then number !pos
    else if c = '.' && !pos + 1 < n && is_digit line.[!pos + 1] then number !pos
    else if c = '.' && !pos + 1 < n && is_letter line.[!pos + 1] then begin
      let p0 = !pos in
      incr pos;
      let s0 = !pos in
      while !pos < n && is_ident_char line.[!pos] do incr pos done;
      emit (DIRECTIVE (String.lowercase_ascii (String.sub line s0 (!pos - s0)))) p0
    end
    else begin
      let tok =
        match c with
        | '{' -> LBRACE
        | '}' -> RBRACE
        | '(' -> LPAREN
        | ')' -> RPAREN
        | '+' -> PLUS
        | '-' -> MINUS
        | '*' -> STAR
        | '/' -> SLASH
        | '^' -> CARET
        | '=' -> EQUALS
        | ',' -> COMMA
        | _ -> Diag.error (loc_at !pos) "illegal character %C" c
      in
      emit tok !pos;
      incr pos
    end
  done;
  !acc

let first_non_blank line =
  let n = String.length line in
  let rec go i = if i < n && (line.[i] = ' ' || line.[i] = '\t') then go (i + 1) else i in
  let i = go 0 in
  if i < n then Some (i, line.[i]) else None

let tokenize source =
  let file = Source.name source in
  let nl = Source.n_lines source in
  let acc = ref [] in
  (* location at which the current logical line would end, if the next
     content line is not a continuation *)
  let pending_eol = ref None in
  for li = 1 to nl do
    let line = Option.get (Source.line source li) in
    match first_non_blank line with
    | None -> () (* blank: neither content nor a continuation break *)
    | Some (_, '*') -> () (* full-line comment *)
    | Some (i, '+') when !pending_eol <> None ->
        (* continuation: swallow the '+' and keep the logical line open *)
        acc := lex_line ~file ~lineno:li ~start:(i + 1) line !acc;
        pending_eol := Some (Loc.make ~file ~line:li ~col:(String.length line + 1))
    | Some (i, c) ->
        if c = '+' then
          Diag.error (Loc.make ~file ~line:li ~col:(i + 1))
            "continuation line with nothing to continue";
        (match !pending_eol with
        | Some loc -> acc := { tok = EOL; loc } :: !acc
        | None -> ());
        acc := lex_line ~file ~lineno:li ~start:i line !acc;
        pending_eol := Some (Loc.make ~file ~line:li ~col:(String.length line + 1))
  done;
  let eof_loc =
    match !pending_eol with
    | Some loc ->
        acc := { tok = EOL; loc } :: !acc;
        loc
    | None -> Loc.make ~file ~line:(max nl 1) ~col:1
  in
  acc := { tok = EOF; loc = eof_loc } :: !acc;
  let toks = List.rev !acc in
  Scnoise_obs.Obs.add c_tokens (List.length toks);
  toks

let describe = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | NUMBER (v, "") -> Printf.sprintf "number %g" v
  | NUMBER (v, u) -> Printf.sprintf "number %g %s" v u
  | DIRECTIVE d -> Printf.sprintf "directive .%s" d
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | CARET -> "'^'"
  | EQUALS -> "'='"
  | COMMA -> "','"
  | EOL -> "end of line"
  | EOF -> "end of deck"
