module Obs = Scnoise_obs.Obs

let c_diags = Obs.counter "lang_diagnostics"

type loaded = { source : Source.t; ast : Ast.deck; elab : Elab.t }

let render_error source e =
  match Diag.render_exn source e with
  | Some msg ->
      Obs.incr c_diags;
      Error msg
  | None -> raise e

let parse_string ~name text =
  let source = Source.of_string ~name text in
  match Obs.with_span "lang.parse" (fun () -> Parser.parse source) with
  | ast -> Ok (source, ast)
  | exception (Diag.Error _ as e) -> render_error source e

let load_ast source ast =
  match Obs.with_span "lang.elaborate" (fun () -> Elab.elaborate ast) with
  | elab -> Ok { source; ast; elab }
  | exception (Diag.Error _ as e) -> render_error source e

let load_string ~name text =
  Result.bind (parse_string ~name text) (fun (source, ast) -> load_ast source ast)

(* "-" reads the deck from stdin, so scripts and service clients can
   pipe decks without temp files; diagnostics then quote "<stdin>". *)
let load_file path =
  if path = "-" then
    load_string ~name:"<stdin>" (In_channel.input_all In_channel.stdin)
  else
    match Source.of_file path with
    | exception Sys_error msg -> Error msg
    | source -> (
        match Obs.with_span "lang.parse" (fun () -> Parser.parse source) with
        | ast -> load_ast source ast
        | exception (Diag.Error _ as e) -> render_error source e)

let looks_like_path name =
  name = "-"
  || Filename.check_suffix name ".scn"
  || String.contains name '/'
  || Sys.file_exists name
