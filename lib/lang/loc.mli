(** Source locations for `.scn` deck diagnostics.

    Lines and columns are 1-based; {!dummy} (line 0) marks synthesised
    nodes, e.g. after {!Ast.strip} normalisation for AST comparison. *)

type t = { file : string; line : int; col : int }

val make : file:string -> line:int -> col:int -> t

val dummy : t

val to_string : t -> string
(** ["file:line:col"], the prefix of every rendered diagnostic. *)
