(** One-stop `.scn` deck loading: read, lex, parse, elaborate, render
    diagnostics.  The CLI front end goes through this module only.

    Parse and elaboration are instrumented with {!Scnoise_obs} spans
    ([lang.parse], [lang.elaborate]) and counters ([lang_tokens],
    [lang_cards], [lang_diagnostics]) like every other pipeline phase. *)

type loaded = {
  source : Source.t;
  ast : Ast.deck;
  elab : Elab.t;
}

val parse_string : name:string -> string -> (Source.t * Ast.deck, string) result
(** Lex + parse only; [Error] carries a rendered diagnostic. *)

val load_string : name:string -> string -> (loaded, string) result

val load_file : string -> (loaded, string) result
(** [Error] also covers unreadable files ([Sys_error]).  The path ["-"]
    reads the deck from standard input (diagnostics quote [<stdin>]). *)

val looks_like_path : string -> bool
(** Heuristic used by the CLI to route an argument to the deck loader
    rather than the built-in circuit registry: ["-"] (stdin), a [.scn]
    suffix, a path separator, or an existing file. *)
