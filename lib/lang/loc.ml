type t = { file : string; line : int; col : int }

let make ~file ~line ~col = { file; line; col }

let dummy = { file = ""; line = 0; col = 0 }

let to_string l = Printf.sprintf "%s:%d:%d" l.file l.line l.col
