(** Recursive-descent parser from a token stream to the located
    {!Ast.deck}.

    Deck grammar (one statement per logical line):

    {v
deck      := (card | directive)* [.end]
card      := Rname  n1 n2 value ["noiseless"]
           | Cname  n1 n2 value
           | Sname  n1 n2 value closed=INT[,INT...] ["noiseless"]
           | Vname  n  wave
           | Iname  n1 n2 wave
           | Nname  n1 n2 (psd=value | "flicker" psd1hz=value fmin=value
                                        fmax=value [spd=value])
           | OPIname plus minus out ugf=value [noise=value]
           | OP1name plus minus out gm=value rout=value cout=value
                                    [noise=value]
wave      := value | "dc" value | "sin" value value value [value]
           | "pwl" (value value)+
directive := .param NAME [=] expr
           | .clock ("duty" period=value duty=value
                    | "two_phase" period=value [gap=value]
                    | "phases" value+)
           | .output node | .temp value
           | .psd [fmin=value] [fmax=value] [points=value] [engine=NAME]
                  ["log"]
           | .variance | .contrib [f=value] | .transfer [fmin=..] [fmax=..]
                  [points=value] [k=value]
           | .end
value     := [-]NUMBER | "{" expr "}"
    v}

    Element card types are chosen by the (case-insensitive) leading
    letters of the card name, SPICE style.  Raises {!Diag.Error} on any
    syntax problem. *)

val parse : Source.t -> Ast.deck

val parse_tokens : Source.t -> Lexer.located list -> Ast.deck
(** [parse] = [tokenize] + [parse_tokens]; split for tests. *)
