(** Hand-written lexer for `.scn` decks.

    Lexical structure (SPICE-flavoured):

    - a line whose first non-blank character is [*] is a comment;
      [;] starts a comment that runs to the end of the physical line;
    - a line whose first non-blank character is [+] continues the
      previous logical line (no {!EOL} is emitted between them);
    - numbers are decimal floats with an optional SI suffix
      ([f p n u m k meg g t], case-insensitive); alphabetic unit tails
      after the suffix are ignored, so [10kohm], [2.5pF] and [1meg] all
      lex as expected.  An alphabetic tail that starts with no known
      suffix (e.g. [10q]) is a lexical error;
    - identifiers are [[A-Za-z_][A-Za-z0-9_]*]; a [.] followed by a
      letter begins a directive name ([.clock], [.psd], ...).

    All failures raise {!Diag.Error} with the offending position. *)

type token =
  | IDENT of string
  | NUMBER of float
  | DIRECTIVE of string  (** lowercased, without the dot *)
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | CARET
  | EQUALS
  | COMMA
  | EOL  (** end of a logical line *)
  | EOF

type located = { tok : token; loc : Loc.t }

val tokenize : Source.t -> located list
(** The token stream, always terminated by a single {!EOF}. *)

val describe : token -> string
(** Human form for syntax-error messages, e.g. ["number 10.5"]. *)
