(** Hand-written lexer for `.scn` decks.

    Lexical structure (SPICE-flavoured):

    - a line whose first non-blank character is [*] is a comment;
      [;] starts a comment that runs to the end of the physical line;
    - a line whose first non-blank character is [+] continues the
      previous logical line (no {!EOL} is emitted between them);
    - numbers are decimal floats with an optional SI suffix
      ([f p n u m k meg g t], case-insensitive); a recognised alphabetic
      unit tail after the suffix ([ohm farad hz volt amp sec kelvin] and
      their variants) is canonicalised into the token's unit annotation,
      so [10kohm], [2.5pF] and [1meg] all lex as expected and carry
      their unit when one was spelled.  A whole-word unit name binds
      before a scale letter ([1farad] is one farad), except the bare [f]
      which keeps its SPICE meaning, femto.  An alphabetic tail that is
      neither a scale nor a unit (e.g. [10q]) is a lexical error;
    - identifiers are [[A-Za-z_][A-Za-z0-9_]*]; a [.] followed by a
      letter begins a directive name ([.clock], [.psd], ...).

    All failures raise {!Diag.Error} with the offending position. *)

type token =
  | IDENT of string
  | NUMBER of float * string
      (** value and canonical unit annotation ([""] when the literal
          carried none): ["ohm"], ["F"], ["Hz"], ["V"], ["A"], ["s"] or
          ["K"] *)
  | DIRECTIVE of string  (** lowercased, without the dot *)
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | CARET
  | EQUALS
  | COMMA
  | EOL  (** end of a logical line *)
  | EOF

type located = { tok : token; loc : Loc.t }

val tokenize : Source.t -> located list
(** The token stream, always terminated by a single {!EOF}. *)

val describe : token -> string
(** Human form for syntax-error messages, e.g. ["number 10.5"]. *)
