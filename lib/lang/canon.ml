open Ast

(* The canonical form of a deck: every parameter reference and
   arithmetic expression replaced by its evaluated value, comments and
   layout gone (they never reach the AST), [.param]/[.end] dropped, and
   the clock/temperature/output directives hoisted into a fixed header —
   so any two decks that elaborate to the same circuit (same elements in
   the same card order) canonicalise to the same bytes no matter how
   they were formatted or how their parameters were named and ordered.

   Element cards keep deck order: element order fixes the compiled
   state ordering, and the content hash must only identify decks whose
   analysis results are bit-identical.

   Analysis directives (.psd, .contrib, ...) are *excluded*: they are
   request defaults, not part of the circuit, so decks differing only in
   directives share prepared solvers in the analysis cache. *)

let version = "scnoise.canon/1"

(* Unit annotations are dropped: they change nothing about the compiled
   system, so "1pF" and "1e-12" must share a content address. *)
let num ~params x = { e = Num (Elab.eval_const ~params x, ""); eloc = Loc.dummy }

let num_opt ~params = Option.map (num ~params)

let canon_wave ~params = function
  | Dc v -> Dc (num ~params v)
  | Sin { offset; amp; freq; phase_deg } ->
      Sin
        {
          offset = num ~params offset;
          amp = num ~params amp;
          freq = num ~params freq;
          phase_deg = num_opt ~params phase_deg;
        }
  | Pwl pts ->
      Pwl (List.map (fun (t, v) -> (num ~params t, num ~params v)) pts)

let canon_card ~params = function
  | Resistor r -> Resistor { r with r = num ~params r.r }
  | Capacitor c -> Capacitor { c with c = num ~params c.c }
  | Switch s -> Switch { s with r_on = num ~params s.r_on }
  | Vsource v -> Vsource { v with wave = canon_wave ~params v.wave }
  | Isource i -> Isource { i with wave = canon_wave ~params i.wave }
  | Noise n ->
      let kind =
        match n.kind with
        | White { psd } -> White { psd = num ~params psd }
        | Flicker f ->
            Flicker
              {
                psd_1hz = num ~params f.psd_1hz;
                fmin = num ~params f.fmin;
                fmax = num ~params f.fmax;
                sections_per_decade = num_opt ~params f.sections_per_decade;
              }
      in
      Noise { n with kind }
  | Opamp_integrator o ->
      Opamp_integrator
        { o with ugf = num ~params o.ugf; noise = num_opt ~params o.noise }
  | Opamp_single_stage o ->
      Opamp_single_stage
        {
          o with
          gm = num ~params o.gm;
          rout = num ~params o.rout;
          cout = num ~params o.cout;
          noise = num_opt ~params o.noise;
        }

(* The clock header comes from the *elaborated* schedule, so the three
   AST spellings (duty / two_phase / phases) canonicalise identically
   whenever they produce the same phase durations. *)
let canonical (loaded_elab : Elab.t) (deck : Ast.deck) =
  let params = loaded_elab.Elab.params in
  let buf = Buffer.create 256 in
  Buffer.add_string buf version;
  Buffer.add_char buf '\n';
  Buffer.add_string buf ".clock phases";
  Array.iter
    (fun d ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf (Printer.float_str d))
    (Scnoise_circuit.Clock.durations loaded_elab.Elab.clock);
  Buffer.add_char buf '\n';
  (match loaded_elab.Elab.temperature with
  | Some t ->
      Buffer.add_string buf (".temp " ^ Printer.float_str t);
      Buffer.add_char buf '\n'
  | None -> ());
  Buffer.add_string buf (".output " ^ loaded_elab.Elab.output_node);
  Buffer.add_char buf '\n';
  List.iter
    (fun { s; sloc = _ } ->
      match s with
      | Card c ->
          Buffer.add_string buf (Printer.card (canon_card ~params c));
          Buffer.add_char buf '\n'
      | Param _ | Clock _ | Output _ | Temp _ | Analysis _ | End -> ())
    deck.stmts;
  Buffer.contents buf

(* MD5 over the canonical bytes (stdlib [Digest]; no external deps).
   This is the content address of the analysis caches: two decks share a
   hash iff their compiled systems — and therefore every analysis
   result — are bit-identical. *)
let hash elab deck = Digest.to_hex (Digest.string (canonical elab deck))

let hash_loaded (l : Deck.loaded) = hash l.Deck.elab l.Deck.ast
