type binop = Add | Sub | Mul | Div | Pow

type expr = { e : expr_node; eloc : Loc.t }

and expr_node =
  | Num of float * string
  | Ref of string
  | Neg of expr
  | Bin of binop * expr * expr
  | Call of string * expr list

type node = { nname : string; nloc : Loc.t }

type waveform =
  | Dc of expr
  | Sin of { offset : expr; amp : expr; freq : expr; phase_deg : expr option }
  | Pwl of (expr * expr) list

type noise_kind =
  | White of { psd : expr }
  | Flicker of {
      psd_1hz : expr;
      fmin : expr;
      fmax : expr;
      sections_per_decade : expr option;
    }

type card =
  | Resistor of { name : string; n1 : node; n2 : node; r : expr; noisy : bool }
  | Capacitor of { name : string; n1 : node; n2 : node; c : expr }
  | Switch of {
      name : string;
      n1 : node;
      n2 : node;
      r_on : expr;
      closed_in : int list;
      noisy : bool;
    }
  | Vsource of { name : string; n : node; wave : waveform }
  | Isource of { name : string; n1 : node; n2 : node; wave : waveform }
  | Noise of { name : string; n1 : node; n2 : node; kind : noise_kind }
  | Opamp_integrator of {
      name : string;
      plus : node;
      minus : node;
      out : node;
      ugf : expr;
      noise : expr option;
    }
  | Opamp_single_stage of {
      name : string;
      plus : node;
      minus : node;
      out : node;
      gm : expr;
      rout : expr;
      cout : expr;
      noise : expr option;
    }

type clock_spec =
  | Clock_duty of { period : expr; duty : expr }
  | Clock_two_phase of { period : expr; gap : expr option }
  | Clock_phases of expr list

type analysis =
  | Psd of {
      fmin : expr option;
      fmax : expr option;
      points : expr option;
      log : bool;
      engine : string option;
    }
  | Variance
  | Contrib of { f : expr option }
  | Transfer of {
      fmin : expr option;
      fmax : expr option;
      points : expr option;
      k : expr option;
    }

type stmt =
  | Card of card
  | Param of { pname : string; value : expr }
  | Clock of clock_spec
  | Output of node
  | Temp of expr
  | Analysis of analysis
  | End

type stmt_l = { s : stmt; sloc : Loc.t }

type deck = { stmts : stmt_l list; eof : Loc.t }

(* ---- location stripping (for modulo-location equality) ---- *)

let rec strip_expr x =
  let e =
    match x.e with
    | Num _ | Ref _ -> x.e
    | Neg a -> Neg (strip_expr a)
    | Bin (op, a, b) -> Bin (op, strip_expr a, strip_expr b)
    | Call (f, args) -> Call (f, List.map strip_expr args)
  in
  { e; eloc = Loc.dummy }

let strip_node n = { n with nloc = Loc.dummy }

let strip_opt = Option.map strip_expr

let strip_wave = function
  | Dc v -> Dc (strip_expr v)
  | Sin { offset; amp; freq; phase_deg } ->
      Sin
        {
          offset = strip_expr offset;
          amp = strip_expr amp;
          freq = strip_expr freq;
          phase_deg = strip_opt phase_deg;
        }
  | Pwl pts -> Pwl (List.map (fun (t, v) -> (strip_expr t, strip_expr v)) pts)

let strip_card = function
  | Resistor r ->
      Resistor
        { r with n1 = strip_node r.n1; n2 = strip_node r.n2; r = strip_expr r.r }
  | Capacitor c ->
      Capacitor
        { c with n1 = strip_node c.n1; n2 = strip_node c.n2; c = strip_expr c.c }
  | Switch s ->
      Switch
        {
          s with
          n1 = strip_node s.n1;
          n2 = strip_node s.n2;
          r_on = strip_expr s.r_on;
        }
  | Vsource v -> Vsource { v with n = strip_node v.n; wave = strip_wave v.wave }
  | Isource i ->
      Isource
        {
          i with
          n1 = strip_node i.n1;
          n2 = strip_node i.n2;
          wave = strip_wave i.wave;
        }
  | Noise n ->
      let kind =
        match n.kind with
        | White { psd } -> White { psd = strip_expr psd }
        | Flicker { psd_1hz; fmin; fmax; sections_per_decade } ->
            Flicker
              {
                psd_1hz = strip_expr psd_1hz;
                fmin = strip_expr fmin;
                fmax = strip_expr fmax;
                sections_per_decade = strip_opt sections_per_decade;
              }
      in
      Noise { n with n1 = strip_node n.n1; n2 = strip_node n.n2; kind }
  | Opamp_integrator o ->
      Opamp_integrator
        {
          o with
          plus = strip_node o.plus;
          minus = strip_node o.minus;
          out = strip_node o.out;
          ugf = strip_expr o.ugf;
          noise = strip_opt o.noise;
        }
  | Opamp_single_stage o ->
      Opamp_single_stage
        {
          o with
          plus = strip_node o.plus;
          minus = strip_node o.minus;
          out = strip_node o.out;
          gm = strip_expr o.gm;
          rout = strip_expr o.rout;
          cout = strip_expr o.cout;
          noise = strip_opt o.noise;
        }

let strip_clock = function
  | Clock_duty { period; duty } ->
      Clock_duty { period = strip_expr period; duty = strip_expr duty }
  | Clock_two_phase { period; gap } ->
      Clock_two_phase { period = strip_expr period; gap = strip_opt gap }
  | Clock_phases ds -> Clock_phases (List.map strip_expr ds)

let strip_analysis = function
  | Psd p ->
      Psd
        {
          p with
          fmin = strip_opt p.fmin;
          fmax = strip_opt p.fmax;
          points = strip_opt p.points;
        }
  | Variance -> Variance
  | Contrib { f } -> Contrib { f = strip_opt f }
  | Transfer t ->
      Transfer
        {
          fmin = strip_opt t.fmin;
          fmax = strip_opt t.fmax;
          points = strip_opt t.points;
          k = strip_opt t.k;
        }

let strip_stmt = function
  | Card c -> Card (strip_card c)
  | Param p -> Param { p with value = strip_expr p.value }
  | Clock c -> Clock (strip_clock c)
  | Output n -> Output (strip_node n)
  | Temp e -> Temp (strip_expr e)
  | Analysis a -> Analysis (strip_analysis a)
  | End -> End

let strip d =
  {
    stmts = List.map (fun s -> { s = strip_stmt s.s; sloc = Loc.dummy }) d.stmts;
    eof = Loc.dummy;
  }

(* the stripped trees contain no closures, so structural equality is safe *)
let equal a b = strip a = strip b
