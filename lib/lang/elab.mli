(** Elaborator: located AST → {!Scnoise_circuit.Netlist.t} +
    {!Scnoise_circuit.Clock.t} + evaluated analysis directives.

    Every failure is a {!Diag.Error} located at the offending card,
    node or expression: unknown parameters, bad element values (the
    [Netlist] builder's [Invalid_argument] is re-raised with the card's
    position), an unknown or ground [.output] node, duplicate or missing
    [.clock]/[.output] directives.  Structural defects that do not stop
    elaboration (switch phases outside the clock schedule, floating
    nodes, unused parameters, ...) are left to the [Scnoise_check] ERC
    pass, which consumes the location maps recorded here.

    Expressions know the constant [pi], the functions [sqrt exp log
    log10 abs min max pow], and every [.param] defined {e above} the
    point of use (strict top-to-bottom order). *)

module Netlist = Scnoise_circuit.Netlist
module Clock = Scnoise_circuit.Clock

(** Analysis directives with their expressions evaluated; [None] fields
    were omitted in the deck and fall back to CLI defaults. *)
type analysis =
  | Psd of {
      fmin : float option;
      fmax : float option;
      points : int option;
      log : bool;
      engine : string option;
    }
  | Variance
  | Contrib of { f : float option }
  | Transfer of {
      fmin : float option;
      fmax : float option;
      points : int option;
      k : int option;
    }

type slot = { slot_what : string; slot_dim : string; slot_expr : Ast.expr }
(** One value position in the deck whose physical dimension is fixed by
    syntax: [slot_what] names it for diagnostics ("R1 r", ".clock
    period"), [slot_dim] is the expected dimension ("ohm", "F", "Hz",
    "V", "A", "s", "K", "A/V", "A2/Hz", "V2/Hz", or "1" for
    dimensionless), and [slot_expr] is the raw expression tree with
    locations and unit annotations intact. *)

type t = {
  netlist : Netlist.t;
  clock : Clock.t;
  output_node : string;
  output_loc : Loc.t;
  temperature : float option;  (** from [.temp], kelvin *)
  analyses : (analysis * Loc.t) list;  (** in deck order, with the
      directive's location *)
  params : (string * float) list;  (** evaluated [.param]s, deck order *)
  unused_params : (string * Loc.t) list;  (** [.param]s never referenced
      by any later expression, deck order *)
  element_locs : (string * Loc.t) list;  (** element name → its card *)
  node_locs : (string * Loc.t) list;  (** node name → first reference *)
  value_slots : slot list;  (** every dimensioned value position, deck
      order — consumed by the units ERC pass *)
  param_exprs : (string * Ast.expr) list;  (** raw [.param] expression
      trees, deck order *)
}

val elaborate : Ast.deck -> t
(** Raises {!Diag.Error}. *)

val eval_const : params:(string * float) list -> Ast.expr -> float
(** Evaluate an expression of an {e already-elaborated} deck against its
    evaluated [params] (see {!t}'s [params] field).  Same semantics as
    elaboration-time evaluation; raises {!Diag.Error} only on
    expressions the elaborator would itself have rejected. *)
