(** Located abstract syntax for `.scn` decks.

    Every card and expression carries the {!Loc.t} of its first token so
    the elaborator can attach diagnostics; {!strip} erases locations
    (for the parse → print → parse round-trip equality used in tests)
    and {!equal} compares decks modulo locations. *)

type binop = Add | Sub | Mul | Div | Pow

type expr = { e : expr_node; eloc : Loc.t }

and expr_node =
  | Num of float * string
      (** value plus its canonical unit annotation from the lexer
          (["ohm"], ["F"], ["Hz"], ["V"], ["A"], ["s"], ["K"], or [""]
          when the literal carried none) *)
  | Ref of string  (** parameter or built-in constant ([pi]) *)
  | Neg of expr
  | Bin of binop * expr * expr
  | Call of string * expr list

type node = { nname : string; nloc : Loc.t }
(** A node reference; ground is spelled [0]. *)

type waveform =
  | Dc of expr
  | Sin of { offset : expr; amp : expr; freq : expr; phase_deg : expr option }
  | Pwl of (expr * expr) list  (** (time, value) breakpoints *)

type noise_kind =
  | White of { psd : expr }
  | Flicker of {
      psd_1hz : expr;
      fmin : expr;
      fmax : expr;
      sections_per_decade : expr option;
    }

type card =
  | Resistor of { name : string; n1 : node; n2 : node; r : expr; noisy : bool }
  | Capacitor of { name : string; n1 : node; n2 : node; c : expr }
  | Switch of {
      name : string;
      n1 : node;
      n2 : node;
      r_on : expr;
      closed_in : int list;
      noisy : bool;
    }
  | Vsource of { name : string; n : node; wave : waveform }
  | Isource of { name : string; n1 : node; n2 : node; wave : waveform }
  | Noise of { name : string; n1 : node; n2 : node; kind : noise_kind }
  | Opamp_integrator of {
      name : string;
      plus : node;
      minus : node;
      out : node;
      ugf : expr;
      noise : expr option;
    }
  | Opamp_single_stage of {
      name : string;
      plus : node;
      minus : node;
      out : node;
      gm : expr;
      rout : expr;
      cout : expr;
      noise : expr option;
    }

type clock_spec =
  | Clock_duty of { period : expr; duty : expr }
  | Clock_two_phase of { period : expr; gap : expr option }
  | Clock_phases of expr list

type analysis =
  | Psd of {
      fmin : expr option;
      fmax : expr option;
      points : expr option;
      log : bool;
      engine : string option;
    }
  | Variance
  | Contrib of { f : expr option }
  | Transfer of {
      fmin : expr option;
      fmax : expr option;
      points : expr option;
      k : expr option;
    }

type stmt =
  | Card of card
  | Param of { pname : string; value : expr }
  | Clock of clock_spec
  | Output of node
  | Temp of expr
  | Analysis of analysis
  | End

type stmt_l = { s : stmt; sloc : Loc.t }

type deck = { stmts : stmt_l list; eof : Loc.t }

val strip : deck -> deck
(** Replace every location with {!Loc.dummy}. *)

val equal : deck -> deck -> bool
(** Structural equality modulo locations. *)
