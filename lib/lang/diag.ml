exception Error of Loc.t * string

let error loc fmt = Printf.ksprintf (fun m -> raise (Error (loc, m))) fmt

let render source loc msg =
  let head = Printf.sprintf "%s: %s" (Loc.to_string loc) msg in
  match Source.line source loc.Loc.line with
  | None -> head
  | Some l ->
      let caret = Buffer.create (loc.Loc.col + 1) in
      for i = 0 to loc.Loc.col - 2 do
        Buffer.add_char caret (if i < String.length l && l.[i] = '\t' then '\t' else ' ')
      done;
      Buffer.add_char caret '^';
      Printf.sprintf "%s\n  %s\n  %s" head l (Buffer.contents caret)

let render_exn source = function
  | Error (loc, msg) -> Some (render source loc msg)
  | _ -> None
