(** Source-located diagnostics shared by the lexer, parser and
    elaborator.  Every front-end failure is an {!Error} carrying the
    location of the offending token or card; {!render} turns it into the
    classic [file:line:col: message] form followed by the quoted source
    line and a caret. *)

exception Error of Loc.t * string

val error : Loc.t -> ('a, unit, string, 'b) format4 -> 'a
(** [error loc fmt ...] raises {!Error} with the formatted message. *)

val render : Source.t -> Loc.t -> string -> string
(** [render source loc msg] is

    {v
file.scn:3:4: unknown node "vx"
  S1 vx 0 1k closed=0
     ^
    v}

    The caret line mirrors tabs in the quoted line so it stays aligned. *)

val render_exn : Source.t -> exn -> string option
(** [render_exn source e] renders {!Error} exceptions, [None] for
    anything else. *)
