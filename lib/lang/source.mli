(** An in-memory `.scn` deck with its split lines, kept around so
    diagnostics can quote the offending line under a caret. *)

type t

val of_string : name:string -> string -> t
(** [name] is used as the file field of every location. *)

val of_file : string -> t
(** Reads the file; raises [Sys_error] if it cannot be opened. *)

val name : t -> string

val n_lines : t -> int

val line : t -> int -> string option
(** [line t i] is the 1-based [i]-th physical line, without its
    terminator; [None] out of range. *)
