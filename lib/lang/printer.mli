(** Canonical printer for the `.scn` AST.

    The output is itself a valid deck, and printing is exact:
    [parse (print (parse s))] equals [parse s] modulo locations (floats
    are printed with enough digits to round-trip bit-exactly, negated
    literals stay literals, and expressions are re-braced with minimal
    parentheses). *)

val float_str : float -> string
(** Shortest of ["%g"] / ["%.17g"] that reparses to the same float. *)

val expr : Ast.expr -> string
(** Without braces. *)

val value : Ast.expr -> string
(** Card-value form: a bare (possibly negative) literal, or [{expr}]. *)

val card : Ast.card -> string

val stmt : Ast.stmt -> string

val deck : Ast.deck -> string
(** One statement per line, newline-terminated. *)
