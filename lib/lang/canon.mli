(** Canonical form and content hash of an elaborated deck — the cache
    key of the analysis service.

    The canonical form inlines every evaluated parameter/expression,
    drops comments, layout, [.param] and [.end], hoists clock /
    temperature / output into a fixed header and keeps element cards in
    deck order (card order fixes the compiled state ordering).  Analysis
    directives are excluded: they are request defaults, not part of the
    circuit, so decks differing only in directives share one hash (and
    therefore share prepared solvers). *)

val version : string
(** First line of every canonical document, [scnoise.canon/1]. *)

val canonical : Elab.t -> Ast.deck -> string
(** The canonical text.  Requires the deck to be the one [Elab.t] was
    elaborated from. *)

val hash : Elab.t -> Ast.deck -> string
(** Hex MD5 of {!canonical} — the content address used by the serve
    cache and printed by [scnoise deck hash]. *)

val hash_loaded : Deck.loaded -> string
