type t = { name : string; lines : string array }

let split_lines text =
  (* keep trailing empty lines irrelevant; strip one \r for CRLF decks *)
  let raw = String.split_on_char '\n' text in
  let strip_cr s =
    let n = String.length s in
    if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s
  in
  Array.of_list (List.map strip_cr raw)

let of_string ~name text = { name; lines = split_lines text }

let of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      of_string ~name:path text)

let name t = t.name

let n_lines t = Array.length t.lines

let line t i =
  if i >= 1 && i <= Array.length t.lines then Some t.lines.(i - 1) else None
