open Ast
module Netlist = Scnoise_circuit.Netlist
module Clock = Scnoise_circuit.Clock

type analysis =
  | Psd of {
      fmin : float option;
      fmax : float option;
      points : int option;
      log : bool;
      engine : string option;
    }
  | Variance
  | Contrib of { f : float option }
  | Transfer of {
      fmin : float option;
      fmax : float option;
      points : int option;
      k : int option;
    }

type slot = { slot_what : string; slot_dim : string; slot_expr : Ast.expr }

type t = {
  netlist : Netlist.t;
  clock : Clock.t;
  output_node : string;
  output_loc : Loc.t;
  temperature : float option;
  analyses : (analysis * Loc.t) list;
  params : (string * float) list;
  unused_params : (string * Loc.t) list;
  element_locs : (string * Loc.t) list;
  node_locs : (string * Loc.t) list;
  value_slots : slot list;
  param_exprs : (string * Ast.expr) list;
}

(* ---- expression evaluation ---- *)

let constants = [ ("pi", Float.pi) ]

(* [env] maps a parameter to its value and a "was referenced" cell; the
   latter feeds the ERC unused-parameter rule. *)
let rec eval env x =
  match x.e with
  | Num (v, _) -> v
  | Ref name -> (
      match Hashtbl.find_opt env name with
      | Some (v, used) ->
          used := true;
          v
      | None -> (
          match List.assoc_opt (String.lowercase_ascii name) constants with
          | Some v -> v
          | None -> Diag.error x.eloc "unknown parameter %S" name))
  | Neg a -> -.eval env a
  | Bin (op, a, b) -> (
      let va = eval env a and vb = eval env b in
      match op with
      | Add -> va +. vb
      | Sub -> va -. vb
      | Mul -> va *. vb
      | Div ->
          if vb = 0.0 then Diag.error x.eloc "division by zero";
          va /. vb
      | Pow -> Float.pow va vb)
  | Call (f, args) -> (
      let vs = List.map (eval env) args in
      let arity n k =
        if List.length vs <> n then
          Diag.error x.eloc "%s expects %d argument(s), got %d" f n
            (List.length vs)
        else k
      in
      match (f, vs) with
      | "sqrt", [ v ] -> sqrt v
      | "exp", [ v ] -> exp v
      | "log", [ v ] -> log v
      | "log10", [ v ] -> log10 v
      | "abs", [ v ] -> abs_float v
      | "min", [ a; b ] -> Float.min a b
      | "max", [ a; b ] -> Float.max a b
      | "pow", [ a; b ] -> Float.pow a b
      | ("sqrt" | "exp" | "log" | "log10" | "abs"), _ -> arity 1 nan
      | ("min" | "max" | "pow"), _ -> arity 2 nan
      | _ -> Diag.error x.eloc "unknown function %S" f)

(* Re-evaluate an expression of an already-elaborated deck against its
   final parameter environment (no used-tracking, no duplicates — the
   elaborator rejects redefinition).  Powers the canonical printer. *)
let eval_const ~params x =
  let env = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.replace env k (v, ref true)) params;
  eval env x

let eval_int env x what =
  let v = eval env x in
  let i = int_of_float v in
  if float_of_int i <> v then
    Diag.error x.eloc "%s must be an integer, got %s" what
      (Printf.sprintf "%g" v);
  i

(* ---- waveforms ---- *)

let eval_wave env loc = function
  | Dc v ->
      let x = eval env v in
      fun _ -> x
  | Sin { offset; amp; freq; phase_deg } ->
      let o = eval env offset and a = eval env amp and f = eval env freq in
      let ph =
        match phase_deg with
        | Some p -> eval env p *. Float.pi /. 180.0
        | None -> 0.0
      in
      fun t -> o +. (a *. sin ((2.0 *. Float.pi *. f *. t) +. ph))
  | Pwl pts ->
      let pts = List.map (fun (t, v) -> (eval env t, eval env v)) pts in
      let rec check = function
        | (t1, _) :: ((t2, _) :: _ as rest) ->
            if t2 <= t1 then
              Diag.error loc "pwl breakpoint times must be strictly increasing";
            check rest
        | _ -> ()
      in
      check pts;
      let arr = Array.of_list pts in
      let n = Array.length arr in
      fun t ->
        if t <= fst arr.(0) then snd arr.(0)
        else if t >= fst arr.(n - 1) then snd arr.(n - 1)
        else begin
          (* n >= 2 here; find the bracketing segment *)
          let i = ref 0 in
          while fst arr.(!i + 1) < t do incr i done;
          let t1, v1 = arr.(!i) and t2, v2 = arr.(!i + 1) in
          v1 +. ((v2 -. v1) *. (t -. t1) /. (t2 -. t1))
        end

(* ---- dimension-annotated value slots ----

   Every element-card value, clock/temp directive, and analysis
   parameter has an expected physical dimension fixed by its syntactic
   position.  We expose the raw expression trees tagged with those
   dimensions so the checker's units-inference pass (ERC014) can verify
   annotated literals without re-parsing the deck.  The [slot_dim]
   grammar is the one {!Scnoise_check} parses: unit atoms possibly
   squared ("A2"), an optional "/" divisor, "1" for dimensionless. *)

let slot what dim e = { slot_what = what; slot_dim = dim; slot_expr = e }

let opt_slot what dim = function Some e -> [ slot what dim e ] | None -> []

let wave_slots what dim = function
  | Dc v -> [ slot (what ^ " dc") dim v ]
  | Sin { offset; amp; freq; phase_deg } ->
      slot (what ^ " offset") dim offset
      :: slot (what ^ " amp") dim amp
      :: slot (what ^ " freq") "Hz" freq
      :: opt_slot (what ^ " phase") "1" phase_deg
  | Pwl pts ->
      List.concat_map
        (fun (t, v) ->
          [ slot (what ^ " pwl time") "s" t; slot (what ^ " pwl value") dim v ])
        pts

let card_slots = function
  | Resistor { name; r; _ } -> [ slot (name ^ " r") "ohm" r ]
  | Capacitor { name; c; _ } -> [ slot (name ^ " c") "F" c ]
  | Switch { name; r_on; _ } -> [ slot (name ^ " r_on") "ohm" r_on ]
  | Vsource { name; wave; _ } -> wave_slots name "V" wave
  | Isource { name; wave; _ } -> wave_slots name "A" wave
  | Noise { name; kind = White { psd }; _ } ->
      [ slot (name ^ " psd") "A2/Hz" psd ]
  | Noise { name; kind = Flicker f; _ } ->
      slot (name ^ " psd1hz") "A2/Hz" f.psd_1hz
      :: slot (name ^ " fmin") "Hz" f.fmin
      :: slot (name ^ " fmax") "Hz" f.fmax
      :: opt_slot (name ^ " spd") "1" f.sections_per_decade
  | Opamp_integrator { name; ugf; noise; _ } ->
      slot (name ^ " ugf") "Hz" ugf :: opt_slot (name ^ " noise") "V2/Hz" noise
  | Opamp_single_stage { name; gm; rout; cout; noise; _ } ->
      slot (name ^ " gm") "A/V" gm
      :: slot (name ^ " rout") "ohm" rout
      :: slot (name ^ " cout") "F" cout
      :: opt_slot (name ^ " noise") "V2/Hz" noise

let clock_slots = function
  | Clock_duty { period; duty } ->
      [ slot ".clock period" "s" period; slot ".clock duty" "1" duty ]
  | Clock_two_phase { period; gap } ->
      slot ".clock period" "s" period :: opt_slot ".clock gap" "1" gap
  | Clock_phases ds -> List.map (fun d -> slot ".clock phase" "s" d) ds

let analysis_slots = function
  | Ast.Psd { fmin; fmax; points; _ } ->
      opt_slot ".psd fmin" "Hz" fmin
      @ opt_slot ".psd fmax" "Hz" fmax
      @ opt_slot ".psd points" "1" points
  | Ast.Variance -> []
  | Ast.Contrib { f } -> opt_slot ".contrib f" "Hz" f
  | Ast.Transfer { fmin; fmax; points; k } ->
      opt_slot ".transfer fmin" "Hz" fmin
      @ opt_slot ".transfer fmax" "Hz" fmax
      @ opt_slot ".transfer points" "1" points
      @ opt_slot ".transfer k" "1" k

let stmt_slots = function
  | Card c -> card_slots c
  | Clock c -> clock_slots c
  | Temp e -> [ slot ".temp" "K" e ]
  | Analysis a -> analysis_slots a
  | Param _ | Output _ | End -> []

(* ---- elaboration ---- *)

(* Re-raise the [Netlist] builder's [Invalid_argument] at the card's
   location; the message already names the element (e.g.
   [Netlist.resistor "R3": r <= 0]). *)
let located_invalid loc f = try f () with Invalid_argument m -> Diag.error loc "%s" m

let elaborate (deck : Ast.deck) =
  let nl = Netlist.create () in
  let env : (string, float * bool ref) Hashtbl.t = Hashtbl.create 16 in
  let params = ref [] in
  let param_order = ref [] in
  (* (pname, loc, used) in reverse deck order *)
  let clock = ref None in
  let output = ref None in
  let temperature = ref None in
  let analyses = ref [] in
  let element_locs = ref [] in
  let node_locs : (string, Loc.t) Hashtbl.t = Hashtbl.create 16 in
  let node_order = ref [] in
  let n_cards = ref 0 in
  let node n =
    if not (Hashtbl.mem node_locs n.nname) then begin
      Hashtbl.add node_locs n.nname n.nloc;
      node_order := n.nname :: !node_order
    end;
    if n.nname = "0" then Netlist.ground else Netlist.node nl n.nname
  in
  let do_card loc = function
    | Resistor { name; n1; n2; r; noisy } ->
        let r = eval env r in
        located_invalid loc (fun () ->
            Netlist.resistor ~name ~noisy nl (node n1) (node n2) r)
    | Capacitor { name; n1; n2; c } ->
        let c = eval env c in
        located_invalid loc (fun () ->
            Netlist.capacitor ~name nl (node n1) (node n2) c)
    | Switch { name; n1; n2; r_on; closed_in; noisy } ->
        let r_on = eval env r_on in
        located_invalid loc (fun () ->
            Netlist.switch ~name ~noisy ~closed_in nl (node n1) (node n2) r_on)
    | Vsource { name; n; wave } ->
        let w = eval_wave env loc wave in
        located_invalid loc (fun () -> Netlist.vsource ~name nl (node n) w)
    | Isource { name; n1; n2; wave } ->
        let w = eval_wave env loc wave in
        located_invalid loc (fun () ->
            Netlist.isource ~name nl (node n1) (node n2) w)
    | Noise { name; n1; n2; kind = White { psd } } ->
        let psd = eval env psd in
        located_invalid loc (fun () ->
            Netlist.noise_isource ~name nl (node n1) (node n2) ~psd)
    | Noise { name; n1; n2; kind = Flicker f } ->
        let psd_1hz = eval env f.psd_1hz in
        let fmin = eval env f.fmin in
        let fmax = eval env f.fmax in
        let spd =
          Option.map
            (fun e -> eval_int env e "sections per decade")
            f.sections_per_decade
        in
        located_invalid loc (fun () ->
            Netlist.flicker_isource ~name ?sections_per_decade:spd nl (node n1)
              (node n2) ~psd_1hz ~fmin ~fmax)
    | Opamp_integrator { name; plus; minus; out; ugf; noise } ->
        let ugf = eval env ugf in
        let psd = Option.map (eval env) noise in
        located_invalid loc (fun () ->
            Netlist.opamp_integrator ~name ?input_noise_psd:psd nl
              ~plus:(node plus) ~minus:(node minus) ~out:(node out) ~ugf)
    | Opamp_single_stage { name; plus; minus; out; gm; rout; cout; noise } ->
        let gm = eval env gm in
        let rout = eval env rout in
        let cout = eval env cout in
        let psd = Option.map (eval env) noise in
        located_invalid loc (fun () ->
            Netlist.opamp_single_stage ~name ?input_noise_psd:psd nl
              ~plus:(node plus) ~minus:(node minus) ~out:(node out) ~gm ~rout
              ~cout)
  in
  let do_clock loc = function
    | Clock_duty { period; duty } ->
        let period = eval env period and duty = eval env duty in
        located_invalid loc (fun () -> Clock.duty ~period ~duty)
    | Clock_two_phase { period; gap } ->
        let period = eval env period in
        let gap = Option.map (eval env) gap in
        located_invalid loc (fun () ->
            Clock.two_phase ?gap_fraction:gap ~period ())
    | Clock_phases ds ->
        let ds = List.map (eval env) ds in
        located_invalid loc (fun () -> Clock.make ds)
  in
  let card_name = function
    | Resistor { name; _ }
    | Capacitor { name; _ }
    | Switch { name; _ }
    | Vsource { name; _ }
    | Isource { name; _ }
    | Noise { name; _ }
    | Opamp_integrator { name; _ }
    | Opamp_single_stage { name; _ } ->
        name
  in
  let opt f = Option.map f in
  let do_analysis = function
    | Ast.Psd { fmin; fmax; points; log; engine } ->
        Psd
          {
            fmin = opt (eval env) fmin;
            fmax = opt (eval env) fmax;
            points = opt (fun e -> eval_int env e "points") points;
            log;
            engine;
          }
    | Ast.Variance -> Variance
    | Ast.Contrib { f } -> Contrib { f = opt (eval env) f }
    | Ast.Transfer { fmin; fmax; points; k } ->
        Transfer
          {
            fmin = opt (eval env) fmin;
            fmax = opt (eval env) fmax;
            points = opt (fun e -> eval_int env e "points") points;
            k = opt (fun e -> eval_int env e "k") k;
          }
  in
  List.iter
    (fun { s; sloc } ->
      match s with
      | Param { pname; value } ->
          if Hashtbl.mem env pname then
            Diag.error sloc "parameter %S already defined" pname;
          let v = eval env value in
          let used = ref false in
          Hashtbl.add env pname (v, used);
          param_order := (pname, sloc, used) :: !param_order;
          params := (pname, v) :: !params
      | Card c ->
          incr n_cards;
          element_locs := (card_name c, sloc) :: !element_locs;
          do_card sloc c
      | Clock spec ->
          if !clock <> None then Diag.error sloc "duplicate .clock directive";
          clock := Some (do_clock sloc spec)
      | Output n ->
          if !output <> None then Diag.error sloc "duplicate .output directive";
          if n.nname = "0" then
            Diag.error n.nloc
              "output node cannot be ground (node \"0\"): its noise is zero \
               by definition";
          (match Netlist.find_node nl n.nname with
          | Some _ -> ()
          | None -> Diag.error n.nloc "unknown node %S" n.nname);
          output := Some (n.nname, n.nloc)
      | Temp e ->
          if !temperature <> None then
            Diag.error sloc "duplicate .temp directive";
          let v = eval env e in
          if v <= 0.0 then Diag.error e.eloc "temperature must be positive";
          temperature := Some v
      | Analysis a -> analyses := (do_analysis a, sloc) :: !analyses
      | End -> ())
    deck.stmts;
  if !n_cards = 0 then Diag.error deck.eof "deck has no element cards";
  let clock =
    match !clock with
    | Some c -> c
    | None -> Diag.error deck.eof "missing .clock directive"
  in
  let output_node, output_loc =
    match !output with
    | Some o -> o
    | None -> Diag.error deck.eof "missing .output directive"
  in
  let unused_params =
    List.rev !param_order
    |> List.filter_map (fun (pname, loc, used) ->
           if !used then None else Some (pname, loc))
  in
  let node_locs =
    List.rev !node_order
    |> List.map (fun name -> (name, Hashtbl.find node_locs name))
  in
  {
    netlist = nl;
    clock;
    output_node;
    output_loc;
    temperature = !temperature;
    analyses = List.rev !analyses;
    params = List.rev !params;
    unused_params;
    element_locs = List.rev !element_locs;
    node_locs;
    value_slots = List.concat_map (fun { s; sloc = _ } -> stmt_slots s) deck.stmts;
    param_exprs =
      List.filter_map
        (function
          | { s = Param { pname; value }; sloc = _ } -> Some (pname, value)
          | _ -> None)
        deck.stmts;
  }
