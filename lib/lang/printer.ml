open Ast

let float_str x =
  let s = Printf.sprintf "%g" x in
  if float_of_string s = x then s else Printf.sprintf "%.17g" x

(* precedence levels: Add/Sub = 1, Mul/Div = 2, Pow = 3, atoms = 4 *)
let prec = function Add | Sub -> 1 | Mul | Div -> 2 | Pow -> 3

let op_str = function Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Pow -> "^"

(* Unit annotations survive the parse → print → parse round-trip by
   printing a spelling the lexer maps back to the same canonical unit.
   "F" and "s" need whole-word forms: a bare "f"/"s" tail would re-lex
   as femto / second and "1s" is fine but "1F" would become 1e-15. *)
let unit_tail = function
  | "" -> ""
  | "ohm" -> "ohm"
  | "F" -> "farad"
  | "Hz" -> "hz"
  | "V" -> "volt"
  | "A" -> "amp"
  | "s" -> "sec"
  | "K" -> "kelvin"
  | u -> u

let num_str v u = float_str v ^ unit_tail u

let rec expr_prec level x =
  match x.e with
  | Num (v, u) -> num_str v u
  | Ref n -> n
  | Neg a ->
      let s = "-" ^ expr_prec 4 a in
      if level > 1 then "(" ^ s ^ ")" else s
  | Bin (op, a, b) ->
      let p = prec op in
      (* left-assoc for Add..Div, right-assoc for Pow *)
      let ls, rs =
        if op = Pow then (expr_prec (p + 1) a, expr_prec p b)
        else (expr_prec p a, expr_prec (p + 1) b)
      in
      let s = ls ^ op_str op ^ rs in
      if p < level then "(" ^ s ^ ")" else s
  | Call (f, args) -> f ^ "(" ^ String.concat ", " (List.map (expr_prec 0) args) ^ ")"

let expr x = expr_prec 0 x

let value x =
  match x.e with Num (v, u) -> num_str v u | _ -> "{" ^ expr x ^ "}"

let node n = n.nname

let wave = function
  | Dc v -> "dc " ^ value v
  | Sin { offset; amp; freq; phase_deg } ->
      let base = Printf.sprintf "sin %s %s %s" (value offset) (value amp) (value freq) in
      (match phase_deg with Some p -> base ^ " " ^ value p | None -> base)
  | Pwl pts ->
      "pwl "
      ^ String.concat " " (List.map (fun (t, v) -> value t ^ " " ^ value v) pts)

let noiseless_str noisy = if noisy then "" else " noiseless"

let card = function
  | Resistor { name; n1; n2; r; noisy } ->
      Printf.sprintf "%s %s %s %s%s" name (node n1) (node n2) (value r)
        (noiseless_str noisy)
  | Capacitor { name; n1; n2; c } ->
      Printf.sprintf "%s %s %s %s" name (node n1) (node n2) (value c)
  | Switch { name; n1; n2; r_on; closed_in; noisy } ->
      Printf.sprintf "%s %s %s %s closed=%s%s" name (node n1) (node n2)
        (value r_on)
        (String.concat "," (List.map string_of_int closed_in))
        (noiseless_str noisy)
  | Vsource { name; n; wave = w } ->
      Printf.sprintf "%s %s %s" name (node n) (wave w)
  | Isource { name; n1; n2; wave = w } ->
      Printf.sprintf "%s %s %s %s" name (node n1) (node n2) (wave w)
  | Noise { name; n1; n2; kind } -> (
      match kind with
      | White { psd } ->
          Printf.sprintf "%s %s %s psd=%s" name (node n1) (node n2) (value psd)
      | Flicker { psd_1hz; fmin; fmax; sections_per_decade } ->
          let base =
            Printf.sprintf "%s %s %s flicker psd1hz=%s fmin=%s fmax=%s" name
              (node n1) (node n2) (value psd_1hz) (value fmin) (value fmax)
          in
          (match sections_per_decade with
          | Some s -> base ^ " spd=" ^ value s
          | None -> base))
  | Opamp_integrator { name; plus; minus; out; ugf; noise } ->
      let base =
        Printf.sprintf "%s %s %s %s ugf=%s" name (node plus) (node minus)
          (node out) (value ugf)
      in
      (match noise with Some n -> base ^ " noise=" ^ value n | None -> base)
  | Opamp_single_stage { name; plus; minus; out; gm; rout; cout; noise } ->
      let base =
        Printf.sprintf "%s %s %s %s gm=%s rout=%s cout=%s" name (node plus)
          (node minus) (node out) (value gm) (value rout) (value cout)
      in
      (match noise with Some n -> base ^ " noise=" ^ value n | None -> base)

let opt_key k = function Some v -> Printf.sprintf " %s=%s" k (value v) | None -> ""

let analysis = function
  | Psd { fmin; fmax; points; log; engine } ->
      ".psd" ^ opt_key "fmin" fmin ^ opt_key "fmax" fmax ^ opt_key "points" points
      ^ (match engine with Some e -> " engine=" ^ e | None -> "")
      ^ if log then " log" else ""
  | Variance -> ".variance"
  | Contrib { f } -> ".contrib" ^ opt_key "f" f
  | Transfer { fmin; fmax; points; k } ->
      ".transfer" ^ opt_key "fmin" fmin ^ opt_key "fmax" fmax
      ^ opt_key "points" points ^ opt_key "k" k

let stmt = function
  | Card c -> card c
  | Param { pname; value = v } -> Printf.sprintf ".param %s = %s" pname (expr v)
  | Clock (Clock_duty { period; duty }) ->
      Printf.sprintf ".clock duty period=%s duty=%s" (value period) (value duty)
  | Clock (Clock_two_phase { period; gap }) ->
      Printf.sprintf ".clock two_phase period=%s%s" (value period)
        (opt_key "gap" gap)
  | Clock (Clock_phases ds) ->
      ".clock phases " ^ String.concat " " (List.map value ds)
  | Output n -> ".output " ^ node n
  | Temp e -> ".temp " ^ value e
  | Analysis a -> analysis a
  | End -> ".end"

let deck d =
  String.concat "" (List.map (fun s -> stmt s.s ^ "\n") d.stmts)
