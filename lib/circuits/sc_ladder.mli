(** Periodically switched RC ladder with a configurable number of
    stages — the scaling workload.

    [stages] capacitor nodes are chained through noisy resistors; the
    chain connects to ground through a switch that conducts during
    phase 0.  The state count equals [stages], which makes the circuit
    the natural vehicle for measuring how the engines scale with circuit
    size (the papers note the N(N+1)/2 covariance unknowns as the
    method's practical size limit). *)

type params = {
  stages : int;  (** number of capacitor nodes (= states), >= 1 *)
  r : float;  (** series resistance per stage *)
  c : float;  (** capacitance per node *)
  r_switch : float;
  clock_hz : float;
  duty : float;
  temperature : float;
}

val default : params
(** 4 stages, 1 kohm / 100 pF, 1 kohm switch, 100 kHz clock, 50% duty. *)

val with_stages : int -> params

type built = {
  sys : Scnoise_circuit.Pwl.t;
  output : Scnoise_linalg.Vec.t;  (** last-node voltage *)
  params : params;
  netlist : Scnoise_circuit.Netlist.t;  (** pre-compilation element graph *)
  clock : Scnoise_circuit.Clock.t;
  output_node : string;  (** name of the output node in [netlist] *)
}

val build : params -> built

val output_name : string
(** Name of the output (last) node. *)
