(** Periodically switched RC ladder with a configurable number of
    stages — the scaling workload.

    [stages] capacitor nodes are chained through noisy resistors; the
    chain connects to ground through a switch that conducts during
    phase 0.  Optionally each stage node carries a parasitic branch
    ([r_par] into [c_par] to ground), doubling the state count — the
    hundred-state configurations exercising the low-rank covariance
    backend are ladders with parasitics.  Without parasitics the state
    count equals [stages]; with them it is [2 * stages].  The papers
    note the N(N+1)/2 covariance unknowns as the method's practical
    size limit, which this family is built to probe. *)

type params = {
  stages : int;  (** number of capacitor nodes, >= 1 *)
  r : float;  (** series resistance per stage *)
  c : float;  (** capacitance per node *)
  r_switch : float;
  c_par : float;  (** per-node parasitic capacitance; 0 disables *)
  r_par : float;  (** resistance feeding each parasitic cap *)
  clock_hz : float;
  duty : float;
  temperature : float;
}

val default : params
(** 4 stages, 1 kohm / 100 pF, 1 kohm switch, no parasitics, 100 kHz
    clock, 50% duty. *)

val with_stages : int -> params

val with_parasitics :
  ?c_par_ratio:float -> ?r_par_ratio:float -> params -> params
(** Attach a parasitic branch to every stage node: [c_par] is
    [c_par_ratio] (default 0.1) times [c], [r_par] is [r_par_ratio]
    (default 10) times [r]. *)

val nstates : params -> int
(** State count [build] will produce: [stages], or [2 * stages] with
    parasitics enabled. *)

type built = {
  sys : Scnoise_circuit.Pwl.t;
  output : Scnoise_linalg.Vec.t;  (** last-node voltage *)
  params : params;
  netlist : Scnoise_circuit.Netlist.t;  (** pre-compilation element graph *)
  clock : Scnoise_circuit.Clock.t;
  output_node : string;  (** name of the output node in [netlist] *)
}

val build : params -> built

val output_name : string
(** Name of the output (last) node. *)
