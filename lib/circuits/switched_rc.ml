module Netlist = Scnoise_circuit.Netlist
module Clock = Scnoise_circuit.Clock
module Compile = Scnoise_circuit.Compile
module Pwl = Scnoise_circuit.Pwl

type params = {
  r : float;
  c : float;
  period : float;
  duty : float;
  temperature : float;
}

let default =
  { r = 1e3; c = 1e-9; period = 5e-6; duty = 0.5; temperature = 300.0 }

let with_ratio ?(duty = 0.5) ?(r = 1e3) ?(c = 1e-9) ~t_over_rc () =
  { default with r; c; duty; period = t_over_rc *. r *. c }

type built = {
  sys : Pwl.t;
  output : Scnoise_linalg.Vec.t;
  params : params;
  netlist : Netlist.t;
  clock : Clock.t;
  output_node : string;
}

let output_name = "vout"

let ideal_dt params =
  let kt = Scnoise_util.Const.kt ~temperature:params.temperature () in
  let a = exp (-.params.duty *. params.period /. (params.r *. params.c)) in
  let var_inject = kt /. params.c *. (1.0 -. (a *. a)) in
  Scnoise_dtime.Dt_system.make
    ~ad:(Scnoise_linalg.Mat.of_arrays [| [| a |] |])
    ~bd:(Scnoise_linalg.Mat.of_arrays [| [| sqrt var_inject |] |])
    ~c:[| 1.0 |] ~period:params.period

let build params =
  if params.duty <= 0.0 || params.duty >= 1.0 then
    invalid_arg "Switched_rc.build: need 0 < duty < 1";
  let nl = Netlist.create () in
  let vout = Netlist.node nl output_name in
  Netlist.switch ~name:"S1" ~closed_in:[ 0 ] nl vout Netlist.ground params.r;
  Netlist.capacitor ~name:"C1" nl vout Netlist.ground params.c;
  let clock = Clock.duty ~period:params.period ~duty:params.duty in
  let sys = Compile.compile ~temperature:params.temperature nl clock in
  let output = Pwl.observable sys output_name in
  { sys; output; params; netlist = nl; clock; output_node = output_name }
