(** Parasitic-insensitive switched-capacitor integrator with an optional
    SC damping branch (a lossy integrator).

    Input branch (parasitic-insensitive, inverting): [Cs] between nodes
    [na] and [nb]; phase 1 connects [(na, nb)] to [(vin, ground)], phase
    2 to [(ground, vg)].  Integrating capacitor [Ci] closes the op-amp
    loop.  The damping branch (toggle cap [Cd], like the low-pass
    filter's) sets the discrete-time pole at [1 - Cd/Ci]; with
    [cd = 0.0] the integrator is lossless and the periodic noise steady
    state does not exist (the compiler will still build it, but the
    Lyapunov solve rejects it) — tests exercise that failure mode. *)

type params = {
  cs : float;  (** sampling capacitor *)
  ci : float;  (** integrating capacitor *)
  cd : float;  (** damping capacitor; 0 disables the branch *)
  r_switch : float;  (** all switch on-resistances *)
  clock_hz : float;
  ugf : float;  (** op-amp unity-gain frequency, rad/s *)
  opamp_noise_psd : float;
  c_par : float;  (** plate parasitic capacitance at the toggled nodes *)
  temperature : float;
}

val default : params
(** 1 pF / 10 pF / 1 pF, 1 kohm switches, 100 kHz clock, 2 pi 10 MHz
    op-amp, noiseless op-amp. *)

type built = {
  sys : Scnoise_circuit.Pwl.t;
  output : Scnoise_linalg.Vec.t;
  params : params;
  netlist : Scnoise_circuit.Netlist.t;  (** pre-compilation element graph *)
  clock : Scnoise_circuit.Clock.t;
  output_node : string;  (** name of the output node in [netlist] *)
}

val build : params -> built

val dt_pole : params -> float
(** The ideal ("full and fast") discrete-time pole [1 - cd/ci]. *)

val ideal_dt : params -> Scnoise_dtime.Dt_system.t
(** Ideal charge-transfer model: pole {!dt_pole}, per-cycle injected
    output-referred noise [2kT/Cs (Cs/Ci)^2 + 2kT/Cd (Cd/Ci)^2] (each
    toggled capacitor samples kT/C twice per cycle); the op-amp is taken
    as noiseless, matching {!default}. *)

val output_name : string
