module Netlist = Scnoise_circuit.Netlist
module Clock = Scnoise_circuit.Clock
module Compile = Scnoise_circuit.Compile
module Pwl = Scnoise_circuit.Pwl

type params = {
  stages : int;
  r : float;
  c : float;
  r_switch : float;
  clock_hz : float;
  duty : float;
  temperature : float;
}

let default =
  {
    stages = 4;
    r = 1e3;
    c = 100e-12;
    r_switch = 1e3;
    clock_hz = 1e5;
    duty = 0.5;
    temperature = 300.0;
  }

let with_stages stages = { default with stages }

type built = {
  sys : Pwl.t;
  output : Scnoise_linalg.Vec.t;
  params : params;
  netlist : Netlist.t;
  clock : Clock.t;
  output_node : string;
}

let output_name = "nlast"

let build params =
  if params.stages < 1 then invalid_arg "Sc_ladder.build: stages < 1";
  let nl = Netlist.create () in
  let node i =
    if i = params.stages then Netlist.node nl output_name
    else Netlist.node nl (Printf.sprintf "n%d" i)
  in
  let first = node 1 in
  Netlist.switch ~name:"S0" ~closed_in:[ 0 ] nl first Netlist.ground
    params.r_switch;
  Netlist.capacitor ~name:"C1" nl first Netlist.ground params.c;
  let prev = ref first in
  for i = 2 to params.stages do
    let n = node i in
    Netlist.resistor ~name:(Printf.sprintf "R%d" i) nl !prev n params.r;
    Netlist.capacitor ~name:(Printf.sprintf "C%d" i) nl n Netlist.ground
      params.c;
    prev := n
  done;
  let clock = Clock.duty ~period:(1.0 /. params.clock_hz) ~duty:params.duty in
  let sys = Compile.compile ~temperature:params.temperature nl clock in
  let output = Pwl.observable sys output_name in
  { sys; output; params; netlist = nl; clock; output_node = output_name }
