module Netlist = Scnoise_circuit.Netlist
module Clock = Scnoise_circuit.Clock
module Compile = Scnoise_circuit.Compile
module Pwl = Scnoise_circuit.Pwl

type params = {
  stages : int;
  r : float;
  c : float;
  r_switch : float;
  c_par : float;
  r_par : float;
  clock_hz : float;
  duty : float;
  temperature : float;
}

let default =
  {
    stages = 4;
    r = 1e3;
    c = 100e-12;
    r_switch = 1e3;
    c_par = 0.0;
    r_par = 0.0;
    clock_hz = 1e5;
    duty = 0.5;
    temperature = 300.0;
  }

let with_stages stages = { default with stages }

(* The parasitic defaults follow the main ladder: a tenth of the node
   capacitance hanging off each node through ten times the series
   resistance — small enough not to change the passband, large enough
   that the extra states carry real (not numerically void) noise. *)
let with_parasitics ?(c_par_ratio = 0.1) ?(r_par_ratio = 10.0) p =
  if c_par_ratio <= 0.0 || r_par_ratio <= 0.0 then
    invalid_arg "Sc_ladder.with_parasitics: ratios must be positive";
  { p with c_par = c_par_ratio *. p.c; r_par = r_par_ratio *. p.r }

type built = {
  sys : Pwl.t;
  output : Scnoise_linalg.Vec.t;
  params : params;
  netlist : Netlist.t;
  clock : Clock.t;
  output_node : string;
}

let output_name = "nlast"

let nstates params =
  if params.c_par > 0.0 then 2 * params.stages else params.stages

let build params =
  if params.stages < 1 then invalid_arg "Sc_ladder.build: stages < 1";
  if params.c_par > 0.0 && params.r_par <= 0.0 then
    invalid_arg "Sc_ladder.build: c_par without a positive r_par";
  let nl = Netlist.create () in
  let node i =
    if i = params.stages then Netlist.node nl output_name
    else Netlist.node nl (Printf.sprintf "n%d" i)
  in
  let parasitic i n =
    (* one extra state per stage: c_par from a parasitic node to
       ground, fed from the stage node through r_par *)
    if params.c_par > 0.0 then begin
      let p = Netlist.node nl (Printf.sprintf "p%d" i) in
      Netlist.resistor ~name:(Printf.sprintf "RP%d" i) nl n p params.r_par;
      Netlist.capacitor ~name:(Printf.sprintf "CP%d" i) nl p Netlist.ground
        params.c_par
    end
  in
  let first = node 1 in
  Netlist.switch ~name:"S0" ~closed_in:[ 0 ] nl first Netlist.ground
    params.r_switch;
  Netlist.capacitor ~name:"C1" nl first Netlist.ground params.c;
  parasitic 1 first;
  let prev = ref first in
  for i = 2 to params.stages do
    let n = node i in
    Netlist.resistor ~name:(Printf.sprintf "R%d" i) nl !prev n params.r;
    Netlist.capacitor ~name:(Printf.sprintf "C%d" i) nl n Netlist.ground
      params.c;
    parasitic i n;
    prev := n
  done;
  let clock = Clock.duty ~period:(1.0 /. params.clock_hz) ~duty:params.duty in
  let sys = Compile.compile ~temperature:params.temperature nl clock in
  let output = Pwl.observable sys output_name in
  { sys; output; params; netlist = nl; clock; output_node = output_name }
