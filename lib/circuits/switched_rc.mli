(** The periodically switched RC circuit (Fig. 2 of the source papers).

    A noisy resistor [r] in series with an ideal switch charges a
    capacitor [c] to ground; the switch conducts during clock phase 0
    ([duty] fraction of the period).  The classic Rice problem — used
    throughout this library as the end-to-end validation circuit because
    {!Scnoise_analytic.Switched_rc} gives its PSD in closed form. *)

type params = {
  r : float;  (** switch on-resistance, ohms *)
  c : float;  (** capacitance, farads *)
  period : float;  (** clock period, s *)
  duty : float;  (** conduction fraction, 0 < duty < 1 *)
  temperature : float;  (** kelvin *)
}

val default : params
(** 1 kohm, 1 nF, T/RC = 5, duty 0.5, 300 K. *)

val with_ratio : ?duty:float -> ?r:float -> ?c:float -> t_over_rc:float ->
  unit -> params
(** Parameters chosen so that [period / (r c) = t_over_rc] — the knob the
    source paper sweeps in its Fig. 3. *)

type built = {
  sys : Scnoise_circuit.Pwl.t;
  output : Scnoise_linalg.Vec.t;  (** capacitor-voltage output row *)
  params : params;
  netlist : Scnoise_circuit.Netlist.t;  (** pre-compilation element graph *)
  clock : Scnoise_circuit.Clock.t;
  output_node : string;  (** name of the output node in [netlist] *)
}

val build : params -> built
(** Compile the circuit. *)

val output_name : string
(** Name of the output node ("vout"). *)

val ideal_dt : params -> Scnoise_dtime.Dt_system.t
(** Exact discrete-time model of the boundary-sampled output:
    [x(n+1) = a x(n) + sqrt(kT/C (1-a^2)) w(n)] with
    [a = exp(-duty T / RC)].  Its held spectrum with
    [hold_fraction = 1 - duty] is the classical sampled-data
    approximation of the full waveform's PSD. *)
