(** First-order switched-capacitor low-pass filter with the component
    values of the Toth et al. measurement reproduced in the source paper
    (Fig. 6/7 there): C1 = 300 pF, C2 = C3 = 100 pF, 80-ohm switches,
    4 kHz two-phase clock, and a -61.5 dB (V^2/Hz) white noise source at
    the op-amp's non-inverting input.

    Topology (reconstructed from the paper's description; the exact
    schematic of the original is not in the text):

    - op-amp with integrating capacitor [C2] from the summing node [vg]
      to the output [vo];
    - input branch: [S4] (phase 1) connects [n1] to the input, [S5]
      (phase 2) connects [n1] to ground; [C1] couples [n1] to [vg] — a
      standard inverting SC input branch;
    - damping branch: [C3] from [n3] to ground, with [S6] toggling [n3]
      between [vo] (phase 1, sampling) and [vg] (phase 2, discharging) —
      an SC-resistor feedback that makes the integrator lossy.

    During the integrating phase all three capacitors exchange charge at
    the summing node, matching the paper's charge-transfer relation
    [C1 dV1 = C2 dV2 + C3 dV3].  Two op-amp macromodels are provided, as
    compared in the paper: an integrator with ideal (source-follower)
    output, and a single-stage transconductance amplifier whose response
    additionally depends on its output capacitance. *)

type opamp_model =
  | Integrator of { ugf : float }
      (** single-pole op-amp with ideal voltage output; [ugf] in rad/s *)
  | Single_stage of { ugf : float; cout : float; rout : float }
      (** transconductance stage: [gm = ugf * cout] into [rout || cout] *)

type params = {
  c1 : float;
  c2 : float;
  c3 : float;
  r4 : float;  (** S4 on-resistance *)
  r5 : float;  (** S5 on-resistance *)
  r6 : float;  (** S6 on-resistance *)
  clock_hz : float;
  opamp : opamp_model;
  opamp_noise_psd : float;  (** double-sided, V^2/Hz, at the + input *)
  temperature : float;
}

val default : params
(** The paper's values: 300/100/100 pF, 80-ohm switches, 4 kHz clock,
    integrator op-amp with [ugf = 9 pi 10^6] rad/s, noise
    [10^(-6.15)] V^2/Hz. *)

val single_stage_variant : params
(** The paper's second fit: single-stage op-amp, [ugf = 2 pi 10^7] rad/s,
    [cout = 100 pF]. *)

type built = {
  sys : Scnoise_circuit.Pwl.t;
  output : Scnoise_linalg.Vec.t;  (** op-amp output voltage row *)
  params : params;
  netlist : Scnoise_circuit.Netlist.t;  (** pre-compilation element graph *)
  clock : Scnoise_circuit.Clock.t;
  output_node : string;  (** name of the output node in [netlist] *)
}

val build : params -> built

val output_name : string
