(** Switched-capacitor band-pass biquad (two-integrator loop) at the
    operating point of the Toth-Suyama measurement reproduced in the
    source paper: 128 kHz clock, 80-ohm switches, op-amps with
    20 nV/sqrt(Hz) input-referred white noise and (effectively) infinite
    unity-gain frequency.

    The original schematic is not in the available text, so the topology
    is a standard parasitic-insensitive two-integrator-loop resonator
    (documented substitution): an inverting damped integrator [vo1] and a
    non-inverting lossless integrator [vo2] closed through an inverting
    feedback branch.  Centre frequency and Q follow the usual SC design
    equations [w0 T ~ sqrt(cc^2 / (ci^2))], [Q ~ sqrt(cc cf) / cd]; the
    band-pass output is [vo1]. *)

type params = {
  ci1 : float;  (** integrating cap of op-amp 1 *)
  ci2 : float;  (** integrating cap of op-amp 2 *)
  cin : float;  (** input coupling cap (into op-amp 1) *)
  cc12 : float;  (** coupling op-amp 1 -> op-amp 2 (non-inverting) *)
  cc21 : float;  (** feedback op-amp 2 -> op-amp 1 (inverting) *)
  cd : float;  (** damping cap on op-amp 1 *)
  r_switch : float;
  clock_hz : float;
  ugf : float;  (** op-amp unity-gain frequency, rad/s *)
  opamp_noise_psd : float;  (** double-sided input-referred PSD, V^2/Hz *)
  c_par : float;  (** plate parasitic capacitance at toggled nodes *)
  temperature : float;
}

val default : params
(** 128 kHz clock; centre frequency ~8 kHz, Q ~2; 100 pF integrating
    caps; 80-ohm switches; 20 nV/sqrt(Hz) op-amps (double-sided
    2e-16 V^2/Hz) with a large [ugf] standing in for the paper's
    infinite-bandwidth op-amps. *)

val design :
  ?ci:float -> ?r_switch:float -> ?ugf:float -> ?opamp_noise_psd:float ->
  clock_hz:float -> f0:float -> q:float -> unit -> params
(** Choose coupling/damping caps for a requested centre frequency and
    quality factor.  The single-delay loop timing of this topology adds
    excess phase, so designs are limited to [q <= 2.5] (higher values
    raise [Invalid_argument]); the design equations are first-order in
    [w0 T], and the effective noise-resonance width is set by the Floquet
    radius rather than the nominal [q]. *)

type built = {
  sys : Scnoise_circuit.Pwl.t;
  output : Scnoise_linalg.Vec.t;  (** band-pass output (op-amp 1) *)
  params : params;
  netlist : Scnoise_circuit.Netlist.t;  (** pre-compilation element graph *)
  clock : Scnoise_circuit.Clock.t;
  output_node : string;  (** name of the output node in [netlist] *)
}

val build : params -> built

val output_name : string
