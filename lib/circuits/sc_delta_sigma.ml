module Netlist = Scnoise_circuit.Netlist
module Clock = Scnoise_circuit.Clock
module Compile = Scnoise_circuit.Compile
module Pwl = Scnoise_circuit.Pwl

type params = {
  ci1 : float;
  ci2 : float;
  b1 : float;
  a1 : float;
  c1 : float;
  a2 : float;
  r_switch : float;
  clock_hz : float;
  ugf : float;
  opamp_noise_psd : float;
  c_par : float;
  temperature : float;
}

let default =
  {
    ci1 = 10e-12;
    ci2 = 10e-12;
    b1 = 0.25;
    a1 = 0.25;
    c1 = 0.5;
    a2 = 0.5;
    r_switch = 1e3;
    clock_hz = 1e6;
    ugf = 2.0 *. Float.pi *. 1e8;
    opamp_noise_psd = 0.0;
    c_par = 20e-15;
    temperature = 300.0;
  }

type built = {
  sys : Pwl.t;
  output : Scnoise_linalg.Vec.t;
  params : params;
  netlist : Netlist.t;
  clock : Clock.t;
  output_node : string;
}

let output_name = "vo2"

let build params =
  let nl = Netlist.create () in
  let vin = Netlist.node nl "vin" in
  let vg1 = Netlist.node nl "vg1" in
  let vo1 = Netlist.node nl "vo1" in
  let vg2 = Netlist.node nl "vg2" in
  let vo2 = Netlist.node nl "vo2" in
  Netlist.vsource_dc ~name:"Vin" nl vin 0.0;
  Netlist.capacitor ~name:"Ci1" nl vg1 vo1 params.ci1;
  Netlist.opamp_integrator ~name:"OA1" ~input_noise_psd:params.opamp_noise_psd
    nl ~plus:Netlist.ground ~minus:vg1 ~out:vo1 ~ugf:params.ugf;
  Netlist.capacitor ~name:"Ci2" nl vg2 vo2 params.ci2;
  Netlist.opamp_integrator ~name:"OA2" ~input_noise_psd:params.opamp_noise_psd
    nl ~plus:Netlist.ground ~minus:vg2 ~out:vo2 ~ugf:params.ugf;
  let r = params.r_switch and cp = params.c_par in
  (* signal path: non-inverting input branch, non-inverting inter-stage *)
  Branches.parasitic_insensitive_noninverting nl ~label:"Bin" ~src:vin
    ~sum:vg1 ~c:(params.b1 *. params.ci1) ~cp ~r ();
  Branches.parasitic_insensitive_noninverting nl ~label:"Bc1" ~src:vo1
    ~sum:vg2 ~c:(params.c1 *. params.ci2) ~cp ~r ();
  (* linearised DAC feedback: inverting branches from the quantiser input *)
  Branches.toggle_to_ground nl ~label:"Bfb1" ~src:vo2 ~sum:vg1
    ~c:(params.a1 *. params.ci1) ~r ();
  Branches.toggle_to_ground nl ~label:"Bfb2" ~src:vo2 ~sum:vg2
    ~c:(params.a2 *. params.ci2) ~r ();
  let period = 1.0 /. params.clock_hz in
  let clock = Clock.make [ period /. 2.0; period /. 2.0 ] in
  let sys = Compile.compile ~temperature:params.temperature nl clock in
  let output = Pwl.observable sys output_name in
  { sys; output; params; netlist = nl; clock; output_node = output_name }
