module Netlist = Scnoise_circuit.Netlist
module Clock = Scnoise_circuit.Clock
module Compile = Scnoise_circuit.Compile
module Pwl = Scnoise_circuit.Pwl

type params = {
  cs : float;
  ci : float;
  cd : float;
  r_switch : float;
  clock_hz : float;
  ugf : float;
  opamp_noise_psd : float;
  c_par : float;
  temperature : float;
}

let default =
  {
    cs = 1e-12;
    ci = 10e-12;
    cd = 1e-12;
    r_switch = 1e3;
    clock_hz = 1e5;
    ugf = 2.0 *. Float.pi *. 1e7;
    opamp_noise_psd = 0.0;
    c_par = 50e-15;
    temperature = 300.0;
  }

type built = {
  sys : Pwl.t;
  output : Scnoise_linalg.Vec.t;
  params : params;
  netlist : Netlist.t;
  clock : Clock.t;
  output_node : string;
}

let output_name = "vo"

let dt_pole params = 1.0 -. (params.cd /. params.ci)

let ideal_dt params =
  let kt = Scnoise_util.Const.kt ~temperature:params.temperature () in
  let per_cap c = 2.0 *. kt /. c *. ((c /. params.ci) ** 2.0) in
  let q = per_cap params.cs +. (if params.cd > 0.0 then per_cap params.cd else 0.0) in
  Scnoise_dtime.Dt_system.make
    ~ad:(Scnoise_linalg.Mat.of_arrays [| [| dt_pole params |] |])
    ~bd:(Scnoise_linalg.Mat.of_arrays [| [| sqrt q |] |])
    ~c:[| 1.0 |]
    ~period:(1.0 /. params.clock_hz)

let phi1 = [ 0 ]

let phi2 = [ 1 ]

let build params =
  let nl = Netlist.create () in
  let vin = Netlist.node nl "vin" in
  let na = Netlist.node nl "na" in
  let nb = Netlist.node nl "nb" in
  let vg = Netlist.node nl "vg" in
  let vo = Netlist.node nl "vo" in
  Netlist.vsource_dc ~name:"Vin" nl vin 0.0;
  (* parasitic-insensitive inverting input branch *)
  Netlist.switch ~name:"S1" ~closed_in:phi1 nl na vin params.r_switch;
  Netlist.switch ~name:"S2" ~closed_in:phi1 nl nb Netlist.ground params.r_switch;
  Netlist.switch ~name:"S3" ~closed_in:phi2 nl na Netlist.ground params.r_switch;
  Netlist.switch ~name:"S4" ~closed_in:phi2 nl nb vg params.r_switch;
  Netlist.capacitor ~name:"Cs" nl na nb params.cs;
  Netlist.capacitor ~name:"Cpa" nl na Netlist.ground params.c_par;
  Netlist.capacitor ~name:"Cpb" nl nb Netlist.ground params.c_par;
  (* integrator *)
  Netlist.capacitor ~name:"Ci" nl vg vo params.ci;
  Netlist.opamp_integrator ~name:"OA" ~input_noise_psd:params.opamp_noise_psd
    nl ~plus:Netlist.ground ~minus:vg ~out:vo ~ugf:params.ugf;
  (* damping branch *)
  if params.cd > 0.0 then begin
    let ndmp = Netlist.node nl "nd" in
    Netlist.switch ~name:"S5" ~closed_in:phi1 nl ndmp vo params.r_switch;
    Netlist.switch ~name:"S6" ~closed_in:phi2 nl ndmp vg params.r_switch;
    Netlist.capacitor ~name:"Cd" nl ndmp Netlist.ground params.cd
  end;
  let period = 1.0 /. params.clock_hz in
  let clock = Clock.make [ period /. 2.0; period /. 2.0 ] in
  let sys = Compile.compile ~temperature:params.temperature nl clock in
  let output = Pwl.observable sys output_name in
  { sys; output; params; netlist = nl; clock; output_node = output_name }
