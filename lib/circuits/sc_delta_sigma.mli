(** Linearised second-order switched-capacitor delta-sigma modulator
    front end (Boser-Wooley style loop filter).

    The quantiser/DAC pair is replaced by its linear model (unity gain),
    closing the loop from the second integrator's output back into both
    summing nodes through inverting SC branches; the circuit is then a
    periodically switched *linear* system and the noise engines apply —
    the linearised treatment used for thermal-noise budgets of
    oversampling converters (cf. the delta-sigma application of the
    time-domain noise literature the source paper cites).

    The classic design consequence is testable here: in-band
    (f << f_clk / 2 OSR) thermal noise of the second stage is suppressed
    by the first integrator's gain, so the input branch dominates the
    low-frequency noise budget. *)

type params = {
  ci1 : float;  (** integrating cap, stage 1 *)
  ci2 : float;  (** integrating cap, stage 2 *)
  b1 : float;  (** input coefficient (cap ratio to ci1) *)
  a1 : float;  (** DAC feedback into stage 1 *)
  c1 : float;  (** inter-stage coefficient (ratio to ci2) *)
  a2 : float;  (** DAC feedback into stage 2 *)
  r_switch : float;
  clock_hz : float;
  ugf : float;
  opamp_noise_psd : float;
  c_par : float;
  temperature : float;
}

val default : params
(** 10 pF integrators, (b1, a1, c1, a2) = (0.25, 0.25, 0.5, 0.5), 1 kohm
    switches, 1 MHz clock, 2 pi 100 MHz op-amps, quiet op-amps. *)

type built = {
  sys : Scnoise_circuit.Pwl.t;
  output : Scnoise_linalg.Vec.t;  (** quantiser-input voltage (vo2) *)
  params : params;
  netlist : Scnoise_circuit.Netlist.t;  (** pre-compilation element graph *)
  clock : Scnoise_circuit.Clock.t;
  output_node : string;  (** name of the output node in [netlist] *)
}

val build : params -> built

val output_name : string
