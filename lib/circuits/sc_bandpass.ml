module Netlist = Scnoise_circuit.Netlist
module Clock = Scnoise_circuit.Clock
module Compile = Scnoise_circuit.Compile
module Pwl = Scnoise_circuit.Pwl

type params = {
  ci1 : float;
  ci2 : float;
  cin : float;
  cc12 : float;
  cc21 : float;
  cd : float;
  r_switch : float;
  clock_hz : float;
  ugf : float;
  opamp_noise_psd : float;
  c_par : float;
  temperature : float;
}

let design ?(ci = 100e-12) ?(r_switch = 80.0) ?(ugf = 2.0 *. Float.pi *. 5e7)
    ?(opamp_noise_psd = 2e-16) ~clock_hz ~f0 ~q () =
  if f0 <= 0.0 || q <= 0.0 || clock_hz <= 0.0 then
    invalid_arg "Sc_bandpass.design: positive f0, q, clock required";
  if f0 >= clock_hz /. 4.0 then
    invalid_arg "Sc_bandpass.design: f0 must be well below clock/4";
  if q > 2.5 then
    invalid_arg
      "Sc_bandpass.design: the single-delay loop timing of this topology is \
       unstable above Q ~ 2.5";
  let k = 2.0 *. Float.pi *. f0 /. clock_hz in
  {
    ci1 = ci;
    ci2 = ci;
    cin = k *. ci;
    cc12 = k *. ci;
    cc21 = k *. ci;
    cd = k /. q *. ci;
    r_switch;
    clock_hz;
    ugf;
    opamp_noise_psd;
    c_par = 50e-15;
    temperature = 300.0;
  }

let default = design ~clock_hz:128e3 ~f0:8e3 ~q:2.0 ()

type built = {
  sys : Pwl.t;
  output : Scnoise_linalg.Vec.t;
  params : params;
  netlist : Netlist.t;
  clock : Clock.t;
  output_node : string;
}

let output_name = "vo1"

let inverting_branch nl ~label ~src ~sum ~c ~r =
  Branches.toggle_to_ground nl ~label ~src ~sum ~c ~r ()

let noninverting_branch nl ~label ~src ~sum ~c ~cp ~r =
  Branches.parasitic_insensitive_noninverting nl ~label ~src ~sum ~c ~cp ~r ()

let build params =
  let nl = Netlist.create () in
  let vin = Netlist.node nl "vin" in
  let vg1 = Netlist.node nl "vg1" in
  let vo1 = Netlist.node nl "vo1" in
  let vg2 = Netlist.node nl "vg2" in
  let vo2 = Netlist.node nl "vo2" in
  Netlist.vsource_dc ~name:"Vin" nl vin 0.0;
  (* op-amp 1: damped integrator, band-pass output *)
  Netlist.capacitor ~name:"Ci1" nl vg1 vo1 params.ci1;
  Netlist.opamp_integrator ~name:"OA1" ~input_noise_psd:params.opamp_noise_psd
    nl ~plus:Netlist.ground ~minus:vg1 ~out:vo1 ~ugf:params.ugf;
  inverting_branch nl ~label:"Bin" ~src:vin ~sum:vg1 ~c:params.cin
    ~r:params.r_switch;
  inverting_branch nl ~label:"Bd" ~src:vo1 ~sum:vg1 ~c:params.cd
    ~r:params.r_switch;
  inverting_branch nl ~label:"Bfb" ~src:vo2 ~sum:vg1 ~c:params.cc21
    ~r:params.r_switch;
  (* op-amp 2: lossless non-inverting integrator *)
  Netlist.capacitor ~name:"Ci2" nl vg2 vo2 params.ci2;
  Netlist.opamp_integrator ~name:"OA2" ~input_noise_psd:params.opamp_noise_psd
    nl ~plus:Netlist.ground ~minus:vg2 ~out:vo2 ~ugf:params.ugf;
  noninverting_branch nl ~label:"Bc" ~src:vo1 ~sum:vg2 ~c:params.cc12
    ~cp:params.c_par ~r:params.r_switch;
  let period = 1.0 /. params.clock_hz in
  let clock = Clock.make [ period /. 2.0; period /. 2.0 ] in
  let sys = Compile.compile ~temperature:params.temperature nl clock in
  let output = Pwl.observable sys output_name in
  { sys; output; params; netlist = nl; clock; output_node = output_name }
