module Netlist = Scnoise_circuit.Netlist
module Clock = Scnoise_circuit.Clock
module Compile = Scnoise_circuit.Compile
module Pwl = Scnoise_circuit.Pwl

type opamp_model =
  | Integrator of { ugf : float }
  | Single_stage of { ugf : float; cout : float; rout : float }

type params = {
  c1 : float;
  c2 : float;
  c3 : float;
  r4 : float;
  r5 : float;
  r6 : float;
  clock_hz : float;
  opamp : opamp_model;
  opamp_noise_psd : float;
  temperature : float;
}

let default =
  {
    c1 = 300e-12;
    c2 = 100e-12;
    c3 = 100e-12;
    r4 = 80.0;
    r5 = 80.0;
    r6 = 80.0;
    clock_hz = 4e3;
    opamp = Integrator { ugf = 9.0 *. Float.pi *. 1e6 };
    opamp_noise_psd = 10.0 ** (-6.15);
    temperature = 300.0;
  }

let single_stage_variant =
  {
    default with
    opamp = Single_stage { ugf = 2.0 *. Float.pi *. 1e7; cout = 100e-12; rout = 1e7 };
  }

type built = {
  sys : Pwl.t;
  output : Scnoise_linalg.Vec.t;
  params : params;
  netlist : Netlist.t;
  clock : Clock.t;
  output_node : string;
}

let output_name = "vo"

(* two-phase clock: phase 0 = sampling (S4, S6->vo), phase 1 = integrating *)
let phi1 = [ 0 ]

let phi2 = [ 1 ]

let build params =
  let nl = Netlist.create () in
  let vin = Netlist.node nl "vin" in
  let n1 = Netlist.node nl "n1" in
  let vg = Netlist.node nl "vg" in
  let vo = Netlist.node nl "vo" in
  let n3 = Netlist.node nl "n3" in
  Netlist.vsource_dc ~name:"Vin" nl vin 0.0;
  (* input branch *)
  Netlist.switch ~name:"S4" ~closed_in:phi1 nl vin n1 params.r4;
  Netlist.switch ~name:"S5" ~closed_in:phi2 nl n1 Netlist.ground params.r5;
  Netlist.capacitor ~name:"C1" nl n1 vg params.c1;
  (* integrator *)
  Netlist.capacitor ~name:"C2" nl vg vo params.c2;
  (* damping branch: C3 toggled between the output and the summing node *)
  Netlist.switch ~name:"S6a" ~closed_in:phi1 nl n3 vo params.r6;
  Netlist.switch ~name:"S6b" ~closed_in:phi2 nl n3 vg params.r6;
  Netlist.capacitor ~name:"C3" nl n3 Netlist.ground params.c3;
  (match params.opamp with
  | Integrator { ugf } ->
      Netlist.opamp_integrator ~name:"OA" ~input_noise_psd:params.opamp_noise_psd
        nl ~plus:Netlist.ground ~minus:vg ~out:vo ~ugf
  | Single_stage { ugf; cout; rout } ->
      Netlist.opamp_single_stage ~name:"OA"
        ~input_noise_psd:params.opamp_noise_psd nl ~plus:Netlist.ground
        ~minus:vg ~out:vo ~gm:(ugf *. cout) ~rout ~cout);
  let period = 1.0 /. params.clock_hz in
  let clock = Clock.make [ period /. 2.0; period /. 2.0 ] in
  let sys = Compile.compile ~temperature:params.temperature nl clock in
  let output = Pwl.observable sys output_name in
  { sys; output; params; netlist = nl; clock; output_node = output_name }
