(* The daemon: a single-threaded [Unix.select] event loop over
   length-prefixed JSON frames, with admission control in front of the
   executor.

   Concurrency model: I/O is multiplexed across any number of client
   connections, while requests execute one at a time — each request is
   internally parallel across the PR-4 domain pool, so running two
   sweeps concurrently would only fight over the same cores and destroy
   the latency profile.  Admission control is therefore a bounded FIFO
   of decoded frames: when the queue is full new frames get an
   [overload] error reply immediately, and frames that waited longer
   than [timeout_s] are answered with a [timeout] error instead of
   being executed (compute is not preemptible, so the timeout bounds
   queueing delay, which is what actually grows under load).

   Shutdown (SIGINT, SIGTERM, or a [shutdown] request) drains: queued
   requests still execute, replies still flush, new frames are refused
   with a [shutdown] error, and the listener closes as soon as the
   drain begins.

   Frame discipline: a header announcing more than [max_frame] bytes
   (or garbage that decodes to a huge length) cannot be resynchronised
   — the reply is an [oversized] error and the connection closes after
   the flush.  A well-framed payload that fails to parse as JSON is
   recoverable: the client gets a [protocol] error reply and the
   connection stays open. *)

module Obs = Scnoise_obs.Obs
module Clock = Scnoise_obs.Clock
module P = Protocol

let log_src = Logs.Src.create "scnoise.serve" ~doc:"analysis daemon"

module Log = (val Logs.src_log log_src : Logs.LOG)

let c_conns = Obs.counter "serve.connections"

let c_overload = Obs.counter "serve.overload"

let c_timeouts = Obs.counter "serve.timeouts"

let h_queue_depth = Obs.histogram ~mode:Scnoise_obs.Hist.Counts "serve.queue_depth"

let h_queue_wait = Obs.histogram "serve.queue_wait_s"

type addr = Unix_path of string | Tcp of string * int

type config = {
  addr : addr;
  max_frame : int;
  queue_limit : int;
  timeout_s : float option;
  handle_signals : bool;
}

let config ?(max_frame = P.default_max_frame) ?(queue_limit = 64) ?timeout_s
    ?(handle_signals = true) addr =
  { addr; max_frame; queue_limit; timeout_s; handle_signals }

type conn = {
  fd : Unix.file_descr;
  peer : string;
  inbuf : Buffer.t;
  mutable outbuf : string;  (* bytes not yet written *)
  mutable out_off : int;
  mutable drop_input : bool;  (* unsynchronisable stream: close after flush *)
  mutable closed : bool;
}

type pending = { pc : conn; payload : string; arrived : float }

type t = {
  cfg : config;
  exec : Exec.t;
  listener : Unix.file_descr;
  mutable conns : conn list;
  queue : pending Queue.t;
  stop : bool Atomic.t;
}

let string_of_addr = function
  | Unix_path p -> "unix:" ^ p
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

(* ---- setup ---- *)

let listen_on = function
  | Unix_path path ->
      if Sys.file_exists path then Sys.remove path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd
  | Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ ->
          (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (ip, port));
      Unix.listen fd 64;
      fd

let create ?(exec = Exec.create ()) cfg =
  let listener = listen_on cfg.addr in
  Unix.set_nonblock listener;
  {
    cfg;
    exec;
    listener;
    conns = [];
    queue = Queue.create ();
    stop = Atomic.make false;
  }

let request_stop t = Atomic.set t.stop true

let draining t = Atomic.get t.stop || Exec.stopping t.exec

(* ---- per-connection I/O ---- *)

let send_reply conn json =
  let frame = P.encode_frame (Scnoise_obs.Json.to_string json) in
  conn.outbuf <- String.sub conn.outbuf conn.out_off
                   (String.length conn.outbuf - conn.out_off) ^ frame;
  conn.out_off <- 0

let close_conn t conn =
  if not conn.closed then begin
    conn.closed <- true;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    t.conns <- List.filter (fun c -> c != conn) t.conns
  end

let flush_conn t conn =
  let len = String.length conn.outbuf - conn.out_off in
  if len > 0 then
    match Unix.write_substring conn.fd conn.outbuf conn.out_off len with
    | n -> conn.out_off <- conn.out_off + n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        close_conn t conn

let pending_output conn = String.length conn.outbuf - conn.out_off > 0

(* Decode as many complete frames as the connection buffer holds.
   Returns the decoded payloads in arrival order. *)
let drain_frames t conn =
  let payloads = ref [] in
  let continue = ref (not conn.drop_input) in
  while !continue do
    let buf = Buffer.contents conn.inbuf in
    let have = String.length buf in
    if have < P.header_len then continue := false
    else begin
      let len = P.decode_len buf 0 in
      if len > t.cfg.max_frame then begin
        (* can't skip what we can't trust: reply and drop the stream *)
        send_reply conn
          (P.error_reply ~code:"oversized"
             (Printf.sprintf "frame of %d bytes exceeds the %d-byte limit"
                len t.cfg.max_frame));
        conn.drop_input <- true;
        Buffer.clear conn.inbuf;
        continue := false
      end
      else if have < P.header_len + len then continue := false
      else begin
        let payload = String.sub buf P.header_len len in
        Buffer.clear conn.inbuf;
        Buffer.add_substring conn.inbuf buf (P.header_len + len)
          (have - P.header_len - len);
        payloads := payload :: !payloads
      end
    end
  done;
  List.rev !payloads

let read_conn t conn =
  let scratch = Bytes.create 65536 in
  match Unix.read conn.fd scratch 0 (Bytes.length scratch) with
  | 0 -> close_conn t conn
  | n ->
      if not conn.drop_input then begin
        Buffer.add_subbytes conn.inbuf scratch 0 n;
        List.iter
          (fun payload ->
            if draining t then
              send_reply conn
                (P.error_reply ~code:"shutdown"
                   "daemon is shutting down; request refused")
            else if Queue.length t.queue >= t.cfg.queue_limit then begin
              Obs.incr c_overload;
              send_reply conn
                (P.error_reply ~code:"overload"
                   (Printf.sprintf
                      "request queue is full (%d pending); retry later"
                      (Queue.length t.queue)))
            end
            else begin
              Queue.add { pc = conn; payload; arrived = Clock.now () } t.queue;
              Obs.hist_record_int h_queue_depth (Queue.length t.queue)
            end)
          (drain_frames t conn)
      end
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> close_conn t conn

let accept_conns t =
  let continue = ref true in
  while !continue do
    match Unix.accept t.listener with
    | fd, sockaddr ->
        Unix.set_nonblock fd;
        let peer =
          match sockaddr with
          | Unix.ADDR_UNIX _ -> "unix"
          | Unix.ADDR_INET (ip, port) ->
              Printf.sprintf "%s:%d" (Unix.string_of_inet_addr ip) port
        in
        Obs.incr c_conns;
        Log.debug (fun m -> m "accepted connection from %s" peer);
        t.conns <-
          {
            fd;
            peer;
            inbuf = Buffer.create 4096;
            outbuf = "";
            out_off = 0;
            drop_input = false;
            closed = false;
          }
          :: t.conns
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

(* ---- request execution ---- *)

let serve_pending t { pc; payload; arrived } =
  if pc.closed then ()
  else begin
    let waited = Clock.now () -. arrived in
    Obs.hist_record h_queue_wait waited;
    let reply =
      match t.cfg.timeout_s with
      | Some limit when waited > limit ->
          Obs.incr c_timeouts;
          P.error_reply ~code:"timeout"
            (Printf.sprintf
               "request waited %.3f s in queue (limit %.3f s); dropped" waited
               limit)
      | _ -> Exec.handle_string t.exec payload
    in
    send_reply pc reply;
    flush_conn t pc
  end

(* ---- main loop ---- *)

let run t =
  let previous_handlers = ref [] in
  if t.cfg.handle_signals then begin
    let install signal =
      let old =
        Sys.signal signal
          (Sys.Signal_handle (fun _ -> Atomic.set t.stop true))
      in
      previous_handlers := (signal, old) :: !previous_handlers
    in
    install Sys.sigint;
    install Sys.sigterm;
    previous_handlers :=
      (Sys.sigpipe, Sys.signal Sys.sigpipe Sys.Signal_ignore)
      :: !previous_handlers
  end;
  Log.info (fun m -> m "listening on %s" (string_of_addr t.cfg.addr));
  let listener_open = ref true in
  let finished = ref false in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
        t.conns;
      if !listener_open then
        (try Unix.close t.listener with Unix.Unix_error _ -> ());
      (match t.cfg.addr with
      | Unix_path path -> ( try Sys.remove path with Sys_error _ -> ())
      | Tcp _ -> ());
      List.iter (fun (s, h) -> ignore (Sys.signal s h)) !previous_handlers)
    (fun () ->
      while not !finished do
        (* once draining, stop accepting so clients fail fast *)
        if draining t && !listener_open then begin
          (try Unix.close t.listener with Unix.Unix_error _ -> ());
          listener_open := false;
          Log.info (fun m -> m "draining: %d queued request(s)"
                       (Queue.length t.queue))
        end;
        let reads =
          (if !listener_open then [ t.listener ] else [])
          @ List.filter_map
              (fun c -> if c.drop_input then None else Some c.fd)
              t.conns
        in
        let writes =
          List.filter_map
            (fun c -> if pending_output c then Some c.fd else None)
            t.conns
        in
        (match Unix.select reads writes [] 0.2 with
        | readable, writable, _ ->
            if !listener_open && List.memq t.listener readable then
              accept_conns t;
            List.iter
              (fun c ->
                if (not c.closed) && List.memq c.fd writable then
                  flush_conn t c)
              t.conns;
            List.iter
              (fun c ->
                if (not c.closed) && List.memq c.fd readable then
                  read_conn t c)
              t.conns
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        (* execute everything admitted so far, one request at a time *)
        while not (Queue.is_empty t.queue) do
          serve_pending t (Queue.pop t.queue)
        done;
        (* a drop_input conn is done once its error reply flushed *)
        List.iter
          (fun c -> if c.drop_input && not (pending_output c) then
              close_conn t c)
          t.conns;
        if draining t && Queue.is_empty t.queue
           && not (List.exists pending_output t.conns)
        then finished := true
      done;
      Log.info (fun m -> m "shut down cleanly"))
