(* Wire protocol of the analysis daemon: length-prefixed JSON frames.

   A frame is a 4-byte big-endian payload length followed by that many
   bytes of UTF-8 JSON.  Requests are single objects or a batch
   envelope; every frame gets exactly one reply frame (a batch gets one
   reply carrying the per-request replies in order).  The JSON layer is
   the hardened dependency-free printer/parser of [Scnoise_obs.Json] —
   the same wire format as the metrics artifacts, so clients need no
   new decoder.

   Analysis parameters are all optional: a missing parameter falls back
   to the deck's analysis directive and then to the CLI's builtin
   default, the same resolution chain as `scnoise psd DECK --fmin ...`,
   which is what makes served results bit-identical to direct CLI
   runs. *)

module Json = Scnoise_obs.Json

(* ---- framing ---- *)

let header_len = 4

let default_max_frame = 8 * 1024 * 1024

let encode_len n =
  let b = Bytes.create header_len in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.unsafe_to_string b

let decode_len s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let encode_frame payload = encode_len (String.length payload) ^ payload

(* ---- requests ---- *)

type psd_params = {
  p_fmin : float option;
  p_fmax : float option;
  p_points : int option;
  p_log : bool option;
  p_spp : int option;
  p_engine : string option;
}

type transfer_params = {
  t_fmin : float option;
  t_fmax : float option;
  t_points : int option;
  t_k : int option;
  t_spp : int option;
}

type op =
  | Ping
  | Stats
  | Shutdown
  | Psd of psd_params
  | Variance of { v_spp : int option }
  | Contrib of { c_f : float option; c_spp : int option }
  | Transfer of transfer_params
  | Check

type request = {
  rq_id : string option;
  rq_deck : string option;  (* inline deck text *)
  rq_deck_name : string;  (* for diagnostics; defaults to "<request>" *)
  rq_op : op;
}

type envelope = Single of request | Batch of string option * request list

let op_name = function
  | Ping -> "ping"
  | Stats -> "stats"
  | Shutdown -> "shutdown"
  | Psd _ -> "psd"
  | Variance _ -> "variance"
  | Contrib _ -> "contrib"
  | Transfer _ -> "transfer"
  | Check -> "check"

(* ---- decoding ---- *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let str_field j name =
  match Json.member name j with
  | None -> None
  | Some (Json.Str s) -> Some s
  | Some _ -> bad "field %S must be a string" name

let num_field j name =
  match Json.member name j with
  | None -> None
  | Some (Json.Num x) -> Some x
  | Some _ -> bad "field %S must be a number" name

let int_field j name =
  match num_field j name with
  | None -> None
  | Some x ->
      let i = int_of_float x in
      if float_of_int i <> x then bad "field %S must be an integer" name;
      Some i

let bool_field j name =
  match Json.member name j with
  | None -> None
  | Some (Json.Bool b) -> Some b
  | Some _ -> bad "field %S must be a boolean" name

let request_of_json j =
  (match j with Json.Obj _ -> () | _ -> bad "request must be a JSON object");
  let op =
    match str_field j "op" with
    | None -> bad "request is missing \"op\""
    | Some "ping" -> Ping
    | Some "stats" -> Stats
    | Some "shutdown" -> Shutdown
    | Some "psd" ->
        Psd
          {
            p_fmin = num_field j "fmin";
            p_fmax = num_field j "fmax";
            p_points = int_field j "points";
            p_log = bool_field j "log";
            p_spp = int_field j "spp";
            p_engine = str_field j "engine";
          }
    | Some "variance" -> Variance { v_spp = int_field j "spp" }
    | Some "contrib" ->
        Contrib { c_f = num_field j "f"; c_spp = int_field j "spp" }
    | Some "transfer" ->
        Transfer
          {
            t_fmin = num_field j "fmin";
            t_fmax = num_field j "fmax";
            t_points = int_field j "points";
            t_k = int_field j "k";
            t_spp = int_field j "spp";
          }
    | Some "check" -> Check
    | Some other -> bad "unknown op %S" other
  in
  {
    rq_id = str_field j "id";
    rq_deck = str_field j "deck";
    rq_deck_name = Option.value (str_field j "deck_name") ~default:"<request>";
    rq_op = op;
  }

let envelope_of_json j =
  match str_field j "op" with
  | Some "batch" -> (
      match Json.member "requests" j with
      | Some (Json.List items) ->
          Batch (str_field j "id", List.map request_of_json items)
      | Some _ -> bad "field \"requests\" must be an array"
      | None -> bad "batch request is missing \"requests\"")
  | _ -> Single (request_of_json j)

let envelope_of_string s =
  match Json.of_string s with
  | exception Json.Parse_error msg -> Error ("invalid JSON: " ^ msg)
  | j -> ( match envelope_of_json j with
    | env -> Ok env
    | exception Bad msg -> Error msg)

(* ---- encoding (client side) ---- *)

let opt_fields fields =
  List.filter_map (fun (k, v) -> Option.map (fun v -> (k, v)) v) fields

let num x = Json.Num x

let inum i = Json.Num (float_of_int i)

let request_to_json rq =
  Json.Obj
    (opt_fields
       [
         ("op", Some (Json.Str (op_name rq.rq_op)));
         ("id", Option.map (fun s -> Json.Str s) rq.rq_id);
         ("deck", Option.map (fun s -> Json.Str s) rq.rq_deck);
         ( "deck_name",
           if rq.rq_deck_name = "<request>" then None
           else Some (Json.Str rq.rq_deck_name) );
       ]
    @
    match rq.rq_op with
    | Ping | Stats | Shutdown | Check -> []
    | Psd p ->
        opt_fields
          [
            ("fmin", Option.map num p.p_fmin);
            ("fmax", Option.map num p.p_fmax);
            ("points", Option.map inum p.p_points);
            ("log", Option.map (fun b -> Json.Bool b) p.p_log);
            ("spp", Option.map inum p.p_spp);
            ("engine", Option.map (fun s -> Json.Str s) p.p_engine);
          ]
    | Variance { v_spp } -> opt_fields [ ("spp", Option.map inum v_spp) ]
    | Contrib { c_f; c_spp } ->
        opt_fields
          [ ("f", Option.map num c_f); ("spp", Option.map inum c_spp) ]
    | Transfer t ->
        opt_fields
          [
            ("fmin", Option.map num t.t_fmin);
            ("fmax", Option.map num t.t_fmax);
            ("points", Option.map inum t.t_points);
            ("k", Option.map inum t.t_k);
            ("spp", Option.map inum t.t_spp);
          ])

let batch_to_json ?id requests =
  Json.Obj
    (opt_fields [ ("id", Option.map (fun s -> Json.Str s) id) ]
    @ [
        ("op", Json.Str "batch");
        ("requests", Json.List (List.map request_to_json requests));
      ])

(* ---- replies ---- *)

(* Stable error codes clients can dispatch on:
     protocol   malformed frame / JSON / fields
     oversized  frame beyond the daemon's --max-frame
     deck       parse or elaboration diagnostic (rendered, multi-line)
     erc        electrical-rule errors (rendered caret findings)
     compile    matrix assembly failure
     output     output node not observable
     unstable   circuit has no steady state
     engine     unsupported PSD engine for serve (only "mft")
     inputs     transfer on a circuit without signal inputs
     overload   admission queue full
     timeout    spent longer than --timeout queued
     shutdown   daemon is draining and refuses new work
     internal   unexpected exception (daemon survives) *)

let id_fields = function
  | None -> []
  | Some id -> [ ("id", Json.Str id) ]

let ok_reply ?id ~op ?cache ?elapsed_s result =
  Json.Obj
    (id_fields id
    @ [ ("ok", Json.Bool true); ("op", Json.Str op) ]
    @ (match cache with Some c -> [ ("cache", Json.Str c) ] | None -> [])
    @ (match elapsed_s with
      | Some t -> [ ("elapsed_s", Json.Num t) ]
      | None -> [])
    @ [ ("result", result) ])

let error_reply ?id ~code message =
  Json.Obj
    (id_fields id
    @ [
        ("ok", Json.Bool false);
        ( "error",
          Json.Obj [ ("code", Json.Str code); ("message", Json.Str message) ]
        );
      ])

let batch_reply ?id replies =
  Json.Obj
    (id_fields id
    @ [
        ("ok", Json.Bool true);
        ("op", Json.Str "batch");
        ("results", Json.List replies);
      ])

let reply_ok j = match Json.member "ok" j with Some (Json.Bool b) -> b | _ -> false

let reply_error_code j =
  match Json.member "error" j with
  | Some e -> ( match Json.member "code" e with
    | Some (Json.Str c) -> Some c
    | _ -> None)
  | None -> None

let reply_result j = Json.member "result" j

let reply_cache j =
  match Json.member "cache" j with Some (Json.Str c) -> Some c | _ -> None

(* Pull a float array out of a reply result, e.g. result.psd_V2_per_Hz.
   Used by clients (bench, tests) for bit-parity checks; %.17g printing
   round-trips doubles exactly, so equality here is equality of the
   computed bits. *)
let float_array_field j name =
  match Json.member name j with
  | Some (Json.List items) ->
      Some
        (Array.of_list
           (List.map
              (function Json.Num x -> x | _ -> raise (Bad "not a number"))
              items))
  | _ -> None
