(** Bounded, mutex-guarded LRU cache for the serve tiers.

    Small capacities by design (prepared solvers pin covariance traces
    and LU factors), so eviction is a linear scan for the
    least-recently-used entry.  Hit/miss/eviction counts feed both the
    [Obs] registry ([serve.cache.<name>.*] counters) and the daemon's
    [stats] reply. *)

type 'a t

val create : name:string -> cap:int -> 'a t
(** Raises [Invalid_argument] when [cap < 1]. *)

val find : 'a t -> string -> 'a option
(** Probe; refreshes recency on hit. *)

val put : 'a t -> string -> 'a -> unit
(** Insert (or replace), evicting the least-recently-used entry when
    the cache is full. *)

val length : 'a t -> int

val cap : 'a t -> int

val name : 'a t -> string

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
}

val stats : 'a t -> stats
