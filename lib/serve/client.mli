(** Blocking client for the daemon protocol (used by `scnoise bench
    serve` and the test suite). *)

type t

val connect :
  ?attempts:int -> ?retry_delay_s:float -> Server.addr -> (t, string) result
(** Retries connection refusals (the daemon may still be starting);
    defaults: 50 attempts, 50 ms apart. *)

val close : t -> unit

val rpc : t -> Scnoise_obs.Json.t -> (Scnoise_obs.Json.t, string) result
(** Send one request frame, wait for its reply frame. *)

val rpc_string : t -> string -> (string, string) result
(** Same with raw payloads (tests exercise malformed JSON). *)

val send_raw : t -> string -> unit
(** Raw bytes, bypassing framing — for protocol-abuse tests. *)
