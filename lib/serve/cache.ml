(* Bounded LRU cache used by both serve tiers (results and prepared
   solvers).

   Capacities are small (tens of entries: each prepared solver pins a
   sampled covariance trace plus per-phase LU factors), so eviction does
   a linear scan for the oldest access tick instead of maintaining an
   intrusive list.  Probes bump a logical clock; a mutex makes the cache
   safe to share between the server loop and direct library users
   (tests drive {!Exec} from several domains).

   Hits/misses/evictions are mirrored into [Obs] counters
   ([serve.cache.<name>.hit] etc.) for the metrics artifacts, and kept
   as per-instance fields for the daemon's [stats] reply (the registry
   counters are process-global, so a fresh cache must not inherit the
   counts of a previous instance). *)

module Obs = Scnoise_obs.Obs

type 'a slot = { value : 'a; mutable tick : int }

type 'a t = {
  name : string;
  cap : int;
  mutex : Mutex.t;
  table : (string, 'a slot) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  c_hit : Obs.counter;
  c_miss : Obs.counter;
  c_evict : Obs.counter;
}

let create ~name ~cap =
  if cap < 1 then invalid_arg "Cache.create: cap must be >= 1";
  {
    name;
    cap;
    mutex = Mutex.create ();
    table = Hashtbl.create (2 * cap);
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    c_hit = Obs.counter (Printf.sprintf "serve.cache.%s.hit" name);
    c_miss = Obs.counter (Printf.sprintf "serve.cache.%s.miss" name);
    c_evict = Obs.counter (Printf.sprintf "serve.cache.%s.evict" name);
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some slot ->
          t.clock <- t.clock + 1;
          slot.tick <- t.clock;
          t.hits <- t.hits + 1;
          Obs.incr t.c_hit;
          Some slot.value
      | None ->
          t.misses <- t.misses + 1;
          Obs.incr t.c_miss;
          None)

let evict_oldest_locked t =
  let oldest = ref None in
  Hashtbl.iter
    (fun key slot ->
      match !oldest with
      | Some (_, best) when best <= slot.tick -> ()
      | _ -> oldest := Some (key, slot.tick))
    t.table;
  match !oldest with
  | Some (key, _) ->
      Hashtbl.remove t.table key;
      t.evictions <- t.evictions + 1;
      Obs.incr t.c_evict
  | None -> ()

let put t key value =
  locked t (fun () ->
      t.clock <- t.clock + 1;
      (match Hashtbl.find_opt t.table key with
      | Some _ -> Hashtbl.remove t.table key
      | None -> ());
      if Hashtbl.length t.table >= t.cap then evict_oldest_locked t;
      Hashtbl.replace t.table key { value; tick = t.clock })

let length t = locked t (fun () -> Hashtbl.length t.table)

let cap t = t.cap

let name t = t.name

type stats = { hits : int; misses : int; evictions : int; entries : int; capacity : int }

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        entries = Hashtbl.length t.table;
        capacity = t.cap;
      })
