(** Request execution with the two-tier content-addressed cache.

    Tier 1 (results) is keyed by (canonical deck hash, op, resolved
    parameters); tier 2 (prepared) retains per-circuit solver state —
    compiled system, observability vector and the prepared PSD/transfer
    engines per samples-per-phase — so warm requests skip straight to
    the frequency loop.  Parameter resolution follows the CLI rule
    (request beats deck directive beats builtin default) and the numeric
    paths call the same library entry points, making served results
    bit-identical to direct `scnoise` runs.

    Executors never raise out of {!handle}: failures become structured
    error replies with the stable codes documented in {!Protocol}. *)

type t

val default_cache_entries : int

val create : ?cache_entries:int -> unit -> t
(** [cache_entries] bounds the tier-1 result cache; the tier-2 solver
    cache holds a quarter of that (at least one). *)

val handle : t -> Protocol.envelope -> Scnoise_obs.Json.t
(** Execute one envelope and return the reply.  Requests run one at a
    time under a mutex (each request is internally parallel across the
    shared domain pool); batches execute their requests in order. *)

val handle_string : t -> string -> Scnoise_obs.Json.t
(** Parse a frame payload and {!handle} it; malformed payloads yield a
    [protocol] error reply. *)

val stats_json : t -> Scnoise_obs.Json.t
(** The payload of a [stats] reply. *)

val stopping : t -> bool
(** True once a [shutdown] request was served (or {!request_stop} was
    called); the server drains and exits. *)

val request_stop : t -> unit
