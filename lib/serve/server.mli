(** The analysis daemon: a single-threaded [Unix.select] event loop
    over length-prefixed JSON frames with admission control in front of
    an {!Exec} executor.

    I/O is multiplexed across any number of connections while requests
    execute one at a time — each request is internally parallel across
    the shared domain pool.  Admission control is a bounded FIFO: a
    full queue answers [overload] immediately and frames that queued
    longer than [timeout_s] are answered [timeout] instead of executed.
    SIGINT/SIGTERM (or a [shutdown] request) drain: queued work
    finishes, replies flush, new frames get [shutdown] errors. *)

type addr = Unix_path of string | Tcp of string * int

type config = {
  addr : addr;
  max_frame : int;  (** frames beyond this are unrecoverable: error + close *)
  queue_limit : int;
  timeout_s : float option;  (** bound on queueing delay, not on compute *)
  handle_signals : bool;  (** false in tests (the loop runs in a domain) *)
}

val config :
  ?max_frame:int -> ?queue_limit:int -> ?timeout_s:float ->
  ?handle_signals:bool -> addr -> config
(** Defaults: [max_frame] {!Protocol.default_max_frame}, [queue_limit]
    64, no timeout, signals handled. *)

type t

val create : ?exec:Exec.t -> config -> t
(** Bind and listen (a stale Unix socket path is replaced).  Raises
    [Unix.Unix_error] when the address is unavailable. *)

val run : t -> unit
(** Serve until drained after a stop request; closes the listener, all
    connections and removes the Unix socket path on the way out. *)

val request_stop : t -> unit
(** Ask the loop to drain and exit (what the signal handlers call);
    safe from another domain. *)
