(* Request execution with the two-tier content-addressed cache.

   Tier 1 maps (deck hash, op, fully-resolved parameters) to the reply
   [result] JSON: a repeated request costs one parse + elaborate + hash
   and no numerics at all.

   Tier 2 maps the deck hash to the prepared solver state: the compiled
   PWL system, the observability vector, and — per samples-per-phase
   setting — the prepared PSD / transfer engines (sampled periodic
   covariance, monodromy, per-phase discretisations).  A warm request
   that misses tier 1 skips straight to the frequency loop, which is
   the part that the PR-4 domain pool parallelises.

   Every numeric path calls exactly the library entry points the CLI
   calls, with the same argument resolution (request parameter beats
   deck directive beats builtin default), so served values are
   bit-identical to direct `scnoise` runs — the parity property the
   tests and `scnoise bench serve` assert.

   Replies never raise: failures become structured error replies with
   the stable codes documented in {!Protocol}. *)

module Json = Scnoise_obs.Json
module Obs = Scnoise_obs.Obs
module Clock = Scnoise_obs.Clock
module Deck = Scnoise_lang.Deck
module Elab = Scnoise_lang.Elab
module Canon = Scnoise_lang.Canon
module Diag = Scnoise_lang.Diag
module Check = Scnoise_check.Check
module Finding = Scnoise_check.Finding
module Pwl = Scnoise_circuit.Pwl
module Compile = Scnoise_circuit.Compile
module Psd = Scnoise_core.Psd
module Covariance = Scnoise_core.Covariance
module Contrib = Scnoise_core.Contrib
module Transfer = Scnoise_core.Transfer
module Grid = Scnoise_util.Grid
module Pool = Scnoise_par.Pool
module P = Protocol

let c_requests = Obs.counter "serve.requests"

let c_errors = Obs.counter "serve.errors"

let c_batches = Obs.counter "serve.batches"

let h_request = Obs.histogram "serve.request_s"

exception Err of string * string

let err code fmt = Printf.ksprintf (fun m -> raise (Err (code, m))) fmt

(* Tier-2 entry: everything frequency-independent about one circuit.
   The engine alists are tiny (one entry per distinct spp seen) and are
   only mutated under the executor mutex. *)
type prepared = {
  pr_sys : Pwl.t;
  pr_output : Scnoise_linalg.Vec.t;
  pr_directives : Elab.analysis list;
  pr_stable : bool;
  mutable pr_psd : (int * Psd.engine) list;
  mutable pr_transfer : (int * Transfer.engine) list;
}

type t = {
  results : Json.t Cache.t;
  solvers : prepared Cache.t;
  mutex : Mutex.t;
  started : float;
  mutable served : int;
  mutable failed : int;
  stop : bool Atomic.t;
}

let default_cache_entries = 32

let create ?(cache_entries = default_cache_entries) () =
  {
    results = Cache.create ~name:"results" ~cap:cache_entries;
    solvers = Cache.create ~name:"prepared" ~cap:(max 1 (cache_entries / 4));
    mutex = Mutex.create ();
    started = Clock.now ();
    served = 0;
    failed = 0;
    stop = Atomic.make false;
  }

let stopping t = Atomic.get t.stop

let request_stop t = Atomic.set t.stop true

(* ---- deck pipeline (mirrors the CLI's pick_deck) ---- *)

let load_deck ~name text =
  match Deck.load_string ~name text with
  | Error msg -> raise (Err ("deck", msg))
  | Ok loaded -> loaded

let erc_gate (loaded : Deck.loaded) =
  let errs =
    List.filter
      (fun f -> f.Finding.severity = Finding.Error)
      (Check.check_elab loaded.Deck.elab)
  in
  match errs with
  | [] -> ()
  | errs ->
      raise
        (Err
           ( "erc",
             String.concat "\n"
               (List.map (Finding.render ~source:loaded.Deck.source) errs) ))

(* Compile (or fetch) the tier-2 entry.  The ERC gate runs on every
   request — it is structural and cheap — so a cached circuit never
   bypasses the checks a direct CLI run would perform. *)
let prepared_entry t ~name (loaded : Deck.loaded) hash =
  erc_gate loaded;
  match Cache.find t.solvers hash with
  | Some p -> p
  | None ->
      let e = loaded.Deck.elab in
      let sys =
        match
          Compile.compile ?temperature:e.Elab.temperature e.Elab.netlist
            e.Elab.clock
        with
        | exception Compile.Error msg -> err "compile" "%s: %s" name msg
        | sys -> sys
      in
      let output =
        match Pwl.observable sys e.Elab.output_node with
        | exception Not_found ->
            raise
              (Err
                 ( "output",
                   Diag.render loaded.Deck.source e.Elab.output_loc
                     (Printf.sprintf
                        "output node %S is not an observable state (it is \
                         resistive or source-driven)"
                        e.Elab.output_node) ))
        | v -> v
      in
      let p =
        {
          pr_sys = sys;
          pr_output = output;
          pr_directives = List.map fst e.Elab.analyses;
          pr_stable = Pwl.is_stable sys;
          pr_psd = [];
          pr_transfer = [];
        }
      in
      Cache.put t.solvers hash p;
      p

(* [true] when the engine already existed (the request skipped straight
   to the frequency loop). *)
let psd_engine p spp =
  match List.assoc_opt spp p.pr_psd with
  | Some e -> (e, true)
  | None ->
      let e = Psd.prepare ~samples_per_phase:spp p.pr_sys ~output:p.pr_output in
      p.pr_psd <- (spp, e) :: p.pr_psd;
      (e, false)

let transfer_engine p spp =
  match List.assoc_opt spp p.pr_transfer with
  | Some e -> (e, true)
  | None ->
      let e =
        Transfer.prepare ~samples_per_phase:spp p.pr_sys ~output:p.pr_output
      in
      p.pr_transfer <- (spp, e) :: p.pr_transfer;
      (e, false)

let require_stable p =
  if not p.pr_stable then
    err "unstable" "circuit is not stable; no steady-state noise"

(* request parameter beats deck directive beats builtin default — the
   CLI's resolution rule, verbatim *)
let resolve cli directive default =
  match cli with Some v -> v | None -> Option.value directive ~default

let fstr x = Printf.sprintf "%.17g" x

(* The covariance backend joins the key only when the configuration can
   change results beyond numeric tolerance ([Covariance.cache_tag] is
   [""] otherwise), so dense and low-rank runs at the default
   truncation tolerance share cache entries. *)
let result_key hash op params =
  let params =
    match Covariance.cache_tag () with
    | "" -> params
    | tag -> tag :: params
  in
  String.concat "\x00" (hash :: op :: params)

let floats xs = Json.List (Array.to_list (Array.map (fun x -> Json.Num x) xs))

let level ~prepared = if prepared then "prepared" else "cold"

(* ---- analysis ops ----

   Each handler returns [(result, cache_level)] and takes the parsed
   request parameters.  [cached] consults tier 1 first and stores the
   freshly computed result on a miss. *)

let cached t key compute =
  match Cache.find t.results key with
  | Some r -> (r, "result")
  | None ->
      let r, lvl = compute () in
      Cache.put t.results key r;
      (r, lvl)

let run_psd t p hash (q : P.psd_params) =
  let dfmin, dfmax, dpoints, dlog, dengine =
    match
      List.find_map
        (function
          | Elab.Psd { fmin; fmax; points; log; engine } ->
              Some (fmin, fmax, points, log, engine)
          | _ -> None)
        p.pr_directives
    with
    | Some d -> d
    | None -> (None, None, None, false, None)
  in
  let engine = resolve q.P.p_engine dengine "mft" in
  if engine <> "mft" then
    err "engine" "engine %S is not served (the daemon caches prepared MFT \
                  solvers; run `scnoise psd --engine %s` directly)" engine
      engine;
  let fmin = resolve q.P.p_fmin dfmin 0.0 in
  let fmax = resolve q.P.p_fmax dfmax 16e3 in
  let points = resolve q.P.p_points dpoints 33 in
  let log = Option.value q.P.p_log ~default:false || dlog in
  let spp = Option.value q.P.p_spp ~default:96 in
  let key =
    result_key hash "psd"
      [ fstr fmin; fstr fmax; string_of_int points; string_of_bool log;
        string_of_int spp ]
  in
  cached t key (fun () ->
      require_stable p;
      let freqs =
        if log then Grid.logspace (max fmin 1e-3) fmax points
        else Grid.linspace fmin fmax points
      in
      let eng, prepared = psd_engine p spp in
      let values = Psd.sweep eng freqs in
      ( Json.Obj
          [ ("freqs", floats freqs); ("psd_V2_per_Hz", floats values) ],
        level ~prepared ))

let run_variance t p hash spp =
  let spp = Option.value spp ~default:96 in
  let key = result_key hash "variance" [ string_of_int spp ] in
  cached t key (fun () ->
      require_stable p;
      (* the PSD engine's sampled covariance IS the CLI's
         [Covariance.sample ~samples_per_phase:spp sys] — same call,
         same defaults — so reusing it keeps variance bit-identical
         while sharing tier-2 state with psd requests *)
      let eng, prepared = psd_engine p spp in
      let cov = Psd.covariance eng in
      let vb = Covariance.variance_at_boundary cov p.pr_output in
      let va = Covariance.average_variance cov p.pr_output in
      ( Json.Obj
          [
            ("boundary_V2", Json.Num vb);
            ("average_V2", Json.Num va);
            ("closure_error", Json.Num (Covariance.closure_error cov));
          ],
        level ~prepared ))

let run_contrib t p hash (f : float option) spp =
  let df =
    List.find_map
      (function Elab.Contrib { f } -> f | _ -> None)
      p.pr_directives
  in
  let f = resolve f df 1e3 in
  let spp = Option.value spp ~default:96 in
  let key = result_key hash "contrib" [ fstr f; string_of_int spp ] in
  cached t key (fun () ->
      require_stable p;
      (* per-source PSDs restrict the noise inputs, so there is no
         shared solver to reuse: contrib is cold unless tier 1 hits *)
      let parts =
        Contrib.per_source_psd ~samples_per_phase:spp p.pr_sys
          ~output:p.pr_output ~f
      in
      let total = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 parts in
      ( Json.Obj
          [
            ("f_Hz", Json.Num f);
            ( "sources",
              Json.List
                (List.map
                   (fun (label, s) ->
                     Json.Obj
                       [
                         ("name", Json.Str label);
                         ("psd_V2_per_Hz", Json.Num s);
                       ])
                   parts) );
            ("total_V2_per_Hz", Json.Num total);
          ],
        "cold" ))

let run_transfer t p hash (q : P.transfer_params) =
  let dfmin, dfmax, dpoints, dk =
    match
      List.find_map
        (function
          | Elab.Transfer { fmin; fmax; points; k } ->
              Some (fmin, fmax, points, k)
          | _ -> None)
        p.pr_directives
    with
    | Some d -> d
    | None -> (None, None, None, None)
  in
  let fmin = resolve q.P.t_fmin dfmin 1.0 in
  let fmax = resolve q.P.t_fmax dfmax 2e3 in
  let points = resolve q.P.t_points dpoints 21 in
  let k_range = resolve q.P.t_k dk 0 in
  let spp = Option.value q.P.t_spp ~default:96 in
  if Array.length p.pr_sys.Pwl.inputs = 0 then
    err "inputs" "circuit has no signal inputs";
  let key =
    result_key hash "transfer"
      [ fstr fmin; fstr fmax; string_of_int points; string_of_int k_range;
        string_of_int spp ]
  in
  cached t key (fun () ->
      let eng, prepared = transfer_engine p spp in
      let freqs = Grid.linspace fmin fmax points in
      let hs =
        Array.map (fun f -> Transfer.harmonics eng ~input:0 ~f ~k_range) freqs
      in
      let h0_re = Array.map (fun h -> h.(k_range).Scnoise_linalg.Cx.re) hs in
      let h0_im = Array.map (fun h -> h.(k_range).Scnoise_linalg.Cx.im) hs in
      let side =
        if k_range = 0 then []
        else
          [
            ( "harmonics",
              Json.List
                (Array.to_list
                   (Array.map
                      (fun h ->
                        Json.List
                          (List.init k_range (fun i ->
                               Json.Num
                                 (Scnoise_linalg.Cx.modulus
                                    h.(k_range + i + 1)))))
                      hs)) );
          ]
      in
      ( Json.Obj
          ([
             ("freqs", floats freqs);
             ("h0_re", floats h0_re);
             ("h0_im", floats h0_im);
           ]
          @ side),
        level ~prepared ))

(* `check` findings carry line:col positions that the canonical
   (layout-insensitive) hash deliberately erases, so tier 1 stores a
   position-free verdict — findings as (rule, severity, subject,
   message, anchor) plus a name-free compile outcome — and BOTH the
   cold and the warm path re-derive locations per request by resolving
   each anchor against the request's own elaboration
   ({!Check.resolve_anchor}).  Cold and warm replies are therefore
   byte-identical, and a warm hit from a differently-laid-out deck with
   the same canonical hash still carets the right cards. *)
let check_verdict t (loaded : Deck.loaded) hash =
  let key = result_key hash "check" [] in
  cached t key (fun () ->
      let e = loaded.Deck.elab in
      let findings = Check.check_elab e in
      let compile_error =
        if Finding.errors findings > 0 then None
        else
          match
            Compile.compile ?temperature:e.Elab.temperature e.Elab.netlist
              e.Elab.clock
          with
          | exception Compile.Error msg -> Some ("compile", msg)
          | sys -> (
              match Pwl.observable sys e.Elab.output_node with
              | exception Not_found ->
                  Some
                    ( "output",
                      Printf.sprintf
                        "output node %S is not an observable state (it is \
                         resistive or source-driven)"
                        e.Elab.output_node )
              | _ -> None)
      in
      ( Json.Obj
          (( "findings",
             Json.List (List.map Finding.to_json_positionless findings) )
          ::
          (match compile_error with
          | None -> []
          | Some (kind, msg) ->
              [
                ("compile_error_kind", Json.Str kind);
                ("compile_error", Json.Str msg);
              ])),
        "cold" ))

let run_check t ~name text =
  let loaded = load_deck ~name text in
  let e = loaded.Deck.elab in
  let hash = Canon.hash_loaded loaded in
  let verdict, lvl = check_verdict t loaded hash in
  let fields = match verdict with Json.Obj fs -> fs | _ -> [] in
  let findings =
    (match List.assoc_opt "findings" fields with
    | Some (Json.List l) -> List.filter_map Finding.of_json l
    | _ -> [])
    |> List.map (fun (f : Finding.t) ->
           {
             f with
             Finding.loc =
               Option.bind f.Finding.anchor (Check.resolve_anchor e);
           })
  in
  let nerr = Finding.errors findings in
  let compile_error =
    match
      ( List.assoc_opt "compile_error_kind" fields,
        List.assoc_opt "compile_error" fields )
    with
    | Some (Json.Str "output"), Some (Json.Str msg) ->
        Some (Diag.render loaded.Deck.source e.Elab.output_loc msg)
    | _, Some (Json.Str msg) -> Some (name ^ ": " ^ msg)
    | _ -> None
  in
  ( Json.Obj
      ([
         ("schema", Json.Str "scnoise.check/1");
         ("deck", Json.Str name);
         ("findings", Json.List (List.map Finding.to_json findings));
         ("errors", Json.Num (float_of_int nerr));
         ("warnings", Json.Num (float_of_int (Finding.warnings findings)));
         ("compile_ok", Json.Bool (nerr = 0 && compile_error = None));
       ]
      @
      match compile_error with
      | Some msg -> [ ("compile_error", Json.Str msg) ]
      | None -> []),
    lvl )

(* ---- stats ---- *)

let cache_stats_json (s : Cache.stats) =
  Json.Obj
    [
      ("entries", Json.Num (float_of_int s.Cache.entries));
      ("capacity", Json.Num (float_of_int s.Cache.capacity));
      ("hits", Json.Num (float_of_int s.Cache.hits));
      ("misses", Json.Num (float_of_int s.Cache.misses));
      ("evictions", Json.Num (float_of_int s.Cache.evictions));
    ]

let stats_json t =
  Json.Obj
    [
      ("uptime_s", Json.Num (Clock.now () -. t.started));
      ("served", Json.Num (float_of_int t.served));
      ("errors", Json.Num (float_of_int t.failed));
      ("jobs", Json.Num (float_of_int (Pool.default_jobs ())));
      ( "batch",
        match Psd.configured_batch () with
        | Some w -> Json.Num (float_of_int w)
        | None -> Json.Str "auto" );
      ( "cov_backend",
        match Covariance.configured_backend () with
        | Some b -> Json.Str (Covariance.backend_name b)
        | None -> Json.Str "auto" );
      ( "cache",
        Json.Obj
          [
            ("results", cache_stats_json (Cache.stats t.results));
            ("prepared", cache_stats_json (Cache.stats t.solvers));
          ] );
    ]

(* ---- dispatch ---- *)

let deck_of rq =
  match rq.P.rq_deck with
  | Some text -> text
  | None ->
      err "protocol" "op %S requires a \"deck\" field" (P.op_name rq.P.rq_op)

let run_request t rq =
  match rq.P.rq_op with
  | P.Ping -> (Json.Obj [ ("pong", Json.Bool true) ], None)
  | P.Stats -> (stats_json t, None)
  | P.Shutdown ->
      Atomic.set t.stop true;
      (Json.Obj [ ("stopping", Json.Bool true) ], None)
  | P.Check ->
      let result, lvl = run_check t ~name:rq.P.rq_deck_name (deck_of rq) in
      (result, Some lvl)
  | P.Psd _ | P.Variance _ | P.Contrib _ | P.Transfer _ ->
      let name = rq.P.rq_deck_name in
      let loaded = load_deck ~name (deck_of rq) in
      let hash = Canon.hash_loaded loaded in
      let p = prepared_entry t ~name loaded hash in
      let result, lvl =
        match rq.P.rq_op with
        | P.Psd q -> run_psd t p hash q
        | P.Variance { v_spp } -> run_variance t p hash v_spp
        | P.Contrib { c_f; c_spp } -> run_contrib t p hash c_f c_spp
        | P.Transfer q -> run_transfer t p hash q
        | _ -> assert false
      in
      (result, Some lvl)

let handle_request t rq =
  let t0 = Clock.now () in
  Obs.incr c_requests;
  t.served <- t.served + 1;
  match run_request t rq with
  | result, cache ->
      let elapsed_s = Clock.elapsed t0 in
      Obs.hist_record h_request elapsed_s;
      P.ok_reply ?id:rq.P.rq_id ~op:(P.op_name rq.P.rq_op) ?cache ~elapsed_s
        result
  | exception Err (code, message) ->
      Obs.incr c_errors;
      t.failed <- t.failed + 1;
      P.error_reply ?id:rq.P.rq_id ~code message
  | exception exn ->
      (* the daemon must survive anything a request throws *)
      Obs.incr c_errors;
      t.failed <- t.failed + 1;
      P.error_reply ?id:rq.P.rq_id ~code:"internal" (Printexc.to_string exn)

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Requests are executed one at a time (each one is internally parallel
   across the domain pool); the mutex makes direct multi-domain use of
   an executor — the test harness drives it without a server — behave
   like the daemon's serialised queue. *)
let handle t env =
  locked t (fun () ->
      match env with
      | P.Single rq -> handle_request t rq
      | P.Batch (id, rqs) ->
          Obs.incr c_batches;
          P.batch_reply ?id (List.map (handle_request t) rqs))

let handle_string t s =
  match P.envelope_of_string s with
  | Error msg -> P.error_reply ~code:"protocol" msg
  | Ok env -> handle t env
