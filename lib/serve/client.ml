(* Blocking client for the daemon protocol — what `scnoise bench serve`
   and the tests speak.  One request, one reply; no pipelining needed
   because the daemon executes requests sequentially anyway. *)

module Json = Scnoise_obs.Json
module P = Protocol

type t = { fd : Unix.file_descr; mutable open_ : bool }

let addr_of = function
  | Server.Unix_path path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | Server.Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      (Unix.PF_INET, Unix.ADDR_INET (ip, port))

(* The daemon may still be binding its socket when the first client
   arrives (bench forks it, tests spawn it in a domain), so connection
   refusals retry with a short backoff. *)
let connect ?(attempts = 50) ?(retry_delay_s = 0.05) addr =
  let domain, sockaddr = addr_of addr in
  let rec go n =
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd sockaddr with
    | () -> Ok { fd; open_ = true }
    | exception Unix.Unix_error ((ECONNREFUSED | ENOENT | ECONNRESET), _, _)
      when n > 1 ->
        Unix.close fd;
        Unix.sleepf retry_delay_s;
        go (n - 1)
    | exception Unix.Unix_error (e, _, _) ->
        Unix.close fd;
        Error (Unix.error_message e)
  in
  go (max 1 attempts)

let close t =
  if t.open_ then begin
    t.open_ <- false;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

(* Raw bytes on the wire, bypassing framing — lets the tests send
   deliberately broken frames. *)
let send_raw t s = write_all t.fd s

let read_exactly fd n =
  let buf = Bytes.create n in
  let off = ref 0 in
  let eof = ref false in
  while (not !eof) && !off < n do
    match Unix.read fd buf !off (n - !off) with
    | 0 -> eof := true
    | k -> off := !off + k
  done;
  if !eof then Error "connection closed by daemon" else Ok (Bytes.to_string buf)

let read_reply t =
  match read_exactly t.fd P.header_len with
  | Error _ as e -> e
  | Ok header ->
      let len = P.decode_len header 0 in
      read_exactly t.fd len

let rpc_string t payload =
  match write_all t.fd (P.encode_frame payload) with
  | () -> read_reply t
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let rpc t json =
  match rpc_string t (Json.to_string json) with
  | Error _ as e -> e
  | Ok s -> (
      match Json.of_string s with
      | j -> Ok j
      | exception Json.Parse_error msg ->
          Error ("malformed reply from daemon: " ^ msg))
