module Mat = Scnoise_linalg.Mat
module Vec = Scnoise_linalg.Vec
module Cx = Scnoise_linalg.Cx
module Cvec = Scnoise_linalg.Cvec
module Cmat = Scnoise_linalg.Cmat
module Clu = Scnoise_linalg.Clu
module Lyapunov = Scnoise_linalg.Lyapunov

type t = {
  ad : Mat.t;
  bd : Mat.t;
  c : Vec.t;
  period : float;
}

let make ~ad ~bd ~c ~period =
  if not (Mat.is_square ad) then invalid_arg "Dt_system.make: Ad not square";
  let n = Mat.rows ad in
  if Mat.rows bd <> n then invalid_arg "Dt_system.make: Bd rows";
  if Array.length c <> n then invalid_arg "Dt_system.make: output row";
  if period <= 0.0 then invalid_arg "Dt_system.make: period <= 0";
  { ad; bd; c; period }

let state_covariance t =
  Lyapunov.solve_discrete t.ad (Mat.mul t.bd (Mat.transpose t.bd))

let variance t =
  let k = state_covariance t in
  Vec.dot t.c (Mat.mul_vec k t.c)

(* S_x(θ) = || Bdᵀ z ||² with (e^{jθ} I - Ad)ᵀ z = c. *)
let sampled_density t theta =
  let n = Mat.rows t.ad in
  let m =
    Cmat.init n n (fun i j ->
        let d = if i = j then Cx.cis theta else Cx.zero in
        (* transpose of (e^{jθ} I - Ad) *)
        Cx.( -: ) d (Cx.re (Mat.get t.ad j i)))
  in
  let z = Clu.solve_dense m (Cvec.of_real t.c) in
  (* accumulate || Bdᵀ z ||² *)
  let acc = ref 0.0 in
  for col = 0 to Mat.cols t.bd - 1 do
    let s = ref Cx.zero in
    for i = 0 to n - 1 do
      s := Cx.( +: ) !s (Cx.scale (Mat.get t.bd i col) (Cvec.get z i))
    done;
    acc := !acc +. (Cx.modulus !s ** 2.0)
  done;
  !acc

let spectrum_sampled t ~f =
  let theta = 2.0 *. Float.pi *. f *. t.period in
  t.period *. sampled_density t theta

let sinc x = if abs_float x < 1e-8 then 1.0 -. (x *. x /. 6.0) else sin x /. x

let spectrum_held ?(hold_fraction = 1.0) t ~f =
  if hold_fraction <= 0.0 || hold_fraction > 1.0 then
    invalid_arg "Dt_system.spectrum_held: need 0 < hold_fraction <= 1";
  let theta = 2.0 *. Float.pi *. f *. t.period in
  let w = hold_fraction *. t.period in
  let s = sinc (Float.pi *. f *. w) in
  w *. w /. t.period *. s *. s *. sampled_density t theta

let dc_gain_noise t = sampled_density t 0.0
