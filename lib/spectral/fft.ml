module Cx = Scnoise_linalg.Cx
module Cvec = Scnoise_linalg.Cvec

let is_pow2 n = n > 0 && n land (n - 1) = 0

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let c_calls = Scnoise_obs.Obs.counter "fft_calls"

(* Iterative in-place Cooley-Tukey with bit-reversal permutation over
   the flat interleaved buffer; [sign] = -1 forward, +1 inverse (no
   scaling here).  The butterfly arithmetic mirrors [Cx.( *: )] /
   [Cx.( +: )] on the unboxed re/im pairs. *)
let fft_in_place sign (v : Cvec.t) =
  Scnoise_obs.Obs.incr c_calls;
  let n = Cvec.dim v in
  let a = Cvec.data v in
  (* bit reversal *)
  let j = ref 0 in
  for i = 0 to n - 2 do
    if i < !j then begin
      let tre = a.(2 * i) and tim = a.((2 * i) + 1) in
      a.(2 * i) <- a.(2 * !j);
      a.((2 * i) + 1) <- a.((2 * !j) + 1);
      a.(2 * !j) <- tre;
      a.((2 * !j) + 1) <- tim
    end;
    let rec carry m =
      if m land !j <> 0 then begin
        j := !j lxor m;
        carry (m lsr 1)
      end
      else j := !j lor m
    in
    carry (n lsr 1)
  done;
  (* butterflies *)
  let len = ref 2 in
  while !len <= n do
    let half = !len / 2 in
    let theta = float_of_int sign *. 2.0 *. Float.pi /. float_of_int !len in
    let wsre = cos theta and wsim = sin theta in
    let i = ref 0 in
    while !i < n do
      let wre = ref 1.0 and wim = ref 0.0 in
      for k = 0 to half - 1 do
        let iu = 2 * (!i + k) and iv = 2 * (!i + k + half) in
        let ure = a.(iu) and uim = a.(iu + 1) in
        let xre = a.(iv) and xim = a.(iv + 1) in
        let vre = (!wre *. xre) -. (!wim *. xim)
        and vim = (!wre *. xim) +. (!wim *. xre) in
        a.(iu) <- ure +. vre;
        a.(iu + 1) <- uim +. vim;
        a.(iv) <- ure -. vre;
        a.(iv + 1) <- uim -. vim;
        let nre = (!wre *. wsre) -. (!wim *. wsim)
        and nim = (!wre *. wsim) +. (!wim *. wsre) in
        wre := nre;
        wim := nim
      done;
      i := !i + !len
    done;
    len := !len * 2
  done

let transform x =
  let n = Cvec.dim x in
  if not (is_pow2 n) then invalid_arg "Fft.transform: length not a power of 2";
  let a = Cvec.copy x in
  fft_in_place (-1) a;
  a

let inverse x =
  let n = Cvec.dim x in
  if not (is_pow2 n) then invalid_arg "Fft.inverse: length not a power of 2";
  let a = Cvec.copy x in
  fft_in_place 1 a;
  Cvec.scale_re (1.0 /. float_of_int n) a

let real_transform x = transform (Cvec.of_real x)

let frequencies ~n ~dt =
  if n < 1 then invalid_arg "Fft.frequencies: n < 1";
  if dt <= 0.0 then invalid_arg "Fft.frequencies: dt <= 0";
  Array.init n (fun k -> float_of_int k /. (float_of_int n *. dt))
