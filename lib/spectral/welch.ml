module Cx = Scnoise_linalg.Cx
module Cvec = Scnoise_linalg.Cvec

type window = Rect | Hann

let window_values w n =
  match w with
  | Rect -> Array.make n 1.0
  | Hann ->
      Array.init n (fun i ->
          let x = float_of_int i /. float_of_int (n - 1) in
          0.5 *. (1.0 -. cos (2.0 *. Float.pi *. x)))

let periodogram ?(window = Hann) ~dt samples =
  let n = Array.length samples in
  if not (Fft.is_pow2 n) then
    invalid_arg "Welch.periodogram: length not a power of 2";
  if dt <= 0.0 then invalid_arg "Welch.periodogram: dt <= 0";
  let w = window_values window n in
  let wsum2 = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 w in
  let xw = Array.init n (fun i -> samples.(i) *. w.(i)) in
  let spec = Fft.real_transform xw in
  let nhalf = (n / 2) + 1 in
  let freqs = Array.init nhalf (fun k -> float_of_int k /. (float_of_int n *. dt)) in
  (* S(f_k) = |X_k dt|^2 / (wsum2 dt): double-sided density *)
  let psd =
    Array.init nhalf (fun k ->
        let m = Cx.modulus (Cvec.get spec k) in
        m *. m *. dt /. wsum2)
  in
  (freqs, psd)

let estimate ?(window = Hann) ?(overlap = 0.5) ~dt ~segment samples =
  if not (Fft.is_pow2 segment) then
    invalid_arg "Welch.estimate: segment not a power of 2";
  if overlap < 0.0 || overlap >= 1.0 then
    invalid_arg "Welch.estimate: overlap out of range";
  let n = Array.length samples in
  if n < segment then invalid_arg "Welch.estimate: record shorter than segment";
  let hop = max 1 (int_of_float (float_of_int segment *. (1.0 -. overlap))) in
  let acc = ref None in
  let count = ref 0 in
  let start = ref 0 in
  while !start + segment <= n do
    let seg = Array.sub samples !start segment in
    let freqs, psd = periodogram ~window ~dt seg in
    (match !acc with
    | None -> acc := Some (freqs, psd)
    | Some (_, total) ->
        Array.iteri (fun i v -> total.(i) <- total.(i) +. v) psd);
    incr count;
    start := !start + hop
  done;
  match !acc with
  | None -> invalid_arg "Welch.estimate: no segments"
  | Some (freqs, total) ->
      (freqs, Array.map (fun v -> v /. float_of_int !count) total)
