module Vec = Scnoise_linalg.Vec
module Mat = Scnoise_linalg.Mat
module Cx = Scnoise_linalg.Cx
module Cvec = Scnoise_linalg.Cvec
module Rk4 = Scnoise_ode.Rk4
module Rkf45 = Scnoise_ode.Rkf45
module Trapezoid = Scnoise_ode.Trapezoid
module Ctrapezoid = Scnoise_ode.Ctrapezoid

let check_close ?(eps = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > eps *. (1.0 +. abs_float expected) then
    Alcotest.failf "%s: expected %.17g, got %.17g" msg expected actual

let mat_of rows = Mat.of_arrays (Array.of_list (List.map Array.of_list rows))

(* --- RK4 --- *)

let test_rk4_exponential () =
  let f _ x = [| -2.0 *. x.(0) |] in
  let x = Rk4.integrate f ~t0:0.0 ~t1:1.0 ~steps:200 [| 1.0 |] in
  check_close ~eps:1e-8 "e^{-2}" (exp (-2.0)) x.(0)

let test_rk4_harmonic_oscillator () =
  let w = 3.0 in
  let f _ x = [| x.(1); -.w *. w *. x.(0) |] in
  let x = Rk4.integrate f ~t0:0.0 ~t1:2.0 ~steps:2000 [| 1.0; 0.0 |] in
  check_close ~eps:1e-7 "cos(wt)" (cos (w *. 2.0)) x.(0);
  check_close ~eps:1e-7 "-w sin(wt)" (-.w *. sin (w *. 2.0)) x.(1)

let test_rk4_forced () =
  (* dx/dt = t: x(1) = 1/2, exact for polynomial order <= 3 *)
  let f t _ = [| t |] in
  let x = Rk4.integrate f ~t0:0.0 ~t1:1.0 ~steps:3 [| 0.0 |] in
  check_close ~eps:1e-12 "t integral" 0.5 x.(0)

let test_rk4_trajectory () =
  let f _ x = [| -.x.(0) |] in
  let tr = Rk4.trajectory f ~t0:0.0 ~t1:1.0 ~steps:10 [| 1.0 |] in
  Alcotest.(check int) "samples" 11 (Array.length tr);
  let t5, x5 = tr.(5) in
  check_close ~eps:1e-6 "midpoint time" 0.5 t5;
  check_close ~eps:1e-6 "midpoint value" (exp (-0.5)) x5.(0)

let test_rk4_order () =
  (* halving the step should reduce error by ~16x (4th order) *)
  let f _ x = [| -.x.(0) |] in
  let err steps =
    let x = Rk4.integrate f ~t0:0.0 ~t1:1.0 ~steps [| 1.0 |] in
    abs_float (x.(0) -. exp (-1.0))
  in
  let e1 = err 10 and e2 = err 20 in
  let ratio = e1 /. e2 in
  if ratio < 12.0 || ratio > 20.0 then
    Alcotest.failf "expected ~16x error reduction, got %g" ratio

(* --- RKF45 --- *)

let test_rkf45_exponential () =
  let f _ x = [| -2.0 *. x.(0) |] in
  let x, stats = Rkf45.integrate f ~t0:0.0 ~t1:1.0 [| 1.0 |] in
  check_close ~eps:1e-7 "e^{-2}" (exp (-2.0)) x.(0);
  if stats.Rkf45.steps_accepted <= 0 then Alcotest.fail "no steps?"

let test_rkf45_tolerance_effect () =
  let f _ x = [| x.(1); -25.0 *. x.(0) |] in
  let solve rtol =
    let x, _ = Rkf45.integrate ~rtol f ~t0:0.0 ~t1:1.0 [| 1.0; 0.0 |] in
    abs_float (x.(0) -. cos 5.0)
  in
  let loose = solve 1e-4 and tight = solve 1e-10 in
  if tight > loose then Alcotest.fail "tighter tolerance should not be worse"

let test_rkf45_zero_span () =
  let f _ x = [| -.x.(0) |] in
  let x, stats = Rkf45.integrate f ~t0:1.0 ~t1:1.0 [| 5.0 |] in
  check_close "no-op" 5.0 x.(0);
  Alcotest.(check int) "no steps" 0 stats.Rkf45.steps_accepted

let test_rkf45_sample () =
  let f _ x = [| -.x.(0) |] in
  let tr = Rkf45.sample f ~t0:0.0 ~t1:2.0 ~n:4 [| 1.0 |] in
  Alcotest.(check int) "samples" 5 (Array.length tr);
  let t, x = tr.(4) in
  check_close "last time" 2.0 t;
  check_close ~eps:1e-7 "last value" (exp (-2.0)) x.(0)

(* --- Trapezoid --- *)

let test_trapezoid_homogeneous_accuracy () =
  let a = mat_of [ [ -3.0 ] ] in
  let x =
    Trapezoid.integrate ~a
      ~forcing:(fun _ -> [| 0.0 |])
      ~t0:0.0 ~t1:1.0 ~steps:2000 [| 1.0 |]
  in
  check_close ~eps:1e-6 "e^{-3}" (exp (-3.0)) x.(0)

let test_trapezoid_forced_constant () =
  (* dx/dt = -x + 1 -> steady state 1; trapezoid is exact at steady state *)
  let a = mat_of [ [ -1.0 ] ] in
  let x =
    Trapezoid.integrate ~a
      ~forcing:(fun _ -> [| 1.0 |])
      ~t0:0.0 ~t1:40.0 ~steps:800 [| 0.0 |]
  in
  check_close ~eps:1e-9 "steady state" 1.0 x.(0)

let test_trapezoid_a_stability () =
  (* very stiff system with a large step must not blow up *)
  let a = mat_of [ [ -1e9 ] ] in
  let st = Trapezoid.make ~a ~h:1.0 in
  let x = ref [| 1.0 |] in
  for _ = 1 to 100 do
    x := Trapezoid.step_homogeneous st !x
  done;
  if abs_float !x.(0) > 1.0 then Alcotest.fail "trapezoidal A-stability violated"

let test_trapezoid_second_order () =
  let a = mat_of [ [ -2.0 ] ] in
  let err steps =
    let x =
      Trapezoid.integrate ~a
        ~forcing:(fun _ -> [| 0.0 |])
        ~t0:0.0 ~t1:1.0 ~steps [| 1.0 |]
    in
    abs_float (x.(0) -. exp (-2.0))
  in
  let ratio = err 50 /. err 100 in
  if ratio < 3.3 || ratio > 4.7 then
    Alcotest.failf "expected ~4x error reduction, got %g" ratio

let test_trapezoid_trajectory () =
  let a = mat_of [ [ 0.0 ] ] in
  let tr =
    Trapezoid.trajectory ~a
      ~forcing:(fun t -> [| t |])
      ~t0:0.0 ~t1:1.0 ~steps:100 [| 0.0 |]
  in
  let _, last = tr.(100) in
  (* trapezoid integrates t exactly *)
  check_close ~eps:1e-12 "∫t dt" 0.5 last.(0)

let test_backward_euler_step () =
  let a = mat_of [ [ -1.0 ] ] in
  let x = Trapezoid.backward_euler_step ~a ~h:0.1 ~x:[| 1.0 |] ~f1:[| 0.0 |] in
  check_close "be step" (1.0 /. 1.1) x.(0)

(* --- complex trapezoid --- *)

let test_ctrapezoid_matches_real () =
  (* zero shift on a real system must reproduce the real stepper *)
  let a = mat_of [ [ -1.5; 0.3 ]; [ 0.0; -0.7 ] ] in
  let st_r = Trapezoid.make ~a ~h:0.01 in
  let st_c = Ctrapezoid.make ~a ~shift:Cx.zero ~h:0.01 in
  let xr = ref [| 1.0; -0.5 |] in
  let xc = ref (Cvec.of_real !xr) in
  for _ = 1 to 100 do
    xr := Trapezoid.step st_r ~x:!xr ~f0:[| 0.1; 0.2 |] ~f1:[| 0.1; 0.2 |];
    let f = Cvec.of_real [| 0.1; 0.2 |] in
    xc := Ctrapezoid.step st_c ~p:!xc ~k0:f ~k1:f
  done;
  if Vec.max_abs_diff !xr (Cvec.real !xc) > 1e-12 then
    Alcotest.fail "complex stepper with zero shift diverged from real";
  if Vec.norm_inf (Cvec.imag !xc) > 1e-12 then
    Alcotest.fail "imaginary part should stay zero"

let test_ctrapezoid_shift_analytic () =
  (* dP/dt = (-a - jw) P, P(0)=1: |P(t)| = e^{-at}, arg = -wt *)
  let a0 = 2.0 and w = 5.0 in
  let a = mat_of [ [ -.a0 ] ] in
  let h = 1e-4 in
  let st = Ctrapezoid.make ~a ~shift:(Cx.make 0.0 w) ~h in
  let p = ref (Cvec.of_array [| Cx.one |]) in
  let steps = 10_000 in
  for _ = 1 to steps do
    p := Ctrapezoid.step_homogeneous st !p
  done;
  let t = h *. float_of_int steps in
  let expected = Cx.( *: ) (Cx.re (exp (-.a0 *. t))) (Cx.cis (-.w *. t)) in
  let got = Cvec.get !p 0 in
  if Cx.modulus (Cx.( -: ) got expected) > 1e-4 then
    Alcotest.failf "shifted decay wrong: got %g%+gi, want %g%+gi"
      got.Cx.re got.Cx.im expected.Cx.re expected.Cx.im

let test_ctrapezoid_trajectory_steady_state () =
  (* dP/dt = (-a - jw)P + k: steady state k/(a + jw) *)
  let a0 = 3.0 and w = 7.0 and k = 2.0 in
  let a = mat_of [ [ -.a0 ] ] in
  let kvec = Cvec.of_array [| Cx.re k |] in
  let traj =
    Ctrapezoid.trajectory ~a ~shift:(Cx.make 0.0 w)
      ~forcing:(fun _ -> kvec)
      ~h:1e-3 ~steps:20_000
      (Cvec.of_array [| Cx.zero |])
  in
  let expected = Cx.( /: ) (Cx.re k) (Cx.make a0 w) in
  let last = Cvec.get traj.(20_000) 0 in
  if Cx.modulus (Cx.( -: ) last expected) > 1e-5 then
    Alcotest.fail "complex steady state wrong"

let prop_trapezoid_linear_in_ic =
  QCheck.Test.make ~count:50 ~name:"trapezoid step linear in the state"
    QCheck.(pair (float_range (-5.0) 5.0) (float_range (-5.0) 5.0))
    (fun (x1, x2) ->
      let a = mat_of [ [ -1.0; 0.5 ]; [ 0.0; -2.0 ] ] in
      let st = Trapezoid.make ~a ~h:0.01 in
      let zero = [| 0.0; 0.0 |] in
      let s v = Trapezoid.step st ~x:v ~f0:zero ~f1:zero in
      let lhs = s [| x1; x2 |] in
      let rhs =
        Vec.add
          (Vec.scale x1 (s [| 1.0; 0.0 |]))
          (Vec.scale x2 (s [| 0.0; 1.0 |]))
      in
      Vec.max_abs_diff lhs rhs <= 1e-10)

let () =
  Alcotest.run "ode"
    [
      ( "rk4",
        [
          Alcotest.test_case "exponential" `Quick test_rk4_exponential;
          Alcotest.test_case "harmonic" `Quick test_rk4_harmonic_oscillator;
          Alcotest.test_case "forced" `Quick test_rk4_forced;
          Alcotest.test_case "trajectory" `Quick test_rk4_trajectory;
          Alcotest.test_case "order" `Quick test_rk4_order;
        ] );
      ( "rkf45",
        [
          Alcotest.test_case "exponential" `Quick test_rkf45_exponential;
          Alcotest.test_case "tolerance" `Quick test_rkf45_tolerance_effect;
          Alcotest.test_case "zero span" `Quick test_rkf45_zero_span;
          Alcotest.test_case "sample" `Quick test_rkf45_sample;
        ] );
      ( "trapezoid",
        [
          Alcotest.test_case "homogeneous" `Quick test_trapezoid_homogeneous_accuracy;
          Alcotest.test_case "forced" `Quick test_trapezoid_forced_constant;
          Alcotest.test_case "A-stability" `Quick test_trapezoid_a_stability;
          Alcotest.test_case "2nd order" `Quick test_trapezoid_second_order;
          Alcotest.test_case "trajectory" `Quick test_trapezoid_trajectory;
          Alcotest.test_case "backward euler" `Quick test_backward_euler_step;
          QCheck_alcotest.to_alcotest prop_trapezoid_linear_in_ic;
        ] );
      ( "ctrapezoid",
        [
          Alcotest.test_case "matches real" `Quick test_ctrapezoid_matches_real;
          Alcotest.test_case "shifted decay" `Quick test_ctrapezoid_shift_analytic;
          Alcotest.test_case "steady state" `Quick test_ctrapezoid_trajectory_steady_state;
        ] );
    ]
