module Obs = Scnoise_obs.Obs
module Json = Scnoise_obs.Json
module Export = Scnoise_obs.Export
module Hist = Scnoise_obs.Hist
module Trace = Scnoise_obs.Trace
module Bench_diff = Scnoise_obs.Bench_diff
module Clock = Scnoise_obs.Clock
module Pool = Scnoise_par.Pool
module Psd = Scnoise_core.Psd
module SRC = Scnoise_circuits.Switched_rc
module Grid = Scnoise_util.Grid

(* Every test starts from a clean, disabled registry. *)
let fresh () =
  Obs.disable ();
  Obs.reset ()

(* Naive substring check, enough for asserting on error messages. *)
let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* --- counters --- *)

let test_counter_basics () =
  fresh ();
  let c = Obs.counter "test.alpha" in
  Alcotest.(check int) "starts at zero" 0 (Obs.value c);
  Obs.incr c;
  Obs.incr c;
  Obs.add c 40;
  Alcotest.(check int) "incremented" 42 (Obs.value c);
  Alcotest.(check int) "lookup by name" 42 (Obs.counter_value "test.alpha");
  let c' = Obs.counter "test.alpha" in
  Obs.incr c';
  Alcotest.(check int) "same handle for same name" 43 (Obs.value c);
  Obs.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Obs.value c);
  Alcotest.(check int) "unknown name reads zero" 0
    (Obs.counter_value "test.never-registered")

let test_counters_count_when_disabled () =
  fresh ();
  let c = Obs.counter "test.disabled" in
  Alcotest.(check bool) "disabled" false (Obs.is_enabled ());
  Obs.incr c;
  Alcotest.(check int) "counters are always on" 1 (Obs.value c)

(* --- timers --- *)

let test_timer_accumulates () =
  fresh ();
  let t = Obs.timer "test.timer" in
  let x = Obs.time t (fun () -> 40 + 2) in
  Alcotest.(check int) "returns body value" 42 x;
  ignore (Obs.time t (fun () -> ()));
  Alcotest.(check int) "two measurements" 2 (Obs.timer_count t);
  Alcotest.(check bool) "non-negative total" true (Obs.timer_total t >= 0.0)

(* --- spans --- *)

let test_span_disabled_is_noop () =
  fresh ();
  let r = Obs.with_span "test.off" (fun () -> 7) in
  Alcotest.(check int) "value passes through" 7 r;
  let snap = Obs.snapshot () in
  Alcotest.(check int) "no spans recorded" 0
    (List.length snap.Obs.snap_spans)

let test_span_nesting () =
  fresh ();
  Obs.enable ();
  let r =
    Obs.with_span "outer" (fun () ->
        let a = Obs.with_span "inner1" (fun () -> 1) in
        let b = Obs.with_span "inner2" (fun () -> 2) in
        a + b)
  in
  Obs.disable ();
  Alcotest.(check int) "value" 3 r;
  let snap = Obs.snapshot () in
  match snap.Obs.snap_spans with
  | [ outer ] ->
      Alcotest.(check string) "root name" "outer" outer.Obs.sp_name;
      (match outer.Obs.sp_children with
      | [ i1; i2 ] ->
          Alcotest.(check string) "child order" "inner1" i1.Obs.sp_name;
          Alcotest.(check string) "child order" "inner2" i2.Obs.sp_name;
          Alcotest.(check bool) "children start after parent" true
            (i1.Obs.sp_start >= outer.Obs.sp_start);
          Alcotest.(check bool) "inner2 starts after inner1 ends" true
            (i2.Obs.sp_start >= i1.Obs.sp_start +. i1.Obs.sp_duration -. 1e-9);
          Alcotest.(check bool) "parent wall time covers children" true
            (outer.Obs.sp_duration
            >= i1.Obs.sp_duration +. i2.Obs.sp_duration -. 1e-9)
      | l -> Alcotest.failf "expected 2 children, got %d" (List.length l))
  | l -> Alcotest.failf "expected 1 root span, got %d" (List.length l)

let test_span_survives_exception () =
  fresh ();
  Obs.enable ();
  (try
     Obs.with_span "outer" (fun () ->
         Obs.with_span "boom" (fun () -> failwith "boom"))
   with Failure _ -> ());
  Obs.disable ();
  let snap = Obs.snapshot () in
  let names =
    Obs.fold_spans (fun acc sp -> sp.Obs.sp_name :: acc) [] snap
    |> List.sort compare
  in
  Alcotest.(check (list string))
    "both spans closed despite the raise" [ "boom"; "outer" ] names

(* --- JSON exporter --- *)

let rec check_span_eq (a : Obs.span) (b : Obs.span) =
  Alcotest.(check string) "span name" a.Obs.sp_name b.Obs.sp_name;
  Alcotest.(check (float 0.0)) "span start" a.Obs.sp_start b.Obs.sp_start;
  Alcotest.(check (float 0.0)) "span duration" a.Obs.sp_duration
    b.Obs.sp_duration;
  Alcotest.(check int) "span children" (List.length a.Obs.sp_children)
    (List.length b.Obs.sp_children);
  List.iter2 check_span_eq a.Obs.sp_children b.Obs.sp_children

let test_json_roundtrip () =
  fresh ();
  Obs.enable ();
  Obs.add (Obs.counter "test.json_counter") 17;
  ignore (Obs.time (Obs.timer "test.json_timer") (fun () -> ()));
  Obs.with_span "root" (fun () -> Obs.with_span "child" (fun () -> ()));
  Obs.disable ();
  let snap = Obs.snapshot () in
  let back = Export.of_json_string (Export.to_json_string snap) in
  Alcotest.(check int) "counter survives" 17
    (List.assoc "test.json_counter" back.Obs.snap_counters);
  Alcotest.(check int) "counter list equal"
    (List.length snap.Obs.snap_counters)
    (List.length back.Obs.snap_counters);
  List.iter2
    (fun (n1, v1) (n2, v2) ->
      Alcotest.(check string) "counter name" n1 n2;
      Alcotest.(check int) "counter value" v1 v2)
    snap.Obs.snap_counters back.Obs.snap_counters;
  List.iter2
    (fun (n1, (t1 : Obs.timer_stat)) (n2, t2) ->
      Alcotest.(check string) "timer name" n1 n2;
      Alcotest.(check (float 0.0)) "timer total" t1.Obs.tm_total
        t2.Obs.tm_total;
      Alcotest.(check int) "timer count" t1.Obs.tm_count t2.Obs.tm_count;
      Alcotest.(check (float 0.0)) "timer minor words" t1.Obs.tm_minor_words
        t2.Obs.tm_minor_words;
      Alcotest.(check (float 0.0)) "timer promoted words"
        t1.Obs.tm_promoted_words t2.Obs.tm_promoted_words)
    snap.Obs.snap_timers back.Obs.snap_timers;
  Alcotest.(check int) "span forest size"
    (List.length snap.Obs.snap_spans)
    (List.length back.Obs.snap_spans);
  List.iter2 check_span_eq snap.Obs.snap_spans back.Obs.snap_spans

let test_json_escaping () =
  let j =
    Json.Obj
      [ ("weird \"key\"\n", Json.Str "tab\there \\ done"); ("n", Json.Num 1.5) ]
  in
  match Json.of_string (Json.to_string j) with
  | Json.Obj [ (k, Json.Str v); (_, Json.Num x) ] ->
      Alcotest.(check string) "key" "weird \"key\"\n" k;
      Alcotest.(check string) "value" "tab\there \\ done" v;
      Alcotest.(check (float 0.0)) "number" 1.5 x
  | _ -> Alcotest.fail "unexpected parse shape"

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | exception Json.Parse_error _ -> ()
      | _ -> Alcotest.failf "accepted %S" s)
    [ "{"; "[1,]"; "tru"; "\"unterminated"; "{} trailing"; "{\"a\" 1}" ]

(* --- histograms --- *)

let test_hist_log_buckets () =
  fresh ();
  let h = Hist.create "t.log" in
  for _ = 1 to 100 do
    Hist.record h 1e-6
  done;
  let s = Hist.snapshot h in
  Alcotest.(check int) "total" 100 (Hist.total s);
  let p50 = Hist.quantile s 0.5 in
  (* bucket resolution: half a decade, so within 10^0.25 of the value *)
  Alcotest.(check bool) "p50 in bucket" true
    (p50 > 1e-6 /. 1.79 && p50 < 1e-6 *. 1.79);
  Hist.record h 1.0;
  let s = Hist.snapshot h in
  Alcotest.(check bool) "max tracks the largest sample" true
    (Hist.max_value s > 0.5 && Hist.max_value s < 2.0);
  (* out-of-range and pathological values land in the edge buckets *)
  Hist.clear h;
  Hist.record h 0.0;
  Hist.record h (-3.0);
  Hist.record h Float.nan;
  Hist.record h 1e12;
  let s = Hist.snapshot h in
  Alcotest.(check int) "all recorded" 4 (Hist.total s);
  Alcotest.(check (float 0.0)) "underflow representative" 1e-10
    (Hist.min_value s);
  Alcotest.(check (float 0.0)) "overflow representative" 1e4 (Hist.max_value s)

let test_hist_counts_exact () =
  fresh ();
  let h = Hist.create ~mode:Hist.Counts "t.counts" in
  List.iter (Hist.record_int h) [ 0; 1; 1; 2; 2; 2; 7; 100 ];
  let s = Hist.snapshot h in
  Alcotest.(check int) "total" 8 (Hist.total s);
  Alcotest.(check (float 0.0)) "p50 exact" 2.0 (Hist.quantile s 0.5);
  Alcotest.(check (float 0.0)) "min exact" 0.0 (Hist.min_value s);
  (* >= 64 goes to the overflow bucket, reported as counts_max *)
  Alcotest.(check (float 0.0)) "overflow clamps" 64.0 (Hist.max_value s)

let test_hist_merge_and_empty () =
  let a = Hist.create "t.merge" in
  Hist.record a 1e-3;
  Hist.record a 1e-3;
  let sa = Hist.snapshot a in
  let m = Hist.merge sa sa in
  Alcotest.(check int) "merge adds counts" 4 (Hist.total m);
  Alcotest.(check bool) "empty quantile is nan" true
    (Float.is_nan (Hist.quantile (Hist.empty Hist.Log) 0.5));
  Alcotest.(check bool) "empty mean is nan" true
    (Float.is_nan (Hist.mean (Hist.empty Hist.Counts)));
  (match Hist.merge sa (Hist.empty Hist.Counts) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "mode mismatch must be rejected");
  match Hist.quantile sa 1.5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "q outside [0,1] must be rejected"

let test_hist_registry () =
  fresh ();
  let h = Obs.histogram "test.reg_hist" in
  Obs.hist_record h 0.5;
  let h' = Obs.histogram "test.reg_hist" in
  Obs.hist_record h' 0.5;
  Alcotest.(check int) "same handle" 2 (Hist.total (Hist.snapshot h));
  (match Obs.histogram ~mode:Hist.Counts "test.reg_hist" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "mode mismatch on an existing name must be rejected");
  let snap = Obs.snapshot () in
  Alcotest.(check bool) "snapshot carries the histogram" true
    (List.mem_assoc "test.reg_hist" snap.Obs.snap_hists);
  Obs.reset ();
  Alcotest.(check int) "reset clears" 0 (Hist.total (Hist.snapshot h))

let test_hist_concurrent () =
  fresh ();
  let h = Obs.histogram "test.conc_hist" in
  let per_domain = 25_000 in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Obs.hist_record h 1e-5
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "no lost increments" (4 * per_domain)
    (Hist.total (Hist.snapshot h))

let test_hist_json_roundtrip () =
  fresh ();
  let h = Obs.histogram "test.json_hist" in
  let hc = Obs.histogram ~mode:Hist.Counts "test.json_hist_counts" in
  Hist.record h 1e-7;
  Hist.record h 3.0;
  Hist.record h 1e9;
  Hist.record_int hc 5;
  let snap = Obs.snapshot () in
  let back = Export.of_json_string (Export.to_json_string snap) in
  List.iter2
    (fun (n1, (s1 : Hist.snapshot)) (n2, s2) ->
      Alcotest.(check string) "hist name" n1 n2;
      Alcotest.(check bool) "hist mode" true (s1.Hist.s_mode = s2.Hist.s_mode);
      Alcotest.(check (array int)) "hist counts" s1.Hist.s_counts
        s2.Hist.s_counts)
    snap.Obs.snap_hists back.Obs.snap_hists

(* --- GC accounting --- *)

let test_span_gc_accounting () =
  fresh ();
  Obs.enable ();
  Obs.set_gc_stats true;
  Obs.with_span "alloc" (fun () ->
      ignore (Sys.opaque_identity (List.init 2000 (fun i -> (i, i)))));
  Obs.disable ();
  let snap = Obs.snapshot () in
  (match snap.Obs.snap_spans with
  | [ sp ] ->
      Alcotest.(check bool) "minor words captured" true
        (sp.Obs.sp_minor_words > 2000.0)
  | l -> Alcotest.failf "expected 1 span, got %d" (List.length l));
  (* and with the flag off the deltas read zero *)
  Obs.reset ();
  Obs.enable ();
  Obs.set_gc_stats false;
  Obs.with_span "alloc2" (fun () ->
      ignore (Sys.opaque_identity (List.init 2000 (fun i -> (i, i)))));
  Obs.disable ();
  Obs.set_gc_stats true;
  let snap = Obs.snapshot () in
  match snap.Obs.snap_spans with
  | [ sp ] ->
      Alcotest.(check (float 0.0)) "gc off reads zero" 0.0 sp.Obs.sp_minor_words
  | l -> Alcotest.failf "expected 1 span, got %d" (List.length l)

let test_timer_gc_accounting () =
  fresh ();
  let t = Obs.timer "test.gc_timer" in
  ignore
    (Obs.time t (fun () ->
         Sys.opaque_identity (List.init 2000 (fun i -> (i, i)))));
  Alcotest.(check bool) "timer minor words captured" true
    (Obs.timer_minor_words t > 2000.0)

(* --- trace timelines --- *)

(* Busy-wait so pool workers reliably claim chunks (no Unix dependency
   in the test binary beyond what Clock already links). *)
let spin seconds =
  let t0 = Clock.now () in
  while Clock.elapsed t0 < seconds do
    ignore (Sys.opaque_identity ())
  done

let test_trace_multitrack () =
  fresh ();
  let pool = Pool.create ~jobs:4 () in
  Obs.enable ();
  Obs.with_span "region" (fun () ->
      ignore (Pool.map pool (fun _ () -> spin 2e-3) (Array.make 32 ())));
  Obs.disable ();
  let snap = Obs.snapshot () in
  Pool.shutdown pool;
  Alcotest.(check bool) "at least two domain tracks" true
    (Trace.n_tracks snap >= 2);
  (match Trace.validate_string (Trace.to_string snap) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "emitted trace fails validation: %s" msg);
  (* chunk spans carry the pool job (item) index as args *)
  let chunk_args =
    Obs.fold_spans
      (fun acc sp ->
        if sp.Obs.sp_name = "pool.chunk" then sp.Obs.sp_args :: acc else acc)
      [] snap
  in
  Alcotest.(check bool) "pool.chunk spans present" true (chunk_args <> []);
  List.iter
    (fun args ->
      Alcotest.(check bool) "chunk carries first_item" true
        (List.mem_assoc "first_item" args);
      Alcotest.(check bool) "chunk carries items" true
        (List.mem_assoc "items" args))
    chunk_args

let test_trace_validator_rejects () =
  let bad =
    [
      ("{}", "missing");
      ("{\"traceEvents\": []}", "empty");
      ("{\"traceEvents\": 3}", "not an array");
      ("{\"traceEvents\": [4]}", "not an object");
      ("{\"traceEvents\": [{\"ph\": \"X\", \"name\": \"a\"}]}", "lacks");
      ( "{\"traceEvents\": [{\"ph\": \"X\", \"name\": \"a\", \"ts\": 0, \
         \"dur\": -1, \"pid\": 1, \"tid\": 0}]}",
        "negative" );
      ("{\"traceEvents\": [{\"name\": \"a\"}]}", "ph");
      ("not json at all", "not json");
    ]
  in
  List.iter
    (fun (doc, needle) ->
      match Trace.validate_string doc with
      | Ok () -> Alcotest.failf "accepted invalid trace %s" doc
      | Error msg ->
          if not (contains_sub (String.lowercase_ascii msg) needle) then
            Alcotest.failf "unhelpful error %S (wanted %S)" msg needle)
    bad

(* --- bench regression gate --- *)

let timer_stat total count =
  {
    Obs.tm_total = total;
    tm_count = count;
    tm_minor_words = 0.0;
    tm_promoted_words = 0.0;
  }

let snap_with ?(counters = []) ?(timers = []) ?(hists = []) () =
  {
    Obs.snap_counters = counters;
    snap_timers = timers;
    snap_hists = hists;
    snap_spans = [];
  }

let test_bench_diff_self_is_clean () =
  let snap =
    snap_with
      ~counters:[ ("c", 100) ]
      ~timers:[ ("t", timer_stat 1.0 10) ]
      ()
  in
  let r = Bench_diff.diff ~baseline:snap ~current:snap () in
  Alcotest.(check int) "no regressions against self" 0
    r.Bench_diff.regressions;
  Alcotest.(check bool) "rows compared" true (r.Bench_diff.rows <> [])

let test_bench_diff_flags_inflation () =
  let base = snap_with ~timers:[ ("t", timer_stat 1.0 10) ] () in
  let cur = snap_with ~timers:[ ("t", timer_stat 10.0 10) ] () in
  let r = Bench_diff.diff ~baseline:base ~current:cur () in
  Alcotest.(check int) "10x slower flags" 1 r.Bench_diff.regressions;
  let r' = Bench_diff.diff ~baseline:cur ~current:base () in
  Alcotest.(check int) "10x faster is not a regression" 0
    r'.Bench_diff.regressions;
  Alcotest.(check bool) "but is an improvement" true
    (List.exists
       (fun row -> row.Bench_diff.r_verdict = Bench_diff.Improvement)
       r'.Bench_diff.rows)

let test_bench_diff_noise_floor () =
  (* +100% relative but far below the absolute floor: scheduling noise *)
  let base = snap_with ~timers:[ ("t", timer_stat 1e-5 10) ] () in
  let cur = snap_with ~timers:[ ("t", timer_stat 2e-5 10) ] () in
  let r = Bench_diff.diff ~baseline:base ~current:cur () in
  Alcotest.(check int) "sub-floor delta does not gate" 0
    r.Bench_diff.regressions

let test_bench_diff_one_sided_never_gates () =
  let base = snap_with ~counters:[ ("old", 5) ] () in
  let cur = snap_with ~counters:[ ("new", 50000) ] () in
  let r = Bench_diff.diff ~baseline:base ~current:cur () in
  Alcotest.(check int) "one-sided metrics never gate" 0
    r.Bench_diff.regressions;
  Alcotest.(check (list string)) "disappeared reported" [ "counter:old" ]
    r.Bench_diff.only_base;
  Alcotest.(check (list string)) "new reported" [ "counter:new" ]
    r.Bench_diff.only_cur

let test_bench_diff_hist_quantiles () =
  let mk v n =
    let h = Hist.create "q" in
    for _ = 1 to n do
      Hist.record h v
    done;
    [ ("q", Hist.snapshot h) ]
  in
  let base = snap_with ~hists:(mk 1e-3 100) () in
  let cur = snap_with ~hists:(mk 1e-1 100) () in
  let r = Bench_diff.diff ~baseline:base ~current:cur () in
  Alcotest.(check bool) "quantile drift flags (p50 and p99)" true
    (r.Bench_diff.regressions >= 1)

(* --- atomic artifact writes --- *)

let test_atomic_write () =
  fresh ();
  Obs.enable ();
  Obs.with_span "w" (fun () -> ());
  Obs.disable ();
  let snap = Obs.snapshot () in
  let path = Filename.temp_file "scnoise_obs" ".json" in
  Export.write_file path snap;
  Alcotest.(check bool) "no .tmp left behind" false
    (Sys.file_exists (path ^ ".tmp"));
  let back =
    Export.of_json_string (In_channel.with_open_text path In_channel.input_all)
  in
  Alcotest.(check int) "written document parses back" 1
    (List.length back.Obs.snap_spans);
  Sys.remove path;
  let tpath = Filename.temp_file "scnoise_trace" ".json" in
  Trace.write_file tpath snap;
  Alcotest.(check bool) "trace .tmp removed" false
    (Sys.file_exists (tpath ^ ".tmp"));
  (match Trace.validate_file tpath with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "trace file invalid: %s" msg);
  Sys.remove tpath

let test_sorted_artifacts () =
  fresh ();
  Obs.enable ();
  Obs.with_span "zeta" (fun () -> ());
  Obs.with_span "alpha" (fun () -> ());
  Obs.disable ();
  let back = Export.of_json_string (Export.to_json_string (Obs.snapshot ())) in
  Alcotest.(check (list string)) "root spans sorted by name"
    [ "alpha"; "zeta" ]
    (List.map (fun sp -> sp.Obs.sp_name) back.Obs.snap_spans)

(* --- JSON edge cases --- *)

let test_json_unicode_escapes () =
  (match Json.of_string "\"\\u0041\\u00e9\"" with
  | Json.Str s -> Alcotest.(check string) "BMP escapes decode to UTF-8"
      "A\xc3\xa9" s
  | _ -> Alcotest.fail "expected a string");
  (match Json.of_string "\"\\ud83d\\ude00\"" with
  | Json.Str s ->
      Alcotest.(check string) "surrogate pair decodes" "\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "expected a string");
  List.iter
    (fun doc ->
      match Json.of_string doc with
      | exception Json.Parse_error _ -> ()
      | _ -> Alcotest.failf "accepted %S" doc)
    [
      "\"\\ud800\"" (* unpaired high surrogate *);
      "\"\\udc00\"" (* unpaired low surrogate *);
      "\"\\u12\"" (* truncated *);
      "\"\\u1_23\"" (* OCaml-ism that int_of_string would accept *);
      "\"\\uzzzz\"";
    ]

let test_json_control_chars () =
  let s = "\x01\x02 bell\x07 del" in
  match Json.of_string (Json.to_string (Json.Str s)) with
  | Json.Str s' -> Alcotest.(check string) "control chars round-trip" s s'
  | _ -> Alcotest.fail "expected a string"

let test_json_deep_nesting () =
  let depth = 500 in
  let doc =
    String.concat "" (List.init depth (fun _ -> "["))
    ^ "1"
    ^ String.concat "" (List.init depth (fun _ -> "]"))
  in
  let rec depth_of = function
    | Json.List [ x ] -> 1 + depth_of x
    | Json.Num 1.0 -> 0
    | _ -> Alcotest.fail "unexpected shape"
  in
  let parsed = Json.of_string doc in
  Alcotest.(check int) "deep nesting parses" depth (depth_of parsed);
  Alcotest.(check int) "deep nesting re-emits" depth
    (depth_of (Json.of_string (Json.to_string parsed)))

let test_json_nonfinite () =
  (* the printer degrades non-finite numbers to null... *)
  Alcotest.(check string) "nan prints as null" "null"
    (Json.to_string (Json.Num Float.nan));
  Alcotest.(check string) "inf prints as null" "null"
    (Json.to_string (Json.Num infinity));
  (* ...and the parser refuses overflowing literals *)
  match Json.of_string "1e999" with
  | exception Json.Parse_error msg ->
      Alcotest.(check bool) "message names the literal" true
        (contains_sub msg "1e999")
  | _ -> Alcotest.fail "accepted an overflowing number"

let test_json_error_messages () =
  List.iter
    (fun (doc, needle) ->
      match Json.of_string doc with
      | exception Json.Parse_error msg ->
          if not (contains_sub msg needle) then
            Alcotest.failf "error for %S is %S (wanted %S)" doc msg needle
      | _ -> Alcotest.failf "accepted %S" doc)
    [
      ("{", "end of input");
      ("[1,]", "unexpected character");
      ("\"abc", "unterminated string");
      ("{} x", "trailing garbage");
      ("{\"a\" 1}", "expected :");
      ("nul", "expected null");
    ];
  (* offsets are included so a corrupt artifact points at itself *)
  match Json.of_string "[1, oops]" with
  | exception Json.Parse_error msg ->
      Alcotest.(check bool) "offset included" true
        (contains_sub msg "at offset 4")
  | _ -> Alcotest.fail "accepted garbage"

(* --- end-to-end: a PSD run drives the instrumented hot paths --- *)

let test_psd_bumps_counters () =
  fresh ();
  let b = SRC.build SRC.default in
  let eng = Psd.prepare ~samples_per_phase:32 b.SRC.sys ~output:b.SRC.output in
  ignore (Psd.psd eng ~f:1e4);
  Alcotest.(check bool) "lu_factorizations > 0" true
    (Obs.counter_value "lu_factorizations" > 0);
  Alcotest.(check bool) "ode_steps > 0" true
    (Obs.counter_value "ode_steps" > 0);
  Alcotest.(check bool) "clu_factorizations > 0" true
    (Obs.counter_value "clu_factorizations" > 0);
  Alcotest.(check bool) "expm_calls > 0" true
    (Obs.counter_value "expm_calls" > 0);
  Alcotest.(check bool) "psd_points > 0" true
    (Obs.counter_value "psd_points" > 0)

let test_instrumentation_does_not_perturb () =
  (* the acceptance bar: sweeps with spans on and off are bit-identical *)
  fresh ();
  let b = SRC.build SRC.default in
  let freqs = Grid.linspace 1e3 1e5 7 in
  let run () =
    let eng =
      Psd.prepare ~samples_per_phase:32 b.SRC.sys ~output:b.SRC.output
    in
    Psd.sweep eng freqs
  in
  let off = run () in
  Obs.reset ();
  Obs.enable ();
  let on = run () in
  Obs.disable ();
  Array.iteri
    (fun i x ->
      if x <> on.(i) then
        Alcotest.failf "sweep differs at %d: %.17g vs %.17g" i x on.(i))
    off;
  let snap = Obs.snapshot () in
  Alcotest.(check bool) "spans were recorded on the enabled run" true
    (snap.Obs.snap_spans <> [])

let () =
  Alcotest.run "obs"
    [
      ( "counters",
        [
          Alcotest.test_case "basics" `Quick test_counter_basics;
          Alcotest.test_case "always on" `Quick
            test_counters_count_when_disabled;
        ] );
      ("timers", [ Alcotest.test_case "accumulates" `Quick test_timer_accumulates ]);
      ( "spans",
        [
          Alcotest.test_case "disabled noop" `Quick test_span_disabled_is_noop;
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick
            test_span_survives_exception;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "escaping" `Quick test_json_escaping;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
          Alcotest.test_case "unicode escapes" `Quick test_json_unicode_escapes;
          Alcotest.test_case "control chars" `Quick test_json_control_chars;
          Alcotest.test_case "deep nesting" `Quick test_json_deep_nesting;
          Alcotest.test_case "non-finite numbers" `Quick test_json_nonfinite;
          Alcotest.test_case "error messages" `Quick test_json_error_messages;
        ] );
      ( "hist",
        [
          Alcotest.test_case "log buckets" `Quick test_hist_log_buckets;
          Alcotest.test_case "counts exact" `Quick test_hist_counts_exact;
          Alcotest.test_case "merge and empty" `Quick test_hist_merge_and_empty;
          Alcotest.test_case "registry" `Quick test_hist_registry;
          Alcotest.test_case "concurrent" `Quick test_hist_concurrent;
          Alcotest.test_case "json roundtrip" `Quick test_hist_json_roundtrip;
        ] );
      ( "gc",
        [
          Alcotest.test_case "span accounting" `Quick test_span_gc_accounting;
          Alcotest.test_case "timer accounting" `Quick test_timer_gc_accounting;
        ] );
      ( "trace",
        [
          Alcotest.test_case "multitrack pooled run" `Quick
            test_trace_multitrack;
          Alcotest.test_case "validator rejects" `Quick
            test_trace_validator_rejects;
        ] );
      ( "bench_diff",
        [
          Alcotest.test_case "self is clean" `Quick test_bench_diff_self_is_clean;
          Alcotest.test_case "flags inflation" `Quick
            test_bench_diff_flags_inflation;
          Alcotest.test_case "noise floor" `Quick test_bench_diff_noise_floor;
          Alcotest.test_case "one-sided never gates" `Quick
            test_bench_diff_one_sided_never_gates;
          Alcotest.test_case "hist quantiles" `Quick
            test_bench_diff_hist_quantiles;
        ] );
      ( "artifacts",
        [
          Alcotest.test_case "atomic writes" `Quick test_atomic_write;
          Alcotest.test_case "sorted spans" `Quick test_sorted_artifacts;
        ] );
      ( "integration",
        [
          Alcotest.test_case "psd bumps counters" `Quick
            test_psd_bumps_counters;
          Alcotest.test_case "numerics unperturbed" `Quick
            test_instrumentation_does_not_perturb;
        ] );
    ]
