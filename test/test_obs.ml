module Obs = Scnoise_obs.Obs
module Json = Scnoise_obs.Json
module Export = Scnoise_obs.Export
module Psd = Scnoise_core.Psd
module SRC = Scnoise_circuits.Switched_rc
module Grid = Scnoise_util.Grid

(* Every test starts from a clean, disabled registry. *)
let fresh () =
  Obs.disable ();
  Obs.reset ()

(* --- counters --- *)

let test_counter_basics () =
  fresh ();
  let c = Obs.counter "test.alpha" in
  Alcotest.(check int) "starts at zero" 0 (Obs.value c);
  Obs.incr c;
  Obs.incr c;
  Obs.add c 40;
  Alcotest.(check int) "incremented" 42 (Obs.value c);
  Alcotest.(check int) "lookup by name" 42 (Obs.counter_value "test.alpha");
  let c' = Obs.counter "test.alpha" in
  Obs.incr c';
  Alcotest.(check int) "same handle for same name" 43 (Obs.value c);
  Obs.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Obs.value c);
  Alcotest.(check int) "unknown name reads zero" 0
    (Obs.counter_value "test.never-registered")

let test_counters_count_when_disabled () =
  fresh ();
  let c = Obs.counter "test.disabled" in
  Alcotest.(check bool) "disabled" false (Obs.is_enabled ());
  Obs.incr c;
  Alcotest.(check int) "counters are always on" 1 (Obs.value c)

(* --- timers --- *)

let test_timer_accumulates () =
  fresh ();
  let t = Obs.timer "test.timer" in
  let x = Obs.time t (fun () -> 40 + 2) in
  Alcotest.(check int) "returns body value" 42 x;
  ignore (Obs.time t (fun () -> ()));
  Alcotest.(check int) "two measurements" 2 (Obs.timer_count t);
  Alcotest.(check bool) "non-negative total" true (Obs.timer_total t >= 0.0)

(* --- spans --- *)

let test_span_disabled_is_noop () =
  fresh ();
  let r = Obs.with_span "test.off" (fun () -> 7) in
  Alcotest.(check int) "value passes through" 7 r;
  let snap = Obs.snapshot () in
  Alcotest.(check int) "no spans recorded" 0
    (List.length snap.Obs.snap_spans)

let test_span_nesting () =
  fresh ();
  Obs.enable ();
  let r =
    Obs.with_span "outer" (fun () ->
        let a = Obs.with_span "inner1" (fun () -> 1) in
        let b = Obs.with_span "inner2" (fun () -> 2) in
        a + b)
  in
  Obs.disable ();
  Alcotest.(check int) "value" 3 r;
  let snap = Obs.snapshot () in
  match snap.Obs.snap_spans with
  | [ outer ] ->
      Alcotest.(check string) "root name" "outer" outer.Obs.sp_name;
      (match outer.Obs.sp_children with
      | [ i1; i2 ] ->
          Alcotest.(check string) "child order" "inner1" i1.Obs.sp_name;
          Alcotest.(check string) "child order" "inner2" i2.Obs.sp_name;
          Alcotest.(check bool) "children start after parent" true
            (i1.Obs.sp_start >= outer.Obs.sp_start);
          Alcotest.(check bool) "inner2 starts after inner1 ends" true
            (i2.Obs.sp_start >= i1.Obs.sp_start +. i1.Obs.sp_duration -. 1e-9);
          Alcotest.(check bool) "parent wall time covers children" true
            (outer.Obs.sp_duration
            >= i1.Obs.sp_duration +. i2.Obs.sp_duration -. 1e-9)
      | l -> Alcotest.failf "expected 2 children, got %d" (List.length l))
  | l -> Alcotest.failf "expected 1 root span, got %d" (List.length l)

let test_span_survives_exception () =
  fresh ();
  Obs.enable ();
  (try
     Obs.with_span "outer" (fun () ->
         Obs.with_span "boom" (fun () -> failwith "boom"))
   with Failure _ -> ());
  Obs.disable ();
  let snap = Obs.snapshot () in
  let names =
    Obs.fold_spans (fun acc sp -> sp.Obs.sp_name :: acc) [] snap
    |> List.sort compare
  in
  Alcotest.(check (list string))
    "both spans closed despite the raise" [ "boom"; "outer" ] names

(* --- JSON exporter --- *)

let rec check_span_eq (a : Obs.span) (b : Obs.span) =
  Alcotest.(check string) "span name" a.Obs.sp_name b.Obs.sp_name;
  Alcotest.(check (float 0.0)) "span start" a.Obs.sp_start b.Obs.sp_start;
  Alcotest.(check (float 0.0)) "span duration" a.Obs.sp_duration
    b.Obs.sp_duration;
  Alcotest.(check int) "span children" (List.length a.Obs.sp_children)
    (List.length b.Obs.sp_children);
  List.iter2 check_span_eq a.Obs.sp_children b.Obs.sp_children

let test_json_roundtrip () =
  fresh ();
  Obs.enable ();
  Obs.add (Obs.counter "test.json_counter") 17;
  ignore (Obs.time (Obs.timer "test.json_timer") (fun () -> ()));
  Obs.with_span "root" (fun () -> Obs.with_span "child" (fun () -> ()));
  Obs.disable ();
  let snap = Obs.snapshot () in
  let back = Export.of_json_string (Export.to_json_string snap) in
  Alcotest.(check int) "counter survives" 17
    (List.assoc "test.json_counter" back.Obs.snap_counters);
  Alcotest.(check int) "counter list equal"
    (List.length snap.Obs.snap_counters)
    (List.length back.Obs.snap_counters);
  List.iter2
    (fun (n1, v1) (n2, v2) ->
      Alcotest.(check string) "counter name" n1 n2;
      Alcotest.(check int) "counter value" v1 v2)
    snap.Obs.snap_counters back.Obs.snap_counters;
  List.iter2
    (fun (n1, tot1, c1) (n2, tot2, c2) ->
      Alcotest.(check string) "timer name" n1 n2;
      Alcotest.(check (float 0.0)) "timer total" tot1 tot2;
      Alcotest.(check int) "timer count" c1 c2)
    snap.Obs.snap_timers back.Obs.snap_timers;
  Alcotest.(check int) "span forest size"
    (List.length snap.Obs.snap_spans)
    (List.length back.Obs.snap_spans);
  List.iter2 check_span_eq snap.Obs.snap_spans back.Obs.snap_spans

let test_json_escaping () =
  let j =
    Json.Obj
      [ ("weird \"key\"\n", Json.Str "tab\there \\ done"); ("n", Json.Num 1.5) ]
  in
  match Json.of_string (Json.to_string j) with
  | Json.Obj [ (k, Json.Str v); (_, Json.Num x) ] ->
      Alcotest.(check string) "key" "weird \"key\"\n" k;
      Alcotest.(check string) "value" "tab\there \\ done" v;
      Alcotest.(check (float 0.0)) "number" 1.5 x
  | _ -> Alcotest.fail "unexpected parse shape"

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | exception Json.Parse_error _ -> ()
      | _ -> Alcotest.failf "accepted %S" s)
    [ "{"; "[1,]"; "tru"; "\"unterminated"; "{} trailing"; "{\"a\" 1}" ]

(* --- end-to-end: a PSD run drives the instrumented hot paths --- *)

let test_psd_bumps_counters () =
  fresh ();
  let b = SRC.build SRC.default in
  let eng = Psd.prepare ~samples_per_phase:32 b.SRC.sys ~output:b.SRC.output in
  ignore (Psd.psd eng ~f:1e4);
  Alcotest.(check bool) "lu_factorizations > 0" true
    (Obs.counter_value "lu_factorizations" > 0);
  Alcotest.(check bool) "ode_steps > 0" true
    (Obs.counter_value "ode_steps" > 0);
  Alcotest.(check bool) "clu_factorizations > 0" true
    (Obs.counter_value "clu_factorizations" > 0);
  Alcotest.(check bool) "expm_calls > 0" true
    (Obs.counter_value "expm_calls" > 0);
  Alcotest.(check bool) "psd_points > 0" true
    (Obs.counter_value "psd_points" > 0)

let test_instrumentation_does_not_perturb () =
  (* the acceptance bar: sweeps with spans on and off are bit-identical *)
  fresh ();
  let b = SRC.build SRC.default in
  let freqs = Grid.linspace 1e3 1e5 7 in
  let run () =
    let eng =
      Psd.prepare ~samples_per_phase:32 b.SRC.sys ~output:b.SRC.output
    in
    Psd.sweep eng freqs
  in
  let off = run () in
  Obs.reset ();
  Obs.enable ();
  let on = run () in
  Obs.disable ();
  Array.iteri
    (fun i x ->
      if x <> on.(i) then
        Alcotest.failf "sweep differs at %d: %.17g vs %.17g" i x on.(i))
    off;
  let snap = Obs.snapshot () in
  Alcotest.(check bool) "spans were recorded on the enabled run" true
    (snap.Obs.snap_spans <> [])

let () =
  Alcotest.run "obs"
    [
      ( "counters",
        [
          Alcotest.test_case "basics" `Quick test_counter_basics;
          Alcotest.test_case "always on" `Quick
            test_counters_count_when_disabled;
        ] );
      ("timers", [ Alcotest.test_case "accumulates" `Quick test_timer_accumulates ]);
      ( "spans",
        [
          Alcotest.test_case "disabled noop" `Quick test_span_disabled_is_noop;
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick
            test_span_survives_exception;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "escaping" `Quick test_json_escaping;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
        ] );
      ( "integration",
        [
          Alcotest.test_case "psd bumps counters" `Quick
            test_psd_bumps_counters;
          Alcotest.test_case "numerics unperturbed" `Quick
            test_instrumentation_does_not_perturb;
        ] );
    ]
