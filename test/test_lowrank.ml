(* Tests for the low-rank covariance machinery: the Krylov expm·v
   propagator against the dense exponential, the factored Van Loan step
   against the dense covariance update, rank-truncation behaviour of
   the compressed representation, and Dense/Lowrank backend parity
   through the covariance sampler and the PSD pipeline. *)

module Mat = Scnoise_linalg.Mat
module Vec = Scnoise_linalg.Vec
module Expm = Scnoise_linalg.Expm
module Linop = Scnoise_linalg.Linop
module Kexpm = Scnoise_linalg.Kexpm
module Lowrank = Scnoise_linalg.Lowrank
module Vanloan = Scnoise_linalg.Vanloan
module Pwl = Scnoise_circuit.Pwl
module Covariance = Scnoise_core.Covariance
module Psd = Scnoise_core.Psd
module Pool = Scnoise_par.Pool
module RC = Scnoise_circuits.Switched_rc
module SCI = Scnoise_circuits.Sc_integrator
module LAD = Scnoise_circuits.Sc_ladder

(* --- seeded random stable systems --- *)

let rng_of seed n = Random.State.make [| seed; n; 0x10a4 |]

let rnd rng = Random.State.float rng 2.0 -. 1.0

(* Diagonally dominant with a negative shift: strictly stable, and
   norm(A) stays O(n) so the Krylov propagator needs no sub-stepping
   heroics. *)
let random_stable rng n =
  Mat.init n n (fun i j ->
      if i = j then -.(float_of_int n +. 2.0 +. Random.State.float rng 1.0)
      else 0.5 *. rnd rng)

let random_vec rng n = Array.init n (fun _ -> rnd rng)

let random_factor rng n r = Mat.init n r (fun _ _ -> rnd rng)

let max_abs_vec_diff a b =
  let m = ref 0.0 in
  Array.iteri (fun i ai -> m := Float.max !m (Float.abs (ai -. b.(i)))) a;
  !m

(* --- Krylov expm·v vs dense Expm --- *)

let test_kexpm_matches_dense () =
  List.iter
    (fun (seed, n, tau) ->
      let rng = rng_of seed n in
      let a = random_stable rng n in
      let v = random_vec rng n in
      let dense = Mat.mul_vec (Expm.expm_scaled a tau) v in
      let krylov = Kexpm.expmv (Linop.of_mat a) ~tau v in
      let scale = Float.max 1.0 (Vec.norm_inf dense) in
      Alcotest.(check bool)
        (Printf.sprintf "expmv seed=%d n=%d" seed n)
        true
        (max_abs_vec_diff dense krylov /. scale < 1e-9))
    [ (1, 4, 0.3); (2, 12, 0.1); (3, 24, 0.05); (4, 33, 0.02) ]

let test_kexpm_block_matches_dense () =
  let rng = rng_of 7 16 in
  let n = 16 and r = 3 and tau = 0.08 in
  let a = random_stable rng n in
  let z = random_factor rng n r in
  let dense = Mat.mul (Expm.expm_scaled a tau) z in
  let krylov = Kexpm.expm_block (Linop.auto a) ~tau z in
  Alcotest.(check bool)
    "expm_block" true
    (Mat.max_abs_diff dense krylov /. Float.max 1.0 (Mat.max_abs dense)
    < 1e-9)

let test_gramian_factor_matches_vanloan () =
  let rng = rng_of 11 10 in
  let n = 10 and m = 2 in
  let a = random_stable rng n in
  let b = random_factor rng n m in
  let q = Mat.mul b (Mat.transpose b) in
  let tau = 0.02 (* norm(A) tau well under the quadrature's comfort zone *) in
  let d = Vanloan.discretize ~a ~q ~tau in
  let f = Kexpm.gramian_factor (Linop.of_mat a) ~b ~tau in
  let qd = Lowrank.to_dense (Lowrank.of_factor f) in
  Alcotest.(check bool)
    "gramian factor" true
    (Mat.max_abs_diff qd d.Vanloan.qd /. Float.max 1e-30 (Mat.max_abs d.Vanloan.qd)
    < 1e-8)

(* --- factored Van Loan step vs dense update --- *)

let test_factored_step_matches_dense () =
  let rng = rng_of 23 12 in
  let n = 12 in
  let a = random_stable rng n in
  let b = random_factor rng n 3 in
  let q = Mat.mul b (Mat.transpose b) in
  let d = Vanloan.discretize ~a ~q ~tau:0.05 in
  let lq = Scnoise_linalg.Symeig.psd_factor ~rtol:1e-15 d.Vanloan.qd in
  let z0 = random_factor rng n 4 in
  let k0 = Lowrank.to_dense (Lowrank.of_factor z0) in
  (* dense reference: K' = Phi K Phiᵀ + Qd *)
  let kref = Vanloan.propagate d k0 in
  let z1 =
    Lowrank.vanloan_step_mat ~rtol:1e-15 ~phi:d.Vanloan.phi ~lq
      (Lowrank.of_factor z0)
  in
  let k1 = Lowrank.to_dense z1 in
  Alcotest.(check bool)
    "factored step" true
    (Mat.max_abs_diff kref k1 /. Float.max 1e-30 (Mat.max_abs kref) < 1e-11);
  (* matrix-free flavour of the same step *)
  let z1mf =
    Lowrank.vanloan_step ~rtol:1e-15 ~phi:(Linop.of_mat d.Vanloan.phi) ~lq
      (Lowrank.of_factor z0)
  in
  Alcotest.(check bool)
    "factored step (operator)" true
    (Mat.max_abs_diff kref (Lowrank.to_dense z1mf)
     /. Float.max 1e-30 (Mat.max_abs kref)
    < 1e-11)

(* --- rank truncation --- *)

let test_compress_rank_monotone () =
  let rng = rng_of 31 20 in
  let n = 20 in
  (* strongly graded column scales so truncation has thresholds to bite *)
  let z =
    Mat.init n n (fun i j -> rnd rng *. (10.0 ** float_of_int (-j)) *. (if i >= 0 then 1.0 else 1.0))
  in
  let t = Lowrank.of_factor z in
  let rtols = [ 1e-15; 1e-10; 1e-6; 1e-2 ] in
  let ranks = List.map (fun r -> Lowrank.rank (Lowrank.compress ~rtol:r t)) rtols in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a >= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool)
    (Printf.sprintf "ranks %s non-increasing"
       (String.concat "," (List.map string_of_int ranks)))
    true (monotone ranks);
  (* truncation error bounded by the tolerance times the scale *)
  let dense = Lowrank.to_dense t in
  List.iter
    (fun rtol ->
      let c = Lowrank.compress ~rtol t in
      let err = Mat.max_abs_diff dense (Lowrank.to_dense c) in
      Alcotest.(check bool)
        (Printf.sprintf "error at rtol=%g" rtol)
        true
        (err <= float_of_int n *. rtol *. Lowrank.max_diag t +. 1e-30))
    rtols

let test_compress_exact_low_rank () =
  let rng = rng_of 37 15 in
  let n = 15 and r = 3 in
  let z = random_factor rng n r in
  (* duplicate columns: true rank stays r *)
  let t = Lowrank.of_factor (Mat.hcat z z) in
  let c = Lowrank.compress ~rtol:1e-13 t in
  Alcotest.(check bool) "rank collapses" true (Lowrank.rank c <= r);
  Alcotest.(check bool)
    "values preserved" true
    (Mat.max_abs_diff (Lowrank.to_dense t) (Lowrank.to_dense c)
     /. Float.max 1e-30 (Lowrank.max_diag t)
    < 1e-11)

(* --- backend parity through the covariance sampler --- *)

let check_sample_parity name ?(tol = 1e-9) sys output =
  let sd = Covariance.sample ~backend:Covariance.Dense sys in
  let sl = Covariance.sample ~backend:Covariance.Lowrank sys in
  let vd = Covariance.variance_trace sd output in
  let vl = Covariance.variance_trace sl output in
  let scale = Array.fold_left Float.max 1e-30 (Array.map Float.abs vd) in
  Alcotest.(check bool)
    (name ^ " variance trace") true
    (max_abs_vec_diff vd vl /. scale < tol);
  Alcotest.(check bool)
    (name ^ " k0") true
    (Mat.max_abs_diff
       (Covariance.k_mat sd.Covariance.k0)
       (Covariance.k_mat sl.Covariance.k0)
     /. Float.max 1e-30 (Mat.max_abs (Covariance.k_mat sd.Covariance.k0))
    < tol)

let test_backend_parity_covariance () =
  let rc = RC.build RC.default in
  check_sample_parity "switched_rc" rc.RC.sys rc.RC.output;
  let sci = SCI.build SCI.default in
  check_sample_parity "sc_integrator" sci.SCI.sys sci.SCI.output

(* Dense vs low-rank PSD on the bundled circuits and a 40-state
   parasitic ladder: the ISSUE-level acceptance is agreement to
   1e-9 dB. *)
let check_psd_parity name ?(samples_per_phase = 48) sys output freqs =
  let ed =
    Psd.prepare ~cov_backend:Covariance.Dense ~samples_per_phase sys ~output
  in
  let el =
    Psd.prepare ~cov_backend:Covariance.Lowrank ~samples_per_phase sys ~output
  in
  let dd = Psd.sweep_db ed freqs and dl = Psd.sweep_db el freqs in
  Alcotest.(check bool)
    (name ^ " psd parity (dB)")
    true
    (max_abs_vec_diff dd dl < 1e-9)

let test_backend_parity_psd () =
  let rc = RC.build RC.default in
  check_psd_parity "switched_rc" rc.RC.sys rc.RC.output
    [| 1e3; 1e4; 1e5 |];
  let sci = SCI.build SCI.default in
  check_psd_parity "sc_integrator" sci.SCI.sys sci.SCI.output
    [| 1e3; 1e4; 4e4 |]

let test_backend_parity_ladder40 () =
  let p = LAD.with_parasitics (LAD.with_stages 20) in
  Alcotest.(check int) "ladder states" 40 (LAD.nstates p);
  let b = LAD.build p in
  check_psd_parity "ladder40" ~samples_per_phase:24 b.LAD.sys b.LAD.output
    [| 1e3; 1e4; 3e4 |]

(* --- the genuinely low-rank regime: many states, one noise source ---

   A long RC line with a single noisy resistor keeps the covariance
   rank far below n, which drives the sampler down the factored (and,
   with few noise columns, matrix-free Krylov) path rather than the
   saturated dense one. *)

let chain_system n =
  let a =
    Mat.init n n (fun i j ->
        if i = j then -2.2 -. (0.01 *. float_of_int i)
        else if abs (i - j) = 1 then 1.0
        else 0.0)
  in
  let b = Mat.init n 1 (fun i _ -> if i = 0 then 1.0 else 0.0) in
  let q = Mat.mul b (Mat.transpose b) in
  let phase tau : Pwl.phase =
    { tau; a; b; q;
      e = Mat.create n 0;
      e_dot = Mat.create n 0;
      noise_labels = [| "R1" |] }
  in
  {
    Pwl.period = 2.0;
    phases = [| phase 1.0; phase 1.0 |];
    nstates = n;
    state_names = Array.init n (Printf.sprintf "v%d");
    inputs = [||];
    observables = [];
  }

let test_low_rank_regime () =
  let n = 40 in
  let sys = chain_system n in
  let output = Array.init n (fun i -> if i = n - 1 then 1.0 else 0.0) in
  let sd = Covariance.sample ~backend:Covariance.Dense ~samples_per_phase:12 sys in
  let sl =
    Covariance.sample ~backend:Covariance.Lowrank ~samples_per_phase:12 sys
  in
  Alcotest.(check bool)
    "rank stays low" true
    (sl.Covariance.peak_rank < n);
  let vd = Covariance.variance_trace sd output in
  let vl = Covariance.variance_trace sl output in
  (* the factored representation truncates relative to the covariance's
     largest entry, so parity is judged on that scale — the far end of
     the chain carries essentially zero variance *)
  let scale =
    Float.max 1e-30 (Mat.max_abs (Covariance.k_mat sd.Covariance.k0))
  in
  Alcotest.(check bool)
    "trace parity" true
    (max_abs_vec_diff vd vl /. scale < 1e-9);
  Alcotest.(check bool)
    "k0 parity" true
    (Mat.max_abs_diff
       (Covariance.k_mat sd.Covariance.k0)
       (Covariance.k_mat sl.Covariance.k0)
     /. scale
    < 1e-9)

(* --- determinism: jobs 1 vs 4, per backend --- *)

let mats_equal_bits a b =
  Mat.rows a = Mat.rows b
  && Mat.cols a = Mat.cols b
  &&
  let da = Mat.data a and db = Mat.data b in
  let ok = ref true in
  Array.iteri
    (fun i x ->
      if Int64.bits_of_float x <> Int64.bits_of_float db.(i) then ok := false)
    da;
  !ok

let test_jobs_determinism () =
  let p = LAD.with_parasitics (LAD.with_stages 8) in
  let b = LAD.build p in
  List.iter
    (fun backend ->
      let run jobs =
        let pool = Pool.create ~jobs () in
        Fun.protect
          ~finally:(fun () -> Pool.shutdown pool)
          (fun () ->
            Covariance.sample ~backend ~samples_per_phase:16 ~pool b.LAD.sys)
      in
      let s1 = run 1 and s4 = run 4 in
      Alcotest.(check bool)
        (Covariance.backend_name backend ^ " k0 bitwise")
        true
        (mats_equal_bits
           (Covariance.k_mat s1.Covariance.k0)
           (Covariance.k_mat s4.Covariance.k0));
      let ok = ref true in
      Array.iteri
        (fun i k ->
          if
            not
              (mats_equal_bits (Covariance.k_mat k)
                 (Covariance.k_mat s4.Covariance.ks.(i)))
          then ok := false)
        s1.Covariance.ks;
      Alcotest.(check bool)
        (Covariance.backend_name backend ^ " ks bitwise")
        true !ok)
    [ Covariance.Dense; Covariance.Lowrank ]

(* --- backend resolution plumbing --- *)

let test_backend_resolution () =
  Alcotest.(check bool)
    "small auto is dense" true
    (Covariance.resolve_backend ~nstates:4 () = Covariance.Dense);
  Alcotest.(check bool)
    "large auto is lowrank" true
    (Covariance.resolve_backend ~nstates:Covariance.auto_state_threshold ()
    = Covariance.Lowrank);
  Alcotest.(check bool)
    "explicit wins" true
    (Covariance.resolve_backend ~backend:Covariance.Dense ~nstates:200 ()
    = Covariance.Dense);
  Covariance.set_default_backend (Some Covariance.Lowrank);
  Fun.protect
    ~finally:(fun () -> Covariance.set_default_backend None)
    (fun () ->
      Alcotest.(check bool)
        "configured default wins over auto" true
        (Covariance.resolve_backend ~nstates:4 () = Covariance.Lowrank));
  Alcotest.(check bool)
    "name round-trip" true
    (Covariance.backend_of_name "lowrank" = Some Covariance.Lowrank
    && Covariance.backend_of_name "dense" = Some Covariance.Dense
    && Covariance.backend_of_name "auto" = None)

let () =
  Alcotest.run "lowrank"
    [
      ( "kexpm",
        [
          Alcotest.test_case "expmv vs dense" `Quick test_kexpm_matches_dense;
          Alcotest.test_case "expm_block vs dense" `Quick
            test_kexpm_block_matches_dense;
          Alcotest.test_case "gramian factor vs Van Loan" `Quick
            test_gramian_factor_matches_vanloan;
        ] );
      ( "factored",
        [
          Alcotest.test_case "Van Loan step" `Quick
            test_factored_step_matches_dense;
          Alcotest.test_case "rank monotone in rtol" `Quick
            test_compress_rank_monotone;
          Alcotest.test_case "exact on low rank" `Quick
            test_compress_exact_low_rank;
        ] );
      ( "backends",
        [
          Alcotest.test_case "covariance parity" `Quick
            test_backend_parity_covariance;
          Alcotest.test_case "psd parity" `Quick test_backend_parity_psd;
          Alcotest.test_case "psd parity ladder n=40" `Slow
            test_backend_parity_ladder40;
          Alcotest.test_case "low-rank regime" `Quick test_low_rank_regime;
          Alcotest.test_case "jobs determinism" `Quick test_jobs_determinism;
          Alcotest.test_case "resolution order" `Quick
            test_backend_resolution;
        ] );
    ]
