module Mat = Scnoise_linalg.Mat
module Vec = Scnoise_linalg.Vec
module Lyapunov = Scnoise_linalg.Lyapunov
module Const = Scnoise_util.Const
module Clock = Scnoise_circuit.Clock
module Netlist = Scnoise_circuit.Netlist
module Compile = Scnoise_circuit.Compile
module Pwl = Scnoise_circuit.Pwl
module Simulate = Scnoise_circuit.Simulate

let check_close ?(eps = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > eps *. (1.0 +. abs_float expected) then
    Alcotest.failf "%s: expected %.17g, got %.17g" msg expected actual

(* --- Clock --- *)

let test_clock_make () =
  let c = Clock.make [ 1.0; 2.0; 3.0 ] in
  check_close "period" 6.0 (Clock.period c);
  Alcotest.(check int) "phases" 3 (Clock.n_phases c);
  check_close "start of 2" 3.0 (Clock.phase_start c 2)

let test_clock_duty () =
  let c = Clock.duty ~period:10.0 ~duty:0.3 in
  let d = Clock.durations c in
  check_close "on" 3.0 d.(0);
  check_close "off" 7.0 d.(1)

let test_clock_phase_at () =
  let c = Clock.make [ 1.0; 2.0 ] in
  let p, off = Clock.phase_at c 0.5 in
  Alcotest.(check int) "phase" 0 p;
  check_close "offset" 0.5 off;
  let p, off = Clock.phase_at c 2.5 in
  Alcotest.(check int) "phase" 1 p;
  check_close "offset" 1.5 off;
  (* wraps modulo the period, including negative times *)
  let p, _ = Clock.phase_at c 3.5 in
  Alcotest.(check int) "wrapped" 0 p;
  let p, off = Clock.phase_at c (-0.5) in
  Alcotest.(check int) "negative" 1 p;
  check_close "negative offset" 1.5 off

let test_clock_two_phase () =
  let c = Clock.two_phase ~gap_fraction:0.05 ~period:1.0 () in
  Alcotest.(check int) "4 intervals" 4 (Clock.n_phases c);
  check_close "period" 1.0 (Clock.period c);
  let d = Clock.durations c in
  check_close "gap" 0.05 d.(1);
  check_close "phi1" 0.45 d.(0)

let test_clock_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Clock.make: no phases")
    (fun () -> ignore (Clock.make []));
  Alcotest.check_raises "bad duty"
    (Invalid_argument "Clock.duty: need 0 < duty < 1") (fun () ->
      ignore (Clock.duty ~period:1.0 ~duty:1.5));
  (match Clock.duty ~period:0.0 ~duty:0.5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero period accepted");
  (match Clock.make [ 1.0; 0.0 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero duration accepted");
  match Clock.two_phase ~gap_fraction:0.6 ~period:1.0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "gap_fraction >= 0.5 accepted"

let test_clock_boundaries () =
  (* phase lookup exactly at phase-start instants: a boundary belongs to
     the phase it opens *)
  let c = Clock.make [ 1.0; 2.0; 3.0 ] in
  let check_at t (ep, eo) =
    let p, off = Clock.phase_at c t in
    Alcotest.(check int) (Printf.sprintf "phase at %g" t) ep p;
    check_close (Printf.sprintf "offset at %g" t) eo off
  in
  check_at 0.0 (0, 0.0);
  check_at 1.0 (1, 0.0);
  check_at 3.0 (2, 0.0);
  (* t = period wraps to the start of phase 0 *)
  check_at 6.0 (0, 0.0);
  check_at 7.0 (1, 0.0);
  (* negative times wrap backwards into the last phases *)
  check_at (-1.0) (2, 2.0);
  check_at (-6.0) (0, 0.0);
  (* phase_start is consistent with the durations *)
  check_close "start 0" 0.0 (Clock.phase_start c 0);
  check_close "start 1" 1.0 (Clock.phase_start c 1);
  check_close "start 2" 3.0 (Clock.phase_start c 2);
  (match Clock.phase_start c 3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "phase_start out of range accepted");
  match Clock.phase_start c (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative phase_start accepted"

(* --- Netlist validation --- *)

let test_netlist_validation () =
  (* every message names the offending element; default names count from
     the next element index *)
  let nl = Netlist.create () in
  let a = Netlist.node nl "a" in
  Alcotest.check_raises "same node"
    (Invalid_argument "Netlist.resistor \"R1\": both terminals on the same node")
    (fun () -> Netlist.resistor nl a a 1.0);
  Alcotest.check_raises "bad r"
    (Invalid_argument "Netlist.resistor \"Rload\": r <= 0") (fun () ->
      Netlist.resistor ~name:"Rload" nl a Netlist.ground 0.0);
  Alcotest.check_raises "bad c"
    (Invalid_argument "Netlist.capacitor \"C1\": c <= 0") (fun () ->
      Netlist.capacitor nl a Netlist.ground (-1e-12));
  Alcotest.check_raises "never closed"
    (Invalid_argument "Netlist.switch \"S1\": never closed") (fun () ->
      Netlist.switch ~closed_in:[] nl a Netlist.ground 1.0)

let test_netlist_find_node () =
  let nl = Netlist.create () in
  let a = Netlist.node nl "a" in
  (match Netlist.find_node nl "a" with
  | Some n -> Alcotest.(check int) "found" (Netlist.node_id a) (Netlist.node_id n)
  | None -> Alcotest.fail "existing node not found");
  (match Netlist.find_node nl "0" with
  | Some n -> Alcotest.(check int) "ground" 0 (Netlist.node_id n)
  | None -> Alcotest.fail "ground not found");
  (match Netlist.find_node nl "missing" with
  | None -> ()
  | Some _ -> Alcotest.fail "lookup created a node");
  Alcotest.(check int) "no node created" 1 (Netlist.n_nodes nl)

let test_netlist_double_drive () =
  let nl = Netlist.create () in
  let a = Netlist.node nl "a" in
  Netlist.vsource_dc ~name:"V1" nl a 0.0;
  (match Netlist.vsource_dc ~name:"V2" nl a 1.0 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "double drive accepted");
  (* ground cannot be driven *)
  let nl2 = Netlist.create () in
  match Netlist.vsource_dc nl2 Netlist.ground 1.0 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "driving ground accepted"

let test_netlist_names () =
  let nl = Netlist.create () in
  let a = Netlist.node nl "alpha" in
  let b = Netlist.node nl "beta" in
  Alcotest.(check string) "a" "alpha" (Netlist.node_name nl a);
  Alcotest.(check string) "b" "beta" (Netlist.node_name nl b);
  Alcotest.(check string) "ground" "0" (Netlist.node_name nl Netlist.ground);
  (* same name returns the same node *)
  let a' = Netlist.node nl "alpha" in
  Alcotest.(check int) "same node" (Netlist.node_id a) (Netlist.node_id a');
  Alcotest.(check int) "count" 2 (Netlist.n_nodes nl)

let test_netlist_pp () =
  let nl = Netlist.create () in
  let a = Netlist.node nl "a" in
  Netlist.resistor nl a Netlist.ground 100.0;
  Netlist.capacitor nl a Netlist.ground 1e-12;
  let s = Format.asprintf "%a" Netlist.pp nl in
  if String.length s < 10 then Alcotest.fail "pp too short"

(* --- compiler on hand-checkable circuits --- *)

let single_phase_clock tau = Clock.make [ tau ]

let build_rc r c =
  let nl = Netlist.create () in
  let out = Netlist.node nl "out" in
  Netlist.resistor ~name:"R" nl out Netlist.ground r;
  Netlist.capacitor ~name:"C" nl out Netlist.ground c;
  Compile.compile nl (single_phase_clock 1e-6)

let test_compile_rc_matrices () =
  let r = 1e3 and c = 1e-9 in
  let sys = build_rc r c in
  Alcotest.(check int) "one state" 1 sys.Pwl.nstates;
  let ph = sys.Pwl.phases.(0) in
  check_close "A = -1/RC" (-1.0 /. (r *. c)) (Mat.get ph.Pwl.a 0 0);
  let b_expected = sqrt (2.0 *. Const.kt () /. r) /. c in
  check_close "B = sqrt(2kT/R)/C" b_expected (abs_float (Mat.get ph.Pwl.b 0 0));
  Alcotest.(check int) "one noise source" 1 (Array.length ph.Pwl.noise_labels);
  Alcotest.(check string) "label" "R" ph.Pwl.noise_labels.(0)

let test_compile_rc_kt_over_c () =
  let r = 50.0 and c = 3e-12 in
  let sys = build_rc r c in
  let ph = sys.Pwl.phases.(0) in
  let k = Lyapunov.solve_continuous ph.Pwl.a ph.Pwl.q in
  check_close ~eps:1e-9 "kT/C" (Const.kt () /. c) (Mat.get k 0 0)

let test_compile_divider_elimination () =
  (* vin -R1- mid -R2- out(C): mid is resistive and must be eliminated;
     the result is an RC with R1+R2, and thermal equilibrium still gives
     kT/C at the output. *)
  let r1 = 2e3 and r2 = 3e3 and c = 1e-9 in
  let nl = Netlist.create () in
  let vin = Netlist.node nl "vin" in
  let mid = Netlist.node nl "mid" in
  let out = Netlist.node nl "out" in
  Netlist.vsource_dc nl vin 0.0;
  Netlist.resistor ~name:"R1" nl vin mid r1;
  Netlist.resistor ~name:"R2" nl mid out r2;
  Netlist.capacitor nl out Netlist.ground c;
  let sys = Compile.compile nl (single_phase_clock 1e-6) in
  Alcotest.(check int) "one state" 1 sys.Pwl.nstates;
  let ph = sys.Pwl.phases.(0) in
  check_close ~eps:1e-12 "A = -1/((R1+R2)C)"
    (-1.0 /. ((r1 +. r2) *. c))
    (Mat.get ph.Pwl.a 0 0);
  let k = Lyapunov.solve_continuous ph.Pwl.a ph.Pwl.q in
  check_close ~eps:1e-9 "kT/C through elimination" (Const.kt () /. c)
    (Mat.get k 0 0)

let test_compile_miller_integrator () =
  (* vin -R- vg, C2 from vg to op-amp output: states (v_vg, x_oa);
     v̇g = -(g/C2 + wu) vg + (g/C2) vin ; ẋ = -wu vg *)
  let r = 1e4 and c2 = 1e-12 and ugf = 1e6 in
  let nl = Netlist.create () in
  let vin = Netlist.node nl "vin" in
  let vg = Netlist.node nl "vg" in
  let vo = Netlist.node nl "vo" in
  Netlist.vsource_dc nl vin 0.0;
  Netlist.resistor ~name:"R" nl vin vg r;
  Netlist.capacitor ~name:"C2" nl vg vo c2;
  Netlist.opamp_integrator ~name:"OA" nl ~plus:Netlist.ground ~minus:vg
    ~out:vo ~ugf;
  let sys = Compile.compile nl (single_phase_clock 1e-6) in
  Alcotest.(check int) "two states" 2 sys.Pwl.nstates;
  let a = sys.Pwl.phases.(0).Pwl.a in
  let g = 1.0 /. r in
  check_close "A00" (-.(g /. c2) -. ugf) (Mat.get a 0 0);
  check_close "A01" 0.0 (Mat.get a 0 1);
  check_close "A10" (-.ugf) (Mat.get a 1 0);
  check_close "A11" 0.0 (Mat.get a 1 1);
  (* E column: vin drives v̇g with g/C2 *)
  check_close "E00" (g /. c2) (Mat.get sys.Pwl.phases.(0).Pwl.e 0 0)

let test_compile_single_stage_opamp () =
  let rout = 1e6 and cout = 1e-12 in
  let nl = Netlist.create () in
  let out = Netlist.node nl "out" in
  Netlist.opamp_single_stage ~name:"OA" nl ~plus:Netlist.ground
    ~minus:Netlist.ground ~out ~gm:1e-3 ~rout ~cout;
  let sys = Compile.compile nl (single_phase_clock 1e-6) in
  Alcotest.(check int) "one state" 1 sys.Pwl.nstates;
  check_close "A = -1/(rout cout)"
    (-1.0 /. (rout *. cout))
    (Mat.get sys.Pwl.phases.(0).Pwl.a 0 0)

let test_compile_phase_error () =
  let nl = Netlist.create () in
  let a = Netlist.node nl "a" in
  Netlist.capacitor nl a Netlist.ground 1e-12;
  Netlist.switch ~closed_in:[ 5 ] nl a Netlist.ground 100.0;
  match Compile.compile nl (Clock.make [ 1.0; 1.0 ]) with
  | exception Compile.Error _ -> ()
  | _ -> Alcotest.fail "expected phase-range error"

let test_compile_no_state_error () =
  let nl = Netlist.create () in
  let a = Netlist.node nl "a" in
  Netlist.resistor nl a Netlist.ground 100.0;
  match Compile.compile nl (single_phase_clock 1.0) with
  | exception Compile.Error _ -> ()
  | _ -> Alcotest.fail "expected no-state error"

let test_compile_floating_cap_error () =
  let nl = Netlist.create () in
  let a = Netlist.node nl "a" in
  let b = Netlist.node nl "b" in
  Netlist.capacitor nl a b 1e-12;
  Netlist.resistor nl a Netlist.ground 1e3;
  Netlist.resistor nl b Netlist.ground 1e3;
  match Compile.compile nl (single_phase_clock 1e-6) with
  | exception Compile.Error _ -> ()
  | _ -> Alcotest.fail "expected floating-capacitor error"

let test_compile_noise_count_per_phase () =
  (* switch noise present only while closed *)
  let nl = Netlist.create () in
  let out = Netlist.node nl "out" in
  Netlist.switch ~name:"S" ~closed_in:[ 0 ] nl out Netlist.ground 1e3;
  Netlist.capacitor nl out Netlist.ground 1e-9;
  let sys = Compile.compile nl (Clock.make [ 1e-6; 1e-6 ]) in
  Alcotest.(check int) "phase 0 has the switch source" 1
    (Array.length sys.Pwl.phases.(0).Pwl.noise_labels);
  Alcotest.(check int) "phase 1 silent" 0
    (Array.length sys.Pwl.phases.(1).Pwl.noise_labels);
  check_close "A off-phase" 0.0 (Mat.get sys.Pwl.phases.(1).Pwl.a 0 0)

let test_compile_noiseless_flag () =
  let nl = Netlist.create () in
  let out = Netlist.node nl "out" in
  Netlist.resistor ~noisy:false nl out Netlist.ground 1e3;
  Netlist.capacitor nl out Netlist.ground 1e-9;
  let sys = Compile.compile nl (single_phase_clock 1e-6) in
  Alcotest.(check int) "no noise sources" 0
    (Array.length sys.Pwl.phases.(0).Pwl.noise_labels)

let test_compile_g_leak_patch () =
  (* a resistive node left floating in phase 1 gets a leak to ground *)
  let nl = Netlist.create () in
  let mid = Netlist.node nl "mid" in
  let out = Netlist.node nl "out" in
  Netlist.switch ~name:"Sa" ~closed_in:[ 0 ] nl mid Netlist.ground 1e3;
  Netlist.switch ~name:"Sb" ~closed_in:[ 0 ] nl mid out 1e3;
  Netlist.capacitor nl out Netlist.ground 1e-9;
  let sys = Compile.compile nl (Clock.make [ 1e-6; 1e-6 ]) in
  (* thermal equilibrium through the two series switches in phase 0 *)
  let k = Scnoise_core.Covariance.periodic_initial sys in
  check_close ~eps:1e-6 "kT/C with leak patch" (Const.kt () /. 1e-9)
    (Mat.get k 0 0)

let test_temperature_scaling () =
  let nl () =
    let nl = Netlist.create () in
    let out = Netlist.node nl "out" in
    Netlist.resistor nl out Netlist.ground 1e3;
    Netlist.capacitor nl out Netlist.ground 1e-9;
    nl
  in
  let q t =
    let sys = Compile.compile ~temperature:t (nl ()) (single_phase_clock 1e-6) in
    Mat.get sys.Pwl.phases.(0).Pwl.q 0 0
  in
  check_close "Q scales linearly with T" 2.0 (q 600.0 /. q 300.0)

(* --- Pwl --- *)

let build_switched_rc () =
  let nl = Netlist.create () in
  let out = Netlist.node nl "out" in
  Netlist.switch ~name:"S" ~closed_in:[ 0 ] nl out Netlist.ground 1e3;
  Netlist.capacitor nl out Netlist.ground 1e-9;
  Compile.compile nl (Clock.duty ~period:5e-6 ~duty:0.5)

let test_pwl_monodromy_switched_rc () =
  let sys = build_switched_rc () in
  let m = Pwl.monodromy sys in
  (* on-phase decay e^{-dT/RC}, off phase holds *)
  check_close ~eps:1e-12 "monodromy" (exp (-2.5e-6 /. 1e-6)) (Mat.get m 0 0);
  if not (Pwl.is_stable sys) then Alcotest.fail "switched RC must be stable"

let test_pwl_observable () =
  let sys = build_switched_rc () in
  let row = Pwl.observable sys "out" in
  check_close "unit row" 1.0 row.(0);
  (match Pwl.observable sys "nope" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "unknown observable accepted");
  let idx = Pwl.state_index sys "v(out)" in
  Alcotest.(check int) "state index" 0 idx

let test_pwl_phase_at () =
  let sys = build_switched_rc () in
  let p, off = Pwl.phase_at sys 2.6e-6 in
  Alcotest.(check int) "phase" 1 p;
  check_close ~eps:1e-6 "offset" 0.1e-6 off

let test_pwl_validate_catches_bad_tau () =
  let sys = build_switched_rc () in
  let bad =
    {
      sys with
      Pwl.phases =
        Array.map (fun p -> { p with Pwl.tau = p.Pwl.tau *. 2.0 }) sys.Pwl.phases;
    }
  in
  match Pwl.validate bad with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "validate accepted wrong durations"

(* --- Simulate --- *)

let build_driven_rc ?(waveform = fun _ -> 1.0) () =
  let nl = Netlist.create () in
  let vin = Netlist.node nl "vin" in
  let out = Netlist.node nl "out" in
  Netlist.vsource ~name:"Vin" nl vin waveform;
  Netlist.resistor ~name:"R" nl vin out 1e3;
  Netlist.capacitor ~name:"C" nl out Netlist.ground 1e-9;
  Compile.compile nl (single_phase_clock 1e-6)

let test_simulate_step_response () =
  let sys = build_driven_rc () in
  let wf =
    Simulate.transient ~steps_per_phase:256 sys ~periods:5
      ~x0:(Vec.create sys.Pwl.nstates)
  in
  let v = Simulate.observe sys "out" wf in
  let t_end = wf.Simulate.times.(Array.length v - 1) in
  check_close ~eps:1e-6 "RC step response"
    (1.0 -. exp (-.t_end /. 1e-6))
    v.(Array.length v - 1)

let test_simulate_sine_gain () =
  let fsig = 1.59155e5 in
  (* w RC = 1 at 1/(2 pi RC) = 159 kHz *)
  let w = 2.0 *. Float.pi *. fsig in
  let sys = build_driven_rc ~waveform:(fun t -> sin (w *. t)) () in
  (* amplitude check over the trailing samples after settling *)
  let wf =
    Simulate.transient ~steps_per_phase:512 sys ~periods:40 ~x0:[| 0.0 |]
  in
  let v = Simulate.observe sys "out" wf in
  let n = Array.length v in
  let maxlast = ref 0.0 in
  for i = n - (n / 4) to n - 1 do
    maxlast := max !maxlast (abs_float v.(i))
  done;
  (* |H| at w RC = 1 is 1/sqrt 2 *)
  check_close ~eps:2e-2 "sine gain" (1.0 /. sqrt 2.0) !maxlast

let test_simulate_steady_state_dc () =
  (* with a DC input the clock-period map converges to the DC solution *)
  let sys = build_driven_rc () in
  let x = Simulate.steady_state ~steps_per_phase:128 sys ~x0:[| 0.0 |] in
  check_close ~eps:1e-8 "dc steady state" 1.0 x.(0)

let () =
  Alcotest.run "circuit"
    [
      ( "clock",
        [
          Alcotest.test_case "make" `Quick test_clock_make;
          Alcotest.test_case "duty" `Quick test_clock_duty;
          Alcotest.test_case "phase_at" `Quick test_clock_phase_at;
          Alcotest.test_case "two_phase" `Quick test_clock_two_phase;
          Alcotest.test_case "invalid" `Quick test_clock_invalid;
          Alcotest.test_case "boundaries" `Quick test_clock_boundaries;
        ] );
      ( "netlist",
        [
          Alcotest.test_case "validation" `Quick test_netlist_validation;
          Alcotest.test_case "find_node" `Quick test_netlist_find_node;
          Alcotest.test_case "double drive" `Quick test_netlist_double_drive;
          Alcotest.test_case "names" `Quick test_netlist_names;
          Alcotest.test_case "pp" `Quick test_netlist_pp;
        ] );
      ( "compile",
        [
          Alcotest.test_case "rc matrices" `Quick test_compile_rc_matrices;
          Alcotest.test_case "rc kT/C" `Quick test_compile_rc_kt_over_c;
          Alcotest.test_case "divider elimination" `Quick test_compile_divider_elimination;
          Alcotest.test_case "miller integrator" `Quick test_compile_miller_integrator;
          Alcotest.test_case "single stage opamp" `Quick test_compile_single_stage_opamp;
          Alcotest.test_case "phase error" `Quick test_compile_phase_error;
          Alcotest.test_case "no state" `Quick test_compile_no_state_error;
          Alcotest.test_case "floating cap" `Quick test_compile_floating_cap_error;
          Alcotest.test_case "noise per phase" `Quick test_compile_noise_count_per_phase;
          Alcotest.test_case "noiseless flag" `Quick test_compile_noiseless_flag;
          Alcotest.test_case "g_leak patch" `Quick test_compile_g_leak_patch;
          Alcotest.test_case "temperature" `Quick test_temperature_scaling;
        ] );
      ( "pwl",
        [
          Alcotest.test_case "monodromy" `Quick test_pwl_monodromy_switched_rc;
          Alcotest.test_case "observable" `Quick test_pwl_observable;
          Alcotest.test_case "phase_at" `Quick test_pwl_phase_at;
          Alcotest.test_case "validate" `Quick test_pwl_validate_catches_bad_tau;
        ] );
      ( "simulate",
        [
          Alcotest.test_case "step response" `Quick test_simulate_step_response;
          Alcotest.test_case "sine gain" `Quick test_simulate_sine_gain;
          Alcotest.test_case "dc steady state" `Quick test_simulate_steady_state_dc;
        ] );
    ]
