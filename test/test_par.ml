(* The domain pool and the bit-for-bit parity guarantees of the
   parallelised analysis layers: sweeps, Monte-Carlo and covariance
   discretisation must produce identical bits at every job count. *)

module Pool = Scnoise_par.Pool
module Mat = Scnoise_linalg.Mat
module Lu = Scnoise_linalg.Lu
module Sanitize = Scnoise_linalg.Sanitize
module Obs = Scnoise_obs.Obs

let with_pool jobs f =
  let p = Pool.create ~jobs () in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

(* --- pool unit tests --- *)

let test_map_empty () =
  with_pool 4 (fun p ->
      Alcotest.(check (array int)) "empty input" [||] (Pool.map p (fun _ x -> x) [||]))

let test_map_single () =
  with_pool 4 (fun p ->
      Alcotest.(check (array int))
        "one item" [| 42 |]
        (Pool.map p (fun i x -> x + i) [| 42 |]))

let test_map_order_many_items () =
  (* many more items than jobs: every index must land in place *)
  let input = Array.init 1000 (fun i -> i) in
  let expect = Array.map (fun i -> (3 * i) + 1) input in
  with_pool 4 (fun p ->
      Alcotest.(check (array int))
        "1000 items / 4 jobs" expect
        (Pool.map p (fun _ x -> (3 * x) + 1) input))

let test_map_more_jobs_than_items () =
  let input = [| 10; 20; 30 |] in
  with_pool 8 (fun p ->
      Alcotest.(check (array int))
        "3 items / 8 jobs" [| 11; 21; 31 |]
        (Pool.map p (fun _ x -> x + 1) input))

let test_serial_pool_spawns_nothing () =
  with_pool 1 (fun p ->
      Alcotest.(check bool) "jobs=1 is serial" true (Pool.run_serially p);
      Alcotest.(check int) "jobs" 1 (Pool.jobs p);
      let r = Pool.map p (fun i x -> i * x) [| 5; 5; 5 |] in
      Alcotest.(check (array int)) "still maps" [| 0; 5; 10 |] r)

let test_parallel_for_disjoint_writes () =
  let n = 513 in
  let out = Array.make n 0 in
  with_pool 4 (fun p ->
      Pool.parallel_for p ~n (fun i -> out.(i) <- i * i));
  Array.iteri
    (fun i v -> if v <> i * i then Alcotest.failf "index %d: %d" i v)
    out

let test_map_reduce_fixed_order () =
  (* the reduce must visit results strictly in index order *)
  let visited = ref [] in
  let total =
    with_pool 4 (fun p ->
        Pool.map_reduce p ~n:100
          ~map:(fun i -> i)
          ~init:0
          ~merge:(fun acc i ->
            visited := i :: !visited;
            acc + i))
  in
  Alcotest.(check int) "sum" 4950 total;
  Alcotest.(check (list int)) "merge order" (List.init 100 (fun i -> i))
    (List.rev !visited)

exception Boom of int

let test_exception_crosses_join () =
  with_pool 4 (fun p ->
      (match Pool.parallel_for p ~n:500 (fun i -> if i = 57 then raise (Boom i)) with
      | () -> Alcotest.fail "expected Boom"
      | exception Boom i -> Alcotest.(check int) "payload" 57 i);
      (* the pool must stay usable after a poisoned region *)
      let r = Pool.map p (fun _ x -> x * 2) [| 1; 2; 3 |] in
      Alcotest.(check (array int)) "pool survives" [| 2; 4; 6 |] r)

let test_exception_lowest_index_wins () =
  (* single-chunk items so both failures are observed: the re-raised one
     must deterministically be the lowest-indexed *)
  with_pool 2 (fun p ->
      match
        Pool.parallel_for p ~n:2 (fun i ->
            Domain.cpu_relax ();
            raise (Boom i))
      with
      | () -> Alcotest.fail "expected Boom"
      | exception Boom i -> Alcotest.(check int) "lowest index" 0 i)

let test_nested_region_runs_inline () =
  with_pool 4 (fun p ->
      let inner_sum = Atomic.make 0 in
      Pool.parallel_for p ~n:8 (fun _ ->
          (* a nested submission must not deadlock; it runs serially *)
          Pool.parallel_for p ~n:4 (fun j ->
              ignore (Atomic.fetch_and_add inner_sum j)));
      Alcotest.(check int) "all nested items ran" (8 * 6) (Atomic.get inner_sum))

let test_sanitizer_nonfinite_from_worker () =
  (* SCNOISE_SANITIZE must surface its named error across the join
     without wedging the pool *)
  let before = Sanitize.enabled () in
  Sanitize.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Sanitize.set_enabled before)
    (fun () ->
      with_pool 4 (fun p ->
          let bad = Mat.of_arrays [| [| 1.0; 0.0 |]; [| Float.nan; 1.0 |] |] in
          let good = Mat.identity 2 in
          (match
             Pool.parallel_for p ~n:64 (fun i ->
                 ignore (Lu.factor (if i = 13 then bad else good)))
           with
          | () -> Alcotest.fail "expected Sanitize.Nonfinite"
          | exception Sanitize.Nonfinite _ -> ());
          (* no deadlock, and the pool still accepts work *)
          Pool.parallel_for p ~n:8 (fun i -> ignore (Lu.factor good |> fun _ -> i))))

(* --- span re-homing --- *)

let test_worker_spans_rehomed () =
  Obs.disable ();
  Obs.reset ();
  Obs.enable ();
  with_pool 4 (fun p ->
      Obs.with_span "outer" (fun () ->
          Pool.parallel_for p ~n:16 (fun i ->
              Obs.with_span "item" (fun () -> ignore i))));
  Obs.disable ();
  let snap = Obs.snapshot () in
  match snap.Obs.snap_spans with
  | [ outer ] ->
      Alcotest.(check string) "root" "outer" outer.Obs.sp_name;
      (* item spans sit under the per-chunk spans re-homed below outer *)
      let count name =
        Obs.fold_span
          (fun n s -> if s.Obs.sp_name = name then n + 1 else n)
          0 outer
      in
      Alcotest.(check int) "all item spans under outer" 16 (count "item");
      Alcotest.(check bool) "chunk spans recorded" true (count "pool.chunk" > 0)
  | spans -> Alcotest.failf "expected one root span, got %d" (List.length spans)

(* --- bit-for-bit parity of the parallelised analysis layers --- *)

module Psd = Scnoise_core.Psd
module Covariance = Scnoise_core.Covariance
module Vanloan = Scnoise_linalg.Vanloan
module Mc = Scnoise_noise.Monte_carlo
module Grid = Scnoise_util.Grid
module SRC = Scnoise_circuits.Switched_rc
module INT = Scnoise_circuits.Sc_integrator

let check_bits name a b =
  Alcotest.(check int) (name ^ ": length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      if not (Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float b.(i)))
      then
        Alcotest.failf "%s: index %d differs (%.17g vs %.17g)" name i x b.(i))
    a

let check_mat_bits name m1 m2 =
  if Mat.max_abs_diff m1 m2 <> 0.0 then
    Alcotest.failf "%s: matrices differ (max |delta| = %g)" name
      (Mat.max_abs_diff m1 m2)

let sweep_parity name sys output =
  let eng = Psd.prepare ~samples_per_phase:64 sys ~output in
  let freqs = Grid.linspace 0.0 2.5e5 37 in
  let serial = with_pool 1 (fun p -> Psd.sweep ~pool:p eng freqs) in
  let par = with_pool 4 (fun p -> Psd.sweep ~pool:p eng freqs) in
  check_bits (name ^ " sweep") serial par;
  let sdb = with_pool 1 (fun p -> Psd.sweep_db ~pool:p eng freqs) in
  let pdb = with_pool 4 (fun p -> Psd.sweep_db ~pool:p eng freqs) in
  check_bits (name ^ " sweep_db") sdb pdb

let test_sweep_parity_switched_rc () =
  let b = SRC.build SRC.default in
  sweep_parity "switched_rc" b.SRC.sys b.SRC.output

let test_sweep_parity_integrator () =
  let b = INT.build INT.default in
  sweep_parity "sc_integrator" b.INT.sys b.INT.output

let test_mc_parity () =
  let b = SRC.build SRC.default in
  let freqs = Grid.linspace 1e3 1e5 5 in
  let run jobs =
    with_pool jobs (fun p ->
        Mc.estimate ~seed:97L ~paths:6 ~segments_per_path:4 ~pool:p b.SRC.sys
          ~output:b.SRC.output ~freqs)
  in
  let e1 = run 1 and e4 = run 4 in
  check_bits "mc psd" e1.Mc.psd e4.Mc.psd;
  if
    not
      (Int64.equal
         (Int64.bits_of_float e1.Mc.variance)
         (Int64.bits_of_float e4.Mc.variance))
  then
    Alcotest.failf "mc variance differs (%.17g vs %.17g)" e1.Mc.variance
      e4.Mc.variance

let test_covariance_parity () =
  let b = INT.build INT.default in
  let run jobs =
    with_pool jobs (fun p ->
        Covariance.sample ~samples_per_phase:48 ~pool:p b.INT.sys)
  in
  let s1 = run 1 and s4 = run 4 in
  check_mat_bits "k0"
    (Covariance.k_mat s1.Covariance.k0)
    (Covariance.k_mat s4.Covariance.k0);
  check_mat_bits "phi_period" s1.Covariance.phi_period s4.Covariance.phi_period;
  check_mat_bits "q_period" s1.Covariance.q_period s4.Covariance.q_period;
  Array.iteri
    (fun i k ->
      check_mat_bits
        (Printf.sprintf "ks[%d]" i)
        (Covariance.k_mat k)
        (Covariance.k_mat s4.Covariance.ks.(i)))
    s1.Covariance.ks;
  (* and the raw per-interval discretisations *)
  let g1 =
    with_pool 1 (fun p ->
        Covariance.discretized_grid ~samples_per_phase:48 ~pool:p b.INT.sys)
  in
  let g4 =
    with_pool 4 (fun p ->
        Covariance.discretized_grid ~samples_per_phase:48 ~pool:p b.INT.sys)
  in
  Alcotest.(check int) "grid size" (Array.length g1.Covariance.g_disc)
    (Array.length g4.Covariance.g_disc);
  Array.iteri
    (fun i d ->
      check_mat_bits
        (Printf.sprintf "disc[%d].phi" i)
        d.Vanloan.phi g4.Covariance.g_disc.(i).Vanloan.phi;
      check_mat_bits
        (Printf.sprintf "disc[%d].qd" i)
        d.Vanloan.qd g4.Covariance.g_disc.(i).Vanloan.qd)
    g1.Covariance.g_disc

let test_mc_nan_injection_under_jobs () =
  (* A sanitizer trip inside a worker-side Monte-Carlo path must raise
     the named error on the submitting domain, not deadlock. *)
  let before = Sanitize.enabled () in
  Sanitize.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Sanitize.set_enabled before)
    (fun () ->
      with_pool 4 (fun p ->
          let bad = Mat.of_arrays [| [| Float.nan |] |] in
          match
            Pool.map_reduce p ~n:16
              ~map:(fun i ->
                if i = 7 then ignore (Lu.factor bad);
                i)
              ~init:0 ~merge:( + )
          with
          | _ -> Alcotest.fail "expected Sanitize.Nonfinite"
          | exception Sanitize.Nonfinite _ -> ()))

let suite_parity =
  [
    ("sweep jobs=4 == jobs=1 (switched_rc)", `Quick,
     test_sweep_parity_switched_rc);
    ("sweep jobs=4 == jobs=1 (sc_integrator)", `Quick,
     test_sweep_parity_integrator);
    ("monte-carlo jobs=4 == jobs=1, same seed", `Quick, test_mc_parity);
    ("covariance sample jobs=4 == jobs=1", `Quick, test_covariance_parity);
    ("NaN injection under jobs>1 raises Nonfinite", `Quick,
     test_mc_nan_injection_under_jobs);
  ]

let suite_pool =
  [
    ("map: empty input", `Quick, test_map_empty);
    ("map: single item", `Quick, test_map_single);
    ("map: 1000 items over 4 jobs, ordered", `Quick, test_map_order_many_items);
    ("map: more jobs than items", `Quick, test_map_more_jobs_than_items);
    ("jobs=1 bypasses the pool", `Quick, test_serial_pool_spawns_nothing);
    ("parallel_for: disjoint writes", `Quick, test_parallel_for_disjoint_writes);
    ("map_reduce folds in index order", `Quick, test_map_reduce_fixed_order);
    ("exception crosses the join", `Quick, test_exception_crosses_join);
    ("lowest-index exception wins", `Quick, test_exception_lowest_index_wins);
    ("nested regions run inline", `Quick, test_nested_region_runs_inline);
    ("sanitizer Nonfinite from worker", `Quick, test_sanitizer_nonfinite_from_worker);
    ("worker spans re-homed", `Quick, test_worker_spans_rehomed);
  ]

let () =
  Alcotest.run "par" [ ("pool", suite_pool); ("parity", suite_parity) ]
