(* ERC (Scnoise_check) and numeric-sanitizer tests: each bad fixture
   deck trips exactly its rule at the expected file:line:col, every
   bundled circuit and example deck passes clean, and the
   SCNOISE_SANITIZE gate turns silent NaN propagation into a named
   error. *)

module Deck = Scnoise_lang.Deck
module Loc = Scnoise_lang.Loc
module Check = Scnoise_check.Check
module Finding = Scnoise_check.Finding
module Sanitize = Scnoise_linalg.Sanitize
module Lu = Scnoise_linalg.Lu
module Mat = Scnoise_linalg.Mat

let bad_dir = Filename.concat "decks" "bad"

let deck_dir = Filename.concat ".." "examples/decks"

let load path =
  match Deck.load_file path with
  | Ok l -> l
  | Error msg -> Alcotest.failf "%s: %s" path msg

let show fs = String.concat "\n" (List.map Finding.to_string fs)

(* --- bad fixtures: exact rule, severity and caret position --- *)

let expect_one file ~rule ~severity ~line ~col =
  let path = Filename.concat bad_dir file in
  let loaded = load path in
  match Check.check_elab loaded.Deck.elab with
  | [ f ] ->
      Alcotest.(check string) "rule" rule f.Finding.rule;
      Alcotest.(check string) "severity"
        (Finding.severity_label severity)
        (Finding.severity_label f.Finding.severity);
      (match f.Finding.loc with
      | None -> Alcotest.failf "%s: finding has no location" file
      | Some l ->
          Alcotest.(check string) "loc"
            (Printf.sprintf "%s:%d:%d" path line col)
            (Loc.to_string l));
      (* the rendered form carries the caret diagnostics *)
      let r = Finding.render ~source:loaded.Deck.source f in
      if not (String.length r > 0 && String.contains r '^') then
        Alcotest.failf "%s: expected caret in rendering:\n%s" file r
  | fs -> Alcotest.failf "%s: expected exactly one finding, got %d:\n%s" file
            (List.length fs) (show fs)

let test_floating_node () =
  expect_one "floating_node.scn" ~rule:"ERC001-floating-node"
    ~severity:Finding.Error ~line:5 ~col:4

let test_source_short () =
  expect_one "source_short.scn" ~rule:"ERC003-source-short"
    ~severity:Finding.Error ~line:3 ~col:1

let test_phase_range () =
  expect_one "phase_range.scn" ~rule:"ERC005-phase-out-of-range"
    ~severity:Finding.Error ~line:2 ~col:1

let test_noiseless () =
  expect_one "noiseless.scn" ~rule:"ERC006-noiseless"
    ~severity:Finding.Warning ~line:4 ~col:8

let test_unused_param () =
  expect_one "unused_param.scn" ~rule:"ERC007-unused-param"
    ~severity:Finding.Warning ~line:3 ~col:1

let test_structural_singular () =
  expect_one "structural_singular.scn" ~rule:"ERC011-structural-singular"
    ~severity:Finding.Error ~line:6 ~col:8

let test_dead_source () =
  expect_one "dead_source.scn" ~rule:"ERC012-dead-source"
    ~severity:Finding.Warning ~line:7 ~col:1

let test_isolated_output () =
  expect_one "isolated_output.scn" ~rule:"ERC013-output-isolated"
    ~severity:Finding.Warning ~line:8 ~col:4

let test_unit_mismatch () =
  expect_one "unit_mismatch.scn" ~rule:"ERC014-dimension-mismatch"
    ~severity:Finding.Error ~line:3 ~col:11

let test_band_low () =
  expect_one "band_low.scn" ~rule:"ERC015-band-capture"
    ~severity:Finding.Warning ~line:7 ~col:1

(* --- phase-aware passes: the semantic claims behind the rules --- *)

let lu_count () =
  Scnoise_obs.Obs.counter_value "lu_factorizations"
  + Scnoise_obs.Obs.counter_value "clu_factorizations"

(* The admission path (ERC gate, then compile only when clean) must
   reject an ERC011 deck before ANY LU factorisation runs — the whole
   point of predicting singularity structurally.  Bypassing the gate
   reproduces the old behaviour: compile burns the factorisation and
   only post-hoc ERC010 notices. *)
let test_erc011_before_any_lu () =
  let loaded = load (Filename.concat bad_dir "structural_singular.scn") in
  let e = loaded.Deck.elab in
  let before = lu_count () in
  let fs = Check.check_elab e in
  (match
     List.filter (fun f -> f.Finding.rule = "ERC011-structural-singular") fs
   with
  | [ _ ] -> ()
  | _ -> Alcotest.failf "expected one ERC011, got:\n%s" (show fs));
  Alcotest.(check bool) "gate rejects" true (Finding.errors fs > 0);
  Alcotest.(check int) "rejected path runs zero LU factorisations" before
    (lu_count ());
  let module Elab = Scnoise_lang.Elab in
  let module Compile = Scnoise_circuit.Compile in
  let since = Check.ill_conditioned_count () in
  (match Compile.compile e.Elab.netlist e.Elab.clock with
  | exception Compile.Error _ -> ()
  | _ -> ());
  Alcotest.(check bool) "ungated compile burns LU" true (lu_count () > before);
  match Check.ill_conditioned ~since with
  | _ :: _ -> ()
  | [] -> Alcotest.fail "expected post-hoc ERC010 on the ungated path"

(* ERC012 is a theorem, not a heuristic: the compiled system is
   block-diagonal across the cut, so deleting the dead source changes
   the spectrum by exactly zero — bitwise. *)
let test_dead_source_psd_parity () =
  let module Netlist = Scnoise_circuit.Netlist in
  let module Clock = Scnoise_circuit.Clock in
  let module Compile = Scnoise_circuit.Compile in
  let module Pwl = Scnoise_circuit.Pwl in
  let module Psd = Scnoise_core.Psd in
  let build ~island_noisy =
    let nl = Netlist.create () in
    let out = Netlist.node nl "out" and iso = Netlist.node nl "iso" in
    Netlist.resistor ~name:"R1" nl out Netlist.ground 10e3;
    Netlist.capacitor ~name:"C1" nl out Netlist.ground 1e-12;
    Netlist.resistor ~name:"R2" ~noisy:island_noisy nl iso Netlist.ground
      10e3;
    Netlist.capacitor ~name:"C2" nl iso Netlist.ground 1e-12;
    nl
  in
  let clock = Clock.duty ~period:1e-6 ~duty:0.5 in
  let noisy = build ~island_noisy:true in
  (match
     List.filter
       (fun f -> f.Finding.rule = "ERC012-dead-source")
       (Check.check ~output:"out" noisy clock)
   with
  | [ f ] -> Alcotest.(check string) "subject" "R2" f.Finding.subject
  | fs -> Alcotest.failf "expected one ERC012, got:\n%s" (show fs));
  let psd nl =
    let sys = Compile.compile nl clock in
    let output = Pwl.observable sys "out" in
    let eng = Psd.prepare ~samples_per_phase:32 sys ~output in
    Psd.sweep eng [| 1e3; 10e3; 100e3 |]
  in
  let a = psd noisy and b = psd (build ~island_noisy:false) in
  Array.iteri
    (fun i va ->
      if Int64.bits_of_float va <> Int64.bits_of_float b.(i) then
        Alcotest.failf "deleting the dead source changed the psd at %g Hz: \
                        %h vs %h"
          [| 1e3; 10e3; 100e3 |].(i) va b.(i))
    a

(* --- structural rules straight on a programmatic netlist --- *)

let test_cap_island () =
  let module Netlist = Scnoise_circuit.Netlist in
  let module Clock = Scnoise_circuit.Clock in
  let nl = Netlist.create () in
  let a = Netlist.node nl "a" and b = Netlist.node nl "b" in
  (* a is conductively grounded, but the {a, b} capacitor island still
     has no capacitive path to the reference: C_dd is singular. *)
  Netlist.resistor ~name:"R1" nl a Netlist.ground 1e3;
  Netlist.capacitor ~name:"C1" nl a b 1e-12;
  Netlist.resistor ~name:"R2" nl b Netlist.ground 1e3;
  let clock = Clock.duty ~period:1e-6 ~duty:0.5 in
  match Check.check nl clock with
  | [ f ] ->
      Alcotest.(check string) "rule" "ERC002-cap-island" f.Finding.rule;
      (* and the compiler indeed refuses this netlist *)
      let module Compile = Scnoise_circuit.Compile in
      (match Compile.compile nl clock with
      | exception Compile.Error _ -> ()
      | _ -> Alcotest.fail "expected Compile.Error for the cap island")
  | fs -> Alcotest.failf "expected one ERC002, got:\n%s" (show fs)

let test_degenerate_switch () =
  let module Netlist = Scnoise_circuit.Netlist in
  let module Clock = Scnoise_circuit.Clock in
  let nl = Netlist.create () in
  let a = Netlist.node nl "a" in
  Netlist.switch ~name:"S1" ~closed_in:[ 0; 1 ] nl a Netlist.ground 1e3;
  Netlist.capacitor ~name:"C1" nl a Netlist.ground 1e-12;
  let clock = Clock.duty ~period:1e-6 ~duty:0.5 in
  let fs = Check.check nl clock in
  match
    List.filter (fun f -> f.Finding.rule = "ERC004-degenerate-switch") fs
  with
  | [ f ] -> Alcotest.(check string) "subject" "S1" f.Finding.subject
  | _ -> Alcotest.failf "expected one ERC004, got:\n%s" (show fs)

let test_dangling_node () =
  let module Netlist = Scnoise_circuit.Netlist in
  let module Clock = Scnoise_circuit.Clock in
  let nl = Netlist.create () in
  let a = Netlist.node nl "a" and typo = Netlist.node nl "typo" in
  Netlist.resistor ~name:"R1" nl a Netlist.ground 1e3;
  Netlist.capacitor ~name:"C1" nl a Netlist.ground 1e-12;
  Netlist.resistor ~name:"R2" nl a typo 1e3;
  Netlist.capacitor ~name:"C2" nl typo Netlist.ground 1e-12;
  Netlist.resistor ~name:"R3" nl typo Netlist.ground 1e3;
  let nl2 = Netlist.create () in
  let a2 = Netlist.node nl2 "a" in
  let t2 = Netlist.node nl2 "typo" in
  Netlist.resistor ~name:"R1" nl2 a2 Netlist.ground 1e3;
  Netlist.capacitor ~name:"C1" nl2 a2 Netlist.ground 1e-12;
  Netlist.capacitor ~name:"C2" nl2 t2 a2 1e-12;
  let clock = Clock.duty ~period:1e-6 ~duty:0.5 in
  (* three references: clean *)
  (match Check.check ~output:"a" nl clock with
  | [] -> ()
  | fs -> Alcotest.failf "expected clean, got:\n%s" (show fs));
  (* exactly one reference: dangling *)
  match
    List.filter
      (fun f -> f.Finding.rule = "ERC008-dangling-node")
      (Check.check ~output:"a" nl2 clock)
  with
  | [ f ] -> Alcotest.(check string) "subject" "typo" f.Finding.subject
  | fs -> Alcotest.failf "expected one ERC008, got:\n%s" (show fs)

let test_nyquist () =
  let text =
    "S1 a 0 1k closed=0\nC1 a 0 1n\nR1 a 0 1e6\n\
     .clock duty period=1u duty=0.5\n.output a\n.psd fmin=0 fmax=10meg\n"
  in
  match Deck.load_string ~name:"nyquist.scn" text with
  | Error msg -> Alcotest.fail msg
  | Ok loaded -> (
      match
        List.filter
          (fun f -> f.Finding.rule = "ERC009-nyquist")
          (Check.check_elab loaded.Deck.elab)
      with
      | [ f ] ->
          Alcotest.(check string) "severity" "warning"
            (Finding.severity_label f.Finding.severity)
      | fs ->
          Alcotest.failf "expected one ERC009, got:\n%s" (show fs))

(* --- clean passes: no findings on anything we ship --- *)

let check_clean label fs =
  if fs <> [] then Alcotest.failf "%s: unexpected findings:\n%s" label (show fs)

let test_clean_example_decks () =
  List.iter
    (fun file ->
      let loaded = load (Filename.concat deck_dir file) in
      check_clean file (Check.check_elab loaded.Deck.elab))
    [ "sc_integrator.scn"; "switched_rc.scn" ]

let test_clean_bundled_circuits () =
  let module SRC = Scnoise_circuits.Switched_rc in
  let module LP = Scnoise_circuits.Sc_lowpass in
  let module BP = Scnoise_circuits.Sc_bandpass in
  let module INT = Scnoise_circuits.Sc_integrator in
  let module LAD = Scnoise_circuits.Sc_ladder in
  let module DS = Scnoise_circuits.Sc_delta_sigma in
  let run label ~netlist ~clock ~output_node =
    check_clean label (Check.check ~output:output_node netlist clock)
  in
  let b = SRC.build SRC.default in
  run "switched-rc" ~netlist:b.SRC.netlist ~clock:b.SRC.clock
    ~output_node:b.SRC.output_node;
  let b = LP.build LP.default in
  run "lowpass" ~netlist:b.LP.netlist ~clock:b.LP.clock
    ~output_node:b.LP.output_node;
  let b = LP.build LP.single_stage_variant in
  run "lowpass-single-stage" ~netlist:b.LP.netlist ~clock:b.LP.clock
    ~output_node:b.LP.output_node;
  let b = BP.build BP.default in
  run "bandpass" ~netlist:b.BP.netlist ~clock:b.BP.clock
    ~output_node:b.BP.output_node;
  let b = INT.build INT.default in
  run "integrator" ~netlist:b.INT.netlist ~clock:b.INT.clock
    ~output_node:b.INT.output_node;
  let b = LAD.build LAD.default in
  run "ladder" ~netlist:b.LAD.netlist ~clock:b.LAD.clock
    ~output_node:b.LAD.output_node;
  let b = DS.build DS.default in
  run "delta-sigma" ~netlist:b.DS.netlist ~clock:b.DS.clock
    ~output_node:b.DS.output_node

(* --- exit-code policy used by `scnoise check` --- *)

let test_strict_policy () =
  let loaded = load (Filename.concat bad_dir "unused_param.scn") in
  let fs = Check.check_elab loaded.Deck.elab in
  Alcotest.(check int) "errors" 0 (Finding.errors fs);
  Alcotest.(check int) "warnings" 1 (Finding.warnings fs);
  let loaded = load (Filename.concat bad_dir "floating_node.scn") in
  let fs = Check.check_elab loaded.Deck.elab in
  Alcotest.(check int) "errors" 1 (Finding.errors fs)

(* --- numeric sanitizer --- *)

let with_sanitizer b f =
  let before = Sanitize.enabled () in
  Sanitize.set_enabled b;
  Fun.protect ~finally:(fun () -> Sanitize.set_enabled before) f

let nan_matrix () =
  Mat.of_arrays [| [| 1.0; 0.0 |]; [| Float.nan; 1.0 |] |]

let test_sanitize_lu () =
  with_sanitizer true (fun () ->
      match Lu.factor (nan_matrix ()) with
      | exception Sanitize.Nonfinite msg ->
          if not (String.length msg >= 9 && String.sub msg 0 9 = "Lu.factor")
          then Alcotest.failf "unexpected sanitizer message: %s" msg
      | _ -> Alcotest.fail "expected Sanitize.Nonfinite from Lu.factor")

let test_sanitize_off_by_default () =
  with_sanitizer false (fun () ->
      (* without the gate the NaN sails through the factorisation *)
      match Lu.factor (nan_matrix ()) with
      | _ -> ()
      | exception Sanitize.Nonfinite msg ->
          Alcotest.failf "sanitizer fired while disabled: %s" msg)

let test_sanitize_expm () =
  let module Expm = Scnoise_linalg.Expm in
  with_sanitizer true (fun () ->
      match Expm.expm (nan_matrix ()) with
      | exception Sanitize.Nonfinite msg ->
          if not (String.length msg >= 9 && String.sub msg 0 9 = "Expm.expm")
          then Alcotest.failf "unexpected sanitizer message: %s" msg
      | _ -> Alcotest.fail "expected Sanitize.Nonfinite from Expm.expm")

let test_ill_conditioned_counter () =
  let before = Check.ill_conditioned_count () in
  ignore (Lu.factor (Mat.of_arrays [| [| 1.0; 0.0 |]; [| 0.0; 1e-15 |] |]));
  let fs = Check.ill_conditioned ~since:before in
  match fs with
  | [ f ] ->
      Alcotest.(check string) "rule" "ERC010-ill-conditioned" f.Finding.rule
  | _ -> Alcotest.failf "expected one ERC010, got:\n%s" (show fs)

let () =
  Alcotest.run "check"
    [
      ( "bad decks",
        [
          Alcotest.test_case "floating node" `Quick test_floating_node;
          Alcotest.test_case "source short" `Quick test_source_short;
          Alcotest.test_case "phase range" `Quick test_phase_range;
          Alcotest.test_case "noiseless" `Quick test_noiseless;
          Alcotest.test_case "unused param" `Quick test_unused_param;
          Alcotest.test_case "structural singular" `Quick
            test_structural_singular;
          Alcotest.test_case "dead source" `Quick test_dead_source;
          Alcotest.test_case "isolated output" `Quick test_isolated_output;
          Alcotest.test_case "unit mismatch" `Quick test_unit_mismatch;
          Alcotest.test_case "band low" `Quick test_band_low;
        ] );
      ( "phase-aware",
        [
          Alcotest.test_case "erc011 before any lu" `Quick
            test_erc011_before_any_lu;
          Alcotest.test_case "dead source psd parity" `Quick
            test_dead_source_psd_parity;
        ] );
      ( "structural",
        [
          Alcotest.test_case "cap island" `Quick test_cap_island;
          Alcotest.test_case "degenerate switch" `Quick
            test_degenerate_switch;
          Alcotest.test_case "dangling node" `Quick test_dangling_node;
          Alcotest.test_case "nyquist" `Quick test_nyquist;
        ] );
      ( "clean",
        [
          Alcotest.test_case "example decks" `Quick test_clean_example_decks;
          Alcotest.test_case "bundled circuits" `Quick
            test_clean_bundled_circuits;
        ] );
      ( "policy",
        [ Alcotest.test_case "strict counts" `Quick test_strict_policy ] );
      ( "sanitizer",
        [
          Alcotest.test_case "lu nan" `Quick test_sanitize_lu;
          Alcotest.test_case "off by default" `Quick
            test_sanitize_off_by_default;
          Alcotest.test_case "expm nan" `Quick test_sanitize_expm;
          Alcotest.test_case "ill-conditioned counter" `Quick
            test_ill_conditioned_counter;
        ] );
    ]
