(* Property tests for the flat complex kernels and their in-place
   variants: the unboxed representation and the allocation-free hot
   path must be bit-compatible with straightforward reference
   implementations on random inputs, and the demodulated sweep backend
   must agree with the classic per-frequency factorization on the
   bundled circuits. *)

module Cx = Scnoise_linalg.Cx
module Cvec = Scnoise_linalg.Cvec
module Cmat = Scnoise_linalg.Cmat
module Clu = Scnoise_linalg.Clu
module Mat = Scnoise_linalg.Mat
module Ctrap = Scnoise_ode.Ctrapezoid
module Bvp = Scnoise_core.Periodic_bvp
module Psd = Scnoise_core.Psd
module Db = Scnoise_util.Db
module LP = Scnoise_circuits.Sc_lowpass
module RC = Scnoise_circuits.Switched_rc

(* --- random generators (seeded, n <= 12) --- *)

type spec = { n : int; seed : int }

let spec_gen =
  QCheck.Gen.(
    int_range 1 12 >>= fun n ->
    int_range 0 1_000_000 >|= fun seed -> { n; seed })

let spec_arb =
  QCheck.make
    ~print:(fun s -> Printf.sprintf "{n=%d; seed=%d}" s.n s.seed)
    spec_gen

let rng_of spec = Random.State.make [| spec.seed; spec.n; 0x5ca1e |]

let rnd rng = Random.State.float rng 4.0 -. 2.0

let random_cvec rng n = Cvec.init n (fun _ -> Cx.make (rnd rng) (rnd rng))

let random_cmat rng n = Cmat.init n n (fun _ _ -> Cx.make (rnd rng) (rnd rng))

(* Diagonally dominant so LU never hits the singularity guard. *)
let random_dd_cmat rng n =
  Cmat.init n n (fun i j ->
      if i = j then Cx.make (float_of_int n +. 2.0 +. rnd rng) (rnd rng)
      else Cx.make (0.3 *. rnd rng) (0.3 *. rnd rng))

let bits z = (Int64.bits_of_float z.Cx.re, Int64.bits_of_float z.Cx.im)

let cvec_equal_bits a b =
  Cvec.dim a = Cvec.dim b
  &&
  let ok = ref true in
  for i = 0 to Cvec.dim a - 1 do
    if bits (Cvec.get a i) <> bits (Cvec.get b i) then ok := false
  done;
  !ok

(* --- reference implementations over Cx arrays --- *)

let ref_add a b = Array.map2 Cx.( +: ) a b

let ref_scale s a = Array.map (Cx.( *: ) s) a

let ref_axpy s x y = Array.map2 (fun xi yi -> Cx.( +: ) (Cx.( *: ) s xi) yi) x y

let ref_mul_vec m v =
  let n = Array.length v in
  Array.init n (fun i ->
      let acc = ref Cx.zero in
      for j = 0 to n - 1 do
        acc := Cx.( +: ) !acc (Cx.( *: ) (Cmat.get m i j) v.(j))
      done;
      !acc)

(* --- kernel vs reference parity --- *)

let prop_add_into =
  QCheck.Test.make ~count:120 ~name:"add_into matches reference" spec_arb
    (fun spec ->
      let rng = rng_of spec in
      let a = random_cvec rng spec.n and b = random_cvec rng spec.n in
      let out = Cvec.create spec.n in
      Cvec.add_into a b ~into:out;
      let expect = ref_add (Cvec.to_array a) (Cvec.to_array b) in
      cvec_equal_bits out (Cvec.of_array expect)
      && cvec_equal_bits (Cvec.add a b) out)

let prop_scale_into =
  QCheck.Test.make ~count:120 ~name:"scale_into matches reference" spec_arb
    (fun spec ->
      let rng = rng_of spec in
      let s = Cx.make (rnd rng) (rnd rng) in
      let a = random_cvec rng spec.n in
      let out = Cvec.create spec.n in
      Cvec.scale_into s a ~into:out;
      cvec_equal_bits out (Cvec.of_array (ref_scale s (Cvec.to_array a))))

let prop_axpy_into =
  QCheck.Test.make ~count:120 ~name:"axpy_into matches reference" spec_arb
    (fun spec ->
      let rng = rng_of spec in
      let s = Cx.make (rnd rng) (rnd rng) in
      let x = random_cvec rng spec.n and y = random_cvec rng spec.n in
      let out = Cvec.copy y in
      Cvec.axpy_into ~s ~x ~into:out;
      let expect = ref_axpy s (Cvec.to_array x) (Cvec.to_array y) in
      cvec_equal_bits out (Cvec.of_array expect))

let prop_mul_vec_into =
  QCheck.Test.make ~count:120 ~name:"mul_vec_into matches reference" spec_arb
    (fun spec ->
      let rng = rng_of spec in
      let m = random_cmat rng spec.n in
      let v = random_cvec rng spec.n in
      let out = Cvec.create spec.n in
      Cmat.mul_vec_into m v ~into:out;
      let expect = ref_mul_vec m (Cvec.to_array v) in
      cvec_equal_bits out (Cvec.of_array expect)
      && cvec_equal_bits (Cmat.mul_vec m v) out)

(* --- pivoted complex LU --- *)

let prop_lu_solve =
  QCheck.Test.make ~count:80 ~name:"LU solve reconstructs rhs" spec_arb
    (fun spec ->
      let rng = rng_of spec in
      let m = random_dd_cmat rng spec.n in
      let x = random_cvec rng spec.n in
      let b = Cmat.mul_vec m x in
      let lu = Clu.factor m in
      let got = Clu.solve lu b in
      Cvec.max_abs_diff got x < 1e-9)

let prop_factor_into_parity =
  QCheck.Test.make ~count:80 ~name:"factor_into == factor (bitwise)" spec_arb
    (fun spec ->
      let rng = rng_of spec in
      let m = random_dd_cmat rng spec.n in
      let b = random_cvec rng spec.n in
      let fresh = Clu.factor m in
      let reused = Clu.create spec.n in
      (* factor something else first: state must be fully overwritten *)
      Clu.factor_into reused (random_dd_cmat rng spec.n);
      Clu.factor_into reused m;
      cvec_equal_bits (Clu.solve fresh b) (Clu.solve reused b))

let prop_solve_into_aliasing =
  QCheck.Test.make ~count:80 ~name:"solve_into tolerates into == b" spec_arb
    (fun spec ->
      let rng = rng_of spec in
      let m = random_dd_cmat rng spec.n in
      let b = random_cvec rng spec.n in
      let lu = Clu.factor m in
      let work = Array.make (2 * spec.n) 0.0 in
      let expect = Clu.solve lu b in
      let separate = Cvec.create spec.n in
      Clu.solve_into lu ~work ~b ~into:separate;
      let aliased = Cvec.copy b in
      Clu.solve_into lu ~work ~b:aliased ~into:aliased;
      cvec_equal_bits separate expect && cvec_equal_bits aliased expect)

(* --- steppers --- *)

let random_stable_a rng n =
  Mat.init n n (fun i j ->
      if i = j then -.(float_of_int n +. 1.5) *. 1e6 +. (1e5 *. rnd rng)
      else 3e5 *. rnd rng)

let prop_step_into =
  QCheck.Test.make ~count:60 ~name:"step_into == step (bitwise)" spec_arb
    (fun spec ->
      let rng = rng_of spec in
      let a = random_stable_a rng spec.n in
      let omega = 2.0 *. Float.pi *. (10.0 ** (2.0 +. Random.State.float rng 4.0)) in
      let st = Ctrap.make ~a ~shift:(Cx.make 0.0 omega) ~h:1e-7 in
      let p = random_cvec rng spec.n in
      let k0 = random_cvec rng spec.n and k1 = random_cvec rng spec.n in
      let expect = Ctrap.step st ~p ~k0 ~k1 in
      let out = Cvec.create spec.n in
      Ctrap.step_into st ~p ~k0 ~k1 ~into:out;
      let aliased = Cvec.copy p in
      Ctrap.step_into st ~p:aliased ~k0 ~k1 ~into:aliased;
      cvec_equal_bits out expect && cvec_equal_bits aliased expect)

let prop_reusable_retune =
  QCheck.Test.make ~count:60 ~name:"retuned reusable == fresh make (bitwise)"
    spec_arb (fun spec ->
      let rng = rng_of spec in
      let a = random_stable_a rng spec.n in
      let h = 1e-7 in
      let st = Ctrap.make_reusable ~a ~h in
      let p = random_cvec rng spec.n in
      let k0 = random_cvec rng spec.n and k1 = random_cvec rng spec.n in
      let out = Cvec.create spec.n in
      List.for_all
        (fun f ->
          let omega = 2.0 *. Float.pi *. f in
          Ctrap.retune st ~omega;
          Ctrap.step_reusable_into st ~p ~k0 ~k1 ~into:out;
          let fresh = Ctrap.make ~a ~shift:(Cx.make 0.0 omega) ~h in
          cvec_equal_bits out (Ctrap.step fresh ~p ~k0 ~k1))
        (* revisit a frequency to exercise the retune cache *)
        [ 0.0; 1e3; 2.7e5; 1e3; 4.4e6 ])

(* --- trajectory buffers are distinct --- *)

let test_traj_distinct () =
  let b = LP.build LP.default in
  let cov = Scnoise_core.Covariance.sample ~samples_per_phase:32 b.LP.sys in
  let bvp = Bvp.of_sampled cov in
  let traj = Bvp.alloc_traj bvp in
  let snapshot = Array.map Cvec.copy traj in
  (* mutating one entry must leave every other entry untouched *)
  Cvec.set traj.(0) 0 (Cx.make 42.0 (-42.0));
  for i = 1 to Array.length traj - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "traj.(%d) unchanged" i)
      true
      (Cvec.max_abs_diff traj.(i) snapshot.(i) = 0.0)
  done;
  let p = Bvp.particular bvp ~omega:6e3 ~forcing:(fun _ ->
      Cvec.init (Bvp.n_states bvp) (fun _ -> Cx.one))
  in
  Cvec.set p.(1) 0 (Cx.make 7.0 7.0);
  Alcotest.(check bool) "particular entries distinct" true
    (Cx.modulus (Cvec.get p.(2) 0) < 1e6)

(* --- demod sweep vs reference factorization --- *)

let demod_parity name prep freqs () =
  let eng = prep () in
  let with_reference flag f =
    let prev = Bvp.reference_enabled () in
    Bvp.set_reference flag;
    Fun.protect ~finally:(fun () -> Bvp.set_reference prev) f
  in
  List.iter
    (fun f ->
      let fast = with_reference false (fun () -> Psd.psd eng ~f) in
      let slow = with_reference true (fun () -> Psd.psd eng ~f) in
      let ddb = abs_float (Db.of_power fast -. Db.of_power slow) in
      Alcotest.(check bool)
        (Printf.sprintf "%s @ %g Hz within 1e-9 dB (got %.3e)" name f ddb)
        true (ddb <= 1e-9))
    freqs

let prep_lowpass () =
  let b = LP.build LP.default in
  Psd.prepare ~samples_per_phase:64 b.LP.sys ~output:b.LP.output

let prep_switched_rc () =
  let b = RC.build RC.default in
  Psd.prepare ~samples_per_phase:64 b.RC.sys ~output:b.RC.output

(* --- GC budget: the hot loop must stay allocation-light --- *)

let test_gc_budget () =
  let b = LP.build LP.default in
  let eng = Psd.prepare ~samples_per_phase:128 b.LP.sys ~output:b.LP.output in
  let freqs = [| 100.0; 1e3; 4e3; 8e3; 16e3 |] in
  (* warm up: fills per-domain scratch and the stepper caches *)
  Array.iter (fun f -> ignore (Psd.psd eng ~f)) freqs;
  let reps = 400 in
  let a0 = Gc.allocated_bytes () in
  for _ = 1 to reps do
    Array.iter (fun f -> ignore (Psd.psd eng ~f)) freqs
  done;
  let per_point =
    (Gc.allocated_bytes () -. a0) /. float_of_int (reps * Array.length freqs)
  in
  (* measured ~2.4 KB/point demod, ~129 KB/point on the reference
     backend (seed: ~1 MB); the budgets leave headroom for GC-boundary
     accounting noise while still failing loudly if boxing returns to
     the hot path *)
  let budget = if Bvp.reference_enabled () then 400_000.0 else 48_000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "per-point allocation %.0f B under %.0f KB budget"
       per_point (budget /. 1000.0))
    true (per_point < budget)

(* --- blocked multi-RHS kernels ---

   Every blocked kernel promises per-column bitwise identity with its
   scalar counterpart; these properties check that promise on random
   sizes, widths and seeds, including widths that don't divide
   anything nicely. *)

module Lu = Scnoise_linalg.Lu
module Pool = Scnoise_par.Pool
module Obs = Scnoise_obs.Obs
module SI = Scnoise_circuits.Sc_integrator

type bspec = { bn : int; bw : int; bseed : int }

let bspec_arb =
  QCheck.make
    ~print:(fun s -> Printf.sprintf "{n=%d; w=%d; seed=%d}" s.bn s.bw s.bseed)
    QCheck.Gen.(
      int_range 1 10 >>= fun n ->
      int_range 1 17 >>= fun w ->
      int_range 0 1_000_000 >|= fun seed -> { bn = n; bw = w; bseed = seed })

let brng s = Random.State.make [| s.bseed; s.bn; s.bw; 0xb10c |]

(* a random panel together with its columns as standalone vectors *)
let random_panel rng ~dim ~width =
  let cols = Array.init width (fun _ -> random_cvec rng dim) in
  let p = Cvec.panel_create ~dim ~width in
  Array.iteri (fun b v -> Cvec.panel_set_col v p ~width ~col:b) cols;
  (p, cols)

let random_dd_mat rng n =
  Mat.init n n (fun i j ->
      if i = j then float_of_int n +. 2.0 +. rnd rng else 0.3 *. rnd rng)

let prop_lu_block =
  QCheck.Test.make ~count:120
    ~name:"Lu.solve_block_into == per-column solve_complex_into (bitwise)"
    bspec_arb (fun s ->
      let rng = brng s in
      let lu = Lu.factor (random_dd_mat rng s.bn) in
      let p, cols = random_panel rng ~dim:s.bn ~width:s.bw in
      let out = Cvec.panel_create ~dim:s.bn ~width:s.bw in
      Lu.solve_block_into lu ~width:s.bw ~b:p ~into:out;
      let scalar = Cvec.create s.bn and got = Cvec.create s.bn in
      let ok = ref true in
      Array.iteri
        (fun b v ->
          Lu.solve_complex_into lu ~b:v ~into:scalar;
          Cvec.panel_get_col out ~width:s.bw ~col:b ~into:got;
          if not (cvec_equal_bits got scalar) then ok := false)
        cols;
      !ok)

let prop_clu_block =
  QCheck.Test.make ~count:120
    ~name:"Clu.solve_block_into == per-column solve_into (bitwise)" bspec_arb
    (fun s ->
      let rng = brng s in
      let lu = Clu.factor (random_dd_cmat rng s.bn) in
      let p, cols = random_panel rng ~dim:s.bn ~width:s.bw in
      let out = Cvec.panel_create ~dim:s.bn ~width:s.bw in
      Clu.solve_block_into lu ~width:s.bw ~b:p ~into:out;
      let work = Array.make (2 * s.bn) 0.0 in
      let scalar = Cvec.create s.bn and got = Cvec.create s.bn in
      let ok = ref true in
      Array.iteri
        (fun b v ->
          Clu.solve_into lu ~work ~b:v ~into:scalar;
          Cvec.panel_get_col out ~width:s.bw ~col:b ~into:got;
          if not (cvec_equal_bits got scalar) then ok := false)
        cols;
      !ok)

let prop_step_block =
  QCheck.Test.make ~count:80
    ~name:"step_block_into == per-column step_demod_into (bitwise)" bspec_arb
    (fun s ->
      let rng = brng s in
      let a = random_stable_a rng s.bn in
      let st = Ctrap.make_demod ~a ~h:1e-7 in
      (* random per-column frequencies so the refinement counts genuinely
         differ within the block (exercising the convergence mask); skip
         draws where some column needs the complex-LU fallback *)
      let omegas =
        Array.init s.bw (fun _ ->
            2.0 *. Float.pi *. (10.0 ** (1.0 +. Random.State.float rng 4.0)))
      in
      let iters = Array.map (fun omega -> Ctrap.demod_iters st ~omega) omegas in
      QCheck.assume (Array.for_all (fun m -> m >= 0) iters);
      let p, cols = random_panel rng ~dim:s.bn ~width:s.bw in
      let k0 = random_cvec rng s.bn and k1 = random_cvec rng s.bn in
      let work = Ctrap.block_work ~dim:s.bn ~width:s.bw in
      let out = Cvec.panel_create ~dim:s.bn ~width:s.bw in
      Ctrap.step_block_into st ~work ~omegas ~iters ~p ~k0 ~k1 ~into:out;
      let dwork = Ctrap.demod_work s.bn in
      let scalar = Cvec.create s.bn and got = Cvec.create s.bn in
      let ok = ref true in
      Array.iteri
        (fun b v ->
          Ctrap.step_demod_into st ~work:dwork ~omega:omegas.(b)
            ~iters:iters.(b) ~p:v ~k0 ~k1 ~into:scalar;
          Cvec.panel_get_col out ~width:s.bw ~col:b ~into:got;
          if not (cvec_equal_bits got scalar) then ok := false)
        cols;
      !ok)

(* the panel kernels must reject in-place operation: the gather /
   zero-then-accumulate phases read their inputs after writing *)
let test_block_aliasing () =
  let n = 3 and width = 4 in
  let rng = Random.State.make [| 0xa11a5 |] in
  let rnd () = Random.State.float rng 2.0 -. 1.0 in
  let rejects name f =
    let raised =
      try
        f ();
        false
      with Invalid_argument _ -> true
    in
    Alcotest.(check bool) (name ^ " rejects aliasing") true raised
  in
  let p = Cvec.panel_create ~dim:n ~width in
  Array.iteri (fun k _ -> p.(k) <- rnd ()) p;
  let lu = Lu.factor (random_dd_mat rng n) in
  rejects "Lu.solve_block_into" (fun () ->
      Lu.solve_block_into lu ~width ~b:p ~into:p);
  let clu = Clu.factor (random_dd_cmat rng n) in
  rejects "Clu.solve_block_into" (fun () ->
      Clu.solve_block_into clu ~width ~b:p ~into:p);
  rejects "Cmat.mul_block_into" (fun () ->
      Cmat.mul_block_into (random_cmat rng n) ~width ~x:p ~into:p);
  let st = Ctrap.make_demod ~a:(random_stable_a rng n) ~h:1e-7 in
  let omegas = Array.make width 1e3 in
  let iters = Array.map (fun omega -> Ctrap.demod_iters st ~omega) omegas in
  let work = Ctrap.block_work ~dim:n ~width in
  let k0 = random_cvec rng n in
  rejects "Ctrapezoid.step_block_into" (fun () ->
      Ctrap.step_block_into st ~work ~omegas ~iters ~p ~k0 ~k1:k0 ~into:p)

(* --- batched sweeps --- *)

let counter = Obs.counter_value

let test_sweep_edges () =
  let b = LP.build LP.default in
  let eng = Psd.prepare ~samples_per_phase:32 b.LP.sys ~output:b.LP.output in
  let pool = Pool.create ~jobs:2 () in
  let regions0 = counter "pool.regions" in
  Alcotest.(check (array (float 0.0)))
    "empty sweep returns [||]" [||]
    (Psd.sweep ~pool eng [||]);
  Alcotest.(check int) "empty sweep leaves the pool untouched" regions0
    (counter "pool.regions");
  let blocks0 = counter "bvp_block_solves" in
  let single = Psd.sweep ~pool eng [| 1234.5 |] in
  Alcotest.(check int) "single-point sweep allocates no panel" blocks0
    (counter "bvp_block_solves");
  Alcotest.(check bool) "single-point sweep matches psd" true
    (Int64.bits_of_float single.(0)
    = Int64.bits_of_float (Psd.psd eng ~f:1234.5));
  let rejects f =
    try
      f ();
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "sweep rejects batch < 1" true
    (rejects (fun () -> ignore (Psd.sweep ~pool ~batch:0 eng [| 1e3; 2e3 |])));
  Alcotest.(check bool) "set_default_batch rejects 0" true
    (rejects (fun () -> Psd.set_default_batch 0))

let float_array_bits_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
       a b

let test_sweep_batch_parity () =
  let b = LP.build LP.default in
  let eng = Psd.prepare ~samples_per_phase:64 b.LP.sys ~output:b.LP.output in
  (* crosses the refinable band's edge (~4 kHz at this deck), so both
     batched tiles and scalar-fallback tiles are exercised *)
  let freqs = Scnoise_util.Grid.linspace 100.0 16_000.0 41 in
  let serial = Pool.create ~jobs:1 () in
  let par = Pool.create ~jobs:4 () in
  let reference = Psd.sweep ~pool:serial ~batch:1 eng freqs in
  List.iter
    (fun (name, pool, batch) ->
      Alcotest.(check bool)
        (Printf.sprintf "batched sweep (%s) bit-identical to scalar" name)
        true
        (float_array_bits_equal (Psd.sweep ~pool ~batch eng freqs) reference))
    [
      ("b8 jobs1", serial, 8); ("b8 jobs4", par, 8); ("b3 jobs4", par, 3);
      ("b16 jobs4", par, 16);
    ]

let batched_vs_reference name prep freqs () =
  let eng = prep () in
  let with_reference flag f =
    let prev = Bvp.reference_enabled () in
    Bvp.set_reference flag;
    Fun.protect ~finally:(fun () -> Bvp.set_reference prev) f
  in
  let pool = Pool.create ~jobs:1 () in
  let fast = with_reference false (fun () -> Psd.sweep ~pool ~batch:8 eng freqs) in
  let slow = with_reference true (fun () -> Psd.sweep ~pool eng freqs) in
  Array.iteri
    (fun i f ->
      let ddb = abs_float (Db.of_power fast.(i) -. Db.of_power slow.(i)) in
      Alcotest.(check bool)
        (Printf.sprintf "%s @ %g Hz within 1e-9 dB (got %.3e)" name f ddb)
        true (ddb <= 1e-9))
    freqs

let prep_integrator () =
  let b = SI.build SI.default in
  Psd.prepare ~samples_per_phase:64 b.SI.sys ~output:b.SI.output

let qsuite name tests =
  (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "kernels"
    [
      qsuite "cvec/cmat"
        [ prop_add_into; prop_scale_into; prop_axpy_into; prop_mul_vec_into ];
      qsuite "clu"
        [ prop_lu_solve; prop_factor_into_parity; prop_solve_into_aliasing ];
      qsuite "steppers" [ prop_step_into; prop_reusable_retune ];
      ( "bvp",
        [
          Alcotest.test_case "trajectory buffers distinct" `Quick
            test_traj_distinct;
          Alcotest.test_case "demod parity lowpass" `Quick
            (demod_parity "lowpass" prep_lowpass
               [ 10.0; 320.0; 1e3; 3.3e3; 7.7e3; 1.6e4 ]);
          Alcotest.test_case "demod parity switched_rc" `Quick
            (demod_parity "switched_rc" prep_switched_rc
               [ 10.0; 1e3; 2.5e4; 3e5 ]);
          Alcotest.test_case "hot loop allocation budget" `Slow test_gc_budget;
        ] );
      qsuite "blocked kernels" [ prop_lu_block; prop_clu_block; prop_step_block ];
      ( "batched sweeps",
        [
          Alcotest.test_case "panel kernels reject aliasing" `Quick
            test_block_aliasing;
          Alcotest.test_case "sweep edge cases" `Quick test_sweep_edges;
          Alcotest.test_case "batched == scalar at any width and jobs" `Quick
            test_sweep_batch_parity;
          Alcotest.test_case "batched vs reference backend (switched_rc)"
            `Quick
            (batched_vs_reference "switched_rc" prep_switched_rc
               [| 10.0; 320.0; 1e3; 2.5e4 |]);
          Alcotest.test_case "batched vs reference backend (sc_integrator)"
            `Quick
            (batched_vs_reference "sc_integrator" prep_integrator
               [| 10.0; 1e3; 3.3e3 |]);
        ] );
    ]
