(* Property tests for the flat complex kernels and their in-place
   variants: the unboxed representation and the allocation-free hot
   path must be bit-compatible with straightforward reference
   implementations on random inputs, and the demodulated sweep backend
   must agree with the classic per-frequency factorization on the
   bundled circuits. *)

module Cx = Scnoise_linalg.Cx
module Cvec = Scnoise_linalg.Cvec
module Cmat = Scnoise_linalg.Cmat
module Clu = Scnoise_linalg.Clu
module Mat = Scnoise_linalg.Mat
module Ctrap = Scnoise_ode.Ctrapezoid
module Bvp = Scnoise_core.Periodic_bvp
module Psd = Scnoise_core.Psd
module Db = Scnoise_util.Db
module LP = Scnoise_circuits.Sc_lowpass
module RC = Scnoise_circuits.Switched_rc

(* --- random generators (seeded, n <= 12) --- *)

type spec = { n : int; seed : int }

let spec_gen =
  QCheck.Gen.(
    int_range 1 12 >>= fun n ->
    int_range 0 1_000_000 >|= fun seed -> { n; seed })

let spec_arb =
  QCheck.make
    ~print:(fun s -> Printf.sprintf "{n=%d; seed=%d}" s.n s.seed)
    spec_gen

let rng_of spec = Random.State.make [| spec.seed; spec.n; 0x5ca1e |]

let rnd rng = Random.State.float rng 4.0 -. 2.0

let random_cvec rng n = Cvec.init n (fun _ -> Cx.make (rnd rng) (rnd rng))

let random_cmat rng n = Cmat.init n n (fun _ _ -> Cx.make (rnd rng) (rnd rng))

(* Diagonally dominant so LU never hits the singularity guard. *)
let random_dd_cmat rng n =
  Cmat.init n n (fun i j ->
      if i = j then Cx.make (float_of_int n +. 2.0 +. rnd rng) (rnd rng)
      else Cx.make (0.3 *. rnd rng) (0.3 *. rnd rng))

let bits z = (Int64.bits_of_float z.Cx.re, Int64.bits_of_float z.Cx.im)

let cvec_equal_bits a b =
  Cvec.dim a = Cvec.dim b
  &&
  let ok = ref true in
  for i = 0 to Cvec.dim a - 1 do
    if bits (Cvec.get a i) <> bits (Cvec.get b i) then ok := false
  done;
  !ok

(* --- reference implementations over Cx arrays --- *)

let ref_add a b = Array.map2 Cx.( +: ) a b

let ref_scale s a = Array.map (Cx.( *: ) s) a

let ref_axpy s x y = Array.map2 (fun xi yi -> Cx.( +: ) (Cx.( *: ) s xi) yi) x y

let ref_mul_vec m v =
  let n = Array.length v in
  Array.init n (fun i ->
      let acc = ref Cx.zero in
      for j = 0 to n - 1 do
        acc := Cx.( +: ) !acc (Cx.( *: ) (Cmat.get m i j) v.(j))
      done;
      !acc)

(* --- kernel vs reference parity --- *)

let prop_add_into =
  QCheck.Test.make ~count:120 ~name:"add_into matches reference" spec_arb
    (fun spec ->
      let rng = rng_of spec in
      let a = random_cvec rng spec.n and b = random_cvec rng spec.n in
      let out = Cvec.create spec.n in
      Cvec.add_into a b ~into:out;
      let expect = ref_add (Cvec.to_array a) (Cvec.to_array b) in
      cvec_equal_bits out (Cvec.of_array expect)
      && cvec_equal_bits (Cvec.add a b) out)

let prop_scale_into =
  QCheck.Test.make ~count:120 ~name:"scale_into matches reference" spec_arb
    (fun spec ->
      let rng = rng_of spec in
      let s = Cx.make (rnd rng) (rnd rng) in
      let a = random_cvec rng spec.n in
      let out = Cvec.create spec.n in
      Cvec.scale_into s a ~into:out;
      cvec_equal_bits out (Cvec.of_array (ref_scale s (Cvec.to_array a))))

let prop_axpy_into =
  QCheck.Test.make ~count:120 ~name:"axpy_into matches reference" spec_arb
    (fun spec ->
      let rng = rng_of spec in
      let s = Cx.make (rnd rng) (rnd rng) in
      let x = random_cvec rng spec.n and y = random_cvec rng spec.n in
      let out = Cvec.copy y in
      Cvec.axpy_into ~s ~x ~into:out;
      let expect = ref_axpy s (Cvec.to_array x) (Cvec.to_array y) in
      cvec_equal_bits out (Cvec.of_array expect))

let prop_mul_vec_into =
  QCheck.Test.make ~count:120 ~name:"mul_vec_into matches reference" spec_arb
    (fun spec ->
      let rng = rng_of spec in
      let m = random_cmat rng spec.n in
      let v = random_cvec rng spec.n in
      let out = Cvec.create spec.n in
      Cmat.mul_vec_into m v ~into:out;
      let expect = ref_mul_vec m (Cvec.to_array v) in
      cvec_equal_bits out (Cvec.of_array expect)
      && cvec_equal_bits (Cmat.mul_vec m v) out)

(* --- pivoted complex LU --- *)

let prop_lu_solve =
  QCheck.Test.make ~count:80 ~name:"LU solve reconstructs rhs" spec_arb
    (fun spec ->
      let rng = rng_of spec in
      let m = random_dd_cmat rng spec.n in
      let x = random_cvec rng spec.n in
      let b = Cmat.mul_vec m x in
      let lu = Clu.factor m in
      let got = Clu.solve lu b in
      Cvec.max_abs_diff got x < 1e-9)

let prop_factor_into_parity =
  QCheck.Test.make ~count:80 ~name:"factor_into == factor (bitwise)" spec_arb
    (fun spec ->
      let rng = rng_of spec in
      let m = random_dd_cmat rng spec.n in
      let b = random_cvec rng spec.n in
      let fresh = Clu.factor m in
      let reused = Clu.create spec.n in
      (* factor something else first: state must be fully overwritten *)
      Clu.factor_into reused (random_dd_cmat rng spec.n);
      Clu.factor_into reused m;
      cvec_equal_bits (Clu.solve fresh b) (Clu.solve reused b))

let prop_solve_into_aliasing =
  QCheck.Test.make ~count:80 ~name:"solve_into tolerates into == b" spec_arb
    (fun spec ->
      let rng = rng_of spec in
      let m = random_dd_cmat rng spec.n in
      let b = random_cvec rng spec.n in
      let lu = Clu.factor m in
      let work = Array.make (2 * spec.n) 0.0 in
      let expect = Clu.solve lu b in
      let separate = Cvec.create spec.n in
      Clu.solve_into lu ~work ~b ~into:separate;
      let aliased = Cvec.copy b in
      Clu.solve_into lu ~work ~b:aliased ~into:aliased;
      cvec_equal_bits separate expect && cvec_equal_bits aliased expect)

(* --- steppers --- *)

let random_stable_a rng n =
  Mat.init n n (fun i j ->
      if i = j then -.(float_of_int n +. 1.5) *. 1e6 +. (1e5 *. rnd rng)
      else 3e5 *. rnd rng)

let prop_step_into =
  QCheck.Test.make ~count:60 ~name:"step_into == step (bitwise)" spec_arb
    (fun spec ->
      let rng = rng_of spec in
      let a = random_stable_a rng spec.n in
      let omega = 2.0 *. Float.pi *. (10.0 ** (2.0 +. Random.State.float rng 4.0)) in
      let st = Ctrap.make ~a ~shift:(Cx.make 0.0 omega) ~h:1e-7 in
      let p = random_cvec rng spec.n in
      let k0 = random_cvec rng spec.n and k1 = random_cvec rng spec.n in
      let expect = Ctrap.step st ~p ~k0 ~k1 in
      let out = Cvec.create spec.n in
      Ctrap.step_into st ~p ~k0 ~k1 ~into:out;
      let aliased = Cvec.copy p in
      Ctrap.step_into st ~p:aliased ~k0 ~k1 ~into:aliased;
      cvec_equal_bits out expect && cvec_equal_bits aliased expect)

let prop_reusable_retune =
  QCheck.Test.make ~count:60 ~name:"retuned reusable == fresh make (bitwise)"
    spec_arb (fun spec ->
      let rng = rng_of spec in
      let a = random_stable_a rng spec.n in
      let h = 1e-7 in
      let st = Ctrap.make_reusable ~a ~h in
      let p = random_cvec rng spec.n in
      let k0 = random_cvec rng spec.n and k1 = random_cvec rng spec.n in
      let out = Cvec.create spec.n in
      List.for_all
        (fun f ->
          let omega = 2.0 *. Float.pi *. f in
          Ctrap.retune st ~omega;
          Ctrap.step_reusable_into st ~p ~k0 ~k1 ~into:out;
          let fresh = Ctrap.make ~a ~shift:(Cx.make 0.0 omega) ~h in
          cvec_equal_bits out (Ctrap.step fresh ~p ~k0 ~k1))
        (* revisit a frequency to exercise the retune cache *)
        [ 0.0; 1e3; 2.7e5; 1e3; 4.4e6 ])

(* --- trajectory buffers are distinct --- *)

let test_traj_distinct () =
  let b = LP.build LP.default in
  let cov = Scnoise_core.Covariance.sample ~samples_per_phase:32 b.LP.sys in
  let bvp = Bvp.of_sampled cov in
  let traj = Bvp.alloc_traj bvp in
  let snapshot = Array.map Cvec.copy traj in
  (* mutating one entry must leave every other entry untouched *)
  Cvec.set traj.(0) 0 (Cx.make 42.0 (-42.0));
  for i = 1 to Array.length traj - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "traj.(%d) unchanged" i)
      true
      (Cvec.max_abs_diff traj.(i) snapshot.(i) = 0.0)
  done;
  let p = Bvp.particular bvp ~omega:6e3 ~forcing:(fun _ ->
      Cvec.init (Bvp.n_states bvp) (fun _ -> Cx.one))
  in
  Cvec.set p.(1) 0 (Cx.make 7.0 7.0);
  Alcotest.(check bool) "particular entries distinct" true
    (Cx.modulus (Cvec.get p.(2) 0) < 1e6)

(* --- demod sweep vs reference factorization --- *)

let demod_parity name prep freqs () =
  let eng = prep () in
  let with_reference flag f =
    let prev = Bvp.reference_enabled () in
    Bvp.set_reference flag;
    Fun.protect ~finally:(fun () -> Bvp.set_reference prev) f
  in
  List.iter
    (fun f ->
      let fast = with_reference false (fun () -> Psd.psd eng ~f) in
      let slow = with_reference true (fun () -> Psd.psd eng ~f) in
      let ddb = abs_float (Db.of_power fast -. Db.of_power slow) in
      Alcotest.(check bool)
        (Printf.sprintf "%s @ %g Hz within 1e-9 dB (got %.3e)" name f ddb)
        true (ddb <= 1e-9))
    freqs

let prep_lowpass () =
  let b = LP.build LP.default in
  Psd.prepare ~samples_per_phase:64 b.LP.sys ~output:b.LP.output

let prep_switched_rc () =
  let b = RC.build RC.default in
  Psd.prepare ~samples_per_phase:64 b.RC.sys ~output:b.RC.output

(* --- GC budget: the hot loop must stay allocation-light --- *)

let test_gc_budget () =
  let b = LP.build LP.default in
  let eng = Psd.prepare ~samples_per_phase:128 b.LP.sys ~output:b.LP.output in
  let freqs = [| 100.0; 1e3; 4e3; 8e3; 16e3 |] in
  (* warm up: fills per-domain scratch and the stepper caches *)
  Array.iter (fun f -> ignore (Psd.psd eng ~f)) freqs;
  let reps = 400 in
  let a0 = Gc.allocated_bytes () in
  for _ = 1 to reps do
    Array.iter (fun f -> ignore (Psd.psd eng ~f)) freqs
  done;
  let per_point =
    (Gc.allocated_bytes () -. a0) /. float_of_int (reps * Array.length freqs)
  in
  (* measured ~2.4 KB/point demod, ~129 KB/point on the reference
     backend (seed: ~1 MB); the budgets leave headroom for GC-boundary
     accounting noise while still failing loudly if boxing returns to
     the hot path *)
  let budget = if Bvp.reference_enabled () then 400_000.0 else 48_000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "per-point allocation %.0f B under %.0f KB budget"
       per_point (budget /. 1000.0))
    true (per_point < budget)

let qsuite name tests =
  (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "kernels"
    [
      qsuite "cvec/cmat"
        [ prop_add_into; prop_scale_into; prop_axpy_into; prop_mul_vec_into ];
      qsuite "clu"
        [ prop_lu_solve; prop_factor_into_parity; prop_solve_into_aliasing ];
      qsuite "steppers" [ prop_step_into; prop_reusable_retune ];
      ( "bvp",
        [
          Alcotest.test_case "trajectory buffers distinct" `Quick
            test_traj_distinct;
          Alcotest.test_case "demod parity lowpass" `Quick
            (demod_parity "lowpass" prep_lowpass
               [ 10.0; 320.0; 1e3; 3.3e3; 7.7e3; 1.6e4 ]);
          Alcotest.test_case "demod parity switched_rc" `Quick
            (demod_parity "switched_rc" prep_switched_rc
               [ 10.0; 1e3; 2.5e4; 3e5 ]);
          Alcotest.test_case "hot loop allocation budget" `Slow test_gc_budget;
        ] );
    ]
