module Mat = Scnoise_linalg.Mat
module Eig = Scnoise_linalg.Eig
module Db = Scnoise_util.Db
module Const = Scnoise_util.Const
module Pwl = Scnoise_circuit.Pwl
module Psd = Scnoise_core.Psd
module Covariance = Scnoise_core.Covariance
module Contrib = Scnoise_core.Contrib
module SRC = Scnoise_circuits.Switched_rc
module LP = Scnoise_circuits.Sc_lowpass
module BP = Scnoise_circuits.Sc_bandpass
module INT = Scnoise_circuits.Sc_integrator
module Ideal_sc = Scnoise_analytic.Ideal_sc
module LAD = Scnoise_circuits.Sc_ladder
module DS = Scnoise_circuits.Sc_delta_sigma

let check_close ?(eps = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > eps *. (1.0 +. abs_float expected) then
    Alcotest.failf "%s: expected %.17g, got %.17g" msg expected actual

(* --- switched RC builder --- *)

let test_src_build () =
  let b = SRC.build SRC.default in
  Alcotest.(check int) "one state" 1 b.SRC.sys.Pwl.nstates;
  if not (Pwl.is_stable b.SRC.sys) then Alcotest.fail "stable";
  let p = SRC.with_ratio ~t_over_rc:10.0 () in
  check_close "ratio" 10.0 (p.SRC.period /. (p.SRC.r *. p.SRC.c))

let test_src_invalid_duty () =
  match SRC.build { SRC.default with SRC.duty = 1.5 } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad duty accepted"

(* --- low-pass --- *)

let test_lp_build_stable () =
  let b = LP.build LP.default in
  Alcotest.(check int) "states" 4 b.LP.sys.Pwl.nstates;
  if not (Pwl.is_stable b.LP.sys) then Alcotest.fail "lowpass must be stable";
  (* deadbeat design: C3 = C2 puts the ideal pole at z = 0 *)
  let radius = Eig.spectral_radius (Pwl.monodromy b.LP.sys) in
  if radius > 0.05 then Alcotest.failf "expected near-deadbeat, radius %g" radius

let test_lp_single_stage_builds () =
  let b = LP.build LP.single_stage_variant in
  (* single-stage op-amp replaces the behavioral state with a cap node *)
  Alcotest.(check int) "states" 4 b.LP.sys.Pwl.nstates;
  if not (Pwl.is_stable b.LP.sys) then Alcotest.fail "stable"

let test_lp_lowpass_shape () =
  let b = LP.build LP.default in
  let eng = Psd.prepare ~samples_per_phase:64 b.LP.sys ~output:b.LP.output in
  let s100 = Psd.psd eng ~f:100.0 in
  let s2k = Psd.psd eng ~f:2000.0 in
  let s_clk = Psd.psd eng ~f:b.LP.params.LP.clock_hz in
  if not (s100 > s2k && s2k > s_clk) then
    Alcotest.fail "expected low-pass roll-off into the clock notch"

let test_lp_notch_at_clock () =
  (* sampled-data character: dips near multiples of the clock *)
  let b = LP.build LP.default in
  let eng = Psd.prepare ~samples_per_phase:64 b.LP.sys ~output:b.LP.output in
  let notch = Psd.psd_db eng ~f:4000.0 in
  let side = Psd.psd_db eng ~f:6000.0 in
  if side -. notch < 5.0 then
    Alcotest.failf "expected a >5 dB notch at the clock: %.1f vs %.1f" notch side

let test_lp_ugf_raises_noise () =
  (* Fig. 9 trend: higher op-amp bandwidth -> more aliased noise *)
  let base = LP.build LP.default in
  let fast =
    LP.build
      { LP.default with LP.opamp = LP.Integrator { ugf = 9.0 *. Float.pi *. 1e7 } }
  in
  let s sys out = Psd.psd (Psd.prepare ~samples_per_phase:64 sys ~output:out) ~f:100.0 in
  if s fast.LP.sys fast.LP.output <= s base.LP.sys base.LP.output then
    Alcotest.fail "10x op-amp bandwidth should raise the low-frequency plateau"

let test_lp_r4_lowers_sampled_noise () =
  (* Fig. 8 trend: larger input-branch switch resistance slows the
     sampling transients and lowers the plateau *)
  let base = LP.build LP.default in
  let slow = LP.build { LP.default with LP.r4 = 800.0 } in
  let s b = Psd.psd (Psd.prepare ~samples_per_phase:64 b.LP.sys ~output:b.LP.output) ~f:100.0 in
  if s slow >= s base then Alcotest.fail "R4 x10 should lower the plateau"

let test_lp_contributions () =
  let b = LP.build LP.default in
  let labels = Contrib.source_labels b.LP.sys in
  if not (List.mem "OA.vn" labels) then Alcotest.fail "op-amp noise missing";
  if not (List.mem "S4" labels) then Alcotest.fail "switch noise missing";
  (* with the huge injected generator, the op-amp dominates *)
  let parts = Contrib.per_source_psd ~samples_per_phase:48 b.LP.sys ~output:b.LP.output ~f:100.0 in
  let total = List.fold_left (fun a (_, s) -> a +. s) 0.0 parts in
  let oa = List.assoc "OA.vn" parts in
  if oa /. total < 0.99 then
    Alcotest.failf "op-amp should dominate, got %.3f" (oa /. total)

(* --- integrator --- *)

let test_int_build_pole () =
  let b = INT.build INT.default in
  if not (Pwl.is_stable b.INT.sys) then Alcotest.fail "damped integrator stable";
  check_close "ideal pole" 0.9 (INT.dt_pole INT.default);
  (* the slow Floquet multiplier should be near the ideal DT pole *)
  let mults = Pwl.floquet_multipliers b.INT.sys in
  let slowest =
    Array.fold_left (fun acc m -> max acc (Scnoise_linalg.Cx.modulus m)) 0.0 mults
  in
  if abs_float (slowest -. 0.9) > 0.02 then
    Alcotest.failf "slow multiplier %.4f vs ideal 0.9" slowest

let test_int_lossless_has_unit_multiplier () =
  let b = INT.build { INT.default with INT.cd = 0.0 } in
  let radius = Eig.spectral_radius (Pwl.monodromy b.INT.sys) in
  if abs_float (radius -. 1.0) > 1e-6 then
    Alcotest.failf "lossless integrator should be marginal, radius %g" radius;
  if Pwl.is_stable ~margin:1e-9 b.INT.sys then
    Alcotest.fail "marginal system must not be reported stable"

let test_int_noise_follows_dt_model () =
  (* the low-frequency noise of the damped integrator matches the ideal
     discrete-time model driven by the kT/C charge of Cs within a couple
     of dB (switch and parasitic details account for the rest) *)
  let p = INT.default in
  let b = INT.build p in
  let eng = Psd.prepare ~samples_per_phase:96 b.INT.sys ~output:b.INT.output in
  let pole = INT.dt_pole p in
  (* per-cycle injected charge noise referred to the output:
     (Cs/Ci)^2 * 2kT/Cs (both phases sample) *)
  let var =
    2.0 *. Ideal_sc.kt_over_c p.INT.cs *. ((p.INT.cs /. p.INT.ci) ** 2.0)
  in
  let period = 1.0 /. p.INT.clock_hz in
  List.iter
    (fun f ->
      let model = Ideal_sc.first_order_dt_psd ~var ~period ~pole f in
      let s = Psd.psd eng ~f in
      let diff = abs_float (Db.of_power s -. Db.of_power model) in
      if diff > 3.5 then
        Alcotest.failf "f=%g: %.1f dB from the DT model" f diff)
    [ 100.0; 1e3; 5e3 ]

let test_int_variance_scaling () =
  (* total output noise scales like 1/(1 - pole^2): stronger damping,
     less accumulated noise *)
  let var cd =
    let b = INT.build { INT.default with INT.cd } in
    Covariance.average_variance
      (Covariance.sample ~samples_per_phase:64 b.INT.sys)
      b.INT.output
  in
  let v_light = var 0.5e-12 and v_heavy = var 4e-12 in
  if v_light <= v_heavy then
    Alcotest.fail "weaker damping must accumulate more noise"

(* --- ladder --- *)

let test_ladder_build () =
  let b = LAD.build (LAD.with_stages 6) in
  Alcotest.(check int) "states = stages" 6 b.LAD.sys.Pwl.nstates;
  if not (Pwl.is_stable b.LAD.sys) then Alcotest.fail "stable"

let test_ladder_thermal_equilibrium () =
  (* every node of a passive RC network at uniform temperature holds
     kT/C, switch or not: the periodic covariance diagonal must be kT/C
     at every grid point *)
  let b = LAD.build (LAD.with_stages 5) in
  let cov = Covariance.sample ~samples_per_phase:48 b.LAD.sys in
  let ktc = Const.kt () /. b.LAD.params.LAD.c in
  Array.iter
    (fun k ->
      let k = Covariance.k_mat k in
      for i = 0 to 4 do
        check_close ~eps:1e-6 "kT/C at every node" ktc (Mat.get k i i)
      done)
    cov.Covariance.ks

let test_ladder_single_stage_is_switched_rc () =
  (* one stage with matched values must reproduce the switched RC *)
  let p =
    {
      (LAD.with_stages 1) with
      LAD.r_switch = 1e3;
      c = 1e-9;
      clock_hz = 2e5;
      duty = 0.5;
    }
  in
  let b = LAD.build p in
  let eng = Psd.prepare b.LAD.sys ~output:b.LAD.output in
  let a =
    Scnoise_analytic.Switched_rc.make ~r:1e3 ~c:1e-9 ~period:5e-6 ~duty:0.5 ()
  in
  List.iter
    (fun f ->
      let d =
        abs_float
          (Db.of_power (Psd.psd eng ~f)
          -. Db.of_power (Scnoise_analytic.Switched_rc.psd a f))
      in
      if d > 0.02 then Alcotest.failf "1-stage ladder vs closed form: %g" d)
    [ 1e4; 1e5 ]

let test_ladder_invalid () =
  match LAD.build (LAD.with_stages 0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "0 stages accepted"

(* --- four-phase (non-overlapping) clock coverage --- *)

let test_nonoverlap_integrator () =
  (* the integrator rebuilt on a 4-interval non-overlapping clock: same
     low-frequency noise as the plain 2-phase version within ~1 dB *)
  let module Netlist = Scnoise_circuit.Netlist in
  let module Clock = Scnoise_circuit.Clock in
  let module Compile = Scnoise_circuit.Compile in
  let p = INT.default in
  let nl = Netlist.create () in
  let vin = Netlist.node nl "vin" in
  let na = Netlist.node nl "na" in
  let nb = Netlist.node nl "nb" in
  let vg = Netlist.node nl "vg" in
  let vo = Netlist.node nl "vo" in
  Netlist.vsource_dc ~name:"Vin" nl vin 0.0;
  (* phases: 0 = phi1, 1 = gap, 2 = phi2, 3 = gap *)
  Netlist.switch ~name:"S1" ~closed_in:[ 0 ] nl na vin p.INT.r_switch;
  Netlist.switch ~name:"S2" ~closed_in:[ 0 ] nl nb Netlist.ground p.INT.r_switch;
  Netlist.switch ~name:"S3" ~closed_in:[ 2 ] nl na Netlist.ground p.INT.r_switch;
  Netlist.switch ~name:"S4" ~closed_in:[ 2 ] nl nb vg p.INT.r_switch;
  Netlist.capacitor ~name:"Cs" nl na nb p.INT.cs;
  Netlist.capacitor ~name:"Cpa" nl na Netlist.ground p.INT.c_par;
  Netlist.capacitor ~name:"Cpb" nl nb Netlist.ground p.INT.c_par;
  Netlist.capacitor ~name:"Ci" nl vg vo p.INT.ci;
  Netlist.opamp_integrator ~name:"OA" nl ~plus:Netlist.ground ~minus:vg
    ~out:vo ~ugf:p.INT.ugf;
  let nd = Netlist.node nl "nd" in
  Netlist.switch ~name:"S5" ~closed_in:[ 0 ] nl nd vo p.INT.r_switch;
  Netlist.switch ~name:"S6" ~closed_in:[ 2 ] nl nd vg p.INT.r_switch;
  Netlist.capacitor ~name:"Cd" nl nd Netlist.ground p.INT.cd;
  let clock =
    Clock.two_phase ~gap_fraction:0.02 ~period:(1.0 /. p.INT.clock_hz) ()
  in
  let sys = Compile.compile nl clock in
  Alcotest.(check int) "phases" 4 (Pwl.n_phases sys);
  if not (Pwl.is_stable sys) then Alcotest.fail "stable with gaps";
  let output = Pwl.observable sys "vo" in
  let eng4 = Psd.prepare ~samples_per_phase:48 sys ~output in
  let b2 = INT.build p in
  let eng2 = Psd.prepare ~samples_per_phase:48 b2.INT.sys ~output:b2.INT.output in
  let d =
    abs_float (Db.of_power (Psd.psd eng4 ~f:1e3) -. Db.of_power (Psd.psd eng2 ~f:1e3))
  in
  if d > 1.0 then Alcotest.failf "4-phase vs 2-phase: %g dB" d

(* --- band-pass --- *)

let test_bp_build_stable () =
  let b = BP.build BP.default in
  Alcotest.(check int) "states" 9 b.BP.sys.Pwl.nstates;
  if not (Pwl.is_stable b.BP.sys) then Alcotest.fail "bandpass stable"

let test_bp_peak_near_f0 () =
  let b = BP.build BP.default in
  let eng = Psd.prepare ~samples_per_phase:48 b.BP.sys ~output:b.BP.output in
  let freqs = Scnoise_util.Grid.linspace 1e3 2e4 39 in
  let s = Psd.sweep eng freqs in
  let imax = ref 0 in
  Array.iteri (fun i v -> if v > s.(!imax) then imax := i) s;
  let fpeak = freqs.(!imax) in
  if abs_float (fpeak -. 8e3) > 1.5e3 then
    Alcotest.failf "peak at %g, expected near 8 kHz" fpeak;
  (* and it is a real peak: > 10 dB above the low-frequency floor *)
  if Db.of_power s.(!imax) -. Db.of_power s.(0) < 10.0 then
    Alcotest.fail "peak should stand >10 dB above the floor"

let test_bp_design_q_controls_damping () =
  let hi_q = BP.design ~clock_hz:128e3 ~f0:8e3 ~q:2.5 () in
  let lo_q = BP.design ~clock_hz:128e3 ~f0:8e3 ~q:1.0 () in
  if hi_q.BP.cd >= lo_q.BP.cd then Alcotest.fail "higher Q needs less damping";
  let b = BP.build hi_q in
  if not (Pwl.is_stable b.BP.sys) then Alcotest.fail "hi-Q stable"

let test_bp_design_q_limit () =
  match BP.design ~clock_hz:128e3 ~f0:8e3 ~q:8.0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "q above the topology limit accepted"

let test_bp_design_f0_moves_peak () =
  let probe f0 =
    let b = BP.build (BP.design ~clock_hz:128e3 ~f0 ~q:2.0 ()) in
    let eng = Psd.prepare ~samples_per_phase:32 b.BP.sys ~output:b.BP.output in
    let freqs = Scnoise_util.Grid.linspace 1e3 2e4 39 in
    let s = Psd.sweep eng freqs in
    let imax = ref 0 in
    Array.iteri (fun i v -> if v > s.(!imax) then imax := i) s;
    freqs.(!imax)
  in
  let p4 = probe 4e3 and p12 = probe 12e3 in
  if p12 <= p4 then Alcotest.fail "peak should track the design frequency"

let test_bp_design_validation () =
  match BP.design ~clock_hz:128e3 ~f0:64e3 ~q:2.0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "f0 too close to clock accepted"

(* --- delta-sigma loop filter --- *)

let test_ds_build_stable () =
  let b = DS.build DS.default in
  Alcotest.(check int) "states" 10 b.DS.sys.Pwl.nstates;
  if not (Pwl.is_stable b.DS.sys) then Alcotest.fail "stable";
  (* the linearised loop poles land near the design value |z| ~ 0.79 *)
  let radius = Eig.spectral_radius (Pwl.monodromy b.DS.sys) in
  if abs_float (radius -. 0.79) > 0.05 then
    Alcotest.failf "loop radius %.3f vs designed ~0.79" radius

let test_ds_second_stage_noise_suppressed () =
  (* the defining delta-sigma property: in-band, noise entering at the
     second stage is attenuated by the first integrator's gain, so the
     stage-1 branches dominate the budget *)
  let b = DS.build DS.default in
  let parts =
    Contrib.per_source_psd ~samples_per_phase:32 b.DS.sys ~output:b.DS.output
      ~f:2e3
  in
  let total = List.fold_left (fun a (_, s) -> a +. s) 0.0 parts in
  let share prefix =
    List.fold_left
      (fun a (l, s) ->
        if String.length l >= String.length prefix
           && String.sub l 0 (String.length prefix) = prefix
        then a +. s
        else a)
      0.0 parts
    /. total
  in
  let stage1 = share "Bin" +. share "Bfb1" in
  let stage2 = share "Bc1" +. share "Bfb2" in
  if stage1 < 0.7 then
    Alcotest.failf "stage-1 branches should dominate in band: %.2f" stage1;
  if stage2 > 0.1 then
    Alcotest.failf "stage-2 noise should be suppressed in band: %.2f" stage2

let test_ds_shaping_rolloff () =
  (* the closed loop attenuates the output noise towards Nyquist *)
  let b = DS.build DS.default in
  let eng = Psd.prepare ~samples_per_phase:48 b.DS.sys ~output:b.DS.output in
  let inband = Psd.psd eng ~f:2e3 in
  let high = Psd.psd eng ~f:4e5 in
  if Db.of_power inband -. Db.of_power high < 10.0 then
    Alcotest.fail "expected >10 dB between in-band and near-Nyquist"

let () =
  Alcotest.run "circuits"
    [
      ( "switched_rc",
        [
          Alcotest.test_case "build" `Quick test_src_build;
          Alcotest.test_case "invalid duty" `Quick test_src_invalid_duty;
        ] );
      ( "sc_lowpass",
        [
          Alcotest.test_case "build/stable" `Quick test_lp_build_stable;
          Alcotest.test_case "single stage" `Quick test_lp_single_stage_builds;
          Alcotest.test_case "low-pass shape" `Quick test_lp_lowpass_shape;
          Alcotest.test_case "clock notch" `Quick test_lp_notch_at_clock;
          Alcotest.test_case "ugf trend" `Quick test_lp_ugf_raises_noise;
          Alcotest.test_case "r4 trend" `Quick test_lp_r4_lowers_sampled_noise;
          Alcotest.test_case "contributions" `Slow test_lp_contributions;
        ] );
      ( "sc_integrator",
        [
          Alcotest.test_case "pole" `Quick test_int_build_pole;
          Alcotest.test_case "lossless marginal" `Quick test_int_lossless_has_unit_multiplier;
          Alcotest.test_case "dt model" `Quick test_int_noise_follows_dt_model;
          Alcotest.test_case "variance scaling" `Quick test_int_variance_scaling;
        ] );
      ( "sc_ladder",
        [
          Alcotest.test_case "build" `Quick test_ladder_build;
          Alcotest.test_case "thermal equilibrium" `Quick test_ladder_thermal_equilibrium;
          Alcotest.test_case "1-stage = switched rc" `Quick test_ladder_single_stage_is_switched_rc;
          Alcotest.test_case "invalid" `Quick test_ladder_invalid;
          Alcotest.test_case "non-overlapping clock" `Quick test_nonoverlap_integrator;
        ] );
      ( "sc_delta_sigma",
        [
          Alcotest.test_case "build/stable" `Quick test_ds_build_stable;
          Alcotest.test_case "stage-2 suppressed" `Quick test_ds_second_stage_noise_suppressed;
          Alcotest.test_case "shaping" `Quick test_ds_shaping_rolloff;
        ] );
      ( "sc_bandpass",
        [
          Alcotest.test_case "build/stable" `Quick test_bp_build_stable;
          Alcotest.test_case "peak near f0" `Quick test_bp_peak_near_f0;
          Alcotest.test_case "q design" `Quick test_bp_design_q_controls_damping;
          Alcotest.test_case "q limit" `Quick test_bp_design_q_limit;
          Alcotest.test_case "f0 design" `Quick test_bp_design_f0_moves_peak;
          Alcotest.test_case "design validation" `Quick test_bp_design_validation;
        ] );
    ]
