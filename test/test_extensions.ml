(* Tests for the LPTV transfer-function engine, the frequency-domain
   noise baseline, and the instantaneous-PSD / integrated-noise
   extensions of the core engine. *)

module Cx = Scnoise_linalg.Cx
module Db = Scnoise_util.Db
module Grid = Scnoise_util.Grid
module Const = Scnoise_util.Const
module Clock = Scnoise_circuit.Clock
module Netlist = Scnoise_circuit.Netlist
module Compile = Scnoise_circuit.Compile
module Pwl = Scnoise_circuit.Pwl
module Psd = Scnoise_core.Psd
module Transfer = Scnoise_core.Transfer
module Fd = Scnoise_noise.Freq_domain
module A_src = Scnoise_analytic.Switched_rc
module SRC = Scnoise_circuits.Switched_rc
module LP = Scnoise_circuits.Sc_lowpass

let check_close ?(eps = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > eps *. (1.0 +. abs_float expected) then
    Alcotest.failf "%s: expected %.17g, got %.17g" msg expected actual

let driven_rc r c =
  let nl = Netlist.create () in
  let vin = Netlist.node nl "vin" in
  let out = Netlist.node nl "out" in
  Netlist.vsource ~name:"Vin" nl vin (fun _ -> 0.0);
  Netlist.resistor ~name:"R" nl vin out r;
  Netlist.capacitor nl out Netlist.ground c;
  let sys = Compile.compile nl (Clock.make [ 1e-6 ]) in
  (sys, Pwl.observable sys "out")

(* --- Transfer --- *)

let test_transfer_lti_gain () =
  let r = 1e3 and c = 1e-9 in
  let sys, out = driven_rc r c in
  let tr = Transfer.prepare ~samples_per_phase:64 sys ~output:out in
  List.iter
    (fun f ->
      let h = Transfer.gain tr ~input:0 ~f in
      let w_rc = 2.0 *. Float.pi *. f *. r *. c in
      let expected_mag = 1.0 /. sqrt (1.0 +. (w_rc *. w_rc)) in
      (* 1e-4: the engine mixes an exact-exponential homogeneous part
         with a trapezoidal particular part, leaving an O(h^2) floor *)
      check_close ~eps:1e-4 (Printf.sprintf "|H| at %g" f) expected_mag
        (Cx.modulus h);
      let expected_phase = -.atan w_rc in
      check_close ~eps:1e-4 (Printf.sprintf "arg H at %g" f) expected_phase
        (Cx.arg h))
    [ 0.0; 1e4; 1.59155e5; 1e6 ]

let test_transfer_lti_no_harmonics () =
  (* a time-invariant circuit has no frequency translation *)
  let sys, out = driven_rc 1e3 1e-9 in
  let tr = Transfer.prepare ~samples_per_phase:64 sys ~output:out in
  let h = Transfer.harmonics tr ~input:0 ~f:1e4 ~k_range:3 in
  Alcotest.(check int) "7 harmonics" 7 (Array.length h);
  Array.iteri
    (fun idx hk ->
      let k = idx - 3 in
      if k <> 0 && Cx.modulus hk > 1e-4 then
        Alcotest.failf "H_%d should vanish for LTI, got %g" k (Cx.modulus hk))
    h

let test_transfer_lowpass_baseband_gain () =
  (* the continuous-time average gain of the SC low-pass at DC is 1.5:
     the output sits at (C1/C3) Vin = 3 Vin during the integrating phase
     and droops to ~0 during the sampling phase (verified against
     large-signal simulation) *)
  let b = LP.build LP.default in
  let tr = Transfer.prepare ~samples_per_phase:384 b.LP.sys ~output:b.LP.output in
  check_close ~eps:2e-3 "baseband dc gain" 1.5
    (Cx.modulus (Transfer.gain tr ~input:0 ~f:1.0))

let test_transfer_lowpass_has_harmonics () =
  (* the switched filter translates frequencies: k != 0 harmonics exist *)
  let b = LP.build LP.default in
  let tr = Transfer.prepare ~samples_per_phase:96 b.LP.sys ~output:b.LP.output in
  let h = Transfer.harmonics tr ~input:0 ~f:100.0 ~k_range:2 in
  let h1 = Cx.modulus h.(3) in
  if h1 < 0.01 then
    Alcotest.failf "expected a substantial first harmonic, got %g" h1

let test_transfer_input_validation () =
  let sys, out = driven_rc 1e3 1e-9 in
  let tr = Transfer.prepare sys ~output:out in
  Alcotest.(check int) "inputs" 1 (Transfer.n_inputs tr);
  (match Transfer.gain tr ~input:5 ~f:1.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad input index accepted");
  match Transfer.harmonics tr ~input:0 ~f:1.0 ~k_range:(-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative k_range accepted"

let test_transfer_cap_coupled_highpass () =
  (* vin -C- out (R to ground): H = jwRC/(1+jwRC); the source couples
     only through Edot (du/dt), so this exercises the derivative path *)
  let r = 1e4 and c = 1e-9 in
  let nl = Netlist.create () in
  let vin = Netlist.node nl "vin" in
  let out = Netlist.node nl "out" in
  Netlist.vsource ~name:"Vin" nl vin (fun _ -> 0.0);
  Netlist.capacitor ~name:"C" nl vin out c;
  Netlist.resistor ~name:"R" ~noisy:false nl out Netlist.ground r;
  let sys = Compile.compile nl (Clock.make [ 1e-6 ]) in
  let tr = Transfer.prepare ~samples_per_phase:64 sys ~output:(Pwl.observable sys "out") in
  List.iter
    (fun f ->
      let w_rc = 2.0 *. Float.pi *. f *. r *. c in
      let expected = w_rc /. sqrt (1.0 +. (w_rc *. w_rc)) in
      check_close ~eps:2e-4 (Printf.sprintf "|H| highpass at %g" f) expected
        (Cx.modulus (Transfer.gain tr ~input:0 ~f)))
    [ 1e3; 1.59155e4; 1e5 ]

(* --- Freq_domain --- *)

let switched_rc () = SRC.build (SRC.with_ratio ~t_over_rc:5.0 ~duty:0.5 ())

let analytic (b : SRC.built) =
  let p = b.SRC.params in
  A_src.make ~r:p.SRC.r ~c:p.SRC.c ~period:p.SRC.period ~duty:p.SRC.duty ()

let test_fd_converges_to_closed_form () =
  let b = switched_rc () in
  let a = analytic b in
  let fd = Fd.prepare ~samples_per_phase:96 b.SRC.sys ~output:b.SRC.output in
  let f = 1e4 in
  let err k =
    abs_float (Db.of_power (Fd.psd fd ~f ~k_max:k) -. Db.of_power (A_src.psd a f))
  in
  let e0 = err 0 and e5 = err 5 and e20 = err 20 in
  if not (e0 > e5 && e5 > e20) then
    Alcotest.failf "truncation error should fall with K: %g %g %g" e0 e5 e20;
  if e20 > 0.15 then Alcotest.failf "K=20 should be within 0.15 dB, got %g" e20

let test_fd_k0_underestimates () =
  (* the baseband term alone misses all aliased noise *)
  let b = switched_rc () in
  let a = analytic b in
  let fd = Fd.prepare ~samples_per_phase:64 b.SRC.sys ~output:b.SRC.output in
  if Fd.psd fd ~f:1e4 ~k_max:0 >= A_src.psd a 1e4 then
    Alcotest.fail "K=0 must underestimate the full spectrum"

let test_fd_matches_mft_lti () =
  (* single-phase circuit: k = 0 is exact and equals the MFT PSD *)
  let nl = Netlist.create () in
  let out = Netlist.node nl "out" in
  Netlist.resistor ~name:"R" nl out Netlist.ground 1e3;
  Netlist.capacitor nl out Netlist.ground 1e-9;
  let sys = Compile.compile nl (Clock.make [ 1e-6 ]) in
  let output = Pwl.observable sys "out" in
  let fd = Fd.prepare ~samples_per_phase:64 sys ~output in
  let eng = Psd.prepare ~samples_per_phase:64 sys ~output in
  List.iter
    (fun f ->
      let d =
        abs_float
          (Db.of_power (Fd.psd fd ~f ~k_max:0) -. Db.of_power (Psd.psd eng ~f))
      in
      if d > 0.01 then Alcotest.failf "LTI fd vs mft at %g: %g dB" f d)
    [ 0.0; 1e5; 1e6 ]

let test_fd_per_source () =
  let b = switched_rc () in
  let fd = Fd.prepare b.SRC.sys ~output:b.SRC.output in
  (match Fd.source_labels fd with
  | [ "S1" ] -> ()
  | other ->
      Alcotest.failf "labels: %s" (String.concat "," other));
  match Fd.psd_per_source fd ~f:1e4 ~k_max:3 with
  | [ ("S1", s) ] ->
      check_close ~eps:1e-12 "per-source sums to total" s
        (Fd.psd fd ~f:1e4 ~k_max:3)
  | _ -> Alcotest.fail "expected one source"

(* --- instantaneous PSD & integrated noise --- *)

let test_instantaneous_average_is_psd () =
  let b = switched_rc () in
  let eng = Psd.prepare b.SRC.sys ~output:b.SRC.output in
  let f = 5e4 in
  let times, values = Psd.instantaneous eng ~f in
  let period = b.SRC.sys.Pwl.period in
  check_close ~eps:1e-12 "average of instantaneous = psd" (Psd.psd eng ~f)
    (Grid.trapezoid times values /. period)

let test_instantaneous_time_varying () =
  (* cyclostationarity: the instantaneous PSD varies over the period *)
  let b = switched_rc () in
  let eng = Psd.prepare b.SRC.sys ~output:b.SRC.output in
  let _, values = Psd.instantaneous eng ~f:5e4 in
  let mn = Array.fold_left min infinity values in
  let mx = Array.fold_left max neg_infinity values in
  if mx -. mn < 0.1 *. mx then
    Alcotest.fail "switched circuit should have a time-varying spectrum"

let test_instantaneous_constant_for_lti () =
  let nl = Netlist.create () in
  let out = Netlist.node nl "out" in
  Netlist.resistor ~name:"R" nl out Netlist.ground 1e3;
  Netlist.capacitor nl out Netlist.ground 1e-9;
  let sys = Compile.compile nl (Clock.make [ 1e-6 ]) in
  let output = Pwl.observable sys "out" in
  let eng = Psd.prepare sys ~output in
  let _, values = Psd.instantaneous eng ~f:1e5 in
  let mn = Array.fold_left min infinity values in
  let mx = Array.fold_left max neg_infinity values in
  if (mx -. mn) /. mx > 1e-4 then
    Alcotest.failf "stationary spectrum should be time-constant: %g .. %g" mn mx

let test_integrated_noise_parseval () =
  (* integrating the plain-RC PSD over a wide band recovers kT/C *)
  let nl = Netlist.create () in
  let out = Netlist.node nl "out" in
  Netlist.resistor ~name:"R" nl out Netlist.ground 1e3;
  Netlist.capacitor nl out Netlist.ground 1e-9;
  let sys = Compile.compile nl (Clock.make [ 1e-6 ]) in
  let output = Pwl.observable sys "out" in
  let eng = Psd.prepare sys ~output in
  let fc = 1.0 /. (2.0 *. Float.pi *. 1e-6) in
  let total =
    Psd.integrated_noise ~points:4000 eng ~fmin:0.0 ~fmax:(300.0 *. fc)
  in
  let expected = Const.kt () /. 1e-9 in
  if abs_float (total -. expected) > 0.01 *. expected then
    Alcotest.failf "band noise %g vs kT/C %g" total expected

let test_integrated_noise_validation () =
  let b = switched_rc () in
  let eng = Psd.prepare b.SRC.sys ~output:b.SRC.output in
  match Psd.integrated_noise eng ~fmin:10.0 ~fmax:1.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "fmax <= fmin accepted"

(* --- flicker (1/f) noise sources --- *)

let flicker_rc ?(spd = 3) ?(fmin = 1.0) ?(fmax = 1e6) () =
  let nl = Netlist.create () in
  let out = Netlist.node nl "out" in
  Netlist.resistor ~name:"R" ~noisy:false nl out Netlist.ground 1e5;
  Netlist.capacitor nl out Netlist.ground 1e-12;
  Netlist.flicker_isource ~name:"IF" ~sections_per_decade:spd nl out
    Netlist.ground ~psd_1hz:1e-12 ~fmin ~fmax;
  let sys = Compile.compile nl (Clock.make [ 1e-7 ]) in
  (sys, Pwl.observable sys "out")

let test_flicker_one_over_f_slope () =
  let sys, output = flicker_rc () in
  let eng = Psd.prepare ~samples_per_phase:32 sys ~output in
  (* inside the band and below the RC corner: S = psd_1hz/f * R^2 *)
  List.iter
    (fun f ->
      let ideal = 1e-12 /. f *. (1e5 ** 2.0) in
      let ratio = Psd.psd eng ~f /. ideal in
      if ratio < 0.9 || ratio > 1.1 then
        Alcotest.failf "1/f fit at %g: ratio %.3f" f ratio)
    [ 10.0; 100.0; 1e3; 1e4 ]

let test_flicker_state_count () =
  let sys, _ = flicker_rc ~spd:2 ~fmin:1.0 ~fmax:1e4 () in
  (* 4 decades x 2 per decade + 1 = 9 sections + 1 capacitor state *)
  Alcotest.(check int) "states" 10 sys.Pwl.nstates

let test_flicker_sections_improve_fit () =
  let worst spd =
    let sys, output = flicker_rc ~spd () in
    let eng = Psd.prepare ~samples_per_phase:32 sys ~output in
    List.fold_left
      (fun acc f ->
        let ideal = 1e-12 /. f *. (1e5 ** 2.0) in
        max acc (abs_float (log (Psd.psd eng ~f /. ideal))))
      0.0
      [ 30.0; 300.0; 3e3 ]
  in
  if worst 4 >= worst 1 then
    Alcotest.fail "more sections per decade should fit 1/f better"

let test_flicker_labels_in_contrib () =
  let sys, _ = flicker_rc ~spd:1 ~fmin:1.0 ~fmax:100.0 () in
  let labels = Scnoise_core.Contrib.source_labels sys in
  if not (List.mem "IF.0" labels) then
    Alcotest.failf "missing section labels: %s" (String.concat "," labels)

let test_flicker_validation () =
  let nl = Netlist.create () in
  let a = Netlist.node nl "a" in
  Alcotest.check_raises "band"
    (Invalid_argument "Netlist.flicker_isource \"IF1\": need 0 < fmin < fmax")
    (fun () ->
      Netlist.flicker_isource nl a Netlist.ground ~psd_1hz:1e-12 ~fmin:10.0
        ~fmax:1.0)

let test_flicker_in_switched_circuit () =
  (* a flicker source on the switched RC: the circuit still compiles,
     remains stable, and low-frequency noise rises with the 1/f source *)
  let build with_flicker =
    let nl = Netlist.create () in
    let out = Netlist.node nl "out" in
    Netlist.switch ~name:"S" ~closed_in:[ 0 ] nl out Netlist.ground 1e3;
    Netlist.capacitor nl out Netlist.ground 1e-9;
    if with_flicker then
      Netlist.flicker_isource ~name:"IF" ~sections_per_decade:2 nl out
        Netlist.ground ~psd_1hz:1e-18 ~fmin:10.0 ~fmax:1e5;
    let sys = Compile.compile nl (Clock.duty ~period:5e-6 ~duty:0.5) in
    (sys, Pwl.observable sys "out")
  in
  let sys_f, out_f = build true in
  let sys_w, out_w = build false in
  if not (Pwl.is_stable sys_f) then Alcotest.fail "stable with flicker";
  let s_f = Psd.psd (Psd.prepare ~samples_per_phase:48 sys_f ~output:out_f) ~f:100.0 in
  let s_w = Psd.psd (Psd.prepare ~samples_per_phase:48 sys_w ~output:out_w) ~f:100.0 in
  if s_f <= s_w then Alcotest.fail "flicker should add low-frequency noise"

(* --- Report --- *)

let test_report_stable_circuit () =
  let b = SRC.build (SRC.with_ratio ~t_over_rc:5.0 ~duty:0.5 ()) in
  let module Report = Scnoise_core.Report in
  let r =
    Report.analyze ~samples_per_phase:48 ~band:(0.0, 1e6)
      ~title:"switched rc" b.SRC.sys ~output:b.SRC.output
  in
  if not r.Report.stable then Alcotest.fail "stable";
  check_close ~eps:1e-6 "variance kT/C" (Const.kt () /. 1e-9)
    r.Report.variance_avg;
  (match r.Report.band with
  | Some (_, _, v) ->
      (* 1 MHz band captures most of the kT/C power *)
      if v < 0.9 *. r.Report.variance_avg || v > r.Report.variance_avg then
        Alcotest.failf "band noise %g vs variance %g" v r.Report.variance_avg
  | None -> Alcotest.fail "band requested");
  (match r.Report.contributions with
  | [ { label = "S1"; share; _ } ] ->
      check_close ~eps:1e-9 "single source share" 1.0 share
  | _ -> Alcotest.fail "contributions");
  let s = Report.to_string r in
  if String.length s < 200 then Alcotest.fail "report text too short"

let test_report_unstable_circuit () =
  let module INT = Scnoise_circuits.Sc_integrator in
  let b = INT.build { INT.default with INT.cd = 0.0 } in
  let module Report = Scnoise_core.Report in
  let r = Report.analyze ~samples_per_phase:16 b.INT.sys ~output:b.INT.output in
  if r.Report.stable then Alcotest.fail "marginal circuit reported stable";
  if not (Float.is_nan r.Report.variance_avg) then
    Alcotest.fail "unstable report should carry nan variance";
  ignore (Report.to_string r)

let () =
  Alcotest.run "extensions"
    [
      ( "transfer",
        [
          Alcotest.test_case "lti gain" `Quick test_transfer_lti_gain;
          Alcotest.test_case "lti no harmonics" `Quick test_transfer_lti_no_harmonics;
          Alcotest.test_case "lowpass baseband" `Quick test_transfer_lowpass_baseband_gain;
          Alcotest.test_case "lowpass harmonics" `Quick test_transfer_lowpass_has_harmonics;
          Alcotest.test_case "validation" `Quick test_transfer_input_validation;
          Alcotest.test_case "cap-coupled highpass" `Quick test_transfer_cap_coupled_highpass;
        ] );
      ( "freq_domain",
        [
          Alcotest.test_case "converges with K" `Slow test_fd_converges_to_closed_form;
          Alcotest.test_case "K=0 underestimates" `Quick test_fd_k0_underestimates;
          Alcotest.test_case "LTI exact" `Quick test_fd_matches_mft_lti;
          Alcotest.test_case "per source" `Quick test_fd_per_source;
        ] );
      ( "flicker",
        [
          Alcotest.test_case "1/f slope" `Quick test_flicker_one_over_f_slope;
          Alcotest.test_case "state count" `Quick test_flicker_state_count;
          Alcotest.test_case "sections improve fit" `Quick test_flicker_sections_improve_fit;
          Alcotest.test_case "contrib labels" `Quick test_flicker_labels_in_contrib;
          Alcotest.test_case "validation" `Quick test_flicker_validation;
          Alcotest.test_case "switched circuit" `Quick test_flicker_in_switched_circuit;
        ] );
      ( "report",
        [
          Alcotest.test_case "stable" `Quick test_report_stable_circuit;
          Alcotest.test_case "unstable" `Quick test_report_unstable_circuit;
        ] );
      ( "instantaneous",
        [
          Alcotest.test_case "average = psd" `Quick test_instantaneous_average_is_psd;
          Alcotest.test_case "time varying" `Quick test_instantaneous_time_varying;
          Alcotest.test_case "constant for LTI" `Quick test_instantaneous_constant_for_lti;
          Alcotest.test_case "parseval" `Slow test_integrated_noise_parseval;
          Alcotest.test_case "validation" `Quick test_integrated_noise_validation;
        ] );
    ]
