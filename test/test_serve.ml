(* End-to-end tests of the analysis daemon: framing, the two-tier
   cache, concurrent clients, and — the load-bearing property — bit
   parity of served results against direct library runs at several job
   counts.  The server runs in a domain of this process listening on a
   throwaway Unix socket; clients are real sockets through the real
   framing code. *)

module Sp = Scnoise_serve.Protocol
module Sx = Scnoise_serve.Exec
module Sv = Scnoise_serve.Server
module Scl = Scnoise_serve.Client
module Json = Scnoise_obs.Json
module Deck = Scnoise_lang.Deck
module Elab = Scnoise_lang.Elab
module Compile = Scnoise_circuit.Compile
module Pwl = Scnoise_circuit.Pwl
module Psd = Scnoise_core.Psd
module Covariance = Scnoise_core.Covariance
module Contrib = Scnoise_core.Contrib
module Transfer = Scnoise_core.Transfer
module Grid = Scnoise_util.Grid
module Pool = Scnoise_par.Pool

(* --- fixtures --- *)

let deck_a =
  ".param rs = 1k\n.param c = 1n\n\
   S1 vout 0 {rs} closed=0\nC1 vout 0 {c}\n\
   .clock duty period={5 * rs * c} duty=0.5\n.output vout\n.end\n"

(* electrically different twin (bigger capacitor) *)
let deck_b =
  ".param rs = 1k\n.param c = 2n\n\
   S1 vout 0 {rs} closed=0\nC1 vout 0 {c}\n\
   .clock duty period={5 * rs * c} duty=0.5\n.output vout\n.end\n"

(* a third distinct circuit, for eviction pressure *)
let deck_c =
  ".param rs = 2k\n.param c = 1n\n\
   S1 vout 0 {rs} closed=0\nC1 vout 0 {c}\n\
   .clock duty period={5 * rs * c} duty=0.5\n.output vout\n.end\n"

let deck_dir = Filename.concat ".." "examples/decks"

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* --- direct (in-process) references, replicating the CLI's calls --- *)

let compiled_of deck =
  match Deck.load_string ~name:"direct" deck with
  | Error msg -> Alcotest.fail msg
  | Ok l -> (
      let e = l.Deck.elab in
      let sys =
        Compile.compile ?temperature:e.Elab.temperature e.Elab.netlist
          e.Elab.clock
      in
      match Pwl.observable sys e.Elab.output_node with
      | exception Not_found -> Alcotest.fail "output not observable"
      | output -> (sys, output))

let with_pool jobs f =
  let pool = Pool.create ~jobs () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let direct_psd ~jobs deck freqs =
  let sys, output = compiled_of deck in
  with_pool jobs (fun pool ->
      let eng = Psd.prepare ~samples_per_phase:96 ~pool sys ~output in
      Psd.sweep ~pool eng freqs)

let bits_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
       a b

let check_bits what a b =
  if not (bits_equal a b) then
    Alcotest.failf "%s: served values are not bit-identical" what

(* --- server harness --- *)

let tmp_sock () =
  let f = Filename.temp_file "scnoise-test" ".sock" in
  Sys.remove f;
  f

let with_server ?cache_entries ?max_frame f =
  let sock = tmp_sock () in
  let exec = Sx.create ?cache_entries () in
  let server =
    Sv.create ~exec
      (Sv.config ?max_frame ~handle_signals:false (Sv.Unix_path sock))
  in
  let d = Domain.spawn (fun () -> Sv.run server) in
  let stopped = ref false in
  Fun.protect
    ~finally:(fun () ->
      if not !stopped then Sv.request_stop server;
      Domain.join d)
    (fun () -> f (Sv.Unix_path sock) (fun () -> stopped := true))

let connect addr =
  match Scl.connect addr with
  | Ok c -> c
  | Error msg -> Alcotest.failf "connect: %s" msg

let rpc conn json =
  match Scl.rpc conn json with
  | Ok j -> j
  | Error msg -> Alcotest.failf "rpc: %s" msg

let no_deck_req op = { Sp.rq_id = None; rq_deck = None; rq_deck_name = "<request>"; rq_op = op }

let psd_req ?id ?(deck = deck_a) ?fmin ?fmax ?points ?spp () =
  {
    Sp.rq_id = id;
    rq_deck = Some deck;
    rq_deck_name = "<test>";
    rq_op =
      Sp.Psd
        {
          p_fmin = fmin;
          p_fmax = fmax;
          p_points = points;
          p_log = None;
          p_spp = spp;
          p_engine = None;
        };
  }

let result_of what reply =
  if not (Sp.reply_ok reply) then
    Alcotest.failf "%s: error reply %s" what (Json.to_string reply);
  match Sp.reply_result reply with
  | Some r -> r
  | None -> Alcotest.failf "%s: reply has no result" what

let psd_values what reply =
  match Sp.float_array_field (result_of what reply) "psd_V2_per_Hz" with
  | Some v -> v
  | None -> Alcotest.failf "%s: no psd_V2_per_Hz" what

let num_of what j name =
  match Json.member name j with
  | Some (Json.Num x) -> x
  | _ -> Alcotest.failf "%s: missing number %S" what name

let expect_error what code reply =
  if Sp.reply_ok reply then
    Alcotest.failf "%s: expected %s error, got ok" what code;
  match Sp.reply_error_code reply with
  | Some c when c = code -> ()
  | c ->
      Alcotest.failf "%s: expected error code %S, got %S" what code
        (Option.value c ~default:"<none>")

(* --- tests --- *)

let test_ping_stats () =
  with_server (fun addr _ ->
      let conn = connect addr in
      let reply = rpc conn (Sp.request_to_json (no_deck_req Sp.Ping)) in
      ignore (result_of "ping" reply);
      let stats = result_of "stats" (rpc conn (Sp.request_to_json (no_deck_req Sp.Stats))) in
      ignore (num_of "stats" stats "uptime_s");
      (match Json.member "cache" stats with
      | Some _ -> ()
      | None -> Alcotest.fail "stats has no cache section");
      Scl.close conn)

let test_psd_parity_and_cache_levels () =
  with_server (fun addr _ ->
      let conn = connect addr in
      let send ?fmax () =
        rpc conn (Sp.request_to_json (psd_req ?fmax ()))
      in
      let r1 = send () in
      Alcotest.(check (option string)) "first is cold" (Some "cold")
        (Sp.reply_cache r1);
      let r2 = send () in
      Alcotest.(check (option string)) "repeat hits result tier"
        (Some "result") (Sp.reply_cache r2);
      (* a new frequency range reuses the prepared solver *)
      let r3 = send ~fmax:8e3 () in
      Alcotest.(check (option string)) "new range hits prepared tier"
        (Some "prepared") (Sp.reply_cache r3);
      (* bit parity at the CLI defaults (fmin 0, fmax 16e3, 33 points) *)
      let freqs = Grid.linspace 0.0 16e3 33 in
      let served = psd_values "psd" r1 in
      check_bits "jobs=1" served (direct_psd ~jobs:1 deck_a freqs);
      check_bits "jobs=4" served (direct_psd ~jobs:4 deck_a freqs);
      check_bits "result-tier replay" served (psd_values "psd2" r2);
      let freqs8 = Grid.linspace 0.0 8e3 33 in
      check_bits "prepared-tier range" (psd_values "psd3" r3)
        (direct_psd ~jobs:1 deck_a freqs8);
      Scl.close conn)

let test_variance_contrib_parity () =
  with_server (fun addr _ ->
      let conn = connect addr in
      let sys, output = compiled_of deck_a in
      (* variance: CLI calls Covariance.sample at spp then reads both
         variances and the closure error *)
      let vr =
        result_of "variance"
          (rpc conn
             (Sp.request_to_json
                {
                  Sp.rq_id = None;
                  rq_deck = Some deck_a;
                  rq_deck_name = "<test>";
                  rq_op = Sp.Variance { v_spp = None };
                }))
      in
      let cov = Covariance.sample ~samples_per_phase:96 sys in
      check_bits "variance"
        [|
          num_of "variance" vr "boundary_V2";
          num_of "variance" vr "average_V2";
          num_of "variance" vr "closure_error";
        |]
        [|
          Covariance.variance_at_boundary cov output;
          Covariance.average_variance cov output;
          Covariance.closure_error cov;
        |];
      (* contrib at an explicit frequency *)
      let cr =
        result_of "contrib"
          (rpc conn
             (Sp.request_to_json
                {
                  Sp.rq_id = None;
                  rq_deck = Some deck_a;
                  rq_deck_name = "<test>";
                  rq_op = Sp.Contrib { c_f = Some 2e3; c_spp = None };
                }))
      in
      let direct =
        Contrib.per_source_psd ~samples_per_phase:96 sys ~output ~f:2e3
      in
      let served =
        match Json.member "sources" cr with
        | Some (Json.List l) ->
            List.map
              (fun s ->
                ( (match Json.member "name" s with
                  | Some (Json.Str n) -> n
                  | _ -> Alcotest.fail "contrib source has no name"),
                  num_of "contrib" s "psd_V2_per_Hz" ))
              l
        | _ -> Alcotest.fail "contrib reply has no sources"
      in
      Alcotest.(check int) "same source count" (List.length direct)
        (List.length served);
      List.iter2
        (fun (ln, lv) (rn, rv) ->
          Alcotest.(check string) "source label" ln rn;
          check_bits ("contrib " ^ ln) [| lv |] [| rv |])
        direct served;
      Scl.close conn)

let test_transfer_parity_and_inputs_error () =
  with_server (fun addr _ ->
      let conn = connect addr in
      (* switched-rc has no signal input: structured error *)
      expect_error "transfer w/o inputs" "inputs"
        (rpc conn
           (Sp.request_to_json
              {
                Sp.rq_id = None;
                rq_deck = Some deck_a;
                rq_deck_name = "<test>";
                rq_op =
                  Sp.Transfer
                    {
                      t_fmin = None;
                      t_fmax = None;
                      t_points = None;
                      t_k = None;
                      t_spp = None;
                    };
              }));
      (* the integrator deck has Vin: compare H0 bit for bit *)
      let deck = read_file (Filename.concat deck_dir "sc_integrator.scn") in
      let tr =
        result_of "transfer"
          (rpc conn
             (Sp.request_to_json
                {
                  Sp.rq_id = None;
                  rq_deck = Some deck;
                  rq_deck_name = "<test>";
                  rq_op =
                    Sp.Transfer
                      {
                        t_fmin = Some 10.0;
                        t_fmax = Some 1e3;
                        t_points = Some 5;
                        t_k = None;
                        t_spp = Some 48;
                      };
                }))
      in
      let sys, output = compiled_of deck in
      let eng = Transfer.prepare ~samples_per_phase:48 sys ~output in
      let freqs = Grid.linspace 10.0 1e3 5 in
      let h =
        Array.map (fun f -> Transfer.harmonics eng ~input:0 ~f ~k_range:0) freqs
      in
      let get name =
        match Sp.float_array_field tr name with
        | Some v -> v
        | None -> Alcotest.failf "transfer: no %s" name
      in
      check_bits "H0 re" (get "h0_re")
        (Array.map (fun h -> h.(0).Scnoise_linalg.Cx.re) h);
      check_bits "H0 im" (get "h0_im")
        (Array.map (fun h -> h.(0).Scnoise_linalg.Cx.im) h);
      Scl.close conn)

(* deck with one warning finding (ERC007), so the check reply carries a
   located finding whose caret must be re-derived per request *)
let deck_warn =
  ".param unused = 1k\n\
   R1 vout 0 10k\nC1 vout 0 1n\n\
   .clock duty period=1u duty=0.5\n.output vout\n.end\n"

let check_req ?(deck = deck_warn) () =
  { Sp.rq_id = None; rq_deck = Some deck; rq_deck_name = "<test>";
    rq_op = Sp.Check }

let finding_locs what reply =
  match Json.member "findings" (result_of what reply) with
  | Some (Json.List l) ->
      List.map
        (fun f ->
          match Json.member "loc" f with
          | Some (Json.Str s) -> s
          | _ -> Alcotest.failf "%s: finding without loc" what)
        l
  | _ -> Alcotest.failf "%s: reply has no findings" what

let test_check_verdict_cache () =
  with_server (fun addr _ ->
      let conn = connect addr in
      let send deck = rpc conn (Sp.request_to_json (check_req ~deck ())) in
      let r1 = send deck_warn in
      Alcotest.(check (option string)) "first is cold" (Some "cold")
        (Sp.reply_cache r1);
      let r2 = send deck_warn in
      Alcotest.(check (option string)) "repeat hits result tier"
        (Some "result") (Sp.reply_cache r2);
      (* byte-identical findings cold vs warm *)
      Alcotest.(check string) "cold/warm byte parity"
        (Json.to_string (result_of "check cold" r1))
        (Json.to_string (result_of "check warm" r2));
      (match finding_locs "check cold" r1 with
      | [ loc ] -> Alcotest.(check string) "loc" "<test>:1:17" loc
      | locs ->
          Alcotest.failf "expected one finding, got %d" (List.length locs));
      (* a layout twin (same canonical hash, shifted lines) stays warm
         and gets its carets re-derived against its own layout *)
      let r3 = send ("* shifted\n* by two lines\n" ^ deck_warn) in
      Alcotest.(check (option string)) "layout twin stays warm"
        (Some "result") (Sp.reply_cache r3);
      (match finding_locs "check shifted" r3 with
      | [ loc ] -> Alcotest.(check string) "re-derived loc" "<test>:3:17" loc
      | locs ->
          Alcotest.failf "expected one finding, got %d" (List.length locs));
      (* the hits are visible in the tier-1 counters *)
      let stats =
        result_of "stats"
          (rpc conn (Sp.request_to_json (no_deck_req Sp.Stats)))
      in
      let results =
        match
          Option.bind (Json.member "cache" stats) (Json.member "results")
        with
        | Some r -> r
        | None -> Alcotest.fail "stats has no results cache"
      in
      Alcotest.(check bool) "nonzero tier-1 hit ratio" true
        (num_of "stats" results "hits" >= 2.0);
      Scl.close conn)

let test_batch_order_and_partial_failure () =
  with_server (fun addr _ ->
      let conn = connect addr in
      let reply =
        rpc conn
          (Sp.batch_to_json ~id:"b1"
             [
               psd_req ~id:"one" ();
               { (no_deck_req (Sp.Variance { v_spp = None })) with
                 rq_id = Some "broken" };
               psd_req ~id:"two" ~deck:deck_b ();
             ])
      in
      if not (Sp.reply_ok reply) then Alcotest.fail "batch envelope failed";
      (match Json.member "id" reply with
      | Some (Json.Str "b1") -> ()
      | _ -> Alcotest.fail "batch id not echoed");
      match Json.member "results" reply with
      | Some (Json.List [ r1; r2; r3 ]) ->
          ignore (result_of "batch[0]" r1);
          expect_error "batch[1] missing deck" "protocol" r2;
          (* sub-request replies keep their ids and their order *)
          (match (Json.member "id" r1, Json.member "id" r3) with
          | Some (Json.Str "one"), Some (Json.Str "two") -> ()
          | _ -> Alcotest.fail "sub-request ids not echoed in order");
          let freqs = Grid.linspace 0.0 16e3 33 in
          check_bits "batch deck_b" (psd_values "batch[2]" r3)
            (direct_psd ~jobs:1 deck_b freqs)
      | _ -> Alcotest.fail "batch reply shape")

let test_malformed_and_oversized_frames () =
  with_server ~max_frame:4096 (fun addr _ ->
      (* valid frame, garbage JSON: error reply, connection survives *)
      let conn = connect addr in
      (match Scl.rpc_string conn "{not json" with
      | Ok s -> expect_error "garbage json" "protocol" (Json.of_string s)
      | Error msg -> Alcotest.failf "garbage json: %s" msg);
      (* unknown op in valid JSON: still a protocol error *)
      (match Scl.rpc_string conn "{\"op\": \"frobnicate\"}" with
      | Ok s -> expect_error "unknown op" "protocol" (Json.of_string s)
      | Error msg -> Alcotest.failf "unknown op: %s" msg);
      (* the same connection still serves valid requests *)
      ignore
        (result_of "ping after garbage"
           (rpc conn (Sp.request_to_json (no_deck_req Sp.Ping))));
      Scl.close conn;
      (* a header past max-frame gets an oversized error, then close *)
      let conn2 = connect addr in
      Scl.send_raw conn2 "\xff\xff\xff\xff";
      (match Scl.rpc_string conn2 "" with
      | Ok s -> expect_error "oversized" "oversized" (Json.of_string s)
      | Error msg -> Alcotest.failf "oversized: %s" msg);
      Scl.close conn2;
      (* a deck that does not parse is a structured deck error *)
      let conn3 = connect addr in
      expect_error "bad deck" "deck"
        (rpc conn3 (Sp.request_to_json (psd_req ~deck:"Z1 what\n.end\n" ())));
      (* and the daemon is still alive for everyone *)
      ignore
        (result_of "ping after abuse"
           (rpc conn3 (Sp.request_to_json (no_deck_req Sp.Ping))));
      Scl.close conn3)

let test_eviction_under_small_cache () =
  with_server ~cache_entries:2 (fun addr _ ->
      let conn = connect addr in
      let sweep deck = rpc conn (Sp.request_to_json (psd_req ~deck ())) in
      ignore (result_of "a" (sweep deck_a));
      ignore (result_of "b" (sweep deck_b));
      ignore (result_of "c" (sweep deck_c));
      let stats =
        result_of "stats" (rpc conn (Sp.request_to_json (no_deck_req Sp.Stats)))
      in
      let results =
        match Option.bind (Json.member "cache" stats) (Json.member "results") with
        | Some r -> r
        | None -> Alcotest.fail "stats has no results cache"
      in
      let entries = int_of_float (num_of "stats" results "entries") in
      let evictions = int_of_float (num_of "stats" results "evictions") in
      Alcotest.(check bool) "capacity respected" true (entries <= 2);
      Alcotest.(check bool) "evictions happened" true (evictions >= 1);
      (* evicted work recomputes correctly *)
      let freqs = Grid.linspace 0.0 16e3 33 in
      check_bits "deck_a after eviction" (psd_values "a2" (sweep deck_a))
        (direct_psd ~jobs:1 deck_a freqs);
      Scl.close conn)

let test_concurrent_clients_bit_identical () =
  with_server (fun addr _ ->
      let freqs = Grid.linspace 0.0 16e3 33 in
      let expect_a = direct_psd ~jobs:4 deck_a freqs in
      let expect_b = direct_psd ~jobs:1 deck_b freqs in
      (* a mix of requests that will be cold, prepared and result-tier
         hits, from several domains at once *)
      let client k () =
        let conn = connect addr in
        let ok = ref true in
        for i = 0 to 7 do
          let deck, expect =
            if (k + i) mod 2 = 0 then (deck_a, expect_a) else (deck_b, expect_b)
          in
          let reply = rpc conn (Sp.request_to_json (psd_req ~deck ())) in
          if not (bits_equal (psd_values "concurrent" reply) expect) then
            ok := false
        done;
        Scl.close conn;
        !ok
      in
      let domains = List.init 4 (fun k -> Domain.spawn (client k)) in
      let oks = List.map Domain.join domains in
      Alcotest.(check (list bool)) "all clients bit-identical"
        [ true; true; true; true ] oks)

let test_shutdown_request_drains () =
  with_server (fun addr mark_stopped ->
      let conn = connect addr in
      ignore
        (result_of "shutdown"
           (rpc conn (Sp.request_to_json (no_deck_req Sp.Shutdown))));
      Scl.close conn;
      (* the daemon exits on its own: joining must not hang, and new
         connections must fail once it is gone *)
      mark_stopped ();
      let gone = ref false in
      (try
         for _ = 1 to 100 do
           if not !gone then
             match Scl.connect ~attempts:1 addr with
             | Error _ -> gone := true
             | Ok c ->
                 Scl.close c;
                 Unix.sleepf 0.05
         done
       with _ -> gone := true);
      Alcotest.(check bool) "daemon exited after shutdown" true !gone)

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "ping+stats" `Quick test_ping_stats;
          Alcotest.test_case "malformed+oversized frames" `Quick
            test_malformed_and_oversized_frames;
          Alcotest.test_case "batch order+partial failure" `Quick
            test_batch_order_and_partial_failure;
        ] );
      ( "parity",
        [
          Alcotest.test_case "psd parity + cache tiers" `Quick
            test_psd_parity_and_cache_levels;
          Alcotest.test_case "variance+contrib" `Quick
            test_variance_contrib_parity;
          Alcotest.test_case "check verdict cache" `Quick
            test_check_verdict_cache;
          Alcotest.test_case "transfer" `Quick
            test_transfer_parity_and_inputs_error;
          Alcotest.test_case "concurrent clients" `Quick
            test_concurrent_clients_bit_identical;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "eviction" `Quick test_eviction_under_small_cache;
          Alcotest.test_case "shutdown drains" `Quick
            test_shutdown_request_drains;
        ] );
    ]
