module Vec = Scnoise_linalg.Vec
module Mat = Scnoise_linalg.Mat
module Lu = Scnoise_linalg.Lu
module Cx = Scnoise_linalg.Cx
module Cvec = Scnoise_linalg.Cvec
module Cmat = Scnoise_linalg.Cmat
module Clu = Scnoise_linalg.Clu
module Expm = Scnoise_linalg.Expm
module Kron = Scnoise_linalg.Kron
module Lyapunov = Scnoise_linalg.Lyapunov
module Vanloan = Scnoise_linalg.Vanloan
module Eig = Scnoise_linalg.Eig
module Chol = Scnoise_linalg.Chol

let check_close ?(eps = 1e-10) msg expected actual =
  if abs_float (expected -. actual) > eps *. (1.0 +. abs_float expected) then
    Alcotest.failf "%s: expected %.17g, got %.17g" msg expected actual

let check_mat_close ?(eps = 1e-10) msg expected actual =
  let d = Mat.max_abs_diff expected actual in
  let scale = 1.0 +. Mat.max_abs expected in
  if d > eps *. scale then
    Alcotest.failf "%s: max abs diff %g (scale %g)" msg d scale

let mat_of rows = Mat.of_arrays (Array.of_list (List.map Array.of_list rows))

(* deterministic pseudo-random matrices for property-ish unit tests *)
let rand_state = Random.State.make [| 20260704 |]

let random_mat n =
  Mat.init n n (fun _ _ -> Random.State.float rand_state 2.0 -. 1.0)

let random_stable_mat n =
  (* diag-dominant negative-definite-ish: A = M - (n + spectral slack) I *)
  let m = random_mat n in
  Mat.sub m (Mat.scale (float_of_int n +. 1.0) (Mat.identity n))

(* --- Vec --- *)

let test_vec_ops () =
  let a = [| 1.0; 2.0; 3.0 |] and b = [| 4.0; 5.0; 6.0 |] in
  check_close "dot" 32.0 (Vec.dot a b);
  check_close "norm2" (sqrt 14.0) (Vec.norm2 a);
  check_close "norm_inf" 3.0 (Vec.norm_inf a);
  let c = Vec.add a b in
  check_close "add" 9.0 c.(2);
  let d = Vec.sub b a in
  check_close "sub" 3.0 d.(0);
  let y = Vec.copy b in
  Vec.axpy 2.0 a y;
  check_close "axpy" 6.0 y.(0);
  check_close "max_abs_diff" 3.0 (Vec.max_abs_diff a b)

let test_vec_mismatch () =
  Alcotest.check_raises "dot mismatch" (Invalid_argument "Vec.dot: length mismatch")
    (fun () -> ignore (Vec.dot [| 1.0 |] [| 1.0; 2.0 |]))

(* --- Mat --- *)

let test_mat_mul_identity () =
  let a = random_mat 5 in
  check_mat_close "A I = A" a (Mat.mul a (Mat.identity 5));
  check_mat_close "I A = A" a (Mat.mul (Mat.identity 5) a)

let test_mat_transpose_involution () =
  let a = random_mat 4 in
  check_mat_close "transpose involution" a (Mat.transpose (Mat.transpose a))

let test_mat_mul_assoc () =
  let a = random_mat 4 and b = random_mat 4 and c = random_mat 4 in
  check_mat_close "associativity"
    (Mat.mul (Mat.mul a b) c)
    (Mat.mul a (Mat.mul b c))

let test_mat_mul_vec () =
  let a = mat_of [ [ 1.0; 2.0 ]; [ 3.0; 4.0 ] ] in
  let v = [| 1.0; 1.0 |] in
  let r = Mat.mul_vec a v in
  check_close "r0" 3.0 r.(0);
  check_close "r1" 7.0 r.(1);
  let rt = Mat.mul_transpose_vec a v in
  check_close "rt0" 4.0 rt.(0);
  check_close "rt1" 6.0 rt.(1)

let test_mat_submatrix_cat () =
  let a = mat_of [ [ 1.0; 2.0; 3.0 ]; [ 4.0; 5.0; 6.0 ]; [ 7.0; 8.0; 9.0 ] ] in
  let s = Mat.submatrix a ~rows:[ 0; 2 ] ~cols:[ 1 ] in
  check_close "s00" 2.0 (Mat.get s 0 0);
  check_close "s10" 8.0 (Mat.get s 1 0);
  let h = Mat.hcat a a in
  Alcotest.(check int) "hcat cols" 6 (Mat.cols h);
  check_close "hcat" 1.0 (Mat.get h 0 3);
  let v = Mat.vcat a a in
  Alcotest.(check int) "vcat rows" 6 (Mat.rows v);
  check_close "vcat" 1.0 (Mat.get v 3 0)

let test_mat_norms () =
  let a = mat_of [ [ 1.0; -2.0 ]; [ 3.0; 4.0 ] ] in
  check_close "norm_inf" 7.0 (Mat.norm_inf a);
  check_close "norm_fro" (sqrt 30.0) (Mat.norm_fro a);
  check_close "max_abs" 4.0 (Mat.max_abs a)

let test_mat_symmetrize () =
  let a = mat_of [ [ 1.0; 2.0 ]; [ 0.0; 3.0 ] ] in
  let s = Mat.symmetrize a in
  check_close "off" 1.0 (Mat.get s 0 1);
  check_close "off sym" 1.0 (Mat.get s 1 0)

(* --- Lu --- *)

let test_lu_solve_known () =
  let a = mat_of [ [ 2.0; 1.0 ]; [ 1.0; 3.0 ] ] in
  let x = Lu.solve_dense a [| 5.0; 10.0 |] in
  check_close "x0" 1.0 x.(0);
  check_close "x1" 3.0 x.(1)

let test_lu_det () =
  let a = mat_of [ [ 2.0; 1.0 ]; [ 1.0; 3.0 ] ] in
  check_close "det" 5.0 (Lu.det (Lu.factor a));
  (* permutation parity *)
  let p = mat_of [ [ 0.0; 1.0 ]; [ 1.0; 0.0 ] ] in
  check_close "det of swap" (-1.0) (Lu.det (Lu.factor p))

let test_lu_inverse () =
  let a = random_mat 6 in
  let inv = Lu.inverse (Lu.factor a) in
  check_mat_close ~eps:1e-8 "A A^{-1} = I" (Mat.identity 6) (Mat.mul a inv)

let test_lu_singular () =
  let a = mat_of [ [ 1.0; 2.0 ]; [ 2.0; 4.0 ] ] in
  match Lu.factor a with
  | exception Lu.Singular _ -> ()
  | _ -> Alcotest.fail "expected Singular"

let test_lu_random_roundtrip () =
  for _ = 1 to 20 do
    let n = 1 + Random.State.int rand_state 8 in
    let a = Mat.add (random_mat n) (Mat.scale (float_of_int n) (Mat.identity n)) in
    let x = Array.init n (fun _ -> Random.State.float rand_state 2.0 -. 1.0) in
    let b = Mat.mul_vec a x in
    let x' = Lu.solve_dense a b in
    if Vec.max_abs_diff x x' > 1e-9 then Alcotest.fail "solve roundtrip"
  done

let test_lu_solve_mat () =
  let a = Mat.add (random_mat 4) (Mat.scale 5.0 (Mat.identity 4)) in
  let b = random_mat 4 in
  let x = Lu.solve_mat (Lu.factor a) b in
  check_mat_close ~eps:1e-9 "A X = B" b (Mat.mul a x)

let test_lu_rcond () =
  let good = Mat.identity 3 in
  if Lu.rcond_estimate (Lu.factor good) < 0.9 then Alcotest.fail "I rcond";
  let bad = mat_of [ [ 1.0; 0.0 ]; [ 0.0; 1e-14 ] ] in
  if Lu.rcond_estimate (Lu.factor bad) > 1e-10 then Alcotest.fail "bad rcond"

(* --- complex --- *)

let test_cx_arith () =
  let open Cx in
  let z = make 3.0 4.0 in
  check_close "modulus" 5.0 (modulus z);
  let w = z *: conj z in
  check_close "z conj z re" 25.0 w.re;
  check_close "z conj z im" 0.0 w.im;
  let e = cis (Float.pi /. 2.0) in
  check_close ~eps:1e-12 "cis re" 0.0 e.re;
  check_close "cis im" 1.0 e.im;
  if not (is_finite z) then Alcotest.fail "finite";
  if is_finite (make nan 0.0) then Alcotest.fail "nan not finite"

let test_cvec () =
  let a = Cvec.init 3 (fun i -> Cx.make (float_of_int i) 1.0) in
  check_close "norm2" (sqrt (0.0 +. 1.0 +. 1.0 +. 1.0 +. 4.0 +. 1.0))
    (Cvec.norm2 a);
  let r = Cvec.real a in
  check_close "real part" 2.0 r.(2);
  let s = Cvec.scale (Cx.make 0.0 1.0) a in
  check_close "i*(0+1i) = -1" (-1.0) (Cvec.get s 0).Cx.re

let test_clu_roundtrip () =
  let n = 5 in
  let a =
    Cmat.init n n (fun i j ->
        let d = if i = j then 6.0 else 0.0 in
        Cx.make
          (d +. Random.State.float rand_state 1.0)
          (Random.State.float rand_state 1.0))
  in
  let x = Cvec.init n (fun _ -> Cx.make (Random.State.float rand_state 1.0) 0.5) in
  let b = Cmat.mul_vec a x in
  let x' = Clu.solve_dense a b in
  if Cvec.max_abs_diff x x' > 1e-9 then Alcotest.fail "complex solve roundtrip"

let test_clu_inverse_det () =
  let a = Cmat.of_real (Mat.identity 3) in
  Cmat.set a 0 1 (Cx.make 0.0 2.0);
  let f = Clu.factor a in
  let d = Clu.det f in
  check_close "det re" 1.0 d.Cx.re;
  check_close "det im" 0.0 d.Cx.im;
  let inv = Clu.inverse f in
  let prod = Cmat.mul a inv in
  if Cmat.max_abs_diff prod (Cmat.identity 3) > 1e-10 then
    Alcotest.fail "A A^{-1} = I (complex)"

let test_cmat_hermitian () =
  let a = Cmat.create 2 2 in
  Cmat.set a 0 0 (Cx.re 1.0);
  Cmat.set a 1 1 (Cx.re 2.0);
  Cmat.set a 0 1 (Cx.make 1.0 3.0);
  Cmat.set a 1 0 (Cx.make 1.0 (-3.0));
  if not (Cmat.is_hermitian a) then Alcotest.fail "hermitian";
  Cmat.set a 1 0 (Cx.make 1.0 3.0);
  if Cmat.is_hermitian a then Alcotest.fail "not hermitian"

(* --- Expm --- *)

let test_expm_zero () =
  check_mat_close "expm 0 = I" (Mat.identity 4) (Expm.expm (Mat.create 4 4))

let test_expm_diag () =
  let a = Mat.diag [| 1.0; -2.0; 0.5 |] in
  let e = Expm.expm a in
  check_close "e^1" (exp 1.0) (Mat.get e 0 0);
  check_close "e^-2" (exp (-2.0)) (Mat.get e 1 1);
  check_close "e^0.5" (exp 0.5) (Mat.get e 2 2);
  check_close "off-diag" 0.0 (Mat.get e 0 1)

let test_expm_nilpotent () =
  let a = mat_of [ [ 0.0; 1.0 ]; [ 0.0; 0.0 ] ] in
  let e = Expm.expm a in
  check_mat_close "expm nilpotent" (mat_of [ [ 1.0; 1.0 ]; [ 0.0; 1.0 ] ]) e

let test_expm_rotation () =
  let w = 3.0 in
  let a = mat_of [ [ 0.0; -.w ]; [ w; 0.0 ] ] in
  let t = 0.7 in
  let e = Expm.expm_scaled a t in
  let c = cos (w *. t) and s = sin (w *. t) in
  check_mat_close "rotation" (mat_of [ [ c; -.s ]; [ s; c ] ]) e

let test_expm_inverse_property () =
  let a = random_mat 5 in
  let e1 = Expm.expm a in
  let e2 = Expm.expm (Mat.scale (-1.0) a) in
  check_mat_close ~eps:1e-8 "e^A e^{-A} = I" (Mat.identity 5) (Mat.mul e1 e2)

let test_expm_large_norm () =
  (* exercises scaling-and-squaring: stiff decay rate *)
  let a = Mat.diag [| -1e6; -2e6 |] in
  let e = Expm.expm_scaled a 1e-5 in
  check_close ~eps:1e-9 "stiff decay" (exp (-10.0)) (Mat.get e 0 0);
  check_close ~eps:1e-9 "stiff decay 2" (exp (-20.0)) (Mat.get e 1 1)

let test_expm_semigroup () =
  let a = random_mat 4 in
  let half = Expm.expm_scaled a 0.5 in
  let full = Expm.expm a in
  check_mat_close ~eps:1e-8 "e^{A} = (e^{A/2})²" full (Mat.mul half half)

(* --- Kron --- *)

let test_kron_identity () =
  let a = random_mat 3 in
  check_mat_close "I1 ⊗ A" a (Kron.kron (Mat.identity 1) a)

let test_vec_unvec_roundtrip () =
  let a = Mat.init 3 4 (fun i j -> float_of_int ((10 * i) + j)) in
  check_mat_close "unvec ∘ vec" a (Kron.unvec 3 4 (Kron.vec a))

let test_kron_vec_identity () =
  (* vec(A X B) = (Bᵀ ⊗ A) vec X *)
  let a = random_mat 3 and x = random_mat 3 and b = random_mat 3 in
  let lhs = Kron.vec (Mat.mul a (Mat.mul x b)) in
  let rhs = Mat.mul_vec (Kron.kron (Mat.transpose b) a) (Kron.vec x) in
  if Vec.max_abs_diff lhs rhs > 1e-10 then Alcotest.fail "kron-vec identity"

(* --- Eig --- *)

let sort_complex zs =
  let l = Array.to_list zs in
  List.sort
    (fun (a : Cx.t) (b : Cx.t) ->
      match compare a.re b.re with 0 -> compare a.im b.im | c -> c)
    l

let check_spectrum ?(eps = 1e-8) msg expected actual =
  let e = sort_complex expected and a = sort_complex actual in
  if List.length e <> List.length a then Alcotest.failf "%s: count" msg;
  List.iter2
    (fun (x : Cx.t) (y : Cx.t) ->
      if Cx.modulus (Cx.( -: ) x y) > eps *. (1.0 +. Cx.modulus x) then
        Alcotest.failf "%s: eigenvalue mismatch (%g%+gi) vs (%g%+gi)" msg x.re
          x.im y.re y.im)
    e a

let test_eig_diag () =
  let a = Mat.diag [| 3.0; -1.0; 7.0 |] in
  check_spectrum "diag"
    [| Cx.re 3.0; Cx.re (-1.0); Cx.re 7.0 |]
    (Eig.eigenvalues a)

let test_eig_triangular () =
  let a = mat_of [ [ 2.0; 5.0; 1.0 ]; [ 0.0; -3.0; 2.0 ]; [ 0.0; 0.0; 4.0 ] ] in
  check_spectrum "triangular"
    [| Cx.re 2.0; Cx.re (-3.0); Cx.re 4.0 |]
    (Eig.eigenvalues a)

let test_eig_rotation () =
  let a = mat_of [ [ 0.0; -1.0 ]; [ 1.0; 0.0 ] ] in
  check_spectrum "rotation"
    [| Cx.make 0.0 1.0; Cx.make 0.0 (-1.0) |]
    (Eig.eigenvalues a)

let test_eig_ring_oscillator () =
  (* Linear 3-stage ring oscillator from the source paper: per stage
     dV_i/dt = (1/RC)(-V_i - 2 V_{i-1}); eigenvalues -3/RC and
     ±j·sqrt(3)/RC. *)
  let rc = 2e-9 in
  let g = 1.0 /. rc in
  let a =
    mat_of
      [
        [ -.g; 0.0; -2.0 *. g ];
        [ -2.0 *. g; -.g; 0.0 ];
        [ 0.0; -2.0 *. g; -.g ];
      ]
  in
  let s3 = sqrt 3.0 in
  check_spectrum ~eps:1e-6 "ring oscillator"
    [| Cx.re (-3.0 *. g); Cx.make 0.0 (s3 *. g); Cx.make 0.0 (-.s3 *. g) |]
    (Eig.eigenvalues a)

let test_eig_trace_det () =
  for _ = 1 to 10 do
    let n = 2 + Random.State.int rand_state 6 in
    let a = random_mat n in
    let eigs = Eig.eigenvalues a in
    let tr = ref 0.0 in
    for i = 0 to n - 1 do
      tr := !tr +. Mat.get a i i
    done;
    let sum = Array.fold_left Cx.( +: ) Cx.zero eigs in
    check_close ~eps:1e-7 "trace = sum of eigenvalues" !tr sum.Cx.re;
    if abs_float sum.Cx.im > 1e-7 then Alcotest.fail "eig sum not real";
    let det = Lu.det (Lu.factor a) in
    let prod = Array.fold_left Cx.( *: ) Cx.one eigs in
    check_close ~eps:1e-6 "det = product of eigenvalues" det prod.Cx.re
  done

let test_eig_spectral_radius () =
  let a = mat_of [ [ 0.5; 0.4 ]; [ 0.0; -0.3 ] ] in
  check_close "radius" 0.5 (Eig.spectral_radius a);
  if not (Eig.is_schur_stable a) then Alcotest.fail "schur stable";
  check_close "abscissa" 0.5 (Eig.spectral_abscissa a)

let test_hessenberg_structure_and_spectrum () =
  let a = random_mat 6 in
  let h = Eig.hessenberg a in
  (* zero below the first subdiagonal *)
  for i = 0 to 5 do
    for j = 0 to 5 do
      if i > j + 1 && abs_float (Mat.get h i j) > 1e-12 then
        Alcotest.failf "H(%d,%d) = %g not annihilated" i j (Mat.get h i j)
    done
  done;
  (* similarity: same spectrum *)
  check_spectrum ~eps:1e-7 "hessenberg similarity" (Eig.eigenvalues a)
    (Eig.eigenvalues h)

let test_eig_companion () =
  (* companion of p(x) = x³ - 6x² + 11x - 6 = (x-1)(x-2)(x-3) *)
  let a =
    mat_of [ [ 6.0; -11.0; 6.0 ]; [ 1.0; 0.0; 0.0 ]; [ 0.0; 1.0; 0.0 ] ]
  in
  check_spectrum ~eps:1e-7 "companion"
    [| Cx.re 1.0; Cx.re 2.0; Cx.re 3.0 |]
    (Eig.eigenvalues a)

(* --- Lyapunov --- *)

let test_lyap_continuous_scalar () =
  let a = mat_of [ [ -2.0 ] ] and q = mat_of [ [ 4.0 ] ] in
  let x = Lyapunov.solve_continuous a q in
  check_close "scalar lyap" 1.0 (Mat.get x 0 0)

let test_lyap_continuous_residual () =
  let a = random_stable_mat 5 in
  let b = random_mat 5 in
  let q = Mat.mul b (Mat.transpose b) in
  let x = Lyapunov.solve_continuous a q in
  let resid =
    Mat.add (Mat.add (Mat.mul a x) (Mat.mul x (Mat.transpose a))) q
  in
  if Mat.max_abs resid > 1e-8 *. (1.0 +. Mat.max_abs q) then
    Alcotest.fail "continuous lyapunov residual"

let test_lyap_discrete_kron_vs_doubling () =
  let phi = Mat.scale 0.4 (random_mat 5) in
  let b = random_mat 5 in
  let q = Mat.mul b (Mat.transpose b) in
  let x1 = Lyapunov.solve_discrete_kron phi q in
  let x2 = Lyapunov.solve_discrete_doubling phi q in
  check_mat_close ~eps:1e-10 "kron vs doubling" x1 x2;
  check_close ~eps:1e-9 "residual kron" 0.0
    (Lyapunov.residual_discrete phi q x1);
  check_close ~eps:1e-9 "residual doubling" 0.0
    (Lyapunov.residual_discrete phi q x2)

let test_lyap_discrete_unstable () =
  let phi = Mat.scale 1.5 (Mat.identity 3) in
  let q = Mat.identity 3 in
  match Lyapunov.solve_discrete_doubling phi q with
  | exception Lyapunov.Not_stable _ -> ()
  | _ -> Alcotest.fail "expected Not_stable"

(* --- Van Loan --- *)

let test_vanloan_scalar_rc () =
  (* dx = a x dt + sqrt(q0) dW: Phi = e^{a tau},
     Qd = q0 (e^{2 a tau} - 1)/(2a). *)
  let a0 = -3.0 and q0 = 2.0 and tau = 0.4 in
  let d =
    Vanloan.discretize ~a:(mat_of [ [ a0 ] ]) ~q:(mat_of [ [ q0 ] ]) ~tau
  in
  check_close "phi" (exp (a0 *. tau)) (Mat.get d.Vanloan.phi 0 0);
  check_close "qd"
    (q0 *. ((exp (2.0 *. a0 *. tau) -. 1.0) /. (2.0 *. a0)))
    (Mat.get d.Vanloan.qd 0 0)

let test_vanloan_zero_tau () =
  let d =
    Vanloan.discretize ~a:(random_mat 3) ~q:(Mat.identity 3) ~tau:0.0
  in
  check_mat_close "phi = I" (Mat.identity 3) d.Vanloan.phi;
  check_close "qd = 0" 0.0 (Mat.max_abs d.Vanloan.qd)

let test_vanloan_compose () =
  (* Discretising over tau must equal two successive tau/2 steps. *)
  let a = random_stable_mat 4 in
  let b = random_mat 4 in
  let q = Mat.mul b (Mat.transpose b) in
  let full = Vanloan.discretize ~a ~q ~tau:0.3 in
  let half = Vanloan.discretize ~a ~q ~tau:0.15 in
  let phi2 = Mat.mul half.Vanloan.phi half.Vanloan.phi in
  check_mat_close ~eps:1e-9 "phi composes" full.Vanloan.phi phi2;
  let qd2 = Vanloan.propagate half half.Vanloan.qd in
  check_mat_close ~eps:1e-9 "qd composes" full.Vanloan.qd qd2

let test_vanloan_stationary_limit () =
  (* For stable A, the discrete steady state over any tau equals the
     continuous Lyapunov solution. *)
  let a = random_stable_mat 4 in
  let b = random_mat 4 in
  let q = Mat.mul b (Mat.transpose b) in
  let k_inf = Lyapunov.solve_continuous a q in
  let d = Vanloan.discretize ~a ~q ~tau:0.7 in
  let k_dis = Lyapunov.solve_discrete_kron d.Vanloan.phi d.Vanloan.qd in
  check_mat_close ~eps:1e-7 "continuous vs discrete steady state" k_inf k_dis

let test_vanloan_stiff_path_matches_chunked () =
  (* above the stiffness threshold the implementation switches to the
     stationary form; it must agree with composing many safe augmented
     steps *)
  let a = Mat.diag [| -1e8; -3e7 |] in
  let b = mat_of [ [ 1.0; 0.2 ]; [ 0.0; 0.5 ] ] in
  let q = Mat.mul b (Mat.transpose b) in
  let tau = 1e-5 in
  (* stiffness 1e3 >> threshold *)
  assert (Mat.norm_inf a *. tau > Vanloan.stiff_threshold);
  let d = Vanloan.discretize ~a ~q ~tau in
  let chunks = 200 in
  let step = Vanloan.discretize ~a ~q ~tau:(tau /. float_of_int chunks) in
  let phi = ref (Mat.identity 2) and qd = ref (Mat.create 2 2) in
  for _ = 1 to chunks do
    phi := Mat.mul step.Vanloan.phi !phi;
    qd := Vanloan.propagate step !qd
  done;
  check_mat_close ~eps:1e-9 "phi stiff" !phi d.Vanloan.phi;
  check_mat_close ~eps:1e-9 "qd stiff" !qd d.Vanloan.qd

let test_vanloan_marginal_chunked_fallback () =
  (* A = 0 (lossless): qd must be exactly Q tau, via the chunked
     fallback when the scaled norm is large *)
  let q = mat_of [ [ 2.0; 0.5 ]; [ 0.5; 1.0 ] ] in
  let d = Vanloan.discretize ~a:(Mat.create 2 2) ~q ~tau:0.7 in
  check_mat_close "phi = I" (Mat.identity 2) d.Vanloan.phi;
  check_mat_close ~eps:1e-12 "qd = Q tau" (Mat.scale 0.7 q) d.Vanloan.qd;
  (* and a marginal-but-large-norm case takes the chunked path *)
  let a = mat_of [ [ 0.0; 1e6 ]; [ -1e6; 0.0 ] ] in
  (* pure rotation: Lyapunov operator singular *)
  let d2 = Vanloan.discretize ~a ~q:(Mat.identity 2) ~tau:1e-3 in
  (* the transition must stay orthogonal (energy preserved) *)
  let gram = Mat.mul (Mat.transpose d2.Vanloan.phi) d2.Vanloan.phi in
  check_mat_close ~eps:1e-9 "orthogonal phi" (Mat.identity 2) gram;
  (* and the accumulated noise of an isotropic rotation is tau I *)
  check_mat_close ~eps:1e-9 "qd rotation" (Mat.scale 1e-3 (Mat.identity 2))
    d2.Vanloan.qd

let test_vanloan_discretize_b () =
  let a = mat_of [ [ -1.0; 0.0 ]; [ 0.0; -2.0 ] ] in
  let b = mat_of [ [ 1.0; 1.0 ]; [ 0.0; 1.0 ] ] in
  let d1 = Vanloan.discretize_b ~a ~b ~tau:0.2 in
  let d2 =
    Vanloan.discretize ~a ~q:(Mat.mul b (Mat.transpose b)) ~tau:0.2
  in
  check_mat_close "b wrapper" d2.Vanloan.qd d1.Vanloan.qd

(* --- Chol --- *)

let test_chol_known () =
  let m = mat_of [ [ 4.0; 2.0 ]; [ 2.0; 5.0 ] ] in
  let l = Chol.factor m in
  check_mat_close "L Lt = M" m (Mat.mul l (Mat.transpose l));
  check_close "l00" 2.0 (Mat.get l 0 0);
  check_close "upper zero" 0.0 (Mat.get l 0 1)

let test_chol_solve () =
  let m = mat_of [ [ 4.0; 2.0 ]; [ 2.0; 5.0 ] ] in
  let l = Chol.factor m in
  let x = [| 1.0; -2.0 |] in
  let b = Mat.mul_vec m x in
  let x' = Chol.solve l b in
  if Vec.max_abs_diff x x' > 1e-12 then Alcotest.fail "chol solve"

let test_chol_random_spd () =
  for _ = 1 to 10 do
    let n = 1 + Random.State.int rand_state 6 in
    let g = random_mat n in
    let m = Mat.add (Mat.mul g (Mat.transpose g)) (Mat.scale 0.1 (Mat.identity n)) in
    let l = Chol.factor m in
    check_mat_close ~eps:1e-9 "random spd" m (Mat.mul l (Mat.transpose l))
  done

let test_chol_semidefinite () =
  (* rank-1 PSD matrix: factorisation must not fail *)
  let v = [| 1.0; 2.0; 3.0 |] in
  let m = Mat.init 3 3 (fun i j -> v.(i) *. v.(j)) in
  let l = Chol.factor m in
  check_mat_close ~eps:1e-6 "rank-1" m (Mat.mul l (Mat.transpose l))

let test_chol_is_psd () =
  if not (Chol.is_psd (Mat.identity 3)) then Alcotest.fail "I is psd";
  let indef = mat_of [ [ 1.0; 2.0 ]; [ 2.0; 1.0 ] ] in
  if Chol.is_psd indef then Alcotest.fail "indefinite accepted"

let test_chol_indefinite_raises () =
  let indef = mat_of [ [ -1.0; 0.0 ]; [ 0.0; -1.0 ] ] in
  match Chol.factor indef with
  | exception Chol.Not_psd _ -> ()
  | _ -> Alcotest.fail "negative definite accepted"

(* --- qcheck properties --- *)

let small_mat_gen =
  QCheck.Gen.(
    int_range 1 5 >>= fun n ->
    list_repeat (n * n) (float_range (-2.0) 2.0) >|= fun xs ->
    (n, Array.of_list xs))

let small_mat_arb =
  QCheck.make
    ~print:(fun (n, d) ->
      Printf.sprintf "n=%d [%s]" n
        (String.concat ";" (Array.to_list (Array.map string_of_float d))))
    small_mat_gen

let mat_of_flat (n, d) = Mat.init n n (fun i j -> d.((i * n) + j))

let prop_expm_det =
  (* det e^A = e^{tr A} *)
  QCheck.Test.make ~count:50 ~name:"det expm = exp trace" small_mat_arb
    (fun (n, d) ->
      let a = mat_of_flat (n, d) in
      let e = Expm.expm a in
      let tr = ref 0.0 in
      for i = 0 to n - 1 do
        tr := !tr +. Mat.get a i i
      done;
      let det = Lu.det (Lu.factor e) in
      abs_float (det -. exp !tr) <= 1e-6 *. (1.0 +. exp !tr))

let prop_lu_solve =
  QCheck.Test.make ~count:50 ~name:"lu solves diagonally dominated systems"
    small_mat_arb (fun (n, d) ->
      let a =
        Mat.add (mat_of_flat (n, d))
          (Mat.scale (3.0 *. float_of_int n) (Mat.identity n))
      in
      let x = Array.init n (fun i -> float_of_int i +. 0.5) in
      let b = Mat.mul_vec a x in
      let x' = Lu.solve_dense a b in
      Vec.max_abs_diff x x' <= 1e-8)

let prop_eig_count =
  QCheck.Test.make ~count:50 ~name:"eigenvalue count = n" small_mat_arb
    (fun (n, d) -> Array.length (Eig.eigenvalues (mat_of_flat (n, d))) = n)

let () =
  Alcotest.run "linalg"
    [
      ( "vec",
        [
          Alcotest.test_case "ops" `Quick test_vec_ops;
          Alcotest.test_case "mismatch" `Quick test_vec_mismatch;
        ] );
      ( "mat",
        [
          Alcotest.test_case "mul identity" `Quick test_mat_mul_identity;
          Alcotest.test_case "transpose" `Quick test_mat_transpose_involution;
          Alcotest.test_case "mul assoc" `Quick test_mat_mul_assoc;
          Alcotest.test_case "mul_vec" `Quick test_mat_mul_vec;
          Alcotest.test_case "submatrix/cat" `Quick test_mat_submatrix_cat;
          Alcotest.test_case "norms" `Quick test_mat_norms;
          Alcotest.test_case "symmetrize" `Quick test_mat_symmetrize;
        ] );
      ( "lu",
        [
          Alcotest.test_case "solve known" `Quick test_lu_solve_known;
          Alcotest.test_case "det" `Quick test_lu_det;
          Alcotest.test_case "inverse" `Quick test_lu_inverse;
          Alcotest.test_case "singular" `Quick test_lu_singular;
          Alcotest.test_case "random roundtrip" `Quick test_lu_random_roundtrip;
          Alcotest.test_case "solve_mat" `Quick test_lu_solve_mat;
          Alcotest.test_case "rcond" `Quick test_lu_rcond;
          QCheck_alcotest.to_alcotest prop_lu_solve;
        ] );
      ( "complex",
        [
          Alcotest.test_case "cx arith" `Quick test_cx_arith;
          Alcotest.test_case "cvec" `Quick test_cvec;
          Alcotest.test_case "clu roundtrip" `Quick test_clu_roundtrip;
          Alcotest.test_case "clu inverse/det" `Quick test_clu_inverse_det;
          Alcotest.test_case "hermitian" `Quick test_cmat_hermitian;
        ] );
      ( "expm",
        [
          Alcotest.test_case "zero" `Quick test_expm_zero;
          Alcotest.test_case "diag" `Quick test_expm_diag;
          Alcotest.test_case "nilpotent" `Quick test_expm_nilpotent;
          Alcotest.test_case "rotation" `Quick test_expm_rotation;
          Alcotest.test_case "inverse" `Quick test_expm_inverse_property;
          Alcotest.test_case "stiff" `Quick test_expm_large_norm;
          Alcotest.test_case "semigroup" `Quick test_expm_semigroup;
          QCheck_alcotest.to_alcotest prop_expm_det;
        ] );
      ( "kron",
        [
          Alcotest.test_case "identity" `Quick test_kron_identity;
          Alcotest.test_case "vec roundtrip" `Quick test_vec_unvec_roundtrip;
          Alcotest.test_case "vec(AXB)" `Quick test_kron_vec_identity;
        ] );
      ( "eig",
        [
          Alcotest.test_case "diag" `Quick test_eig_diag;
          Alcotest.test_case "triangular" `Quick test_eig_triangular;
          Alcotest.test_case "rotation" `Quick test_eig_rotation;
          Alcotest.test_case "ring oscillator" `Quick test_eig_ring_oscillator;
          Alcotest.test_case "trace/det" `Quick test_eig_trace_det;
          Alcotest.test_case "spectral radius" `Quick test_eig_spectral_radius;
          Alcotest.test_case "companion" `Quick test_eig_companion;
          Alcotest.test_case "hessenberg" `Quick test_hessenberg_structure_and_spectrum;
          QCheck_alcotest.to_alcotest prop_eig_count;
        ] );
      ( "chol",
        [
          Alcotest.test_case "known" `Quick test_chol_known;
          Alcotest.test_case "solve" `Quick test_chol_solve;
          Alcotest.test_case "random spd" `Quick test_chol_random_spd;
          Alcotest.test_case "semidefinite" `Quick test_chol_semidefinite;
          Alcotest.test_case "is_psd" `Quick test_chol_is_psd;
          Alcotest.test_case "indefinite" `Quick test_chol_indefinite_raises;
        ] );
      ( "lyapunov",
        [
          Alcotest.test_case "continuous scalar" `Quick test_lyap_continuous_scalar;
          Alcotest.test_case "continuous residual" `Quick test_lyap_continuous_residual;
          Alcotest.test_case "kron vs doubling" `Quick test_lyap_discrete_kron_vs_doubling;
          Alcotest.test_case "unstable raises" `Quick test_lyap_discrete_unstable;
        ] );
      ( "vanloan",
        [
          Alcotest.test_case "scalar rc" `Quick test_vanloan_scalar_rc;
          Alcotest.test_case "zero tau" `Quick test_vanloan_zero_tau;
          Alcotest.test_case "composition" `Quick test_vanloan_compose;
          Alcotest.test_case "stationary limit" `Quick test_vanloan_stationary_limit;
          Alcotest.test_case "b wrapper" `Quick test_vanloan_discretize_b;
          Alcotest.test_case "stiff path" `Quick test_vanloan_stiff_path_matches_chunked;
          Alcotest.test_case "marginal fallback" `Quick test_vanloan_marginal_chunked_fallback;
        ] );
    ]
