(* Property-based tests on randomly generated piecewise-LTI switched
   systems: the engines must satisfy their mathematical invariants for
   *every* stable system, not just the bundled circuits. *)

module Mat = Scnoise_linalg.Mat
module Vec = Scnoise_linalg.Vec
module Chol = Scnoise_linalg.Chol
module Eig = Scnoise_linalg.Eig
module Db = Scnoise_util.Db
module Grid = Scnoise_util.Grid
module Pwl = Scnoise_circuit.Pwl
module Covariance = Scnoise_core.Covariance
module Psd = Scnoise_core.Psd
module Esd = Scnoise_noise.Esd_transient

(* --- random system generator --- *)

type spec = {
  n : int;
  seed : int;
}

let spec_gen =
  QCheck.Gen.(
    int_range 1 4 >>= fun n ->
    int_range 0 1_000_000 >|= fun seed -> { n; seed })

let spec_arb =
  QCheck.make
    ~print:(fun s -> Printf.sprintf "{n=%d; seed=%d}" s.n s.seed)
    spec_gen

(* A stable random phase: diagonally dominant negative-definite-ish A at
   a 1e6 rad/s scale, random noise intensities at a compatible scale. *)
let random_phase rng n tau =
  let rate = 1e6 in
  let rnd () = (Random.State.float rng 2.0 -. 1.0) *. rate in
  let a =
    Mat.init n n (fun i j ->
        if i = j then -.(float_of_int n +. 1.5) *. rate +. (0.3 *. rnd ())
        else 0.5 *. rnd ())
  in
  let m = 1 + Random.State.int rng 2 in
  let b = Mat.init n m (fun _ _ -> rnd () *. 1e-6) in
  {
    Pwl.tau;
    a;
    b;
    q = Mat.mul b (Mat.transpose b);
    e = Mat.create n 0;
    e_dot = Mat.create n 0;
    noise_labels = Array.init m (fun j -> Printf.sprintf "w%d" j);
  }

let build spec =
  let rng = Random.State.make [| spec.seed; spec.n |] in
  let tau1 = 1e-6 +. Random.State.float rng 3e-6 in
  let tau2 = 1e-6 +. Random.State.float rng 3e-6 in
  let phases = [| random_phase rng spec.n tau1; random_phase rng spec.n tau2 |] in
  let sys =
    {
      Pwl.period = tau1 +. tau2;
      phases;
      nstates = spec.n;
      state_names = Array.init spec.n (Printf.sprintf "x%d");
      inputs = [||];
      observables = [];
    }
  in
  let output = Vec.init spec.n (fun i -> if i = 0 then 1.0 else 0.3) in
  (sys, output)

(* --- properties --- *)

let prop_stable =
  QCheck.Test.make ~count:60 ~name:"generated systems are stable" spec_arb
    (fun spec ->
      let sys, _ = build spec in
      Pwl.is_stable sys)

let prop_covariance_psd_matrix =
  QCheck.Test.make ~count:40
    ~name:"periodic covariance is positive semi-definite on the whole grid"
    spec_arb (fun spec ->
      let sys, _ = build spec in
      let s = Covariance.sample ~samples_per_phase:24 sys in
      Array.for_all
        (fun k -> Chol.is_psd ~tol:1e-6 (Covariance.k_mat k))
        s.Covariance.ks)

let prop_solvers_agree =
  QCheck.Test.make ~count:40 ~name:"kron and doubling Lyapunov solvers agree"
    spec_arb (fun spec ->
      let sys, _ = build spec in
      let k1 = Covariance.periodic_initial ~solver:`Kron sys in
      let k2 = Covariance.periodic_initial ~solver:`Doubling sys in
      Mat.max_abs_diff k1 k2 <= 1e-8 *. (1.0 +. Mat.max_abs k1))

let prop_closure =
  QCheck.Test.make ~count:40 ~name:"periodicity closure" spec_arb (fun spec ->
      let sys, _ = build spec in
      let s = Covariance.sample ~samples_per_phase:24 sys in
      Covariance.closure_error s
      <= 1e-9 *. (1.0 +. Mat.max_abs (Covariance.k_mat s.Covariance.k0)))

let prop_psd_positive_even =
  QCheck.Test.make ~count:30 ~name:"PSD is positive and even in f" spec_arb
    (fun spec ->
      let sys, output = build spec in
      let eng = Psd.prepare ~samples_per_phase:48 sys ~output in
      let period = sys.Pwl.period in
      List.for_all
        (fun mult ->
          let f = mult /. period in
          let s = Psd.psd eng ~f in
          let s_neg = Psd.psd eng ~f:(-.f) in
          s >= -1e-12 *. Psd.average_variance eng *. period
          && abs_float (s -. s_neg) <= 1e-9 *. (abs_float s +. 1e-300))
        [ 0.0; 0.37; 1.18; 4.2 ])

let prop_variance_trace_nonnegative =
  QCheck.Test.make ~count:40 ~name:"variance trace is non-negative" spec_arb
    (fun spec ->
      let sys, output = build spec in
      let s = Covariance.sample ~samples_per_phase:24 sys in
      Array.for_all (fun v -> v >= 0.0) (Covariance.variance_trace s output))

let prop_mft_matches_brute_force =
  QCheck.Test.make ~count:12 ~name:"MFT matches the brute-force transient"
    spec_arb (fun spec ->
      let sys, output = build spec in
      let eng = Psd.prepare ~samples_per_phase:64 sys ~output in
      let f = 0.73 /. sys.Pwl.period in
      let s_mft = Psd.psd eng ~f in
      let bf = Esd.psd ~samples_per_phase:64 ~tol_db:0.01 sys ~output ~f in
      (* zero-PSD corner cases: compare absolutely *)
      if s_mft < 1e-300 then bf.Esd.psd < 1e-250
      else abs_float (Db.delta bf.Esd.psd s_mft) <= 0.3)

let prop_parseval =
  QCheck.Test.make ~count:6 ~name:"wideband Parseval within 10%" spec_arb
    (fun spec ->
      let sys, output = build spec in
      let eng = Psd.prepare ~samples_per_phase:48 sys ~output in
      let var = Psd.average_variance eng in
      if var <= 0.0 then true
      else begin
        (* bandwidth is bounded by the largest rate in A (~n*1.5e6 by
           construction) plus sampled components at multiples of 1/T *)
        let fmax = 1e8 in
        let freqs = Grid.linspace 0.0 fmax 4000 in
        let s = Psd.sweep eng freqs in
        let integral = 2.0 *. Grid.trapezoid freqs s in
        abs_float (integral -. var) <= 0.1 *. var
      end)

let prop_floquet_inside_unit_disc =
  QCheck.Test.make ~count:40 ~name:"Floquet multipliers inside the unit disc"
    spec_arb (fun spec ->
      let sys, _ = build spec in
      Eig.spectral_radius (Pwl.monodromy sys) < 1.0)

let prop_envelope_conjugate_symmetry =
  (* the PSD integrand is built from P(f); P(-f) must be the conjugate
     of P(f), making the PSD even and real *)
  QCheck.Test.make ~count:20 ~name:"envelope conjugate symmetry" spec_arb
    (fun spec ->
      let sys, output = build spec in
      let eng = Psd.prepare ~samples_per_phase:32 sys ~output in
      let f = 0.61 /. sys.Pwl.period in
      let p_pos = Psd.envelope eng ~f in
      let p_neg = Psd.envelope eng ~f:(-.f) in
      let module Cvec = Scnoise_linalg.Cvec in
      let ok = ref true in
      Array.iteri
        (fun i pp ->
          for j = 0 to Cvec.dim pp - 1 do
            let z = Cvec.get pp j in
            let w = Cvec.get p_neg.(i) j in
            let d =
              Scnoise_linalg.Cx.modulus
                (Scnoise_linalg.Cx.( -: ) (Scnoise_linalg.Cx.conj z) w)
            in
            let scale = 1e-9 *. (1.0 +. Scnoise_linalg.Cx.modulus z) in
            if d > scale then ok := false
          done)
        p_pos;
      !ok)

let () =
  Alcotest.run "property"
    [
      ( "random-systems",
        [
          QCheck_alcotest.to_alcotest prop_stable;
          QCheck_alcotest.to_alcotest prop_covariance_psd_matrix;
          QCheck_alcotest.to_alcotest prop_solvers_agree;
          QCheck_alcotest.to_alcotest prop_closure;
          QCheck_alcotest.to_alcotest prop_psd_positive_even;
          QCheck_alcotest.to_alcotest prop_variance_trace_nonnegative;
          QCheck_alcotest.to_alcotest prop_mft_matches_brute_force;
          QCheck_alcotest.to_alcotest prop_parseval;
          QCheck_alcotest.to_alcotest prop_floquet_inside_unit_disc;
          QCheck_alcotest.to_alcotest prop_envelope_conjugate_symmetry;
        ] );
    ]
