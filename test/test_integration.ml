(* Cross-engine integration tests: every PSD engine (mixed-frequency-time,
   brute-force ESD transient, Monte-Carlo, closed form) must tell the same
   story on shared circuits, including the multi-state stiff SC filters. *)

module Db = Scnoise_util.Db
module Psd = Scnoise_core.Psd
module Covariance = Scnoise_core.Covariance
module Contrib = Scnoise_core.Contrib
module Esd = Scnoise_noise.Esd_transient
module Mc = Scnoise_noise.Monte_carlo
module A_src = Scnoise_analytic.Switched_rc
module SRC = Scnoise_circuits.Switched_rc
module LP = Scnoise_circuits.Sc_lowpass
module BP = Scnoise_circuits.Sc_bandpass
module INT = Scnoise_circuits.Sc_integrator

let check_db ?(tol = 0.1) msg expected actual =
  let d = abs_float (Db.of_power expected -. Db.of_power actual) in
  if d > tol then
    Alcotest.failf "%s: %g vs %g differ by %.3f dB (tol %.3f)" msg expected
      actual d tol

(* Four-way agreement on the switched RC. *)
let test_four_way_switched_rc () =
  let b = SRC.build (SRC.with_ratio ~t_over_rc:5.0 ~duty:0.5 ()) in
  let p = b.SRC.params in
  let a =
    A_src.make ~r:p.SRC.r ~c:p.SRC.c ~period:p.SRC.period ~duty:p.SRC.duty ()
  in
  let eng = Psd.prepare b.SRC.sys ~output:b.SRC.output in
  let freqs = [| 1e4; 1e5 |] in
  let mc =
    Mc.estimate ~seed:5L ~paths:12 ~segments_per_path:12 b.SRC.sys
      ~output:b.SRC.output ~freqs
  in
  Array.iteri
    (fun i f ->
      let s_ana = A_src.psd a f in
      check_db ~tol:0.02 "mft vs closed form" s_ana (Psd.psd eng ~f);
      let bf = Esd.psd ~tol_db:0.02 b.SRC.sys ~output:b.SRC.output ~f in
      check_db ~tol:0.15 "brute force vs closed form" s_ana bf.Esd.psd;
      check_db ~tol:0.8 "monte carlo vs closed form" s_ana mc.Mc.psd.(i))
    freqs

(* MFT and brute force on the stiff multi-state low-pass filter. *)
let test_lowpass_mft_vs_brute_force () =
  let b = LP.build LP.default in
  let eng = Psd.prepare ~samples_per_phase:128 b.LP.sys ~output:b.LP.output in
  List.iter
    (fun f ->
      let bf =
        Esd.psd ~samples_per_phase:128 ~tol_db:0.02 b.LP.sys
          ~output:b.LP.output ~f
      in
      check_db ~tol:0.2 (Printf.sprintf "lowpass f=%g" f) (Psd.psd eng ~f)
        bf.Esd.psd)
    [ 100.0; 2000.0; 6000.0 ]

(* ... and on the band-pass biquad, around its resonance. *)
let test_bandpass_mft_vs_brute_force () =
  let b = BP.build BP.default in
  let eng = Psd.prepare ~samples_per_phase:64 b.BP.sys ~output:b.BP.output in
  List.iter
    (fun f ->
      let bf =
        Esd.psd ~samples_per_phase:64 ~tol_db:0.005 ~window_periods:10
          b.BP.sys ~output:b.BP.output ~f
      in
      (* the brute-force estimate carries an O(1/t) startup bias around
         the resonance; 0.5 dB is its honest accuracy at this tolerance *)
      check_db ~tol:0.5 (Printf.sprintf "bandpass f=%g" f) (Psd.psd eng ~f)
        bf.Esd.psd)
    [ 4e3; 8e3; 1.2e4 ]

(* Monte-Carlo agreement on the integrator (multi-state, moderate Q). *)
let test_integrator_mc_vs_mft () =
  let b = INT.build { INT.default with INT.opamp_noise_psd = 1e-16 } in
  let eng = Psd.prepare ~samples_per_phase:96 b.INT.sys ~output:b.INT.output in
  let freqs = [| 1e3; 1e4 |] in
  let mc =
    (* long segments: the damped integrator's noise corner (~1.7 kHz)
       must be resolved by the Welch window *)
    Mc.estimate ~seed:17L ~paths:10 ~segments_per_path:4
      ~periods_per_segment:96 ~samples_per_phase:64 b.INT.sys
      ~output:b.INT.output ~freqs
  in
  Array.iteri
    (fun i f ->
      check_db ~tol:1.0 (Printf.sprintf "integrator f=%g" f) (Psd.psd eng ~f)
        mc.Mc.psd.(i))
    freqs;
  let var_mft =
    Covariance.average_variance
      (Covariance.sample ~samples_per_phase:96 b.INT.sys)
      b.INT.output
  in
  if abs_float (mc.Mc.variance -. var_mft) > 0.1 *. var_mft then
    Alcotest.failf "variance: mc %g vs mft %g" mc.Mc.variance var_mft

(* The per-source decomposition must sum to the total on a real filter. *)
let test_lowpass_contribution_additivity () =
  let b = LP.build LP.default in
  let gap =
    Contrib.check_additivity ~samples_per_phase:48 b.LP.sys ~output:b.LP.output
      ~f:1e3
  in
  if gap > 1e-6 then Alcotest.failf "additivity gap %g" gap

(* Brute-force history converges towards the MFT value (companion Fig. 1). *)
let test_history_converges_to_mft () =
  let b = LP.build LP.default in
  let f = 7.5e3 in
  let eng = Psd.prepare ~samples_per_phase:128 b.LP.sys ~output:b.LP.output in
  let s_mft = Psd.psd eng ~f in
  let bf =
    Esd.psd ~samples_per_phase:128 ~tol_db:0.02 b.LP.sys ~output:b.LP.output ~f
  in
  let n = Array.length bf.Esd.history in
  let _, early = bf.Esd.history.(1) in
  let _, late = bf.Esd.history.(n - 1) in
  let err x = abs_float (Db.of_power x -. Db.of_power s_mft) in
  if err late > err early then
    Alcotest.fail "running estimate should approach the MFT value";
  if err late > 0.2 then
    Alcotest.failf "converged estimate %.3f dB from MFT" (err late)

let () =
  Alcotest.run "integration"
    [
      ( "cross-engine",
        [
          Alcotest.test_case "four-way switched rc" `Slow test_four_way_switched_rc;
          Alcotest.test_case "lowpass mft vs bf" `Slow test_lowpass_mft_vs_brute_force;
          Alcotest.test_case "bandpass mft vs bf" `Slow test_bandpass_mft_vs_brute_force;
          Alcotest.test_case "integrator mc vs mft" `Slow test_integrator_mc_vs_mft;
          Alcotest.test_case "contribution additivity" `Slow test_lowpass_contribution_additivity;
          Alcotest.test_case "history converges" `Slow test_history_converges_to_mft;
        ] );
    ]
