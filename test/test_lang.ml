module Source = Scnoise_lang.Source
module Lexer = Scnoise_lang.Lexer
module Parser = Scnoise_lang.Parser
module Printer = Scnoise_lang.Printer
module Ast = Scnoise_lang.Ast
module Diag = Scnoise_lang.Diag
module Deck = Scnoise_lang.Deck
module Elab = Scnoise_lang.Elab
module Loc = Scnoise_lang.Loc
module Compile = Scnoise_circuit.Compile
module Pwl = Scnoise_circuit.Pwl
module Psd = Scnoise_core.Psd
module Grid = Scnoise_util.Grid
module SRC = Scnoise_circuits.Switched_rc
module INT = Scnoise_circuits.Sc_integrator
module LAD = Scnoise_circuits.Sc_ladder
module Check = Scnoise_check.Check
module Finding = Scnoise_check.Finding

let deck_dir = Filename.concat ".." "examples/decks"

let read_file path = In_channel.with_open_bin path In_channel.input_all

let tokens_of text =
  Lexer.tokenize (Source.of_string ~name:"deck.scn" text)

(* --- lexer --- *)

let number_of text =
  match tokens_of text with
  | { Lexer.tok = Lexer.NUMBER (v, _); _ } :: _ -> v
  | _ -> Alcotest.failf "%S did not lex as a number" text

let test_lexer_suffixes () =
  let check s v =
    let got = number_of s in
    if got <> v then Alcotest.failf "%S: expected %.17g, got %.17g" s v got
  in
  check "42" 42.0;
  check "1e3" 1e3;
  check "1.5e-3" 1.5e-3;
  check "7f" 7e-15;
  check "2.5p" 2.5e-12;
  check "8n" 8e-9;
  check "3u" 3e-6;
  check "9m" 9e-3;
  check "10k" 1e4;
  check "1meg" 1e6;
  check "4MEG" 4e6;
  check "5g" 5e9;
  check "6t" 6e12;
  (* unit tails after the suffix are ignored *)
  check "10kohm" 1e4;
  check "2.5pF" 2.5e-12;
  check "1megHz" 1e6

let number_unit_of text =
  match tokens_of text with
  | { Lexer.tok = Lexer.NUMBER (v, u); _ } :: _ -> (v, u)
  | _ -> Alcotest.failf "%S did not lex as a number" text

let test_lexer_unit_tails () =
  let check s v u =
    let gv, gu = number_unit_of s in
    if gv <> v || gu <> u then
      Alcotest.failf "%S: expected (%.17g, %S), got (%.17g, %S)" s v u gv gu
  in
  (* scale prefix + canonical unit *)
  check "10kohm" 1e4 "ohm";
  check "2.5pF" 2.5e-12 "F";
  check "1megHz" 1e6 "Hz";
  check "3uV" 3e-6 "V";
  check "9mA" 9e-3 "A";
  check "1us" 1e-6 "s";
  (* whole-word units with no scale *)
  check "5ohm" 5.0 "ohm";
  check "2farad" 2.0 "F";
  check "1hz" 1.0 "Hz";
  check "12volts" 12.0 "V";
  check "1sec" 1.0 "s";
  check "300kelvin" 300.0 "K";
  (* a bare trailing scale letter stays a scale, never a unit *)
  check "7f" 7e-15 "";
  check "300K" 3e5 "";
  check "42" 42.0 ""

let test_lexer_comments_and_continuation () =
  let toks =
    tokens_of "* a full-line comment\nR1 a 0 1k ; trailing comment\n+ noiseless\n"
  in
  let shapes =
    List.map
      (fun { Lexer.tok; _ } ->
        match tok with
        | Lexer.IDENT s -> "id:" ^ s
        | Lexer.NUMBER (v, _) -> Printf.sprintf "num:%g" v
        | Lexer.EOL -> "eol"
        | Lexer.EOF -> "eof"
        | _ -> "other")
      toks
  in
  (* the continuation line merges into one logical line: no EOL between
     1k and noiseless *)
  Alcotest.(check (list string)) "token stream"
    [ "id:R1"; "id:a"; "num:0"; "num:1000"; "id:noiseless"; "eol"; "eof" ]
    shapes

let test_lexer_error_loc () =
  match tokens_of "R1 a 0 10q\n" with
  | exception Diag.Error (loc, msg) ->
      Alcotest.(check string) "loc" "deck.scn:1:10" (Loc.to_string loc);
      Alcotest.(check string) "msg" "unknown SI suffix \"q\" on number" msg
  | _ -> Alcotest.fail "bad suffix accepted"

let test_lexer_dangling_continuation () =
  match tokens_of "+ 1k\n" with
  | exception Diag.Error (_, msg) ->
      if not (String.length msg > 0) then Alcotest.fail "empty message"
  | _ -> Alcotest.fail "dangling continuation accepted"

(* --- parser --- *)

let parse_text text = Parser.parse (Source.of_string ~name:"deck.scn" text)

let test_parser_negative_literal () =
  let d = parse_text ".param x = -3\nR1 a 0 -2.5\n" in
  match List.map (fun s -> s.Ast.s) d.Ast.stmts with
  | [
   Ast.Param { value = { Ast.e = Ast.Num (v1, _); _ }; _ };
   Ast.Card (Ast.Resistor { r = { Ast.e = Ast.Num (v2, _); _ }; _ });
  ] ->
      Alcotest.(check (float 0.0)) "param" (-3.0) v1;
      Alcotest.(check (float 0.0)) "r" (-2.5) v2
  | _ -> Alcotest.fail "unexpected AST shape"

let test_parser_numeric_nodes () =
  let d = parse_text "C1 a 0 1p\n" in
  match List.map (fun s -> s.Ast.s) d.Ast.stmts with
  | [ Ast.Card (Ast.Capacitor { n1; n2; _ }) ] ->
      Alcotest.(check string) "n1" "a" n1.Ast.nname;
      Alcotest.(check string) "n2" "0" n2.Ast.nname
  | _ -> Alcotest.fail "unexpected AST shape"

let test_parser_switch_phases () =
  let d = parse_text "S1 a 0 1k closed=0,2 noiseless\n" in
  match List.map (fun s -> s.Ast.s) d.Ast.stmts with
  | [ Ast.Card (Ast.Switch { closed_in; noisy; _ }) ] ->
      Alcotest.(check (list int)) "phases" [ 0; 2 ] closed_in;
      Alcotest.(check bool) "noiseless" false noisy
  | _ -> Alcotest.fail "unexpected AST shape"

(* --- printer round trips --- *)

(* exercises every card kind, waveform, expression operator and
   directive the grammar knows *)
let kitchen_sink =
  ".param a = 1 + 2 * 3\n\
   .param b = (1 + 2) * 3\n\
   .param d = 2 ^ 3 ^ 2\n\
   .param e = -(a + b)\n\
   .param f = pow(a, 2) / sqrt(b)\n\
   R1 n1 0 {a} noiseless\n\
   C1 n1 n2 2.5p\n\
   S1 n2 0 1k closed=0,2 noiseless\n\
   V1 n3 sin 0 -1 1k 45\n\
   I1 n1 n2 pwl 0 0 1u 1 2u 0\n\
   N1 n1 0 psd=1e-22\n\
   N2 n1 0 flicker psd1hz=1e-20 fmin=1 fmax=1meg spd=3\n\
   OPI1 0 n1 n4 ugf={2 * pi * 1meg} noise=1e-18\n\
   OP11 0 n1 n5 gm=1m rout=1meg cout=1p\n\
   .clock two_phase period=1u gap=0.02\n\
   .output n1\n\
   .temp 350\n\
   .psd fmin=1 fmax=1k points=11 engine=mft log\n\
   .variance\n\
   .contrib f=1k\n\
   .transfer fmin=1 fmax=1k points=5 k=2\n\
   .end\n"

let check_roundtrip name text =
  let ast = parse_text text in
  let printed = Printer.deck ast in
  let ast' =
    try parse_text printed
    with Diag.Error (loc, msg) ->
      Alcotest.failf "%s: printed deck does not reparse: %s: %s\n%s" name
        (Loc.to_string loc) msg printed
  in
  if not (Ast.equal ast ast') then
    Alcotest.failf "%s: AST changed across print/parse:\n%s" name printed;
  (* printing is a fixed point *)
  Alcotest.(check string) (name ^ " idempotent") printed (Printer.deck ast')

let test_roundtrip_kitchen_sink () = check_roundtrip "kitchen sink" kitchen_sink

(* unit tails survive print → parse with their canonical spellings *)
let test_roundtrip_units () =
  check_roundtrip "unit tails"
    ".param rload = 10kohm\n\
     .param cval = 2.5pF\n\
     R1 a 0 {rload}\n\
     C1 a 0 {cval}\n\
     V1 b dc 1V\n\
     S1 a b 1k closed=0\n\
     .clock duty period=1us duty=0.5\n\
     .output a\n\
     .psd fmin=1hz fmax=1megHz\n\
     .end\n"

let test_roundtrip_shipped_decks () =
  let decks = Sys.readdir deck_dir in
  Array.sort compare decks;
  let scn =
    Array.to_list decks |> List.filter (fun f -> Filename.check_suffix f ".scn")
  in
  if List.length scn < 2 then Alcotest.fail "expected at least two shipped decks";
  List.iter
    (fun f -> check_roundtrip f (read_file (Filename.concat deck_dir f)))
    scn

let test_float_str_exact () =
  List.iter
    (fun v ->
      let s = Printer.float_str v in
      if float_of_string s <> v then
        Alcotest.failf "float_str %h -> %s does not reparse" v s)
    [ 0.1; 1.0 /. 3.0; 2.5e-12; Float.pi; 1e-22; 6.28318530717958623e7 ]

(* --- diagnostics fixtures --- *)

let load text = Deck.load_string ~name:"deck.scn" text

let check_error name text expected =
  match load text with
  | Ok _ -> Alcotest.failf "%s: bad deck accepted" name
  | Error msg -> Alcotest.(check string) name expected msg

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let check_error_contains name text fragment =
  match load text with
  | Ok _ -> Alcotest.failf "%s: bad deck accepted" name
  | Error msg ->
      if not (contains msg fragment) then
        Alcotest.failf "%s: diagnostic %S lacks %S" name msg fragment

let test_diag_lexical () =
  check_error "lexical"
    "R1 a 0 10q\n"
    "deck.scn:1:10: unknown SI suffix \"q\" on number\n  R1 a 0 10q\n           ^"

let test_diag_syntax () =
  check_error "syntax"
    "R1 a 0\n"
    "deck.scn:1:7: expected a value (number or {expression}), found end of \
     line\n  R1 a 0\n        ^"

let test_diag_unknown_node () =
  check_error "unknown node"
    "S1 vout 0 1k closed=0\nC1 vout 0 1n\n.clock duty period=1u duty=0.5\n\
     .output vx\n"
    "deck.scn:4:9: unknown node \"vx\"\n  .output vx\n          ^"

let test_diag_bad_value () =
  (* netlist validation failures carry the element name and the card's
     position *)
  check_error "negative r"
    "R1 a 0 -5\nC1 a 0 1n\n.clock duty period=1u duty=0.5\n.output a\n"
    "deck.scn:1:1: Netlist.resistor \"R1\": r <= 0\n  R1 a 0 -5\n  ^";
  check_error_contains "unknown parameter" "S1 a 0 {rs} closed=0\n"
    "unknown parameter \"rs\""

let test_diag_missing_directives () =
  check_error_contains "missing clock"
    "S1 a 0 1k closed=0\nC1 a 0 1n\n.output a\n" "missing .clock directive";
  check_error_contains "missing output"
    "S1 a 0 1k closed=0\nC1 a 0 1n\n.clock duty period=1u duty=0.5\n"
    "missing .output directive";
  check_error_contains "empty deck" ".clock duty period=1u duty=0.5\n"
    "deck has no element cards"

let test_diag_ground_output () =
  check_error_contains "ground output"
    "C1 a 0 1n\nR1 a 0 1k\n.clock duty period=1u duty=0.5\n.output 0\n"
    "output node cannot be ground"

let test_diag_duplicates () =
  check_error_contains "duplicate clock"
    "C1 a 0 1n\nR1 a 0 1k\n.clock duty period=1u duty=0.5\n\
     .clock duty period=1u duty=0.5\n.output a\n" "duplicate .clock directive";
  check_error_contains "duplicate param" ".param x = 1\n.param x = 2\nC1 a 0 1n\n"
    "parameter \"x\" already defined";
  check_error_contains "duplicate key" "S1 a 0 1k closed=0 closed=1\n"
    "duplicate \"closed\"";
  check_error_contains "unknown option" "R1 a 0 1k bogus=3\n"
    "unknown option \"bogus\""

(* --- parity with the programmatic circuits --- *)

let sweep sys output freqs =
  let eng = Psd.prepare ~samples_per_phase:64 sys ~output in
  Psd.sweep eng freqs

let compile_deck path =
  match Deck.load_file path with
  | Error msg -> Alcotest.failf "%s: %s" path msg
  | Ok { Deck.elab = e; _ } ->
      let sys =
        Compile.compile ?temperature:e.Elab.temperature e.Elab.netlist
          e.Elab.clock
      in
      (sys, Pwl.observable sys e.Elab.output_node)

let check_parity name (sys_a, out_a) (sys_b, out_b) freqs =
  let pa = sweep sys_a out_a freqs and pb = sweep sys_b out_b freqs in
  Array.iteri
    (fun i f ->
      let a = pa.(i) and b = pb.(i) in
      let rel = abs_float (a -. b) /. (abs_float b +. 1e-300) in
      if rel > 1e-9 then
        Alcotest.failf "%s: at %g Hz deck gives %.17g, library gives %.17g \
                        (rel %.3g)" name f a b rel)
    freqs

let test_parity_switched_rc () =
  let b = SRC.build (SRC.with_ratio ~duty:0.5 ~t_over_rc:5.0 ()) in
  check_parity "switched-rc"
    (compile_deck (Filename.concat deck_dir "switched_rc.scn"))
    (b.SRC.sys, b.SRC.output)
    (Grid.linspace 0.0 16e3 9)

let test_parity_sc_integrator () =
  let b = INT.build INT.default in
  check_parity "sc_integrator"
    (compile_deck (Filename.concat deck_dir "sc_integrator.scn"))
    (b.INT.sys, b.INT.output)
    (Grid.linspace 100.0 16e3 7)

let test_parity_sc_ladder () =
  let b = LAD.build (LAD.with_parasitics LAD.default) in
  check_parity "sc_ladder"
    (compile_deck (Filename.concat deck_dir "sc_ladder.scn"))
    (b.LAD.sys, b.LAD.output)
    (Grid.logspace 100.0 40e3 9)

(* the shipped ladder deck must come through the strict ERC gate clean:
   no errors and no warnings *)
let test_erc_sc_ladder () =
  match Deck.load_file (Filename.concat deck_dir "sc_ladder.scn") with
  | Error msg -> Alcotest.fail msg
  | Ok { Deck.elab = e; _ } ->
      let fs = Check.check_elab e in
      List.iter
        (fun f -> Printf.printf "finding: %s\n" (Finding.to_string f))
        fs;
      Alcotest.(check int) "errors" 0 (Finding.errors fs);
      Alcotest.(check int) "warnings" 0 (Finding.warnings fs)

(* --- deck directives reach the elaborated form --- *)

let test_elab_directives () =
  let text =
    "S1 a 0 1k closed=0\nC1 a 0 1n\n.clock duty period=1u duty=0.5\n\
     .output a\n.temp 350\n.psd fmin=10 fmax=1k points=5 engine=bruteforce \
     log\n.contrib f=500\n"
  in
  match load text with
  | Error msg -> Alcotest.fail msg
  | Ok { Deck.elab = e; _ } -> (
      Alcotest.(check (option (float 0.0))) "temp" (Some 350.0) e.Elab.temperature;
      match List.map fst e.Elab.analyses with
      | [ Elab.Psd { fmin; fmax; points; log; engine }; Elab.Contrib { f } ] ->
          Alcotest.(check (option (float 0.0))) "fmin" (Some 10.0) fmin;
          Alcotest.(check (option (float 0.0))) "fmax" (Some 1e3) fmax;
          Alcotest.(check (option int)) "points" (Some 5) points;
          Alcotest.(check bool) "log" true log;
          Alcotest.(check (option string)) "engine" (Some "bruteforce") engine;
          Alcotest.(check (option (float 0.0))) "f" (Some 500.0) f
      | _ -> Alcotest.fail "unexpected analyses")

let test_looks_like_path () =
  Alcotest.(check bool) "scn" true (Deck.looks_like_path "foo.scn");
  Alcotest.(check bool) "slash" true (Deck.looks_like_path "decks/foo");
  Alcotest.(check bool) "stdin" true (Deck.looks_like_path "-");
  Alcotest.(check bool) "name" false (Deck.looks_like_path "switched-rc")

(* --- canonical content hash (the serve cache key) --- *)

module Canon = Scnoise_lang.Canon

let hash_of text =
  match Deck.load_string ~name:"canon.scn" text with
  | Ok l -> Canon.hash l.Deck.elab l.Deck.ast
  | Error msg -> Alcotest.fail msg

let canon_base =
  ".param rs = 1k\n\
   .param c  = 1n\n\
   S1 vout 0 {rs} closed=0\n\
   C1 vout 0 {c}\n\
   .clock duty period={5 * rs * c} duty=0.5\n\
   .output vout\n\
   .end\n"

let test_canon_layout_invariant () =
  let base = hash_of canon_base in
  (* comments, blank lines and spacing do not matter *)
  let noisy =
    "* a comment\n\n.param rs = 1k   ; trailing note\n\
     .param c  =   1n\n\n\n\
     S1   vout 0   {rs}   closed=0\n\
     C1 vout 0 {c}\n\
     .clock duty period={5 * rs * c} duty=0.5\n\
     .output vout\n.end\n"
  in
  Alcotest.(check string) "comments+whitespace" base (hash_of noisy);
  (* parameter order and expression spelling do not matter once
     evaluated *)
  let reordered =
    ".param c  = 1n\n\
     .param rs = 1000\n\
     S1 vout 0 {rs} closed=0\n\
     C1 vout 0 {c * 1}\n\
     .clock duty period=5u duty=0.5\n\
     .output vout\n\
     .end\n"
  in
  Alcotest.(check string) "param order+spelling" base (hash_of reordered);
  (* analysis directives are request defaults, not circuit content *)
  let with_directive =
    canon_base |> String.split_on_char '\n'
    |> List.map (fun l ->
           if l = ".end" then ".psd fmin=0 fmax=16k points=33\n.end" else l)
    |> String.concat "\n"
  in
  Alcotest.(check string) "directives excluded" base (hash_of with_directive)

let test_canon_value_sensitive () =
  let base = hash_of canon_base in
  let changed_value =
    ".param rs = 1k\n.param c  = 2n\n\
     S1 vout 0 {rs} closed=0\nC1 vout 0 {c}\n\
     .clock duty period={5 * rs * c} duty=0.5\n.output vout\n.end\n"
  in
  if hash_of changed_value = base then
    Alcotest.fail "changed capacitor value must change the hash";
  let changed_clock =
    ".param rs = 1k\n.param c  = 1n\n\
     S1 vout 0 {rs} closed=0\nC1 vout 0 {c}\n\
     .clock duty period={5 * rs * c} duty=0.3\n.output vout\n.end\n"
  in
  if hash_of changed_clock = base then
    Alcotest.fail "changed duty cycle must change the hash";
  (* the canonical document leads with its format version *)
  match Deck.load_string ~name:"canon.scn" canon_base with
  | Error msg -> Alcotest.fail msg
  | Ok l ->
      let doc = Canon.canonical l.Deck.elab l.Deck.ast in
      if not (String.length doc > String.length Canon.version
              && String.sub doc 0 (String.length Canon.version)
                 = Canon.version)
      then Alcotest.fail "canonical document must start with the version"

let () =
  Alcotest.run "lang"
    [
      ( "lexer",
        [
          Alcotest.test_case "si suffixes" `Quick test_lexer_suffixes;
          Alcotest.test_case "unit tails" `Quick test_lexer_unit_tails;
          Alcotest.test_case "comments+continuation" `Quick
            test_lexer_comments_and_continuation;
          Alcotest.test_case "error loc" `Quick test_lexer_error_loc;
          Alcotest.test_case "dangling continuation" `Quick
            test_lexer_dangling_continuation;
        ] );
      ( "parser",
        [
          Alcotest.test_case "negative literal" `Quick
            test_parser_negative_literal;
          Alcotest.test_case "numeric nodes" `Quick test_parser_numeric_nodes;
          Alcotest.test_case "switch phases" `Quick test_parser_switch_phases;
        ] );
      ( "printer",
        [
          Alcotest.test_case "kitchen sink" `Quick test_roundtrip_kitchen_sink;
          Alcotest.test_case "unit tails" `Quick test_roundtrip_units;
          Alcotest.test_case "shipped decks" `Quick
            test_roundtrip_shipped_decks;
          Alcotest.test_case "float_str" `Quick test_float_str_exact;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "lexical" `Quick test_diag_lexical;
          Alcotest.test_case "syntax" `Quick test_diag_syntax;
          Alcotest.test_case "unknown node" `Quick test_diag_unknown_node;
          Alcotest.test_case "bad value" `Quick test_diag_bad_value;
          Alcotest.test_case "missing directives" `Quick
            test_diag_missing_directives;
          Alcotest.test_case "ground output" `Quick test_diag_ground_output;
          Alcotest.test_case "duplicates" `Quick test_diag_duplicates;
        ] );
      ( "parity",
        [
          Alcotest.test_case "switched-rc" `Quick test_parity_switched_rc;
          Alcotest.test_case "sc integrator" `Quick test_parity_sc_integrator;
          Alcotest.test_case "sc ladder" `Quick test_parity_sc_ladder;
          Alcotest.test_case "sc ladder erc" `Quick test_erc_sc_ladder;
        ] );
      ( "elaborator",
        [
          Alcotest.test_case "directives" `Quick test_elab_directives;
          Alcotest.test_case "looks_like_path" `Quick test_looks_like_path;
        ] );
      ( "canon",
        [
          Alcotest.test_case "layout invariant" `Quick
            test_canon_layout_invariant;
          Alcotest.test_case "value sensitive" `Quick
            test_canon_value_sensitive;
        ] );
    ]
