module Mat = Scnoise_linalg.Mat
module Vec = Scnoise_linalg.Vec
module Lyapunov = Scnoise_linalg.Lyapunov
module Const = Scnoise_util.Const
module Db = Scnoise_util.Db
module Clock = Scnoise_circuit.Clock
module Netlist = Scnoise_circuit.Netlist
module Compile = Scnoise_circuit.Compile
module Pwl = Scnoise_circuit.Pwl
module Phase_grid = Scnoise_core.Phase_grid
module Covariance = Scnoise_core.Covariance
module Psd = Scnoise_core.Psd
module Contrib = Scnoise_core.Contrib
module Lti = Scnoise_analytic.Lti
module A_src = Scnoise_analytic.Switched_rc
module C_src = Scnoise_circuits.Switched_rc

let check_close ?(eps = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > eps *. (1.0 +. abs_float expected) then
    Alcotest.failf "%s: expected %.17g, got %.17g" msg expected actual

let check_db ?(tol = 0.05) msg expected actual =
  let d = abs_float (Db.of_power expected -. Db.of_power actual) in
  if d > tol then
    Alcotest.failf "%s: %g vs %g differ by %.3f dB (tol %.3f)" msg expected
      actual d tol

(* --- Phase_grid --- *)

let mat_of rows = Mat.of_arrays (Array.of_list (List.map Array.of_list rows))

let check_grid g tau =
  let n = Array.length g in
  if g.(0) <> 0.0 then Alcotest.fail "grid must start at 0";
  if abs_float (g.(n - 1) -. tau) > 1e-15 *. tau then
    Alcotest.fail "grid must end at tau";
  for i = 1 to n - 1 do
    if g.(i) <= g.(i - 1) then Alcotest.fail "grid must be increasing"
  done

let test_grid_uniform () =
  let g = Phase_grid.uniform ~tau:2.0 ~n:10 in
  Alcotest.(check int) "points" 11 (Array.length g);
  check_grid g 2.0;
  check_close "step" 0.2 (g.(1) -. g.(0))

let test_grid_nonstiff_is_uniform () =
  let a = mat_of [ [ -1.0 ] ] in
  let g = Phase_grid.make ~a ~tau:1.0 ~n:8 in
  check_grid g 1.0;
  check_close "uniform when non-stiff" 0.125 (g.(1) -. g.(0))

let test_grid_stiff_clusters () =
  let a = mat_of [ [ -1e8 ] ] in
  let tau = 1e-4 in
  let g = Phase_grid.make ~a ~tau ~n:64 in
  check_grid g tau;
  (* first step must resolve the fast time constant *)
  if g.(1) -. g.(0) > 1e-7 then
    Alcotest.failf "boundary layer unresolved: first step %g" (g.(1) -. g.(0))

let test_grid_zero_dynamics () =
  let a = mat_of [ [ 0.0 ] ] in
  let g = Phase_grid.make ~a ~tau:1.0 ~n:4 in
  check_grid g 1.0;
  check_close "layer" 0.0 (Phase_grid.boundary_layer a 1.0)

(* --- shared circuits --- *)

let switched_rc ?(t_over_rc = 5.0) ?(duty = 0.5) () =
  C_src.build (C_src.with_ratio ~t_over_rc ~duty ())

let analytic_of (b : C_src.built) =
  let p = b.C_src.params in
  A_src.make ~temperature:p.C_src.temperature ~r:p.C_src.r ~c:p.C_src.c
    ~period:p.C_src.period ~duty:p.C_src.duty ()

(* plain RC as a single-phase "switched" system *)
let plain_rc r c =
  let nl = Netlist.create () in
  let out = Netlist.node nl "out" in
  Netlist.resistor ~name:"R" nl out Netlist.ground r;
  Netlist.capacitor nl out Netlist.ground c;
  let sys = Compile.compile nl (Clock.make [ 1e-6 ]) in
  (sys, Pwl.observable sys "out")

(* --- Covariance --- *)

let test_cov_switched_rc_variance () =
  let b = switched_rc () in
  let s = Covariance.sample b.C_src.sys in
  check_close ~eps:1e-10 "kT/C at boundary"
    (Const.kt () /. b.C_src.params.C_src.c)
    (Covariance.variance_at_boundary s b.C_src.output);
  (* the switched RC variance is constant over the whole period *)
  let tr = Covariance.variance_trace s b.C_src.output in
  Array.iter
    (fun v -> check_close ~eps:1e-9 "constant variance" tr.(0) v)
    tr;
  check_close ~eps:1e-10 "average too"
    (Const.kt () /. b.C_src.params.C_src.c)
    (Covariance.average_variance s b.C_src.output)

let test_cov_closure () =
  let b = switched_rc ~t_over_rc:20.0 ~duty:0.25 () in
  let s = Covariance.sample b.C_src.sys in
  if Covariance.closure_error s > 1e-20 then
    Alcotest.failf "periodicity closure error %g" (Covariance.closure_error s)

let test_cov_solvers_agree () =
  let b = switched_rc () in
  let k1 = Covariance.periodic_initial ~solver:`Kron b.C_src.sys in
  let k2 = Covariance.periodic_initial ~solver:`Doubling b.C_src.sys in
  let k3 = Covariance.periodic_initial ~solver:(`Iterate 400) b.C_src.sys in
  if Mat.max_abs_diff k1 k2 > 1e-14 then Alcotest.fail "kron vs doubling";
  if Mat.max_abs_diff k1 k3 > 1e-5 *. Mat.max_abs k1 then
    Alcotest.fail "kron vs iterate"

let test_cov_lti_matches_continuous_lyapunov () =
  let sys, out = plain_rc 1e3 1e-9 in
  let s = Covariance.sample sys in
  let ph = sys.Pwl.phases.(0) in
  let k_ref = Lyapunov.solve_continuous ph.Pwl.a ph.Pwl.q in
  check_close ~eps:1e-9 "LTI limit"
    (Vec.dot out (Mat.mul_vec k_ref out))
    (Covariance.variance_at_boundary s out)

let test_cov_grid_kinds_agree () =
  let b = switched_rc () in
  let s1 = Covariance.sample ~grid:`Stretched b.C_src.sys in
  let s2 = Covariance.sample ~grid:`Uniform b.C_src.sys in
  check_close ~eps:1e-10 "grids agree on steady variance"
    (Covariance.variance_at_boundary s1 b.C_src.output)
    (Covariance.variance_at_boundary s2 b.C_src.output)

let test_cov_period_map_stability () =
  let b = switched_rc () in
  let phi, q = Covariance.period_map b.C_src.sys in
  if Mat.get phi 0 0 >= 1.0 then Alcotest.fail "monodromy not contracting";
  if Mat.get q 0 0 <= 0.0 then Alcotest.fail "no accumulated noise"

(* --- Psd (MFT) vs closed form --- *)

let test_psd_matches_analytic_cases () =
  List.iter
    (fun (t_over_rc, duty) ->
      let b = switched_rc ~t_over_rc ~duty () in
      let eng = Psd.prepare ~samples_per_phase:128 b.C_src.sys ~output:b.C_src.output in
      let a = analytic_of b in
      List.iter
        (fun f_over_fc ->
          let f = f_over_fc /. b.C_src.params.C_src.period in
          check_db ~tol:0.02
            (Printf.sprintf "T/RC=%g d=%g f=%g" t_over_rc duty f)
            (A_src.psd a f) (Psd.psd eng ~f))
        [ 0.0; 0.1; 0.5; 0.9; 1.3; 2.7; 5.5 ])
    [ (5.0, 0.5); (5.0, 0.25); (20.0, 0.5); (20.0, 0.25); (2.0, 0.75) ]

let test_psd_lti_limit () =
  let r = 1e3 and c = 1e-9 in
  let sys, out = plain_rc r c in
  let eng = Psd.prepare sys ~output:out in
  List.iter
    (fun f ->
      check_db ~tol:0.01 "LTI Lorentzian" (Lti.rc_lowpass_psd ~r ~c f)
        (Psd.psd eng ~f))
    [ 0.0; 1e4; 1.59155e5; 1e6 ]

let test_psd_even_in_f () =
  let b = switched_rc () in
  let eng = Psd.prepare b.C_src.sys ~output:b.C_src.output in
  let f = 1.23e5 in
  check_close ~eps:1e-9 "S(-f) = S(f)" (Psd.psd eng ~f) (Psd.psd eng ~f:(-.f))

let test_psd_sweep_consistency () =
  let b = switched_rc () in
  let eng = Psd.prepare b.C_src.sys ~output:b.C_src.output in
  let freqs = [| 1e3; 1e4; 1e5 |] in
  let s = Psd.sweep eng freqs in
  Array.iteri
    (fun i f -> check_close "sweep = pointwise" (Psd.psd eng ~f) s.(i))
    freqs

let test_psd_positive () =
  let b = switched_rc ~t_over_rc:20.0 ~duty:0.25 () in
  let eng = Psd.prepare b.C_src.sys ~output:b.C_src.output in
  Array.iter
    (fun f ->
      if Psd.psd eng ~f < 0.0 then Alcotest.failf "negative PSD at %g" f)
    (Scnoise_util.Grid.logspace 1e2 1e7 40)

let test_psd_envelope_periodicity () =
  let b = switched_rc () in
  let eng = Psd.prepare b.C_src.sys ~output:b.C_src.output in
  let env = Psd.envelope eng ~f:5e4 in
  let n = Array.length env in
  let d = Scnoise_linalg.Cvec.max_abs_diff env.(0) env.(n - 1) in
  let scale = Scnoise_linalg.Cvec.norm_inf env.(0) in
  if d > 1e-9 *. (1.0 +. scale) then
    Alcotest.failf "envelope not periodic: %g" d

let test_psd_white_input_independence () =
  (* a plain RC PSD at DC must be 2kTR regardless of grid resolution *)
  let r = 2e3 and c = 0.5e-9 in
  let sys, out = plain_rc r c in
  List.iter
    (fun spp ->
      let eng = Psd.prepare ~samples_per_phase:spp sys ~output:out in
      check_db ~tol:0.01 "2kTR at DC" (2.0 *. Const.kt () *. r)
        (Psd.psd eng ~f:0.0))
    [ 16; 64; 256 ]

let test_psd_parseval () =
  (* integrating the PSD over frequency must recover the average
     variance (Parseval); the switched RC spectrum decays slowly (~1/f²
     from the sampled component), so integrate far out and accept a few
     percent *)
  let b = switched_rc () in
  let eng = Psd.prepare b.C_src.sys ~output:b.C_src.output in
  let fmax = 400.0 /. b.C_src.params.C_src.period in
  let freqs = Scnoise_util.Grid.linspace 0.0 fmax 6000 in
  let s = Psd.sweep eng freqs in
  let integral = 2.0 *. Scnoise_util.Grid.trapezoid freqs s in
  (* factor 2: S is double-sided, integrate over negative side too *)
  let var = Psd.average_variance eng in
  if abs_float (integral -. var) > 0.05 *. var then
    Alcotest.failf "Parseval: ∫S = %g vs variance %g" integral var

(* --- Contrib --- *)

let two_source_rc () =
  (* two resistors in parallel to the same cap: contributions add *)
  let nl = Netlist.create () in
  let out = Netlist.node nl "out" in
  Netlist.resistor ~name:"Ra" nl out Netlist.ground 1e3;
  Netlist.resistor ~name:"Rb" nl out Netlist.ground 4e3;
  Netlist.capacitor nl out Netlist.ground 1e-9;
  let sys = Compile.compile nl (Clock.make [ 1e-6 ]) in
  (sys, Pwl.observable sys "out")

let test_contrib_labels () =
  let sys, _ = two_source_rc () in
  Alcotest.(check (list string)) "labels" [ "Ra"; "Rb" ]
    (Contrib.source_labels sys)

let test_contrib_additivity () =
  let sys, out = two_source_rc () in
  let gap = Contrib.check_additivity sys ~output:out ~f:1e4 in
  if gap > 1e-9 then Alcotest.failf "contributions not additive: %g" gap

let test_contrib_ratio () =
  (* with Ra = 1k and Rb = 4k in parallel, source currents scale as 1/R,
     and both see the same impedance: PSD contributions scale as 1/R *)
  let sys, out = two_source_rc () in
  match Contrib.per_source_psd sys ~output:out ~f:1e3 with
  | [ ("Ra", sa); ("Rb", sb) ] ->
      check_close ~eps:1e-6 "4:1 ratio" 4.0 (sa /. sb)
  | _ -> Alcotest.fail "expected two labelled contributions"

let test_contrib_restrict_empty () =
  let sys, out = two_source_rc () in
  let none = Contrib.restrict sys ~keep:(fun _ -> false) in
  let eng = Psd.prepare none ~output:out in
  check_close "silent circuit" 0.0 (Psd.psd eng ~f:1e3);
  check_close "zero variance" 0.0 (Psd.average_variance eng)

(* --- solver ablation: `Iterate converges like the naive method --- *)

let test_iterate_solver_converges_with_periods () =
  let b = switched_rc () in
  let exact = Covariance.periodic_initial ~solver:`Kron b.C_src.sys in
  let err n =
    Mat.max_abs_diff exact
      (Covariance.periodic_initial ~solver:(`Iterate n) b.C_src.sys)
  in
  let e1 = err 2 and e2 = err 8 in
  if e2 >= e1 then Alcotest.fail "iterate solver should improve with periods"

let () =
  Alcotest.run "core"
    [
      ( "phase_grid",
        [
          Alcotest.test_case "uniform" `Quick test_grid_uniform;
          Alcotest.test_case "non-stiff" `Quick test_grid_nonstiff_is_uniform;
          Alcotest.test_case "stiff clusters" `Quick test_grid_stiff_clusters;
          Alcotest.test_case "zero dynamics" `Quick test_grid_zero_dynamics;
        ] );
      ( "covariance",
        [
          Alcotest.test_case "kT/C" `Quick test_cov_switched_rc_variance;
          Alcotest.test_case "closure" `Quick test_cov_closure;
          Alcotest.test_case "solvers agree" `Quick test_cov_solvers_agree;
          Alcotest.test_case "LTI limit" `Quick test_cov_lti_matches_continuous_lyapunov;
          Alcotest.test_case "grid kinds" `Quick test_cov_grid_kinds_agree;
          Alcotest.test_case "period map" `Quick test_cov_period_map_stability;
          Alcotest.test_case "iterate improves" `Quick test_iterate_solver_converges_with_periods;
        ] );
      ( "psd",
        [
          Alcotest.test_case "matches closed form" `Quick test_psd_matches_analytic_cases;
          Alcotest.test_case "LTI limit" `Quick test_psd_lti_limit;
          Alcotest.test_case "even in f" `Quick test_psd_even_in_f;
          Alcotest.test_case "sweep" `Quick test_psd_sweep_consistency;
          Alcotest.test_case "positive" `Quick test_psd_positive;
          Alcotest.test_case "envelope periodic" `Quick test_psd_envelope_periodicity;
          Alcotest.test_case "grid independence" `Quick test_psd_white_input_independence;
          Alcotest.test_case "parseval" `Slow test_psd_parseval;
        ] );
      ( "contrib",
        [
          Alcotest.test_case "labels" `Quick test_contrib_labels;
          Alcotest.test_case "additivity" `Quick test_contrib_additivity;
          Alcotest.test_case "ratio" `Quick test_contrib_ratio;
          Alcotest.test_case "restrict empty" `Quick test_contrib_restrict_empty;
        ] );
    ]
