module Cx = Scnoise_linalg.Cx
module Cvec = Scnoise_linalg.Cvec
module Fft = Scnoise_spectral.Fft
module Welch = Scnoise_spectral.Welch
module Db = Scnoise_util.Db
module Psd = Scnoise_core.Psd
module Mc = Scnoise_noise.Monte_carlo
module SRC = Scnoise_circuits.Switched_rc
module Gaussian = Scnoise_prng.Gaussian

let check_close ?(eps = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > eps *. (1.0 +. abs_float expected) then
    Alcotest.failf "%s: expected %.17g, got %.17g" msg expected actual

(* naive O(n^2) DFT reference *)
let dft x =
  let n = Cvec.dim x in
  Cvec.init n (fun k ->
      let acc = ref Cx.zero in
      for j = 0 to n - 1 do
        let ph = -2.0 *. Float.pi *. float_of_int (k * j) /. float_of_int n in
        acc := Cx.( +: ) !acc (Cx.( *: ) (Cvec.get x j) (Cx.cis ph))
      done;
      !acc)

let test_pow2_helpers () =
  if not (Fft.is_pow2 64) then Alcotest.fail "64";
  if Fft.is_pow2 48 then Alcotest.fail "48";
  Alcotest.(check int) "next" 64 (Fft.next_pow2 33);
  Alcotest.(check int) "exact" 32 (Fft.next_pow2 32);
  Alcotest.(check int) "one" 1 (Fft.next_pow2 1)

let test_fft_matches_dft () =
  let rng = Gaussian.create 7L in
  let x = Cvec.init 64 (fun _ -> Cx.make (Gaussian.sample rng) (Gaussian.sample rng)) in
  let a = Fft.transform x and b = dft x in
  if Cvec.max_abs_diff a b > 1e-9 then Alcotest.fail "fft vs naive dft"

let test_fft_roundtrip () =
  let rng = Gaussian.create 11L in
  let x = Cvec.init 128 (fun _ -> Cx.make (Gaussian.sample rng) 0.0) in
  let y = Fft.inverse (Fft.transform x) in
  if Cvec.max_abs_diff x y > 1e-10 then Alcotest.fail "roundtrip"

let test_fft_impulse () =
  let x = Cvec.create 16 in
  Cvec.set x 0 Cx.one;
  let y = Fft.transform x in
  for k = 0 to Cvec.dim y - 1 do
    if Cx.modulus (Cx.( -: ) (Cvec.get y k) Cx.one) > 1e-12 then
      Alcotest.fail "impulse -> all-ones"
  done

let test_fft_sine_bin () =
  let n = 64 in
  let k0 = 5 in
  let x =
    Array.init n (fun j ->
        cos (2.0 *. Float.pi *. float_of_int (k0 * j) /. float_of_int n))
  in
  let y = Fft.real_transform x in
  check_close ~eps:1e-9 "peak bin" (float_of_int n /. 2.0)
    (Cx.modulus (Cvec.get y k0));
  check_close ~eps:1e-9 "mirror bin" (float_of_int n /. 2.0)
    (Cx.modulus (Cvec.get y (n - k0)));
  (* other bins empty *)
  for k = 0 to Cvec.dim y - 1 do
    if k <> k0 && k <> n - k0 && Cx.modulus (Cvec.get y k) > 1e-9 then
      Alcotest.failf "leakage in bin %d" k
  done

let test_fft_parseval () =
  let rng = Gaussian.create 13L in
  let x = Array.init 256 (fun _ -> Gaussian.sample rng) in
  let y = Fft.real_transform x in
  let time_energy = Array.fold_left (fun a v -> a +. (v *. v)) 0.0 x in
  let freq_energy =
    let acc = ref 0.0 in
    for k = 0 to Cvec.dim y - 1 do
      acc := !acc +. (Cx.modulus (Cvec.get y k) ** 2.0)
    done;
    !acc /. float_of_int 256
  in
  check_close ~eps:1e-9 "parseval" time_energy freq_energy

let test_fft_invalid_length () =
  match Fft.transform (Cvec.create 48) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-pow2 accepted"

(* --- Welch --- *)

let test_welch_white_level () =
  (* white samples of variance v sampled at dt: density v*dt *)
  let rng = Gaussian.create 17L in
  let dt = 1e-5 in
  let record = Array.init 65536 (fun _ -> 2.0 *. Gaussian.sample rng) in
  let _, psd = Welch.estimate ~dt ~segment:1024 record in
  (* average the interior bins *)
  let n = Array.length psd in
  let avg = ref 0.0 in
  for i = 2 to n - 3 do
    avg := !avg +. psd.(i)
  done;
  let avg = !avg /. float_of_int (n - 4) in
  check_close ~eps:0.05 "white level" (4.0 *. dt) avg

let test_welch_sine_peak_location () =
  let dt = 1e-4 in
  let f0 = 1000.0 in
  let record =
    Array.init 16384 (fun i ->
        sin (2.0 *. Float.pi *. f0 *. dt *. float_of_int i))
  in
  let freqs, psd = Welch.estimate ~dt ~segment:2048 record in
  let imax = ref 0 in
  Array.iteri (fun i v -> if v > psd.(!imax) then imax := i) psd;
  check_close ~eps:0.01 "peak frequency" f0 freqs.(!imax)

let test_welch_validation () =
  (match Welch.estimate ~dt:1.0 ~segment:100 (Array.make 1000 0.0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-pow2 segment accepted");
  match Welch.periodogram ~dt:0.0 (Array.make 16 0.0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "dt = 0 accepted"

(* --- Monte-Carlo full spectrum vs MFT --- *)

let test_full_spectrum_matches_mft () =
  let b = SRC.build (SRC.with_ratio ~t_over_rc:5.0 ~duty:0.5 ()) in
  let eng = Psd.prepare b.SRC.sys ~output:b.SRC.output in
  let freqs, psd =
    Mc.full_spectrum ~seed:3L ~paths:12 ~samples_per_phase:32
      ~record_periods:512 ~segment_periods:32 b.SRC.sys ~output:b.SRC.output
  in
  (* compare interior bins well below the sampling Nyquist: the Welch
     estimate sees the *sampled* process, whose spectrum folds the
     continuous tail back near Nyquist *)
  let n = Array.length freqs in
  List.iter
    (fun idx ->
      let f = freqs.(idx) in
      let d = abs_float (Db.delta psd.(idx) (Psd.psd eng ~f)) in
      if d > 1.0 then Alcotest.failf "bin %d (f=%g): %g dB" idx f d)
    [ n / 16; n / 8; n / 4 ]

let test_full_spectrum_rejects_unequal_phases () =
  let b = SRC.build (SRC.with_ratio ~t_over_rc:5.0 ~duty:0.25 ()) in
  match Mc.full_spectrum ~paths:1 b.SRC.sys ~output:b.SRC.output with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unequal phases accepted"

let () =
  Alcotest.run "spectral"
    [
      ( "fft",
        [
          Alcotest.test_case "pow2" `Quick test_pow2_helpers;
          Alcotest.test_case "matches dft" `Quick test_fft_matches_dft;
          Alcotest.test_case "roundtrip" `Quick test_fft_roundtrip;
          Alcotest.test_case "impulse" `Quick test_fft_impulse;
          Alcotest.test_case "sine bin" `Quick test_fft_sine_bin;
          Alcotest.test_case "parseval" `Quick test_fft_parseval;
          Alcotest.test_case "invalid length" `Quick test_fft_invalid_length;
        ] );
      ( "welch",
        [
          Alcotest.test_case "white level" `Quick test_welch_white_level;
          Alcotest.test_case "sine peak" `Quick test_welch_sine_peak_location;
          Alcotest.test_case "validation" `Quick test_welch_validation;
        ] );
      ( "full spectrum",
        [
          Alcotest.test_case "matches mft" `Slow test_full_spectrum_matches_mft;
          Alcotest.test_case "unequal phases" `Quick test_full_spectrum_rejects_unequal_phases;
        ] );
    ]
