(* Benchmark harness: regenerates every reconstructed table and figure of
   the evaluation (see DESIGN.md / EXPERIMENTS.md for the index).

     dune exec bench/main.exe            -- run everything
     dune exec bench/main.exe -- f2 t1   -- run a subset

   Figures are printed as aligned data series (frequency vs dB columns);
   tables as aligned rows.  Timing tables use Bechamel. *)

module Table = Scnoise_util.Table
module Grid = Scnoise_util.Grid
module Db = Scnoise_util.Db
module Mat = Scnoise_linalg.Mat
module Pwl = Scnoise_circuit.Pwl
module Psd = Scnoise_core.Psd
module Covariance = Scnoise_core.Covariance
module Contrib = Scnoise_core.Contrib
module Esd = Scnoise_noise.Esd_transient
module Mc = Scnoise_noise.Monte_carlo
module A_src = Scnoise_analytic.Switched_rc
module SRC = Scnoise_circuits.Switched_rc
module LP = Scnoise_circuits.Sc_lowpass
module BP = Scnoise_circuits.Sc_bandpass
module INT = Scnoise_circuits.Sc_integrator
module Obs = Scnoise_obs.Obs
module Clock = Scnoise_obs.Clock
module Export = Scnoise_obs.Export
module Trace = Scnoise_obs.Trace
module Bench_diff = Scnoise_obs.Bench_diff
module Hist = Scnoise_obs.Hist
module Pool = Scnoise_par.Pool

let header title =
  Printf.printf "\n================ %s ================\n%!" title

(* Wall-clock milliseconds for one call of [f] (monotonic, unlike
   [Sys.time], which reports CPU time and skews under load). *)
let wall_ms f =
  let t0 = Clock.now () in
  f ();
  1000.0 *. Clock.elapsed t0

(* ------------------------------------------------------------------ *)
(* Bechamel helpers                                                     *)
(* ------------------------------------------------------------------ *)

let time_per_run_ns tests =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.6) ~kde:None
      ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"g" tests) in
  let res = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name ols acc ->
      match Analyze.OLS.estimates ols with
      | Some (e :: _) -> (name, e) :: acc
      | Some [] | None -> acc)
    res []

let find_time results suffix =
  match
    List.find_opt (fun (name, _) -> String.ends_with ~suffix name) results
  with
  | Some (_, ns) -> ns
  | None -> nan

(* ------------------------------------------------------------------ *)
(* EXP-F1: PSD at a fixed frequency as a function of time              *)
(* ------------------------------------------------------------------ *)

let exp_f1 () =
  header "EXP-F1  PSD(7.5 kHz) vs time, SC low-pass (companion Fig. 1)";
  let b = LP.build LP.default in
  let f = 7.5e3 in
  let eng = Psd.prepare ~samples_per_phase:128 b.LP.sys ~output:b.LP.output in
  let s_mft = Psd.psd eng ~f in
  let bf =
    Esd.psd ~samples_per_phase:128 ~tol_db:0.02 ~window_periods:3 b.LP.sys
      ~output:b.LP.output ~f
  in
  Printf.printf "MFT steady-state value: %.3f dB (one-period solve)\n"
    (Db.of_power s_mft);
  Printf.printf "Brute force converged after %d clock periods\n" bf.Esd.periods;
  let t = Table.create [ "time_s"; "bruteforce_dB"; "mft_dB" ] in
  Array.iter
    (fun (time, est) ->
      Table.add_float_row t ~precision:5
        (Printf.sprintf "%.6g" time)
        [ Db.of_power est; Db.of_power s_mft ])
    bf.Esd.history;
  Table.print t

(* ------------------------------------------------------------------ *)
(* EXP-F2: switched RC vs the closed form (companion Fig. 3)           *)
(* ------------------------------------------------------------------ *)

let exp_f2 () =
  header "EXP-F2  switched RC PSD vs Rice-equivalent closed form (Fig. 3)";
  let combos = [ (5.0, 0.5); (5.0, 0.25); (20.0, 0.5); (20.0, 0.25) ] in
  List.iter
    (fun (t_over_rc, duty) ->
      Printf.printf "\n-- T/RC = %g, duty = %g --\n" t_over_rc duty;
      let b = SRC.build (SRC.with_ratio ~t_over_rc ~duty ()) in
      let p = b.SRC.params in
      let a =
        A_src.make ~r:p.SRC.r ~c:p.SRC.c ~period:p.SRC.period ~duty:p.SRC.duty
          ()
      in
      let eng =
        Psd.prepare ~samples_per_phase:128 b.SRC.sys ~output:b.SRC.output
      in
      let fts = Grid.linspace 0.0 3.0 31 in
      let freqs = Array.map (fun ft -> ft /. p.SRC.period) fts in
      let mft = Psd.sweep_db eng freqs in
      let t = Table.create [ "f*T"; "mft_dB"; "analytic_dB"; "delta_dB" ] in
      let max_err = ref 0.0 in
      Array.iteri
        (fun i ft ->
          let s1 = mft.(i) in
          let s2 = Db.of_power (A_src.psd a freqs.(i)) in
          max_err := max !max_err (abs_float (s1 -. s2));
          Table.add_float_row t ~precision:5
            (Printf.sprintf "%.2f" ft)
            [ s1; s2; s1 -. s2 ])
        fts;
      Table.print t;
      Printf.printf "max |error| = %.4f dB\n" !max_err)
    combos

(* ------------------------------------------------------------------ *)
(* EXP-F3: SC low-pass, both op-amp macromodels (companion Fig. 7)     *)
(* ------------------------------------------------------------------ *)

let lowpass_freqs = Grid.linspace 100.0 16_000.0 60

let exp_f3 () =
  header "EXP-F3  SC low-pass PSD, two op-amp macromodels (Fig. 7)";
  let b1 = LP.build LP.default in
  let b2 = LP.build LP.single_stage_variant in
  let e1 = Psd.prepare ~samples_per_phase:128 b1.LP.sys ~output:b1.LP.output in
  let e2 = Psd.prepare ~samples_per_phase:128 b2.LP.sys ~output:b2.LP.output in
  let s1 = Psd.sweep_db e1 lowpass_freqs in
  let s2 = Psd.sweep_db e2 lowpass_freqs in
  let t =
    Table.create [ "f_Hz"; "integrator_opamp_dB"; "single_stage_dB" ]
  in
  Array.iteri
    (fun i f ->
      Table.add_float_row t ~precision:5
        (Printf.sprintf "%.0f" f)
        [ s1.(i); s2.(i) ])
    lowpass_freqs;
  Table.print t

(* ------------------------------------------------------------------ *)
(* EXP-F4: switch-resistance study (companion Fig. 8)                  *)
(* ------------------------------------------------------------------ *)

let exp_f4 () =
  header "EXP-F4  SC low-pass vs switch resistances (Fig. 8)";
  let variants =
    [
      ("all 80", LP.default);
      ("R4=800", { LP.default with LP.r4 = 800.0 });
      ("R5=800", { LP.default with LP.r5 = 800.0 });
      ("R6=800", { LP.default with LP.r6 = 800.0 });
    ]
  in
  let engines =
    List.map
      (fun (label, p) ->
        let b = LP.build p in
        (label, Psd.prepare ~samples_per_phase:128 b.LP.sys ~output:b.LP.output))
      variants
  in
  let t = Table.create ("f_Hz" :: List.map fst engines) in
  Array.iter
    (fun f ->
      Table.add_float_row t ~precision:5
        (Printf.sprintf "%.0f" f)
        (List.map (fun (_, e) -> Psd.psd_db e ~f) engines))
    lowpass_freqs;
  Table.print t

(* ------------------------------------------------------------------ *)
(* EXP-F5: op-amp bandwidth study (companion Fig. 9)                   *)
(* ------------------------------------------------------------------ *)

let exp_f5 () =
  header "EXP-F5  SC low-pass vs op-amp unity-gain frequency (Fig. 9)";
  let variants =
    [
      ("9pi*1e6", 9.0 *. Float.pi *. 1e6);
      ("9pi*1e7", 9.0 *. Float.pi *. 1e7);
      ("~inf(9pi*1e9)", 9.0 *. Float.pi *. 1e9);
    ]
  in
  let engines =
    List.map
      (fun (label, ugf) ->
        let b = LP.build { LP.default with LP.opamp = LP.Integrator { ugf } } in
        (label, Psd.prepare ~samples_per_phase:192 b.LP.sys ~output:b.LP.output))
      variants
  in
  let t = Table.create ("f_Hz" :: List.map fst engines) in
  Array.iter
    (fun f ->
      Table.add_float_row t ~precision:5
        (Printf.sprintf "%.0f" f)
        (List.map (fun (_, e) -> Psd.psd_db e ~f) engines))
    lowpass_freqs;
  Table.print t

(* ------------------------------------------------------------------ *)
(* EXP-F6: band-pass filter (companion Fig. 5)                         *)
(* ------------------------------------------------------------------ *)

let exp_f6 () =
  header "EXP-F6  SC band-pass output noise spectral density (Fig. 5)";
  let b = BP.build BP.default in
  let eng = Psd.prepare ~samples_per_phase:96 b.BP.sys ~output:b.BP.output in
  let freqs = Grid.logspace 200.0 64_000.0 60 in
  let t = Table.create [ "f_Hz"; "psd_dB" ] in
  let fpeak = ref 0.0 and speak = ref neg_infinity in
  Array.iter
    (fun f ->
      let s = Psd.psd_db eng ~f in
      if s > !speak then begin
        speak := s;
        fpeak := f
      end;
      Table.add_float_row t ~precision:5 (Printf.sprintf "%.0f" f) [ s ])
    freqs;
  Table.print t;
  Printf.printf "peak %.2f dB near %.0f Hz (designed f0 = 8000 Hz)\n" !speak
    !fpeak;
  (* noise-contribution decomposition at the peak *)
  let parts =
    Contrib.per_source_psd ~samples_per_phase:48 b.BP.sys ~output:b.BP.output
      ~f:!fpeak
  in
  let total = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 parts in
  let top =
    List.sort (fun (_, a) (_, b) -> compare b a) parts |> fun l ->
    List.filteri (fun i _ -> i < 5) l
  in
  let t2 = Table.create [ "source"; "share_%" ] in
  List.iter
    (fun (label, s) ->
      Table.add_float_row t2 ~precision:3 label [ 100.0 *. s /. total ])
    top;
  Printf.printf "\nTop noise contributors at the peak:\n";
  Table.print t2

(* ------------------------------------------------------------------ *)
(* EXP-T1: runtime / speedup table (the DAC headline)                  *)
(* ------------------------------------------------------------------ *)

let exp_t1 () =
  header "EXP-T1  runtime per frequency point: MFT vs brute force";
  let cases =
    [
      ( "switched_rc",
        (let b = SRC.build SRC.default in
         (b.SRC.sys, b.SRC.output)),
        1e5 );
      ( "sc_lowpass",
        (let b = LP.build LP.default in
         (b.LP.sys, b.LP.output)),
        1e3 );
      ( "sc_bandpass",
        (let b = BP.build BP.default in
         (b.BP.sys, b.BP.output)),
        8e3 );
    ]
  in
  let t =
    Table.create
      [
        "circuit"; "states"; "mft_prepare_ms"; "mft_point_ms"; "bf_point_ms";
        "bf_periods"; "speedup";
      ]
  in
  List.iter
    (fun (name, (sys, output), f) ->
      let spp = 96 in
      let eng = Psd.prepare ~samples_per_phase:spp sys ~output in
      let bf0 =
        Esd.psd ~samples_per_phase:spp ~tol_db:0.1 sys ~output ~f
      in
      let open Bechamel in
      let results =
        time_per_run_ns
          [
            Test.make ~name:"prepare"
              (Staged.stage (fun () ->
                   ignore (Psd.prepare ~samples_per_phase:spp sys ~output)));
            Test.make ~name:"mft_point"
              (Staged.stage (fun () -> ignore (Psd.psd eng ~f)));
            Test.make ~name:"bf_point"
              (Staged.stage (fun () ->
                   ignore
                     (Esd.psd ~samples_per_phase:spp ~tol_db:0.1 sys ~output
                        ~f)));
          ]
      in
      let prep = find_time results "prepare" /. 1e6 in
      let mft = find_time results "mft_point" /. 1e6 in
      let bf = find_time results "bf_point" /. 1e6 in
      Table.add_row t
        [
          name;
          string_of_int sys.Pwl.nstates;
          Printf.sprintf "%.3f" prep;
          Printf.sprintf "%.3f" mft;
          Printf.sprintf "%.3f" bf;
          string_of_int bf0.Esd.periods;
          Printf.sprintf "%.1fx" (bf /. mft);
        ])
    cases;
  Table.print t;
  Printf.printf
    "(bf at the paper's 0.1 dB stopping rule; MFT point excludes the shared \
     one-time prepare)\n"

(* ------------------------------------------------------------------ *)
(* EXP-T2: cross-engine accuracy table                                 *)
(* ------------------------------------------------------------------ *)

let exp_t2 () =
  header "EXP-T2  accuracy: max |delta| dB across engines";
  let t = Table.create [ "circuit"; "comparison"; "freqs"; "max_delta_dB" ] in
  (* switched RC vs closed form *)
  let b = SRC.build (SRC.with_ratio ~t_over_rc:5.0 ~duty:0.5 ()) in
  let p = b.SRC.params in
  let a =
    A_src.make ~r:p.SRC.r ~c:p.SRC.c ~period:p.SRC.period ~duty:p.SRC.duty ()
  in
  let eng = Psd.prepare ~samples_per_phase:128 b.SRC.sys ~output:b.SRC.output in
  let freqs = Grid.linspace 1e3 1e6 25 in
  let dmax =
    Array.fold_left max 0.0
      (Array.map
         (fun f ->
           abs_float (Psd.psd_db eng ~f -. Db.of_power (A_src.psd a f)))
         freqs)
  in
  Table.add_row t
    [ "switched_rc"; "mft vs closed form"; "25 in [1k,1M]";
      Printf.sprintf "%.4f" dmax ];
  let bf_err =
    Array.fold_left max 0.0
      (Array.map
         (fun f ->
           let bf =
             Esd.psd ~samples_per_phase:96 ~tol_db:0.02 b.SRC.sys
               ~output:b.SRC.output ~f
           in
           abs_float (Db.of_power bf.Esd.psd -. Db.of_power (A_src.psd a f)))
         (Grid.linspace 1e3 1e6 7))
  in
  Table.add_row t
    [ "switched_rc"; "brute force vs closed form"; "7 in [1k,1M]";
      Printf.sprintf "%.4f" bf_err ];
  (* lowpass mft vs brute force *)
  let bl = LP.build LP.default in
  let el = Psd.prepare ~samples_per_phase:128 bl.LP.sys ~output:bl.LP.output in
  let lp_err =
    List.fold_left
      (fun acc f ->
        let bf =
          Esd.psd ~samples_per_phase:128 ~tol_db:0.02 bl.LP.sys
            ~output:bl.LP.output ~f
        in
        max acc (abs_float (Psd.psd_db el ~f -. Db.of_power bf.Esd.psd)))
      0.0
      [ 100.0; 1e3; 2e3; 6e3; 1e4 ]
  in
  Table.add_row t
    [ "sc_lowpass"; "mft vs brute force"; "5 in [100,10k]";
      Printf.sprintf "%.4f" lp_err ];
  (* bandpass mft vs brute force *)
  let bb = BP.build BP.default in
  let eb = Psd.prepare ~samples_per_phase:64 bb.BP.sys ~output:bb.BP.output in
  let bp_err =
    List.fold_left
      (fun acc f ->
        let bf =
          Esd.psd ~samples_per_phase:64 ~tol_db:0.005 ~window_periods:10
            bb.BP.sys ~output:bb.BP.output ~f
        in
        max acc (abs_float (Psd.psd_db eb ~f -. Db.of_power bf.Esd.psd)))
      0.0 [ 4e3; 8e3; 1.2e4 ]
  in
  Table.add_row t
    [ "sc_bandpass"; "mft vs brute force"; "3 around f0";
      Printf.sprintf "%.4f" bp_err ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* EXP-T3: variance sanity table                                       *)
(* ------------------------------------------------------------------ *)

let exp_t3 () =
  header "EXP-T3  steady-state output variance: MFT vs kT/C law vs Monte-Carlo";
  let t =
    Table.create
      [ "circuit"; "mft_variance_V2"; "reference"; "reference_V2"; "mc_V2" ]
  in
  (* switched RC: kT/C *)
  let b = SRC.build SRC.default in
  let cov = Covariance.sample b.SRC.sys in
  let v_mft = Covariance.average_variance cov b.SRC.output in
  let ktc = Scnoise_util.Const.kt () /. b.SRC.params.SRC.c in
  let mc =
    Mc.estimate ~seed:41L ~paths:8 ~segments_per_path:8 b.SRC.sys
      ~output:b.SRC.output ~freqs:[||]
  in
  Table.add_row t
    [
      "switched_rc";
      Printf.sprintf "%.4e" v_mft;
      "kT/C";
      Printf.sprintf "%.4e" ktc;
      Printf.sprintf "%.4e" mc.Mc.variance;
    ];
  (* integrator: 1/(1-pole^2)-amplified sampled noise; MC cross-check *)
  let bi = INT.build INT.default in
  let covi = Covariance.sample ~samples_per_phase:96 bi.INT.sys in
  let vi = Covariance.average_variance covi bi.INT.output in
  let p = INT.default in
  let var_cycle =
    2.0
    *. (Scnoise_util.Const.kt () /. p.INT.cs)
    *. ((p.INT.cs /. p.INT.ci) ** 2.0)
  in
  let v_dt =
    Scnoise_analytic.Ideal_sc.total_noise_first_order ~var:var_cycle
      ~pole:(INT.dt_pole p)
  in
  let mci =
    Mc.estimate ~seed:43L ~paths:8 ~segments_per_path:6 ~samples_per_phase:64
      bi.INT.sys ~output:bi.INT.output ~freqs:[||]
  in
  Table.add_row t
    [
      "sc_integrator";
      Printf.sprintf "%.4e" vi;
      "ideal DT model";
      Printf.sprintf "%.4e" v_dt;
      Printf.sprintf "%.4e" mci.Mc.variance;
    ];
  (* bandpass: MC cross-check only *)
  let bb = BP.build BP.default in
  let covb = Covariance.sample ~samples_per_phase:64 bb.BP.sys in
  let vb = Covariance.average_variance covb bb.BP.output in
  let mcb =
    Mc.estimate ~seed:47L ~paths:6 ~segments_per_path:6 ~samples_per_phase:48
      bb.BP.sys ~output:bb.BP.output ~freqs:[||]
  in
  Table.add_row t
    [
      "sc_bandpass";
      Printf.sprintf "%.4e" vb;
      "(none)";
      "-";
      Printf.sprintf "%.4e" mcb.Mc.variance;
    ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* EXP-T4: ablation benches                                            *)
(* ------------------------------------------------------------------ *)

let exp_t4 () =
  header "EXP-T4a  periodic-Lyapunov solver ablation (band-pass, 9 states)";
  let b = BP.build BP.default in
  let sys = b.BP.sys in
  let phi, q = Covariance.period_map ~samples_per_phase:64 sys in
  let k_ref = Scnoise_linalg.Lyapunov.solve_discrete_kron phi q in
  let open Bechamel in
  let results =
    time_per_run_ns
      [
        Test.make ~name:"kron"
          (Staged.stage (fun () ->
               ignore (Scnoise_linalg.Lyapunov.solve_discrete_kron phi q)));
        Test.make ~name:"doubling"
          (Staged.stage (fun () ->
               ignore (Scnoise_linalg.Lyapunov.solve_discrete_doubling phi q)));
      ]
  in
  let t = Table.create [ "solver"; "time_ms"; "max_err_vs_kron" ] in
  Table.add_row t
    [ "kron (exact)"; Printf.sprintf "%.4f" (find_time results "kron" /. 1e6);
      "0" ];
  let k_dbl = Scnoise_linalg.Lyapunov.solve_discrete_doubling phi q in
  Table.add_row t
    [
      "doubling"; Printf.sprintf "%.4f" (find_time results "doubling" /. 1e6);
      Printf.sprintf "%.2e" (Mat.max_abs_diff k_ref k_dbl);
    ];
  List.iter
    (fun n ->
      let k = ref (Mat.create sys.Pwl.nstates sys.Pwl.nstates) in
      let ms =
        wall_ms (fun () ->
            for _ = 1 to n do
              k :=
                Mat.symmetrize
                  (Mat.add (Mat.mul phi (Mat.mul !k (Mat.transpose phi))) q)
            done)
      in
      Table.add_row t
        [
          Printf.sprintf "iterate x%d (naive)" n;
          Printf.sprintf "%.4f" ms;
          Printf.sprintf "%.2e" (Mat.max_abs_diff k_ref !k);
        ])
    [ 64; 512 ];
  Table.print t;
  header "EXP-T4b  one-period quadrature grid ablation (SC low-pass)";
  let bl = LP.build LP.default in
  let reference =
    Psd.psd
      (Psd.prepare ~samples_per_phase:768 ~grid:`Stretched bl.LP.sys
         ~output:bl.LP.output)
      ~f:100.0
  in
  let t =
    Table.create [ "samples/phase"; "stretched_err_dB"; "uniform_err_dB" ]
  in
  List.iter
    (fun spp ->
      let v grid =
        Psd.psd
          (Psd.prepare ~samples_per_phase:spp ~grid bl.LP.sys
             ~output:bl.LP.output)
          ~f:100.0
      in
      let err grid = abs_float (Db.delta (v grid) reference) in
      Table.add_row t
        [
          string_of_int spp;
          Printf.sprintf "%.4f" (err `Stretched);
          Printf.sprintf "%.4f" (err `Uniform);
        ])
    [ 16; 32; 64; 128; 256 ];
  Table.print t;
  Printf.printf
    "(stretched grids resolve the post-switching boundary layer of the stiff \
     phases)\n"

(* ------------------------------------------------------------------ *)
(* EXP-T5: frequency-domain (harmonic) baseline truncation study       *)
(* ------------------------------------------------------------------ *)

let exp_t5 () =
  header
    "EXP-T5  frequency-domain LPTV baseline: aliasing-sum truncation vs the \
     time-domain result";
  let module Fd = Scnoise_noise.Freq_domain in
  (* switched RC: the closed form referees *)
  let b = SRC.build (SRC.with_ratio ~t_over_rc:5.0 ~duty:0.5 ()) in
  let p = b.SRC.params in
  let a =
    A_src.make ~r:p.SRC.r ~c:p.SRC.c ~period:p.SRC.period ~duty:p.SRC.duty ()
  in
  let fd = Fd.prepare ~samples_per_phase:96 b.SRC.sys ~output:b.SRC.output in
  let f = 1e4 in
  let s_ref = A_src.psd a f in
  let t =
    Table.create [ "K"; "solves"; "fd_dB"; "error_dB"; "time_ms" ]
  in
  List.iter
    (fun k ->
      let s = ref 0.0 in
      let dt = wall_ms (fun () -> s := Fd.psd fd ~f ~k_max:k) in
      let s = !s in
      Table.add_row t
        [
          string_of_int k;
          string_of_int ((2 * k) + 1);
          Printf.sprintf "%.3f" (Db.of_power s);
          Printf.sprintf "%+.3f" (Db.of_power s -. Db.of_power s_ref);
          Printf.sprintf "%.2f" dt;
        ])
    [ 0; 1; 2; 5; 10; 20; 40 ];
  Printf.printf "switched RC at f = %.0f Hz (closed form %.3f dB):\n" f
    (Db.of_power s_ref);
  Table.print t;
  (* the stiff low-pass filter: the aliasing sum must span the op-amp
     bandwidth, i.e. hundreds of clock harmonics *)
  let bl = LP.build LP.default in
  let el = Psd.prepare ~samples_per_phase:96 bl.LP.sys ~output:bl.LP.output in
  let s_mft = Psd.psd el ~f:100.0 in
  let fdl = Fd.prepare ~samples_per_phase:96 bl.LP.sys ~output:bl.LP.output in
  let t2 = Table.create [ "K"; "solves/source"; "error_dB"; "time_s" ] in
  List.iter
    (fun k ->
      let s = ref 0.0 in
      let dt = wall_ms (fun () -> s := Fd.psd fdl ~f:100.0 ~k_max:k) /. 1000.0 in
      let s = !s in
      Table.add_row t2
        [
          string_of_int k;
          string_of_int ((2 * k) + 1);
          Printf.sprintf "%+.2f" (Db.of_power s -. Db.of_power s_mft);
          Printf.sprintf "%.2f" dt;
        ])
    [ 0; 8; 32; 64 ];
  Printf.printf
    "\nstiff SC low-pass at 100 Hz (MFT: %.2f dB): the op-amp noise \
     bandwidth\nspans ~10^3 clock harmonics, so truncated sums fall short:\n"
    (Db.of_power s_mft);
  Table.print t2;
  Printf.printf
    "(this is the cost wall that motivates the mixed-frequency-time method)\n"

(* ------------------------------------------------------------------ *)
(* EXP-T6: scaling with the number of states (switched RC ladder)      *)
(* ------------------------------------------------------------------ *)

let exp_t6 () =
  header "EXP-T6  cost vs circuit size (switched RC ladder, N states)";
  let module LAD = Scnoise_circuits.Sc_ladder in
  let t =
    Table.create
      [ "states"; "prepare_ms"; "mft_point_ms"; "bf_point_ms"; "speedup" ]
  in
  List.iter
    (fun n ->
      let b = LAD.build (LAD.with_stages n) in
      let sys = b.LAD.sys and output = b.LAD.output in
      let spp = 48 in
      let time f =
        (* median wall time of a few repetitions *)
        let reps = 3 in
        let samples = List.init reps (fun _ -> wall_ms f) in
        List.nth (List.sort compare samples) (reps / 2)
      in
      let eng = ref None in
      let prep =
        time (fun () ->
            eng := Some (Psd.prepare ~samples_per_phase:spp sys ~output))
      in
      let eng = Option.get !eng in
      let f = 1e4 in
      let mft = time (fun () -> ignore (Psd.psd eng ~f)) in
      let bf =
        time (fun () ->
            ignore (Esd.psd ~samples_per_phase:spp ~tol_db:0.1 sys ~output ~f))
      in
      Table.add_row t
        [
          string_of_int n;
          Printf.sprintf "%.2f" prep;
          Printf.sprintf "%.3f" mft;
          Printf.sprintf "%.3f" bf;
          Printf.sprintf "%.1fx" (bf /. mft);
        ])
    [ 1; 2; 4; 8; 12; 16 ];
  Table.print t;
  Printf.printf
    "(the papers put the method's practical limit at the N(N+1)/2 \
     covariance unknowns;\n the dense engines here scale as O(N^3) per \
     substep and stay interactive to a few tens of states)\n"

(* ------------------------------------------------------------------ *)
(* EXP-T7: validity of the "full and fast" (ideal z-domain) baseline    *)
(* ------------------------------------------------------------------ *)

let exp_t7 () =
  header
    "EXP-T7  full-and-fast validity: exact MFT vs the ideal z-domain model      (SC integrator)";
  let module Dt = Scnoise_dtime.Dt_system in
  let t =
    Table.create
      [ "R_switch"; "RC/phase"; "err@100Hz_dB"; "err@1kHz_dB"; "err@10kHz_dB" ]
  in
  List.iter
    (fun r ->
      let p = { INT.default with INT.r_switch = r } in
      let b = INT.build p in
      let eng =
        Psd.prepare ~samples_per_phase:96 b.INT.sys ~output:b.INT.output
      in
      let dt = INT.ideal_dt p in
      let d f = Db.delta (Psd.psd eng ~f) (Dt.spectrum_held dt ~f) in
      let phase = 0.5 /. p.INT.clock_hz in
      Table.add_row t
        [
          Printf.sprintf "%.0e" r;
          Printf.sprintf "%.3f" (r *. p.INT.cs /. phase);
          Printf.sprintf "%+.2f" (d 100.0);
          Printf.sprintf "%+.2f" (d 1e3);
          Printf.sprintf "%+.2f" (d 1e4);
        ])
    [ 1e2; 1e4; 1e5; 1e6; 4e6; 1.6e7; 6.4e7 ];
  Table.print t;
  Printf.printf
    "(the ideal z-domain picture — used by the Goette/Toth-style baselines —      holds while the
 settling constant stays below ~1/5 of the phase and      collapses beyond; the exact
 time-domain engines need no such      assumption)
"

let float_bits_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
       a b

(* ------------------------------------------------------------------ *)
(* EXP-K1: complex-kernel microbenchmarks and hot-loop allocation      *)
(* ------------------------------------------------------------------ *)

let exp_kern () =
  header "EXP-K1  unboxed complex kernels: ns/op and per-point allocation";
  let module Cx = Scnoise_linalg.Cx in
  let module Cvec = Scnoise_linalg.Cvec in
  let module Cmat = Scnoise_linalg.Cmat in
  let module Clu = Scnoise_linalg.Clu in
  let module Ctrap = Scnoise_ode.Ctrapezoid in
  let t =
    Table.create
      [ "n"; "kernel"; "alloc_ns"; "into_ns"; "speedup" ]
  in
  List.iter
    (fun n ->
      let rng = Random.State.make [| 0xbe_5c; n |] in
      let rnd () = Random.State.float rng 2.0 -. 1.0 in
      let m =
        Cmat.init n n (fun i j ->
            if i = j then Cx.make (float_of_int n +. 2.0 +. rnd ()) (rnd ())
            else Cx.make (0.3 *. rnd ()) (0.3 *. rnd ()))
      in
      let v = Cvec.init n (fun _ -> Cx.make (rnd ()) (rnd ())) in
      let out = Cvec.create n in
      let lu = Clu.factor m in
      let lu_into = Clu.create n in
      let work = Array.make (2 * n) 0.0 in
      let a =
        Mat.init n n (fun i j ->
            if i = j then -.(float_of_int n +. 1.5) *. 1e6 else 3e5 *. rnd ())
      in
      let omega = 2.0 *. Float.pi *. 1e4 in
      let st = Ctrap.make ~a ~shift:(Cx.make 0.0 omega) ~h:1e-7 in
      let k0 = Cvec.init n (fun _ -> Cx.make (rnd ()) (rnd ())) in
      let open Bechamel in
      let results =
        time_per_run_ns
          [
            Test.make ~name:"mul_vec"
              (Staged.stage (fun () -> ignore (Cmat.mul_vec m v)));
            Test.make ~name:"mul_vec_into"
              (Staged.stage (fun () -> Cmat.mul_vec_into m v ~into:out));
            Test.make ~name:"lu_factor"
              (Staged.stage (fun () -> ignore (Clu.factor m)));
            Test.make ~name:"lu_factor_into"
              (Staged.stage (fun () -> Clu.factor_into lu_into m));
            Test.make ~name:"lu_solve"
              (Staged.stage (fun () -> ignore (Clu.solve lu v)));
            Test.make ~name:"lu_solve_into"
              (Staged.stage (fun () -> Clu.solve_into lu ~work ~b:v ~into:out));
            Test.make ~name:"trap_step"
              (Staged.stage (fun () -> ignore (Ctrap.step st ~p:v ~k0 ~k1:k0)));
            Test.make ~name:"trap_step_into"
              (Staged.stage (fun () ->
                   Ctrap.step_into st ~p:v ~k0 ~k1:k0 ~into:out));
          ]
      in
      List.iter
        (fun (kernel, alloc_name, into_name) ->
          let ta = find_time results alloc_name in
          let ti = find_time results into_name in
          Table.add_row t
            [
              string_of_int n; kernel; Printf.sprintf "%.1f" ta;
              Printf.sprintf "%.1f" ti; Printf.sprintf "%.2fx" (ta /. ti);
            ])
        [
          ("cmat.mul_vec", "mul_vec", "mul_vec_into");
          ("clu.factor", "lu_factor", "lu_factor_into");
          ("clu.solve", "lu_solve", "lu_solve_into");
          ("ctrap.step", "trap_step", "trap_step_into");
        ])
    [ 1; 4; 9 ];
  Table.print t;
  (* per-PSD-point allocation, demod default vs reference factorization.
     [Gc.allocated_bytes] advances at GC boundaries, so only high rep
     counts give a stable per-call figure. *)
  let module Bvp = Scnoise_core.Periodic_bvp in
  let b = LP.build LP.default in
  let eng = Psd.prepare ~samples_per_phase:128 b.LP.sys ~output:b.LP.output in
  let freqs = [| 100.0; 1e3; 4e3; 8e3; 16e3 |] in
  let per_point reference =
    let prev = Bvp.reference_enabled () in
    Bvp.set_reference reference;
    Fun.protect ~finally:(fun () -> Bvp.set_reference prev) @@ fun () ->
    Array.iter (fun f -> ignore (Psd.psd eng ~f)) freqs;
    let reps = 400 in
    let a0 = Gc.allocated_bytes () in
    for _ = 1 to reps do
      Array.iter (fun f -> ignore (Psd.psd eng ~f)) freqs
    done;
    (Gc.allocated_bytes () -. a0) /. float_of_int (reps * Array.length freqs)
  in
  let demod_b = per_point false in
  let ref_b = per_point true in
  let t2 = Table.create [ "bvp_backend"; "bytes/point" ] in
  Table.add_row t2 [ "demod (default)"; Printf.sprintf "%.0f" demod_b ];
  Table.add_row t2 [ "reference"; Printf.sprintf "%.0f" ref_b ];
  Table.print t2;
  let solve_into_ns =
    let rng = Random.State.make [| 0x50_1e |] in
    let rnd () = Random.State.float rng 2.0 -. 1.0 in
    let n = 4 in
    let m =
      Cmat.init n n (fun i j ->
          if i = j then Cx.make 6.0 (rnd ()) else Cx.make (0.3 *. rnd ()) 0.0)
    in
    let lu = Clu.factor m in
    let v = Cvec.init n (fun _ -> Cx.make (rnd ()) (rnd ())) in
    let out = Cvec.create n in
    let work = Array.make (2 * n) 0.0 in
    let open Bechamel in
    find_time
      (time_per_run_ns
         [
           Test.make ~name:"solve4"
             (Staged.stage (fun () -> Clu.solve_into lu ~work ~b:v ~into:out));
         ])
      "solve4"
  in
  Printf.printf
    "KERN-SMOKE: demod_bytes_per_point=%.0f reference_bytes_per_point=%.0f \
     solve_into_n4_ns=%.0f ok=%s\n"
    demod_b ref_b solve_into_ns
    (if demod_b < 48_000.0 then "ok" else "FAIL");
  (* --- EXP-B1: batched sweeps — blocked multi-RHS kernels ---

     Per-RHS kernel cost at widths 1/8/16, then whole-sweep ms/pt and
     bytes/pt on sc_lowpass with a serial pool (isolating the kernel
     effect from domain parallelism).  Batched results must be
     bit-identical to the B=1 sweep; the smoke gate demands the
     auto-tuned width beat B=1 by >= 1.5x. *)
  header "EXP-B1  batched sweeps: blocked multi-RHS kernels (sc_lowpass)";
  let module Lu = Scnoise_linalg.Lu in
  let tk =
    Table.create
      [ "n"; "kernel"; "b1_ns"; "b8_ns/rhs"; "b16_ns/rhs"; "speedup16" ]
  in
  List.iter
    (fun n ->
      let rng = Random.State.make [| 0xb1_0c; n |] in
      let rnd () = Random.State.float rng 2.0 -. 1.0 in
      let a =
        Mat.init n n (fun i j ->
            if i = j then float_of_int n +. 2.0 +. rnd () else 0.3 *. rnd ())
      in
      let lu = Lu.factor a in
      let v = Cvec.init n (fun _ -> Cx.make (rnd ()) (rnd ())) in
      let out = Cvec.create n in
      let mk_panel w =
        let p = Cvec.panel_create ~dim:n ~width:w in
        for b = 0 to w - 1 do
          Cvec.panel_set_col v p ~width:w ~col:b
        done;
        (p, Cvec.panel_create ~dim:n ~width:w)
      in
      let p8, o8 = mk_panel 8 in
      let p16, o16 = mk_panel 16 in
      let open Bechamel in
      let results =
        time_per_run_ns
          [
            Test.make ~name:"c1"
              (Staged.stage (fun () ->
                   Lu.solve_complex_into lu ~b:v ~into:out));
            Test.make ~name:"b8"
              (Staged.stage (fun () ->
                   Lu.solve_block_into lu ~width:8 ~b:p8 ~into:o8));
            Test.make ~name:"b16"
              (Staged.stage (fun () ->
                   Lu.solve_block_into lu ~width:16 ~b:p16 ~into:o16));
          ]
      in
      let c1 = find_time results "c1" in
      let b8 = find_time results "b8" /. 8.0 in
      let b16 = find_time results "b16" /. 16.0 in
      Table.add_row tk
        [
          string_of_int n; "lu.solve (complex rhs)"; Printf.sprintf "%.1f" c1;
          Printf.sprintf "%.1f" b8; Printf.sprintf "%.1f" b16;
          Printf.sprintf "%.2fx" (c1 /. b16);
        ])
    [ 4; 9 ];
  Table.print tk;
  let serial = Pool.create ~jobs:1 () in
  (* Sweep the demodulated backend's operating band: above ~4 kHz the
     sc_lowpass engine's refinement contraction needs more than
     [demod_max_iters] passes and every tile hands its points back to
     the complex-LU fallback — identical in both modes, so including
     that band would only dilute the measurement of the blocked
     kernels (the psd.unbatched_points counter tracks such points). *)
  let freqs = Grid.linspace 100.0 4_000.0 192 in
  let npts = Array.length freqs in
  let sweep_at b = Psd.sweep ~pool:serial ~batch:b eng freqs in
  let reference_sweep = sweep_at 1 in
  let auto_b = Psd.batch_width eng ~npoints:npts in
  let widths = Array.of_list (List.sort_uniq compare [ 1; 4; 8; 16; auto_b ]) in
  let nw = Array.length widths in
  (* Interleaved rounds: the container's wall clock sees multi-hundred-
     millisecond interference windows from neighbours, so measuring one
     width's reps back-to-back lets a single window poison that width
     alone (and with it the speedup ratio).  Each round times every
     width once; the per-width minimum over rounds then samples every
     width under the same conditions. *)
  let best = Array.make nw infinity in
  let results = Array.make nw [||] in
  Array.iteri (fun k b -> results.(k) <- sweep_at b) widths;
  for _ = 1 to 7 do
    Array.iteri
      (fun k b ->
        let ms = wall_ms (fun () -> results.(k) <- sweep_at b) in
        if ms < best.(k) then best.(k) <- ms)
      widths
  done;
  let t3 = Table.create [ "B"; "ms/pt"; "bytes/pt"; "speedup"; "parity" ] in
  let ms_b1 = ref nan and ms_auto = ref nan in
  let parity_all = ref true in
  Array.iteri
    (fun k b ->
      (* averaged over many sweeps: [Gc.allocated_bytes] advances in
         minor-heap-sized quanta, so a single sweep reads as 0 or 2 MB
         depending on where the young pointer happens to sit *)
      let bytes =
        let reps = 20 in
        let a0 = Gc.allocated_bytes () in
        for _ = 1 to reps do
          ignore (sweep_at b)
        done;
        (Gc.allocated_bytes () -. a0) /. float_of_int (reps * npts)
      in
      let ms_pt = best.(k) /. float_of_int npts in
      if b = 1 then ms_b1 := ms_pt;
      if b = auto_b then ms_auto := ms_pt;
      Obs.timer_record
        (Obs.timer (Printf.sprintf "kern.sweep_b%d" b))
        (ms_pt /. 1000.0);
      let parity = float_bits_equal results.(k) reference_sweep in
      if not parity then parity_all := false;
      Table.add_row t3
        [
          (if b = auto_b then Printf.sprintf "%d (auto)" b
           else string_of_int b);
          Printf.sprintf "%.4f" ms_pt; Printf.sprintf "%.0f" bytes;
          Printf.sprintf "%.2fx" (!ms_b1 /. ms_pt);
          (if parity then "bit-identical" else "MISMATCH");
        ])
    widths;
  Table.print t3;
  Obs.timer_record (Obs.timer "kern.sweep_auto") (!ms_auto /. 1000.0);
  let speedup = !ms_b1 /. !ms_auto in
  let batch_ok = speedup >= 1.5 && !parity_all in
  Printf.printf
    "BATCH-SMOKE: b1_ms_per_pt=%.4f auto_b=%d auto_ms_per_pt=%.4f \
     speedup=%.2fx parity=%s ok=%s\n"
    !ms_b1 auto_b !ms_auto speedup
    (if !parity_all then "bit" else "MISMATCH")
    (if batch_ok then "ok" else "FAIL");
  if demod_b >= 48_000.0 || not batch_ok then exit 1

(* ------------------------------------------------------------------ *)
(* EXP-P1: domain pool — serial vs parallel wall time, bit parity      *)
(* ------------------------------------------------------------------ *)

let exp_par () =
  header "EXP-P1  domain pool: serial vs parallel wall time (bit parity)";
  let pjobs = max 2 (Pool.default_jobs ()) in
  let serial = Pool.create ~jobs:1 () in
  let par = Pool.create ~jobs:pjobs () in
  let b = LP.build LP.default in
  let eng = Psd.prepare ~samples_per_phase:128 b.LP.sys ~output:b.LP.output in
  let freqs = Grid.linspace 100.0 16_000.0 96 in
  let t =
    Table.create
      [ "workload"; "serial_ms"; Printf.sprintf "jobs%d_ms" pjobs; "speedup";
        "parity" ]
  in
  let all_ok = ref true in
  let row name run equal =
    let r1 = ref None and rn = ref None in
    let t1 = wall_ms (fun () -> r1 := Some (run serial)) in
    let tn = wall_ms (fun () -> rn := Some (run par)) in
    let ok = equal (Option.get !r1) (Option.get !rn) in
    if not ok then all_ok := false;
    Obs.timer_record (Obs.timer ("par." ^ name ^ ".serial")) (t1 /. 1000.0);
    Obs.timer_record (Obs.timer ("par." ^ name ^ ".parallel")) (tn /. 1000.0);
    Table.add_row t
      [
        name; Printf.sprintf "%.1f" t1; Printf.sprintf "%.1f" tn;
        Printf.sprintf "%.2fx" (t1 /. tn);
        (if ok then "bit-identical" else "MISMATCH");
      ];
    t1 /. tn
  in
  let sweep_speedup =
    row "psd_sweep" (fun pool -> Psd.sweep ~pool eng freqs) float_bits_equal
  in
  let bs = SRC.build SRC.default in
  let (_ : float) =
    row "monte_carlo"
      (fun pool ->
        let e =
          Mc.estimate ~seed:71L ~paths:8 ~segments_per_path:8 ~pool bs.SRC.sys
            ~output:bs.SRC.output ~freqs:(Grid.linspace 1e3 1e5 4)
        in
        Array.append e.Mc.psd [| e.Mc.variance |])
      float_bits_equal
  in
  let (_ : float) =
    row "discretize"
      (fun pool ->
        Covariance.discretized_grid ~samples_per_phase:256 ~pool b.LP.sys)
      (fun g1 g2 ->
        let module Vl = Scnoise_linalg.Vanloan in
        Array.length g1.Covariance.g_disc = Array.length g2.Covariance.g_disc
        && Array.for_all2
             (fun d1 d2 ->
               Mat.max_abs_diff d1.Vl.phi d2.Vl.phi = 0.0
               && Mat.max_abs_diff d1.Vl.qd d2.Vl.qd = 0.0)
             g1.Covariance.g_disc g2.Covariance.g_disc)
  in
  Table.print t;
  let cores = Domain.recommended_domain_count () in
  Printf.printf "PAR-SMOKE: jobs=%d cores=%d sweep_speedup=%.2f parity=%s\n"
    pjobs cores sweep_speedup
    (if !all_ok then "ok" else "FAIL");
  Pool.shutdown serial;
  Pool.shutdown par;
  if not !all_ok then exit 1;
  (* On a multicore host the pooled sweep must not be slower than serial
     beyond scheduling noise; single-core hosts only check parity. *)
  if cores >= 2 && sweep_speedup < 0.5 then begin
    Printf.eprintf "parallel sweep slower than serial beyond noise (%.2fx)\n"
      sweep_speedup;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* EXP-O1: telemetry overhead (histograms, spans, GC accounting)       *)
(* ------------------------------------------------------------------ *)

let exp_obs () =
  header "EXP-O1  telemetry overhead: histogram recording and span capture";
  (* raw cost of one histogram record *)
  let h = Obs.histogram "bench.obs_probe_s" in
  let hc = Obs.histogram ~mode:Hist.Counts "bench.obs_probe_n" in
  let open Bechamel in
  let results =
    time_per_run_ns
      [
        Test.make ~name:"hist_record"
          (Staged.stage (fun () -> Obs.hist_record h 1e-4));
        Test.make ~name:"hist_record_int"
          (Staged.stage (fun () -> Obs.hist_record_int hc 3));
      ]
  in
  Printf.printf "hist record: %.1f ns (log), %.1f ns (counts)\n"
    (find_time results "hist_record")
    (find_time results "hist_record_int");
  (* end-to-end: a PSD point with telemetry fully off vs fully on.
     The always-on histograms (lu.rcond, clu.rcond, ode.demod_iters)
     are in both runs; the enabled run adds the gated duration
     histograms, spans and GC accounting. *)
  let b = LP.build LP.default in
  let eng = Psd.prepare ~samples_per_phase:128 b.LP.sys ~output:b.LP.output in
  let freqs = [| 100.0; 1e3; 4e3; 8e3; 16e3 |] in
  let point_ms () =
    let reps = 100 in
    Array.iter (fun f -> ignore (Psd.psd eng ~f)) freqs;
    let t0 = Clock.now () in
    for _ = 1 to reps do
      Array.iter (fun f -> ignore (Psd.psd eng ~f)) freqs
    done;
    1000.0 *. Clock.elapsed t0 /. float_of_int (reps * Array.length freqs)
  in
  (* best-of-3 per leg: a single pass is at the mercy of scheduling and
     major-GC phase, and the criterion is the systematic cost, not the
     worst observed jitter *)
  let best f = Float.min (f ()) (Float.min (f ()) (f ())) in
  let was_enabled = Obs.is_enabled () in
  Obs.disable ();
  let off = best point_ms in
  Obs.enable ();
  let on = best point_ms in
  if not was_enabled then Obs.disable ();
  let overhead = 100.0 *. ((on /. off) -. 1.0) in
  let t = Table.create [ "telemetry"; "psd_point_ms"; "overhead_%" ] in
  Table.add_row t [ "off (counters+health hists only)";
                    Printf.sprintf "%.4f" off; "-" ];
  Table.add_row t [ "on (spans, duration hists, GC)";
                    Printf.sprintf "%.4f" on;
                    Printf.sprintf "%+.1f" overhead ];
  Table.print t;
  Printf.printf "OBS-SMOKE: point_off_ms=%.4f point_on_ms=%.4f overhead=%+.1f%%\n"
    off on overhead

(* ------------------------------------------------------------------ *)
(* EXP-C2: covariance backends — dense vs low-rank factored            *)
(* ------------------------------------------------------------------ *)

let exp_cov () =
  header
    "EXP-C2  covariance engines: dense vs factored low-rank (ladder with \
     parasitics)";
  let module LAD = Scnoise_circuits.Sc_ladder in
  let spp = 48 in
  let build stages = LAD.build (LAD.with_parasitics (LAD.with_stages stages)) in
  (* parity first, at a size the dense engine still handles comfortably:
     the two backends must agree on the PSD to well below a nano-dB *)
  let parity_db =
    let b = build 20 in
    let freqs = Grid.logspace 100.0 40e3 9 in
    let run backend =
      let eng =
        Psd.prepare ~cov_backend:backend ~samples_per_phase:spp b.LAD.sys
          ~output:b.LAD.output
      in
      Psd.sweep_db eng freqs
    in
    let d = run Covariance.Dense and l = run Covariance.Lowrank in
    let m = ref 0.0 in
    Array.iteri (fun i x -> m := Float.max !m (abs_float (x -. l.(i)))) d;
    !m
  in
  let t =
    Table.create
      [ "states"; "dense_ms"; "lowrank_ms"; "speedup"; "peak_rank";
        "dense_KiB"; "lowrank_KiB" ]
  in
  let speedup_at_100 = ref 0.0 and rank_at_100 = ref 0 in
  List.iter
    (fun stages ->
      let b = build stages in
      let n = b.LAD.sys.Pwl.nstates in
      (* min over repeats: wall clock on a shared box is one-sided noise
         (other tenants only ever slow us down), so the minimum is the
         honest estimate of the actual cost — for both backends alike *)
      let best_of reps backend cell =
        let best = ref infinity in
        for _ = 1 to reps do
          let ms =
            wall_ms (fun () ->
                cell :=
                  Some
                    (Covariance.sample ~backend ~samples_per_phase:spp
                       b.LAD.sys))
          in
          if ms < !best then best := ms
        done;
        !best
      in
      let sd = ref None and sl = ref None in
      let td = best_of 2 Covariance.Dense sd in
      let tl = best_of 3 Covariance.Lowrank sl in
      let sd = Option.get !sd and sl = Option.get !sl in
      Obs.timer_record (Obs.timer "cov.dense") (td /. 1000.0);
      Obs.timer_record (Obs.timer "cov.lowrank") (tl /. 1000.0);
      if n >= 100 then begin
        speedup_at_100 := td /. tl;
        rank_at_100 := sl.Covariance.peak_rank
      end;
      Table.add_row t
        [
          string_of_int n;
          Printf.sprintf "%.1f" td;
          Printf.sprintf "%.1f" tl;
          Printf.sprintf "%.2fx" (td /. tl);
          string_of_int sl.Covariance.peak_rank;
          Printf.sprintf "%.0f" (float_of_int (Covariance.ks_bytes sd) /. 1024.);
          Printf.sprintf "%.0f" (float_of_int (Covariance.ks_bytes sl) /. 1024.);
        ])
    [ 10; 20; 50 ];
  Table.print t;
  Printf.printf
    "(the low-rank engine memoises one interval operator per distinct \
     (phase, step) pair\n of the stretched grid and propagates K as a \
     compressed factor; both engines solve\n the identical grid)\n";
  let ok = parity_db <= 1e-9 && !speedup_at_100 >= 3.0 in
  Printf.printf
    "COV-SMOKE: n100_speedup=%.2f n100_peak_rank=%d parity_db=%.3e status=%s\n"
    !speedup_at_100 !rank_at_100 parity_db
    (if ok then "ok" else "FAIL");
  if not ok then exit 1

let experiments =
  [
    ("f1", exp_f1); ("f2", exp_f2); ("f3", exp_f3); ("f4", exp_f4);
    ("f5", exp_f5); ("f6", exp_f6); ("t1", exp_t1); ("t2", exp_t2);
    ("t3", exp_t3); ("t4", exp_t4); ("t5", exp_t5); ("t6", exp_t6);
    ("t7", exp_t7); ("kern", exp_kern); ("par", exp_par); ("obs", exp_obs);
    ("cov", exp_cov);
  ]

(* `--trace base.json` for several experiments writes base.f1.json,
   base.kern.json, ...; a single experiment writes the path verbatim. *)
let trace_path template name ~single =
  if single then template
  else
    let base = Filename.remove_extension template in
    let ext = Filename.extension template in
    Printf.sprintf "%s.%s%s" base name ext

(* Run one experiment with span recording on, print its counter/span
   summary next to the Bechamel numbers, and (when BENCH_METRICS_DIR is
   set) drop a machine-readable BENCH_<name>.json run record.  Returns
   the number of regressions versus `--against DIR` (0 without it). *)
let run_instrumented ~trace ~against ~single name f =
  Obs.reset ();
  Obs.enable ();
  let ms = wall_ms f in
  Obs.disable ();
  Obs.timer_record (Obs.timer "bench.wall") (ms /. 1000.0);
  let snap = Obs.snapshot () in
  Printf.printf "\n---- %s observability (%.1f ms wall) ----\n" name ms;
  Export.print_summary snap;
  (match Sys.getenv_opt "BENCH_METRICS_DIR" with
  | None -> ()
  | Some dir ->
      let path = Filename.concat dir (Printf.sprintf "BENCH_%s.json" name) in
      Export.write_file path snap;
      Printf.printf "(wrote %s)\n" path);
  (match trace with
  | None -> ()
  | Some template ->
      let path = trace_path template name ~single in
      Trace.write_file path snap;
      Printf.printf "(wrote trace %s)\n" path);
  match against with
  | None -> 0
  | Some dir -> (
      let path = Filename.concat dir (Printf.sprintf "BENCH_%s.json" name) in
      match In_channel.with_open_text path In_channel.input_all with
      | exception Sys_error msg ->
          Printf.printf "(no baseline for %s: %s)\n" name msg;
          0
      | s ->
          (* the baseline may be a full snapshot or a pruned
             scnoise.bench-metrics document *)
          let baseline = Bench_diff.metrics_of_json_string s in
          let report =
            Bench_diff.diff_metrics ~baseline
              ~current:(Bench_diff.of_snapshot snap) ()
          in
          Printf.printf "-- vs %s --\n" path;
          Bench_diff.print report;
          report.Bench_diff.regressions)

let () =
  (* `--jobs N` / `-j N` may appear anywhere among the experiment names
     and sets the default pool size (same precedence as the CLI flag:
     beats SCNOISE_JOBS, beats the core count).  `--trace FILE` writes a
     Chrome Trace Event timeline per experiment; `--against DIR`
     compares each experiment's metrics against DIR/BENCH_<name>.json
     and exits non-zero on regressions. *)
  let trace = ref None and against = ref None in
  let rec parse names = function
    | [] -> List.rev names
    | ("--jobs" | "-j") :: v :: rest -> (
        match int_of_string_opt v with
        | Some j when j >= 1 ->
            Pool.set_default_jobs j;
            parse names rest
        | Some _ | None ->
            Printf.eprintf "invalid --jobs value %S\n" v;
            exit 2)
    | "--batch" :: v :: rest -> (
        match int_of_string_opt v with
        | Some b when b >= 1 ->
            Psd.set_default_batch b;
            parse names rest
        | Some _ | None ->
            Printf.eprintf "invalid --batch value %S (width must be >= 1)\n" v;
            exit 2)
    | "--trace" :: v :: rest ->
        trace := Some v;
        parse names rest
    | "--against" :: v :: rest ->
        against := Some v;
        parse names rest
    | [ ("--jobs" | "-j" | "--batch" | "--trace" | "--against") ] ->
        Printf.eprintf "%s needs a value\n" Sys.argv.(Array.length Sys.argv - 1);
        exit 2
    | name :: rest -> parse (name :: names) rest
  in
  let requested =
    match parse [] (List.tl (Array.to_list Sys.argv)) with
    | [] -> List.map fst experiments
    | names -> names
  in
  let single = List.length requested = 1 in
  let regressions =
    List.fold_left
      (fun acc name ->
        match List.assoc_opt name experiments with
        | Some f ->
            acc + run_instrumented ~trace:!trace ~against:!against ~single name f
        | None ->
            Printf.eprintf "unknown experiment %S (have: %s)\n" name
              (String.concat ", " (List.map fst experiments));
            exit 1)
      0 requested
  in
  if regressions > 0 then begin
    Printf.eprintf "bench: %d metric regression(s) vs baseline\n" regressions;
    exit 1
  end
