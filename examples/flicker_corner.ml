(* 1/f noise in a switched circuit: add a flicker current source to the
   switched RC and locate the 1/f corner where it meets the kT/C floor.

   The flicker source is synthesised from log-spaced first-order shaping
   filters (the "filtering network" route the source papers point to for
   1/f); each section adds one state and the mixed-frequency-time engine
   handles the resulting decade-spanning stiffness without special
   treatment.

   Run with:  dune exec examples/flicker_corner.exe *)

module Netlist = Scnoise_circuit.Netlist
module Clock = Scnoise_circuit.Clock
module Compile = Scnoise_circuit.Compile
module Pwl = Scnoise_circuit.Pwl
module Psd = Scnoise_core.Psd
module Contrib = Scnoise_core.Contrib
module Table = Scnoise_util.Table
module Grid = Scnoise_util.Grid

let build ~with_flicker =
  let nl = Netlist.create () in
  let out = Netlist.node nl "out" in
  Netlist.switch ~name:"S1" ~closed_in:[ 0 ] nl out Netlist.ground 1e3;
  Netlist.capacitor ~name:"C1" nl out Netlist.ground 1e-9;
  if with_flicker then
    Netlist.flicker_isource ~name:"IF" ~sections_per_decade:3 nl out
      Netlist.ground ~psd_1hz:3e-21 ~fmin:1.0 ~fmax:1e5;
  let sys = Compile.compile nl (Clock.duty ~period:5e-6 ~duty:0.5) in
  (sys, Pwl.observable sys "out")

let () =
  let sys_f, out_f = build ~with_flicker:true in
  let sys_w, out_w = build ~with_flicker:false in
  Printf.printf "states: %d with the flicker bank vs %d without\n"
    sys_f.Pwl.nstates sys_w.Pwl.nstates;
  let e_f = Psd.prepare ~samples_per_phase:64 sys_f ~output:out_f in
  let e_w = Psd.prepare ~samples_per_phase:64 sys_w ~output:out_w in
  let freqs = Grid.logspace 10.0 1e6 25 in
  let t = Table.create [ "f_Hz"; "total_dB"; "white_only_dB"; "excess_dB" ] in
  let corner = ref nan in
  Array.iter
    (fun f ->
      let s_t = Psd.psd_db e_f ~f in
      let s_w = Psd.psd_db e_w ~f in
      let excess = s_t -. s_w in
      if Float.is_nan !corner && excess < 3.0 then corner := f;
      Table.add_float_row t ~precision:4 (Printf.sprintf "%.0f" f)
        [ s_t; s_w; excess ])
    freqs;
  Table.print t;
  Printf.printf "\n1/f corner (excess drops below 3 dB) near %.0f Hz\n" !corner;
  (* who dominates at 100 Hz? *)
  let parts = Contrib.per_source_psd ~samples_per_phase:48 sys_f ~output:out_f ~f:100.0 in
  let total = List.fold_left (fun a (_, s) -> a +. s) 0.0 parts in
  let flicker_share =
    List.fold_left
      (fun a (l, s) -> if String.length l > 2 && String.sub l 0 2 = "IF" then a +. s else a)
      0.0 parts
  in
  Printf.printf
    "at 100 Hz the flicker bank carries %.1f%% of the output noise\n"
    (100.0 *. flicker_share /. total);
  Printf.printf
    "total variance: %.4g V^2 (white-only kT/C = %.4g V^2)\n"
    (Psd.average_variance e_f) (Psd.average_variance e_w)
