(* Quickstart: describe a switched circuit, compile it, and compute its
   output noise spectrum with the mixed-frequency-time engine.

   Run with:  dune exec examples/quickstart.exe

   The circuit is the classic periodically switched RC of Rice's
   analysis: a noisy 1 kohm switch charges a 1 nF capacitor during the
   first half of every 5 us clock period. *)

module Netlist = Scnoise_circuit.Netlist
module Clock = Scnoise_circuit.Clock
module Compile = Scnoise_circuit.Compile
module Pwl = Scnoise_circuit.Pwl
module Psd = Scnoise_core.Psd
module Covariance = Scnoise_core.Covariance
module Table = Scnoise_util.Table
module Db = Scnoise_util.Db

let () =
  (* 1. describe the circuit *)
  let nl = Netlist.create () in
  let vout = Netlist.node nl "vout" in
  Netlist.switch ~name:"S1" ~closed_in:[ 0 ] nl vout Netlist.ground 1e3;
  Netlist.capacitor ~name:"C1" nl vout Netlist.ground 1e-9;

  (* 2. give it a clock: phase 0 = switch closed (50% duty, 200 kHz) *)
  let clock = Clock.duty ~period:5e-6 ~duty:0.5 in

  (* 3. compile to a phase-wise LTI state-space model *)
  let sys = Compile.compile nl clock in
  Printf.printf "compiled: %d state(s), %d clock phase(s), stable = %b\n"
    sys.Pwl.nstates (Pwl.n_phases sys) (Pwl.is_stable sys);

  (* 4. periodic steady-state covariance: the output variance is the
     textbook kT/C independent of the switch resistance *)
  let output = Pwl.observable sys "vout" in
  let cov = Covariance.sample sys in
  Printf.printf "steady-state output variance = %.6g V^2 (kT/C = %.6g)\n"
    (Covariance.variance_at_boundary cov output)
    (Scnoise_util.Const.kt () /. 1e-9);

  (* 5. output noise PSD: one periodic boundary-value solve per
     frequency, reusing the covariance *)
  let eng = Psd.of_sampled cov ~output in
  let freqs = Scnoise_util.Grid.logspace 1e3 2e6 13 in
  let t = Table.create [ "f_Hz"; "psd_V2_per_Hz"; "psd_dB" ] in
  Array.iter
    (fun f ->
      let s = Psd.psd eng ~f in
      Table.add_float_row t
        (Printf.sprintf "%.0f" f)
        [ s; Db.of_power s ])
    freqs;
  Table.print t;

  (* 6. where does the noise come from?  (here: one source only) *)
  let parts = Scnoise_core.Contrib.per_source_psd sys ~output ~f:1e4 in
  List.iter
    (fun (label, s) ->
      Printf.printf "contribution of %s at 10 kHz: %.3g V^2/Hz\n" label s)
    parts
