(* LPTV signal transfer functions: the same periodic-shooting machinery
   that computes noise also characterises how a switched filter treats a
   signal — the baseband response H0(f) and the frequency-translation
   harmonics H_k(f) that create aliasing.

   The example sweeps the SC low-pass filter's baseband response, then
   shows the aliasing harmonics, and cross-checks H0 at one frequency
   against a large-signal time-domain simulation.

   Run with:  dune exec examples/signal_transfer.exe *)

module LP = Scnoise_circuits.Sc_lowpass
module Transfer = Scnoise_core.Transfer
module Simulate = Scnoise_circuit.Simulate
module Pwl = Scnoise_circuit.Pwl
module Netlist = Scnoise_circuit.Netlist
module Clock = Scnoise_circuit.Clock
module Compile = Scnoise_circuit.Compile
module Cx = Scnoise_linalg.Cx
module Vec = Scnoise_linalg.Vec
module Table = Scnoise_util.Table
module Grid = Scnoise_util.Grid
module Db = Scnoise_util.Db

(* rebuild the low-pass with a sine input so we can cross-check H0 *)
let build_with_input waveform =
  let params = LP.default in
  let nl = Netlist.create () in
  let vin = Netlist.node nl "vin" in
  let n1 = Netlist.node nl "n1" in
  let vg = Netlist.node nl "vg" in
  let vo = Netlist.node nl "vo" in
  let n3 = Netlist.node nl "n3" in
  Netlist.vsource ~name:"Vin" nl vin waveform;
  Netlist.switch ~name:"S4" ~closed_in:[ 0 ] nl vin n1 params.LP.r4;
  Netlist.switch ~name:"S5" ~closed_in:[ 1 ] nl n1 Netlist.ground params.LP.r5;
  Netlist.capacitor ~name:"C1" nl n1 vg params.LP.c1;
  Netlist.capacitor ~name:"C2" nl vg vo params.LP.c2;
  Netlist.switch ~name:"S6a" ~closed_in:[ 0 ] nl n3 vo params.LP.r6;
  Netlist.switch ~name:"S6b" ~closed_in:[ 1 ] nl n3 vg params.LP.r6;
  Netlist.capacitor ~name:"C3" nl n3 Netlist.ground params.LP.c3;
  (match params.LP.opamp with
  | LP.Integrator { ugf } ->
      Netlist.opamp_integrator ~name:"OA" nl ~plus:Netlist.ground ~minus:vg
        ~out:vo ~ugf
  | LP.Single_stage { ugf; cout; rout } ->
      Netlist.opamp_single_stage ~name:"OA" nl ~plus:Netlist.ground ~minus:vg
        ~out:vo ~gm:(ugf *. cout) ~rout ~cout);
  let period = 1.0 /. params.LP.clock_hz in
  Compile.compile nl (Clock.make [ period /. 2.0; period /. 2.0 ])

let () =
  let b = LP.build LP.default in
  let tr = Transfer.prepare ~samples_per_phase:192 b.LP.sys ~output:b.LP.output in
  Printf.printf "SC low-pass baseband response and aliasing harmonics:\n";
  let t = Table.create [ "f_Hz"; "|H0|"; "H0_dB"; "|H+1|"; "|H-1|" ] in
  Array.iter
    (fun f ->
      let h = Transfer.harmonics tr ~input:0 ~f ~k_range:1 in
      Table.add_float_row t ~precision:4
        (Printf.sprintf "%.0f" f)
        [
          Cx.modulus h.(1);
          Db.of_amplitude (Cx.modulus h.(1));
          Cx.modulus h.(2);
          Cx.modulus h.(0);
        ])
    (Grid.linspace 10.0 1990.0 12);
  Table.print t;

  (* cross-check |H0| at 400 Hz against a long transient with a sine *)
  let fsig = 400.0 in
  let h0 = Transfer.gain tr ~input:0 ~f:fsig in
  let sys = build_with_input (fun t -> sin (2.0 *. Float.pi *. fsig *. t)) in
  let wf =
    Simulate.transient ~steps_per_phase:192 sys ~periods:80
      ~x0:(Vec.create sys.Pwl.nstates)
  in
  let v = Simulate.observe sys "vo" wf in
  let times = wf.Simulate.times in
  let n = Array.length v in
  (* single-bin Fourier projection of the steady part of the waveform *)
  let start = n / 2 in
  let re = ref 0.0 and im = ref 0.0 and norm = ref 0.0 in
  for i = start to n - 2 do
    let dt = times.(i + 1) -. times.(i) in
    let ph = 2.0 *. Float.pi *. fsig *. times.(i) in
    re := !re +. (v.(i) *. cos ph *. dt);
    im := !im -. (v.(i) *. sin ph *. dt);
    norm := !norm +. dt
  done;
  let mag_sim = 2.0 *. sqrt ((!re *. !re) +. (!im *. !im)) /. !norm in
  Printf.printf
    "\ncross-check at %.0f Hz: |H0| = %.4f (shooting) vs %.4f (transient \
     projection)\n"
    fsig (Cx.modulus h0) mag_sim
