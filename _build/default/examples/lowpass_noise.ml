(* The switched-capacitor low-pass filter at the operating point of the
   Toth et al. measurement (4 kHz clock, 300/100/100 pF, 80 ohm switches,
   -61.5 dB noise generator at the op-amp + input).

   Demonstrates:
   - the two op-amp macromodels the paper compares,
   - per-source noise contribution analysis,
   - the brute-force engine's convergence history against the
     one-shot MFT value (the companion paper's Fig. 1 story).

   Run with:  dune exec examples/lowpass_noise.exe *)

module LP = Scnoise_circuits.Sc_lowpass
module Psd = Scnoise_core.Psd
module Contrib = Scnoise_core.Contrib
module Esd = Scnoise_noise.Esd_transient
module Table = Scnoise_util.Table
module Grid = Scnoise_util.Grid
module Db = Scnoise_util.Db

let () =
  let b1 = LP.build LP.default in
  let b2 = LP.build LP.single_stage_variant in
  let e1 = Psd.prepare ~samples_per_phase:128 b1.LP.sys ~output:b1.LP.output in
  let e2 = Psd.prepare ~samples_per_phase:128 b2.LP.sys ~output:b2.LP.output in

  Printf.printf "SC low-pass filter, clock %.0f Hz\n" LP.default.LP.clock_hz;
  Printf.printf "average output variance (integrator op-amp): %.4g V^2\n\n"
    (Psd.average_variance e1);

  let t = Table.create [ "f_Hz"; "integrator_dB"; "single_stage_dB" ] in
  Array.iter
    (fun f ->
      Table.add_float_row t ~precision:4
        (Printf.sprintf "%.0f" f)
        [ Psd.psd_db e1 ~f; Psd.psd_db e2 ~f ])
    (Grid.linspace 100.0 12_000.0 25);
  Table.print t;

  (* contribution breakdown at 1 kHz *)
  Printf.printf "\nnoise contributions at 1 kHz (integrator op-amp):\n";
  let parts =
    Contrib.per_source_psd ~samples_per_phase:64 b1.LP.sys ~output:b1.LP.output
      ~f:1e3
  in
  let total = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 parts in
  let tc = Table.create [ "source"; "psd_V2_per_Hz"; "share_%" ] in
  List.iter
    (fun (label, s) ->
      Table.add_float_row tc ~precision:3 label [ s; 100.0 *. s /. total ])
    (List.sort (fun (_, a) (_, b) -> compare b a) parts);
  Table.print tc;

  (* convergence story at 7.5 kHz *)
  let f = 7.5e3 in
  let s_mft = Psd.psd e1 ~f in
  let bf =
    Esd.psd ~samples_per_phase:128 ~tol_db:0.05 b1.LP.sys ~output:b1.LP.output
      ~f
  in
  Printf.printf
    "\nat %.1f kHz: MFT gives %.2f dB from one period; the brute-force\n\
     transient needed %d clock periods to settle to %.2f dB (delta %.3f dB)\n"
    (f /. 1e3) (Db.of_power s_mft) bf.Esd.periods (Db.of_power bf.Esd.psd)
    (Db.of_power bf.Esd.psd -. Db.of_power s_mft)
