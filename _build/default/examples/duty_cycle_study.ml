(* How the switched-RC noise spectrum morphs from continuous-time
   (Lorentzian) to sampled-data ((sin f / f)^2) character as the hold
   interval grows — the study of the source paper's Fig. 3, validated
   against the closed-form solution at every point.

   Run with:  dune exec examples/duty_cycle_study.exe *)

module SRC = Scnoise_circuits.Switched_rc
module A_src = Scnoise_analytic.Switched_rc
module Psd = Scnoise_core.Psd
module Table = Scnoise_util.Table
module Grid = Scnoise_util.Grid
module Db = Scnoise_util.Db

let case ~t_over_rc ~duty =
  let b = SRC.build (SRC.with_ratio ~t_over_rc ~duty ()) in
  let p = b.SRC.params in
  let eng = Psd.prepare ~samples_per_phase:96 b.SRC.sys ~output:b.SRC.output in
  let a =
    A_src.make ~r:p.SRC.r ~c:p.SRC.c ~period:p.SRC.period ~duty:p.SRC.duty ()
  in
  (p, eng, a)

let analytic p =
  A_src.make ~r:p.SRC.r ~c:p.SRC.c ~period:p.SRC.period ~duty:p.SRC.duty ()

let () =
  let cases =
    List.map
      (fun (t_over_rc, duty) -> (t_over_rc, duty, case ~t_over_rc ~duty))
      [ (2.0, 0.9); (5.0, 0.5); (20.0, 0.25); (100.0, 0.1) ]
  in
  (* shared normalized frequency axis f*T *)
  let fts = Grid.linspace 0.0 3.0 25 in
  let headers =
    "f*T"
    :: List.concat_map
         (fun (t_over_rc, duty, _) ->
           [
             Printf.sprintf "T/RC=%g,d=%g" t_over_rc duty;
             "closed-form";
           ])
         cases
  in
  let t = Table.create headers in
  Array.iter
    (fun ft ->
      let row =
        List.concat_map
          (fun (_, _, (p, eng, a)) ->
            let f = ft /. p.SRC.period in
            [ Db.of_power (Psd.psd eng ~f); Db.of_power (A_src.psd a f) ])
          cases
      in
      Table.add_float_row t ~precision:4 (Printf.sprintf "%.3f" ft) row)
    fts;
  Table.print t;
  (* the spectral "sampled-data fraction": power below f = 1/(2T) that
     the pure sample-and-hold model would predict *)
  Printf.printf
    "\nAs T/RC grows the spectrum approaches the held-sample limit\n\
     S(0) ~= var * T * (1-d)^2; measured ratios:\n";
  List.iter
    (fun (t_over_rc, duty, (p, eng, a)) ->
      ignore a;
      let s0 = Psd.psd eng ~f:0.0 in
      let hold =
        A_src.variance (analytic p) *. p.SRC.period *. ((1.0 -. duty) ** 2.0)
      in
      Printf.printf "  T/RC=%5g d=%.2f : S(0)/S_hold = %.3f\n" t_over_rc duty
        (s0 /. hold))
    cases
