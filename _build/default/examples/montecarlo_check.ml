(* Three independent engines, one circuit: the mixed-frequency-time
   solver, the brute-force ESD transient, and Monte-Carlo sampling with
   Welch periodograms must agree on the switched-RC spectrum — and all
   three must match the closed form.

   Run with:  dune exec examples/montecarlo_check.exe *)

module SRC = Scnoise_circuits.Switched_rc
module A_src = Scnoise_analytic.Switched_rc
module Psd = Scnoise_core.Psd
module Esd = Scnoise_noise.Esd_transient
module Mc = Scnoise_noise.Monte_carlo
module Table = Scnoise_util.Table
module Db = Scnoise_util.Db

let () =
  let b = SRC.build (SRC.with_ratio ~t_over_rc:5.0 ~duty:0.5 ()) in
  let p = b.SRC.params in
  let a =
    A_src.make ~r:p.SRC.r ~c:p.SRC.c ~period:p.SRC.period ~duty:p.SRC.duty ()
  in
  let eng = Psd.prepare b.SRC.sys ~output:b.SRC.output in
  let freqs = [| 1e3; 1e4; 1e5; 3e5 |] in
  let mc =
    Mc.estimate ~seed:2026L ~paths:16 ~segments_per_path:16 b.SRC.sys
      ~output:b.SRC.output ~freqs
  in
  let t =
    Table.create
      [ "f_Hz"; "closed_form_dB"; "mft_dB"; "bruteforce_dB"; "montecarlo_dB" ]
  in
  Array.iteri
    (fun i f ->
      let bf = Esd.psd ~tol_db:0.02 b.SRC.sys ~output:b.SRC.output ~f in
      Table.add_float_row t ~precision:5
        (Printf.sprintf "%.0f" f)
        [
          Db.of_power (A_src.psd a f);
          Psd.psd_db eng ~f;
          Db.of_power bf.Esd.psd;
          Db.of_power mc.Mc.psd.(i);
        ])
    freqs;
  Table.print t;
  Printf.printf
    "\nvariances: closed form %.4g, MFT %.4g, Monte-Carlo %.4g V^2\n"
    (A_src.variance a)
    (Psd.average_variance eng)
    mc.Mc.variance;
  Printf.printf "(Monte-Carlo: %d Welch segments)\n" mc.Mc.segments
