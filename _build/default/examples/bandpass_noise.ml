(* Design a switched-capacitor band-pass biquad and map its output noise
   spectrum around the resonance.

   Run with:  dune exec examples/bandpass_noise.exe [f0_hz] [q]
   (defaults: 8000 Hz, Q = 2; clock fixed at 128 kHz) *)

module BP = Scnoise_circuits.Sc_bandpass
module Pwl = Scnoise_circuit.Pwl
module Psd = Scnoise_core.Psd
module Eig = Scnoise_linalg.Eig
module Table = Scnoise_util.Table
module Grid = Scnoise_util.Grid

let () =
  let f0 =
    if Array.length Sys.argv > 1 then float_of_string Sys.argv.(1) else 8e3
  in
  let q =
    if Array.length Sys.argv > 2 then float_of_string Sys.argv.(2) else 2.0
  in
  let params = BP.design ~clock_hz:128e3 ~f0 ~q () in
  let b = BP.build params in
  Printf.printf
    "band-pass biquad: f0 = %.0f Hz, Q = %.2f, clock = %.0f Hz\n" f0 q
    params.BP.clock_hz;
  Printf.printf "caps: Ci = %.3g F, Cc = %.3g F, Cd = %.3g F\n" params.BP.ci1
    params.BP.cc12 params.BP.cd;
  let radius = Eig.spectral_radius (Pwl.monodromy b.BP.sys) in
  Printf.printf "Floquet radius %.4f -> noise resonance width ~ %.0f Hz\n"
    radius
    (-.log radius /. Float.pi *. params.BP.clock_hz);
  let eng = Psd.prepare ~samples_per_phase:96 b.BP.sys ~output:b.BP.output in
  let freqs = Grid.logspace (f0 /. 16.0) (4.0 *. f0) 41 in
  let t = Table.create [ "f_Hz"; "psd_dB" ] in
  Array.iter
    (fun f ->
      Table.add_float_row t ~precision:4
        (Printf.sprintf "%.0f" f)
        [ Psd.psd_db eng ~f ])
    freqs;
  Table.print t;
  Printf.printf "average output noise: %.4g V^2 rms = %.3g uV\n"
    (Psd.average_variance eng)
    (1e6 *. sqrt (Psd.average_variance eng))
