examples/duty_cycle_study.ml: Array List Printf Scnoise_analytic Scnoise_circuits Scnoise_core Scnoise_util
