examples/flicker_corner.mli:
