examples/bandpass_noise.mli:
