examples/lowpass_noise.ml: Array List Printf Scnoise_circuits Scnoise_core Scnoise_noise Scnoise_util
