examples/flicker_corner.ml: Array Float List Printf Scnoise_circuit Scnoise_core Scnoise_util String
