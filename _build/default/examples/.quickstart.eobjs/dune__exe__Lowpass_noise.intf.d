examples/lowpass_noise.mli:
