examples/quickstart.ml: Array List Printf Scnoise_circuit Scnoise_core Scnoise_util
