examples/bandpass_noise.ml: Array Float Printf Scnoise_circuit Scnoise_circuits Scnoise_core Scnoise_linalg Scnoise_util Sys
