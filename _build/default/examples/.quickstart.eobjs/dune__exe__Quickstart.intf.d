examples/quickstart.mli:
