examples/montecarlo_check.mli:
