examples/signal_transfer.mli:
