examples/duty_cycle_study.mli:
