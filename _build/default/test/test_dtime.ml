(* Tests of the ideal ("full and fast") discrete-time engine and of the
   per-circuit z-domain models against both closed forms and the exact
   mixed-frequency-time engine. *)

module Mat = Scnoise_linalg.Mat
module Db = Scnoise_util.Db
module Grid = Scnoise_util.Grid
module Const = Scnoise_util.Const
module Dt = Scnoise_dtime.Dt_system
module Ideal_sc = Scnoise_analytic.Ideal_sc
module A_src = Scnoise_analytic.Switched_rc
module SRC = Scnoise_circuits.Switched_rc
module INT = Scnoise_circuits.Sc_integrator
module Psd = Scnoise_core.Psd

let check_close ?(eps = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > eps *. (1.0 +. abs_float expected) then
    Alcotest.failf "%s: expected %.17g, got %.17g" msg expected actual

let mat1 x = Mat.of_arrays [| [| x |] |]

let white_sys sigma period =
  Dt.make ~ad:(mat1 0.0) ~bd:(mat1 sigma) ~c:[| 1.0 |] ~period

let first_order pole sigma period =
  Dt.make ~ad:(mat1 pole) ~bd:(mat1 sigma) ~c:[| 1.0 |] ~period

(* --- Dt_system core --- *)

let test_white_variance_and_flat_spectrum () =
  let t = white_sys 2.0 1e-5 in
  check_close "variance" 4.0 (Dt.variance t);
  check_close "flat at dc" (4.0 *. 1e-5) (Dt.spectrum_sampled t ~f:0.0);
  check_close "flat at fs/3" (4.0 *. 1e-5)
    (Dt.spectrum_sampled t ~f:(1.0 /. 3e-5))

let test_spectrum_alias_periodicity () =
  let t = first_order 0.6 1.0 1e-4 in
  let f = 1234.0 in
  check_close ~eps:1e-10 "periodic in 1/T" (Dt.spectrum_sampled t ~f)
    (Dt.spectrum_sampled t ~f:(f +. 1e4))

let test_spectrum_matches_closed_form () =
  (* first-order recursion against the Ideal_sc closed form (without the
     hold shaping): S_hold(f) = T var sinc^2 / |1 - p z^{-1}|^2, and
     spectrum_held with hold 1 must equal it *)
  let pole = 0.5 and period = 1e-3 in
  let t = first_order pole 1.0 period in
  List.iter
    (fun f ->
      check_close ~eps:1e-9
        (Printf.sprintf "held vs closed form at %g" f)
        (Ideal_sc.first_order_dt_psd ~var:1.0 ~period ~pole f)
        (Dt.spectrum_held t ~f))
    [ 0.0; 100.0; 333.3; 499.0 ]

let test_variance_parseval () =
  (* integrating the sampled spectrum over one alias zone gives the
     variance *)
  let t = first_order 0.7 1.3 1e-4 in
  let fs = 1.0 /. 1e-4 in
  let freqs = Grid.linspace (-.fs /. 2.0) (fs /. 2.0) 4001 in
  let s = Array.map (fun f -> Dt.spectrum_sampled t ~f) freqs in
  let integral = Grid.trapezoid freqs s in
  check_close ~eps:1e-3 "parseval" (Dt.variance t) integral

let test_variance_matches_lyapunov_formula () =
  let pole = 0.8 and sigma = 0.4 in
  let t = first_order pole sigma 1e-4 in
  check_close "var = s^2/(1-p^2)"
    (sigma *. sigma /. (1.0 -. (pole *. pole)))
    (Dt.variance t)

let test_make_validation () =
  (match Dt.make ~ad:(Mat.create 2 1) ~bd:(mat1 1.0) ~c:[| 1.0 |] ~period:1.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-square Ad accepted");
  match Dt.spectrum_held ~hold_fraction:1.5 (white_sys 1.0 1.0) ~f:0.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "hold_fraction > 1 accepted"

(* --- circuit models vs exact engines --- *)

let test_switched_rc_ideal_variance () =
  let p = SRC.with_ratio ~t_over_rc:5.0 ~duty:0.5 () in
  let dt = SRC.ideal_dt p in
  check_close ~eps:1e-12 "sampled variance kT/C"
    (Const.kt () /. p.SRC.c) (Dt.variance dt)

let test_switched_rc_ideal_vs_exact_in_hold_regime () =
  (* when the hold interval spans many RC, the exact low-frequency PSD
     approaches the ideal held-sample model with hold = 1 - duty *)
  let p = SRC.with_ratio ~t_over_rc:2000.0 ~duty:0.5 () in
  let a =
    A_src.make ~r:p.SRC.r ~c:p.SRC.c ~period:p.SRC.period ~duty:p.SRC.duty ()
  in
  let dt = SRC.ideal_dt p in
  List.iter
    (fun f_over_fs ->
      let f = f_over_fs /. p.SRC.period in
      let exact = A_src.psd a f in
      let ideal = Dt.spectrum_held ~hold_fraction:(1.0 -. p.SRC.duty) dt ~f in
      let d = abs_float (Db.delta exact ideal) in
      if d > 0.35 then
        Alcotest.failf "hold regime at f T = %g: %g dB apart" f_over_fs d)
    [ 0.0; 0.2; 0.45 ]

let test_switched_rc_ideal_fails_in_continuous_regime () =
  (* conversely, with T/RC small the full-and-fast picture must be far
     off: the exact spectrum is nearly the continuous Lorentzian *)
  let p = SRC.with_ratio ~t_over_rc:0.2 ~duty:0.5 () in
  let a =
    A_src.make ~r:p.SRC.r ~c:p.SRC.c ~period:p.SRC.period ~duty:p.SRC.duty ()
  in
  let dt = SRC.ideal_dt p in
  let f = 0.25 /. p.SRC.period in
  let exact = A_src.psd a f in
  let ideal = Dt.spectrum_held ~hold_fraction:(1.0 -. p.SRC.duty) dt ~f in
  if abs_float (Db.delta exact ideal) < 1.0 then
    Alcotest.fail "ideal model should break down for slow switching"

let test_integrator_ideal_matches_exact () =
  (* fast switches (default): exact MFT within ~2.5 dB of the ideal
     model (the residual is the op-amp settling and parasitics) *)
  let p = INT.default in
  let b = INT.build p in
  let eng = Psd.prepare ~samples_per_phase:96 b.INT.sys ~output:b.INT.output in
  let dt = INT.ideal_dt p in
  List.iter
    (fun f ->
      let d =
        abs_float (Db.delta (Psd.psd eng ~f) (Dt.spectrum_held dt ~f))
      in
      if d > 2.5 then Alcotest.failf "integrator at %g: %g dB" f d)
    [ 100.0; 1e3; 5e3 ]

let test_integrator_ideal_consistent_with_analytic () =
  (* the Dt_system route and the Ideal_sc closed form must agree exactly *)
  let p = INT.default in
  let dt = INT.ideal_dt p in
  let var =
    2.0 *. Const.kt () /. p.INT.cs *. ((p.INT.cs /. p.INT.ci) ** 2.0)
    +. (2.0 *. Const.kt () /. p.INT.cd *. ((p.INT.cd /. p.INT.ci) ** 2.0))
  in
  let period = 1.0 /. p.INT.clock_hz in
  List.iter
    (fun f ->
      check_close ~eps:1e-9 "dt engine vs closed form"
        (Ideal_sc.first_order_dt_psd ~var ~period ~pole:(INT.dt_pole p) f)
        (Dt.spectrum_held dt ~f))
    [ 0.0; 1e3; 1e4 ]

let test_full_and_fast_breakdown_with_slow_switches () =
  (* the validity study in miniature: as the switch resistance grows the
     charge transfer is no longer "full", and the exact spectrum departs
     from the ideal model *)
  let err r_switch =
    let p = { INT.default with INT.r_switch } in
    let b = INT.build p in
    let eng = Psd.prepare ~samples_per_phase:96 b.INT.sys ~output:b.INT.output in
    let dt = INT.ideal_dt p in
    abs_float (Db.delta (Psd.psd eng ~f:1e3) (Dt.spectrum_held dt ~f:1e3))
  in
  let fast = err 1e3 and slow = err 6.4e7 in
  if fast > 1.0 then
    Alcotest.failf "fast switches should satisfy full-and-fast: %g dB" fast;
  if slow < 3.0 then
    Alcotest.failf
      "slow switches should break the full-and-fast model: %g vs %g dB" fast
      slow

let () =
  Alcotest.run "dtime"
    [
      ( "dt_system",
        [
          Alcotest.test_case "white" `Quick test_white_variance_and_flat_spectrum;
          Alcotest.test_case "alias periodic" `Quick test_spectrum_alias_periodicity;
          Alcotest.test_case "closed form" `Quick test_spectrum_matches_closed_form;
          Alcotest.test_case "parseval" `Quick test_variance_parseval;
          Alcotest.test_case "lyapunov formula" `Quick test_variance_matches_lyapunov_formula;
          Alcotest.test_case "validation" `Quick test_make_validation;
        ] );
      ( "circuit models",
        [
          Alcotest.test_case "switched rc variance" `Quick test_switched_rc_ideal_variance;
          Alcotest.test_case "hold regime" `Quick test_switched_rc_ideal_vs_exact_in_hold_regime;
          Alcotest.test_case "continuous regime" `Quick test_switched_rc_ideal_fails_in_continuous_regime;
          Alcotest.test_case "integrator vs exact" `Quick test_integrator_ideal_matches_exact;
          Alcotest.test_case "integrator vs closed form" `Quick test_integrator_ideal_consistent_with_analytic;
          Alcotest.test_case "full-and-fast breakdown" `Quick test_full_and_fast_breakdown_with_slow_switches;
        ] );
    ]
